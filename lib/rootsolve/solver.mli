(** Closed-form symbolic roots of low-degree univariate polynomials.

    The collapser inverts a ranking polynomial level by level; each
    level yields one univariate polynomial equation in the unknown
    index whose coefficients are polynomials in the parameters, the
    outer indices, and the collapsed index [pc]. Degrees up to 4 admit
    closed-form roots (paper §IV-B); this module produces the full list
    of {e candidate} symbolic roots — the caller selects the convenient
    one by checking the values it produces (paper §IV-C: selection must
    not be made on the real/complex type of the root but on the
    correctness of its values).

    Evaluation caveat: the candidates are built for principal-branch
    complex evaluation ({!Symx.Expr.eval_complex} or C [cpow]/[csqrt]),
    exactly as the paper's generated code. *)

module P = Polymath.Polynomial

(** A univariate polynomial [sum_k coeff_k x^k] given as a sparse
    descending [(exponent, coefficient)] list; coefficients are
    polynomials that must not mention the unknown. *)
type univariate = (int * P.t) list

(** [of_poly ~unknown p] views [p] as univariate in [unknown].
    @raise Invalid_argument if some coefficient mentions [unknown]. *)
val of_poly : unknown:string -> P.t -> univariate

(** [degree u] is the degree (coefficients identically zero are
    dropped; [-1] for the zero polynomial). *)
val degree : univariate -> int

(** Raised by {!candidates} when the degree is 0, negative, or > 4:
    the paper's radical method (§IV-B) stops at Ferrari. Callers
    dispatch on this structurally — [Inversion] falls back to the
    certified numeric recovery built on {!Isolate} — instead of
    string-matching an [Invalid_argument]. *)
exception Unsupported_degree of int

(** [candidates u] is the list of symbolic candidate roots.
    @raise Unsupported_degree when the degree is 0, negative, or > 4. *)
val candidates : univariate -> Symx.Expr.t list
