module P = Polymath.Polynomial
module Q = Zmath.Rat
module E = Symx.Expr

type univariate = (int * P.t) list

let of_poly ~unknown p =
  let u = P.as_univariate unknown p in
  List.iter
    (fun (_, c) ->
      if List.mem unknown (P.vars c) then
        invalid_arg "Solver.of_poly: nonlinear occurrence of the unknown")
    u;
  u

let degree u = List.fold_left (fun acc (e, c) -> if P.is_zero c then acc else max acc e) (-1) u

let coeff u k =
  match List.assoc_opt k u with Some c -> c | None -> P.zero

(* expression form of a coefficient *)
let ce u k = E.of_poly (coeff u k)

(* primitive cube roots of unity: w = (-1 + i*sqrt 3)/2, w2 = conjugate *)
let omega =
  E.prod [ E.of_rat Q.half; E.sum [ E.of_int (-1); E.prod [ E.I; E.sqrt (E.of_int 3) ] ] ]

let omega2 =
  E.prod [ E.of_rat Q.half; E.sum [ E.of_int (-1); E.neg (E.prod [ E.I; E.sqrt (E.of_int 3) ]) ] ]

let linear_roots u =
  (* a x + b = 0 *)
  let a = ce u 1 and b = ce u 0 in
  [ E.neg (E.div b a) ]

let quadratic_roots u =
  (* x = (-b +- sqrt(b^2 - 4ac)) / 2a *)
  let a = ce u 2 and b = ce u 1 and c = ce u 0 in
  let disc = E.sub (E.mul b b) (E.prod [ E.of_int 4; a; c ]) in
  let s = E.sqrt disc in
  let half_inv_a = E.div E.one (E.mul (E.of_int 2) a) in
  [ E.mul (E.sub s b) half_inv_a; E.mul (E.sub (E.neg s) b) half_inv_a ]

(* Cardano on the depressed cubic t^3 + p t + q = 0: candidates
   t_k = w^k * u0 - p / (3 w^k u0) with u0 = cbrt(-q/2 + sqrt(q^2/4 + p^3/27)). *)
let depressed_cubic_roots p q =
  let disc = E.add (E.div (E.mul q q) (E.of_int 4)) (E.div (E.pow p (Q.of_int 3)) (E.of_int 27)) in
  let u0 = E.cbrt (E.add (E.neg (E.div q (E.of_int 2))) (E.sqrt disc)) in
  let root w =
    let uw = E.mul w u0 in
    E.sub uw (E.div p (E.mul (E.of_int 3) uw))
  in
  [ root E.one; root omega; root omega2 ]

let cubic_roots u =
  (* a x^3 + b x^2 + c x + d; substitute x = t - b/(3a) *)
  let a = ce u 3 and b = ce u 2 and c = ce u 1 and d = ce u 0 in
  let a2 = E.mul a a in
  let a3 = E.mul a2 a in
  let b2 = E.mul b b in
  let p = E.div (E.sub (E.prod [ E.of_int 3; a; c ]) b2) (E.mul (E.of_int 3) a2) in
  let q =
    E.div
      (E.sum
         [ E.prod [ E.of_int 2; b2; b ];
           E.neg (E.prod [ E.of_int 9; a; b; c ]);
           E.prod [ E.of_int 27; a2; d ] ])
      (E.mul (E.of_int 27) a3)
  in
  let shift = E.neg (E.div b (E.mul (E.of_int 3) a)) in
  List.map (fun t -> E.add t shift) (depressed_cubic_roots p q)

let quartic_roots u =
  (* a x^4 + b x^3 + c x^2 + d x + e; substitute x = t - b/(4a) giving
     t^4 + p t^2 + q t + r, then Descartes' factorization
     (t^2 + u t + s)(t^2 - u t + s') with z = u^2 a root of
     z^3 + 2p z^2 + (p^2 - 4r) z - q^2 = 0. *)
  let a = ce u 4 and b = ce u 3 and c = ce u 2 and d = ce u 1 and e = ce u 0 in
  let a2 = E.mul a a in
  let a3 = E.mul a2 a in
  let a4 = E.mul a2 a2 in
  let b2 = E.mul b b in
  let p = E.sub (E.div c a) (E.div (E.prod [ E.of_rat (Q.of_ints 3 8); b2 ]) a2) in
  let q =
    E.sum
      [ E.div (E.mul b2 b) (E.mul (E.of_int 8) a3);
        E.neg (E.div (E.mul b c) (E.mul (E.of_int 2) a2));
        E.div d a ]
  in
  let r =
    E.sum
      [ E.neg (E.div (E.prod [ E.of_rat (Q.of_ints 3 256); E.mul b2 b2 ]) a4);
        E.div (E.prod [ E.of_rat (Q.of_ints 1 16); b2; c ]) a3;
        E.neg (E.div (E.prod [ E.of_rat (Q.of_ints 1 4); b; d ]) a2);
        E.div e a ]
  in
  let shift = E.neg (E.div b (E.mul (E.of_int 4) a)) in
  (* biquadratic special case: q may be identically zero as a polynomial
     only when d and the b-derived part cancel; we detect it on the
     original coefficients to keep the test exact *)
  let q_poly_zero =
    (* q = b^3/8a^3 - bc/2a^2 + d/a == 0 symbolically iff
       b^3 - 4abc + 8a^2 d == 0 *)
    P.is_zero
      (P.sub
         (P.add (P.pow (coeff u 3) 3) (P.scale (Q.of_int 8) (P.mul (P.pow (coeff u 4) 2) (coeff u 1))))
         (P.scale (Q.of_int 4) (P.mul (coeff u 4) (P.mul (coeff u 3) (coeff u 2)))))
  in
  if q_poly_zero then begin
    (* t^4 + p t^2 + r = 0: t^2 = (-p +- sqrt(p^2 - 4r))/2 *)
    let s = E.sqrt (E.sub (E.mul p p) (E.mul (E.of_int 4) r)) in
    let t2_a = E.div (E.add (E.neg p) s) (E.of_int 2) in
    let t2_b = E.div (E.sub (E.neg p) s) (E.of_int 2) in
    List.concat_map
      (fun t2 -> [ E.add (E.sqrt t2) shift; E.add (E.neg (E.sqrt t2)) shift ])
      [ t2_a; t2_b ]
  end
  else begin
    let resolvent_roots =
      depressed_cubic_roots
        (* depress z^3 + 2p z^2 + (p^2-4r) z - q^2: substitute z = y - 2p/3 *)
        (E.sub (E.sub (E.mul p p) (E.mul (E.of_int 4) r))
           (E.div (E.prod [ E.of_int 4; p; p ]) (E.of_int 3)))
        (E.sum
           [ E.div (E.prod [ E.of_int 16; p; p; p ]) (E.of_int 27);
             E.neg
               (E.div
                  (E.prod [ E.of_int 2; p; E.sub (E.mul p p) (E.mul (E.of_int 4) r) ])
                  (E.of_int 3));
             E.neg (E.mul q q) ])
      |> List.map (fun y -> E.sub y (E.div (E.mul (E.of_int 2) p) (E.of_int 3)))
    in
    List.concat_map
      (fun z ->
        let uu = E.sqrt z in
        let s = E.div (E.sub (E.add p z) (E.div q uu)) (E.of_int 2) in
        let s' = E.div (E.add (E.add p z) (E.div q uu)) (E.of_int 2) in
        let quad u0 s0 =
          (* t^2 + u0 t + s0 = 0 *)
          let disc = E.sqrt (E.sub (E.mul u0 u0) (E.mul (E.of_int 4) s0)) in
          [ E.div (E.add (E.neg u0) disc) (E.of_int 2);
            E.div (E.sub (E.neg u0) disc) (E.of_int 2) ]
        in
        List.map (fun t -> E.add t shift) (quad uu s @ quad (E.neg uu) s'))
      resolvent_roots
  end

exception Unsupported_degree of int

let candidates u =
  match degree u with
  | 1 -> linear_roots u
  | 2 -> quadratic_roots u
  | 3 -> cubic_roots u
  | 4 -> quartic_roots u
  | d -> raise (Unsupported_degree d)
