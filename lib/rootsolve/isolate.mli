(** Certified numeric root isolation over exact rationals.

    {!Solver} stops at degree 4: Ferrari is the last closed form. This
    module lifts the cap for index recovery, which never needed the
    radical expression in the first place — only the unique integer
    below the root. The level equations the collapser inverts are
    strictly monotone on the iteration interval (their derivative is a
    positive combination of trip counts; see the invariant families of
    Humenberger–Jaroschek–Kovács in PAPERS.md), so the real root in
    [[lo, hi)] is unique and an enclosure [(lo, hi)] with
    [sign (p lo) <> sign (p hi)] and width < 1 identifies it exactly.

    Everything here is exact {!Zmath.Rat} arithmetic except
    {!float_root}, the deliberately uncertified float shadow used to
    seed the integer bracketing in [Recovery]. *)

module Q = Zmath.Rat

(** Dense univariate polynomial: [p.(k)] is the coefficient of [x^k]. *)
type poly = Q.t array

(** [of_univariate u ~env] evaluates the coefficient polynomials of a
    {!Solver.univariate} under [env] into a dense rational univariate. *)
val of_univariate : Solver.univariate -> env:(string -> Q.t) -> poly

(** Degree with zero coefficients dropped; [-1] for the zero polynomial. *)
val degree : poly -> int

(** Exact Horner evaluation. *)
val eval : poly -> Q.t -> Q.t

val derivative : poly -> poly

(** Descartes' count: sign variations of the coefficient sequence —
    an upper bound (of matching parity) on the positive real roots. *)
val sign_variations : poly -> int

(** [variations_on p ~lo ~hi] is the Descartes bound on the roots in
    the open interval [(lo, hi)], computed by the Möbius transform
    [(1+x)^n * p((lo + hi*x)/(1+x))] (Vincent–Collins–Akritas). [0]
    certifies no root; [1] certifies exactly one. *)
val variations_on : poly -> lo:Q.t -> hi:Q.t -> int

type enclosure = {
  enc_lo : Q.t;
  enc_hi : Q.t;
  exact : bool;  (** the root is rational and [enc_lo = enc_hi] *)
  newton_steps : int;
  bisect_steps : int;
}

type error =
  | Zero_polynomial
  | No_root of { variations : int }
      (** endpoint signs agree and the Descartes count on the interval
          is zero: certified root-free *)
  | Not_isolating of { variations : int }
      (** subdivision exhausted without finding a sign change: the
          interval is not an isolating interval for a single simple
          root (the monotonicity precondition does not hold) *)

val error_to_string : error -> string

(** [isolate ?max_width p ~lo ~hi] returns a certified enclosure of
    the unique root of [p] in [[lo, hi]]: on success either [exact]
    (a rational root, [enc_lo = enc_hi]) or a bracket with
    [sign (p enc_lo) <> sign (p enc_hi)] and
    [enc_hi - enc_lo < max_width] (default 1). Refinement interleaves
    interval-Newton steps (dyadically rounded to keep the rationals
    small) with bisection; bisection alone already guarantees
    termination, Newton makes the tail quadratic. *)
val isolate : ?max_width:Q.t -> poly -> lo:Q.t -> hi:Q.t -> (enclosure, error) result

(** [integer_root p e] is the floor of the root of [p] isolated by [e]
    — the recovered loop index. A width-<1 bracket pins the floor to
    [floor enc_lo] or [floor enc_hi]; one exact evaluation at the
    boundary integer decides between them. [None] when the bracket is
    wider than 1 (a [max_width] above the default was requested). *)
val integer_root : poly -> enclosure -> Zmath.Bigint.t option

(** Uncertified float shadow of {!isolate}: a safeguarded
    Newton–bisection hybrid over the float image of the coefficients.
    Returns a point close to the root of [c] in [[lo, hi]] — the seed
    for [Recovery]'s exact integer bracketing, never a result to trust
    on its own. Always returns a finite value inside [[lo, hi]]. *)
val float_root : float array -> lo:float -> hi:float -> float
