module P = Polymath.Polynomial
module Q = Zmath.Rat
module B = Zmath.Bigint

type poly = Q.t array

let of_univariate u ~env =
  let d = List.fold_left (fun acc (e, _) -> max acc e) 0 u in
  let c = Array.make (d + 1) Q.zero in
  List.iter (fun (e, coeff) -> c.(e) <- Q.add c.(e) (P.eval env coeff)) u;
  c

let degree p =
  let d = ref (-1) in
  Array.iteri (fun i c -> if not (Q.is_zero c) then d := i) p;
  !d

let eval p x =
  let acc = ref Q.zero in
  for i = Array.length p - 1 downto 0 do
    acc := Q.add (Q.mul !acc x) p.(i)
  done;
  !acc

let derivative p =
  let n = Array.length p in
  if n <= 1 then [| Q.zero |]
  else Array.init (n - 1) (fun i -> Q.mul (Q.of_int (i + 1)) p.(i + 1))

let sign_variations p =
  let count = ref 0 and last = ref 0 in
  Array.iter
    (fun c ->
      let s = Q.sign c in
      if s <> 0 then begin
        if !last <> 0 && s <> !last then incr count;
        last := s
      end)
    p;
  !count

(* coefficients of p(shift + scale * x), by Horner over the linear image *)
let compose_affine p ~shift ~scale =
  let n = Array.length p in
  if n = 0 then [||]
  else begin
    let acc = ref [| p.(n - 1) |] in
    for i = n - 2 downto 0 do
      let a = !acc in
      let out = Array.make (Array.length a + 1) Q.zero in
      Array.iteri
        (fun j c ->
          out.(j) <- Q.add out.(j) (Q.mul c shift);
          out.(j + 1) <- Q.add out.(j + 1) (Q.mul c scale))
        a;
      out.(0) <- Q.add out.(0) p.(i);
      acc := out
    done;
    !acc
  end

(* q(x) = p(x + 1), by iterated synthetic (Ruffini–Horner) addition *)
let taylor_shift_1 p =
  let c = Array.copy p in
  let n = Array.length c in
  for i = 0 to n - 1 do
    for j = n - 2 downto i do
      c.(j) <- Q.add c.(j) c.(j + 1)
    done
  done;
  c

let variations_on p ~lo ~hi =
  (* map (lo, hi) onto (0, 1), then (0, 1) onto (0, inf) by the Möbius
     substitution x -> 1/(1+x): reverse the coefficients and shift by 1 *)
  let q = compose_affine p ~shift:lo ~scale:(Q.sub hi lo) in
  let n = Array.length q in
  let r = Array.init n (fun i -> q.(n - 1 - i)) in
  sign_variations (taylor_shift_1 r)

type enclosure = {
  enc_lo : Q.t;
  enc_hi : Q.t;
  exact : bool;
  newton_steps : int;
  bisect_steps : int;
}

type error =
  | Zero_polynomial
  | No_root of { variations : int }
  | Not_isolating of { variations : int }

let error_to_string = function
  | Zero_polynomial -> "Isolate: the zero polynomial has no isolated root"
  | No_root { variations } ->
    Printf.sprintf "Isolate: no root in the interval (Descartes count %d)" variations
  | Not_isolating { variations } ->
    Printf.sprintf
      "Isolate: interval does not isolate a single simple root (Descartes count %d); the \
       monotonicity precondition does not hold"
      variations

(* round toward the nearest multiple of 2^-bits: keeps the Newton
   iterates' denominators dyadic and small instead of squaring at
   every step *)
let dyadic_round x ~bits =
  let scale = B.pow B.two bits in
  let n2 = B.mul (Q.num x) scale in
  let d = Q.den x in
  let q, _ = B.ediv_rem (B.add (B.mul B.two n2) d) (B.mul B.two d) in
  Q.make q scale

let exact_enclosure ?(newton_steps = 0) ?(bisect_steps = 0) r =
  { enc_lo = r; enc_hi = r; exact = true; newton_steps; bisect_steps }

(* bracket refinement: invariant sign(p a) = sa <> 0, sign(p b) = -sa.
   Interval-Newton from the midpoint when it lands strictly inside,
   bisection otherwise; a Newton probe that fails to shrink the
   bracket by a quarter forfeits the next turn to bisection, so the
   width at least halves every two steps and termination is
   unconditional. *)
let refine ~max_width p a0 b0 =
  let p' = derivative p in
  let sa = Q.sign (eval p a0) in
  let a = ref a0 and b = ref b0 in
  let newton_steps = ref 0 and bisect_steps = ref 0 in
  (* precision cap: Newton converges quadratically, so iterates never
     need more than ~2x the bits of the target width (plus guard
     bits). Without the cap the dyadic denominators — and the gcds
     normalizing every probe — grow without bound. *)
  let bit_cap =
    let k = ref 0 and w = ref max_width in
    while Q.compare !w Q.one < 0 && !k < 2048 do
      incr k;
      w := Q.mul Q.two !w
    done;
    (2 * !k) + 64
  in
  let bits = ref 16 in
  let force_bisect = ref false in
  let exact_at = ref None in
  while !exact_at = None && Q.compare (Q.sub !b !a) max_width >= 0 do
    let m = Q.mul Q.half (Q.add !a !b) in
    let probe, is_newton =
      if !force_bisect then (m, false)
      else begin
        let dm = eval p' m in
        if Q.is_zero dm then (m, false)
        else begin
          let x = dyadic_round (Q.sub m (Q.div (eval p m) dm)) ~bits:!bits in
          if Q.compare !a x < 0 && Q.compare x !b < 0 then (x, true) else (m, false)
        end
      end
    in
    let width_before = Q.sub !b !a in
    (match Q.sign (eval p probe) with
    | 0 -> exact_at := Some probe
    | s -> if s = sa then a := probe else b := probe);
    if is_newton then begin
      incr newton_steps;
      bits := min bit_cap (!bits * 2);
      force_bisect := Q.compare (Q.sub !b !a) (Q.mul (Q.of_ints 3 4) width_before) > 0
    end
    else begin
      incr bisect_steps;
      force_bisect := false
    end
  done;
  match !exact_at with
  | Some r -> exact_enclosure ~newton_steps:!newton_steps ~bisect_steps:!bisect_steps r
  | None ->
    { enc_lo = !a;
      enc_hi = !b;
      exact = false;
      newton_steps = !newton_steps;
      bisect_steps = !bisect_steps }

let isolate ?(max_width = Q.one) p ~lo ~hi =
  if degree p < 0 then Error Zero_polynomial
  else if Q.compare lo hi > 0 then Error (No_root { variations = 0 })
  else begin
    let plo = eval p lo and phi = eval p hi in
    if Q.is_zero plo then Ok (exact_enclosure lo)
    else if Q.is_zero phi then Ok (exact_enclosure hi)
    else if Q.sign plo <> Q.sign phi then Ok (refine ~max_width p lo hi)
    else begin
      (* endpoint signs agree: either root-free, or an even cluster the
         caller's monotonicity precondition excludes. Certify with the
         Descartes bound, then subdivide a bounded number of times in
         case a sign change (or rational root) hides inside. *)
      let v0 = variations_on p ~lo ~hi in
      if v0 = 0 then Error (No_root { variations = 0 })
      else begin
        let budget = ref 128 in
        let rec search = function
          | [] -> Error (Not_isolating { variations = v0 })
          | _ when !budget <= 0 -> Error (Not_isolating { variations = v0 })
          | (a, b) :: rest ->
            decr budget;
            let pa = eval p a and pb = eval p b in
            if Q.is_zero pa then Ok (exact_enclosure a)
            else if Q.is_zero pb then Ok (exact_enclosure b)
            else if Q.sign pa <> Q.sign pb then Ok (refine ~max_width p a b)
            else if variations_on p ~lo:a ~hi:b = 0 then search rest
            else begin
              let m = Q.mul Q.half (Q.add a b) in
              search ((a, m) :: (m, b) :: rest)
            end
        in
        search [ (lo, hi) ]
      end
    end
  end

(* floor of the isolated root. A width-<1 bracket pins it to
   [floor enc_lo] or [floor enc_hi]; one exact evaluation at the
   boundary integer decides which side the root is on. *)
let integer_root p e =
  if e.exact then Some (Q.floor e.enc_lo)
  else if Q.compare (Q.sub e.enc_hi e.enc_lo) Q.one >= 0 then None
  else begin
    let fl = Q.floor e.enc_lo and fh = Q.floor e.enc_hi in
    if B.equal fl fh then Some fl
    else begin
      let s = Q.sign (eval p (Q.of_bigint fh)) in
      if s = 0 || s = Q.sign (eval p e.enc_lo) then Some fh else Some fl
    end
  end

let float_root c ~lo ~hi =
  let n = Array.length c in
  let feval x =
    let acc = ref 0.0 in
    for i = n - 1 downto 0 do
      acc := (!acc *. x) +. c.(i)
    done;
    !acc
  in
  let feval' x =
    let acc = ref 0.0 in
    for i = n - 1 downto 1 do
      acc := (!acc *. x) +. (float_of_int i *. c.(i))
    done;
    !acc
  in
  let flo = feval lo in
  let a = ref lo and b = ref hi in
  let x = ref (0.5 *. (lo +. hi)) in
  (try
     for _ = 1 to 40 do
       let fx = feval !x in
       if fx = 0.0 then raise Exit;
       if fx < 0.0 = (flo < 0.0) then a := !x else b := !x;
       let dx = feval' !x in
       let xn = if dx <> 0.0 then !x -. (fx /. dx) else Float.nan in
       let next =
         if Float.is_finite xn && xn > !a && xn < !b then xn else 0.5 *. (!a +. !b)
       in
       let converged = Float.abs (next -. !x) < 1e-9 *. (Float.abs !x +. 1.0) in
       x := next;
       if converged then raise Exit
     done
   with Exit -> ());
  if Float.is_finite !x && !x >= lo && !x <= hi then !x else 0.5 *. (lo +. hi)
