type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape");
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "short \\u escape";
          let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
          pos := !pos + 4;
          (* non-BMP fidelity is irrelevant for validation: keep a marker *)
          if code < 0x80 then Buffer.add_char b (Char.chr code) else Buffer.add_char b '?'
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elements [])
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  with
  | Bad msg -> Error msg
  | Failure msg -> Error msg

type stats = { events : int; tids : int; spans : int; counters : int; max_depth : int }

let field k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let validate_events events =
  (* per tid: a span stack for B/E balance and the last timestamp *)
  let threads : (int, string list ref * float ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  let spans = ref 0 and counters = ref 0 and max_depth = ref 0 in
  let err = ref None in
  let check_event i e =
    let get_str k =
      match field k e with Some (Str s) -> Ok s | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
    in
    let get_num k =
      match field k e with Some (Num f) -> Ok f | _ -> Error (Printf.sprintf "event %d: missing number %S" i k)
    in
    let ( let* ) = Result.bind in
    let* name = get_str "name" in
    let* ph = get_str "ph" in
    let* _pid = get_num "pid" in
    let* tid = get_num "tid" in
    if String.length ph <> 1 then Error (Printf.sprintf "event %d: bad ph %S" i ph)
    else if ph = "M" then Ok () (* metadata: no timestamp requirements *)
    else
      let* ts = get_num "ts" in
      let tid = int_of_float tid in
      let stack, last, depth =
        match Hashtbl.find_opt threads tid with
        | Some cell -> cell
        | None ->
          let cell = (ref [], ref neg_infinity, ref 0) in
          Hashtbl.add threads tid cell;
          cell
      in
      if ts < !last then
        Error (Printf.sprintf "event %d: tid %d timestamp goes backwards (%f < %f)" i tid ts !last)
      else begin
        last := ts;
        match ph with
        | "B" ->
          stack := name :: !stack;
          depth := max !depth (List.length !stack);
          max_depth := max !max_depth !depth;
          Ok ()
        | "E" -> (
          match !stack with
          | top :: rest ->
            if top <> name && name <> "" then
              Error (Printf.sprintf "event %d: tid %d closes %S but %S is open" i tid name top)
            else begin
              stack := rest;
              Stdlib.incr spans;
              Ok ()
            end
          | [] -> Error (Printf.sprintf "event %d: tid %d has E %S without B" i tid name))
        | "C" ->
          Stdlib.incr counters;
          Ok ()
        | "i" | "I" | "X" -> Ok ()
        | ph -> Error (Printf.sprintf "event %d: unsupported ph %S" i ph)
      end
  in
  List.iteri
    (fun i e ->
      if !err = None then
        match e with
        | Obj _ -> ( match check_event i e with Ok () -> () | Error m -> err := Some m)
        | _ -> err := Some (Printf.sprintf "event %d is not an object" i))
    events;
  match !err with
  | Some m -> Error m
  | None ->
    let unbalanced =
      Hashtbl.fold
        (fun tid (stack, _, _) acc ->
          if !stack = [] then acc else (tid, List.length !stack) :: acc)
        threads []
    in
    (match unbalanced with
    | (tid, k) :: _ -> Error (Printf.sprintf "tid %d ends with %d unclosed span(s)" tid k)
    | [] ->
      Ok
        { events = List.length events;
          tids = Hashtbl.length threads;
          spans = !spans;
          counters = !counters;
          max_depth = !max_depth })

let validate_string s =
  match parse_json s with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok doc -> (
    match field "traceEvents" doc with
    | Some (Arr events) -> validate_events events
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "no traceEvents field")

let validate_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  validate_string s
