(** Structural validation of exported Chrome traces.

    A hand-rolled JSON reader (no external dependency) plus the checks
    the trace-format tests and the CI smoke enforce: the document is an
    object with a [traceEvents] array; every event has [name], [ph],
    [pid], [tid] and (except metadata) [ts]; per [tid] the duration
    events form balanced, properly nested [B]/[E] pairs and timestamps
    are non-decreasing. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(** [parse_json s] reads one JSON value (leading/trailing whitespace
    allowed). *)
val parse_json : string -> (json, string) result

type stats = {
  events : int;  (** total events *)
  tids : int;  (** distinct threads *)
  spans : int;  (** completed B/E pairs *)
  counters : int;  (** C samples *)
  max_depth : int;  (** deepest span nesting on any thread *)
}

(** [validate_string s] parses and checks a trace document. *)
val validate_string : string -> (stats, string) result

(** [validate_file path] is {!validate_string} on the file contents. *)
val validate_file : string -> (stats, string) result
