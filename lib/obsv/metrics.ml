let max_slots = 256
let mask = max_slots - 1
let stride = 16 (* 16 ints = 128 B: no two slots on one cache line *)

type t = { name : string; cells : int array }

let registry : t list ref = ref []
let registry_mutex = Mutex.create ()

let create name =
  let t = { name; cells = Array.make (max_slots * stride) 0 } in
  Mutex.lock registry_mutex;
  registry := t :: !registry;
  Mutex.unlock registry_mutex;
  t

let name t = t.name

let add t ~slot n =
  let base = (slot land mask) * stride in
  Array.unsafe_set t.cells base (Array.unsafe_get t.cells base + n)

let incr t ~slot = add t ~slot 1
let add_here t n = add t ~slot:(Domain.self () :> int) n
let incr_here t = add_here t 1
let get t ~slot = t.cells.((slot land mask) * stride)

let total t =
  let acc = ref 0 in
  for s = 0 to max_slots - 1 do
    acc := !acc + t.cells.(s * stride)
  done;
  !acc

let per_slot t =
  let acc = ref [] in
  for s = max_slots - 1 downto 0 do
    let v = t.cells.(s * stride) in
    if v <> 0 then acc := (s, v) :: !acc
  done;
  !acc

let imbalance t =
  match per_slot t with
  | [] | [ _ ] -> 1.0
  | cells ->
    let n = List.length cells in
    let sum = List.fold_left (fun a (_, v) -> a + v) 0 cells in
    let mx = List.fold_left (fun a (_, v) -> max a v) min_int cells in
    float_of_int mx /. (float_of_int sum /. float_of_int n)

let reset t = Array.fill t.cells 0 (Array.length t.cells) 0

let all () =
  Mutex.lock registry_mutex;
  let l = List.rev !registry in
  Mutex.unlock registry_mutex;
  l

let find n = List.find_opt (fun t -> t.name = n) (all ())
let reset_all () = List.iter reset (all ())

let summary () =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %14s %6s %12s %12s %10s\n" "counter" "total" "slots" "min/slot"
       "max/slot" "imbalance");
  List.iter
    (fun t ->
      match per_slot t with
      | [] -> ()
      | cells ->
        let mn = List.fold_left (fun a (_, v) -> min a v) max_int cells in
        let mx = List.fold_left (fun a (_, v) -> max a v) min_int cells in
        Buffer.add_string b
          (Printf.sprintf "%-28s %14d %6d %12d %12d %10.3f\n" t.name (total t)
             (List.length cells) mn mx (imbalance t)))
    (all ());
  Buffer.contents b
