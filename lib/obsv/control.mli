(** Global on/off switch of the observability layer.

    Initialized from the [OMPSIM_TRACE] environment variable ([1],
    [true], [yes] or [on] enable it; anything else, or unset, leaves
    it off). Every instrumentation site in the tree checks this flag
    first, so a disabled run costs one atomic load and a predictable
    branch per instrumented call — never a clock read or an
    allocation. *)

(** [enabled ()] is the current state of the switch. *)
val enabled : unit -> bool

(** [set_enabled b] flips the switch at runtime (e.g. for the
    [--trace]/[--stats] CLI flags or from tests). *)
val set_enabled : bool -> unit

(** [with_enabled b f] runs [f ()] with the switch set to [b],
    restoring the previous state afterwards (also on exceptions). *)
val with_enabled : bool -> (unit -> 'a) -> 'a
