(** Span/event recording with Chrome [trace_event] JSON export.

    Events are appended to a per-domain buffer (domain-local storage,
    no locks on the hot path); the buffer's [tid] is the recording
    domain's id, so events from one thread are totally ordered and
    spans nest properly per [tid]. Timestamps are clamped to be
    non-decreasing per buffer. Every recording entry point checks
    {!Control.enabled} first and is a no-op (one load, one branch)
    when the layer is off.

    Export produces the Chrome trace-event JSON object format
    ([{"traceEvents": [...]}]) loadable in [chrome://tracing] /
    Perfetto; {!summary} aggregates completed spans per name for a
    compact text report. *)

(** Span/counter argument values (rendered into the event's ["args"]
    object). *)
type arg = Int of int | Str of string

(** [with_span ?args name f] runs [f ()] inside a [B]/[E] span pair on
    the calling domain. The end event is recorded even if [f] raises,
    and whether the pair is recorded is decided once at entry — a
    toggle during [f] cannot unbalance the trace. *)
val with_span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a

(** [instant ?args name] records an instant ([i]) event. *)
val instant : ?args:(string * arg) list -> string -> unit

(** [counter name v] records a Chrome counter ([C]) sample. *)
val counter : string -> int -> unit

(** [name_thread name] records a [thread_name] metadata event for the
    calling domain, once per domain (repeat calls are ignored). *)
val name_thread : string -> unit

(** [event_count ()] is the number of events currently buffered across
    all domains. *)
val event_count : unit -> int

(** [dropped ()] counts events discarded because a per-domain buffer
    hit its size cap. *)
val dropped : unit -> int

(** [clear ()] empties every buffer. Only call while no instrumented
    code is running. *)
val clear : unit -> unit

(** [to_json ()] renders all buffered events as a Chrome trace JSON
    string. *)
val to_json : unit -> string

(** [write path] writes {!to_json} to [path].
    @raise Sys_error if the path is not writable. *)
val write : string -> unit

(** [span_totals ()] aggregates completed ([B] matched by [E]) spans:
    [(name, count, total_ns)], name-ascending. *)
val span_totals : unit -> (string * int * int) list

(** [summary ()] is a compact text report: span aggregates followed by
    the non-zero {!Metrics} counters. *)
val summary : unit -> string
