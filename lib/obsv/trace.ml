type arg = Int of int | Str of string

type ev = { name : string; ph : char; ts : int; args : (string * arg) list }

(* per-domain buffer: only its owning domain appends, so no locking on
   the hot path; the registry mutex is taken once per domain lifetime *)
type buf = {
  tid : int;
  mutable evs : ev array;
  mutable len : int;
  mutable last_ts : int;
  mutable named : bool;
  mutable lost : int;
}

let max_events_per_domain = 1 lsl 20

let dummy = { name = ""; ph = 'i'; ts = 0; args = [] }

let buffers : buf list ref = ref []
let buffers_mutex = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        { tid = (Domain.self () :> int);
          evs = Array.make 256 dummy;
          len = 0;
          last_ts = 0;
          named = false;
          lost = 0 }
      in
      Mutex.lock buffers_mutex;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mutex;
      b)

let push b e =
  if b.len >= max_events_per_domain then b.lost <- b.lost + 1
  else begin
    if b.len = Array.length b.evs then begin
      let bigger = Array.make (2 * Array.length b.evs) dummy in
      Array.blit b.evs 0 bigger 0 b.len;
      b.evs <- bigger
    end;
    b.evs.(b.len) <- e;
    b.len <- b.len + 1
  end

let record name ph args =
  let b = Domain.DLS.get key in
  let ts = max (Clock.now_ns ()) b.last_ts in
  b.last_ts <- ts;
  push b { name; ph; ts; args }

let with_span ?(args = []) name f =
  if not (Control.enabled ()) then f ()
  else begin
    (* decide once: the E is recorded even if the switch flips mid-f *)
    record name 'B' args;
    Fun.protect ~finally:(fun () -> record name 'E' []) f
  end

let instant ?(args = []) name = if Control.enabled () then record name 'i' args

let counter name v = if Control.enabled () then record name 'C' [ ("value", Int v) ]

let name_thread name =
  if Control.enabled () then begin
    let b = Domain.DLS.get key in
    if not b.named then begin
      b.named <- true;
      push b { name = "thread_name"; ph = 'M'; ts = b.last_ts; args = [ ("name", Str name) ] }
    end
  end

let snapshot () =
  Mutex.lock buffers_mutex;
  let bs = List.rev !buffers in
  Mutex.unlock buffers_mutex;
  List.sort (fun a b -> compare a.tid b.tid) bs

let event_count () = List.fold_left (fun acc b -> acc + b.len) 0 (snapshot ())
let dropped () = List.fold_left (fun acc b -> acc + b.lost) 0 (snapshot ())

let clear () =
  List.iter
    (fun b ->
      b.len <- 0;
      b.lost <- 0;
      b.named <- false)
    (snapshot ())

(* ---------------- JSON export ---------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_event buf tid e =
  Buffer.add_string buf
    (Printf.sprintf {|{"name":"%s","ph":"%c","pid":1,"tid":%d,"ts":%s|} (escape e.name) e.ph tid
       (Clock.ns_to_us e.ts));
  (match e.args with
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf {|"%s":|} (escape k));
        match v with
        | Int n -> Buffer.add_string buf (string_of_int n)
        | Str s -> Buffer.add_string buf (Printf.sprintf {|"%s"|} (escape s)))
      args;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let to_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun b ->
      for q = 0 to b.len - 1 do
        if !first then first := false else Buffer.add_string buf ",\n";
        emit_event buf b.tid b.evs.(q)
      done)
    (snapshot ());
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  output_string oc (to_json ());
  close_out oc

(* ---------------- text summary ---------------- *)

let span_totals () =
  let tbl : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let stack = ref [] in
      for q = 0 to b.len - 1 do
        let e = b.evs.(q) in
        match e.ph with
        | 'B' -> stack := e :: !stack
        | 'E' -> (
          match !stack with
          | opener :: rest ->
            stack := rest;
            let count, total =
              match Hashtbl.find_opt tbl opener.name with
              | Some cell -> cell
              | None ->
                let cell = (ref 0, ref 0) in
                Hashtbl.add tbl opener.name cell;
                cell
            in
            Stdlib.incr count;
            total := !total + (e.ts - opener.ts)
          | [] -> ())
        | _ -> ()
      done)
    (snapshot ());
  Hashtbl.fold (fun name (c, t) acc -> (name, !c, !t) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let summary () =
  let b = Buffer.create 512 in
  (match span_totals () with
  | [] -> ()
  | spans ->
    Buffer.add_string b
      (Printf.sprintf "%-28s %10s %14s %14s\n" "span" "count" "total_us" "mean_us");
    List.iter
      (fun (name, count, total_ns) ->
        Buffer.add_string b
          (Printf.sprintf "%-28s %10d %14.1f %14.2f\n" name count
             (float_of_int total_ns /. 1e3)
             (float_of_int total_ns /. 1e3 /. float_of_int (max 1 count))))
      spans;
    Buffer.add_char b '\n');
  Buffer.add_string b (Metrics.summary ());
  let lost = dropped () in
  if lost > 0 then Buffer.add_string b (Printf.sprintf "(%d events dropped at buffer cap)\n" lost);
  Buffer.contents b
