let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let ns_to_us ns = Printf.sprintf "%d.%03d" (ns / 1000) (abs (ns mod 1000))
