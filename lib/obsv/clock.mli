(** Nanosecond timestamps for spans and counters.

    Backed by [Unix.gettimeofday] (the only sub-second clock available
    without C stubs); {!Trace} additionally clamps timestamps to be
    non-decreasing per thread, so exported traces are monotone per
    [tid] even if the wall clock steps backwards. *)

(** [now_ns ()] is the current time in integer nanoseconds. *)
val now_ns : unit -> int

(** [ns_to_us ns] renders nanoseconds as Chrome's microsecond
    timestamps with nanosecond resolution (three decimals). *)
val ns_to_us : int -> string
