let initial =
  match Sys.getenv_opt "OMPSIM_TRACE" with
  | Some ("1" | "true" | "TRUE" | "yes" | "on") -> true
  | _ -> false

let flag = Atomic.make initial
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let with_enabled b f =
  let saved = enabled () in
  set_enabled b;
  Fun.protect ~finally:(fun () -> set_enabled saved) f
