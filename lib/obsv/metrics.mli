(** Lock-free per-slot counters.

    A counter is a flat [int array] of {!max_slots} cells, one per
    worker slot, each padded to {!stride} words (128 bytes) so two
    slots never share a cache line — concurrent increments from
    different workers do not false-share. A cell is a plain (non
    atomic) int: the intended discipline is one writer per slot at a
    time, which both executor backends guarantee (slot [t] of a
    parallel region runs on exactly one domain). Under that
    discipline totals are exact; increments keyed by hashed domain ids
    ({!incr_here}/{!add_here}) are exact as long as no two
    concurrently-live domains collide modulo {!max_slots}, which holds
    for the pool's long-lived domains and for the short-lived spawn
    bursts of a single region.

    Counters register themselves globally at creation so reports and
    resets can enumerate them. *)

type t

val max_slots : int
(** Number of addressable slots (256); slot arguments are reduced
    modulo this. *)

val stride : int
(** Padding, in ints, between consecutive slots' cells. *)

(** [create name] makes (and globally registers) a fresh counter.
    Creating twice with the same name returns two distinct counters;
    don't. *)
val create : string -> t

val name : t -> string

(** [add c ~slot n] adds [n] to slot [slot land (max_slots - 1)]. *)
val add : t -> slot:int -> int -> unit

val incr : t -> slot:int -> unit

(** [add_here c n] / [incr_here c] use the calling domain's id as the
    slot — for instrumentation sites that have no logical worker slot
    in scope (e.g. inside {!Trahrhe.Recovery}). *)
val add_here : t -> int -> unit

val incr_here : t -> unit

val get : t -> slot:int -> int

(** [total c] sums all slots. *)
val total : t -> int

(** [per_slot c] lists the non-zero cells as [(slot, value)] pairs,
    slot-ascending. *)
val per_slot : t -> (int * int) list

(** [imbalance c] is [max / mean] over the non-zero slots — the load
    imbalance figure the paper's collapsing exists to flatten. [1.0]
    when balanced or when at most one slot is active. *)
val imbalance : t -> float

val reset : t -> unit

(** [all ()] lists every registered counter, creation order. *)
val all : unit -> t list

val find : string -> t option
val reset_all : unit -> unit

(** [summary ()] renders every counter with a non-zero total: name,
    total, active slot count, min/max per active slot, imbalance. *)
val summary : unit -> string
