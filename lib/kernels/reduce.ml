(* Reduction kernels: the same iteration spaces as correlation
   (upper triangle) and covariance (upper prism), but the nest carries
   a declared reduction clause instead of updating an output matrix.
   The per-point payload is an integer-coefficient polynomial, so the
   serial reference is an exact wrapped-int fold (mod 2^63) that the
   parallel combine tree and the JIT's u64 accumulator must reproduce
   bit-for-bit. *)

open Shape
module P = Polymath.Polynomial
module Q = Zmath.Rat

let pvar = P.var
let pconst c = P.const (Q.of_int c)

(* correlation_reduce: sum over the strict upper triangle of
   (i+1)*(j+1) — degree 2, so the clause exercises the nonlinear
   evaluation path, not just the affine one *)
let correlation_reduce =
  let value = P.mul (P.add (pvar "i") (pconst 1)) (P.add (pvar "j") (pconst 1)) in
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      ~reduce:{ Trahrhe.Nest.op = Trahrhe.Nest.Sum; value }
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
        { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 } ]
  in
  let outer_costs ~n = Array.init (max 0 (n - 1)) (fun i -> float_of_int (n - 1 - i)) in
  let collapsed_costs ~n = Array.make (n * (n - 1) / 2) 1.0 in
  let serial_original ~n =
    let acc = ref 0 in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        acc := !acc + ((i + 1) * (j + 1))
      done
    done;
    float_of_int !acc
  in
  let serial_collapsed ~n ~recoveries =
    let k = Kernel.find "correlation_reduce" |> Option.get in
    let rc = Kernel.recovery k ~n in
    let trip = n * (n - 1) / 2 in
    let acc = ref 0 in
    (* fold the declared clause per-point through the recovery, so the
       collapsed reference exercises the same evaluation the parallel
       and native paths use *)
    run_collapsed rc ~trip ~recoveries (fun idx ->
        acc := !acc + Trahrhe.Recovery.reduce_value_int rc idx);
    float_of_int !acc
  in
  Kernel.register
    { name = "correlation_reduce";
      description = "sum reduction of (i+1)(j+1) over correlation's strict upper triangle";
      family = "triangular";
      collapsed = 2;
      total_loops = 2;
      nest;
      param_map = (fun n _ -> n);
      default_n = 2000;
      fig10_n = 96;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }

(* covariance_reduce: sum over the upper prism of i*j + k + 1 *)
let covariance_reduce =
  let value = P.add (P.mul (pvar "i") (pvar "j")) (P.add (pvar "k") (pconst 1)) in
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      ~reduce:{ Trahrhe.Nest.op = Trahrhe.Nest.Sum; value }
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "k"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  let outer_costs ~n = Array.init n (fun i -> float_of_int ((n - i) * n)) in
  let collapsed_costs ~n = Array.make (n * (n + 1) / 2 * n) 1.0 in
  let serial_original ~n =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        for k = 0 to n - 1 do
          acc := !acc + ((i * j) + k + 1)
        done
      done
    done;
    float_of_int !acc
  in
  let serial_collapsed ~n ~recoveries =
    let kd = Kernel.find "covariance_reduce" |> Option.get in
    let rc = Kernel.recovery kd ~n in
    let trip = n * (n + 1) / 2 * n in
    let acc = ref 0 in
    run_collapsed rc ~trip ~recoveries (fun idx ->
        acc := !acc + Trahrhe.Recovery.reduce_value_int rc idx);
    float_of_int !acc
  in
  Kernel.register
    { name = "covariance_reduce";
      description = "sum reduction of i*j + k + 1 over covariance's upper prism, all loops collapsed";
      family = "tetrahedral";
      collapsed = 3;
      total_loops = 3;
      nest;
      param_map = (fun n _ -> n);
      default_n = 220;
      fig10_n = 48;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }
