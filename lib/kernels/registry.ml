let kernels =
  [ Triangular.correlation;
    Tiled.correlation_tiled;
    Prism.covariance;
    Tiled.covariance_tiled;
    Prism.symm;
    Triangular.syrk;
    Triangular.syr2k;
    Shapes2.dynprog;
    Shapes2.fdtd_skewed;
    Triangular.utma;
    Triangular.ltmp;
    Reduce.correlation_reduce;
    Reduce.covariance_reduce;
    Deep.simplex5;
    Deep.simplex5_tiled ]

let find name = List.find_opt (fun (k : Kernel.t) -> k.name = name) kernels
let names = List.map (fun (k : Kernel.t) -> k.name) kernels
