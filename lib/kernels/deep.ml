(* Depth-5 kernels exercising the numeric inversion path: the level-0
   ranking prefix of a 5-simplex is a quintic, past the quartic radical
   cap, so recovery of the outermost index must go through certified
   root isolation (Inversion.Numeric). Exact serial references follow
   the prism/tiled pattern so the oracle can compare bit-for-bit. *)

open Shape

let binom n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let r = ref 1 in
    for i = 0 to k - 1 do
      r := !r * (n - i) / (i + 1)
    done;
    !r
  end

(* number of weakly increasing index tuples of length [d] over [0,n) *)
let simplex_points n d = binom (n + d - 1) d

(* 5-simplex: 0 <= i0 <= i1 <= i2 <= i3 <= i4 < n, all five collapsed *)
let simplex5 =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i0"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "i1"; lower = aff [ ("i0", 1) ] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "i2"; lower = aff [ ("i1", 1) ] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "i3"; lower = aff [ ("i2", 1) ] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "i4"; lower = aff [ ("i3", 1) ] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  let trip n = simplex_points n 5 in
  let outer_costs ~n = Array.init n (fun i0 -> float_of_int (simplex_points (n - i0) 4)) in
  let collapsed_costs ~n = Array.make (trip n) 1.0 in
  let setup n =
    let w = Array.init n (fun i -> float_of_int (((3 * i) + 1) mod 17) /. 7.0) in
    let acc = Array.make (n * n) 0.0 in
    (acc, w)
  in
  let point acc w n i0 i1 i2 i3 i4 =
    acc.((i0 * n) + i4) <- acc.((i0 * n) + i4) +. (w.(i1) *. w.(i2) *. w.(i3))
  in
  let serial_original ~n =
    let acc, w = setup n in
    for i0 = 0 to n - 1 do
      for i1 = i0 to n - 1 do
        for i2 = i1 to n - 1 do
          for i3 = i2 to n - 1 do
            for i4 = i3 to n - 1 do
              point acc w n i0 i1 i2 i3 i4
            done
          done
        done
      done
    done;
    checksum acc
  in
  let serial_collapsed ~n ~recoveries =
    let acc, w = setup n in
    let kd = Kernel.find "simplex5" |> Option.get in
    let rc = Kernel.recovery kd ~n in
    run_collapsed rc ~trip:(trip n) ~recoveries (fun idx ->
        point acc w n idx.(0) idx.(1) idx.(2) idx.(3) idx.(4));
    checksum acc
  in
  Kernel.register
    { name = "simplex5";
      description = "5-simplex accumulation with all five loops collapsed (quintic level-0 prefix: numeric recovery)";
      family = "simplicial";
      collapsed = 5;
      total_loops = 5;
      nest;
      param_map = (fun n _ -> n);
      default_n = 16;
      fig10_n = 10;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }

(* Deep-tiled 5-simplex: five triangular *tile* loops collapsed. The
   constraint i_{k-1} <= i_k only binds inside a tile when the two tile
   coordinates coincide; across distinct tiles it is implied by the tile
   ranges, so a tile's point count depends only on the runs of equal
   consecutive tile coordinates. *)
let tile5 = 8

let tile_points its =
  let n = Array.length its in
  let total = ref 1 and run = ref 1 in
  for k = 1 to n do
    if k < n && its.(k) = its.(k - 1) then incr run
    else begin
      total := !total * simplex_points tile5 !run;
      run := 1
    end
  done;
  !total

let simplex5_tiled =
  let nest =
    Trahrhe.Nest.make ~params:[ "NT" ]
      [ { var = "it0"; lower = aff [] 0; upper = aff [ ("NT", 1) ] 0 };
        { var = "it1"; lower = aff [ ("it0", 1) ] 0; upper = aff [ ("NT", 1) ] 0 };
        { var = "it2"; lower = aff [ ("it1", 1) ] 0; upper = aff [ ("NT", 1) ] 0 };
        { var = "it3"; lower = aff [ ("it2", 1) ] 0; upper = aff [ ("NT", 1) ] 0 };
        { var = "it4"; lower = aff [ ("it3", 1) ] 0; upper = aff [ ("NT", 1) ] 0 } ]
  in
  let trip nt = simplex_points nt 5 in
  let outer_costs ~n:nt =
    (* cost per outermost tile coordinate = total points of its tiles *)
    let costs = Array.make nt 0.0 in
    let rec go its k =
      if k = 5 then costs.(its.(0)) <- costs.(its.(0)) +. float_of_int (tile_points its)
      else
        let lo = if k = 0 then 0 else its.(k - 1) in
        for t = lo to nt - 1 do
          its.(k) <- t;
          go its (k + 1)
        done
    in
    go (Array.make 5 0) 0;
    costs
  in
  let collapsed_costs ~n:nt =
    let costs = Array.make (trip nt) 0.0 in
    let q = ref 0 in
    let rec go its k =
      if k = 5 then begin
        costs.(!q) <- float_of_int (tile_points its);
        incr q
      end
      else
        let lo = if k = 0 then 0 else its.(k - 1) in
        for t = lo to nt - 1 do
          its.(k) <- t;
          go its (k + 1)
        done
    in
    go (Array.make 5 0) 0;
    costs
  in
  let setup nt =
    let n = nt * tile5 in
    let w = Array.init n (fun i -> float_of_int (((5 * i) + 2) mod 19) /. 6.0) in
    let acc = Array.make (n * n) 0.0 in
    (acc, w, n)
  in
  let tile_body acc w n it0 it1 it2 it3 it4 =
    for i0 = it0 * tile5 to (it0 * tile5) + tile5 - 1 do
      for i1 = max i0 (it1 * tile5) to (it1 * tile5) + tile5 - 1 do
        for i2 = max i1 (it2 * tile5) to (it2 * tile5) + tile5 - 1 do
          for i3 = max i2 (it3 * tile5) to (it3 * tile5) + tile5 - 1 do
            for i4 = max i3 (it4 * tile5) to (it4 * tile5) + tile5 - 1 do
              acc.((i0 * n) + i4) <- acc.((i0 * n) + i4) +. (w.(i1) *. w.(i2) *. w.(i3))
            done
          done
        done
      done
    done
  in
  let serial_original ~n:nt =
    let acc, w, n = setup nt in
    for it0 = 0 to nt - 1 do
      for it1 = it0 to nt - 1 do
        for it2 = it1 to nt - 1 do
          for it3 = it2 to nt - 1 do
            for it4 = it3 to nt - 1 do
              tile_body acc w n it0 it1 it2 it3 it4
            done
          done
        done
      done
    done;
    checksum acc
  in
  let serial_collapsed ~n:nt ~recoveries =
    let acc, w, n = setup nt in
    let kd = Kernel.find "simplex5_tiled" |> Option.get in
    let rc = Kernel.recovery kd ~n:nt in
    run_collapsed rc ~trip:(trip nt) ~recoveries (fun idx ->
        tile_body acc w n idx.(0) idx.(1) idx.(2) idx.(3) idx.(4));
    checksum acc
  in
  Kernel.register
    { name = "simplex5_tiled";
      description = "deep-tiled 5-simplex; the five triangular tile loops are collapsed (numeric recovery)";
      family = "tiled-simplicial";
      collapsed = 5;
      total_loops = 10;
      nest;
      param_map = (fun n _ -> n);
      default_n = 4;
      fig10_n = 3;
      outer_costs;
      collapsed_costs;
      serial_original;
      serial_collapsed }
