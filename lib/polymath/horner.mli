(** Compiled polynomial evaluation: Horner forms and finite-difference
    stepping over native integers.

    The runtime hot path (index recovery, bound checks, incremental
    walks) evaluates ranking/bound polynomials millions of times with
    integer arguments. {!compile} lowers a {!Polynomial.t} once into a
    nested Horner form over integer "slots" (the caller maps variable
    names to slot numbers, e.g. nest level [k] -> slot [k]); {!eval}
    then runs in one multiply + one add per compiled coefficient, with
    no name lookups, no rationals and no repeated-multiplication power
    loops.

    {!Stepper} goes further for regular walks: for a fixed assignment
    of all slots but one, it tabulates forward differences of the
    polynomial along that slot, so advancing the slot by +1 updates the
    value with O(degree) integer additions and zero multiplications —
    the classical difference-engine evaluation, matching the paper's
    §V philosophy of replacing per-iteration re-computation by cheap
    incrementation.

    Exactness: the polynomial is scaled by the LCM of its coefficient
    denominators and evaluated in native [int] arithmetic; the final
    division asserts divisibility. This is exact as long as the scaled
    intermediate values fit in 63 bits — the same contract the
    recovery machinery already relies on. *)

type t

(** [compile ~slot p] lowers [p] to a Horner form. [slot] must map
    every variable of [p] to a distinct non-negative slot.
    @raise Invalid_argument (from the slot map) on unbound variables. *)
val compile : slot:(string -> int) -> Polynomial.t -> t

(** [eval t lookup] evaluates with [lookup s] as the value of slot
    [s]. The result is exact; divisibility by the denominator LCM is
    asserted. *)
val eval : t -> (int -> int) -> int

(** [degree_in_slot t s] is the degree of the compiled polynomial in
    slot [s] (0 when absent). *)
val degree_in_slot : t -> int -> int

(** [degree t] is the total degree of the compiled polynomial. *)
val degree : t -> int

module Stepper : sig
  (** A difference table for one compiled polynomial along one slot. *)
  type horner := t

  type t

  (** [make h ~slot ~start ~lookup] tabulates [h] at
      [slot = start, start+1, ..., start+d] (where [d] is the degree
      in [slot]; other slots read once through [lookup]) and converts
      to forward differences. The polynomial must be integer-valued on
      integers, which ranking/bound Ehrhart polynomials are. *)
  val make : horner -> slot:int -> start:int -> lookup:(int -> int) -> t

  (** [value st] is the polynomial's value at the stepper's current
      slot position. O(1). *)
  val value : t -> int

  (** [arg st] is the current position of the stepped slot. *)
  val arg : t -> int

  (** [step st] advances the stepped slot by +1: O(degree) integer
      additions, no multiplications. *)
  val step : t -> unit

  (** [step_back st] retreats the stepped slot by -1 (the inverse of
      {!step}, same cost). *)
  val step_back : t -> unit
end
