module Q = Zmath.Rat
module P = Polynomial

type node =
  | Const of int
  | Sum of { slot : int; coeffs : node array }
      (* sum_e coeffs.(e) * slot^e, evaluated by Horner's rule;
         the coefficient nodes are free of [slot] *)

type t = { den : int; node : node }

let compile ~slot p =
  let den = Zmath.Bigint.to_int_exn (P.denominator_lcm p) in
  let scaled = P.scale (Q.of_int den) p in
  let const_exn q = Zmath.Bigint.to_int_exn (Q.to_bigint_exn q) in
  let rec go p =
    match P.vars p with
    | [] ->
      Const (match P.is_const p with Some c -> const_exn c | None -> 0)
    | x0 :: rest ->
      (* lower outer (small-slot) variables first so that inner-slot
         sub-polynomials sit near the leaves and steppers along inner
         slots stay shallow *)
      let x = List.fold_left (fun best v -> if slot v < slot best then v else best) x0 rest in
      let uni = P.as_univariate x p in
      let deg = match uni with (e, _) :: _ -> e | [] -> 0 in
      let coeffs = Array.make (deg + 1) (Const 0) in
      List.iter (fun (e, c) -> coeffs.(e) <- go c) uni;
      Sum { slot = slot x; coeffs }
  in
  { den; node = go scaled }

let rec eval_node lookup = function
  | Const c -> c
  | Sum { slot; coeffs } ->
    let x = lookup slot in
    let acc = ref 0 in
    for e = Array.length coeffs - 1 downto 0 do
      acc := (!acc * x) + eval_node lookup coeffs.(e)
    done;
    !acc

let eval t lookup =
  let v = eval_node lookup t.node in
  if t.den = 1 then v
  else begin
    assert (v mod t.den = 0);
    v / t.den
  end

let rec degree_in_slot_node s = function
  | Const _ -> 0
  | Sum { slot; coeffs } ->
    let inner = Array.fold_left (fun acc c -> max acc (degree_in_slot_node s c)) 0 coeffs in
    if slot = s then Array.length coeffs - 1 + inner else inner

let degree_in_slot t s = degree_in_slot_node s t.node

let rec degree_node = function
  | Const _ -> 0
  | Sum { coeffs; _ } ->
    let d = ref 0 in
    Array.iteri (fun e c -> if c <> Const 0 then d := max !d (e + degree_node c)) coeffs;
    !d

let degree t = degree_node t.node

module Stepper = struct
  type horner = t

  type t = { diffs : int array; mutable pos : int }
  (* diffs.(k) = Delta^k f at the current position; diffs.(0) is the
     value itself *)

  let make (h : horner) ~slot ~start ~lookup =
    let d = degree_in_slot h slot in
    let samples =
      Array.init (d + 1) (fun i ->
          eval h (fun s -> if s = slot then start + i else lookup s))
    in
    (* in-place forward differences *)
    for k = 1 to d do
      for i = d downto k do
        samples.(i) <- samples.(i) - samples.(i - 1)
      done
    done;
    { diffs = samples; pos = start }

  let value st = st.diffs.(0)
  let arg st = st.pos

  let step st =
    (* Delta^k f(v+1) = Delta^k f(v) + Delta^(k+1) f(v); updating in
       ascending k order uses each old higher difference exactly once *)
    let diffs = st.diffs in
    for k = 0 to Array.length diffs - 2 do
      diffs.(k) <- diffs.(k) + diffs.(k + 1)
    done;
    st.pos <- st.pos + 1

  let step_back st =
    (* Delta^k f(v-1) = Delta^k f(v) - Delta^(k+1) f(v-1): descending k
       order so each update reads the already-stepped-back higher
       difference (Delta^d is constant) *)
    let diffs = st.diffs in
    for k = Array.length diffs - 2 downto 0 do
      diffs.(k) <- diffs.(k) - diffs.(k + 1)
    done;
    st.pos <- st.pos - 1
end
