module P = Polymath.Polynomial
module A = Polymath.Affine
module Q = Zmath.Rat
module E = Symx.Expr

type level_recovery =
  | Root of { var : string; expr : E.t; mode : Symx.Cemit.mode }
  | Last of { var : string; poly : P.t }
  | Numeric of { var : string; r_sub_index : int }

type t = {
  nest : Nest.t;
  pc_var : string;
  ranking : P.t;
  trip_count : P.t;
  r_sub : P.t array;
  recoveries : level_recovery array;
}

type error =
  | Degree_too_high of { var : string; degree : int }
  | No_valid_root of { var : string; candidates : int }
  | No_samples

let error_to_string = function
  | Degree_too_high { var; degree } ->
    Printf.sprintf
      "index %s occurs with degree %d > 4 in the ranking polynomial: no closed-form root (paper \
       §IV-B); use binary-search recovery instead"
      var degree
  | No_valid_root { var; candidates } ->
    Printf.sprintf "none of the %d symbolic candidate roots for index %s validated" candidates var
  | No_samples -> "all sampled parameter valuations yield an empty iteration domain"

(* substituted rankings: r_sub.(k) = ranking[ i_q := tail minimum, q > k ] *)
let substituted_rankings nest ranking =
  let count_levels = Nest.to_count_levels nest in
  let d = Nest.depth nest in
  Array.init d (fun k ->
      let minima = Polyhedral.Lexmin.tail_minima count_levels ~prefix:(k + 1) in
      (* each minimum is affine over i_0..i_k and parameters only, so
         sequential substitution is simultaneous here *)
      List.fold_left (fun p (x, m) -> P.subst x (A.to_poly m) p) ranking minima)

(* sampled concrete instances used to select the convenient root *)
type sample = { param : string -> int; points : int array list; ranks : int list }

let build_samples nest ~sample_sizes =
  let rank_cache = Ranking.ranking nest in
  let vars = Array.of_list (Nest.level_vars nest) in
  List.filter_map
    (fun size ->
      let param =
        let assoc = List.mapi (fun i p -> (p, size + (3 * i))) nest.Nest.params in
        fun x ->
          match List.assoc_opt x assoc with
          | Some v -> v
          | None -> invalid_arg ("unknown parameter " ^ x)
      in
      let points = ref [] in
      (try Nest.iterate nest ~param (fun idx -> points := idx :: !points)
       with Invalid_argument _ -> ());
      let points = List.rev !points in
      if points = [] || List.length points > 4000 then None
      else begin
        let rank_of idx =
          let env x =
            let rec find j =
              if j >= Array.length vars then Q.of_int (param x)
              else if vars.(j) = x then Q.of_int idx.(j)
              else find (j + 1)
            in
            find 0
          in
          Zmath.Bigint.to_int_exn (Q.to_bigint_exn (P.eval env rank_cache))
        in
        Some { param; points; ranks = List.map rank_of points }
      end)
    sample_sizes

(* Does floor of candidate [expr] reproduce index k on every sampled
   iteration? Tolerates tiny float noise the same way the generated C
   does (plus a one-ulp nudge before floor). *)
let candidate_valid nest ~pc_var ~k expr samples =
  let vars = Array.of_list (Nest.level_vars nest) in
  List.for_all
    (fun { param; points; ranks } ->
      List.for_all2
        (fun idx rank ->
          let env x =
            if x = pc_var then { Complex.re = float_of_int rank; im = 0.0 }
            else begin
              let rec find j =
                if j >= k then { Complex.re = float_of_int (param x); im = 0.0 }
                else if vars.(j) = x then { Complex.re = float_of_int idx.(j); im = 0.0 }
                else find (j + 1)
              in
              find 0
            end
          in
          let z = E.eval_complex env expr in
          Float.is_finite z.Complex.re
          && Float.abs z.Complex.im <= 1e-6 *. Float.max 1.0 (Float.abs z.Complex.re)
          && int_of_float (Float.floor (z.Complex.re +. 1e-9)) = idx.(k))
        points ranks)
    samples

(* expression size, for preferring the simplest valid root *)
let rec expr_size = function
  | E.Const _ | E.I | E.Var _ -> 1
  | E.Sum es | E.Prod es -> List.fold_left (fun a e -> a + expr_size e) 1 es
  | E.Pow (b, _) -> 1 + expr_size b

(* Certify a numeric level on the sampled iterations: for a spread of
   sampled (prefix, rank) pairs, isolate the root of
   [r_sub.(k) - rank] over exact rationals and check the certified
   enclosure lands in [ik, ik+1) — the continuous root of the monotone
   substituted ranking always lives there when the level is sound. *)
let numeric_valid nest ~pc_var ~k u levels samples =
  let vars = Array.of_list (Nest.level_vars nest) in
  Obsv.Trace.with_span "invert.isolate" @@ fun () ->
  List.for_all
    (fun { param; points; ranks } ->
      let pairs = List.combine points ranks in
      let stride = max 1 (List.length pairs / 32) in
      List.for_all
        (fun (n, (idx, rank)) ->
          n mod stride <> 0
          ||
          let env x =
            if x = pc_var then Q.of_int rank
            else begin
              let rec find j =
                if j >= k then Q.of_int (param x)
                else if vars.(j) = x then Q.of_int idx.(j)
                else find (j + 1)
              in
              find 0
            end
          in
          let p = Rootsolve.Isolate.of_univariate u ~env in
          let lo = P.eval env (A.to_poly levels.(k).Nest.lower) in
          let hi = P.eval env (A.to_poly levels.(k).Nest.upper) in
          match Rootsolve.Isolate.isolate p ~lo ~hi with
          | Error _ -> false
          | Ok enc ->
            let ik = Q.of_int idx.(k) and ik1 = Q.of_int (idx.(k) + 1) in
            Q.compare enc.Rootsolve.Isolate.enc_lo ik1 <= 0
            && Q.compare enc.Rootsolve.Isolate.enc_hi ik >= 0)
        (List.mapi (fun n pr -> (n, pr)) pairs))
    samples

let force_numeric_default () =
  match Sys.getenv_opt "OMPSIM_FORCE_NUMERIC" with
  | Some "1" | Some "true" -> true
  | _ -> false

let invert ?(pc_var = "pc") ?(sample_sizes = [ 3; 4; 6 ]) ?force_numeric nest =
  if List.mem pc_var (Nest.level_vars nest) || List.mem pc_var nest.Nest.params then
    invalid_arg ("Inversion.invert: pc variable " ^ pc_var ^ " collides with the nest");
  let force_numeric =
    match force_numeric with Some b -> b | None -> force_numeric_default ()
  in
  Obsv.Trace.with_span "pipeline.inversion" @@ fun () ->
  let ranking = Ranking.ranking nest in
  let trip_count = Ranking.trip_count nest in
  let r_sub = substituted_rankings nest ranking in
  let d = Nest.depth nest in
  let vars = Array.of_list (Nest.level_vars nest) in
  let levels = Array.of_list nest.Nest.levels in
  (* samples only matter where there is a candidate root to select or a
     numeric certificate to check; deep nests whose domains are too
     large to enumerate must still invert (their levels are all exact
     or numeric, both certified at runtime) *)
  let samples = lazy (build_samples nest ~sample_sizes) in
  let exception Fail of error in
  try
    let recoveries =
      Array.init d (fun k ->
          let var = vars.(k) in
          if k = d - 1 then begin
            (* ik = lb + pc - r(prefix, lb): exact integer polynomial *)
            let lb = A.to_poly levels.(k).Nest.lower in
            let rank_at_lb = P.subst var lb r_sub.(k) in
            let poly = P.add lb (P.sub (P.var pc_var) rank_at_lb) in
            Last { var; poly }
          end
          else begin
            let equation = P.sub r_sub.(k) (P.var pc_var) in
            let u = Rootsolve.Solver.of_poly ~unknown:var equation in
            let deg = Rootsolve.Solver.degree u in
            if deg < 1 then raise (Fail (No_valid_root { var; candidates = 0 }));
            let numeric () =
              if not (numeric_valid nest ~pc_var ~k u levels (Lazy.force samples)) then
                raise (Fail (No_valid_root { var; candidates = 0 }));
              Numeric { var; r_sub_index = k }
            in
            if deg > 4 || force_numeric then numeric ()
            else begin
              match Rootsolve.Solver.candidates u with
              | exception Rootsolve.Solver.Unsupported_degree _ -> numeric ()
              | cands -> begin
                let samples =
                  match Lazy.force samples with
                  | [] -> raise (Fail No_samples)
                  | s -> s
                in
                let valid =
                  List.filter (fun e -> candidate_valid nest ~pc_var ~k e samples) cands
                in
                match
                  List.sort
                    (fun a b ->
                      (* prefer real-emittable, then structurally smaller *)
                      let ma = Symx.Cemit.classify a and mb = Symx.Cemit.classify b in
                      if ma <> mb then if ma = Symx.Cemit.Real then -1 else 1
                      else compare (expr_size a) (expr_size b))
                    valid
                with
                | [] -> raise (Fail (No_valid_root { var; candidates = List.length cands }))
                | best :: _ ->
                  (* expand polynomial subtrees so the emitted C shows the
                     flat discriminants the paper prints *)
                  let best = Symx.Simplify.normalize best in
                  Root { var; expr = best; mode = Symx.Cemit.classify best }
              end
            end
          end)
    in
    Ok { nest; pc_var; ranking; trip_count; r_sub; recoveries }
  with Fail e -> Error e

let invert_exn ?pc_var ?sample_sizes ?force_numeric nest =
  match invert ?pc_var ?sample_sizes ?force_numeric nest with
  | Ok t -> t
  | Error e -> failwith (error_to_string e)
