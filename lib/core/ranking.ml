module P = Polymath.Polynomial
module A = Polymath.Affine
module Q = Zmath.Rat

(* r(i1..ic) = 1 + sum_k #{points with i1..i(k-1) fixed, lo_k <= t < i_k}
   where each term counts complete sub-trees strictly preceding the
   current iteration at level k. *)
let ranking n =
  Obsv.Trace.with_span "pipeline.ranking" @@ fun () ->
  let levels = Nest.to_count_levels n in
  let inner = Polyhedral.Count.count_inner levels in
  let fresh = "%t%" in
  List.fold_left2
    (fun acc (l : Polyhedral.Count.level) below ->
      let below_t = P.subst l.var (P.var fresh) below in
      let strictly_before =
        Polymath.Summation.sum ~var:fresh below_t ~lo:(A.to_poly l.lo)
          ~hi:(P.sub (P.var l.var) P.one)
      in
      P.add acc strictly_before)
    P.one levels inner

let trip_count n = Polyhedral.Count.count (Nest.to_count_levels n)

let rank_at n ~param idx =
  let r = ranking n in
  let vars = Array.of_list (Nest.level_vars n) in
  let env x =
    let rec find j =
      if j >= Array.length vars then Q.of_int (param x)
      else if vars.(j) = x then Q.of_int idx.(j)
      else find (j + 1)
    in
    find 0
  in
  Q.to_bigint_exn (P.eval env r)
