module A = Polymath.Affine
module P = Polymath.Polynomial
module Q = Zmath.Rat

type level = { var : string; lower : A.t; upper : A.t }

type red_op = Sum | Prod | Min | Max

type reduction = { op : red_op; value : P.t }

type t = { params : string list; levels : level list; reduce : reduction option }

let op_to_string = function Sum -> "sum" | Prod -> "prod" | Min -> "min" | Max -> "max"

let op_of_string = function
  | "sum" | "+" -> Some Sum
  | "prod" | "*" -> Some Prod
  | "min" -> Some Min
  | "max" -> Some Max
  | _ -> None

let op_apply op a b =
  match op with Sum -> Q.add a b | Prod -> Q.mul a b | Min -> Q.min a b | Max -> Q.max a b

let op_neutral = function Sum -> Some Q.zero | Prod -> Some Q.one | Min | Max -> None

let make ~params ?reduce levels =
  let seen = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace seen p ()) params;
  List.iter
    (fun l ->
      if Hashtbl.mem seen l.var && not (List.mem l.var params) then
        invalid_arg ("Nest.make: duplicate iterator " ^ l.var);
      if List.mem l.var params then invalid_arg ("Nest.make: iterator shadows parameter " ^ l.var);
      let outer_ok x = Hashtbl.mem seen x in
      List.iter
        (fun bound ->
          List.iter
            (fun x ->
              if not (outer_ok x) then
                invalid_arg
                  (Printf.sprintf "Nest.make: bound of %s mentions %s which is not an outer iterator or parameter"
                     l.var x))
            (A.vars bound))
        [ l.lower; l.upper ];
      Hashtbl.replace seen l.var ())
    levels;
  if levels = [] then invalid_arg "Nest.make: empty nest";
  (match reduce with
  | None -> ()
  | Some r ->
    List.iter
      (fun x ->
        if not (Hashtbl.mem seen x) then
          invalid_arg
            (Printf.sprintf
               "Nest.make: reduction value mentions %s which is not an iterator or parameter" x))
      (P.vars r.value);
    List.iter
      (fun (c, _) ->
        if not (Q.is_integer c) then
          invalid_arg "Nest.make: reduction value must have integer coefficients")
      (P.terms r.value));
  { params; levels; reduce }

let depth n = List.length n.levels
let level_vars n = List.map (fun l -> l.var) n.levels

let with_reduce n reduce = make ~params:n.params ?reduce n.levels

(* a canonical integer-valued payload when a nest carries no declared
   reduction clause: 1 + sum_k (k+1)*x_k, injective enough to make
   schedule bugs visible and always >= 1 on non-negative domains (so
   products stay informative) *)
let default_reduce_value n =
  List.fold_left P.add (P.const Q.one)
    (List.mapi (fun k v -> P.scale (Q.of_int (k + 1)) (P.var v)) (level_vars n))

let prefix n c =
  if c < 1 || c > depth n then invalid_arg "Nest.prefix";
  (* the reduction value may mention inner iterators being dropped;
     the prefix drives counting machinery where the clause is moot *)
  { n with levels = List.filteri (fun i _ -> i < c) n.levels; reduce = None }

let to_count_levels n =
  List.map
    (fun l ->
      { Polyhedral.Count.var = l.var; lo = l.lower; hi = A.add_const Q.minus_one l.upper })
    n.levels

let max_dependence_degree n =
  (* dependence is transitive: dep(k) = {k} U deps of every index
     appearing in the bounds of level k; the degree of index x is the
     number of levels whose dependence set contains x *)
  let deps = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let direct =
        List.sort_uniq String.compare (A.vars l.lower @ A.vars l.upper)
        |> List.filter (fun x -> not (List.mem x n.params))
      in
      let closure =
        List.fold_left
          (fun acc x -> acc @ (match Hashtbl.find_opt deps x with Some s -> s | None -> []))
          direct direct
        |> List.sort_uniq String.compare
      in
      Hashtbl.replace deps l.var (l.var :: closure))
    n.levels;
  let count_of x =
    List.fold_left
      (fun acc l ->
        match Hashtbl.find_opt deps l.var with
        | Some s when List.mem x s -> acc + 1
        | _ -> acc)
      0 n.levels
  in
  List.fold_left (fun acc l -> max acc (count_of l.var)) 0 n.levels

let is_rectangular n =
  List.for_all
    (fun l ->
      List.for_all (fun x -> List.mem x n.params) (A.vars l.lower)
      && List.for_all (fun x -> List.mem x n.params) (A.vars l.upper))
    n.levels

let iterate n ~param f =
  let d = depth n in
  let idx = Array.make d 0 in
  let levels = Array.of_list n.levels in
  let vars = Array.of_list (level_vars n) in
  let env k x =
    let rec find j = if j >= k then Q.of_int (param x) else if vars.(j) = x then Q.of_int idx.(j) else find (j + 1) in
    find 0
  in
  let eval_bound k a =
    let v = A.eval (env k) a in
    if not (Q.is_integer v) then invalid_arg "Nest.iterate: non-integer bound";
    Zmath.Bigint.to_int_exn (Q.num v)
  in
  let rec go k =
    if k = d then f (Array.copy idx)
    else begin
      let lo = eval_bound k levels.(k).lower and hi = eval_bound k levels.(k).upper in
      for i = lo to hi - 1 do
        idx.(k) <- i;
        go (k + 1)
      done
    end
  in
  go 0

let pp fmt n =
  List.iter
    (fun l ->
      Format.fprintf fmt "for (%s = %s; %s < %s; %s++)@\n" l.var (A.to_string l.lower) l.var
        (A.to_string l.upper) l.var)
    n.levels
