(** Inversion of ranking polynomials (paper §IV).

    For each level k of the nest, the unknown index [ik] is recovered
    from the collapsed index [pc] by solving
    [r(i1,..,ik, lexmin tail) - pc = 0] symbolically: the trailing
    indices are set to their parametric lexicographic minima, making the
    equation univariate in [ik]. Up to degree 4 the roots are radical
    closed forms; among the symbolic candidates, the convenient one is
    selected by checking the values it produces on sampled concrete
    instances — never by its real/complex type (paper §IV-C) — and the
    last index is recovered by an exact polynomial formula.

    Above degree 4 there is no radical closed form, but there is also
    no need for one: [r_sub.(k)] is strictly monotone in [ik] on the
    iteration interval, so the level is marked {!Numeric} and recovered
    at runtime by certified root isolation ({!Rootsolve.Isolate}) — a
    float-Newton seed validated by exact integer probes of the same
    monotone polynomial the binary-search fallback uses. Setting
    [OMPSIM_FORCE_NUMERIC=1] (or [~force_numeric:true]) routes every
    non-last level through the numeric path, for differential testing
    against the closed forms. *)

module P = Polymath.Polynomial

type level_recovery =
  | Root of {
      var : string;
      expr : Symx.Expr.t;  (** closed-form root; floor it to get the index *)
      mode : Symx.Cemit.mode;  (** how the generated C must evaluate it *)
    }
      (** all levels but the innermost *)
  | Last of { var : string; poly : P.t }
      (** innermost level: an exact integer polynomial in the prefix
          indices and [pc] *)
  | Numeric of { var : string; r_sub_index : int }
      (** no radical closed form (degree > 4, or forced): the index is
          the largest [v] with [r_sub.(r_sub_index) (prefix, v) <= pc],
          found by a seeded certified bracketing over the monotone
          substituted ranking *)

type t = {
  nest : Nest.t;
  pc_var : string;
  ranking : P.t;
  trip_count : P.t;  (** in the parameters only *)
  r_sub : P.t array;
      (** [r_sub.(k)] is the ranking with levels > k at their tail
          minima: the rank of the first iteration with a given
          [i0..ik] prefix. Exactly the polynomials whose roots are the
          closed forms; also the monotone functions used by guarded and
          binary-search recovery. *)
  recoveries : level_recovery array;  (** one per level, outermost first *)
}

type error =
  | Degree_too_high of { var : string; degree : int }
      (** kept for API stability: no longer produced by {!invert},
          which now routes degree > 4 levels to {!Numeric} recovery *)
  | No_valid_root of { var : string; candidates : int }
      (** no symbolic candidate reproduced the sampled iterations, or
          a numeric level failed its isolation certificate *)
  | No_samples
      (** every sampled parameter valuation gave an empty nest (only
          reachable when a closed-form level needs samples to select
          its root) *)

val error_to_string : error -> string

(** [force_numeric_default ()] is the environment default for
    [?force_numeric]: true iff [OMPSIM_FORCE_NUMERIC] is ["1"] or
    ["true"]. Tests that assert closed-form structure consult it to
    stay meaningful under the forced-numeric CI shard. *)
val force_numeric_default : unit -> bool

(** [invert ?pc_var ?sample_sizes ?force_numeric nest] runs the full
    inversion. [pc_var] (default ["pc"]) names the collapsed index;
    [sample_sizes] (default [[3; 4; 6]]) are the parameter values used
    to validate and select candidate roots (each sample assigns
    parameter number [i] the value [size + 3*i]). [force_numeric]
    (default: [OMPSIM_FORCE_NUMERIC=1] in the environment) routes
    every non-last level through {!Numeric} recovery regardless of
    degree. *)
val invert :
  ?pc_var:string ->
  ?sample_sizes:int list ->
  ?force_numeric:bool ->
  Nest.t ->
  (t, error) result

(** [invert_exn] is {!invert}, raising [Failure] on error. *)
val invert_exn :
  ?pc_var:string -> ?sample_sizes:int list -> ?force_numeric:bool -> Nest.t -> t
