(** The loop-nest model of the paper (Fig. 5).

    A nest is a perfect chain of unit-stride loops
    [for (ik = lk(i1..ik-1); ik < uk(i1..ik-1); ik++)] whose bounds are
    affine in the surrounding iterators and in free integer size
    parameters. The loops to be collapsed must carry no dependence —
    dependence analysis is the caller's responsibility (as it is for
    the paper's tool, which trusts the user-written [collapse]
    clause). *)

module A = Polymath.Affine

type level = {
  var : string;
  lower : A.t;  (** inclusive lower bound, C-style [ik = lower] *)
  upper : A.t;  (** exclusive upper bound, C-style [ik < upper] *)
}

(** A reduction clause carried by the nest: combine [value], evaluated
    at every iteration point, with the associative operator [op]. The
    value polynomial ranges over the nest's iterators and parameters
    and must have integer coefficients, so per-point evaluation is
    integer-exact: reductions over [Zmath.Rat] are bit-for-bit
    schedule-independent, and the [Sum] case additionally admits a
    wrapping native-int fast path (mod 2^63, matching the JIT's u64
    accumulator truncated by [Val_long]). *)
type red_op = Sum | Prod | Min | Max

type reduction = { op : red_op; value : Polymath.Polynomial.t }

type t = private { params : string list; levels : level list; reduce : reduction option }

val op_to_string : red_op -> string

(** [op_of_string s] accepts ["sum"|"+"|"prod"|"*"|"min"|"max"]. *)
val op_of_string : string -> red_op option

(** [op_apply op a b] combines exactly over rationals. *)
val op_apply : red_op -> Zmath.Rat.t -> Zmath.Rat.t -> Zmath.Rat.t

(** Neutral element, when the operator has one ([Min]/[Max] do not —
    callers seed folds with the first value instead). *)
val op_neutral : red_op -> Zmath.Rat.t option

(** [make ~params ?reduce levels] validates and builds a nest: level
    variables must be distinct, disjoint from [params], and each bound
    may only mention parameters and strictly-outer level variables. A
    reduction clause may only mention iterators and parameters and
    must have integer coefficients.
    @raise Invalid_argument when the model is violated. *)
val make : params:string list -> ?reduce:reduction -> level list -> t

(** [with_reduce n r] is [n] with its reduction clause replaced
    (revalidated). *)
val with_reduce : t -> reduction option -> t

(** [default_reduce_value n] is the canonical payload used when a
    reduction is requested on a nest with no declared clause:
    [1 + sum_k (k+1)*x_k]. *)
val default_reduce_value : t -> Polymath.Polynomial.t

val depth : t -> int

(** [level_vars n] is the list of iterator names, outermost first. *)
val level_vars : t -> string list

(** [prefix n c] is the sub-nest of the [c] outermost loops (the loops
    being collapsed when [c < depth]); bounds of the remaining inner
    loops are unaffected by collapsing. Any reduction clause is
    dropped (its value may mention the discarded inner iterators).
    @raise Invalid_argument unless [1 <= c <= depth n]. *)
val prefix : t -> int -> t

(** [to_count_levels n] is the inclusive-bounds form used by the
    counting and lexmin machinery. *)
val to_count_levels : t -> Polyhedral.Count.level list

(** [max_dependence_degree n] is the largest number of loops whose
    trip count depends (transitively) on any single index — the degree
    bound of the univariate equations to solve, which the method
    requires to be at most 4 (paper §IV-B). *)
val max_dependence_degree : t -> int

(** [is_rectangular n] is true when every bound is parameter-only (the
    case OpenMP's own [collapse] already handles). *)
val is_rectangular : t -> bool

(** [iterate n ~param f] drives [f] over all iterations in
    lexicographic order, with concrete parameter values; for testing
    and reference execution.
    @raise Invalid_argument if a bound evaluates to a non-integer. *)
val iterate : t -> param:(string -> int) -> (int array -> unit) -> unit

(** [pp] prints the nest as C-style loop headers. *)
val pp : Format.formatter -> t -> unit
