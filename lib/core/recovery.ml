module P = Polymath.Polynomial
module A = Polymath.Affine
module H = Polymath.Horner
module Q = Zmath.Rat
module B = Zmath.Bigint
module E = Symx.Expr

(* Fallback representation: polynomial compiled to native-int term
   evaluation; value = (sum_t coeff_t * prod (slot ^ exp)) / den,
   exactly. The default pipeline compiles to Horner forms instead
   (Polymath.Horner) — this flat form is kept as a cross-checking
   fallback, selectable with [make ~compiled:false]. *)
type cpoly = { den : int; cterms : (int * (int * int) array) array }

(* slot assignment: level k -> k, pc -> depth *)

let compile_poly ~slot p =
  let den = Zmath.Bigint.to_int_exn (P.denominator_lcm p) in
  let scaled = P.scale (Q.of_int den) p in
  let cterms =
    P.terms scaled
    |> List.map (fun (c, m) ->
           let coeff = Zmath.Bigint.to_int_exn (Q.to_bigint_exn c) in
           let exps =
             Polymath.Monomial.to_list m
             |> List.map (fun (x, e) -> (slot x, e))
             |> Array.of_list
           in
           (coeff, exps))
    |> Array.of_list
  in
  { den; cterms }

(* binary exponentiation: O(log e) multiplications instead of the old
   O(e) repeated-multiplication loop *)
let ipow base e =
  let rec go acc b e =
    if e = 0 then acc else go (if e land 1 = 1 then acc * b else acc) (b * b) (e lsr 1)
  in
  go 1 base e

let eval_cpoly cp lookup =
  let acc = ref 0 in
  Array.iter
    (fun (coeff, exps) ->
      let v = ref coeff in
      Array.iter (fun (slot, e) -> v := !v * ipow (lookup slot) e) exps;
      acc := !acc + !v)
    cp.cterms;
  if cp.den = 1 then !acc
  else begin
    assert (!acc mod cp.den = 0);
    !acc / cp.den
  end

(* Overflow-safe twin of [cpoly]: the same scaled flat-term form with
   bigint coefficients and bigint accumulation, immune to native-int
   wraparound at any nest size. Results (ranks, bounds) still fit the
   native int — it is the *intermediates* (coefficient * index powers)
   that overflow first — so evaluation returns an [int]. *)
type bpoly = { bden : B.t; bterms : (B.t * (int * int) array) array }

let compile_bpoly ~slot p =
  let bden = P.denominator_lcm p in
  let scaled = P.scale (Q.of_bigint bden) p in
  let bterms =
    P.terms scaled
    |> List.map (fun (c, m) ->
           let coeff = Q.to_bigint_exn c in
           let exps =
             Polymath.Monomial.to_list m
             |> List.map (fun (x, e) -> (slot x, e))
             |> Array.of_list
           in
           (coeff, exps))
    |> Array.of_list
  in
  { bden; bterms }

let eval_bpoly bp lookup =
  let acc = ref B.zero in
  Array.iter
    (fun (coeff, exps) ->
      let v = ref coeff in
      Array.iter (fun (slot, e) -> v := B.mul !v (B.pow (B.of_int (lookup slot)) e)) exps;
      acc := B.add !acc !v)
    bp.bterms;
  let q, r = B.divmod !acc bp.bden in
  assert (B.is_zero r);
  B.to_int_exn q

(* [Sigma_t |c_t| * Prod_j mag.(slot_j)^e_j] — an upper bound on
   |scaled polynomial| over any point whose slot magnitudes are
   bounded by [mag] (the division by [bden] is deliberately skipped:
   compiled evaluation works on the scaled polynomial, and skipping it
   only over-approximates). *)
let term_magnitude bp mag =
  Array.fold_left
    (fun acc (coeff, exps) ->
      let v =
        Array.fold_left (fun v (slot, e) -> B.mul v (B.pow mag.(slot) e)) (B.abs coeff) exps
      in
      B.add acc v)
    B.zero bp.bterms

let total_degree bp =
  Array.fold_left
    (fun acc (_, exps) -> max acc (Array.fold_left (fun s (_, e) -> s + e) 0 exps))
    0 bp.bterms

(* observability: walks that had to take the overflow-safe bigint
   path (bumped once per [make] that detects the risk, then once per
   walk routed through it) *)
let c_bigint_fallback = Obsv.Metrics.create "recovery.bigint_fallback"

(* walks and block fills served by a native (.so) backend *)
let c_jit_hits = Obsv.Metrics.create "jit.hit"

(* per-level recovery ledger: how many level recoveries went through a
   closed-form/exact plan entry vs the certified numeric path (degree
   > 4 rankings, or OMPSIM_FORCE_NUMERIC differential runs) *)
let c_inv_closed = Obsv.Metrics.create "inversion.closed_form"
let c_inv_numeric = Obsv.Metrics.create "inversion.numeric"

let numeric_recoveries () = Obsv.Metrics.total c_inv_numeric
let closed_form_recoveries () = Obsv.Metrics.total c_inv_closed

type flat_lanes = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type native = {
  n_walk_hash : pc:int -> len:int -> int;
  n_recover : pc:int -> int array -> unit;
  n_fill_block : pc:int -> int array array -> int;
  n_fill_flat : pc:int -> width:int -> flat_lanes -> int;
  n_reduce_sum : pc:int -> len:int -> int;
}

(* compiled forms of a nest's reduction value polynomial: the same
   safe/compiled/flat evaluation triple as the ranking, plus the
   parameter-substituted polynomial itself for exact rational folds *)
type reduce_comp = {
  r_op : Nest.red_op;
  r_poly : P.t;  (** parameter-substituted value, vars = level vars *)
  cval : cpoly;
  bval : bpoly;
  hval : H.t;
}

(* compiled support for one Numeric level: the parameter-folded
   substituted ranking scaled integral and split into the dense
   ascending coefficients of its univariate form in the level
   variable. [nl_seed] evaluates them to floats for the Newton seed;
   [nl_univ] keeps the exact polynomials for certified isolation. *)
type numeric_level = {
  nl_scale : Q.t;  (** denominator lcm L: [nl_univ] holds [L * r_sub_k] *)
  nl_scale_f : float;
  nl_univ : P.t array;  (** vars = outer (prefix) levels only *)
  nl_seed : int array -> float array;
}

type t = {
  inv : Inversion.t;
  d : int;
  param : string -> int;
  trip : int;
  compiled : bool;  (** Horner pipeline (default) vs flat-term fallback *)
  safe : bool;
      (** overflow-safe mode: native-int intermediates could wrap at
          this nest size, so every evaluation routes through [bpoly] *)
  crank : cpoly;
  cr_sub : cpoly array;
  clo : cpoly array;  (** inclusive lower bounds, vars = outer levels *)
  cup : cpoly array;  (** exclusive upper bounds *)
  brank : bpoly;
  br_sub : bpoly array;
  blo : bpoly array;
  bup : bpoly array;
  hrank : H.t;
  hr_sub : H.t array;
  hlo : H.t array;
  hup : H.t array;
  root_envs : (int array -> int -> string -> Complex.t) array;
      (** env builder for level k: takes idx prefix and pc *)
  numeric : numeric_level option array;
      (** [Some _] exactly at the [Inversion.Numeric] levels *)
  reduce : reduce_comp option;
      (** compiled reduction clause, when the nest declares one *)
  native : native option;
      (** specialized [.so] backend, attached per-plan by the JIT tier *)
}

let make ?(compiled = true) (inv : Inversion.t) ~param =
  let nest = inv.Inversion.nest in
  let d = Nest.depth nest in
  let vars = Array.of_list (Nest.level_vars nest) in
  let pc_var = inv.Inversion.pc_var in
  let slot x =
    if x = pc_var then d
    else begin
      let rec find j =
        if j >= d then invalid_arg ("Recovery: unbound variable " ^ x) else if vars.(j) = x then j else find (j + 1)
      in
      find 0
    end
  in
  let fold_params p =
    List.fold_left
      (fun p x ->
        if x = pc_var || Array.exists (fun v -> v = x) vars then p
        else P.subst x (P.const (Q.of_int (param x))) p)
      p (P.vars p)
  in
  let trip =
    let tp = fold_params inv.Inversion.trip_count in
    match P.is_const tp with
    | Some c -> Zmath.Bigint.to_int_exn (Q.to_bigint_exn c)
    | None -> invalid_arg "Recovery.make: trip count not constant under the given parameters"
  in
  if trip < 0 then invalid_arg "Recovery.make: negative trip count";
  let levels = Array.of_list nest.Nest.levels in
  (* bigint twins first: they exist at any size, and the overflow
     threshold below decides whether the native-int pipelines may be
     compiled at all (their scaled coefficients alone can exceed the
     native range for huge parameters) *)
  let bpoly_of p = compile_bpoly ~slot (fold_params p) in
  let brank = bpoly_of inv.Inversion.ranking in
  let br_sub = Array.map bpoly_of inv.Inversion.r_sub in
  let blo = Array.map (fun (l : Nest.level) -> bpoly_of (A.to_poly l.lower)) levels in
  let bup = Array.map (fun (l : Nest.level) -> bpoly_of (A.to_poly l.upper)) levels in
  (* Per-nest overflow threshold, precomputed from the polynomial
     coefficients (derivation in DESIGN.md "Fault tolerance"):
     1. bound each level's index magnitude inductively — |idx_k| is at
        most the term-magnitude sum of its bounds over the outer
        bounds, plus 1;
     2. bound any scaled-polynomial evaluation over those magnitudes
        by its term-magnitude sum W;
     3. leave headroom for Horner partials (one multiply by an index
        ahead of the sum bound) and the finite-difference tables
        (|Delta^k f| <= 2^k max|f|): W * max_mag * 2^(deg+1);
     native-int evaluation is allowed only below 2^61. *)
  let mag = Array.make (d + 1) B.one in
  mag.(d) <- B.of_int (max 1 trip);
  let bmax = ref mag.(d) in
  for k = 0 to d - 1 do
    let m_lo = term_magnitude blo.(k) mag and m_up = term_magnitude bup.(k) mag in
    let m = B.add (if B.compare m_lo m_up >= 0 then m_lo else m_up) B.one in
    mag.(k) <- m;
    if B.compare m !bmax > 0 then bmax := m
  done;
  let worst = ref B.zero and deg = ref 0 in
  let consider bp =
    let w = term_magnitude bp mag in
    if B.compare w !worst > 0 then worst := w;
    deg := max !deg (total_degree bp)
  in
  consider brank;
  Array.iter consider br_sub;
  Array.iter consider blo;
  Array.iter consider bup;
  (* the reduction value is evaluated at every iteration point by the
     same native-int pipelines, so it participates in the overflow
     analysis on equal footing with the rankings and bounds *)
  let breduce =
    Option.map (fun (r : Nest.reduction) -> bpoly_of r.Nest.value) nest.Nest.reduce
  in
  Option.iter consider breduce;
  let headroom = B.mul (B.mul !worst !bmax) (B.pow (B.of_int 2) (!deg + 1)) in
  let safe = B.compare headroom (B.pow (B.of_int 2) 61) >= 0 in
  if safe && Obsv.Control.enabled () then Obsv.Metrics.incr_here c_bigint_fallback;
  let zero_poly = P.const Q.zero in
  let cpoly_of p = compile_poly ~slot (if safe then zero_poly else fold_params p) in
  let horner_of p = H.compile ~slot (if safe then zero_poly else fold_params p) in
  let crank = cpoly_of inv.Inversion.ranking in
  let cr_sub = Array.map cpoly_of inv.Inversion.r_sub in
  let clo = Array.map (fun (l : Nest.level) -> cpoly_of (A.to_poly l.lower)) levels in
  let cup = Array.map (fun (l : Nest.level) -> cpoly_of (A.to_poly l.upper)) levels in
  let hrank = horner_of inv.Inversion.ranking in
  let hr_sub = Array.map horner_of inv.Inversion.r_sub in
  let hlo = Array.map (fun (l : Nest.level) -> horner_of (A.to_poly l.lower)) levels in
  let hup = Array.map (fun (l : Nest.level) -> horner_of (A.to_poly l.upper)) levels in
  let reduce =
    match (nest.Nest.reduce, breduce) with
    | Some r, Some bval ->
      Some
        { r_op = r.Nest.op;
          r_poly = fold_params r.Nest.value;
          cval = cpoly_of r.Nest.value;
          bval;
          hval = horner_of r.Nest.value }
    | _ -> None
  in
  let root_envs =
    Array.init d (fun k idx pc x ->
        if x = pc_var then { Complex.re = float_of_int pc; im = 0.0 }
        else begin
          let rec find j =
            if j >= k then { Complex.re = float_of_int (param x); im = 0.0 }
            else if vars.(j) = x then { Complex.re = float_of_int idx.(j); im = 0.0 }
            else find (j + 1)
          in
          find 0
        end)
  in
  let numeric =
    Array.map
      (function
        | Inversion.Numeric { var; r_sub_index } ->
          let folded = fold_params inv.Inversion.r_sub.(r_sub_index) in
          (* scale by the denominator lcm: the univariate coefficients
             of the scaled polynomial have integer coefficients, hence
             integer values at the (integer) recovered prefixes, so the
             native-int pipeline may evaluate them exactly *)
          let lcm = P.denominator_lcm folded in
          let scaled = P.scale (Q.of_bigint lcm) folded in
          let u = P.as_univariate var scaled in
          let dmax = List.fold_left (fun acc (e, _) -> max acc e) 0 u in
          let univ = Array.make (dmax + 1) (P.const Q.zero) in
          List.iter (fun (e, c) -> univ.(e) <- c) u;
          let seed =
            if safe then begin
              (* overflow-guarded: the float image is only a seed, so
                 lossy bigint-free evaluation is fine here *)
              fun idx -> Array.map (P.eval_float (fun x -> float_of_int idx.(slot x))) univ
            end
            else begin
              let cps = Array.map (compile_poly ~slot) univ in
              fun idx ->
                Array.map (fun cp -> float_of_int (eval_cpoly cp (fun s -> idx.(s)))) cps
            end
          in
          Some
            { nl_scale = Q.of_bigint lcm;
              nl_scale_f = Zmath.Bigint.to_float lcm;
              nl_univ = univ;
              nl_seed = seed }
        | Inversion.Root _ | Inversion.Last _ -> None)
      inv.Inversion.recoveries
  in
  { inv; d; param; trip; compiled; safe; crank; cr_sub; clo; cup; brank; br_sub; blo; bup;
    hrank; hr_sub; hlo; hup; root_envs; numeric; reduce; native = None }

let depth t = t.d
let trip_count t = t.trip
let compiled t = t.compiled
let overflow_guarded t = t.safe

(* overflow-guarded nests refuse the native backend: the specialized C
   computes in int64 and would wrap exactly where the bigint path is
   needed (the caller counts the refusal as a jit fallback) *)
let attach_native t nat = if t.safe then t else { t with native = Some nat }
let native_enabled t = t.native <> None

let native_recover t pc =
  match t.native with
  | None -> None
  | Some nat ->
    let idx = Array.make t.d 0 in
    nat.n_recover ~pc idx;
    Some idx

let rank t idx =
  if t.safe then eval_bpoly t.brank (fun s -> idx.(s))
  else if t.compiled then H.eval t.hrank (fun s -> idx.(s))
  else eval_cpoly t.crank (fun s -> idx.(s))

let rank_prefix t ~level v prefix =
  let lookup s = if s = level then v else prefix.(s) in
  if t.safe then eval_bpoly t.br_sub.(level) lookup
  else if t.compiled then H.eval t.hr_sub.(level) lookup
  else eval_cpoly t.cr_sub.(level) lookup

let lower_bound t ~level prefix =
  if t.safe then eval_bpoly t.blo.(level) (fun s -> prefix.(s))
  else if t.compiled then H.eval t.hlo.(level) (fun s -> prefix.(s))
  else eval_cpoly t.clo.(level) (fun s -> prefix.(s))

let upper_bound t ~level prefix =
  if t.safe then eval_bpoly t.bup.(level) (fun s -> prefix.(s))
  else if t.compiled then H.eval t.hup.(level) (fun s -> prefix.(s))
  else eval_cpoly t.cup.(level) (fun s -> prefix.(s))

let rank_stepper t ~level ~start prefix =
  H.Stepper.make t.hr_sub.(level) ~slot:level ~start ~lookup:(fun s -> prefix.(s))

(* largest v in [lo, hi] with rank_prefix v <= pc, probing outward
   from a seed: the float-Newton enclosure is almost always within one
   of the answer, so the exact certificate costs two monotone probes;
   a bad seed degrades to doubling steps and a binary search over the
   surviving bracket — never worse than the unseeded search *)
let seeded_level_search t idx pc k ~lo ~hi ~seed =
  let g v = rank_prefix t ~level:k v idx <= pc in
  let s = max lo (min hi seed) in
  let a = ref lo and b = ref hi in
  if g s then begin
    a := s;
    let step = ref 1 in
    let galloping = ref true in
    while !galloping && !b > !a + !step do
      if g (!a + !step) then begin
        a := !a + !step;
        step := !step * 2
      end
      else begin
        b := !a + !step - 1;
        galloping := false
      end
    done
  end
  else begin
    b := s - 1;
    let step = ref 1 in
    let galloping = ref (!a < !b) in
    while !galloping do
      let v = !b - !step in
      if v <= !a then galloping := false
      else if g v then begin
        a := v;
        galloping := false
      end
      else begin
        b := v - 1;
        step := !step * 2;
        galloping := !a < !b
      end
    done
  end;
  while !a < !b do
    let mid = !a + ((!b - !a + 1) / 2) in
    if g mid then a := mid else b := mid - 1
  done;
  !a

let recover_level_raw t idx pc k =
  match t.inv.Inversion.recoveries.(k) with
  | Inversion.Last { poly = _; _ } ->
    (* exact integer formula; use the compiled substituted ranking:
       ik = lb + pc - rank_prefix(lb) *)
    let lb = lower_bound t ~level:k idx in
    lb + pc - rank_prefix t ~level:k lb idx
  | Inversion.Root { expr; _ } ->
    let z = E.eval_complex (t.root_envs.(k) idx pc) expr in
    int_of_float (Float.floor z.Complex.re)
  | Inversion.Numeric _ ->
    let lo = lower_bound t ~level:k idx in
    let hi = upper_bound t ~level:k idx - 1 in
    if hi <= lo then lo
    else begin
      let seed =
        match t.numeric.(k) with
        | None -> lo + ((hi - lo) / 2)
        | Some nl ->
          let c = nl.nl_seed idx in
          c.(0) <- c.(0) -. (nl.nl_scale_f *. float_of_int pc);
          let r =
            Rootsolve.Isolate.float_root c ~lo:(float_of_int lo)
              ~hi:(float_of_int hi +. 1.0)
          in
          int_of_float (Float.floor r)
      in
      seeded_level_search t idx pc k ~lo ~hi ~seed
    end

let recover t pc =
  let idx = Array.make t.d 0 in
  for k = 0 to t.d - 1 do
    idx.(k) <- recover_level_raw t idx pc k
  done;
  idx

let adjust_level t idx pc k =
  (* exact fix-up: find ik with rank_prefix(ik) <= pc < rank_prefix(ik+1),
     clamping into the level's bounds first *)
  let lo = lower_bound t ~level:k idx in
  let hi = upper_bound t ~level:k idx - 1 in
  let v = ref (max lo (min hi idx.(k))) in
  if t.compiled && not t.safe then begin
    (* difference-table scan: each probe of the monotone substituted
       ranking costs O(degree) additions instead of a full re-evaluation *)
    let st = rank_stepper t ~level:k ~start:!v idx in
    let continue = ref (!v < hi) in
    while !continue do
      H.Stepper.step st;
      if H.Stepper.value st <= pc then begin
        incr v;
        continue := !v < hi
      end
      else begin
        H.Stepper.step_back st;
        continue := false
      end
    done;
    while !v > lo && H.Stepper.value st > pc do
      H.Stepper.step_back st;
      decr v
    done
  end
  else begin
    while !v < hi && rank_prefix t ~level:k (!v + 1) idx <= pc do incr v done;
    while !v > lo && rank_prefix t ~level:k !v idx > pc do decr v done
  end;
  idx.(k) <- !v

let count_level_kind t k =
  if Obsv.Control.enabled () then begin
    match t.inv.Inversion.recoveries.(k) with
    | Inversion.Numeric _ -> Obsv.Metrics.incr_here c_inv_numeric
    | Inversion.Root _ | Inversion.Last _ -> Obsv.Metrics.incr_here c_inv_closed
  end

let recover_binsearch t pc =
  let idx = Array.make t.d 0 in
  for k = 0 to t.d - 1 do
    count_level_kind t k;
    let lo = lower_bound t ~level:k idx in
    let hi = upper_bound t ~level:k idx - 1 in
    (* largest v with rank_prefix v <= pc; rank_prefix is monotone in v *)
    let a = ref lo and b = ref hi in
    while !a < !b do
      let mid = !a + ((!b - !a + 1) / 2) in
      if rank_prefix t ~level:k mid idx <= pc then a := mid else b := mid - 1
    done;
    idx.(k) <- !a
  done;
  idx

let recover_guarded t pc =
  (* overflow-safe mode: the closed forms' float evaluation loses
     integer precision long before the intermediates wrap, and the
     native adjustment scan is exactly what must not run — binary
     search over the bigint rankings is the exact degradation path *)
  if t.safe then recover_binsearch t pc
  else begin
    let idx = Array.make t.d 0 in
    for k = 0 to t.d - 1 do
      count_level_kind t k;
      match t.inv.Inversion.recoveries.(k) with
      | Inversion.Numeric _ ->
        (* the seeded bracket search certifies the index with exact
           monotone probes: it needs no adjustment pass *)
        idx.(k) <- recover_level_raw t idx pc k
      | Inversion.Root _ | Inversion.Last _ ->
        idx.(k) <- recover_level_raw t idx pc k;
        adjust_level t idx pc k
    done;
    idx
  end

(* certified rational isolation of a numeric level's root: the exact
   Isolate enclosure of r_sub_k(prefix, v) = pc over the level's
   bounds. Diagnostic and bench surface — the hot path proves the same
   fact with exact integer probes of the monotone ranking. *)
let isolate_level ?max_width t idx ~pc ~level =
  match t.numeric.(level) with
  | None -> None
  | Some nl ->
    let vars = Array.of_list (Nest.level_vars t.inv.Inversion.nest) in
    let env x =
      let rec find j =
        if j >= level then Q.of_int (t.param x)
        else if vars.(j) = x then Q.of_int idx.(j)
        else find (j + 1)
      in
      find 0
    in
    let p = Array.map (P.eval env) nl.nl_univ in
    p.(0) <- Q.sub p.(0) (Q.mul nl.nl_scale (Q.of_int pc));
    let lo = Q.of_int (lower_bound t ~level idx) in
    let hi = Q.of_int (upper_bound t ~level idx) in
    Some (Rootsolve.Isolate.isolate ?max_width p ~lo ~hi)

let increment t idx =
  let rec go k =
    if k < 0 then false
    else begin
      let next = idx.(k) + 1 in
      if next < upper_bound t ~level:k idx then begin
        idx.(k) <- next;
        for q = k + 1 to t.d - 1 do
          idx.(q) <- lower_bound t ~level:q idx
        done;
        true
      end
      else go (k - 1)
    end
  in
  go (t.d - 1)

let first t =
  if t.trip = 0 then failwith "Recovery.first: empty iteration domain";
  let idx = Array.make t.d 0 in
  for k = 0 to t.d - 1 do
    idx.(k) <- lower_bound t ~level:k idx
  done;
  idx

(* ---------------- incremental chunk walk (§V, compiled) ---------------- *)

(* cached per-level bounds over the walker's index array; level q > 0
   additionally carries difference-table steppers along the parent
   variable q-1, so the carry idx.(q-1) += 1 updates both bounds in
   O(degree) additions. Shared by [walk_from] and [walk_lanes_from]. *)
let bound_cache t idx =
  let d = t.d in
  let lo = Array.make d 0 and hi = Array.make d 0 in
  let lo_st = Array.make d None and hi_st = Array.make d None in
  let build q =
    let lookup s = idx.(s) in
    let ls = H.Stepper.make t.hlo.(q) ~slot:(q - 1) ~start:idx.(q - 1) ~lookup in
    let hs = H.Stepper.make t.hup.(q) ~slot:(q - 1) ~start:idx.(q - 1) ~lookup in
    lo_st.(q) <- Some ls;
    hi_st.(q) <- Some hs;
    lo.(q) <- H.Stepper.value ls;
    hi.(q) <- H.Stepper.value hs
  in
  lo.(0) <- lower_bound t ~level:0 idx;
  hi.(0) <- upper_bound t ~level:0 idx;
  for q = 1 to d - 1 do
    build q
  done;
  let step_bounds q =
    (match lo_st.(q) with
    | Some s ->
      H.Stepper.step s;
      lo.(q) <- H.Stepper.value s
    | None -> ());
    match hi_st.(q) with
    | Some s ->
      H.Stepper.step s;
      hi.(q) <- H.Stepper.value s
    | None -> ()
  in
  (lo, hi, build, step_bounds)

(* the walk after the chunk's one recovery: drive [f] over [len]
   iterations starting from [idx] (which the caller recovered) *)
let walk_from t idx ~len f =
  if t.safe || not t.compiled then begin
    (* fallback: polynomial-re-evaluating increment (routed through
       the bigint evaluators in overflow-safe mode) *)
    f idx;
    let remaining = ref (len - 1) in
    while !remaining > 0 && increment t idx do
      f idx;
      decr remaining
    done
  end
  else begin
    let d = t.d in
    let lo, hi, build, step_bounds = bound_cache t idx in
    let advance () =
      let rec go k =
        if k < 0 then false
        else if idx.(k) + 1 < hi.(k) then begin
          idx.(k) <- idx.(k) + 1;
          if k + 1 < d then begin
            (* direct child: step its bound tables along idx.(k) *)
            step_bounds (k + 1);
            idx.(k + 1) <- lo.(k + 1);
            (* deeper levels: their whole prefix changed — rebuild *)
            for q = k + 2 to d - 1 do
              build q;
              idx.(q) <- lo.(q)
            done
          end;
          true
        end
        else go (k - 1)
      in
      go (d - 1)
    in
    f idx;
    let remaining = ref (len - 1) in
    while !remaining > 0 && advance () do
      f idx;
      decr remaining
    done
  end

let walk_uninstrumented t ~pc ~len f =
  if len > 0 then walk_from t (recover_guarded t pc) ~len f

(* obsv: per-chunk counters + the recovery-vs-stepping time split. The
   per-iteration path is identical to the uninstrumented walk — the
   only disabled-mode cost is the [Control.enabled] branch below. *)
let c_walks = Obsv.Metrics.create "recovery.walks"
let c_iterations = Obsv.Metrics.create "recovery.iterations"
let c_recover_ns = Obsv.Metrics.create "recovery.recover_ns"
let c_step_ns = Obsv.Metrics.create "recovery.step_ns"

let walk t ~pc ~len f =
  if not (Obsv.Control.enabled ()) then walk_uninstrumented t ~pc ~len f
  else if len > 0 then begin
    Obsv.Metrics.incr_here c_walks;
    Obsv.Metrics.add_here c_iterations len;
    if t.safe then Obsv.Metrics.incr_here c_bigint_fallback;
    Obsv.Trace.with_span "recovery.walk"
      ~args:[ ("pc", Obsv.Trace.Int pc); ("len", Obsv.Trace.Int len) ]
      (fun () ->
        let t0 = Obsv.Clock.now_ns () in
        let idx = recover_guarded t pc in
        let t1 = Obsv.Clock.now_ns () in
        Obsv.Metrics.add_here c_recover_ns (t1 - t0);
        walk_from t idx ~len f;
        Obsv.Metrics.add_here c_step_ns (Obsv.Clock.now_ns () - t1))
  end

(* ---------------- collapsed checksum walk ---------------- *)

(* the execution payload of [trahrhe exec] and the service: the order-
   independent sum of per-iteration index hashes over a chunk. Promoted
   to a first-class operation so a native backend can compute the whole
   reduction in one call instead of one callback per iteration. *)
let iter_hash d idx =
  let h = ref 0 in
  for k = 0 to d - 1 do
    h := (!h * 1000003) + idx.(k)
  done;
  !h

let walk_hash_interp t ~pc ~len =
  let acc = ref 0 in
  walk_from t (recover_guarded t pc) ~len (fun idx -> acc := !acc + iter_hash t.d idx);
  !acc

let walk_hash_uninstrumented t ~pc ~len =
  if len <= 0 then 0
  else begin
    match t.native with
    | Some nat -> nat.n_walk_hash ~pc ~len
    | None -> walk_hash_interp t ~pc ~len
  end

let walk_hash t ~pc ~len =
  if not (Obsv.Control.enabled ()) then walk_hash_uninstrumented t ~pc ~len
  else if len <= 0 then 0
  else begin
    Obsv.Metrics.incr_here c_walks;
    Obsv.Metrics.add_here c_iterations len;
    if t.safe then Obsv.Metrics.incr_here c_bigint_fallback;
    match t.native with
    | Some nat ->
      Obsv.Metrics.incr_here c_jit_hits;
      nat.n_walk_hash ~pc ~len
    | None -> walk_hash_interp t ~pc ~len
  end

(* ---------------- reduction walks ---------------- *)

let reduction t = t.inv.Inversion.nest.Nest.reduce

let reduce_comp t =
  match t.reduce with
  | Some rc -> rc
  | None -> invalid_arg "Recovery: nest carries no reduction clause"

(* native-int evaluation of the clause value at one index point. The
   clause grammar forces integer coefficients (no exact divisions), so
   native-int wraparound commutes with every + and *: the result is
   the exact value mod 2^63 — the same residue the JIT's u64
   accumulator yields after [Val_long] truncation. *)
let reduce_value_int t idx =
  let rc = reduce_comp t in
  if t.safe then eval_bpoly rc.bval (fun s -> idx.(s))
  else if t.compiled then H.eval rc.hval (fun s -> idx.(s))
  else eval_cpoly rc.cval (fun s -> idx.(s))

(* exact rational evaluation, for the {+, x, min, max} generic engine *)
let reduce_rat_eval t rc =
  let vars = Array.of_list (Nest.level_vars t.inv.Inversion.nest) in
  fun idx ->
    P.eval
      (fun x ->
        let rec find j =
          if j >= t.d then invalid_arg ("Recovery.reduce_value_rat: unbound variable " ^ x)
          else if vars.(j) = x then Q.of_int idx.(j)
          else find (j + 1)
        in
        find 0)
      rc.r_poly

let reduce_value_rat t idx = reduce_rat_eval t (reduce_comp t) idx

let reduce_sum_interp t rc ~pc ~len =
  let eval =
    if t.safe then fun idx -> eval_bpoly rc.bval (fun s -> idx.(s))
    else if t.compiled then fun idx -> H.eval rc.hval (fun s -> idx.(s))
    else fun idx -> eval_cpoly rc.cval (fun s -> idx.(s))
  in
  let acc = ref 0 in
  walk_from t (recover_guarded t pc) ~len (fun idx -> acc := !acc + eval idx);
  !acc

let walk_reduce_sum t ~pc ~len =
  let rc = reduce_comp t in
  if rc.r_op <> Nest.Sum then invalid_arg "Recovery.walk_reduce_sum: clause is not a sum";
  if len <= 0 then 0
  else begin
    let obsv = Obsv.Control.enabled () in
    if obsv then begin
      Obsv.Metrics.incr_here c_walks;
      Obsv.Metrics.add_here c_iterations len;
      if t.safe then Obsv.Metrics.incr_here c_bigint_fallback
    end;
    match t.native with
    | Some nat ->
      if obsv then Obsv.Metrics.incr_here c_jit_hits;
      nat.n_reduce_sum ~pc ~len
    | None -> reduce_sum_interp t rc ~pc ~len
  end

let walk_reduce_rat t ~pc ~len =
  let rc = reduce_comp t in
  if len <= 0 then invalid_arg "Recovery.walk_reduce_rat: empty chunk";
  let eval = reduce_rat_eval t rc in
  let acc = ref Q.zero and seeded = ref false in
  walk t ~pc ~len (fun idx ->
      let v = eval idx in
      if !seeded then acc := Nest.op_apply rc.r_op !acc v
      else begin
        acc := v;
        seeded := true
      end);
  if not !seeded then invalid_arg "Recovery.walk_reduce_rat: pc outside the iteration space";
  !acc

(* ---------------- batched lane-walk (§VI-A) ---------------- *)

(* drive [f] over [len] iterations starting from the recovered [idx],
   materialized into [lanes] (structure-of-arrays: lanes.(k).(l) is
   level k of lane l) in blocks of at most [vlength] consecutive ranks.
   The innermost level is filled in lockstep runs — outer levels by
   [Array.fill] of the shared prefix, the inner lane values by a
   counting loop — so most lanes cost a couple of int stores and no
   per-iteration closure call; carries reuse the finite-difference
   bound cache of the scalar walk. *)
let walk_lanes_from t idx ~pc0 ~len ~vlength ~lanes f =
  let d = t.d in
  let base = ref pc0 and remaining = ref len and alive = ref true in
  if t.safe || not t.compiled then
    (* fallback: polynomial-re-evaluating increment fills the lanes
       (bigint evaluators in overflow-safe mode) *)
    while !remaining > 0 && !alive do
      let want = min vlength !remaining in
      let count = ref 0 in
      let cont = ref true in
      while !count < want && !cont do
        for k = 0 to d - 1 do
          lanes.(k).(!count) <- idx.(k)
        done;
        incr count;
        if not (increment t idx) then begin
          alive := false;
          cont := false
        end
      done;
      f ~base:!base ~count:!count lanes;
      base := !base + !count;
      remaining := !remaining - !count
    done
  else begin
    let lo, hi, build, step_bounds = bound_cache t idx in
    let inner = d - 1 in
    (* carry past the exhausted innermost level; false at end of space *)
    let advance_outer () =
      let rec go k =
        if k < 0 then false
        else if idx.(k) + 1 < hi.(k) then begin
          idx.(k) <- idx.(k) + 1;
          step_bounds (k + 1);
          idx.(k + 1) <- lo.(k + 1);
          for q = k + 2 to d - 1 do
            build q;
            idx.(q) <- lo.(q)
          done;
          true
        end
        else go (k - 1)
      in
      go (d - 2)
    in
    let ilanes = lanes.(inner) in
    while !remaining > 0 && !alive do
      let want = min vlength !remaining in
      let count = ref 0 in
      while !count < want && !alive do
        (* lockstep run along the innermost level: consecutive ranks
           share the outer prefix, the inner index just counts up *)
        let run = min (want - !count) (hi.(inner) - idx.(inner)) in
        for k = 0 to inner - 1 do
          Array.fill lanes.(k) !count run idx.(k)
        done;
        let v0 = idx.(inner) in
        for r = 0 to run - 1 do
          ilanes.(!count + r) <- v0 + r
        done;
        count := !count + run;
        idx.(inner) <- v0 + run;
        if idx.(inner) >= hi.(inner) && not (advance_outer ()) then alive := false
      done;
      f ~base:!base ~count:!count lanes;
      base := !base + !count;
      remaining := !remaining - !count
    done
  end

let make_lanes t vlength = Array.init t.d (fun _ -> Array.make vlength 0)

(* native lane fill, batched: one [.so] recovery fills many windows'
   worth of lanes in a single call, sliced into [vlength] blocks for
   the callback here. Fetching window-by-window would pay a
   binary-search recovery plus an FFI crossing every [vlength]
   iterations — more than the interpreted incremental walk costs; the
   batch amortizes both. A fetch shorter than the buffer means the
   iteration space ended. *)
let native_batch_windows = 64

(* Per-domain scratch for the batched window buffer. Recovery values
   are immutable and shared across worker domains, so the scratch is
   keyed to the domain, not the plan: each worker reuses one buffer
   across every chunk of a parallel region instead of allocating
   [windows * vlength] words per chunk (the allocation used to cancel
   out the native fill's advantage — the lane-block path benched at
   parity with the interpreter). The buffer is *taken* for the
   duration of the walk (the key is emptied, then restored), so a lane
   callback that reenters a native lane walk on the same domain gets a
   fresh buffer instead of clobbering the batch being sliced. *)
let empty_flat : flat_lanes = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0

let native_scratch : flat_lanes Domain.DLS.key = Domain.DLS.new_key (fun () -> empty_flat)

let acquire_scratch ~size =
  let big = Domain.DLS.get native_scratch in
  if Bigarray.Array1.dim big >= size then begin
    Domain.DLS.set native_scratch empty_flat;
    big
  end
  else Bigarray.Array1.create Bigarray.int Bigarray.c_layout size

let walk_lanes_native nat ~pc ~len ~vlength ~lanes f =
  let d = Array.length lanes in
  let windows = min native_batch_windows (1 + ((len - 1) / vlength)) in
  let width = windows * vlength in
  let big = acquire_scratch ~size:(d * width) in
  let base = ref pc and remaining = ref len and alive = ref true in
  while !remaining > 0 && !alive do
    let filled = nat.n_fill_flat ~pc:!base ~width big in
    if filled = 0 then alive := false
    else begin
      let avail = min filled !remaining in
      let off = ref 0 in
      while !off < avail do
        let count = min vlength (avail - !off) in
        (* windows are a handful of words per level: a manual copy of
           untagged bigarray words beats both [Array.blit]'s
           out-of-line C call and the boxing a value-array staging
           buffer would pay *)
        for k = 0 to d - 1 do
          let dst = lanes.(k) in
          let row = (k * width) + !off in
          for l = 0 to count - 1 do
            Array.unsafe_set dst l (Bigarray.Array1.unsafe_get big (row + l))
          done
        done;
        f ~base:(!base + !off) ~count lanes;
        off := !off + count
      done;
      base := !base + avail;
      remaining := !remaining - avail;
      if filled < width then alive := false
    end
  done;
  (* cache the buffer for the domain's next chunk (not restored when a
     callback raised — the next walk then simply allocates afresh) *)
  Domain.DLS.set native_scratch big

let walk_lanes_uninstrumented t ~pc ~len ~vlength f =
  if vlength <= 0 then invalid_arg "Recovery.walk_lanes: vlength must be positive";
  if len > 0 then begin
    match t.native with
    | Some nat -> walk_lanes_native nat ~pc ~len ~vlength ~lanes:(make_lanes t vlength) f
    | None ->
      walk_lanes_from t (recover_guarded t pc) ~pc0:pc ~len ~vlength ~lanes:(make_lanes t vlength) f
  end

let c_lane_blocks = Obsv.Metrics.create "recovery.lane_blocks"

let walk_lanes t ~pc ~len ~vlength f =
  if not (Obsv.Control.enabled ()) then walk_lanes_uninstrumented t ~pc ~len ~vlength f
  else begin
    if vlength <= 0 then invalid_arg "Recovery.walk_lanes: vlength must be positive";
    if len > 0 then begin
      Obsv.Metrics.incr_here c_walks;
      if t.safe then Obsv.Metrics.incr_here c_bigint_fallback;
      Obsv.Trace.with_span "recovery.walk_lanes"
        ~args:
          [ ("pc", Obsv.Trace.Int pc); ("len", Obsv.Trace.Int len);
            ("vlength", Obsv.Trace.Int vlength) ]
        (fun () ->
          let counted ~base ~count lanes =
            Obsv.Metrics.incr_here c_lane_blocks;
            Obsv.Metrics.add_here c_iterations count;
            f ~base ~count lanes
          in
          match t.native with
          | Some nat ->
            Obsv.Metrics.incr_here c_jit_hits;
            walk_lanes_native nat ~pc ~len ~vlength ~lanes:(make_lanes t vlength) counted
          | None ->
            let t0 = Obsv.Clock.now_ns () in
            let idx = recover_guarded t pc in
            let t1 = Obsv.Clock.now_ns () in
            Obsv.Metrics.add_here c_recover_ns (t1 - t0);
            walk_lanes_from t idx ~pc0:pc ~len ~vlength ~lanes:(make_lanes t vlength) counted;
            Obsv.Metrics.add_here c_step_ns (Obsv.Clock.now_ns () - t1))
    end
  end

let recover_block t ~pc lanes =
  if Array.length lanes <> t.d then
    invalid_arg "Recovery.recover_block: lanes must have one row per nest level";
  let width = Array.length lanes.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> width then
        invalid_arg "Recovery.recover_block: ragged lanes buffer")
    lanes;
  let filled = ref 0 in
  if width > 0 && pc >= 1 && pc <= t.trip then begin
    match t.native with
    | Some nat ->
      if Obsv.Control.enabled () then Obsv.Metrics.incr_here c_jit_hits;
      filled := nat.n_fill_block ~pc lanes
    | None ->
      let len = min width (t.trip - pc + 1) in
      walk_lanes_from t (recover_guarded t pc) ~pc0:pc ~len ~vlength:width ~lanes
        (fun ~base:_ ~count _ -> filled := count)
  end;
  !filled
