(** Runtime index recovery — the OCaml analogue of the code the tool
    generates in C.

    A {!t} is an inversion specialized to concrete parameter values,
    with the ranking machinery compiled down to native-int Horner-free
    term evaluation (exact, since ranking values fit 63 bits for all
    realistic sizes). Three recovery strategies are provided:

    - {!recover}: the paper's closed forms — complex floating
      evaluation + [floor] per level (Figures 3/7);
    - {!recover_guarded}: closed forms followed by an exact
      monotonicity-based adjustment of each index, immune to floating
      rounding at any size (an extension over the paper);
    - {!recover_binsearch}: fully exact binary search on the monotone
      substituted rankings, needing no closed form at all and hence no
      degree <= 4 restriction (extension; also the fallback the library
      uses when symbolic inversion fails).

    It also implements the §V incremental walk ([increment]) used to
    advance indices cheaply after one costly recovery per chunk.

    {b Overflow-safe mode.} The native-int pipelines are exact only
    while their scaled intermediates fit 63 bits. {!make} precomputes
    a per-nest threshold from the polynomial coefficients (an
    inductive magnitude bound per index level, then a worst-case
    intermediate bound — derivation in DESIGN.md); when the bound
    reaches the native range the recovery flips to overflow-safe mode
    ({!overflow_guarded}): every ranking/bound evaluation routes
    through exact bigint arithmetic, {!recover_guarded} degrades to
    {!recover_binsearch} (the closed forms' floats are hopeless at
    such sizes), and the walks take the re-evaluating increment path —
    slower, but exact instead of silently wrapped. The
    [recovery.bigint_fallback] counter records both the {!make}
    detection and each walk routed through the safe path.

    A {!t} is immutable after {!make}: all recovery and bound queries
    are safe to call concurrently from multiple domains (the parallel
    executors hand the same value to every worker). *)

type t

(** A native execution backend: the operations a plan-specialized
    shared object provides, already bound to this recovery's parameter
    values. [n_walk_hash ~pc ~len] is the whole checksum reduction of
    {!walk_hash} in one call; [n_recover ~pc idx] writes the recovered
    indices of rank [pc] into [idx]; [n_fill_block ~pc lanes] is the
    one-block SoA fill of {!recover_block} (returns lanes filled, 0
    when [pc] is outside the space); [n_reduce_sum ~pc ~len] is the
    whole int64 sum reduction of {!walk_reduce_sum} in one call (the
    shared object always exports the symbol — it returns 0 when the
    plan's nest carries no clause, and is only routed to when it
    does). All four must agree bit-for-bit with the interpreted
    implementations — the QCheck oracle checks this on random nests. *)
type flat_lanes = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Row-major off-heap lane buffer: level [k]'s value for the [l]-th
    rank of a fill at stride [width] lives at [k * width + l]. The
    native fill writes it directly from C — untagged words, no staging
    copy — which is what makes the batched lane walk beat the
    interpreted incremental fill. *)

type native = {
  n_walk_hash : pc:int -> len:int -> int;
  n_recover : pc:int -> int array -> unit;
  n_fill_block : pc:int -> int array array -> int;
  n_fill_flat : pc:int -> width:int -> flat_lanes -> int;
  n_reduce_sum : pc:int -> len:int -> int;
}

(** [attach_native t nat] returns a recovery that routes {!walk_hash},
    {!walk_lanes} and {!recover_block} through the native backend.
    Refused (returns [t] unchanged) on an {!overflow_guarded} recovery:
    the specialized int64 C would wrap exactly where the bigint path is
    required, so PR-4 overflow mode stays interpreted. Callers detect
    the refusal with {!native_enabled} and count it as a jit fallback. *)
val attach_native : t -> native -> t

(** [native_enabled t] is [true] when a native backend is attached. *)
val native_enabled : t -> bool

(** [native_recover t pc] recovers rank [pc]'s indices through the
    native backend ([None] when none is attached) — the probe the
    differential tests compare against {!recover_guarded}. *)
val native_recover : t -> int -> int array option

(** [make inv ~param] specializes an inversion to parameter values.
    [compiled] (default [true]) selects the Horner/finite-difference
    evaluation pipeline ({!Polymath.Horner}); [~compiled:false] keeps
    the flat term-by-term fallback (same results, used for
    cross-checking and as a reference in benchmarks).
    @raise Invalid_argument when a needed parameter is missing or the
    trip count is negative. *)
val make : ?compiled:bool -> Inversion.t -> param:(string -> int) -> t

val depth : t -> int

(** [compiled t] tells which evaluation pipeline {!make} selected. *)
val compiled : t -> bool

(** [overflow_guarded t] is [true] when {!make}'s coefficient analysis
    found that native-int intermediates could wrap at this nest size,
    so every evaluation goes through the exact bigint path. *)
val overflow_guarded : t -> bool

(** [trip_count t] is the total number of collapsed iterations. *)
val trip_count : t -> int

(** [rank t idx] is the exact 1-based rank of iteration [idx]. *)
val rank : t -> int array -> int

(** [rank_prefix t ~level v prefix] is the exact rank of the first
    iteration whose indices up to [level] are [prefix.(0..level-1), v]
    — the monotone function inverted by every recovery strategy. *)
val rank_prefix : t -> level:int -> int -> int array -> int

(** [lower_bound t ~level prefix] (resp. {!upper_bound}) evaluates the
    level's inclusive lower (exclusive upper) bound under [prefix]. *)
val lower_bound : t -> level:int -> int array -> int

val upper_bound : t -> level:int -> int array -> int

(** [recover t pc] recovers all indices by the closed forms, writing
    into a fresh array. Raw floating [floor] semantics for [Root]
    levels, as in the paper's generated C; [Numeric] levels are always
    recovered exactly (float-Newton seed certified by integer probes
    of the monotone substituted ranking).
    @raise Failure if the inversion had no closed form for some level
    (use {!recover_binsearch}). *)
val recover : t -> int -> int array

(** [recover_guarded t pc] is {!recover} plus exact adjustment: each
    floored index is nudged until
    [rank_prefix ik <= pc < rank_prefix (ik+1)]. [Numeric] levels skip
    the adjustment pass — their seeded bracket search already proves
    that inequality. Bumps the [inversion.numeric] /
    [inversion.closed_form] per-level counters when observability is
    enabled. *)
val recover_guarded : t -> int -> int array

(** [recover_binsearch t pc] recovers indices exactly with binary
    search only. *)
val recover_binsearch : t -> int -> int array

(** [isolate_level t idx ~pc ~level] is the certified rational
    enclosure of the level equation's root, [None] on levels that are
    not [Numeric]. [idx] must hold the recovered prefix for levels
    [< level]. Diagnostic and bench surface: the enclosure width and
    iteration counts are what [exec --report] and [micro-invert]
    print; the hot path proves the same index with integer probes. *)
val isolate_level :
  ?max_width:Zmath.Rat.t ->
  t ->
  int array ->
  pc:int ->
  level:int ->
  (Rootsolve.Isolate.enclosure, Rootsolve.Isolate.error) result option

(** Cumulative per-level recovery counters (all recoveries in this
    process, across every plan), as recorded by the
    [inversion.numeric] / [inversion.closed_form] metrics. *)
val numeric_recoveries : unit -> int

val closed_form_recoveries : unit -> int

(** [increment t idx] advances [idx] in place to the next iteration in
    lexicographic order, recomputing inner lower bounds as the original
    nest would (§V incrementation); returns [false] when [idx] was the
    last iteration. *)
val increment : t -> int array -> bool

(** [first t] is the first iteration (the nest's lexicographic
    minimum).
    @raise Failure when the domain is empty. *)
val first : t -> int array

(** [rank_stepper t ~level ~start prefix] is a finite-difference
    stepper over the monotone substituted ranking
    [v -> rank_prefix t ~level v prefix], positioned at [v = start]:
    each subsequent probe costs O(degree) integer additions. Only
    meaningful on a [compiled] recovery. *)
val rank_stepper : t -> level:int -> start:int -> int array -> Polymath.Horner.Stepper.t

(** [walk t ~pc ~len f] performs ONE costly recovery at the 1-based
    collapsed index [pc] and then visits the next [len] iterations in
    lexicographic order, calling [f idx] on each (stopping early at the
    end of the iteration space). This is the §V per-chunk scheme as a
    library routine: the innermost advance is a single compare + add
    against cached bounds, and a carry at level [k] updates level
    [k+1]'s bounds by difference tables instead of re-evaluating their
    polynomials.

    [f] receives the walker's internal index array; it must not retain
    or mutate it.

    When the observability layer is on ({!Obsv.Control.enabled}), each
    call additionally bumps the [recovery.walks]/[recovery.iterations]
    counters, splits its time into [recovery.recover_ns] (the one
    closed-form recovery) vs [recovery.step_ns] (the incremental
    stepping), and records a [recovery.walk] trace span. When it is
    off, the only added cost over {!walk_uninstrumented} is one
    flag check per call. *)
val walk : t -> pc:int -> len:int -> (int array -> unit) -> unit

(** [walk_hash t ~pc ~len] is the collapsed checksum walk — the
    execution payload of [trahrhe exec] and the service as a
    first-class operation: one recovery at rank [pc], then the sum
    (native-int wraparound) of [fold h = h*1000003 + idx.(k)] over the
    next [len] iterations, stopping at the end of the space. With a
    native backend attached ({!attach_native}) the whole reduction runs
    in the specialized [.so] — one C call per chunk, no per-iteration
    callback — and bumps the [jit.hit] counter; otherwise it is
    equivalent to accumulating over {!walk}. *)
val walk_hash : t -> pc:int -> len:int -> int

(** [walk_hash_uninstrumented] is {!walk_hash} minus the observability
    check, as {!walk_uninstrumented} is to {!walk}. *)
val walk_hash_uninstrumented : t -> pc:int -> len:int -> int

(** {2 Reduction walks}

    Available when the nest declares a reduction clause
    ({!Nest.reduction}); every entry point raises [Invalid_argument]
    otherwise. *)

(** [reduction t] is the nest's clause, if any. *)
val reduction : t -> Nest.reduction option

(** [reduce_value_int t idx] evaluates the clause value at one index
    point in native-int arithmetic. The clause grammar forces integer
    coefficients, so wraparound commutes with every operation: the
    result is the exact value mod 2^63 — the same residue the JIT's
    u64 accumulator yields after [Val_long] truncation, which is what
    makes {!walk_reduce_sum} bit-identical across the interpreted and
    native backends even past overflow. *)
val reduce_value_int : t -> int array -> int

(** [reduce_value_rat t idx] evaluates the clause value exactly over
    rationals — the per-point payload of the generic
    {+, x, min, max} engine and of serial reference folds. *)
val reduce_value_rat : t -> int array -> Zmath.Rat.t

(** [walk_reduce_sum t ~pc ~len] is the int64 sum reduction over the
    chunk: one recovery at rank [pc], then the wrapping native-int sum
    of {!reduce_value_int} over the next [len] iterations (0 when
    [len <= 0]). With a native backend attached the whole chunk runs
    in the specialized [.so] ([jit.hit]).
    @raise Invalid_argument when the clause is not a [Sum]. *)
val walk_reduce_sum : t -> pc:int -> len:int -> int

(** [walk_reduce_rat t ~pc ~len] folds the clause's operator over the
    exact rational values of the next [len] iterations, seeded with
    the first value (so it serves min/max, which have no neutral
    element). Equals the serial left fold over the same range exactly.
    @raise Invalid_argument when [len <= 0] or [pc] lies outside the
    iteration space. *)
val walk_reduce_rat : t -> pc:int -> len:int -> Zmath.Rat.t

(** [walk_uninstrumented] is {!walk} with the observability check
    compiled out of the call — the reference the overhead micro-bench
    ([bench/main.exe -- micro-obsv]) compares {!walk} against. Prefer
    {!walk} everywhere else. *)
val walk_uninstrumented : t -> pc:int -> len:int -> (int array -> unit) -> unit

(** [walk_lanes t ~pc ~len ~vlength f] is the §VI-A batched lane-walk:
    ONE costly recovery at the collapsed index [pc], then the next
    [len] iterations are delivered in blocks of up to [vlength]
    consecutive ranks, all lanes of a block materialized in lockstep
    by the finite-difference steppers before [f] runs once per block.

    [f ~base ~count lanes]: [lanes] is a structure-of-arrays buffer —
    [lanes.(k).(l)] is the level-[k] index of lane [l] — of which the
    first [count] lanes are valid ([count = vlength] except for the
    last block of the walk, or when a block is cut short by the end of
    the iteration space); [base] is the 1-based collapsed rank of lane
    0. Lane [l] of a block holds rank [base + l]: consecutive ranks
    per block, i.e. exactly the §VI-B [Gpu.Coalesced] warp mapping
    when [vlength] is the warp width. Because consecutive ranks share
    their outer-index prefix, outer levels are filled by [Array.fill]
    runs and the innermost level by a counting loop — no per-iteration
    closure call, which is where the speedup of the lane-walk over the
    per-iteration {!walk} callback comes from ([bench/main.exe --
    micro-lanes] tracks it).

    [f] receives the walker's internal buffer; it must not retain or
    mutate it. With observability on, counts [recovery.lane_blocks] /
    [recovery.iterations] and records a [recovery.walk_lanes] span
    with the same recover-vs-step time split as {!walk}.
    @raise Invalid_argument when [vlength <= 0]. *)
val walk_lanes :
  t -> pc:int -> len:int -> vlength:int -> (base:int -> count:int -> int array array -> unit) -> unit

(** [walk_lanes_uninstrumented] is {!walk_lanes} minus the
    observability check, as {!walk_uninstrumented} is to {!walk}. *)
val walk_lanes_uninstrumented :
  t -> pc:int -> len:int -> vlength:int -> (base:int -> count:int -> int array array -> unit) -> unit

(** [recover_block t ~pc lanes] is the one-block §VI-A primitive:
    one closed-form recovery at rank [pc], then the caller-provided
    structure-of-arrays buffer [lanes] (one row per nest level, all
    rows the same width) is filled in lockstep with the indices of
    ranks [pc, pc+1, ...]. Returns how many lanes were filled — the
    buffer width, unless the iteration space ends first; 0 when [pc]
    is outside [1..trip_count].
    @raise Invalid_argument on a misshapen buffer. *)
val recover_block : t -> pc:int -> int array array -> int
