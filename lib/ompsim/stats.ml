let pool_dispatches = Obsv.Metrics.create "pool.dispatch"
let pool_idle_ns = Obsv.Metrics.create "pool.idle_ns"
let pool_fallbacks = Obsv.Metrics.create "pool.spawn_fallback"
let par_regions = Obsv.Metrics.create "par.regions"
let par_chunks = Obsv.Metrics.create "par.chunks"
let par_iterations = Obsv.Metrics.create "par.iterations"
let ws_local_pops = Obsv.Metrics.create "ws.local_pop"
let ws_steals = Obsv.Metrics.create "ws.steal"
let ws_steal_retries = Obsv.Metrics.create "ws.steal_retry"
let faults_injected = Obsv.Metrics.create "faults.injected"
let fault_stalls = Obsv.Metrics.create "faults.stalls"
let chunk_retries = Obsv.Metrics.create "chunk.retries"
let regions_cancelled = Obsv.Metrics.create "region.cancelled"
let serial_fallbacks = Obsv.Metrics.create "fallback.serial"
let reduce_partials = Obsv.Metrics.create "reduce.partials"
let reduce_combines = Obsv.Metrics.create "reduce.combines"
let dnc_splits = Obsv.Metrics.create "dnc.splits"
let dnc_grain_chunks = Obsv.Metrics.create "dnc.grain_chunks"

let reset () = Obsv.Metrics.reset_all ()
let summary () = Obsv.Trace.summary ()

let emit_trace_counters () =
  List.iter
    (fun c ->
      List.iter
        (fun (slot, v) ->
          Obsv.Trace.counter (Printf.sprintf "%s[worker %d]" (Obsv.Metrics.name c) slot) v)
        (Obsv.Metrics.per_slot c))
    [ par_chunks; par_iterations; pool_dispatches; ws_local_pops; ws_steals;
      faults_injected; chunk_retries; serial_fallbacks; reduce_partials;
      reduce_combines; dnc_splits; dnc_grain_chunks ]
