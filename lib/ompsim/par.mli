(** Real shared-memory parallel-for on OCaml 5 domains.

    This is the execution counterpart of {!Sim}: an OpenMP-like
    [parallel for] whose schedules match {!Schedule}'s assignment
    exactly. On the single-core container it demonstrates correctness
    (iterations are distributed and executed exactly once) rather than
    speedup; on a multicore machine it parallelizes for real.

    Iterations must be independent — the same precondition the paper's
    transformation requires of the loops being collapsed.

    Execution backend: by default workers are dispatched to the warm
    persistent {!Pool} (no per-region domain creation); the original
    spawn-per-region path is kept behind {!backend} and the
    [OMPSIM_BACKEND=spawn] environment variable. Both backends assign
    identical chunks to identical slot numbers, so results are
    bit-identical across backends and schedules — except
    [Work_stealing], whose chunk-to-worker mapping is inherently
    racy (the multiset of chunks executed is still exactly the
    schedule's chunk list, each chunk exactly once).

    [Schedule.Work_stealing c] is executed on per-worker Chase–Lev
    deques ({!Deque}): chunks are dealt round-robin up front, a worker
    drains its own deque with mutex-free owner pops, then steals from
    the other workers' deques until every deque is empty. With the
    observability layer on, local pops and steals are counted per slot
    in {!Stats.ws_local_pops} / {!Stats.ws_steals} (their total equals
    the region's chunk count exactly) and each worker's steal phase
    gets a [par.ws.steal] trace span.

    [Schedule.Dnc g] runs the divide-and-conquer splitter: workers
    recursively halve the collapsed interval down to [g] iterations
    through the same deques (split-tree node ids instead of dealt
    chunk indices), so thieves always steal the largest untouched
    subtree. The leaf partition is [Schedule.dnc_leaves] exactly —
    deterministic in [(n, g)] — and with observability on, splits and
    executed leaves are counted in {!Stats.dnc_splits} /
    {!Stats.dnc_grain_chunks} (steals still bill to
    {!Stats.ws_steals}). *)

(** [Pool] (default): dispatch to the persistent domain pool.
    [Spawn]: spawn and join fresh domains per parallel region. *)
type backend = Pool | Spawn

(** Current backend. Initialized from [OMPSIM_BACKEND] ([spawn]
    selects {!Spawn}; anything else, or unset, selects {!Pool}). *)
val backend : backend ref

(** [with_backend b f] runs [f ()] with {!backend} set to [b],
    restoring the previous backend afterwards (also on exceptions). *)
val with_backend : backend -> (unit -> 'a) -> 'a

(** [parallel_for ~nthreads ~schedule ~n f] runs [f q] for every
    [q] in [0..n-1] across [nthreads] domains. *)
val parallel_for : nthreads:int -> schedule:Schedule.t -> n:int -> (int -> unit) -> unit

(** [parallel_for_chunks ~nthreads ~schedule ~n f] hands out whole
    chunks: [f ~thread ~start ~len], letting the §V schemes perform
    one costly recovery per chunk then increment. A worker exception
    propagates to the caller after the region drains, with its
    original backtrace — for structured failures, retries and
    cancellation use {!run_resilient}. *)
val parallel_for_chunks :
  nthreads:int -> schedule:Schedule.t -> n:int -> (thread:int -> start:int -> len:int -> unit) -> unit

(** {2 Supervised (resilient) regions} *)

(** One chunk that kept failing: the range, the worker that gave up on
    it, how many attempts were made, and the last exception with the
    backtrace captured at its raise site. *)
type chunk_failure = {
  start : int;
  len : int;
  worker : int;
  attempts : int;
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

type failure_reason =
  | Chunk_failed  (** a chunk exhausted its retries and the serial fallback failed too *)
  | Deadline_expired  (** the region's deadline passed; remaining work was cancelled *)

(** A structured region failure: never silent-partial — [unrecovered]
    lists exactly the index ranges of [0..n-1] that were not executed. *)
type region_error = {
  reason : failure_reason;
  failures : chunk_failure list;  (** in failure order *)
  unrecovered : (int * int) list;  (** sorted disjoint [(start, len)] ranges *)
}

(** [describe_error e] renders a {!region_error} for logs: reason,
    each failing chunk range/worker/attempts/exception, and the
    unrecovered ranges. *)
val describe_error : region_error -> string

(** [run_resilient ~nthreads ~schedule ~n f] is
    {!parallel_for_chunks} under supervision:

    - every chunk attempt may first be failed or stalled by the
      captured {!Fault} configuration ([?faults], defaulting to
      {!Fault.get} — the [OMPSIM_FAULTS] environment spec);
    - a failing chunk is retried in place up to [retries] times
      (default 0) with exponential backoff — sound when chunks are
      idempotent, which independent iterations (the collapsing
      precondition) guarantee for pure kernels;
    - when a chunk exhausts its retries, or [deadline_ms] elapses, a
      cooperative cancellation token is raised; every schedule —
      including the work-stealing deque path — polls it at chunk-claim
      granularity, so siblings stop promptly and unclaimed work is
      abandoned (the ws deques are still drained so their cache stays
      reusable);
    - after the join, ranges not covered by a successful chunk are
      re-executed *serially* on the calling domain with fault
      injection suppressed ({!Stats.serial_fallbacks}) — unless the
      deadline expired, in which case the gaps are reported instead
      of recovered.

    The result is all-or-error: [Ok ()] means every index in [0..n-1]
    was executed exactly once by a successful attempt; [Error e]
    carries the structured failures and the exact unrecovered ranges.

    With the observability layer on, successful chunks are counted in
    {!Stats.par_chunks}/{!Stats.par_iterations} (so an [Ok] region's
    iteration total reconciles to [n] exactly even across retries and
    fallback), retries in {!Stats.chunk_retries}, cancellations in
    {!Stats.regions_cancelled}, and the region gets a
    [par.resilient] span with [par.retry]/[par.cancel] instants and
    [par.fallback.serial] spans.

    With no faults armed, no deadline and [retries = 0], the only
    overhead over {!parallel_for_chunks} is the per-chunk supervision
    (an [Atomic.get] and a success-list cons) — [bench/main.exe --
    micro-fault] keeps it honest.
    @raise Invalid_argument when [nthreads <= 0], [retries < 0] or
    [deadline_ms < 0]. *)
val run_resilient :
  ?retries:int ->
  ?deadline_ms:int ->
  ?faults:Fault.t option ->
  nthreads:int ->
  schedule:Schedule.t ->
  n:int ->
  (thread:int -> start:int -> len:int -> unit) ->
  (unit, region_error) result

(** {2 Parallel reductions}

    A reduction region hands out chunks like {!parallel_for_chunks},
    but each chunk returns a partial value instead of writing shared
    state. Partials accumulate in per-worker cells padded one cache
    line apart — no sharing, no locks on the hot path
    ({!Stats.reduce_partials}). After the join they are sorted by
    chunk start and folded by a deterministic binary combine tree over
    adjacent positions ({!Stats.reduce_combines}, [par.reduce.combine]
    span): the bracketing is keyed by chunk position in the collapsed
    range, never by worker arrival order, so for an associative
    [combine] the result is bit-for-bit identical across schedules,
    backends, worker counts and fault/retry histories — exactly equal
    to the serial left fold over the chunk partials. *)

(** [reduce_chunks ~nthreads ~schedule ~n ~combine f] reduces
    [f ~thread ~start ~len] over the chunk partition of [0..n-1].
    [None] only when [n <= 0] (no chunks, and reduction operators
    need not have a neutral element — min/max).
    @raise Invalid_argument when [nthreads <= 0]. *)
val reduce_chunks :
  nthreads:int ->
  schedule:Schedule.t ->
  n:int ->
  combine:('a -> 'a -> 'a) ->
  (thread:int -> start:int -> len:int -> 'a) ->
  'a option

(** [reduce_resilient] is {!reduce_chunks} under {!run_resilient}'s
    supervision: a failed chunk attempt contributes no partial, a
    retried chunk contributes exactly once, and serial-fallback ranges
    contribute partials keyed by their own starts — a coarser
    partition of [0,n), but the identical fold for any associative
    [combine]. [Error] carries the structured region failure. *)
val reduce_resilient :
  ?retries:int ->
  ?deadline_ms:int ->
  ?faults:Fault.t option ->
  nthreads:int ->
  schedule:Schedule.t ->
  n:int ->
  combine:('a -> 'a -> 'a) ->
  (thread:int -> start:int -> len:int -> 'a) ->
  ('a option, region_error) result
