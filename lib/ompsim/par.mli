(** Real shared-memory parallel-for on OCaml 5 domains.

    This is the execution counterpart of {!Sim}: an OpenMP-like
    [parallel for] whose schedules match {!Schedule}'s assignment
    exactly. On the single-core container it demonstrates correctness
    (iterations are distributed and executed exactly once) rather than
    speedup; on a multicore machine it parallelizes for real.

    Iterations must be independent — the same precondition the paper's
    transformation requires of the loops being collapsed.

    Execution backend: by default workers are dispatched to the warm
    persistent {!Pool} (no per-region domain creation); the original
    spawn-per-region path is kept behind {!backend} and the
    [OMPSIM_BACKEND=spawn] environment variable. Both backends assign
    identical chunks to identical slot numbers, so results are
    bit-identical across backends and schedules — except
    [Work_stealing], whose chunk-to-worker mapping is inherently
    racy (the multiset of chunks executed is still exactly the
    schedule's chunk list, each chunk exactly once).

    [Schedule.Work_stealing c] is executed on per-worker Chase–Lev
    deques ({!Deque}): chunks are dealt round-robin up front, a worker
    drains its own deque with mutex-free owner pops, then steals from
    the other workers' deques until every deque is empty. With the
    observability layer on, local pops and steals are counted per slot
    in {!Stats.ws_local_pops} / {!Stats.ws_steals} (their total equals
    the region's chunk count exactly) and each worker's steal phase
    gets a [par.ws.steal] trace span. *)

(** [Pool] (default): dispatch to the persistent domain pool.
    [Spawn]: spawn and join fresh domains per parallel region. *)
type backend = Pool | Spawn

(** Current backend. Initialized from [OMPSIM_BACKEND] ([spawn]
    selects {!Spawn}; anything else, or unset, selects {!Pool}). *)
val backend : backend ref

(** [with_backend b f] runs [f ()] with {!backend} set to [b],
    restoring the previous backend afterwards (also on exceptions). *)
val with_backend : backend -> (unit -> 'a) -> 'a

(** [parallel_for ~nthreads ~schedule ~n f] runs [f q] for every
    [q] in [0..n-1] across [nthreads] domains. *)
val parallel_for : nthreads:int -> schedule:Schedule.t -> n:int -> (int -> unit) -> unit

(** [parallel_for_chunks ~nthreads ~schedule ~n f] hands out whole
    chunks: [f ~thread ~start ~len], letting the §V schemes perform
    one costly recovery per chunk then increment. *)
val parallel_for_chunks :
  nthreads:int -> schedule:Schedule.t -> n:int -> (thread:int -> start:int -> len:int -> unit) -> unit
