(** GPU warp-execution model (paper §VI-B).

    The container has no GPU, so the §VI-B claim — distributing
    consecutive collapsed iterations across the threads of a warp
    achieves memory coalescing while recovery stays once-per-thread —
    is evaluated on a warp-level cost model: iterations execute in
    lockstep batches of [warp] lanes; a batch costs its slowest lane
    plus one memory transaction per distinct cache line touched. Two
    iteration-to-lane mappings are compared:

    - [Coalesced]: lane [l] of batch [b] runs collapsed iteration
      [b*W + l] (the paper's scheme — consecutive ranks in a warp);
    - [Blocked]: lane [l] runs iterations [l*ceil(n/W) + b] (contiguous
      per-lane blocks, the natural but uncoalesced mapping).

    With a row-major access function, coalesced mapping touches W
    consecutive addresses per batch (few transactions); blocked mapping
    touches W scattered rows (up to W transactions). *)

type mapping = Coalesced | Blocked

type result = {
  batches : int;  (** lockstep steps executed *)
  compute : float;  (** sum over batches of the slowest lane's cost *)
  transactions : int;  (** memory transactions issued *)
  time : float;  (** compute + transaction_cost * transactions *)
}

(** [run ~n ~warp ~mapping ~cost ~address ~line ~transaction_cost]
    simulates one warp executing [n] collapsed iterations.
    [cost q] is the compute cost of iteration [q] (0-based);
    [address q] its memory address; [line] the cache-line size in
    address units. *)
val run :
  n:int ->
  warp:int ->
  mapping:mapping ->
  cost:(int -> float) ->
  address:(int -> int) ->
  line:int ->
  transaction_cost:float ->
  result

(** A batched lane-walk over a collapsed iteration space — same shape
    as {!Simd.lane_walk}: {!Trahrhe.Recovery.walk_lanes} partially
    applied to a recovery and the warp width. Injected as a function so
    [ompsim] stays independent of the polynomial machinery. *)
type lane_walk = pc:int -> len:int -> (base:int -> count:int -> int array array -> unit) -> unit

(** [execute ~trip ~warp ~walk_lanes ~cost ~address ~line
    ~transaction_cost] really executes a collapsed iteration space of
    [trip] iterations under the §VI-B coalesced mapping: each lane
    block delivered by [walk_lanes] (which must batch at width [warp],
    so lane [l] holds consecutive rank [base + l] — exactly
    [Coalesced]) is one lockstep batch, charged its slowest lane's
    [cost idx] plus one transaction per distinct [address idx / line]
    over the live lanes. Unlike {!run}, [cost]/[address] see the full
    recovered index tuple, not a collapsed rank — the model applied to
    a real kernel.
    @raise Invalid_argument when [warp <= 0], [line <= 0] or
    [trip < 0]. *)
val execute :
  trip:int ->
  warp:int ->
  walk_lanes:lane_walk ->
  cost:(int array -> float) ->
  address:(int array -> int) ->
  line:int ->
  transaction_cost:float ->
  result
