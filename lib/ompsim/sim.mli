(** Discrete simulation of OpenMP parallel-for execution.

    The container running this reproduction has a single CPU, so the
    paper's 12-thread wall-clock measurements (Figure 9) cannot be
    taken natively. This simulator replaces them: given the cost of
    every scheduled iteration (which for non-rectangular nests is where
    all the load imbalance lives) and a schedule, it computes each
    thread's busy time and the loop's makespan exactly — static
    schedules by direct partitioning, dynamic/guided by event-driven
    simulation with a per-dispatch overhead, mirroring the runtime
    costs the paper attributes to [schedule(dynamic)].

    Cost units are arbitrary (call them "work units"); overheads are
    expressed in the same units. *)

type overheads = {
  fork_join : float;  (** one-time parallel region cost *)
  dispatch : float;  (** cost charged per dynamically acquired chunk *)
  chunk_start : float;
      (** cost charged at each chunk start — the collapsed schemes'
          costly index recovery (§V) *)
  per_iter : float;
      (** cost added to every iteration — incrementation overhead of
          the §V scheme, or full recovery cost for the naive scheme *)
}

val no_overheads : overheads

type result = {
  makespan : float;  (** parallel execution time *)
  busy : float array;  (** per-thread busy time *)
  total_work : float;  (** sum of iteration costs without overheads *)
  chunks_dispatched : int;
  imbalance : float;
      (** makespan / (ideal distribution of the executed work),
          >= 1.0; 1.0 means perfectly balanced *)
}

(** [run ~costs ~schedule ~nthreads ~overheads] simulates one parallel
    loop whose iteration [q] costs [costs.(q)]. *)
val run :
  costs:float array -> schedule:Schedule.t -> nthreads:int -> overheads:overheads -> result

(** [serial ~costs ~overheads] is the 1-thread reference time (no
    fork/join, single chunk). *)
val serial : costs:float array -> overheads:overheads -> float

(** [gain ~baseline ~improved] is the paper's Figure 9 metric
    [(t_baseline - t_improved) / t_baseline]. *)
val gain : baseline:float -> improved:float -> float

(** {2 Fault model}

    Cost model of {!Par.run_resilient}'s bounded chunk retry: each
    chunk attempt fails independently with probability [p] and is
    re-run up to [retries] times (the transient-fault model of
    {!Fault}). *)

(** [expected_attempts ~p ~retries] is the mean number of times one
    chunk is executed: [sum_{k=0..retries} p^k =
    (1 - p^(retries+1)) / (1 - p)], i.e. [retries + 1] at [p = 1].
    @raise Invalid_argument when [p] is outside [0,1] or
    [retries < 0]. *)
val expected_attempts : p:float -> retries:int -> float

(** [completion_probability ~p ~retries] is the probability one chunk
    succeeds within its retry budget: [1 - p^(retries+1)]. Chunks that
    miss it fall to the serial path, serializing their whole cost.
    @raise Invalid_argument when [p] is outside [0,1] or
    [retries < 0]. *)
val completion_probability : p:float -> retries:int -> float

(** [resilient_overheads ov ~p ~retries] inflates the per-chunk costs
    of [ov] by {!expected_attempts} — every retry re-pays the dispatch
    bookkeeping and the chunk-start recovery, while [fork_join] and
    the per-iteration cost are paid once (failed attempts abort before
    iterating). *)
val resilient_overheads : overheads -> p:float -> retries:int -> overheads
