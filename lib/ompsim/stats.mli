(** First-class runtime metrics of the execution engine.

    All counters are {!Obsv.Metrics} per-slot counters and are only
    written when {!Obsv.Control.enabled} — a disabled run never touches
    them. Slots are the logical worker slots of a parallel region
    (slot 0 = the dispatching domain), so per-slot values are the
    imbalance histogram the paper's collapsing is meant to flatten. *)

val pool_dispatches : Obsv.Metrics.t
(** jobs a pool worker picked up from its mailbox, per slot *)

val pool_idle_ns : Obsv.Metrics.t
(** time a pool worker spent parked on its mailbox, per slot *)

val pool_fallbacks : Obsv.Metrics.t
(** regions that found the pool busy and fell back to spawn *)

val par_regions : Obsv.Metrics.t
(** parallel regions entered (counted on slot 0) *)

val par_chunks : Obsv.Metrics.t
(** chunks executed, per worker slot *)

val par_iterations : Obsv.Metrics.t
(** iterations executed, per worker slot; summing the slots of one
    region yields the region's trip count exactly *)

val ws_local_pops : Obsv.Metrics.t
(** work-stealing chunks a worker popped from its own deque, per slot;
    [ws_local_pops + ws_steals] totals reconcile exactly with the
    number of chunks the region dealt out *)

val ws_steals : Obsv.Metrics.t
(** work-stealing chunks taken from another worker's deque, billed to
    the thief's slot *)

val ws_steal_retries : Obsv.Metrics.t
(** steal attempts that lost the CAS race and had to re-examine a
    victim — a contention figure, not a work figure *)

val faults_injected : Obsv.Metrics.t
(** synthetic chunk failures raised by {!Fault.inject}, billed to the
    injecting domain *)

val fault_stalls : Obsv.Metrics.t
(** synthetic worker stalls played by {!Fault.inject} *)

val chunk_retries : Obsv.Metrics.t
(** chunk attempts re-run by {!Par.run_resilient} after a failure,
    per worker slot; always <= the failures observed *)

val regions_cancelled : Obsv.Metrics.t
(** resilient regions whose cancellation token fired — a chunk
    exhausted its retries or the deadline expired (counted on the
    slot that cancelled) *)

val serial_fallbacks : Obsv.Metrics.t
(** uncovered ranges re-executed serially by {!Par.run_resilient}
    after the parallel phase (counted on slot 0) *)

val reduce_partials : Obsv.Metrics.t
(** per-chunk partial accumulators produced by a reduction region,
    billed to the producing worker's slot; totals reconcile exactly
    with the chunks the schedule dealt out *)

val reduce_combines : Obsv.Metrics.t
(** applications of the combine operator in the deterministic binary
    combine tree (counted on slot 0, where the tree is folded); equals
    [reduce_partials - 1] whenever at least one partial exists *)

val dnc_splits : Obsv.Metrics.t
(** divide-and-conquer nodes split in two (internal tree nodes),
    billed to the splitting worker; equals [dnc_grain_chunks - 1] in
    an uncancelled region *)

val dnc_grain_chunks : Obsv.Metrics.t
(** divide-and-conquer leaves executed (subranges at or below the
    grain), billed to the executing worker; totals reconcile exactly
    with [Schedule.dnc_leaves] *)

(** [reset ()] zeroes every engine counter (the recovery counters of
    {!Trahrhe.Recovery} included, via the global registry). *)
val reset : unit -> unit

(** [summary ()] is {!Obsv.Trace.summary} — spans plus all counters. *)
val summary : unit -> string

(** [emit_trace_counters ()] records the per-worker chunk/iteration/
    dispatch and local-pop/steal totals as Chrome counter ([C])
    samples, so an exported trace carries the imbalance histogram;
    no-op when disabled. *)
val emit_trace_counters : unit -> unit
