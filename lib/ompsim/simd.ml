type result = { scalar_time : float; vector_time : float; speedup : float }

let run ~costs ~vlength ~fill =
  if vlength <= 0 then invalid_arg "Simd.run";
  let n = Array.length costs in
  let scalar = Array.fold_left ( +. ) 0.0 costs in
  let vector = ref 0.0 in
  let q = ref 0 in
  while !q < n do
    let len = min vlength (n - !q) in
    let widest = ref 0.0 in
    for l = 0 to len - 1 do
      widest := Float.max !widest costs.(!q + l)
    done;
    vector := !vector +. !widest +. (fill *. float_of_int len);
    q := !q + len
  done;
  { scalar_time = scalar;
    vector_time = !vector;
    speedup = (if !vector = 0.0 then 1.0 else scalar /. !vector) }

(* ---- §VI-A real execution over a batched lane-walk ---- *)

type lane_walk = pc:int -> len:int -> (base:int -> count:int -> int array array -> unit) -> unit

type exec_result = {
  iterations : int;
  blocks : int;
  full_blocks : int;
  utilization : float;
}

let execute ~trip ~vlength ~chunk ~walk_lanes ~body =
  if vlength <= 0 then invalid_arg "Simd.execute: vlength";
  if chunk <= 0 then invalid_arg "Simd.execute: chunk";
  if trip < 0 then invalid_arg "Simd.execute: trip";
  let iterations = ref 0 and blocks = ref 0 and full = ref 0 in
  let start = ref 0 in
  while !start < trip do
    let len = min chunk (trip - !start) in
    walk_lanes ~pc:(!start + 1) ~len (fun ~base ~count lanes ->
        incr blocks;
        if count = vlength then incr full;
        iterations := !iterations + count;
        body ~base ~count lanes);
    start := !start + chunk
  done;
  { iterations = !iterations;
    blocks = !blocks;
    full_blocks = !full;
    utilization =
      (if !blocks = 0 then 1.0
       else float_of_int !iterations /. float_of_int (!blocks * vlength)) }
