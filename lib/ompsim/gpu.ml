type mapping = Coalesced | Blocked

type result = { batches : int; compute : float; transactions : int; time : float }

let run ~n ~warp ~mapping ~cost ~address ~line ~transaction_cost =
  if warp <= 0 || line <= 0 then invalid_arg "Gpu.run";
  let per_lane = (n + warp - 1) / warp in
  let iteration ~batch ~lane =
    match mapping with
    | Coalesced ->
      let q = (batch * warp) + lane in
      if q < n then Some q else None
    | Blocked ->
      let q = (lane * per_lane) + batch in
      if q < n && batch < per_lane then Some q else None
  in
  let batches = per_lane in
  let compute = ref 0.0 in
  let transactions = ref 0 in
  (* reusable line set: a batch touches at most [warp] distinct lines
     and the whole run at most [n/line] + 1; size it once from those
     bounds and empty it with [Hashtbl.clear], which keeps the bucket
     array — [Hashtbl.reset] shrank it back every batch, so large
     batch counts paid a rehash churn *)
  let lines = Hashtbl.create (max 16 (min warp ((n / max 1 line) + 1))) in
  for batch = 0 to batches - 1 do
    Hashtbl.clear lines;
    let slowest = ref 0.0 in
    for lane = 0 to warp - 1 do
      match iteration ~batch ~lane with
      | None -> ()
      | Some q ->
        slowest := Float.max !slowest (cost q);
        Hashtbl.replace lines (address q / line) ()
    done;
    compute := !compute +. !slowest;
    transactions := !transactions + Hashtbl.length lines
  done;
  { batches;
    compute = !compute;
    transactions = !transactions;
    time = !compute +. (transaction_cost *. float_of_int !transactions) }

(* ---- §VI-B real execution over a batched lane-walk ---- *)

type lane_walk = pc:int -> len:int -> (base:int -> count:int -> int array array -> unit) -> unit

let execute ~trip ~warp ~walk_lanes ~cost ~address ~line ~transaction_cost =
  if warp <= 0 || line <= 0 then invalid_arg "Gpu.execute";
  if trip < 0 then invalid_arg "Gpu.execute: trip";
  let batches = ref 0 in
  let compute = ref 0.0 in
  let transactions = ref 0 in
  let lines = Hashtbl.create (max 16 (min warp ((trip / max 1 line) + 1))) in
  let scratch = ref [||] in
  walk_lanes ~pc:1 ~len:trip (fun ~base:_ ~count lanes ->
      let d = Array.length lanes in
      if Array.length !scratch <> d then scratch := Array.make d 0;
      let s = !scratch in
      Hashtbl.clear lines;
      let slowest = ref 0.0 in
      for l = 0 to count - 1 do
        for k = 0 to d - 1 do
          s.(k) <- lanes.(k).(l)
        done;
        slowest := Float.max !slowest (cost s);
        Hashtbl.replace lines (address s / line) ()
      done;
      incr batches;
      compute := !compute +. !slowest;
      transactions := !transactions + Hashtbl.length lines);
  { batches = !batches;
    compute = !compute;
    transactions = !transactions;
    time = !compute +. (transaction_cost *. float_of_int !transactions) }
