(** Wall-clock micro-timing used to calibrate the simulator's overhead
    constants against this machine, and to take the (serial) Figure 10
    measurements natively. *)

(** [time f] is the wall-clock seconds taken by [f ()]. *)
val time : (unit -> unit) -> float

(** [time_best ?reps f] is the minimum of [reps] (default 3) runs —
    the usual noise-resistant estimator for short serial kernels. *)
val time_best : ?reps:int -> (unit -> unit) -> float

(** [ns_per_iter ~iters f] runs [f iters] and reports nanoseconds per
    iteration. *)
val ns_per_iter : iters:int -> (int -> unit) -> float

(** Default overhead constants (in units of one innermost-loop work
    unit) used for Figure 9 simulations; see DESIGN.md. The dispatch
    overhead corresponds to one atomic chunk acquisition in libgomp,
    two orders of magnitude above a flop; the recovery cost is a few
    hundred flops worth of [sqrt]/[cpow]. *)
val default_dispatch : float

val default_fork_join : float
val default_recovery : float
val default_increment : float

(** [measure_region_overhead ?calls ?warmup ~backend ~nthreads ()]
    measures the per-call overhead, in nanoseconds, of an (almost)
    empty [Par.parallel_for] region on the given backend — i.e. the
    real fork/join (spawn) or dispatch (pool) cost on this machine.
    [warmup] (default 3) untimed calls precede the [calls] (default
    200) timed ones, so lazy pool creation is not billed. The previous
    backend is restored afterwards. *)
val measure_region_overhead :
  ?calls:int -> ?warmup:int -> backend:Par.backend -> nthreads:int -> unit -> float
