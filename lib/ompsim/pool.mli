(** Persistent domain pool.

    OCaml 5 [Domain.spawn]/[Domain.join] cost tens of microseconds per
    domain — a fork/join overhead the paper's Figure 10 explicitly
    budgets against. The pool keeps worker domains alive across
    parallel regions: each worker parks on its own mailbox (mutex +
    condition variable) and is handed closures to run; completion is
    signalled through a reusable countdown latch, so a dispatch costs
    a few condition-variable signals instead of domain creation.

    The pool is created lazily on the first multi-threaded dispatch
    and grows on demand when a region requests more workers than are
    alive; it is shut down automatically at process exit. Worker
    [slot] numbers are stable: worker [j] always runs as slot [j]
    (the calling domain is slot 0).

    Nested or concurrent dispatches do not deadlock: when the pool is
    busy, {!run} falls back to spawning short-lived domains, matching
    the semantics of the non-pooled path. *)

(** [run ~nthreads f] executes [f 0 .. f (nthreads-1)] concurrently —
    [f 0] on the calling domain, the rest on pool workers — and
    returns when all have finished. If any [f t] raised, the first
    failure recorded (worker slot, exception, backtrace) wins and its
    exception is re-raised after all workers finished — with the
    original backtrace, via [Printexc.raise_with_backtrace], so a
    crash report points at the worker's raise site, not at the pool's
    join.
    @raise Invalid_argument when [nthreads <= 0]. *)
val run : nthreads:int -> (int -> unit) -> unit

(** [run_spawned ~nthreads f] is {!run} on freshly spawned domains
    instead of the pool — the nested-region fallback and the
    [OMPSIM_BACKEND=spawn] reference path. Same failure contract as
    {!run} (first failure wins, original backtrace preserved), and the
    calling domain always joins every spawned domain, even when
    [f 0] itself raises. *)
val run_spawned : nthreads:int -> (int -> unit) -> unit

(** [size ()] is the number of live pool workers (0 before the first
    dispatch). *)
val size : unit -> int

(** [pending ()] is the completion latch's outstanding-worker count —
    0 whenever no dispatch is in flight. Exposed for the soak tests'
    leak check. *)
val pending : unit -> int

(** [queued_jobs ()] counts workers holding a not-yet-started job in
    their mailbox — 0 whenever no dispatch is in flight. *)
val queued_jobs : unit -> int

(** [shutdown ()] stops and joins all pool workers (called
    automatically at exit; safe to call more than once — a later
    {!run} simply re-creates workers). *)
val shutdown : unit -> unit
