(* Fixed-capacity Chase–Lev deque; see deque.mli for the contract.

   Invariants: [top <= bottom + 1]; live elements occupy indices
   [top .. bottom - 1] of the circular buffer. OCaml [Atomic] operations
   are sequentially consistent, which subsumes the fences of the
   original algorithm; buffer cells are plain (non-atomic) — a cell is
   written by the owner before the publishing [Atomic.set] on [bottom]
   and, because capacity is fixed and checked, never rewritten while a
   thief holding an older [top] may still read it. Cells are
   deliberately NOT cleared on pop/steal: the executor's payloads are
   unboxed ints, and skipping the clear keeps the hot path free of
   stores and of the pointer write barrier. *)

type 'a t = {
  tasks : 'a array;
  mask : int;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

type 'a steal_result = Stolen of 'a | Empty | Retry

let create ~capacity ~dummy =
  if capacity < 0 then invalid_arg "Deque.create";
  let cap =
    let c = ref 1 in
    while !c < max 1 capacity do
      c := !c * 2
    done;
    !c
  in
  { tasks = Array.make cap dummy; mask = cap - 1; top = Atomic.make 0; bottom = Atomic.make 0 }

let size d = max 0 (Atomic.get d.bottom - Atomic.get d.top)

let capacity d = d.mask + 1

(* bulk push of [n] elements with ONE publishing store; quiescent-only
   (no concurrent owner or thief) — the executor refills its cached
   deques between parallel regions, after the pool join. Indices
   continue monotonically from the consumed prefix, so nothing is
   reset and thieves entering the next region observe a consistent
   [top <= bottom] window. *)
let refill d n f =
  let b = Atomic.get d.bottom in
  if n < 0 || n + (b - Atomic.get d.top) > d.mask + 1 then invalid_arg "Deque.refill";
  for i = 0 to n - 1 do
    d.tasks.((b + n - 1 - i) land d.mask) <- f i
  done;
  Atomic.set d.bottom (b + n)

(* single-threaded constructor for the pre-dealt case: plain cell
   writes and ONE publishing [Atomic.set] instead of a fence per
   [push]; [f 0] comes out of [pop] first *)
let of_init ~dummy n f =
  if n < 0 then invalid_arg "Deque.of_init";
  let d = create ~capacity:n ~dummy in
  for i = 0 to n - 1 do
    d.tasks.((n - 1 - i) land d.mask) <- f i
  done;
  Atomic.set d.bottom n;
  d

let push d x =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  if b - t > d.mask then failwith "Deque.push: full";
  d.tasks.(b land d.mask) <- x;
  Atomic.set d.bottom (b + 1)

let pop d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* empty: restore bottom *)
    Atomic.set d.bottom t;
    None
  end
  else if b > t then
    (* more than one element: no thief can reach index b *)
    Some d.tasks.(b land d.mask)
  else begin
    (* exactly one element: race the thieves for it via [top] *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then Some d.tasks.(b land d.mask) else None
  end

(* batched owner pop: one bottom-fence amortized over up to
   [Array.length buf] elements. Safety of the exclusive fast path:
   after [bottom := b - k] the only steal that can still land above
   the new bottom is of the single element [t] observed by the
   subsequent read of [top] — a thief whose stale read of [bottom]
   predates our write must have read [top] even earlier, and [top]
   only advances one CAS at a time, so it can still be racing for
   element [t] only. Hence [t < b - k] makes [b-k .. b-1] exclusively
   the owner's. On a contended tail the elements are pushed back
   (bottom restored) and the normal one-element [pop] protocol
   settles the race. *)
let pop_batch d buf =
  let want = Array.length buf in
  if want = 0 then 0
  else begin
    let b = Atomic.get d.bottom in
    let k = min want (b - Atomic.get d.top) in
    if k <= 1 then (
      match pop d with
      | Some x ->
        buf.(0) <- x;
        1
      | None -> 0)
    else begin
      Atomic.set d.bottom (b - k);
      let t = Atomic.get d.top in
      if t < b - k then begin
        for i = 0 to k - 1 do
          buf.(i) <- d.tasks.((b - 1 - i) land d.mask)
        done;
        k
      end
      else begin
        Atomic.set d.bottom b;
        match pop d with
        | Some x ->
          buf.(0) <- x;
          1
        | None -> 0
      end
    end
  end

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then Empty
  else begin
    (* read before the CAS: the fixed-capacity discipline guarantees
       the cell is not recycled while our [t] could still win *)
    let x = d.tasks.(t land d.mask) in
    if Atomic.compare_and_set d.top t (t + 1) then Stolen x else Retry
  end
