(** Vectorization model for the §VI-A scheme.

    The collapsed loop is executed in groups of [vlength] consecutive
    iterations: a scalar prologue materializes the [vlength] index
    tuples by incrementation (cost [fill] each), then the group's
    statements run vectorized — one vector operation per [vlength]
    lanes, i.e. [group_cost = max lane cost + vlength * fill]. The
    scalar baseline pays each iteration in full. Recovery is charged
    once per thread as usual. *)

type result = {
  scalar_time : float;
  vector_time : float;
  speedup : float;
}

(** [run ~costs ~vlength ~fill] models one thread executing the whole
    cost array. [fill] is the per-iteration cost of materializing one
    index tuple in the §VI-A buffer (incrementation + store). *)
val run : costs:float array -> vlength:int -> fill:float -> result

(** A batched lane-walk over a collapsed iteration space, e.g.
    {!Trahrhe.Recovery.walk_lanes} partially applied to a recovery and
    a lane width: one recovery per chunk, then blocks of consecutive
    collapsed ranks materialized in lockstep into a
    structure-of-arrays buffer ([lanes.(k).(l)] = level [k] of lane
    [l]; [base] = 1-based rank of lane 0; the first [count] lanes are
    valid). Injected as a function so [ompsim] stays independent of
    the polynomial machinery. *)
type lane_walk = pc:int -> len:int -> (base:int -> count:int -> int array array -> unit) -> unit

type exec_result = {
  iterations : int;  (** lanes delivered — the trip count when done *)
  blocks : int;  (** vector blocks executed *)
  full_blocks : int;  (** blocks with all [vlength] lanes live *)
  utilization : float;  (** iterations / (blocks * vlength) *)
}

(** [execute ~trip ~vlength ~chunk ~walk_lanes ~body] really executes
    a collapsed iteration space of [trip] iterations as §VI-A
    prescribes: the range is cut into [chunk]-sized pieces (one
    closed-form recovery each — the per-thread chunk of the §V
    schemes), every piece is delivered by [walk_lanes] as
    [vlength]-wide lane blocks, and [body ~base ~count lanes] runs
    once per block over the materialized index tuples — the vectorized
    statement of the transformed loop. [walk_lanes] must batch at the
    same [vlength] (pass the same width to
    {!Trahrhe.Recovery.walk_lanes}); [full_blocks]/[utilization]
    report how often the vector width was actually filled.
    @raise Invalid_argument when [vlength <= 0], [chunk <= 0] or
    [trip < 0]. *)
val execute :
  trip:int ->
  vlength:int ->
  chunk:int ->
  walk_lanes:lane_walk ->
  body:(base:int -> count:int -> int array array -> unit) ->
  exec_result
