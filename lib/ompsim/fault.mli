(** Deterministic, seeded fault injection for the execution runtime.

    The fault-tolerance machinery of {!Par.run_resilient} (retry,
    cancellation, serial fallback) is only as trustworthy as the test
    pressure behind it — this module supplies that pressure. A fault
    {!t} describes a synthetic failure model: with probability [p] a
    chunk *attempt* raises {!Injected} before any work is done, and
    with probability [stall_p] the attempt is first delayed by a busy
    wait of [stall_us] microseconds (exercising the cancellation and
    deadline paths without wall-clock flakiness).

    Decisions are a pure hash of [(seed, chunk start, attempt)] — no
    hidden RNG state — so a run is reproducible bit-for-bit: the same
    seed fails the same chunks on the same attempts regardless of
    thread interleaving, schedule, or how many workers race. Because a
    retried attempt hashes differently, [p < 1] models transient
    faults that eventually pass, while [p = 1] models a hard-poisoned
    range that only the injection-free serial fallback can recover.

    Injection is *opt-in per call site*: nothing in the runtime
    consults the global configuration except {!Par.run_resilient},
    which captures it once at region entry and calls {!inject} at each
    chunk-attempt start. The plain {!Par.parallel_for_chunks} path
    never checks it, so arming [OMPSIM_FAULTS] cannot break
    non-resilient code — the same compile-out discipline as
    {!Obsv.Control}: disabled means one [Atomic.get] on region entry,
    zero per-chunk cost.

    Faults are injected at the *start* of an attempt, before the chunk
    body runs, so a failed attempt has performed no work and a retry
    is safe even for kernels that accumulate (the retry contract of
    {!Par.run_resilient} only requires idempotence for exceptions the
    kernel itself raises mid-chunk). *)

type t = {
  p : float;  (** per chunk-attempt failure probability, in [0,1] *)
  seed : int;  (** hash seed; same seed = same failures, always *)
  stall_p : float;  (** per chunk-attempt stall probability *)
  stall_us : int;  (** stall duration, microseconds of busy wait *)
  max_injections : int;  (** global injection budget; negative = unlimited *)
}

(** The synthetic failure raised by {!inject}: which chunk range, on
    which attempt. Carries no kernel state — the attempt did no work. *)
exception Injected of { start : int; len : int; attempt : int }

(** [p=0.1], seed 42, no stalls, unlimited budget — what a bare
    [OMPSIM_FAULTS=1] arms. *)
val default : t

(** [of_spec s] parses a fault spec: either an on-switch
    ([1]/[on]/[true]/[yes] give {!default}) or comma-separated
    [key=value] fields over keys [p], [seed], [stall], [stall_us],
    [max] (e.g. ["p=0.3,seed=7,stall=0.05,stall_us=200,max=50"];
    unmentioned keys keep their {!default}). Rejects unknown keys,
    malformed numbers, probabilities outside [0,1] and negative
    durations with a descriptive message. *)
val of_spec : string -> (t, string) result

(** [to_spec t] prints a spec {!of_spec} parses back to [t]. *)
val to_spec : t -> string

(** Global configuration, initialized from the [OMPSIM_FAULTS]
    environment variable when it holds a valid spec (an invalid spec
    is reported on stderr once and ignored — an injection harness must
    never be able to corrupt a run silently). *)
val get : unit -> t option

val set : t option -> unit

(** [armed ()] = [get () <> None]. *)
val armed : unit -> bool

(** [with_faults cfg f] runs [f ()] with the global configuration set
    to [cfg], restoring the previous value afterwards (also on
    exceptions). *)
val with_faults : t option -> (unit -> 'a) -> 'a

(** [decide cfg ~start ~attempt] is the pure injection decision for
    one chunk attempt — [true] iff {!inject} would raise (ignoring the
    budget). Exposed for determinism tests and for predicting a run's
    failure set. *)
val decide : t -> start:int -> attempt:int -> bool

(** [inject cfg ~start ~len ~attempt] plays one chunk attempt against
    the fault model: possibly busy-waits [stall_us], then possibly
    raises {!Injected}. Bumps {!Stats.faults_injected} /
    {!Stats.fault_stalls} when the observability layer is on.
    Call sites: the supervised chunk loop of {!Par.run_resilient};
    the serial fallback deliberately does not call it. *)
val inject : t -> start:int -> len:int -> attempt:int -> unit

(** [reset_budget ()] re-arms the global [max_injections] budget
    (shared across regions so a budgeted spec bounds a whole run). *)
val reset_budget : unit -> unit
