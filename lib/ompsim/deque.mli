(** Chase–Lev work-stealing deque on OCaml [Atomic].

    One owner pushes and pops at the bottom; any number of thieves
    steal from the top. No mutex anywhere: the owner's hot path is a
    couple of sequentially-consistent atomic loads/stores, and a thief
    claims an element with a single compare-and-set on [top]. This is
    the contention-free dispatch structure the work-stealing schedule
    ({!Schedule.Work_stealing}) replaces the centralized dynamic queue
    with.

    The implementation is the fixed-capacity variant of the Chase–Lev
    deque (Chase & Lev, SPAA'05; memory-model treatment as in Lê et
    al., PPoPP'13): the buffer never grows, so a task slot written by
    {!push} is never recycled while a thief may still read it —
    capacity is declared up front and {!push} raises when exceeded.
    The parallel executor sizes each deque to the worker's chunk
    count, so the bound is exact, never a tuning knob.

    Buffer cells are plain [ 'a array] slots seeded with a caller-given
    [dummy], and they are NOT cleared when an element is taken — the
    hot path stays free of stores and of the pointer write barrier.
    Consequently the deque retains (against the GC) the last value
    written to each of its [capacity] slots until overwritten or the
    deque itself is dropped. The executor stores unboxed chunk
    indices, for which retention is moot; use a cheap [dummy] (e.g.
    [0]) for such payloads. *)

type 'a t

(** Outcome of one {!steal} attempt. [Retry] means the CAS on [top]
    was lost to a concurrent steal or to the owner taking the last
    element — the deque may still hold work, try again. [Empty] means
    the deque held nothing at the time of the read. *)
type 'a steal_result = Stolen of 'a | Empty | Retry

(** [create ~capacity ~dummy] makes a deque able to hold up to
    [capacity] elements at once (rounded up to a power of two
    internally). [dummy] seeds the empty cells; it is never returned.
    @raise Invalid_argument when [capacity < 0]. *)
val create : capacity:int -> dummy:'a -> 'a t

(** [of_init ~dummy n f] builds a deque holding [f 0 .. f (n-1)], with
    [f 0] returned first by {!pop} and [f (n-1)] taken first by
    {!steal}. Single-threaded constructor for the pre-dealt chunk
    sequences: plain cell writes plus one publishing atomic store,
    instead of a fence per {!push}; publish the deque to other domains
    through a synchronizing handoff (the executor's pool dispatch)
    before they touch it.
    @raise Invalid_argument when [n < 0]. *)
val of_init : dummy:'a -> int -> (int -> 'a) -> 'a t

(** [push d x] appends [x] at the bottom. Owner-only.
    @raise Failure when the deque is full (the executor never
    overfills: deques are sized to their chunk lists). *)
val push : 'a t -> 'a -> unit

(** [pop d] takes the most recently pushed element, or [None] when
    the deque is empty. Owner-only; safe against concurrent
    {!steal}s, including the one-element race. *)
val pop : 'a t -> 'a option

(** [pop_batch d buf] takes up to [Array.length buf] elements from the
    bottom in {!pop} order, writing them to [buf.(0..count-1)] and
    returning [count] (0 when empty). Owner-only. One bottom
    store+fence is amortized over the whole batch — the owner's
    drain-loop fast path; falls back to the one-element {!pop}
    protocol on a contended tail, so a call may return fewer elements
    than available. *)
val pop_batch : 'a t -> 'a array -> int

(** [steal d] tries to take the oldest element. Safe from any
    domain; never blocks. *)
val steal : 'a t -> 'a steal_result

(** [size d] is a racy snapshot of the element count (exact when
    quiescent) — for tests and stats, not for synchronization. *)
val size : 'a t -> int

(** [capacity d] is the (power-of-two) cell count of the buffer. *)
val capacity : 'a t -> int

(** [refill d n f] bulk-pushes [f 0 .. f (n-1)] with a single
    publishing store ([f 0] popped first among them). Quiescent-only:
    the caller must guarantee no domain is concurrently operating on
    [d] — the executor refills its cached per-worker deques between
    parallel regions, after the pool join has quiesced all workers.
    @raise Invalid_argument when [n < 0] or the elements would not
    fit. *)
val refill : 'a t -> int -> (int -> 'a) -> unit
