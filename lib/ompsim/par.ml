type backend = Pool | Spawn

let default_backend =
  match Sys.getenv_opt "OMPSIM_BACKEND" with
  | Some ("spawn" | "SPAWN" | "Spawn") -> Spawn
  | _ -> Pool

let backend = ref default_backend

let with_backend b f =
  let saved = !backend in
  backend := b;
  Fun.protect ~finally:(fun () -> backend := saved) f

(* hand the per-slot worker function to warm pool domains (default) or
   to freshly spawned ones (the pre-pool path, kept behind the flag) *)
let run_workers ~nthreads worker =
  if nthreads = 1 then worker 0
  else
    match !backend with
    | Pool -> Pool.run ~nthreads worker
    | Spawn ->
      let domains = Array.init (nthreads - 1) (fun t -> Domain.spawn (fun () -> worker (t + 1))) in
      worker 0;
      Array.iter Domain.join domains

(* obsv wrapper: count chunks/iterations on the executing slot and put
   a span around each chunk; whether a region is instrumented is
   decided once at entry so its counters stay self-consistent *)
let instrument_chunks f ~thread ~start ~len =
  Obsv.Metrics.incr Stats.par_chunks ~slot:thread;
  Obsv.Metrics.add Stats.par_iterations ~slot:thread len;
  Obsv.Trace.with_span "par.chunk"
    ~args:[ ("slot", Obsv.Trace.Int thread); ("start", Obsv.Trace.Int start); ("len", Obsv.Trace.Int len) ]
    (fun () -> f ~thread ~start ~len)

(* work-stealing execution: chunks are dealt round-robin into
   per-worker Chase-Lev deques up front; a worker drains its own deque
   with owner pops (no shared state touched), then turns thief and
   sweeps the other deques until a full sweep finds them all empty.
   Retry outcomes (lost CAS races) mean somebody else made progress, so
   a sweep that saw only Retry/Empty keeps sweeping. *)
(* cached per-worker deques, reused across work-stealing regions so a
   region's setup is a refill of live cells, not an allocation *)
let ws_deque_cache : int Deque.t array Atomic.t = Atomic.make [||]

let run_work_stealing ~nthreads ~chunk ~n ~obsv f =
  (* chunks are dealt round-robin by INDEX — chunk [c] covers
     [c*chunk, min ((c+1)*chunk, n)) and belongs to worker
     [c mod nthreads] — so the deques hold unboxed ints and nothing is
     materialized per chunk (the same deal [round_robin_chunks]
     computes, without building the lists). [of_init] in ascending
     order: owner pops front-first, thieves steal the owner's tail. *)
  let nchunks = if n <= 0 then 0 else (n + chunk - 1) / chunk in
  (* per-worker deques persist across regions (like the pool's
     domains): a region takes the cached set, refills in place when
     the capacity fits, and puts the set back when done. The exchange
     makes a concurrent region simply build its own fresh set. *)
  let cached = Atomic.exchange ws_deque_cache [||] in
  let deques =
    Array.init nthreads (fun t ->
        let mine = if nchunks <= t then 0 else 1 + ((nchunks - 1 - t) / nthreads) in
        let deal j = t + (j * nthreads) in
        if t < Array.length cached && Deque.capacity cached.(t) >= mine then begin
          Deque.refill cached.(t) mine deal;
          cached.(t)
        end
        else Deque.of_init ~dummy:0 mine deal)
  in
  let exec t c =
    let start = c * chunk in
    f ~thread:t ~start ~len:(min chunk (n - start))
  in
  run_workers ~nthreads (fun t ->
      let my = deques.(t) in
      (* owner drain by batches: one bottom-fence per up to 32 chunks *)
      let buf = Array.make 32 0 in
      let rec drain () =
        let k = Deque.pop_batch my buf in
        if k > 0 then begin
          if obsv then Obsv.Metrics.add Stats.ws_local_pops ~slot:t k;
          for i = 0 to k - 1 do
            exec t buf.(i)
          done;
          drain ()
        end
      in
      drain ();
      if nthreads > 1 then begin
        let steal_phase () =
          let idle = ref false in
          while not !idle do
            let progressed = ref false and contended = ref false in
            for i = 1 to nthreads - 1 do
              let victim = deques.((t + i) mod nthreads) in
              let continue = ref true in
              while !continue do
                match Deque.steal victim with
                | Deque.Stolen c ->
                  if obsv then Obsv.Metrics.incr Stats.ws_steals ~slot:t;
                  progressed := true;
                  exec t c
                | Deque.Retry ->
                  if obsv then Obsv.Metrics.incr Stats.ws_steal_retries ~slot:t;
                  contended := true;
                  continue := false
                | Deque.Empty -> continue := false
              done
            done;
            if not (!progressed || !contended) then idle := true
          done
        in
        if obsv then
          Obsv.Trace.with_span "par.ws.steal" ~args:[ ("slot", Obsv.Trace.Int t) ] steal_phase
        else steal_phase ()
      end);
  (* all workers have joined: the deques are quiescent and empty *)
  Atomic.set ws_deque_cache deques

let parallel_for_chunks ~nthreads ~schedule ~n f =
  if nthreads <= 0 then invalid_arg "Par.parallel_for_chunks";
  let obsv = Obsv.Control.enabled () in
  let f = if obsv then instrument_chunks f else f in
  let dispatch () =
    match schedule with
  | Schedule.Static ->
    let blocks = Schedule.static_blocks ~nthreads ~n in
    run_workers ~nthreads (fun t ->
        let start, len = blocks.(t) in
        if len > 0 then f ~thread:t ~start ~len)
  | Schedule.Static_chunk c ->
    if c <= 0 then invalid_arg "Par: static chunk";
    let lists = Schedule.round_robin_chunks ~chunk:c ~nthreads ~n in
    run_workers ~nthreads (fun t ->
        List.iter (fun (start, len) -> f ~thread:t ~start ~len) lists.(t))
  | Schedule.Dynamic c ->
    if c <= 0 then invalid_arg "Par: dynamic chunk";
    let next = Atomic.make 0 in
    run_workers ~nthreads (fun t ->
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next c in
          if start >= n then continue := false
          else f ~thread:t ~start ~len:(min c (n - start))
        done)
  | Schedule.Guided c ->
    if c <= 0 then invalid_arg "Par: guided chunk";
    let next = Atomic.make 0 in
    run_workers ~nthreads (fun t ->
        let continue = ref true in
        while !continue do
          (* optimistic guided sizing: read remaining, CAS the claim *)
          let start = Atomic.get next in
          if start >= n then continue := false
          else begin
            let len = Schedule.next_guided ~chunk:c ~nthreads ~remaining:(n - start) in
            if Atomic.compare_and_set next start (start + len) then
              f ~thread:t ~start ~len:(min len (n - start))
          end
        done)
  | Schedule.Work_stealing c ->
    if c <= 0 then invalid_arg "Par: work-stealing chunk";
    run_work_stealing ~nthreads ~chunk:c ~n ~obsv f
  in
  if not obsv then dispatch ()
  else begin
    Obsv.Metrics.incr Stats.par_regions ~slot:0;
    Obsv.Trace.with_span "par.region"
      ~args:
        [ ("n", Obsv.Trace.Int n);
          ("threads", Obsv.Trace.Int nthreads);
          ("schedule", Obsv.Trace.Str (Schedule.to_string schedule)) ]
      dispatch
  end

let parallel_for ~nthreads ~schedule ~n f =
  parallel_for_chunks ~nthreads ~schedule ~n (fun ~thread:_ ~start ~len ->
      for q = start to start + len - 1 do
        f q
      done)
