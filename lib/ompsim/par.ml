type backend = Pool | Spawn

let default_backend =
  match Sys.getenv_opt "OMPSIM_BACKEND" with
  | Some ("spawn" | "SPAWN" | "Spawn") -> Spawn
  | _ -> Pool

let backend = ref default_backend

let with_backend b f =
  let saved = !backend in
  backend := b;
  Fun.protect ~finally:(fun () -> backend := saved) f

(* hand the per-slot worker function to warm pool domains (default) or
   to freshly spawned ones (the pre-pool path, kept behind the flag) *)
let run_workers ~nthreads worker =
  if nthreads = 1 then worker 0
  else
    match !backend with
    | Pool -> Pool.run ~nthreads worker
    | Spawn ->
      let domains = Array.init (nthreads - 1) (fun t -> Domain.spawn (fun () -> worker (t + 1))) in
      worker 0;
      Array.iter Domain.join domains

(* obsv wrapper: count chunks/iterations on the executing slot and put
   a span around each chunk; whether a region is instrumented is
   decided once at entry so its counters stay self-consistent *)
let instrument_chunks f ~thread ~start ~len =
  Obsv.Metrics.incr Stats.par_chunks ~slot:thread;
  Obsv.Metrics.add Stats.par_iterations ~slot:thread len;
  Obsv.Trace.with_span "par.chunk"
    ~args:[ ("slot", Obsv.Trace.Int thread); ("start", Obsv.Trace.Int start); ("len", Obsv.Trace.Int len) ]
    (fun () -> f ~thread ~start ~len)

let parallel_for_chunks ~nthreads ~schedule ~n f =
  if nthreads <= 0 then invalid_arg "Par.parallel_for_chunks";
  let obsv = Obsv.Control.enabled () in
  let f = if obsv then instrument_chunks f else f in
  let dispatch () =
    match schedule with
  | Schedule.Static ->
    let blocks = Schedule.static_blocks ~nthreads ~n in
    run_workers ~nthreads (fun t ->
        let start, len = blocks.(t) in
        if len > 0 then f ~thread:t ~start ~len)
  | Schedule.Static_chunk c ->
    if c <= 0 then invalid_arg "Par: static chunk";
    let lists = Schedule.round_robin_chunks ~chunk:c ~nthreads ~n in
    run_workers ~nthreads (fun t ->
        List.iter (fun (start, len) -> f ~thread:t ~start ~len) lists.(t))
  | Schedule.Dynamic c ->
    if c <= 0 then invalid_arg "Par: dynamic chunk";
    let next = Atomic.make 0 in
    run_workers ~nthreads (fun t ->
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next c in
          if start >= n then continue := false
          else f ~thread:t ~start ~len:(min c (n - start))
        done)
  | Schedule.Guided c ->
    if c <= 0 then invalid_arg "Par: guided chunk";
    let next = Atomic.make 0 in
    run_workers ~nthreads (fun t ->
        let continue = ref true in
        while !continue do
          (* optimistic guided sizing: read remaining, CAS the claim *)
          let start = Atomic.get next in
          if start >= n then continue := false
          else begin
            let len = Schedule.next_guided ~chunk:c ~nthreads ~remaining:(n - start) in
            if Atomic.compare_and_set next start (start + len) then
              f ~thread:t ~start ~len:(min len (n - start))
          end
        done)
  in
  if not obsv then dispatch ()
  else begin
    Obsv.Metrics.incr Stats.par_regions ~slot:0;
    Obsv.Trace.with_span "par.region"
      ~args:
        [ ("n", Obsv.Trace.Int n);
          ("threads", Obsv.Trace.Int nthreads);
          ("schedule", Obsv.Trace.Str (Schedule.to_string schedule)) ]
      dispatch
  end

let parallel_for ~nthreads ~schedule ~n f =
  parallel_for_chunks ~nthreads ~schedule ~n (fun ~thread:_ ~start ~len ->
      for q = start to start + len - 1 do
        f q
      done)
