type backend = Pool | Spawn

let default_backend =
  match Sys.getenv_opt "OMPSIM_BACKEND" with
  | Some ("spawn" | "SPAWN" | "Spawn") -> Spawn
  | _ -> Pool

let backend = ref default_backend

let with_backend b f =
  let saved = !backend in
  backend := b;
  Fun.protect ~finally:(fun () -> backend := saved) f

(* hand the per-slot worker function to warm pool domains (default) or
   to freshly spawned ones (the pre-pool path, kept behind the flag);
   both re-raise a worker failure with its original backtrace *)
let run_workers ~nthreads worker =
  if nthreads = 1 then worker 0
  else
    match !backend with
    | Pool -> Pool.run ~nthreads worker
    | Spawn -> Pool.run_spawned ~nthreads worker

(* obsv wrapper: count chunks/iterations on the executing slot and put
   a span around each chunk; whether a region is instrumented is
   decided once at entry so its counters stay self-consistent *)
let instrument_chunks f ~thread ~start ~len =
  Obsv.Metrics.incr Stats.par_chunks ~slot:thread;
  Obsv.Metrics.add Stats.par_iterations ~slot:thread len;
  Obsv.Trace.with_span "par.chunk"
    ~args:[ ("slot", Obsv.Trace.Int thread); ("start", Obsv.Trace.Int start); ("len", Obsv.Trace.Int len) ]
    (fun () -> f ~thread ~start ~len)

(* work-stealing execution: chunks are dealt round-robin into
   per-worker Chase-Lev deques up front; a worker drains its own deque
   with owner pops (no shared state touched), then turns thief and
   sweeps the other deques until a full sweep finds them all empty.
   Retry outcomes (lost CAS races) mean somebody else made progress, so
   a sweep that saw only Retry/Empty keeps sweeping. *)
(* cached per-worker deques, reused across work-stealing regions so a
   region's setup is a refill of live cells, not an allocation *)
let ws_deque_cache : int Deque.t array Atomic.t = Atomic.make [||]

let run_work_stealing ~nthreads ~chunk ~n ~obsv ~stop f =
  (* chunks are dealt round-robin by INDEX — chunk [c] covers
     [c*chunk, min ((c+1)*chunk, n)) and belongs to worker
     [c mod nthreads] — so the deques hold unboxed ints and nothing is
     materialized per chunk (the same deal [round_robin_chunks]
     computes, without building the lists). [of_init] in ascending
     order: owner pops front-first, thieves steal the owner's tail. *)
  let nchunks = if n <= 0 then 0 else (n + chunk - 1) / chunk in
  (* per-worker deques persist across regions (like the pool's
     domains): a region takes the cached set, refills in place when
     the capacity fits, and puts the set back when done. The exchange
     makes a concurrent region simply build its own fresh set. *)
  let cached = Atomic.exchange ws_deque_cache [||] in
  let deques =
    Array.init nthreads (fun t ->
        let mine = if nchunks <= t then 0 else 1 + ((nchunks - 1 - t) / nthreads) in
        let deal j = t + (j * nthreads) in
        if t < Array.length cached && Deque.capacity cached.(t) >= mine then begin
          Deque.refill cached.(t) mine deal;
          cached.(t)
        end
        else Deque.of_init ~dummy:0 mine deal)
  in
  let exec t c =
    let start = c * chunk in
    f ~thread:t ~start ~len:(min chunk (n - start))
  in
  run_workers ~nthreads (fun t ->
      let my = deques.(t) in
      (* owner drain by batches: one bottom-fence per up to 32 chunks.
         A cancelled region keeps popping without executing — the
         deques must still end empty so the region can cache them back
         for a later [refill] (unexecuted chunks surface as coverage
         gaps, which the resilient caller re-runs serially). *)
      let buf = Array.make 32 0 in
      let rec drain () =
        let k = Deque.pop_batch my buf in
        if k > 0 then begin
          if not (stop ()) then begin
            if obsv then Obsv.Metrics.add Stats.ws_local_pops ~slot:t k;
            for i = 0 to k - 1 do
              exec t buf.(i)
            done
          end;
          drain ()
        end
      in
      drain ();
      if nthreads > 1 && not (stop ()) then begin
        let steal_phase () =
          let idle = ref false in
          while (not !idle) && not (stop ()) do
            let progressed = ref false and contended = ref false in
            for i = 1 to nthreads - 1 do
              if not (stop ()) then begin
                let victim = deques.((t + i) mod nthreads) in
                let continue = ref true in
                while !continue do
                  match Deque.steal victim with
                  | Deque.Stolen c ->
                    if obsv then Obsv.Metrics.incr Stats.ws_steals ~slot:t;
                    progressed := true;
                    exec t c;
                    if stop () then continue := false
                  | Deque.Retry ->
                    if obsv then Obsv.Metrics.incr Stats.ws_steal_retries ~slot:t;
                    contended := true;
                    continue := false
                  | Deque.Empty -> continue := false
                done
              end
            done;
            if not (!progressed || !contended) then idle := true
          done
        in
        if obsv then
          Obsv.Trace.with_span "par.ws.steal" ~args:[ ("slot", Obsv.Trace.Int t) ] steal_phase
        else steal_phase ()
      end);
  (* all workers have joined: the deques are quiescent and empty *)
  Atomic.set ws_deque_cache deques

(* divide-and-conquer execution: instead of dealing a precomputed
   chunk list, workers recursively halve the collapsed interval down
   to [grain] iterations, pushing split-tree node ids (see
   [Schedule.dnc_interval]) through the same Chase-Lev deques the ws
   schedule uses. An owner pops depth-first (small, cache-near
   subranges); a thief steals the top — the largest untouched subtree
   — so load balancing is automatic on skewed non-rectangular ranges.
   The split tree depends only on (n, grain), so the executed chunk
   partition is deterministic regardless of timing. Termination is an
   atomic count of live tree nodes: a split nets +1 (one node becomes
   two), resolving a node nets -1; zero pending with an empty sweep
   means the whole tree is accounted for. Tree depth is at most
   [log2 n + 1 <= 63], so capacity 128 deques can never overfill (a
   worker drains its own deque before stealing, and a stolen subtree's
   descent starts from an empty private run). *)
let run_dnc ~nthreads ~grain ~n ~obsv ~stop f =
  if grain <= 0 then invalid_arg "Par: dnc grain";
  if n > 0 then begin
    let deques = Array.init nthreads (fun _ -> Deque.create ~capacity:128 ~dummy:0) in
    let pending = Atomic.make 1 in
    Deque.push deques.(0) 1;
    run_workers ~nthreads (fun t ->
        let my = deques.(t) in
        let resolve () = ignore (Atomic.fetch_and_add pending (-1)) in
        (* a cancelled region keeps popping without splitting or
           executing: resolving a node un-pends its entire subtree
           (children were never pushed), so siblings drain fast and
           unexecuted ranges surface as coverage gaps for the
           resilient caller *)
        let exec_node id =
          if stop () then resolve ()
          else begin
            let start, len = Schedule.dnc_interval ~n id in
            if len <= grain then begin
              if obsv then Obsv.Metrics.incr Stats.dnc_grain_chunks ~slot:t;
              (match f ~thread:t ~start ~len with
              | () -> ()
              | exception e ->
                (* keep the pending count exact so sibling workers can
                   still reach quiescence and the join can re-raise *)
                resolve ();
                raise e);
              resolve ()
            end
            else begin
              if obsv then Obsv.Metrics.incr Stats.dnc_splits ~slot:t;
              ignore (Atomic.fetch_and_add pending 1);
              Deque.push my ((2 * id) + 1);
              Deque.push my (2 * id)
            end
          end
        in
        let continue = ref true in
        while !continue do
          match Deque.pop my with
          | Some id -> exec_node id
          | None ->
            if Atomic.get pending = 0 then continue := false
            else begin
              let progressed = ref false and contended = ref false in
              for i = 1 to nthreads - 1 do
                if not !progressed then
                  match Deque.steal deques.((t + i) mod nthreads) with
                  | Deque.Stolen id ->
                    if obsv then Obsv.Metrics.incr Stats.ws_steals ~slot:t;
                    progressed := true;
                    exec_node id
                  | Deque.Retry ->
                    if obsv then Obsv.Metrics.incr Stats.ws_steal_retries ~slot:t;
                    contended := true
                  | Deque.Empty -> ()
              done;
              if (not (!progressed || !contended)) && Atomic.get pending <> 0 then
                Domain.cpu_relax ()
            end
        done)
  end

(* schedule dispatch, shared by the plain and the resilient paths.
   [stop] is the cooperative cancellation token, polled at chunk-claim
   granularity on every schedule — once it reads true, no further
   chunk is claimed or executed by this region (chunks already being
   executed finish). The plain path passes a constant [false]. *)
let run_schedule ~stop ~nthreads ~schedule ~n ~obsv f =
  match schedule with
  | Schedule.Static ->
    let blocks = Schedule.static_blocks ~nthreads ~n in
    run_workers ~nthreads (fun t ->
        let start, len = blocks.(t) in
        if len > 0 && not (stop ()) then f ~thread:t ~start ~len)
  | Schedule.Static_chunk c ->
    if c <= 0 then invalid_arg "Par: static chunk";
    let lists = Schedule.round_robin_chunks ~chunk:c ~nthreads ~n in
    run_workers ~nthreads (fun t ->
        List.iter
          (fun (start, len) -> if not (stop ()) then f ~thread:t ~start ~len)
          lists.(t))
  | Schedule.Dynamic c ->
    if c <= 0 then invalid_arg "Par: dynamic chunk";
    let next = Atomic.make 0 in
    run_workers ~nthreads (fun t ->
        let continue = ref true in
        while !continue do
          if stop () then continue := false
          else begin
            let start = Atomic.fetch_and_add next c in
            if start >= n then continue := false
            else f ~thread:t ~start ~len:(min c (n - start))
          end
        done)
  | Schedule.Guided c ->
    if c <= 0 then invalid_arg "Par: guided chunk";
    let next = Atomic.make 0 in
    run_workers ~nthreads (fun t ->
        let continue = ref true in
        while !continue do
          if stop () then continue := false
          else begin
            (* optimistic guided sizing: read remaining, CAS the claim *)
            let start = Atomic.get next in
            if start >= n then continue := false
            else begin
              let len = Schedule.next_guided ~chunk:c ~nthreads ~remaining:(n - start) in
              if Atomic.compare_and_set next start (start + len) then
                f ~thread:t ~start ~len:(min len (n - start))
            end
          end
        done)
  | Schedule.Work_stealing c ->
    if c <= 0 then invalid_arg "Par: work-stealing chunk";
    run_work_stealing ~nthreads ~chunk:c ~n ~obsv ~stop f
  | Schedule.Dnc g -> run_dnc ~nthreads ~grain:g ~n ~obsv ~stop f

let never_stop () = false

let parallel_for_chunks ~nthreads ~schedule ~n f =
  if nthreads <= 0 then invalid_arg "Par.parallel_for_chunks";
  let obsv = Obsv.Control.enabled () in
  let f = if obsv then instrument_chunks f else f in
  let dispatch () = run_schedule ~stop:never_stop ~nthreads ~schedule ~n ~obsv f in
  if not obsv then dispatch ()
  else begin
    Obsv.Metrics.incr Stats.par_regions ~slot:0;
    Obsv.Trace.with_span "par.region"
      ~args:
        [ ("n", Obsv.Trace.Int n);
          ("threads", Obsv.Trace.Int nthreads);
          ("schedule", Obsv.Trace.Str (Schedule.to_string schedule)) ]
      dispatch
  end

let parallel_for ~nthreads ~schedule ~n f =
  parallel_for_chunks ~nthreads ~schedule ~n (fun ~thread:_ ~start ~len ->
      for q = start to start + len - 1 do
        f q
      done)

(* ---------------- supervised (resilient) regions ---------------- *)

type chunk_failure = {
  start : int;
  len : int;
  worker : int;
  attempts : int;
  error : exn;
  backtrace : Printexc.raw_backtrace;
}

type failure_reason = Chunk_failed | Deadline_expired

type region_error = {
  reason : failure_reason;
  failures : chunk_failure list;
  unrecovered : (int * int) list;
}

let describe_error { reason; failures; unrecovered } =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (match reason with
    | Chunk_failed -> "region failed: chunk failure survived retries and serial fallback"
    | Deadline_expired -> "region cancelled: deadline expired");
  List.iter
    (fun { start; len; worker; attempts; error; _ } ->
      Buffer.add_string b
        (Printf.sprintf "\n  chunk [%d,%d) on worker %d after %d attempt%s: %s" start (start + len)
           worker attempts
           (if attempts = 1 then "" else "s")
           (Printexc.to_string error)))
    (List.rev failures);
  if unrecovered <> [] then begin
    Buffer.add_string b "\n  unrecovered:";
    List.iter
      (fun (s, l) -> Buffer.add_string b (Printf.sprintf " [%d,%d)" s (s + l)))
      unrecovered
  end;
  Buffer.contents b

(* exponential retry backoff: ~50us << 2^(attempt-1), capped at 1ms —
   enough to let a transient stall clear without parking a domain *)
let backoff_wait attempt =
  let us = min 1000 (50 lsl min 10 (attempt - 1)) in
  let until = Obsv.Clock.now_ns () + (us * 1_000) in
  while Obsv.Clock.now_ns () < until do
    Domain.cpu_relax ()
  done

(* holes of [0,n) not covered by the sorted disjoint [ranges] *)
let uncovered ~n ranges =
  let rec go pos = function
    | [] -> if pos < n then [ (pos, n - pos) ] else []
    | (s, l) :: rest ->
      if s > pos then (pos, s - pos) :: go (s + l) rest else go (max pos (s + l)) rest
  in
  go 0 ranges

let run_resilient ?(retries = 0) ?deadline_ms ?faults ~nthreads ~schedule ~n f =
  if nthreads <= 0 then invalid_arg "Par.run_resilient";
  if retries < 0 then invalid_arg "Par.run_resilient: negative retries";
  (* [?faults] is itself an option: [~faults:None] explicitly disables
     injection for this region, absence defers to the global config *)
  let faults = match faults with Some given -> given | None -> Fault.get () in
  let obsv = Obsv.Control.enabled () in
  let stop = Atomic.make false in
  let deadline_hit = Atomic.make false in
  let deadline_ns =
    match deadline_ms with
    | Some ms when ms >= 0 -> Some (Obsv.Clock.now_ns () + (ms * 1_000_000))
    | Some _ -> invalid_arg "Par.run_resilient: negative deadline"
    | None -> None
  in
  let failures = Atomic.make [] in
  let push_failure cf =
    let rec go () =
      let old = Atomic.get failures in
      if not (Atomic.compare_and_set failures old (cf :: old)) then go ()
    in
    go ()
  in
  (* per-slot success ranges: one writer per cell, merged after join.
     The list heads live 16 slots apart so two workers' per-chunk
     conses never fight over one cache line (same padding discipline
     as the engine's partial-checksum arrays). *)
  let dr_stride = 16 in
  let done_ranges = Array.make (nthreads * dr_stride) [] in
  let cancel () =
    if Atomic.compare_and_set stop false true then
      if obsv then begin
        Obsv.Metrics.incr_here Stats.regions_cancelled;
        Obsv.Trace.instant "par.cancel"
      end
  in
  let expired () =
    match deadline_ns with
    | Some d when Obsv.Clock.now_ns () > d ->
      Atomic.set deadline_hit true;
      cancel ();
      true
    | _ -> false
  in
  (* the supervision wrapper: injection point, bounded retry with
     backoff, failure capture. A failed attempt is re-run in place —
     safe when chunks are idempotent (exactly the property the
     paper's independent-iterations precondition gives a collapsed
     chunk); synthetic faults fire before the body, so they never
     leave a chunk half-done. *)
  let record_success ~thread ~start ~len =
    let cell = thread * dr_stride in
    done_ranges.(cell) <- (start, len) :: done_ranges.(cell);
    if obsv then begin
      Obsv.Metrics.incr Stats.par_chunks ~slot:thread;
      Obsv.Metrics.add Stats.par_iterations ~slot:thread len
    end
  in
  (* cold path: first attempt already failed, run the bounded retry
     loop with backoff, then capture the structured failure *)
  let retry_loop ~thread ~start ~len first_error =
    let attempt = ref 0 and running = ref true in
    let error = ref first_error and backtrace = ref (Printexc.get_raw_backtrace ()) in
    while !running do
      if !attempt < retries && not (Atomic.get stop) then begin
        incr attempt;
        if obsv then begin
          Obsv.Metrics.incr Stats.chunk_retries ~slot:thread;
          Obsv.Trace.instant "par.retry"
            ~args:[ ("start", Obsv.Trace.Int start); ("attempt", Obsv.Trace.Int !attempt) ]
        end;
        backoff_wait !attempt;
        match
          (match faults with
          | Some cfg -> Fault.inject cfg ~start ~len ~attempt:!attempt
          | None -> ());
          f ~thread ~start ~len
        with
        | () ->
          running := false;
          record_success ~thread ~start ~len
        | exception e ->
          backtrace := Printexc.get_raw_backtrace ();
          error := e
      end
      else begin
        running := false;
        push_failure
          { start; len; worker = thread; attempts = !attempt + 1; error = !error;
            backtrace = !backtrace };
        cancel ()
      end
    done
  in
  let supervise ~thread ~start ~len =
    if (not (Atomic.get stop)) && not (expired ()) then
      match
        (match faults with
        | Some cfg -> Fault.inject cfg ~start ~len ~attempt:0
        | None -> ());
        f ~thread ~start ~len
      with
      | () -> record_success ~thread ~start ~len
      | exception e -> retry_loop ~thread ~start ~len e
  in
  let body () = run_schedule ~stop:(fun () -> Atomic.get stop) ~nthreads ~schedule ~n ~obsv supervise in
  (if not obsv then body ()
   else begin
     Obsv.Metrics.incr Stats.par_regions ~slot:0;
     Obsv.Trace.with_span "par.resilient"
       ~args:
         [ ("n", Obsv.Trace.Int n);
           ("threads", Obsv.Trace.Int nthreads);
           ("schedule", Obsv.Trace.Str (Schedule.to_string schedule));
           ("retries", Obsv.Trace.Int retries) ]
       body
   end);
  if (not (Atomic.get stop)) && Atomic.get failures = [] then
    (* fast path: never cancelled and nothing failed — the schedule
       loop ran to completion, so every chunk of [0,n) was claimed and
       its supervise call returned (retried chunks included). Coverage
       is complete by construction; skip the O(chunks log chunks)
       range merge so an undisturbed region pays no post-join cost. *)
    Ok ()
  else begin
  let covered =
    let acc = ref [] in
    for t = 0 to nthreads - 1 do
      acc := List.rev_append done_ranges.(t * dr_stride) !acc
    done;
    List.sort (fun ((a : int), _) (b, _) -> compare a b) !acc
  in
  let gaps = uncovered ~n covered in
  let failures = List.rev (Atomic.get failures) in
  if Atomic.get deadline_hit then Error { reason = Deadline_expired; failures; unrecovered = gaps }
  else if gaps = [] then Ok ()
  else begin
    (* serial fallback: re-execute only the uncovered ranges, on the
       calling domain, with fault injection suppressed — under the
       transient-fault model a re-run succeeds; a genuinely poisoned
       kernel fails again here and surfaces in the structured error *)
    let leftover = ref [] and fallback_failures = ref [] in
    List.iter
      (fun (start, len) ->
        if obsv then Obsv.Metrics.incr Stats.serial_fallbacks ~slot:0;
        let body () = f ~thread:0 ~start ~len in
        match
          if obsv then
            Obsv.Trace.with_span "par.fallback.serial"
              ~args:[ ("start", Obsv.Trace.Int start); ("len", Obsv.Trace.Int len) ]
              body
          else body ()
        with
        | () ->
          if obsv then begin
            Obsv.Metrics.incr Stats.par_chunks ~slot:0;
            Obsv.Metrics.add Stats.par_iterations ~slot:0 len
          end
        | exception e ->
          let backtrace = Printexc.get_raw_backtrace () in
          fallback_failures :=
            { start; len; worker = 0; attempts = 1; error = e; backtrace } :: !fallback_failures;
          leftover := (start, len) :: !leftover)
      gaps;
    if !leftover = [] then Ok ()
    else
      Error
        { reason = Chunk_failed;
          failures = failures @ List.rev !fallback_failures;
          unrecovered = List.rev !leftover }
  end
  end

(* ---------------------- parallel reductions ---------------------- *)

(* Partial accumulators live in per-worker cells padded 16 slots apart
   (one writer per cell, no locks, no false sharing on the hot path).
   After the join the partials are sorted by chunk start — a total
   order determined by the schedule's chunk partition, never by worker
   arrival — and folded by a binary combine tree over ADJACENT
   positions. The bracketing therefore depends only on the partial
   count, so the result is bit-for-bit schedule-independent whenever
   [combine] is associative, and equals the serial left fold exactly. *)
let rd_stride = 16

let combine_partials ~obsv ~nthreads ~combine cells =
  let all = ref [] in
  for t = nthreads - 1 downto 0 do
    all := List.rev_append cells.(t * rd_stride) !all
  done;
  match List.sort (fun ((a : int), _) (b, _) -> compare a b) !all with
  | [] -> None
  | parts ->
    let arr = Array.of_list (List.map snd parts) in
    let fold () =
      let len = ref (Array.length arr) in
      while !len > 1 do
        let half = !len / 2 in
        for i = 0 to half - 1 do
          arr.(i) <- combine arr.(2 * i) arr.((2 * i) + 1);
          if obsv then Obsv.Metrics.incr Stats.reduce_combines ~slot:0
        done;
        if !len land 1 = 1 then arr.(half) <- arr.(!len - 1);
        len := half + (!len land 1)
      done;
      arr.(0)
    in
    Some
      (if obsv then
         Obsv.Trace.with_span "par.reduce.combine"
           ~args:[ ("partials", Obsv.Trace.Int (Array.length arr)) ]
           fold
       else fold ())

let reduce_body ~obsv cells f ~thread ~start ~len =
  let v = f ~thread ~start ~len in
  let cell = thread * rd_stride in
  cells.(cell) <- (start, v) :: cells.(cell);
  if obsv then Obsv.Metrics.incr Stats.reduce_partials ~slot:thread

let reduce_chunks ~nthreads ~schedule ~n ~combine f =
  if nthreads <= 0 then invalid_arg "Par.reduce_chunks";
  let obsv = Obsv.Control.enabled () in
  let cells = Array.make (nthreads * rd_stride) [] in
  parallel_for_chunks ~nthreads ~schedule ~n (reduce_body ~obsv cells f);
  combine_partials ~obsv ~nthreads ~combine cells

let reduce_resilient ?retries ?deadline_ms ?faults ~nthreads ~schedule ~n ~combine f =
  if nthreads <= 0 then invalid_arg "Par.reduce_resilient";
  let obsv = Obsv.Control.enabled () in
  let cells = Array.make (nthreads * rd_stride) [] in
  (* the partial cons sits AFTER the chunk body, and synthetic faults
     fire BEFORE it: a failed attempt contributes nothing, a retried
     chunk contributes exactly once, and the serial fallback's merged
     gap ranges contribute partials keyed by their own starts — a
     different partition of [0,n), but the same fold for any
     associative [combine] *)
  match run_resilient ?retries ?deadline_ms ?faults ~nthreads ~schedule ~n (reduce_body ~obsv cells f) with
  | Ok () -> Ok (combine_partials ~obsv ~nthreads ~combine cells)
  | Error e -> Error e
