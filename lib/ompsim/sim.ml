type overheads = {
  fork_join : float;
  dispatch : float;
  chunk_start : float;
  per_iter : float;
}

let no_overheads = { fork_join = 0.0; dispatch = 0.0; chunk_start = 0.0; per_iter = 0.0 }

type result = {
  makespan : float;
  busy : float array;
  total_work : float;
  chunks_dispatched : int;
  imbalance : float;
}

let prefix_sums costs =
  let n = Array.length costs in
  let p = Array.make (n + 1) 0.0 in
  for q = 0 to n - 1 do
    p.(q + 1) <- p.(q) +. costs.(q)
  done;
  p

let chunk_cost prefix ov start len =
  if len = 0 then 0.0
  else
    ov.chunk_start
    +. (prefix.(start + len) -. prefix.(start))
    +. (ov.per_iter *. float_of_int len)

(* a tiny binary min-heap over (time, thread) for the event simulation *)
module Heap = struct
  type t = { mutable size : int; times : float array; threads : int array }

  let create nthreads =
    { size = 0; times = Array.make nthreads 0.0; threads = Array.make nthreads 0 }

  let swap h a b =
    let t = h.times.(a) in
    h.times.(a) <- h.times.(b);
    h.times.(b) <- t;
    let x = h.threads.(a) in
    h.threads.(a) <- h.threads.(b);
    h.threads.(b) <- x

  let push h time thread =
    let i = ref h.size in
    h.times.(!i) <- time;
    h.threads.(!i) <- thread;
    h.size <- h.size + 1;
    while !i > 0 && h.times.((!i - 1) / 2) > h.times.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    let time = h.times.(0) and thread = h.threads.(0) in
    h.size <- h.size - 1;
    h.times.(0) <- h.times.(h.size);
    h.threads.(0) <- h.threads.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.times.(l) < h.times.(!smallest) then smallest := l;
      if r < h.size && h.times.(r) < h.times.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    (time, thread)
end

let finish ~ov ~total_work ~busy ~chunks_dispatched ~nthreads =
  let makespan = ov.fork_join +. Array.fold_left Float.max 0.0 busy in
  let executed = Array.fold_left ( +. ) 0.0 busy in
  let ideal = ov.fork_join +. (executed /. float_of_int nthreads) in
  { makespan;
    busy;
    total_work;
    chunks_dispatched;
    imbalance = (if executed = 0.0 then 1.0 else makespan /. ideal) }

let run ~costs ~schedule ~nthreads ~overheads:ov =
  if nthreads <= 0 then invalid_arg "Sim.run: nthreads";
  let n = Array.length costs in
  let prefix = prefix_sums costs in
  let total_work = prefix.(n) in
  let busy = Array.make nthreads 0.0 in
  match schedule with
  | Schedule.Static ->
    let blocks = Schedule.static_blocks ~nthreads ~n in
    let dispatched = ref 0 in
    Array.iteri
      (fun t (start, len) ->
        if len > 0 then incr dispatched;
        busy.(t) <- chunk_cost prefix ov start len)
      blocks;
    finish ~ov ~total_work ~busy ~chunks_dispatched:!dispatched ~nthreads
  | Schedule.Static_chunk c ->
    let lists = Schedule.round_robin_chunks ~chunk:c ~nthreads ~n in
    let dispatched = ref 0 in
    Array.iteri
      (fun t chunks ->
        List.iter
          (fun (start, len) ->
            incr dispatched;
            busy.(t) <- busy.(t) +. chunk_cost prefix ov start len)
          chunks)
      lists;
    finish ~ov ~total_work ~busy ~chunks_dispatched:!dispatched ~nthreads
  | Schedule.Work_stealing c ->
    if c <= 0 then invalid_arg "Sim.run: work-stealing chunk";
    (* Same dynamic-style balancing (an idle thread always finds the
       next chunk) but with NO serialized dispatch point: a steal/pop
       still costs [dispatch] time on the acquiring thread, yet threads
       never wait on each other's acquisitions — the contention-free
       counterpart of the Dynamic simulation below. *)
    let heap = Heap.create nthreads in
    for t = 0 to nthreads - 1 do
      Heap.push heap 0.0 t
    done;
    let next = ref 0 in
    let dispatched = ref 0 in
    let finish_time = Array.make nthreads 0.0 in
    while !next < n do
      let time, t = Heap.pop heap in
      let len = min c (n - !next) in
      let done_at = time +. ov.dispatch +. chunk_cost prefix ov !next len in
      incr dispatched;
      next := !next + len;
      finish_time.(t) <- done_at;
      Heap.push heap done_at t
    done;
    let makespan = ov.fork_join +. Array.fold_left Float.max 0.0 finish_time in
    let ideal = ov.fork_join +. (total_work /. float_of_int nthreads) in
    { makespan;
      busy = finish_time;
      total_work;
      chunks_dispatched = !dispatched;
      imbalance = (if total_work = 0.0 then 1.0 else makespan /. ideal) }
  | Schedule.Dnc g ->
    if g <= 0 then invalid_arg "Sim.run: dnc grain";
    (* the divide-and-conquer leaves are a deterministic partition of
       the range ([Schedule.dnc_leaves]); execution is steal-balanced
       with no serialized dispatch point, so simulate like the
       work-stealing engine: each leaf acquisition costs [dispatch] on
       the acquiring thread only. Splitting work itself is folded into
       the same per-leaf dispatch charge. *)
    let heap = Heap.create nthreads in
    for t = 0 to nthreads - 1 do
      Heap.push heap 0.0 t
    done;
    let dispatched = ref 0 in
    let finish_time = Array.make nthreads 0.0 in
    List.iter
      (fun (start, len) ->
        let time, t = Heap.pop heap in
        let done_at = time +. ov.dispatch +. chunk_cost prefix ov start len in
        incr dispatched;
        finish_time.(t) <- done_at;
        Heap.push heap done_at t)
      (Schedule.dnc_leaves ~grain:g ~n);
    let makespan = ov.fork_join +. Array.fold_left Float.max 0.0 finish_time in
    let ideal = ov.fork_join +. (total_work /. float_of_int nthreads) in
    { makespan;
      busy = finish_time;
      total_work;
      chunks_dispatched = !dispatched;
      imbalance = (if total_work = 0.0 then 1.0 else makespan /. ideal) }
  | Schedule.Dynamic c | Schedule.Guided c ->
    if c <= 0 then invalid_arg "Sim.run: dynamic/guided chunk";
    (* Event simulation with a serialized work queue: acquiring a chunk
       takes [dispatch] time on a shared lock, so threads contend when
       chunks are small — the runtime-overhead scalability problem of
       schedule(dynamic) the paper describes in §II. *)
    let guided = match schedule with Schedule.Guided _ -> true | _ -> false in
    let heap = Heap.create nthreads in
    for t = 0 to nthreads - 1 do
      Heap.push heap 0.0 t
    done;
    let lock_free_at = ref 0.0 in
    let next = ref 0 in
    let dispatched = ref 0 in
    let finish_time = Array.make nthreads 0.0 in
    while !next < n do
      let time, t = Heap.pop heap in
      let acquire = Float.max time !lock_free_at in
      lock_free_at := acquire +. ov.dispatch;
      let len =
        if guided then Schedule.next_guided ~chunk:c ~nthreads ~remaining:(n - !next)
        else min c (n - !next)
      in
      let done_at = acquire +. ov.dispatch +. chunk_cost prefix ov !next len in
      incr dispatched;
      next := !next + len;
      busy.(t) <- done_at;
      finish_time.(t) <- done_at;
      Heap.push heap done_at t
    done;
    (* here busy.(t) is the thread's finish time (including idle waits
       on the lock), which is what determines the makespan *)
    let makespan = ov.fork_join +. Array.fold_left Float.max 0.0 finish_time in
    let ideal = ov.fork_join +. (total_work /. float_of_int nthreads) in
    { makespan;
      busy = finish_time;
      total_work;
      chunks_dispatched = !dispatched;
      imbalance = (if total_work = 0.0 then 1.0 else makespan /. ideal) }

let serial ~costs ~overheads:ov =
  let prefix = prefix_sums costs in
  chunk_cost prefix ov 0 (Array.length costs)

let gain ~baseline ~improved = (baseline -. improved) /. baseline

(* ---------------- fault model (Par.run_resilient's retry) ---------------- *)

let check_fault_args ~p ~retries name =
  if p < 0.0 || p > 1.0 then invalid_arg (name ^ ": p outside [0,1]");
  if retries < 0 then invalid_arg (name ^ ": negative retries")

let expected_attempts ~p ~retries =
  check_fault_args ~p ~retries "Sim.expected_attempts";
  if p >= 1.0 then float_of_int (retries + 1)
  else (1.0 -. (p ** float_of_int (retries + 1))) /. (1.0 -. p)

let completion_probability ~p ~retries =
  check_fault_args ~p ~retries "Sim.completion_probability";
  1.0 -. (p ** float_of_int (retries + 1))

let resilient_overheads ov ~p ~retries =
  let a = expected_attempts ~p ~retries in
  { ov with dispatch = ov.dispatch *. a; chunk_start = ov.chunk_start *. a }
