(* Deterministic seeded fault injection. See fault.mli for the model. *)

type t = {
  p : float;
  seed : int;
  stall_p : float;
  stall_us : int;
  max_injections : int;
}

exception Injected of { start : int; len : int; attempt : int }

let () =
  Printexc.register_printer (function
    | Injected { start; len; attempt } ->
      Some (Printf.sprintf "Fault.Injected(start=%d, len=%d, attempt=%d)" start len attempt)
    | _ -> None)

let default = { p = 0.1; seed = 42; stall_p = 0.0; stall_us = 50; max_injections = -1 }

(* ---------------- spec parsing ---------------- *)

let parse_float key v =
  match float_of_string_opt v with
  | Some f when f >= 0.0 && f <= 1.0 -> Ok f
  | Some _ -> Error (Printf.sprintf "fault spec: %s=%s out of [0,1]" key v)
  | None -> Error (Printf.sprintf "fault spec: %s=%s is not a number" key v)

let parse_int key v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "fault spec: %s=%s is not an integer" key v)

let of_spec s =
  let s = String.trim s in
  match String.lowercase_ascii s with
  | "" -> Error "fault spec: empty"
  | "1" | "on" | "true" | "yes" -> Ok default
  | _ ->
    let fields = String.split_on_char ',' s in
    List.fold_left
      (fun acc field ->
        Result.bind acc (fun cfg ->
            let field = String.trim field in
            match String.index_opt field '=' with
            | None -> Error (Printf.sprintf "fault spec: %S is not key=value" field)
            | Some i ->
              let key = String.trim (String.sub field 0 i) in
              let v = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
              (match key with
              | "p" -> Result.map (fun p -> { cfg with p }) (parse_float key v)
              | "stall" -> Result.map (fun stall_p -> { cfg with stall_p }) (parse_float key v)
              | "seed" -> Result.map (fun seed -> { cfg with seed }) (parse_int key v)
              | "stall_us" ->
                Result.bind (parse_int key v) (fun stall_us ->
                    if stall_us < 0 then Error (Printf.sprintf "fault spec: stall_us=%d negative" stall_us)
                    else Ok { cfg with stall_us })
              | "max" -> Result.map (fun max_injections -> { cfg with max_injections }) (parse_int key v)
              | _ ->
                Error
                  (Printf.sprintf "fault spec: unknown key %S (expected p|seed|stall|stall_us|max)" key))))
      (Ok default) fields

let to_spec t =
  Printf.sprintf "p=%g,seed=%d,stall=%g,stall_us=%d,max=%d" t.p t.seed t.stall_p t.stall_us
    t.max_injections

(* ---------------- global configuration ---------------- *)

let state : t option Atomic.t =
  Atomic.make
    (match Sys.getenv_opt "OMPSIM_FAULTS" with
    | None -> None
    | Some s -> (
      match of_spec s with
      | Ok cfg -> Some cfg
      | Error msg ->
        Printf.eprintf "OMPSIM_FAULTS ignored: %s\n%!" msg;
        None))

let get () = Atomic.get state
let set cfg = Atomic.set state cfg
let armed () = get () <> None

let with_faults cfg f =
  let saved = Atomic.exchange state cfg in
  Fun.protect ~finally:(fun () -> Atomic.set state saved) f

(* ---------------- deterministic decisions ---------------- *)

(* splitmix-style finalizer on the native 63-bit int; multiplication
   wraps, which is fine — all that matters is that the map is fixed
   (the odd constants are the murmur3 finalizers truncated to fit) *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x3F51AFD7ED558CC5 in
  let x = x lxor (x lsr 29) in
  let x = x * 0x24CEB9FE1A85EC53 in
  x lxor (x lsr 32)

(* uniform-ish draw in [0,1) from (seed, start, attempt, salt); salt
   decorrelates the failure draw from the stall draw *)
let chance cfg ~start ~attempt ~salt =
  let h = mix (cfg.seed + (0x9E3779B9 * (start + 1)) + (0x85EBCA6B * (attempt + 1)) + salt) in
  float_of_int (h land 0x3FFFFFFF) /. 1073741824.0

let decide cfg ~start ~attempt = cfg.p > 0.0 && chance cfg ~start ~attempt ~salt:0 < cfg.p
let decide_stall cfg ~start ~attempt = cfg.stall_p > 0.0 && chance cfg ~start ~attempt ~salt:1 < cfg.stall_p

(* ---------------- injection ---------------- *)

let budget = Atomic.make 0
let reset_budget () = Atomic.set budget 0

(* the budget is only consumed by decisions that would inject, so a
   spec with max=k injects exactly the first k positive decisions *)
let budget_allows cfg = cfg.max_injections < 0 || Atomic.fetch_and_add budget 1 < cfg.max_injections

let busy_wait_us us =
  if us > 0 then begin
    let until = Obsv.Clock.now_ns () + (us * 1_000) in
    while Obsv.Clock.now_ns () < until do
      Domain.cpu_relax ()
    done
  end

let inject cfg ~start ~len ~attempt =
  if decide_stall cfg ~start ~attempt then begin
    if Obsv.Control.enabled () then Obsv.Metrics.incr_here Stats.fault_stalls;
    busy_wait_us cfg.stall_us
  end;
  if decide cfg ~start ~attempt && budget_allows cfg then begin
    if Obsv.Control.enabled () then Obsv.Metrics.incr_here Stats.faults_injected;
    raise (Injected { start; len; attempt })
  end
