(* Persistent domain pool: per-worker mailboxes + a reusable countdown
   latch. See pool.mli for the contract. *)

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (int -> unit) option;
  mutable stop : bool;
}

(* structured worker failure: which slot raised what, with the
   backtrace captured at the raise site so the re-raise in [run]
   preserves it (Printexc.raise_with_backtrace) instead of resetting
   the trace to the pool's own join code *)
type failure = { slot : int; error : exn; backtrace : Printexc.raw_backtrace }

(* reusable completion latch (the join barrier of a dispatch) *)
type latch = {
  lm : Mutex.t;
  lc : Condition.t;
  mutable pending : int;
  mutable failure : failure option;
}

type pool = {
  mutable workers : worker array;  (* worker j serves slot j+1 *)
  mutable domains : unit Domain.t array;
  latch : latch;
  dispatch : Mutex.t;  (* one dispatch at a time; busy -> spawn fallback *)
}

let the_pool : pool option ref = ref None
let pool_lock = Mutex.create ()

let record_failure l slot e =
  let backtrace = Printexc.get_raw_backtrace () in
  Mutex.lock l.lm;
  if l.failure = None then l.failure <- Some { slot; error = e; backtrace };
  Mutex.unlock l.lm

let arrive l =
  Mutex.lock l.lm;
  l.pending <- l.pending - 1;
  if l.pending = 0 then Condition.broadcast l.lc;
  Mutex.unlock l.lm

let worker_loop latch w slot =
  let continue = ref true in
  while !continue do
    Mutex.lock w.mutex;
    (* obsv: bill the time parked on the mailbox to this slot; the
       clock is only read when the layer is on and a wait is imminent *)
    let idle_from =
      if w.job = None && not w.stop && Obsv.Control.enabled () then Obsv.Clock.now_ns () else 0
    in
    while w.job = None && not w.stop do
      Condition.wait w.cond w.mutex
    done;
    let job = w.job in
    w.job <- None;
    let stop = w.stop in
    Mutex.unlock w.mutex;
    if idle_from <> 0 then
      Obsv.Metrics.add Stats.pool_idle_ns ~slot (Obsv.Clock.now_ns () - idle_from);
    (match job with
    | Some f ->
      if Obsv.Control.enabled () then begin
        Obsv.Metrics.incr Stats.pool_dispatches ~slot;
        Obsv.Trace.name_thread (Printf.sprintf "pool worker %d" slot)
      end;
      (try f slot with e -> record_failure latch slot e);
      arrive latch
    | None -> ());
    if stop && job = None then continue := false
  done

let fresh_worker () =
  { mutex = Mutex.create (); cond = Condition.create (); job = None; stop = false }

let shutdown_pool p =
  Array.iter
    (fun w ->
      Mutex.lock w.mutex;
      w.stop <- true;
      Condition.signal w.cond;
      Mutex.unlock w.mutex)
    p.workers;
  Array.iter Domain.join p.domains;
  p.workers <- [||];
  p.domains <- [||]

let shutdown () =
  Mutex.lock pool_lock;
  let p = !the_pool in
  the_pool := None;
  Mutex.unlock pool_lock;
  match p with Some p -> shutdown_pool p | None -> ()

let at_exit_registered = ref false

(* get the pool, growing it to at least [capacity] workers *)
let get ~capacity =
  Mutex.lock pool_lock;
  let p =
    match !the_pool with
    | Some p -> p
    | None ->
      let p =
        { workers = [||];
          domains = [||];
          latch = { lm = Mutex.create (); lc = Condition.create (); pending = 0; failure = None };
          dispatch = Mutex.create () }
      in
      the_pool := Some p;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        Stdlib.at_exit shutdown
      end;
      p
  in
  let cur = Array.length p.workers in
  if capacity > cur then begin
    let extra = Array.init (capacity - cur) (fun _ -> fresh_worker ()) in
    let extra_domains =
      Array.mapi
        (fun i w ->
          let slot = cur + i + 1 in
          Domain.spawn (fun () -> worker_loop p.latch w slot))
        extra
    in
    p.workers <- Array.append p.workers extra;
    p.domains <- Array.append p.domains extra_domains
  end;
  Mutex.unlock pool_lock;
  p

let size () =
  Mutex.lock pool_lock;
  let n = match !the_pool with Some p -> Array.length p.workers | None -> 0 in
  Mutex.unlock pool_lock;
  n

let pending () =
  Mutex.lock pool_lock;
  let v =
    match !the_pool with
    | Some p ->
      Mutex.lock p.latch.lm;
      let v = p.latch.pending in
      Mutex.unlock p.latch.lm;
      v
    | None -> 0
  in
  Mutex.unlock pool_lock;
  v

let queued_jobs () =
  Mutex.lock pool_lock;
  let v =
    match !the_pool with
    | Some p ->
      Array.fold_left
        (fun acc w ->
          Mutex.lock w.mutex;
          let q = if w.job <> None then 1 else 0 in
          Mutex.unlock w.mutex;
          acc + q)
        0 p.workers
    | None -> 0
  in
  Mutex.unlock pool_lock;
  v

(* plain spawn/join execution: the fallback for nested regions and the
   reference path benchmarks compare against *)
let run_spawned ~nthreads f =
  let failure = Atomic.make None in
  let guard t () =
    try f t
    with e ->
      let backtrace = Printexc.get_raw_backtrace () in
      Atomic.compare_and_set failure None (Some { slot = t; error = e; backtrace }) |> ignore
  in
  let domains = Array.init (nthreads - 1) (fun t -> Domain.spawn (guard (t + 1))) in
  guard 0 ();
  Array.iter Domain.join domains;
  match Atomic.get failure with
  | Some { error; backtrace; _ } -> Printexc.raise_with_backtrace error backtrace
  | None -> ()

let run ~nthreads f =
  if nthreads <= 0 then invalid_arg "Pool.run";
  if nthreads = 1 then f 0
  else begin
    let p = get ~capacity:(nthreads - 1) in
    if not (Mutex.try_lock p.dispatch) then begin
      (* nested/concurrent parallel region: don't queue behind the
         outer dispatch (deadlock); spawn short-lived domains instead *)
      if Obsv.Control.enabled () then Obsv.Metrics.incr Stats.pool_fallbacks ~slot:0;
      run_spawned ~nthreads f
    end
    else begin
      let l = p.latch in
      Mutex.lock l.lm;
      l.pending <- nthreads - 1;
      l.failure <- None;
      Mutex.unlock l.lm;
      for j = 0 to nthreads - 2 do
        let w = p.workers.(j) in
        Mutex.lock w.mutex;
        w.job <- Some f;
        Condition.signal w.cond;
        Mutex.unlock w.mutex
      done;
      (try f 0 with e -> record_failure l 0 e);
      Mutex.lock l.lm;
      while l.pending > 0 do
        Condition.wait l.lc l.lm
      done;
      let fail = l.failure in
      Mutex.unlock l.lm;
      Mutex.unlock p.dispatch;
      match fail with
      | Some { error; backtrace; _ } -> Printexc.raise_with_backtrace error backtrace
      | None -> ()
    end
  end
