type t =
  | Static
  | Static_chunk of int
  | Dynamic of int
  | Guided of int
  | Work_stealing of int

let to_string = function
  | Static -> "static"
  | Static_chunk c -> Printf.sprintf "static, %d" c
  | Dynamic 1 -> "dynamic"
  | Dynamic c -> Printf.sprintf "dynamic, %d" c
  | Guided 1 -> "guided"
  | Guided c -> Printf.sprintf "guided, %d" c
  | Work_stealing 1 -> "ws"
  | Work_stealing c -> Printf.sprintf "ws, %d" c

(* accepted spellings: the clause text [to_string] emits ("dynamic, 4")
   and the CLI's colon form ("dynamic:4"); chunk defaults to 1 where
   OpenMP's does *)
let of_string s =
  let cut sep =
    match String.index_opt s sep with
    | Some i ->
      (String.trim (String.sub s 0 i), Some (String.trim (String.sub s (i + 1) (String.length s - i - 1))))
    | None -> (String.trim s, None)
  in
  let name, chunk = if String.contains s ':' then cut ':' else cut ',' in
  let with_chunk ?default make =
    match (chunk, default) with
    | None, Some d -> Ok (make d)
    | None, None -> Error (Printf.sprintf "schedule %S needs a chunk size" s)
    | Some c, _ -> (
      match int_of_string_opt c with
      | Some c when c > 0 -> Ok (make c)
      | _ -> Error (Printf.sprintf "schedule %S: chunk must be a positive integer" s))
  in
  match String.lowercase_ascii name with
  | "static" -> ( match chunk with None -> Ok Static | Some _ -> with_chunk (fun c -> Static_chunk c))
  | "dynamic" -> with_chunk ~default:1 (fun c -> Dynamic c)
  | "guided" -> with_chunk ~default:1 (fun c -> Guided c)
  | "ws" | "work-stealing" | "work_stealing" -> with_chunk ~default:1 (fun c -> Work_stealing c)
  | _ ->
    Error
      (Printf.sprintf "unknown schedule %S (expected static[:N] | dynamic[:N] | guided[:N] | ws[:N])"
         s)

let static_blocks ~nthreads ~n =
  let q = n / nthreads and r = n mod nthreads in
  let blocks = Array.make nthreads (0, 0) in
  let start = ref 0 in
  for t = 0 to nthreads - 1 do
    let len = if t < r then q + 1 else q in
    blocks.(t) <- (!start, len);
    start := !start + len
  done;
  blocks

let round_robin_chunks ~chunk ~nthreads ~n =
  if chunk <= 0 || nthreads <= 0 then invalid_arg "Schedule.round_robin_chunks";
  let lists = Array.make nthreads [] in
  if n > 0 then begin
    (* single reversed pass over the chunk indices: each list is built
       front-to-back by one O(1) cons, no per-thread List.rev *)
    let nchunks = (n + chunk - 1) / chunk in
    for c = nchunks - 1 downto 0 do
      let start = c * chunk in
      lists.(c mod nthreads) <- (start, min chunk (n - start)) :: lists.(c mod nthreads)
    done
  end;
  lists

let next_guided ~chunk ~nthreads ~remaining =
  max (min chunk remaining) (min remaining ((remaining + (2 * nthreads) - 1) / (2 * nthreads)))
