type t =
  | Static
  | Static_chunk of int
  | Dynamic of int
  | Guided of int
  | Work_stealing of int
  | Dnc of int

let to_string = function
  | Static -> "static"
  | Static_chunk c -> Printf.sprintf "static, %d" c
  | Dynamic 1 -> "dynamic"
  | Dynamic c -> Printf.sprintf "dynamic, %d" c
  | Guided 1 -> "guided"
  | Guided c -> Printf.sprintf "guided, %d" c
  | Work_stealing 1 -> "ws"
  | Work_stealing c -> Printf.sprintf "ws, %d" c
  | Dnc 1 -> "dnc"
  | Dnc g -> Printf.sprintf "dnc, %d" g

(* strict chunk parser: decimal digits only, positive, no overflow.
   [int_of_string] would also accept "0x10", "0o17", "1_000" and "+4" —
   spellings OpenMP's clause grammar does not — and silently wraps
   nothing but still lets junk through; this rejects all of them, and
   rejects values that would overflow the native int. *)
let parse_chunk s =
  let n = String.length s in
  if n = 0 then None
  else begin
    let v = ref 0 and ok = ref true in
    (try
       String.iter
         (fun ch ->
           if ch < '0' || ch > '9' then begin
             ok := false;
             raise Exit
           end
           else begin
             let d = Char.code ch - Char.code '0' in
             if !v > (max_int - d) / 10 then begin
               ok := false;
               raise Exit
             end;
             v := (!v * 10) + d
           end)
         s
     with Exit -> ());
    if !ok && !v > 0 then Some !v else None
  end

(* accepted spellings: the clause text [to_string] emits ("dynamic, 4")
   and the CLI's colon form ("dynamic:4"); chunk defaults to 1 where
   OpenMP's does. Anything after the chunk value — a second separator,
   trailing junk — makes the chunk fail to parse and is rejected. *)
let of_string s =
  let cut sep =
    match String.index_opt s sep with
    | Some i ->
      (String.trim (String.sub s 0 i), Some (String.trim (String.sub s (i + 1) (String.length s - i - 1))))
    | None -> (String.trim s, None)
  in
  let name, chunk = if String.contains s ':' then cut ':' else cut ',' in
  let with_chunk ?default make =
    match (chunk, default) with
    | None, Some d -> Ok (make d)
    | None, None -> Error (Printf.sprintf "schedule %S needs a chunk size" s)
    | Some c, _ -> (
      match parse_chunk c with
      | Some c -> Ok (make c)
      | None -> Error (Printf.sprintf "schedule %S: chunk must be a positive integer" s))
  in
  match String.lowercase_ascii name with
  | "static" -> ( match chunk with None -> Ok Static | Some _ -> with_chunk (fun c -> Static_chunk c))
  | "dynamic" -> with_chunk ~default:1 (fun c -> Dynamic c)
  | "guided" -> with_chunk ~default:1 (fun c -> Guided c)
  | "ws" | "work-stealing" | "work_stealing" -> with_chunk ~default:1 (fun c -> Work_stealing c)
  | "dnc" | "divide-and-conquer" | "divide_and_conquer" -> with_chunk ~default:1 (fun g -> Dnc g)
  | _ ->
    Error
      (Printf.sprintf
         "unknown schedule %S (expected static[:N] | dynamic[:N] | guided[:N] | ws[:N] | dnc[:G])"
         s)

let static_blocks ~nthreads ~n =
  let q = n / nthreads and r = n mod nthreads in
  let blocks = Array.make nthreads (0, 0) in
  let start = ref 0 in
  for t = 0 to nthreads - 1 do
    let len = if t < r then q + 1 else q in
    blocks.(t) <- (!start, len);
    start := !start + len
  done;
  blocks

let round_robin_chunks ~chunk ~nthreads ~n =
  if chunk <= 0 || nthreads <= 0 then invalid_arg "Schedule.round_robin_chunks";
  let lists = Array.make nthreads [] in
  if n > 0 then begin
    (* single reversed pass over the chunk indices: each list is built
       front-to-back by one O(1) cons, no per-thread List.rev *)
    let nchunks = (n + chunk - 1) / chunk in
    for c = nchunks - 1 downto 0 do
      let start = c * chunk in
      lists.(c mod nthreads) <- (start, min chunk (n - start)) :: lists.(c mod nthreads)
    done
  end;
  lists

let next_guided ~chunk ~nthreads ~remaining =
  max (min chunk remaining) (min remaining ((remaining + (2 * nthreads) - 1) / (2 * nthreads)))

(* Divide-and-conquer splitting tree over [0, n): node 1 covers the
   whole interval; node [2k] is the left half (length floor(len/2)),
   node [2k+1] the right. A node splits while [len > grain]. The tree
   shape depends only on (n, grain) — never on worker count or arrival
   order — so the leaf partition is deterministic and the dnc.*
   counters reconcile exactly against [dnc_leaves]. *)
let dnc_interval ~n id =
  if id < 1 || n < 0 then invalid_arg "Schedule.dnc_interval";
  let bits = ref 0 in
  while id lsr !bits > 1 do
    incr bits
  done;
  let s = ref 0 and l = ref n in
  for i = !bits - 1 downto 0 do
    let half = !l / 2 in
    if (id lsr i) land 1 = 0 then l := half
    else begin
      s := !s + half;
      l := !l - half
    end
  done;
  (!s, !l)

let dnc_leaves ~grain ~n =
  if grain <= 0 then invalid_arg "Schedule.dnc_leaves";
  let rec go start len acc =
    if len <= grain then (start, len) :: acc
    else begin
      let half = len / 2 in
      go start half (go (start + half) (len - half) acc)
    end
  in
  if n <= 0 then [] else go 0 n []
