let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let time_best ?(reps = 3) f =
  let best = ref infinity in
  for _ = 1 to reps do
    best := Float.min !best (time f)
  done;
  !best

let ns_per_iter ~iters f =
  let s = time (fun () -> f iters) in
  s *. 1e9 /. float_of_int iters

(* Work unit = one innermost iteration of a Polybench-style kernel
   (~a few ns: one fused multiply-add plus loads). Constants below are
   expressed in that unit and match common libgomp measurements:
   dynamic dispatch ~100-200ns, parallel region fork/join ~ a few us,
   closed-form recovery ~100-300ns (sqrt/cpow + flops), §V
   incrementation ~1 compare + add. *)
let default_dispatch = 60.0
let default_fork_join = 2000.0
let default_recovery = 80.0

(* the §V incrementation replaces (not duplicates) the original loops'
   own index arithmetic; its marginal cost is one extra compare+reset
   per iteration, a few percent of one work unit *)
let default_increment = 0.02

let measure_region_overhead ?(calls = 200) ?(warmup = 3) ~backend ~nthreads () =
  if calls <= 0 then invalid_arg "Calibrate.measure_region_overhead";
  Par.with_backend backend (fun () ->
      let region () =
        Par.parallel_for ~nthreads ~schedule:Schedule.Static ~n:nthreads (fun _ -> ())
      in
      for _ = 1 to warmup do
        region ()
      done;
      let s = time (fun () -> for _ = 1 to calls do region () done) in
      s *. 1e9 /. float_of_int calls)
