(** OpenMP loop schedules, plus the engine's own work-stealing policy.

    Chunk assignment reproduces libgomp's behaviour: [Static] deals one
    contiguous block per thread (first [n mod t] threads get one extra
    iteration); [Static_chunk c] deals [c]-sized chunks round-robin;
    [Dynamic c] is first-come-first-served; [Guided c] halves the
    remaining work over the thread count with a floor of [c].

    [Work_stealing c] is not an OpenMP clause: it deals [c]-sized
    chunks round-robin into per-worker Chase–Lev deques ({!Deque}), so
    the initial distribution equals [Static_chunk c], but an idle
    worker steals chunks from the top of a busy worker's deque instead
    of serializing on a central queue — dynamic-style load balancing
    with no shared dispatch point on the hot path.

    [Dnc g] (also not an OpenMP clause) replaces static chunk dealing
    with divide-and-conquer splitting: the collapsed interval is
    recursively halved down to a grain of [g] iterations, and the
    split tree's nodes flow through the same Chase–Lev deques — owners
    pop small nearby subranges depth-first while thieves steal the
    largest untouched subtree. The split tree depends only on [(n, g)],
    so the chunk partition is deterministic regardless of worker count
    or timing — which skew-balances non-rectangular ranges without
    making reduction results schedule-dependent. *)

type t =
  | Static
  | Static_chunk of int
  | Dynamic of int
  | Guided of int
  | Work_stealing of int
  | Dnc of int

(** [to_string s] is the clause text, e.g. ["static, 64"]; the
    work-stealing policy prints as ["ws"] / ["ws, 64"]. *)
val to_string : t -> string

(** [of_string s] parses both {!to_string}'s output (["dynamic, 4"])
    and the CLI colon form (["dynamic:4"]); every schedule is
    reachable by name: [static[:N]], [dynamic[:N]], [guided[:N]],
    [ws[:N]] (also spelled [work-stealing]), [dnc[:G]] (also spelled
    [divide-and-conquer]). Chunk defaults to 1 for dynamic/guided/ws,
    as in OpenMP, and the grain defaults to 1 for dnc. Round-trips:
    [of_string (to_string s) = Ok s].

    The chunk grammar is strict: decimal digits only. Zero, negative
    and overflowing values, radix/underscore/sign spellings accepted
    by [int_of_string] (["0x10"], ["1_000"], ["+4"]) and any trailing
    junk after the chunk (["dynamic:4:x"], ["ws, 4 8"]) are all
    rejected with a descriptive [Error]. *)
val of_string : string -> (t, string) result

(** [static_blocks ~nthreads ~n] is the per-thread contiguous
    [(start, len)] assignment of [Static] (len 0 for idle threads). *)
val static_blocks : nthreads:int -> n:int -> (int * int) array

(** [round_robin_chunks ~chunk ~nthreads ~n] lists each thread's
    [(start, len)] chunks under [Static_chunk chunk] (also the initial
    deque contents under [Work_stealing chunk]). Built in one pass,
    [O(n/chunk)] conses total. Every list is empty when [n <= 0].
    @raise Invalid_argument when [chunk <= 0] or [nthreads <= 0]. *)
val round_robin_chunks : chunk:int -> nthreads:int -> n:int -> (int * int) list array

(** [next_guided ~chunk ~nthreads ~remaining] is the size of the next
    guided chunk. *)
val next_guided : chunk:int -> nthreads:int -> remaining:int -> int

(** [dnc_interval ~n id] is the [(start, len)] subinterval of [0, n)
    covered by node [id] of the divide-and-conquer splitting tree:
    node 1 is the whole interval, node [2k] the left half (length
    [len/2] rounded down) of node [k], node [2k+1] the right half.
    @raise Invalid_argument when [id < 1] or [n < 0]. *)
val dnc_interval : n:int -> int -> int * int

(** [dnc_leaves ~grain ~n] is the deterministic leaf partition of
    [0, n) under [Dnc grain], in ascending start order: the chunks a
    [Dnc] region executes, in left-to-right tree order. Splits
    performed equal [List.length (dnc_leaves ~grain ~n) - 1] (one per
    internal node) whenever [n > 0].
    @raise Invalid_argument when [grain <= 0]. *)
val dnc_leaves : grain:int -> n:int -> (int * int) list
