(** OpenMP loop schedules, plus the engine's own work-stealing policy.

    Chunk assignment reproduces libgomp's behaviour: [Static] deals one
    contiguous block per thread (first [n mod t] threads get one extra
    iteration); [Static_chunk c] deals [c]-sized chunks round-robin;
    [Dynamic c] is first-come-first-served; [Guided c] halves the
    remaining work over the thread count with a floor of [c].

    [Work_stealing c] is not an OpenMP clause: it deals [c]-sized
    chunks round-robin into per-worker Chase–Lev deques ({!Deque}), so
    the initial distribution equals [Static_chunk c], but an idle
    worker steals chunks from the top of a busy worker's deque instead
    of serializing on a central queue — dynamic-style load balancing
    with no shared dispatch point on the hot path. *)

type t =
  | Static
  | Static_chunk of int
  | Dynamic of int
  | Guided of int
  | Work_stealing of int

(** [to_string s] is the clause text, e.g. ["static, 64"]; the
    work-stealing policy prints as ["ws"] / ["ws, 64"]. *)
val to_string : t -> string

(** [of_string s] parses both {!to_string}'s output (["dynamic, 4"])
    and the CLI colon form (["dynamic:4"]); every schedule is
    reachable by name: [static[:N]], [dynamic[:N]], [guided[:N]],
    [ws[:N]] (also spelled [work-stealing]). Chunk defaults to 1 for
    dynamic/guided/ws, as in OpenMP. Round-trips:
    [of_string (to_string s) = Ok s].

    The chunk grammar is strict: decimal digits only. Zero, negative
    and overflowing values, radix/underscore/sign spellings accepted
    by [int_of_string] (["0x10"], ["1_000"], ["+4"]) and any trailing
    junk after the chunk (["dynamic:4:x"], ["ws, 4 8"]) are all
    rejected with a descriptive [Error]. *)
val of_string : string -> (t, string) result

(** [static_blocks ~nthreads ~n] is the per-thread contiguous
    [(start, len)] assignment of [Static] (len 0 for idle threads). *)
val static_blocks : nthreads:int -> n:int -> (int * int) array

(** [round_robin_chunks ~chunk ~nthreads ~n] lists each thread's
    [(start, len)] chunks under [Static_chunk chunk] (also the initial
    deque contents under [Work_stealing chunk]). Built in one pass,
    [O(n/chunk)] conses total. Every list is empty when [n <= 0].
    @raise Invalid_argument when [chunk <= 0] or [nthreads <= 0]. *)
val round_robin_chunks : chunk:int -> nthreads:int -> n:int -> (int * int) list array

(** [next_guided ~chunk ~nthreads ~remaining] is the size of the next
    guided chunk. *)
val next_guided : chunk:int -> nthreads:int -> remaining:int -> int
