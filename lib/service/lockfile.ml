type t = {
  fd : Unix.file_descr;
  path : string;
  contended : bool;  (* at least one trylock failed before we won *)
}

let default_timeout_ms () =
  match Sys.getenv_opt "OMPSIM_CACHE_LOCK_TIMEOUT_MS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n >= 0 -> n | _ -> 10000)
  | None -> 10000

let contended t = t.contended

(* Paths locked (or mid-acquisition) by this process. POSIX record
   locks have two same-process hazards the kernel will not arbitrate:
   lockf never conflicts between threads of one process, and closing
   ANY fd onto a locked file drops the whole process's lock. So a
   second thread must not even open+trylock a path this process
   holds — [acquire] and [try_clean] both reserve the path here
   first, and back off if another thread already holds the
   reservation. Paths are compared as strings: all callers build
   them the same way (Filename.concat of the cache dir), so one dir
   yields one spelling. *)
let held : (string, unit) Hashtbl.t = Hashtbl.create 8
let held_mutex = Mutex.create ()

let reserve path =
  Mutex.lock held_mutex;
  let fresh = not (Hashtbl.mem held path) in
  if fresh then Hashtbl.replace held path ();
  Mutex.unlock held_mutex;
  fresh

let unreserve path =
  Mutex.lock held_mutex;
  Hashtbl.remove held path;
  Mutex.unlock held_mutex

(* Advisory cross-process lock via lockf (POSIX record locks): the
   kernel releases the lock when the holder dies, so a kill -9'd
   writer never wedges the cache — takeover of such a "stale" lock is
   just a successful trylock. The timeout guards against a holder
   that is alive but stuck; on expiry the caller proceeds without the
   lock (counted as a steal upstream), which is safe because
   publication is an atomic rename either way.

   Two subtleties:
   - release unlinks the lock file (no residue), so a winner must
     revalidate that the inode it locked is still the inode at [path]
     — losing that race means it locked a file some other process
     already released and removed, and must retry on the fresh file.
   - lockf locks are per-process: two threads of one process never
     conflict in the kernel, and closing any fd onto the file drops
     the process's lock. The [held] reservation table makes threads
     of one process queue on the path instead of silently sharing
     (or destroying) each other's kernel lock — though in-process
     exclusion remains primarily the single-flight table's job. *)
let acquire ?timeout_ms ?(poll_ms = 20) path =
  let timeout_ms = match timeout_ms with Some t -> t | None -> default_timeout_ms () in
  let deadline = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.) in
  let contended = ref false in
  let rec attempt () =
    if not (reserve path) then begin
      (* another thread of this process holds (or is acquiring) it *)
      contended := true;
      wait_retry ()
    end
    else begin
      match Unix.openfile path [ Unix.O_CREAT; Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644 with
      | exception Unix.Unix_error (e, _, _) ->
        unreserve path;
        Error (`Unavailable (Unix.error_message e))
      | fd -> try_lock fd
    end
  and try_lock fd =
    match Unix.lockf fd Unix.F_TLOCK 0 with
    | () -> (
      (* revalidate: is the inode we locked still the one at [path]? *)
      match (Unix.fstat fd, Unix.stat path) with
      | st_fd, st_path
        when st_fd.Unix.st_ino = st_path.Unix.st_ino
             && st_fd.Unix.st_dev = st_path.Unix.st_dev ->
        (* record the holder for post-mortem debugging *)
        (try
           Unix.ftruncate fd 0;
           ignore (Unix.lseek fd 0 Unix.SEEK_SET);
           let pid = Printf.sprintf "%d\n" (Unix.getpid ()) in
           ignore (Unix.write_substring fd pid 0 (String.length pid))
         with Unix.Unix_error _ -> ());
        Ok { fd; path; contended = !contended }
      | _ | (exception Unix.Unix_error _) ->
        (* the file was released+unlinked under us: retry on the
           fresh path *)
        (try Unix.close fd with Unix.Unix_error _ -> ());
        unreserve path;
        wait_retry ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
      contended := true;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      unreserve path;
      wait_retry ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      unreserve path;
      Error (`Unavailable (Unix.error_message e))
  and wait_retry () =
    if Unix.gettimeofday () >= deadline then Error `Timeout
    else begin
      Unix.sleepf (float_of_int poll_ms /. 1000.);
      attempt ()
    end
  in
  attempt ()

let release t =
  (* unlink before unlock: a poller blocked on this inode wakes to a
     nameless file, notices via revalidation, and retries on the path *)
  (try Unix.unlink t.path with Unix.Unix_error _ -> ());
  (try
     ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
     Unix.lockf t.fd Unix.F_ULOCK 0
   with Unix.Unix_error _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  unreserve t.path

(* a lock file nobody holds is an orphan (crashed holder already lost
   its kernel lock); one somebody holds is left alone. "Somebody"
   includes this very process: lockf never conflicts within a
   process, so the trylock below would succeed against our own live
   lock and the unlink (plus the lock-dropping close) would destroy
   another thread's cross-process exclusion. The reservation covers
   that: a reserved path is live by definition, and holding the
   reservation while probing keeps sibling threads from starting an
   acquisition mid-sweep. *)
let try_clean path =
  if not (reserve path) then false
  else
    Fun.protect ~finally:(fun () -> unreserve path) @@ fun () ->
    match Unix.openfile path [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644 with
    | exception Unix.Unix_error _ -> false
    | fd -> (
      match Unix.lockf fd Unix.F_TLOCK 0 with
      | () ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        true
      | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        false)
