(* CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven,
   reflected. OCaml ints are 63-bit here so the running value is
   masked to 32 bits explicitly. *)

let mask32 = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force table in
  let c = ref mask32 in
  String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor mask32 land mask32

let magic = "ompsim-entry"
let format_version = 1

let wrap payload =
  Printf.sprintf "%s %d %08x %d\n%s" magic format_version (crc32 payload)
    (String.length payload) payload

let unwrap content =
  match String.index_opt content '\n' with
  | None -> Error `Corrupt
  | Some nl -> (
    let header = String.sub content 0 nl in
    match String.split_on_char ' ' header with
    | [ m; v; crc_hex; len_s ] when m = magic -> (
      match (int_of_string_opt v, int_of_string_opt ("0x" ^ crc_hex), int_of_string_opt len_s) with
      | Some v, Some crc, Some len when v = format_version ->
        let body_len = String.length content - nl - 1 in
        if body_len <> len then Error `Corrupt
        else
          let payload = String.sub content (nl + 1) len in
          if crc32 payload = crc then Ok payload else Error `Corrupt
      | _ -> Error `Corrupt)
    | _ -> Error `Corrupt)
