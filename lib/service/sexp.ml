type t = Atom of string | List of t list

let atom_ok s =
  s <> ""
  && String.for_all
       (fun c -> not (c = '(' || c = ')' || c = ' ' || c = '\t' || c = '\n' || c = '\r'))
       s

let to_string s =
  let buf = Buffer.create 256 in
  let rec go = function
    | Atom a ->
      if not (atom_ok a) then invalid_arg (Printf.sprintf "Sexp.to_string: bad atom %S" a);
      Buffer.add_string buf a
    | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          go item)
        items;
      Buffer.add_char buf ')'
  in
  go s;
  Buffer.contents buf

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let skip () =
    while !pos < n && is_space text.[!pos] do
      incr pos
    done
  in
  let exception Bad of string in
  let rec parse () =
    skip ();
    if !pos >= n then raise (Bad "unexpected end of input")
    else if text.[!pos] = '(' then begin
      incr pos;
      let items = ref [] in
      let rec loop () =
        skip ();
        if !pos >= n then raise (Bad "unclosed parenthesis")
        else if text.[!pos] = ')' then incr pos
        else begin
          items := parse () :: !items;
          loop ()
        end
      in
      loop ();
      List (List.rev !items)
    end
    else if text.[!pos] = ')' then raise (Bad "unexpected )")
    else begin
      let start = !pos in
      while !pos < n && (not (is_space text.[!pos])) && text.[!pos] <> '(' && text.[!pos] <> ')' do
        incr pos
      done;
      Atom (String.sub text start (!pos - start))
    end
  in
  try
    let s = parse () in
    skip ();
    if !pos <> n then Error "trailing garbage after s-expression" else Ok s
  with Bad e -> Error e
