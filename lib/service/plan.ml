module P = Polymath.Polynomial
module A = Polymath.Affine
module N = Trahrhe.Nest

type t = { fingerprint : string; inversion : Trahrhe.Inversion.t }

let format_version = Fingerprint.format_version

let compile canonical_nest =
  Obsv.Trace.with_span "service.compile" @@ fun () ->
  match Trahrhe.Inversion.invert canonical_nest with
  | Ok inversion -> Ok { fingerprint = Fingerprint.digest canonical_nest; inversion }
  | Error e -> Error (Trahrhe.Inversion.error_to_string e)

let encode p =
  Sexp.to_string
    (Sexp.List
       [ Sexp.Atom "ompsim-plan";
         Sexp.List [ Sexp.Atom "version"; Codec.of_int_sexp format_version ];
         Sexp.List [ Sexp.Atom "fingerprint"; Sexp.Atom p.fingerprint ];
         Codec.of_inversion p.inversion ])

let decode s =
  match Sexp.of_string s with
  | Error e -> Error ("unparsable plan: " ^ e)
  | Ok sexp -> (
    try
      match sexp with
      | Sexp.List
          [ Sexp.Atom "ompsim-plan";
            Sexp.List [ Sexp.Atom "version"; v ];
            Sexp.List [ Sexp.Atom "fingerprint"; Sexp.Atom fingerprint ];
            payload ] ->
        let version = Codec.to_int_sexp v in
        if version <> format_version then
          Error (Printf.sprintf "plan format version %d, expected %d" version format_version)
        else begin
          let inversion = Codec.to_inversion payload in
          if Fingerprint.digest inversion.Trahrhe.Inversion.nest <> fingerprint then
            Error "plan fingerprint does not match its nest"
          else Ok { fingerprint; inversion }
        end
      | _ -> Error "not an ompsim-plan"
    with Codec.Error e -> Error ("corrupt plan: " ^ e))

let recovery p ~param = Trahrhe.Recovery.make p.inversion ~param

let reduce_clause_equal a b =
  match (a, b) with
  | None, None -> true
  | Some (ra : N.reduction), Some (rb : N.reduction) ->
    ra.N.op = rb.N.op && P.equal ra.N.value rb.N.value
  | _ -> false

let nest_equal (a : N.t) (b : N.t) =
  a.N.params = b.N.params
  && List.length a.N.levels = List.length b.N.levels
  && List.for_all2
       (fun (la : N.level) (lb : N.level) ->
         la.var = lb.var && A.equal la.lower lb.lower && A.equal la.upper lb.upper)
       a.N.levels b.N.levels
  && reduce_clause_equal a.N.reduce b.N.reduce

let recovery_equal a b =
  match (a, b) with
  | ( Trahrhe.Inversion.Root { var = va; expr = ea; mode = ma },
      Trahrhe.Inversion.Root { var = vb; expr = eb; mode = mb } ) ->
    va = vb && Symx.Expr.equal ea eb && ma = mb
  | ( Trahrhe.Inversion.Last { var = va; poly = pa },
      Trahrhe.Inversion.Last { var = vb; poly = pb } ) ->
    va = vb && P.equal pa pb
  | ( Trahrhe.Inversion.Numeric { var = va; r_sub_index = ia },
      Trahrhe.Inversion.Numeric { var = vb; r_sub_index = ib } ) ->
    va = vb && ia = ib
  | _ -> false

let array_for_all2 f a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i x -> ok := !ok && f x b.(i)) a;
       !ok
     end

let equal x y =
  let a = x.inversion and b = y.inversion in
  x.fingerprint = y.fingerprint
  && nest_equal a.Trahrhe.Inversion.nest b.Trahrhe.Inversion.nest
  && a.pc_var = b.pc_var
  && P.equal a.ranking b.ranking
  && P.equal a.trip_count b.trip_count
  && array_for_all2 P.equal a.r_sub b.r_sub
  && array_for_all2 recovery_equal a.recoveries b.recoveries
