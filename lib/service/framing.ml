(* Incremental line framing: see framing.mli for the contract. *)

let default_max_line = 8192

type t = {
  cur : Buffer.t;  (* bytes of the not-yet-terminated line *)
  lines : string Queue.t;  (* complete lines, input order *)
  max_line : int;
  mutable overflowed : bool;
}

let create ?(max_line = default_max_line) () =
  if max_line <= 0 then invalid_arg "Framing.create: max_line must be positive";
  { cur = Buffer.create 256; lines = Queue.create (); max_line; overflowed = false }

let overflowed t = t.overflowed
let buffered t = Buffer.length t.cur

let overflow t =
  t.overflowed <- true;
  (* drop the partial line: nothing after an overflow is served, so
     holding its bytes would only tie down memory *)
  Buffer.clear t.cur

let terminate t =
  let raw = Buffer.contents t.cur in
  Buffer.clear t.cur;
  let n = String.length raw in
  let content = if n > 0 && raw.[n - 1] = '\r' then String.sub raw 0 (n - 1) else raw in
  if String.length content > t.max_line then overflow t else Queue.push content t.lines

let feed t buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then invalid_arg "Framing.feed";
  for i = off to off + len - 1 do
    if not t.overflowed then
      match Bytes.get buf i with
      | '\n' -> terminate t
      | c ->
        Buffer.add_char t.cur c;
        (* content of max_line bytes plus its CR may sit unterminated;
           one byte more cannot become a legal line, overflow now so
           the buffer stays bounded without waiting for a terminator *)
        if Buffer.length t.cur > t.max_line + 1 then overflow t
  done

let feed_string t s =
  feed t (Bytes.unsafe_of_string s) 0 (String.length s)

let pop t =
  match Queue.take_opt t.lines with
  | Some line -> `Line line
  | None -> if t.overflowed then `Overflow else `Pending

let peek t =
  match Queue.peek_opt t.lines with
  | Some line -> `Line line
  | None -> if t.overflowed then `Overflow else `Pending

let drop t = ignore (Queue.take_opt t.lines)

let has_line t = (not (Queue.is_empty t.lines)) || t.overflowed
