(** Exact {!Sexp} codecs for the values a compiled plan carries.

    Every [of_*] / [to_*] pair round-trips exactly: bigints and
    rationals travel as decimal text (no float transit anywhere),
    polynomials as canonical term lists, symbolic root expressions as
    their full tree. Decoders raise {!Error} on any malformed input;
    {!Plan.decode} is the single entry point that catches it and turns
    corrupt data into an [Error] result. *)

exception Error of string

val of_bigint : Zmath.Bigint.t -> Sexp.t
val to_bigint : Sexp.t -> Zmath.Bigint.t

val of_rat : Zmath.Rat.t -> Sexp.t
val to_rat : Sexp.t -> Zmath.Rat.t

val of_int_sexp : int -> Sexp.t
val to_int_sexp : Sexp.t -> int

val of_monomial : Polymath.Monomial.t -> Sexp.t
val to_monomial : Sexp.t -> Polymath.Monomial.t

val of_poly : Polymath.Polynomial.t -> Sexp.t
val to_poly : Sexp.t -> Polymath.Polynomial.t

val of_affine : Polymath.Affine.t -> Sexp.t
val to_affine : Sexp.t -> Polymath.Affine.t

val of_expr : Symx.Expr.t -> Sexp.t
val to_expr : Sexp.t -> Symx.Expr.t

val of_mode : Symx.Cemit.mode -> Sexp.t
val to_mode : Sexp.t -> Symx.Cemit.mode

val of_nest : Trahrhe.Nest.t -> Sexp.t

(** [to_nest s] rebuilds through {!Trahrhe.Nest.make}, so a decoded
    nest re-passes model validation (raises {!Error} otherwise). *)
val to_nest : Sexp.t -> Trahrhe.Nest.t

val of_inversion : Trahrhe.Inversion.t -> Sexp.t
val to_inversion : Sexp.t -> Trahrhe.Inversion.t
