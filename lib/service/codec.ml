module B = Zmath.Bigint
module Q = Zmath.Rat
module M = Polymath.Monomial
module P = Polymath.Polynomial
module A = Polymath.Affine
module E = Symx.Expr

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let atom = function Sexp.Atom a -> a | Sexp.List _ -> fail "expected atom, got list"
let list = function Sexp.List l -> l | Sexp.Atom a -> fail "expected list, got atom %s" a

let of_bigint b = Sexp.Atom (B.to_string b)

let to_bigint s =
  let a = atom s in
  try B.of_string a with Invalid_argument _ -> fail "bad bigint %s" a

let of_rat q = Sexp.Atom (Q.to_string q)

let to_rat s =
  let a = atom s in
  try Q.of_string a
  with Invalid_argument _ | Failure _ | Division_by_zero -> fail "bad rational %s" a

let of_int_sexp n = Sexp.Atom (string_of_int n)

let to_int_sexp s =
  let a = atom s in
  match int_of_string_opt a with Some n -> n | None -> fail "bad integer %s" a

(* variable names travel as bare atoms; reject anything the sexp
   printer could not round-trip *)
let of_var v =
  if not (Sexp.atom_ok v) then fail "unserializable variable name %S" v;
  Sexp.Atom v

let of_monomial m =
  Sexp.List
    (List.map (fun (v, e) -> Sexp.List [ of_var v; of_int_sexp e ]) (M.to_list m))

let to_monomial s =
  let pairs =
    List.map
      (fun p ->
        match list p with
        | [ v; e ] -> (atom v, to_int_sexp e)
        | _ -> fail "bad monomial factor")
      (list s)
  in
  try M.of_list pairs with Invalid_argument e -> fail "bad monomial: %s" e

let of_poly p =
  Sexp.List (List.map (fun (c, m) -> Sexp.List [ of_rat c; of_monomial m ]) (P.terms p))

let to_poly s =
  P.of_terms
    (List.map
       (fun t ->
         match list t with
         | [ c; m ] -> (to_rat c, to_monomial m)
         | _ -> fail "bad polynomial term")
       (list s))

let of_affine a =
  Sexp.List
    [ Sexp.List
        (List.map (fun (v, c) -> Sexp.List [ of_var v; of_rat c ]) (A.terms a));
      of_rat (A.const_part a) ]

let to_affine s =
  match list s with
  | [ terms; const ] ->
    let terms =
      List.map
        (fun t ->
          match list t with
          | [ v; c ] -> (atom v, to_rat c)
          | _ -> fail "bad affine term")
        (list terms)
    in
    A.make terms (to_rat const)
  | _ -> fail "bad affine expression"

let rec of_expr = function
  | E.Const q -> Sexp.List [ Sexp.Atom "c"; of_rat q ]
  | E.I -> Sexp.Atom "i"
  | E.Var v -> Sexp.List [ Sexp.Atom "v"; of_var v ]
  | E.Sum es -> Sexp.List (Sexp.Atom "+" :: List.map of_expr es)
  | E.Prod es -> Sexp.List (Sexp.Atom "*" :: List.map of_expr es)
  | E.Pow (b, q) -> Sexp.List [ Sexp.Atom "^"; of_expr b; of_rat q ]

(* rebuild with the raw constructors, NOT the smart ones: the smart
   constructors fold/flatten, and a decoded plan must be structurally
   identical to what was encoded *)
let rec to_expr = function
  | Sexp.Atom "i" -> E.I
  | Sexp.Atom a -> fail "bad expression atom %s" a
  | Sexp.List [ Sexp.Atom "c"; q ] -> E.Const (to_rat q)
  | Sexp.List [ Sexp.Atom "v"; v ] -> E.Var (atom v)
  | Sexp.List (Sexp.Atom "+" :: es) -> E.Sum (List.map to_expr es)
  | Sexp.List (Sexp.Atom "*" :: es) -> E.Prod (List.map to_expr es)
  | Sexp.List [ Sexp.Atom "^"; b; q ] -> E.Pow (to_expr b, to_rat q)
  | Sexp.List _ -> fail "bad expression node"

let of_mode = function
  | Symx.Cemit.Real -> Sexp.Atom "real"
  | Symx.Cemit.Complex -> Sexp.Atom "complex"

let to_mode s =
  match atom s with
  | "real" -> Symx.Cemit.Real
  | "complex" -> Symx.Cemit.Complex
  | a -> fail "bad emission mode %s" a

(* the reduction clause travels as an OPTIONAL third element, so every
   plan encoded before reductions existed still decodes byte-for-byte *)
let of_nest (n : Trahrhe.Nest.t) =
  let base =
    [ Sexp.List (List.map of_var n.Trahrhe.Nest.params);
      Sexp.List
        (List.map
           (fun (l : Trahrhe.Nest.level) ->
             Sexp.List [ of_var l.var; of_affine l.lower; of_affine l.upper ])
           n.Trahrhe.Nest.levels) ]
  in
  let reduce =
    match n.Trahrhe.Nest.reduce with
    | None -> []
    | Some r ->
      [ Sexp.List
          [ Sexp.Atom (Trahrhe.Nest.op_to_string r.Trahrhe.Nest.op);
            of_poly r.Trahrhe.Nest.value ] ]
  in
  Sexp.List (base @ reduce)

let to_nest s =
  let build params levels reduce =
    let params = List.map atom (list params) in
    let levels =
      List.map
        (fun l ->
          match list l with
          | [ v; lo; hi ] ->
            { Trahrhe.Nest.var = atom v; lower = to_affine lo; upper = to_affine hi }
          | _ -> fail "bad nest level")
        (list levels)
    in
    try Trahrhe.Nest.make ~params ?reduce levels
    with Invalid_argument e -> fail "invalid nest: %s" e
  in
  match list s with
  | [ params; levels ] -> build params levels None
  | [ params; levels; red ] -> (
    match list red with
    | [ op; value ] ->
      let op_name = atom op in
      let op =
        match Trahrhe.Nest.op_of_string op_name with
        | Some o -> o
        | None -> fail "bad reduction op %s" op_name
      in
      build params levels (Some { Trahrhe.Nest.op; value = to_poly value })
    | _ -> fail "bad reduction clause")
  | _ -> fail "bad nest"

let of_recovery = function
  | Trahrhe.Inversion.Root { var; expr; mode } ->
    Sexp.List [ Sexp.Atom "root"; of_var var; of_expr expr; of_mode mode ]
  | Trahrhe.Inversion.Last { var; poly } ->
    Sexp.List [ Sexp.Atom "last"; of_var var; of_poly poly ]
  | Trahrhe.Inversion.Numeric { var; r_sub_index } ->
    Sexp.List [ Sexp.Atom "numeric"; of_var var; of_int_sexp r_sub_index ]

let to_recovery s =
  match list s with
  | [ Sexp.Atom "root"; v; e; m ] ->
    Trahrhe.Inversion.Root { var = atom v; expr = to_expr e; mode = to_mode m }
  | [ Sexp.Atom "last"; v; p ] -> Trahrhe.Inversion.Last { var = atom v; poly = to_poly p }
  | [ Sexp.Atom "numeric"; v; i ] ->
    Trahrhe.Inversion.Numeric { var = atom v; r_sub_index = to_int_sexp i }
  | _ -> fail "bad level recovery"

let of_inversion (inv : Trahrhe.Inversion.t) =
  Sexp.List
    [ of_nest inv.Trahrhe.Inversion.nest;
      of_var inv.pc_var;
      of_poly inv.ranking;
      of_poly inv.trip_count;
      Sexp.List (Array.to_list (Array.map of_poly inv.r_sub));
      Sexp.List (Array.to_list (Array.map of_recovery inv.recoveries)) ]

let to_inversion s =
  match list s with
  | [ nest; pc_var; ranking; trip_count; r_sub; recoveries ] ->
    let nest = to_nest nest in
    let r_sub = Array.of_list (List.map to_poly (list r_sub)) in
    let recoveries = Array.of_list (List.map to_recovery (list recoveries)) in
    let d = Trahrhe.Nest.depth nest in
    if Array.length r_sub <> d || Array.length recoveries <> d then
      fail "inversion arity does not match nest depth %d" d;
    { Trahrhe.Inversion.nest;
      pc_var = atom pc_var;
      ranking = to_poly ranking;
      trip_count = to_poly trip_count;
      r_sub;
      recoveries }
  | _ -> fail "bad inversion"
