(** Two-tier plan cache with single-flight stampede protection.

    Tier 1 is a bounded in-memory LRU keyed by nest fingerprint; tier
    2 is an optional on-disk store (one [<fingerprint>.plan] file per
    plan, written atomically via rename inside a CRC envelope —
    {!Envelope}) enabled by passing [~dir] or setting the
    [OMPSIM_PLAN_CACHE] environment variable.

    Disk robustness: an entry whose envelope fails to verify (torn
    write, bit rot, foreign bytes) is {e quarantined} — moved to
    [<fingerprint>.bad], counted in [quarantined], recompiled — never
    silently re-served; an entry that verifies but no longer decodes
    (older format version) is an ordinary miss and is overwritten.
    Fresh compiles into a shared store are serialized {e across
    processes} by an advisory [<fingerprint>.lock] file ({!Lockfile}):
    the loser of the race finds the winner's entry on a double-checked
    probe and serves it as a disk hit. A crashed holder's lock is
    reclaimed by the kernel; a wedged holder is abandoned after
    [OMPSIM_CACHE_LOCK_TIMEOUT_MS] (counted in [lock_steals]).
    {!create} runs a startup janitor ({!sweep}) that removes orphaned
    dot-temps of dead writers, stale [.lock]s and [.bad] files.

    Concurrent in-process requests for the same fingerprint are
    single-flighted: the first runs the compile, the rest park on a
    condition variable and receive the winner's result. A failed
    compile propagates its error to every parked waiter but is {e
    not} cached — the next request for that fingerprint compiles
    again.

    All operations are thread-safe; the per-request critical sections
    take one mutex and never hold it across a compile or disk I/O. *)

type t

(** Always-on counters (independent of {!Obsv.Control}); with the
    observability layer enabled the [cache.*] {!Stats} metrics advance
    in lockstep. Per request exactly one of [hits]/[misses]/
    [singleflight_waits] advances, and [disk_hits <= hits]. The
    robustness counters ride along without disturbing that invariant:
    a quarantined entry also counts as the miss that recompiles it. *)
type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  singleflight_waits : int;
  quarantined : int;  (** corrupt disk entries moved to [.bad] *)
  lock_waits : int;  (** cross-process lock acquisitions that contended *)
  lock_steals : int;  (** lock timeouts abandoned on a live holder *)
  janitor_removed : int;  (** orphaned files swept at startup *)
}

(** [create ()] makes a cache. [capacity] (default 256) bounds the
    in-memory tier; [dir] (default: [OMPSIM_PLAN_CACHE] when set)
    locates the disk tier, created on first store if missing. When
    the directory exists, creation runs one janitor {!sweep}. *)
val create : ?capacity:int -> ?dir:string option -> unit -> t

(** [default ()] is the shared process-wide cache, configured from the
    environment (created on first use). *)
val default : unit -> t

(** [sweep t] removes orphaned files from the disk tier and returns
    how many it removed (0 when no disk tier): private
    [.{name}.{pid}.{ext}] temps whose writer pid is dead, [.lock]
    files no live process holds, and quarantined [.bad] entries.
    Published entries are never candidates (they never start with a
    dot). Also run by {!create}. *)
val sweep : t -> int

(** [find_or_compile t nest] canonicalizes and fingerprints [nest],
    then returns its plan — from memory, from disk, from a concurrent
    in-flight compile, or by compiling — together with the renaming
    that maps [nest]'s names onto the plan's canonical ones (pass it
    to {!Fingerprint.canonical_param} when executing).

    [?compile] overrides the compiler (default {!Plan.compile} of the
    canonical nest) — the tests use it to inject slow or failing
    compiles; the contract is that it returns a plan for the canonical
    nest it is given. The slow path — disk probe, cross-process lock,
    compile — runs under a [service.cache] trace span; warm hits
    record only the metrics (a span per sub-microsecond hit would
    drown the trace). *)
val find_or_compile :
  ?compile:(Trahrhe.Nest.t -> (Plan.t, string) result) ->
  t ->
  Trahrhe.Nest.t ->
  (Plan.t * Fingerprint.renaming, string) result

val stats : t -> stats

(** [size t] is the current in-memory entry count ([<= capacity]). *)
val size : t -> int

val capacity : t -> int
val dir : t -> string option

(** [clear t] empties the in-memory tier (the disk tier is untouched)
    and zeroes {!stats}. Waits for no one: only call when no request
    is in flight. *)
val clear : t -> unit
