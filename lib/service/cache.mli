(** Two-tier plan cache with single-flight stampede protection.

    Tier 1 is a bounded in-memory LRU keyed by nest fingerprint; tier
    2 is an optional on-disk store (one [<fingerprint>.plan] file per
    plan, written atomically via rename) enabled by passing [~dir] or
    setting the [OMPSIM_PLAN_CACHE] environment variable. Disk reads
    that fail for any reason — missing file, truncated or corrupted
    content, a plan written by an older format version — are treated
    as misses and recompiled, never surfaced as errors; a successful
    recompile overwrites the bad entry.

    Concurrent requests for the same fingerprint are single-flighted:
    the first runs the compile, the rest park on a condition variable
    and receive the winner's result. A failed compile propagates its
    error to every parked waiter but is {e not} cached — the next
    request for that fingerprint compiles again.

    All operations are thread-safe; the per-request critical sections
    take one mutex and never hold it across a compile or disk I/O. *)

type t

(** Always-on counters (independent of {!Obsv.Control}); with the
    observability layer enabled the [cache.*] {!Stats} metrics advance
    in lockstep. Per request exactly one of [hits]/[misses]/
    [singleflight_waits] advances, and [disk_hits <= hits]. *)
type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  singleflight_waits : int;
}

(** [create ()] makes a cache. [capacity] (default 256) bounds the
    in-memory tier; [dir] (default: [OMPSIM_PLAN_CACHE] when set)
    locates the disk tier, created on first store if missing. *)
val create : ?capacity:int -> ?dir:string option -> unit -> t

(** [default ()] is the shared process-wide cache, configured from the
    environment (created on first use). *)
val default : unit -> t

(** [find_or_compile t nest] canonicalizes and fingerprints [nest],
    then returns its plan — from memory, from disk, from a concurrent
    in-flight compile, or by compiling — together with the renaming
    that maps [nest]'s names onto the plan's canonical ones (pass it
    to {!Fingerprint.canonical_param} when executing).

    [?compile] overrides the compiler (default {!Plan.compile} of the
    canonical nest) — the tests use it to inject slow or failing
    compiles; the contract is that it returns a plan for the canonical
    nest it is given. The slow path — disk probe plus compile — runs
    under a [service.cache] trace span; warm hits record only the
    metrics (a span per sub-microsecond hit would drown the trace). *)
val find_or_compile :
  ?compile:(Trahrhe.Nest.t -> (Plan.t, string) result) ->
  t ->
  Trahrhe.Nest.t ->
  (Plan.t * Fingerprint.renaming, string) result

val stats : t -> stats

(** [size t] is the current in-memory entry count ([<= capacity]). *)
val size : t -> int

val capacity : t -> int
val dir : t -> string option

(** [clear t] empties the in-memory tier (the disk tier is untouched)
    and zeroes {!stats}. Waits for no one: only call when no request
    is in flight. *)
val clear : t -> unit
