(** Service-layer {!Obsv.Metrics} counters.

    Like {!Ompsim.Stats}, these register globally at module link time,
    are written only when {!Obsv.Control.enabled}, and reset with
    {!Obsv.Metrics.reset_all} (so [Ompsim.Stats.reset] covers them).
    The cache additionally keeps its own always-on counters
    ({!Cache.stats}) for the batch summary, which must not depend on
    the observability switch; when the switch is on the two agree
    exactly — the [micro-cache] bench reconciles them. *)

val cache_hits : Obsv.Metrics.t
(** [cache.hit]: requests satisfied without a compile — in-memory LRU
    hits plus disk-tier hits *)

val cache_disk_hits : Obsv.Metrics.t
(** [cache.disk_hit]: the subset of hits served by decoding an on-disk
    plan (a fresh process with a warm [OMPSIM_PLAN_CACHE] dir sees
    only these) *)

val cache_misses : Obsv.Metrics.t
(** [cache.miss]: requests that ran the symbolic pipeline (corrupt or
    version-stale disk entries land here, never as errors) *)

val cache_evictions : Obsv.Metrics.t
(** [cache.evict]: plans dropped from the LRU tail at capacity *)

val singleflight_waits : Obsv.Metrics.t
(** [cache.singleflight_wait]: requests that parked behind an
    in-flight compile of the same fingerprint instead of compiling —
    per request: hits + misses + single-flight waits = requests *)

val inflight_admissions : Obsv.Metrics.t
(** [service.inflight]: requests admitted by the batch and serve front
    ends; the instantaneous in-flight level is also emitted as a
    Chrome counter sample under the same name *)

val serve_accepts : Obsv.Metrics.t
(** [serve.accept]: connections accepted by the serve event loop —
    after a run, accepts − closes = 0 (every accepted connection is
    closed by the loop before it returns) *)

val serve_timeouts : Obsv.Metrics.t
(** [serve.timeout]: requests whose per-request deadline
    ([--request-timeout-ms]) expired before execution finished; each
    one produced an error response, never a silent drop *)

val serve_rejected : Obsv.Metrics.t
(** [serve.rejected]: protocol-level rejections by the serve loop — an
    oversized request line overflows the connection's framer, which
    answers with one error response and closes that connection *)

val serve_throttled : Obsv.Metrics.t
(** [serve.throttled]: requests refused by per-client overload
    protection (the token-bucket [--rate-limit]); each one received a
    deterministic structured [rejected:overload] response *)

val cache_quarantined : Obsv.Metrics.t
(** [cache.quarantined]: corrupt disk entries (envelope/CRC failures)
    moved aside to [<fingerprint>.bad] and recompiled — never silently
    re-served, never silently deleted *)

val cache_lock_waits : Obsv.Metrics.t
(** [cache.lock_wait]: cross-process lock acquisitions that actually
    contended (at least one failed try-lock) before winning *)

val cache_lock_steals : Obsv.Metrics.t
(** [cache.lock_steal]: lock acquisitions that timed out on a live
    holder ([OMPSIM_CACHE_LOCK_TIMEOUT_MS]) and proceeded without the
    lock — safe under atomic-rename publication, but worth counting *)

val cache_janitor : Obsv.Metrics.t
(** [cache.janitor]: orphaned files ([.tmp] temps of dead writers,
    stale [.lock]s, quarantined [.bad]s) removed by the startup sweep *)
