(** Checksummed entry envelope for the disk tiers.

    A disk entry is [ompsim-entry <version> <crc32-hex8> <len>\n]
    followed by exactly [len] payload bytes. The CRC covers the
    payload, so a torn write (kill -9 between write and rename on a
    filesystem that reorders, bit rot, a partial copy) is detected at
    read time instead of being parsed as a plan. The cache treats
    {!unwrap} failures as {e corruption} — the entry is quarantined to
    [<name>.bad] and counted ([cache.quarantined]) — while a payload
    that unwraps cleanly but fails to decode is an ordinary {e stale}
    miss (old format version, foreign fingerprint) and is silently
    overwritten, exactly as before. *)

(** [crc32 s] is the IEEE CRC-32 of [s] (the zlib polynomial), in
    [0, 0xFFFFFFFF]. *)
val crc32 : string -> int

val magic : string
val format_version : int

(** [wrap payload] renders the envelope around [payload]. *)
val wrap : string -> string

(** [unwrap content] returns the payload iff the header parses, the
    length matches exactly and the CRC verifies. *)
val unwrap : string -> (string, [ `Corrupt ]) result
