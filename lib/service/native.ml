module R = Trahrhe.Recovery

type stats = { served : int; fallbacks : int }

type t = {
  dir : string option;
  mutex : Mutex.t;
  tbl : (string, (Jit.Native.handle, string) result) Hashtbl.t;
  flights : Jit.Native.handle Single_flight.t;
  breaker : Jit.Breaker.t;
  mutable served : int;
  mutable fallbacks : int;
  mutable last_error : string option;
}

let create ?dir ?breaker () =
  let dir = match dir with Some d -> d | None -> Sys.getenv_opt "OMPSIM_PLAN_CACHE" in
  let breaker = match breaker with Some b -> b | None -> Jit.Breaker.create () in
  { dir;
    mutex = Mutex.create ();
    tbl = Hashtbl.create 16;
    flights = Single_flight.create ();
    breaker;
    served = 0;
    fallbacks = 0;
    last_error = None }

let default_t = lazy (create ())
let default () = Lazy.force default_t
let dir t = t.dir
let breaker t = t.breaker

(* one validated handle per fingerprint, single-flighted exactly like
   plan compiles. Only plan-shaped failures (the emitter rejected the
   inversion) are cached: those are deterministic, so retrying the
   same fingerprint would fail identically forever. Toolchain
   failures — missing compiler, wedged cc, compile timeout — are NOT
   cached: they are transient, and pinning them would keep a
   fingerprint on the interpreted walk even after the toolchain
   recovers. Their retry cost is bounded by the circuit breaker (a
   broken toolchain trips it within [threshold] attempts, after which
   rejections are in-memory and free), and a breaker rejection itself
   is likewise never cached — that is the breaker talking, not the
   toolchain. *)
let handle_for t fp inv =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.tbl fp with
  | Some r ->
    Mutex.unlock t.mutex;
    r
  | None -> (
    match Single_flight.join t.flights fp with
    | Some fl ->
      let r = Single_flight.await fl ~mutex:t.mutex in
      Mutex.unlock t.mutex;
      r
    | None ->
      let fl = Single_flight.enter t.flights fp in
      Mutex.unlock t.mutex;
      let result = Jit.Compile.specialize ?dir:t.dir ~breaker:t.breaker ~fingerprint:fp inv in
      Mutex.lock t.mutex;
      (match result with
      | Ok _ -> Hashtbl.replace t.tbl fp result
      | Error e when Jit.Compile.is_plan_error e -> Hashtbl.replace t.tbl fp result
      | Error _ -> ());
      (match result with Error e -> t.last_error <- Some e | Ok _ -> ());
      Single_flight.publish t.flights fp fl result;
      Mutex.unlock t.mutex;
      result)

let note_served t =
  Mutex.lock t.mutex;
  t.served <- t.served + 1;
  Mutex.unlock t.mutex

let note_fallback t =
  Mutex.lock t.mutex;
  t.fallbacks <- t.fallbacks + 1;
  Mutex.unlock t.mutex;
  Jit.Stats.fallback ()

let recovery_explain t (plan : Plan.t) ~param =
  let rc = Plan.recovery plan ~param in
  if R.overflow_guarded rc then begin
    (* PR-4 overflow mode stays interpreted: int64 C would wrap *)
    note_fallback t;
    (rc, Some "overflow-guarded nest stays interpreted")
  end
  else begin
    match handle_for t plan.Plan.fingerprint plan.Plan.inversion with
    | Error e ->
      note_fallback t;
      (rc, Some e)
    | Ok h ->
      let ps =
        Array.of_list
          (List.map param plan.Plan.inversion.Trahrhe.Inversion.nest.Trahrhe.Nest.params)
      in
      (* cheap end-to-end cross-check before trusting the object *)
      if Jit.Native.trip h ps <> R.trip_count rc then begin
        note_fallback t;
        (rc, Some "native trip-count cross-check mismatch")
      end
      else begin
        note_served t;
        ( R.attach_native rc
            { R.n_walk_hash = (fun ~pc ~len -> Jit.Native.walk_hash h ps ~pc ~len);
              n_recover = (fun ~pc idx -> Jit.Native.recover h ps ~pc idx);
              n_fill_block = (fun ~pc lanes -> Jit.Native.fill_block h ps ~pc lanes);
              n_fill_flat = (fun ~pc ~width buf -> Jit.Native.fill_block_flat h ps ~pc ~width buf);
              n_reduce_sum = (fun ~pc ~len -> Jit.Native.reduce_sum h ps ~pc ~len) },
          None )
      end
  end

let recovery t plan ~param = fst (recovery_explain t plan ~param)

let last_error t =
  Mutex.lock t.mutex;
  let e = t.last_error in
  Mutex.unlock t.mutex;
  e

let stats t =
  Mutex.lock t.mutex;
  let s = { served = t.served; fallbacks = t.fallbacks } in
  Mutex.unlock t.mutex;
  s

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.iter (fun _ r -> match r with Ok h -> Jit.Native.close h | Error _ -> ()) t.tbl;
  Hashtbl.reset t.tbl;
  t.served <- 0;
  t.fallbacks <- 0;
  t.last_error <- None;
  Mutex.unlock t.mutex
