module R = Trahrhe.Recovery

type stats = { served : int; fallbacks : int }

type t = {
  dir : string option;
  mutex : Mutex.t;
  tbl : (string, (Jit.Native.handle, string) result) Hashtbl.t;
  flights : Jit.Native.handle Single_flight.t;
  mutable served : int;
  mutable fallbacks : int;
}

let create ?dir () =
  let dir = match dir with Some d -> d | None -> Sys.getenv_opt "OMPSIM_PLAN_CACHE" in
  { dir;
    mutex = Mutex.create ();
    tbl = Hashtbl.create 16;
    flights = Single_flight.create ();
    served = 0;
    fallbacks = 0 }

let default_t = lazy (create ())
let default () = Lazy.force default_t
let dir t = t.dir

(* one validated handle per fingerprint, single-flighted exactly like
   plan compiles. Specialize failures ARE cached (unlike plan-compile
   failures): a missing compiler would otherwise fork gcc once per
   request, and the interpreted fallback is always available. *)
let handle_for t fp inv =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.tbl fp with
  | Some r ->
    Mutex.unlock t.mutex;
    r
  | None -> (
    match Single_flight.join t.flights fp with
    | Some fl ->
      let r = Single_flight.await fl ~mutex:t.mutex in
      Mutex.unlock t.mutex;
      r
    | None ->
      let fl = Single_flight.enter t.flights fp in
      Mutex.unlock t.mutex;
      let result = Jit.Compile.specialize ?dir:t.dir ~fingerprint:fp inv in
      Mutex.lock t.mutex;
      Hashtbl.replace t.tbl fp result;
      Single_flight.publish t.flights fp fl result;
      Mutex.unlock t.mutex;
      result)

let note_served t =
  Mutex.lock t.mutex;
  t.served <- t.served + 1;
  Mutex.unlock t.mutex

let note_fallback t =
  Mutex.lock t.mutex;
  t.fallbacks <- t.fallbacks + 1;
  Mutex.unlock t.mutex;
  Jit.Stats.fallback ()

let recovery t (plan : Plan.t) ~param =
  let rc = Plan.recovery plan ~param in
  if R.overflow_guarded rc then begin
    (* PR-4 overflow mode stays interpreted: int64 C would wrap *)
    note_fallback t;
    rc
  end
  else begin
    match handle_for t plan.Plan.fingerprint plan.Plan.inversion with
    | Error _ ->
      note_fallback t;
      rc
    | Ok h ->
      let ps =
        Array.of_list
          (List.map param plan.Plan.inversion.Trahrhe.Inversion.nest.Trahrhe.Nest.params)
      in
      (* cheap end-to-end cross-check before trusting the object *)
      if Jit.Native.trip h ps <> R.trip_count rc then begin
        note_fallback t;
        rc
      end
      else begin
        note_served t;
        R.attach_native rc
          { R.n_walk_hash = (fun ~pc ~len -> Jit.Native.walk_hash h ps ~pc ~len);
            n_recover = (fun ~pc idx -> Jit.Native.recover h ps ~pc idx);
            n_fill_block = (fun ~pc lanes -> Jit.Native.fill_block h ps ~pc lanes);
            n_fill_flat = (fun ~pc ~width buf -> Jit.Native.fill_block_flat h ps ~pc ~width buf);
            n_reduce_sum = (fun ~pc ~len -> Jit.Native.reduce_sum h ps ~pc ~len) }
      end
  end

let stats t =
  Mutex.lock t.mutex;
  let s = { served = t.served; fallbacks = t.fallbacks } in
  Mutex.unlock t.mutex;
  s

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.iter (fun _ r -> match r with Ok h -> Jit.Native.close h | Error _ -> ()) t.tbl;
  Hashtbl.reset t.tbl;
  t.served <- 0;
  t.fallbacks <- 0;
  Mutex.unlock t.mutex
