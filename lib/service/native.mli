(** Native-handle cache: serves plans as specialized shared objects.

    One validated {!Jit.Native} handle per plan fingerprint, compiled
    (or warm-loaded) on first request and kept for the cache's
    lifetime; concurrent first requests are single-flighted with the
    same machinery as plan compiles ({!Single_flight}). The [.so]
    files live in the same directory as the plans — [~dir], defaulting
    to [OMPSIM_PLAN_CACHE] — named [<fingerprint>.<salt>.so]
    ({!Jit.Compile.so_name}).

    Unlike plan-compile failures, specialize failures are cached per
    fingerprint: a missing C compiler must not fork [gcc] once per
    request when the interpreted walk is always available. Two
    exceptions to that caching, both introduced by the compile
    circuit breaker the cache threads into every specialize:
    breaker {e rejections} are never cached (the breaker re-closing
    must let the fingerprint try again), and breaker state itself is
    queryable for the serve loop's [health] verb ({!breaker}). *)

type t

type stats = { served : int; fallbacks : int }

(** [create ()] makes a handle cache over [dir] (default:
    [OMPSIM_PLAN_CACHE] when set, else a temp directory chosen by
    {!Jit.Compile.specialize}). [breaker] (default a fresh
    {!Jit.Breaker.create}, configured from the environment) guards
    this cache's fresh compiles. *)
val create : ?dir:string option -> ?breaker:Jit.Breaker.t -> unit -> t

(** [default ()] is the shared process-wide cache, configured from the
    environment. *)
val default : unit -> t

val dir : t -> string option

(** [breaker t] is the compile circuit breaker guarding this cache's
    fresh specializations — the [health] verb reports its state. *)
val breaker : t -> Jit.Breaker.t

(** [recovery t plan ~param] is {!Plan.recovery} plus the native
    backend when one can be attached: the plan's object is fetched or
    built, cross-checked ([ompsim_trip] against the interpreted trip
    count), and bound to the canonical parameter values. On any
    failure — no compiler, compile error, overflow-guarded nest,
    cross-check mismatch — the interpreted recovery is returned
    unchanged and [jit.fallback] is counted; probe with
    {!Trahrhe.Recovery.native_enabled}. *)
val recovery : t -> Plan.t -> param:(string -> int) -> Trahrhe.Recovery.t

(** [recovery_explain t plan ~param] is {!recovery} plus the fallback
    reason when the native backend could not be attached — including
    the compiler's stderr excerpt on a compile failure — so the serve
    loop can surface {e why} a request ran interpreted. [None] means
    the native backend is engaged. *)
val recovery_explain :
  t -> Plan.t -> param:(string -> int) -> Trahrhe.Recovery.t * string option

(** [last_error t] is the most recent specialize failure (breaker
    rejections included), for the [health] report. *)
val last_error : t -> string option

val stats : t -> stats

(** [clear t] closes every cached handle and forgets all entries
    (including cached failures). Only call when no recovery obtained
    from [t] is still in use. *)
val clear : t -> unit
