module A = Polymath.Affine
module M = Polymath.Monomial
module P = Polymath.Polynomial
module Q = Zmath.Rat
module N = Trahrhe.Nest

type renaming = { iterators : (string * string) list; params : (string * string) list }

(* version 2: the plan payload grew the (numeric var k) level-recovery
   shape (certified numeric inversion). Bumping the version salts every
   fingerprint, so pre-numeric disk plans and JIT objects age out as
   ordinary stale misses instead of being misparsed. *)
let format_version = 2

(* all bounds of the nest in a fixed order: level 0 lower, level 0
   upper, level 1 lower, ... — the axis along which parameter
   signatures are read *)
let bounds_in_order (n : N.t) =
  List.concat_map (fun (l : N.level) -> [ l.lower; l.upper ]) n.N.levels

(* coefficient signature of one parameter: name-independent, so
   sorting by it orders parameters canonically; parameters with equal
   signatures are interchangeable in every bound and any tiebreak
   yields the same canonical nest *)
let signature bounds p = List.map (fun b -> A.coeff p b) bounds

let rec compare_signature a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a, y :: b ->
    let c = Q.compare x y in
    if c <> 0 then c else compare_signature a b

let canonicalize (n : N.t) =
  let bounds = bounds_in_order n in
  let params_sorted =
    List.stable_sort
      (fun p q -> compare_signature (signature bounds p) (signature bounds q))
      n.N.params
  in
  let params = List.mapi (fun i p -> (p, Printf.sprintf "p%d" i)) params_sorted in
  let iterators =
    List.mapi (fun i (l : N.level) -> (l.var, Printf.sprintf "x%d" i)) n.N.levels
  in
  let rename_tbl = Hashtbl.create 16 in
  List.iter (fun (o, c) -> Hashtbl.replace rename_tbl o c) (params @ iterators);
  let rename_var v =
    match Hashtbl.find_opt rename_tbl v with
    | Some c -> c
    | None -> invalid_arg ("Fingerprint.canonicalize: unbound variable " ^ v)
  in
  let rename_affine a =
    A.make (List.map (fun (v, c) -> (rename_var v, c)) (A.terms a)) (A.const_part a)
  in
  let rename_poly p =
    P.of_terms
      (List.map
         (fun (c, m) ->
           (c, M.of_list (List.map (fun (v, e) -> (rename_var v, e)) (M.to_list m))))
         (P.terms p))
  in
  let levels =
    List.map
      (fun (l : N.level) ->
        { N.var = rename_var l.var; lower = rename_affine l.lower; upper = rename_affine l.upper })
      n.N.levels
  in
  let reduce =
    Option.map
      (fun (r : N.reduction) -> { N.op = r.N.op; value = rename_poly r.N.value })
      n.N.reduce
  in
  let canonical = N.make ~params:(List.map snd params) ?reduce levels in
  (canonical, { iterators; params })

let render (n : N.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," n.N.params);
  List.iter
    (fun (l : N.level) ->
      Buffer.add_char buf ';';
      Buffer.add_string buf l.var;
      Buffer.add_char buf '=';
      Buffer.add_string buf (A.to_string l.lower);
      Buffer.add_char buf ':';
      Buffer.add_string buf (A.to_string l.upper))
    n.N.levels;
  (* the reduce suffix is appended ONLY when a clause is present, so
     every pre-reduction fingerprint (and the cached plans keyed by
     it) is preserved verbatim *)
  (match n.N.reduce with
  | None -> ()
  | Some r ->
    Buffer.add_string buf ";reduce=";
    Buffer.add_string buf (N.op_to_string r.N.op);
    Buffer.add_char buf ':';
    Buffer.add_string buf (P.to_string r.N.value));
  Buffer.contents buf

let digest canonical =
  Digest.to_hex
    (Digest.string (Printf.sprintf "ompsim-plan-v%d|%s" format_version (render canonical)))

let hash nest = digest (fst (canonicalize nest))

(* Canonicalization memo keyed by PHYSICAL identity. The service
   parses every [kernel=NAME] request into the registry's shared nest
   value, so a warm server would otherwise re-canonicalize and
   re-digest the same physical nest on every request — the single
   biggest CPU cost of a warm cache hit. Nests are immutable, so [==]
   is a sound (if conservative) key: a miss only costs the recompute.
   The MRU array is tiny (scans stay cheap, memory stays bounded) and
   swapped atomically — a lost race between two writers just drops one
   entry, never corrupts. *)
let memo_cap = 16
let memo : (N.t * (N.t * renaming * string)) array Atomic.t = Atomic.make [||]

let canonicalize_cached nest =
  let arr = Atomic.get memo in
  let n = Array.length arr in
  let rec find i =
    if i >= n then None
    else
      let k, v = Array.unsafe_get arr i in
      if k == nest then Some v else find (i + 1)
  in
  match find 0 with
  | Some hit -> hit
  | None ->
    let canonical, renaming = canonicalize nest in
    let fp = digest canonical in
    let entry = (nest, (canonical, renaming, fp)) in
    let keep = min n (memo_cap - 1) in
    let arr' = Array.append [| entry |] (Array.sub arr 0 keep) in
    Atomic.set memo arr';
    (canonical, renaming, fp)

let canonical_param r param =
  let reverse = List.map (fun (o, c) -> (c, o)) r.params in
  fun canonical_name ->
    match List.assoc_opt canonical_name reverse with
    | Some original -> param original
    | None -> invalid_arg ("Fingerprint.canonical_param: unknown parameter " ^ canonical_name)
