(** Keyed single-flight duplicate suppression, shared by the plan
    cache and the native-handle cache.

    A flight is one in-progress computation for a key. The first
    requester {!enter}s, computes with the owner's mutex {e released},
    then {!publish}es; concurrent requesters {!join} and {!await} the
    winner's result on a condition variable. A published failure
    reaches every waiter but poisons nothing — the flight is forgotten
    and the next request computes again.

    The synchronization discipline is the owner's: every function here
    must be called with the owner's mutex held ({!await} releases it
    while parked, as [Condition.wait] does). *)

type 'a flight
type 'a t

val create : unit -> 'a t

(** [join t key] is the in-progress flight for [key], if any. *)
val join : 'a t -> string -> 'a flight option

(** [enter t key] registers and returns a fresh flight for [key]; the
    caller is now the winner and must eventually {!publish}. *)
val enter : 'a t -> string -> 'a flight

(** [await fl ~mutex] parks until the winner publishes, then returns
    its result. [mutex] is the owner's mutex, held by the caller. *)
val await : 'a flight -> mutex:Mutex.t -> ('a, string) result

(** [publish t key fl result] resolves [fl] with [result], forgets the
    flight and wakes every waiter. *)
val publish : 'a t -> string -> 'a flight -> ('a, string) result -> unit
