type node = {
  key : string;
  plan : Plan.t;
  mutable prev : node option;
  mutable next : node option;
}

type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  singleflight_waits : int;
  quarantined : int;
  lock_waits : int;
  lock_steals : int;
  janitor_removed : int;
}

type t = {
  capacity : int;
  dir : string option;
  mutex : Mutex.t;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  inflight : Plan.t Single_flight.t;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable singleflight_waits : int;
  mutable quarantined : int;
  mutable lock_waits : int;
  mutable lock_steals : int;
  mutable janitor_removed : int;
}

let obsv_incr metric = if Obsv.Control.enabled () then Obsv.Metrics.incr_here metric

(* ---- startup janitor ----

   A crashed writer leaves its private [.name.pid.ext] temp (ext one
   of tmp, c, so, log) behind forever (the atomic-rename publish
   never happened), a
   kill -9'd lock holder leaves an unlocked [.lock] file, and
   quarantined [.bad] entries accumulate. None of these are live
   state: published entries never start with a dot, live locks resist
   a try-lock, and [.bad] files exist only for the post-mortem window
   until the next startup. *)

let temp_exts = [ "tmp"; "c"; "so"; "log" ]

let pid_dead pid =
  match Unix.kill pid 0 with
  | () -> false
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
  | exception Unix.Unix_error _ -> false (* EPERM and friends: alive *)

(* [.{name}.{pid}.{ext}] with a dead pid; fingerprints and salts are
   hex, so the dot-split segments are unambiguous *)
let orphan_temp name =
  String.length name > 1
  && name.[0] = '.'
  &&
  match List.rev (String.split_on_char '.' name) with
  | ext :: pid :: _ when List.mem ext temp_exts -> (
    match int_of_string_opt pid with Some p when p > 0 -> pid_dead p | _ -> false)
  | _ -> false

let sweep_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if orphan_temp name || Filename.check_suffix name ".bad" then (
          match Sys.remove path with
          | () -> acc + 1
          | exception Sys_error _ -> acc)
        else if Filename.check_suffix name ".lock" then
          if Lockfile.try_clean path then acc + 1 else acc
        else acc)
      0 entries

let sweep t =
  match t.dir with
  | None -> 0
  | Some dir ->
    let n = sweep_dir dir in
    if n > 0 then begin
      Mutex.lock t.mutex;
      t.janitor_removed <- t.janitor_removed + n;
      Mutex.unlock t.mutex;
      for _ = 1 to n do
        obsv_incr Stats.cache_janitor
      done
    end;
    n

let create ?(capacity = 256) ?dir () =
  let dir = match dir with Some d -> d | None -> Sys.getenv_opt "OMPSIM_PLAN_CACHE" in
  let t =
    { capacity = max 1 capacity;
      dir;
      mutex = Mutex.create ();
      tbl = Hashtbl.create 64;
      head = None;
      tail = None;
      inflight = Single_flight.create ();
      hits = 0;
      disk_hits = 0;
      misses = 0;
      evictions = 0;
      singleflight_waits = 0;
      quarantined = 0;
      lock_waits = 0;
      lock_steals = 0;
      janitor_removed = 0 }
  in
  ignore (sweep t);
  t

let default_cache = lazy (create ())
let default () = Lazy.force default_cache

(* ---- LRU plumbing; every call below holds t.mutex ---- *)

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some s -> s.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let lookup t fp =
  match Hashtbl.find_opt t.tbl fp with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.plan

let insert t fp plan =
  if not (Hashtbl.mem t.tbl fp) then begin
    let node = { key = fp; plan; prev = None; next = None } in
    Hashtbl.replace t.tbl fp node;
    push_front t node;
    if Hashtbl.length t.tbl > t.capacity then begin
      match t.tail with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.tbl victim.key;
        t.evictions <- t.evictions + 1;
        obsv_incr Stats.cache_evictions
      | None -> ()
    end
  end

let record_hit t ~disk =
  t.hits <- t.hits + 1;
  obsv_incr Stats.cache_hits;
  if disk then begin
    t.disk_hits <- t.disk_hits + 1;
    obsv_incr Stats.cache_disk_hits
  end

let record_miss t =
  t.misses <- t.misses + 1;
  obsv_incr Stats.cache_misses

(* the three below are called with the mutex NOT held *)

let record_quarantine t =
  Mutex.lock t.mutex;
  t.quarantined <- t.quarantined + 1;
  Mutex.unlock t.mutex;
  obsv_incr Stats.cache_quarantined

let record_lock_wait t =
  Mutex.lock t.mutex;
  t.lock_waits <- t.lock_waits + 1;
  Mutex.unlock t.mutex;
  obsv_incr Stats.cache_lock_waits

let record_lock_steal t =
  Mutex.lock t.mutex;
  t.lock_steals <- t.lock_steals + 1;
  Mutex.unlock t.mutex;
  obsv_incr Stats.cache_lock_steals

(* ---- disk tier (no lock held; failures are misses or no-ops) ---- *)

let plan_path dir fp = Filename.concat dir (fp ^ ".plan")
let lock_path dir fp = Filename.concat dir (fp ^ ".lock")
let bad_path dir fp = Filename.concat dir (fp ^ ".bad")

(* a corrupt entry is moved aside, never deleted (the .bad copy is
   the post-mortem evidence; the next startup janitor reclaims it)
   and never re-served *)
let quarantine t dir fp =
  let src = plan_path dir fp in
  (try Sys.rename src (bad_path dir fp)
   with Sys_error _ -> ( try Sys.remove src with Sys_error _ -> ()));
  record_quarantine t

let disk_load t fp =
  match t.dir with
  | None -> None
  | Some dir -> (
    match
      let ic = open_in_bin (plan_path dir fp) in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error _ -> None
    | exception End_of_file -> None
    | content -> (
      (* envelope failure = corruption (torn write, bit rot):
         quarantine. A clean envelope around an undecodable payload =
         staleness (old format version, foreign fingerprint): plain
         miss, silently overwritten by the recompile. *)
      match Envelope.unwrap content with
      | Error `Corrupt ->
        quarantine t dir fp;
        None
      | Ok payload -> (
        match Plan.decode payload with
        | Ok p when p.Plan.fingerprint = fp -> Some p
        | Ok _ | Error _ -> None)))

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* atomic publish: write a private temp file, then rename into place —
   a concurrent reader sees the old entry or the new one, never a
   torn write (and the CRC envelope catches anything the filesystem
   still manages to tear). Purely best-effort: a read-only dir
   silently disables the tier for this entry. *)
let disk_store t fp plan =
  match t.dir with
  | None -> ()
  | Some dir -> (
    try
      mkdir_p dir;
      let tmp = Filename.concat dir (Printf.sprintf ".%s.%d.tmp" fp (Unix.getpid ())) in
      let oc = open_out_bin tmp in
      (try
         output_string oc (Envelope.wrap (Plan.encode plan));
         close_out oc
       with e ->
         close_out_noerr oc;
         raise e);
      Unix.rename tmp (plan_path dir fp)
    with Sys_error _ | Unix.Unix_error _ -> ())

(* ---- the request path ---- *)

let find_or_compile ?(compile = Plan.compile) t nest =
  let canonical, renaming, fp = Fingerprint.canonicalize_cached nest in
  let with_renaming = Result.map (fun p -> (p, renaming)) in
  Mutex.lock t.mutex;
  match lookup t fp with
  | Some plan ->
    record_hit t ~disk:false;
    Mutex.unlock t.mutex;
    Ok (plan, renaming)
  | None -> (
    match Single_flight.join t.inflight fp with
    | Some fl ->
      (* single-flight follower: park until the winner publishes *)
      t.singleflight_waits <- t.singleflight_waits + 1;
      obsv_incr Stats.singleflight_waits;
      let r = Single_flight.await fl ~mutex:t.mutex in
      Mutex.unlock t.mutex;
      with_renaming r
    | None ->
      (* single-flight winner: compile with the lock released *)
      let fl = Single_flight.enter t.inflight fp in
      Mutex.unlock t.mutex;
      (* the trace span covers the slow path only — disk probe plus
         compile. A span per warm hit would drown the trace (and cost
         more than the lookup it wraps); hits are counted exactly by
         the metrics either way. *)
      let result, origin =
        Obsv.Trace.with_span "service.cache" @@ fun () ->
        let fresh () =
          match compile canonical with
          | Ok plan ->
            disk_store t fp plan;
            (Ok plan, `Compiled)
          | Error e -> (Error e, `Failed)
        in
        match disk_load t fp with
        | Some plan -> (Ok plan, `Disk)
        | None -> (
          match t.dir with
          | None -> fresh ()
          | Some dir ->
            (* cross-process single-flight: processes sharing this
               store serialize fresh compiles of one fingerprint on
               an advisory file lock. A kill -9'd holder's lock is
               released by the kernel; a live-but-wedged holder is
               bounded by the acquisition timeout, after which we
               proceed without the lock — a stampede, not a hazard,
               because publication stays atomic. *)
            let lk =
              match mkdir_p dir with
              | () -> Lockfile.acquire (lock_path dir fp)
              | exception (Sys_error e | Unix.Unix_error (_, _, e)) ->
                Error (`Unavailable e)
            in
            (match lk with
            | Ok l when Lockfile.contended l -> record_lock_wait t
            | Ok _ -> ()
            | Error `Timeout -> record_lock_steal t
            | Error (`Unavailable _) -> ());
            Fun.protect
              ~finally:(fun () -> match lk with Ok l -> Lockfile.release l | Error _ -> ())
              (fun () ->
                (* double-checked probe: whoever held the lock (or
                   still holds it, on a steal) may have published
                   this entry while we waited *)
                match disk_load t fp with
                | Some plan -> (Ok plan, `Disk)
                | None -> fresh ()))
      in
      Mutex.lock t.mutex;
      (match origin with
      | `Disk -> record_hit t ~disk:true
      | `Compiled | `Failed -> record_miss t);
      (match result with Ok plan -> insert t fp plan | Error _ -> ());
      (* publish, then forget the flight: a failed compile reaches its
         waiters but poisons nothing — the next request retries *)
      Single_flight.publish t.inflight fp fl result;
      Mutex.unlock t.mutex;
      with_renaming result)

let stats t =
  Mutex.lock t.mutex;
  let s =
    { hits = t.hits;
      disk_hits = t.disk_hits;
      misses = t.misses;
      evictions = t.evictions;
      singleflight_waits = t.singleflight_waits;
      quarantined = t.quarantined;
      lock_waits = t.lock_waits;
      lock_steals = t.lock_steals;
      janitor_removed = t.janitor_removed }
  in
  Mutex.unlock t.mutex;
  s

let size t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mutex;
  n

let capacity t = t.capacity
let dir t = t.dir

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.hits <- 0;
  t.disk_hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.singleflight_waits <- 0;
  t.quarantined <- 0;
  t.lock_waits <- 0;
  t.lock_steals <- 0;
  t.janitor_removed <- 0;
  Mutex.unlock t.mutex
