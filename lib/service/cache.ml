type node = {
  key : string;
  plan : Plan.t;
  mutable prev : node option;
  mutable next : node option;
}

type stats = {
  hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  singleflight_waits : int;
}

type t = {
  capacity : int;
  dir : string option;
  mutex : Mutex.t;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  inflight : Plan.t Single_flight.t;
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable singleflight_waits : int;
}

let create ?(capacity = 256) ?dir () =
  let dir = match dir with Some d -> d | None -> Sys.getenv_opt "OMPSIM_PLAN_CACHE" in
  { capacity = max 1 capacity;
    dir;
    mutex = Mutex.create ();
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    inflight = Single_flight.create ();
    hits = 0;
    disk_hits = 0;
    misses = 0;
    evictions = 0;
    singleflight_waits = 0 }

let default_cache = lazy (create ())
let default () = Lazy.force default_cache

let obsv_incr metric = if Obsv.Control.enabled () then Obsv.Metrics.incr_here metric

(* ---- LRU plumbing; every call below holds t.mutex ---- *)

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some s -> s.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let lookup t fp =
  match Hashtbl.find_opt t.tbl fp with
  | None -> None
  | Some node ->
    unlink t node;
    push_front t node;
    Some node.plan

let insert t fp plan =
  if not (Hashtbl.mem t.tbl fp) then begin
    let node = { key = fp; plan; prev = None; next = None } in
    Hashtbl.replace t.tbl fp node;
    push_front t node;
    if Hashtbl.length t.tbl > t.capacity then begin
      match t.tail with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.tbl victim.key;
        t.evictions <- t.evictions + 1;
        obsv_incr Stats.cache_evictions
      | None -> ()
    end
  end

let record_hit t ~disk =
  t.hits <- t.hits + 1;
  obsv_incr Stats.cache_hits;
  if disk then begin
    t.disk_hits <- t.disk_hits + 1;
    obsv_incr Stats.cache_disk_hits
  end

let record_miss t =
  t.misses <- t.misses + 1;
  obsv_incr Stats.cache_misses

(* ---- disk tier (no lock held; failures are misses or no-ops) ---- *)

let plan_path dir fp = Filename.concat dir (fp ^ ".plan")

let disk_load t fp =
  match t.dir with
  | None -> None
  | Some dir -> (
    match
      let ic = open_in_bin (plan_path dir fp) in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error _ -> None
    | exception End_of_file -> None
    | content -> (
      match Plan.decode content with
      | Ok p when p.Plan.fingerprint = fp -> Some p
      | Ok _ | Error _ -> None))

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* atomic publish: write a private temp file, then rename into place —
   a concurrent reader sees the old entry or the new one, never a
   torn write. Purely best-effort: a read-only dir silently disables
   the tier for this entry. *)
let disk_store t fp plan =
  match t.dir with
  | None -> ()
  | Some dir -> (
    try
      mkdir_p dir;
      let tmp = Filename.concat dir (Printf.sprintf ".%s.%d.tmp" fp (Unix.getpid ())) in
      let oc = open_out_bin tmp in
      (try
         output_string oc (Plan.encode plan);
         close_out oc
       with e ->
         close_out_noerr oc;
         raise e);
      Unix.rename tmp (plan_path dir fp)
    with Sys_error _ | Unix.Unix_error _ -> ())

(* ---- the request path ---- *)

let find_or_compile ?(compile = Plan.compile) t nest =
  let canonical, renaming, fp = Fingerprint.canonicalize_cached nest in
  let with_renaming = Result.map (fun p -> (p, renaming)) in
  Mutex.lock t.mutex;
  match lookup t fp with
  | Some plan ->
    record_hit t ~disk:false;
    Mutex.unlock t.mutex;
    Ok (plan, renaming)
  | None -> (
    match Single_flight.join t.inflight fp with
    | Some fl ->
      (* single-flight follower: park until the winner publishes *)
      t.singleflight_waits <- t.singleflight_waits + 1;
      obsv_incr Stats.singleflight_waits;
      let r = Single_flight.await fl ~mutex:t.mutex in
      Mutex.unlock t.mutex;
      with_renaming r
    | None ->
      (* single-flight winner: compile with the lock released *)
      let fl = Single_flight.enter t.inflight fp in
      Mutex.unlock t.mutex;
      (* the trace span covers the slow path only — disk probe plus
         compile. A span per warm hit would drown the trace (and cost
         more than the lookup it wraps); hits are counted exactly by
         the metrics either way. *)
      let result, origin =
        Obsv.Trace.with_span "service.cache" @@ fun () ->
        match disk_load t fp with
        | Some plan -> (Ok plan, `Disk)
        | None -> (
          match compile canonical with
          | Ok plan -> (Ok plan, `Compiled)
          | Error e -> (Error e, `Failed))
      in
      (match (result, origin) with
      | Ok plan, `Compiled -> disk_store t fp plan
      | _ -> ());
      Mutex.lock t.mutex;
      (match origin with
      | `Disk -> record_hit t ~disk:true
      | `Compiled | `Failed -> record_miss t);
      (match result with Ok plan -> insert t fp plan | Error _ -> ());
      (* publish, then forget the flight: a failed compile reaches its
         waiters but poisons nothing — the next request retries *)
      Single_flight.publish t.inflight fp fl result;
      Mutex.unlock t.mutex;
      with_renaming result)

let stats t =
  Mutex.lock t.mutex;
  let s =
    { hits = t.hits;
      disk_hits = t.disk_hits;
      misses = t.misses;
      evictions = t.evictions;
      singleflight_waits = t.singleflight_waits }
  in
  Mutex.unlock t.mutex;
  s

let size t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mutex;
  n

let capacity t = t.capacity
let dir t = t.dir

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.hits <- 0;
  t.disk_hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.singleflight_waits <- 0;
  Mutex.unlock t.mutex
