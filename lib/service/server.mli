(** The compilation-service front end: a line-oriented request
    protocol served over batch files ([trahrhe batch]) or a Unix
    domain socket ([trahrhe serve]), with every plan lookup going
    through a shared {!Cache}.

    {2 Protocol}

    One request per line; blank lines and lines starting with [#] are
    ignored. A request is an operation followed by [key=value] fields
    (no spaces inside a field; the first [=] splits key from value):

    {v
    compile kernel=utma
    compile params=N levels=i=0..N,j=i..N label=tri
    exec kernel=correlation n=40 threads=4 schedule=dynamic:2
    exec params=N=25 levels=i=0..N,j=i..i+1 lanes=8 repeat=3
    health
    shutdown
    v}

    - [kernel=NAME] names a built-in kernel; alternatively
      [params=...] + [levels=...] give an inline nest. [params] is a
      comma-separated list of [NAME] or [NAME=VALUE] (values are
      required for [exec]); [levels] is a comma-separated list of
      [VAR=LOWER..UPPER] with affine bounds over parameters and outer
      iterators — grammar [['-'] term (('+'|'-') term)*] where a term
      is [INT], [IDENT] or [INT*IDENT].
    - [exec] options: [n] (kernel headline size), [threads], [schedule]
      (as in [trahrhe exec -s]), [lanes], [repeat], [retries],
      [native] ([0/1] or [true/false]: route the walk through the
      JIT-specialized shared object, falling back to the interpreted
      walk when none can be attached), [label].
    - [reduce=sum|prod|min|max] executes the region as a parallel
      reduction over the collapsed range instead of the checksum walk:
      per-worker partial accumulators folded by a deterministic combine
      tree, checked exactly against the serial fold. The reduced value
      polynomial is the nest's declared clause when it has one, the
      canonical default otherwise; the clause participates in the
      plan's fingerprint. [sum] reduces in wrapped int64 (and can run
      natively under [native=1]); [prod]/[min]/[max] reduce in exact
      rationals and report the result as a JSON string. Example:
      [exec kernel=utma n=50 threads=4 schedule=dnc:2 reduce=sum].
    - [health] reports liveness and robustness state in one JSON
      line: the compile circuit breaker ([state]/[consecutive_failures]/
      [opens]/[rejections]/[probes]), the plan cache's counters
      (including [quarantined], [lock_waits], [lock_steals],
      [janitor_removed]), the native backend's served/fallback totals
      (plus its [last_error] when one is recorded), and the serve
      loop's current admitted depth ([inflight]). Under [serve] it is
      answered at admission time, bypassing the admission cap and the
      rate limiter, so it works exactly when the server is saturated;
      it is deliberately {e not} byte-stable.
    - [shutdown] stops a server loop (and ends a batch early); its
      acknowledgement carries the cache's [hits]/[misses] totals.

    Every request yields exactly one JSON response line. Responses are
    deterministic — they carry no timings and no cache state, so two
    batch runs over the same input produce byte-identical output (the
    CI cache smoke depends on this); hit/miss accounting goes to the
    batch summary on stderr instead. The one exception is the
    [shutdown] acknowledgement, whose cache totals reflect the run
    (tooling that needs byte-stable output should diff response lines
    excluding it). An [exec] with [native=1] reports
    ["native":true|false] — whether the backend actually engaged —
    and, on fallback, ["native_error"] with the reason (including the
    first ~2 KB of the C compiler's stderr on a compile failure). *)

type exec_opts = {
  threads : int;  (** domains for the parallel region (default 4) *)
  schedule : Ompsim.Schedule.t;  (** default [Static] *)
  lanes : int;  (** §VI-A lane width; 1 = per-iteration walk *)
  repeat : int;  (** executions of the region per request (default 1) *)
  retries : int;  (** > 0 routes through [Par.run_resilient] *)
  native : bool;  (** route walks through the native backend ({!Native}) *)
  reduce : Trahrhe.Nest.red_op option;
      (** run the region as a parallel reduction instead of the
          checksum walk; the parser already rewrote [nest]'s clause to
          match, so the plan is content-addressed with it *)
}

type request =
  | Compile of { label : string; nest : Trahrhe.Nest.t }
  | Exec of {
      label : string;
      nest : Trahrhe.Nest.t;
      param : string -> int;  (** valuation in the nest's own names *)
      opts : exec_opts;
    }
  | Health
  | Shutdown

(** [parse_request line] is [Ok None] for a blank/comment line,
    [Ok (Some r)] for a well-formed request, [Error msg] otherwise. *)
val parse_request : string -> (request option, string) result

(** [handle cache r] serves one request and returns its JSON response
    line together with whether the request succeeded. [Exec] compiles
    (or fetches) the plan, runs the collapsed nest [repeat] times on
    OCaml domains reusing one recovery, and checks every run against a
    serial reference computed once. With [opts.native], the recovery
    comes from [native] (default: {!Native.default}) and each chunk's
    checksum is one [walk_hash] call — a single native invocation when
    the backend engaged, the equivalent interpreted fold otherwise.

    [deadline_ms] budgets the request's execution (all [repeat] runs
    share it, measured from entry): when it expires the response is a
    deterministic [status:"error"] line naming the timeout, so the
    byte-stability contract above still holds. Parallel runs are
    supervised through [Par.run_resilient], which stops launching
    chunks once the deadline passes; [compile] requests are never
    deadlined (the symbolic pipeline is not cancellable mid-flight). *)
val handle : ?native:Native.t -> ?deadline_ms:int -> Cache.t -> request -> string * bool

(** [run_batch ic oc] reads requests from [ic] (stopping early at
    [shutdown]), serves them on [workers] concurrent admission slots
    (default 4 — the in-flight bound; excess requests queue, which is
    the batch front end's backpressure), and writes all response lines
    to [oc] in input order. Admissions bump the [service.inflight]
    counter and, with tracing on, emit the instantaneous in-flight
    level as Chrome counter samples. A one-line cache/hit summary goes
    to stderr. Returns the exit code: 0 when every request succeeded,
    1 otherwise. *)
val run_batch :
  ?cache:Cache.t -> ?native:Native.t -> ?workers:int -> in_channel -> out_channel -> int

(** [serve_connection cache ic oc] serves one connection's requests
    sequentially until end-of-stream or a [shutdown] request,
    flushing each response line as it is written. *)
val serve_connection :
  ?native:Native.t -> Cache.t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]

type serve_config = {
  max_clients : int;
      (** connections multiplexed at once (default 64); the listen
          backlog is derived from this, so a connect burst up to the
          cap queues instead of bouncing *)
  max_inflight : int;
      (** admission cap: requests admitted (queued or executing)
          across all connections (default 16). A connection whose
          next framed line the cap parks stops being read — unread
          sockets are the backpressure buffer. Control verbs
          ([health], [shutdown]) are exempt: they are consumed and
          answered even at the cap, so the liveness probe works
          exactly when the server is saturated. *)
  max_inflight_per_client : int;
      (** per-connection admission cap (default 8): one pipelining
          client can hold at most this many of the [max_inflight]
          slots, so a flood cannot monopolize admission. At its cap a
          connection with a parked request line simply stops being
          read (backpressure), it is not sent errors; [health] and
          [shutdown] remain exempt here too. *)
  rate_limit : float option;
      (** requests per second per connection (default [None] =
          unlimited), enforced by a token bucket of capacity
          [rate_burst]. Over-rate requests receive a deterministic
          [status:"error"] line with [error:"rejected:overload"]
          (counted in [throttled] / [serve.throttled]) and the
          connection stays open. [health] and [shutdown] are exempt. *)
  rate_burst : int;
      (** token-bucket capacity for [rate_limit] (default 8): the
          burst a quiet connection may send before pacing applies *)
  request_timeout_ms : int option;
      (** per-request deadline passed to {!handle} (default [None]) *)
  max_line : int;  (** framer line bound (default {!Framing.default_max_line}) *)
  max_write_buffer : int;
      (** a connection whose unflushed output exceeds this stops being
          read — a slow reader throttles itself, not the loop
          (default 256 KiB) *)
  drain_timeout_ms : int;
      (** on shutdown/signal, how long to keep flushing in-flight
          responses before force-closing laggards (default 5000) *)
  service_quantum : int;
      (** requests served per connection per loop turn (default 4):
          the fairness/throughput dial. A pipelining client gets at
          most this many answers before the loop moves on, and its
          responses batch into one write. *)
}

val default_serve_config : serve_config

type serve_stats = {
  connections : int;  (** accepted over the run ([serve.accept]) *)
  requests : int;  (** admitted requests (= [service.inflight] bumps) *)
  responses : int;  (** response lines emitted, including errors *)
  ok_responses : int;
  error_responses : int;
  timeouts : int;  (** deadline-expired requests ([serve.timeout]) *)
  rejected : int;  (** oversized-line rejections ([serve.rejected]) *)
  throttled : int;
      (** requests refused with [rejected:overload] by the
          per-connection rate limiter ([serve.throttled]) *)
  health_probes : int;
      (** [health] requests answered — not counted in [requests],
          which covers admitted work only *)
  dropped : int;
      (** admitted requests or finished responses discarded because
          the peer vanished or the drain deadline passed — 0 in any
          clean run *)
  max_concurrent : int;  (** peak simultaneous connections *)
  inflight_final : int;  (** admission counter at exit — always 0 *)
  stopped_by : [ `Shutdown | `Signal ];
}

(** [serve ?cache ?native ?config ~socket ()] listens on a Unix domain
    socket at path [socket] (replacing a stale socket file) and
    multiplexes up to [config.max_clients] connections over one
    [Unix.select] event loop: nonblocking fds, per-connection
    incremental line framing ({!Framing} — partial reads and pipelined
    requests are first-class), bounded read/write buffers, and at most
    [config.service_quantum] requests served per connection per loop
    turn so a pipelining client cannot starve the rest. Requests execute inline in the loop's
    domain — their parallel regions ride the shared {!Ompsim.Pool} —
    so concurrency buys overlap of client round-trips, not parallel
    request execution.

    Returns after a client sends [shutdown], or on SIGINT/SIGTERM;
    both paths drain gracefully: stop accepting and reading, serve
    every admitted request, flush every response (bounded by
    [drain_timeout_ms]), then unlink the socket, restore the previous
    signal dispositions, and write the accounting summary to stderr.
    The returned {!serve_stats} reconciles against the obsv counters
    ([serve.accept], [serve.timeout], [serve.rejected],
    [service.inflight]) when observability is on. *)
val serve :
  ?cache:Cache.t ->
  ?native:Native.t ->
  ?config:serve_config ->
  socket:string ->
  unit ->
  (serve_stats, string) result
