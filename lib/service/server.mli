(** The compilation-service front end: a line-oriented request
    protocol served over batch files ([trahrhe batch]) or a Unix
    domain socket ([trahrhe serve]), with every plan lookup going
    through a shared {!Cache}.

    {2 Protocol}

    One request per line; blank lines and lines starting with [#] are
    ignored. A request is an operation followed by [key=value] fields
    (no spaces inside a field; the first [=] splits key from value):

    {v
    compile kernel=utma
    compile params=N levels=i=0..N,j=i..N label=tri
    exec kernel=correlation n=40 threads=4 schedule=dynamic:2
    exec params=N=25 levels=i=0..N,j=i..i+1 lanes=8 repeat=3
    shutdown
    v}

    - [kernel=NAME] names a built-in kernel; alternatively
      [params=...] + [levels=...] give an inline nest. [params] is a
      comma-separated list of [NAME] or [NAME=VALUE] (values are
      required for [exec]); [levels] is a comma-separated list of
      [VAR=LOWER..UPPER] with affine bounds over parameters and outer
      iterators — grammar [['-'] term (('+'|'-') term)*] where a term
      is [INT], [IDENT] or [INT*IDENT].
    - [exec] options: [n] (kernel headline size), [threads], [schedule]
      (as in [trahrhe exec -s]), [lanes], [repeat], [retries],
      [native] ([0/1] or [true/false]: route the walk through the
      JIT-specialized shared object, falling back to the interpreted
      walk when none can be attached), [label].
    - [shutdown] stops a server loop (and ends a batch early); its
      acknowledgement carries the cache's [hits]/[misses] totals.

    Every request yields exactly one JSON response line. Responses are
    deterministic — they carry no timings and no cache state, so two
    batch runs over the same input produce byte-identical output (the
    CI cache smoke depends on this); hit/miss accounting goes to the
    batch summary on stderr instead. The one exception is the
    [shutdown] acknowledgement, whose cache totals reflect the run
    (tooling that needs byte-stable output should diff response lines
    excluding it). An [exec] with [native=1] reports
    ["native":true|false] — whether the backend actually engaged. *)

type exec_opts = {
  threads : int;  (** domains for the parallel region (default 4) *)
  schedule : Ompsim.Schedule.t;  (** default [Static] *)
  lanes : int;  (** §VI-A lane width; 1 = per-iteration walk *)
  repeat : int;  (** executions of the region per request (default 1) *)
  retries : int;  (** > 0 routes through [Par.run_resilient] *)
  native : bool;  (** route walks through the native backend ({!Native}) *)
}

type request =
  | Compile of { label : string; nest : Trahrhe.Nest.t }
  | Exec of {
      label : string;
      nest : Trahrhe.Nest.t;
      param : string -> int;  (** valuation in the nest's own names *)
      opts : exec_opts;
    }
  | Shutdown

(** [parse_request line] is [Ok None] for a blank/comment line,
    [Ok (Some r)] for a well-formed request, [Error msg] otherwise. *)
val parse_request : string -> (request option, string) result

(** [handle cache r] serves one request and returns its JSON response
    line together with whether the request succeeded. [Exec] compiles
    (or fetches) the plan, runs the collapsed nest [repeat] times on
    OCaml domains reusing one recovery, and checks every run against a
    serial reference computed once. With [opts.native], the recovery
    comes from [native] (default: {!Native.default}) and each chunk's
    checksum is one [walk_hash] call — a single native invocation when
    the backend engaged, the equivalent interpreted fold otherwise. *)
val handle : ?native:Native.t -> Cache.t -> request -> string * bool

(** [run_batch ic oc] reads requests from [ic] (stopping early at
    [shutdown]), serves them on [workers] concurrent admission slots
    (default 4 — the in-flight bound; excess requests queue, which is
    the batch front end's backpressure), and writes all response lines
    to [oc] in input order. Admissions bump the [service.inflight]
    counter and, with tracing on, emit the instantaneous in-flight
    level as Chrome counter samples. A one-line cache/hit summary goes
    to stderr. Returns the exit code: 0 when every request succeeded,
    1 otherwise. *)
val run_batch :
  ?cache:Cache.t -> ?native:Native.t -> ?workers:int -> in_channel -> out_channel -> int

(** [serve_connection cache ic oc] serves one connection's requests
    sequentially until end-of-stream or a [shutdown] request,
    flushing each response line as it is written. *)
val serve_connection :
  ?native:Native.t -> Cache.t -> in_channel -> out_channel -> [ `Eof | `Shutdown ]

(** [serve ?cache ?native ~socket ()] listens on a Unix domain socket
    at path [socket] (replacing a stale socket file), serves
    connections one at a time, and returns after a client sends
    [shutdown]. SIGINT/SIGTERM also stop the loop gracefully — the
    handler is installed for the accept loop's lifetime and the
    previous dispositions are restored — so the accounting summary
    (connections served, plan-cache hits/misses, native
    served/fallback counts) reaches stderr on both exits. The socket
    file is unlinked on return. *)
val serve :
  ?cache:Cache.t -> ?native:Native.t -> socket:string -> unit -> (unit, string) result
