(* Keyed single-flight: the machinery Cache grew in PR 5, extracted so
   the native-handle cache can reuse it verbatim. The owner supplies
   the mutex; EVERY function here must be called with it held. *)

type 'a flight = { cond : Condition.t; mutable result : ('a, string) result option }
type 'a t = (string, 'a flight) Hashtbl.t

let create () : 'a t = Hashtbl.create 8

let join t key = Hashtbl.find_opt t key

let enter t key =
  let fl = { cond = Condition.create (); result = None } in
  Hashtbl.replace t key fl;
  fl

let await fl ~mutex =
  let rec go () =
    match fl.result with
    | Some r -> r
    | None ->
      Condition.wait fl.cond mutex;
      go ()
  in
  go ()

let publish t key fl result =
  fl.result <- Some result;
  Hashtbl.remove t key;
  Condition.broadcast fl.cond
