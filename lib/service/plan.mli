(** A compiled, serializable collapse plan.

    A plan is the full output of the symbolic pipeline for one
    {e canonical} nest (see {!Fingerprint.canonicalize}): ranking and
    trip-count polynomials, the substituted rankings, and the per-level
    recovery steps (closed-form roots + emission modes, exact innermost
    polynomial) — everything the runtime ({!Trahrhe.Recovery.make}) and
    the code generator need, so a cache hit skips the whole
    ranking/inversion pipeline. The codec round-trips exactly
    (bigint-backed rationals travel as decimal text). *)

type t = {
  fingerprint : string;  (** {!Fingerprint.hash} of the canonical nest *)
  inversion : Trahrhe.Inversion.t;  (** over the canonical nest *)
}

(** Wire format version, equal to {!Fingerprint.format_version}; a
    decoded plan with any other version is rejected. *)
val format_version : int

(** [compile canonical_nest] runs the symbolic pipeline (ranking,
    trip count, degree-<=4 inversion) under a [service.compile] span.
    The nest must already be canonical — {!Cache.find_or_compile}
    guarantees that; compiling a non-canonical nest yields a plan
    whose fingerprint no alpha-equivalent request would ever look up. *)
val compile : Trahrhe.Nest.t -> (t, string) result

(** [encode p] is the one-line wire form. *)
val encode : t -> string

(** [decode s] parses and validates: sexp shape, format version, and
    agreement between the stored fingerprint and the re-computed hash
    of the embedded nest (a renamed or bit-rotted cache file is a
    decode error, which the cache treats as a miss). *)
val decode : string -> (t, string) result

(** [recovery p ~param] specializes the plan to concrete parameter
    values. [param] is keyed by the {e canonical} parameter names —
    lift a caller-side valuation with {!Fingerprint.canonical_param}. *)
val recovery : t -> param:(string -> int) -> Trahrhe.Recovery.t

(** [equal a b] is structural equality over every field — the
    round-trip property the codec tests check. *)
val equal : t -> t -> bool
