(** Minimal s-expressions — the wire format of serialized plans.

    Atoms are bare tokens (no whitespace, no parentheses); everything
    the plan codec serializes — identifiers, decimal bigints,
    [num/den] rationals — satisfies that, so no quoting machinery is
    needed. The parser is total: any input, including truncated or
    corrupted cache files, yields [Error], never an exception. *)

type t = Atom of string | List of t list

(** [atom_ok s] is true when [s] can travel as a bare atom: nonempty,
    no whitespace, no parentheses. *)
val atom_ok : string -> bool

(** [to_string s] renders [s] on one line.
    @raise Invalid_argument if an atom is empty or contains
    whitespace/parentheses (a codec bug, not a data condition). *)
val to_string : t -> string

(** [of_string text] parses exactly one s-expression (surrounding
    whitespace allowed). *)
val of_string : string -> (t, string) result
