(** Canonicalization and content hashing of loop nests.

    Two nests that differ only in variable names (or in the textual
    order of their affine bound terms — {!Polymath.Affine} is already
    canonical about that) describe the same iteration space and must
    hit the same cached plan. {!canonicalize} alpha-renames a nest
    into a canonical form:

    - iterators become [x0, x1, ...] in nest order (their position is
      semantically significant, so position {e is} the canonical
      order);
    - parameters become [p0, p1, ...] ordered by their {e coefficient
      signature}: the vector of coefficients the parameter carries in
      every bound, read in nest order. The signature is independent of
      the original names, and two parameters with identical signatures
      are algebraically interchangeable (every bound treats them the
      same), so ties cannot change the canonical nest.

    {!hash} digests the canonical rendering, salted with the plan
    format version ({!Plan.format_version}) so any change to the plan
    wire format invalidates every existing cache entry cleanly. *)

(** Maps from original to canonical names, as produced by
    {!canonicalize} for one specific input nest. *)
type renaming = {
  iterators : (string * string) list;  (** original iterator -> [xK] *)
  params : (string * string) list;  (** original parameter -> [pK] *)
}

(** The version salt baked into every fingerprint and plan header.
    Bump it whenever the serialized plan format changes shape. *)
val format_version : int

(** [canonicalize nest] is the canonical alpha-renamed nest plus the
    renaming that produced it. Idempotent: canonicalizing a canonical
    nest is the identity (modulo the trivial renaming). *)
val canonicalize : Trahrhe.Nest.t -> Trahrhe.Nest.t * renaming

(** [digest canonical] is the hex content hash of an
    already-canonical nest (as returned by {!canonicalize}). *)
val digest : Trahrhe.Nest.t -> string

(** [hash nest] is [digest (fst (canonicalize nest))] — the stable
    fingerprint under which plans for [nest] are cached. *)
val hash : Trahrhe.Nest.t -> string

(** [canonicalize_cached nest] is
    [(canonical, renaming, digest canonical)], memoized by the
    {e physical} identity of [nest]. Requests that name a registered
    kernel all share the registry's one nest value, so a warm server
    serves them without re-canonicalizing — the dominant CPU cost of a
    cache hit. Structurally equal but physically distinct nests simply
    miss the memo and pay the normal recompute; results are identical
    either way. The memo is a small lock-free MRU (bounded memory,
    safe under concurrent lookups). *)
val canonicalize_cached : Trahrhe.Nest.t -> Trahrhe.Nest.t * renaming * string

(** [canonical_param r param] lifts a parameter valuation keyed by the
    {e original} names into one keyed by the canonical [pK] names —
    what {!Plan.recovery} needs, since cached plans are compiled from
    the canonical nest.
    @raise Invalid_argument on a name outside the renaming. *)
val canonical_param : renaming -> (string -> int) -> string -> int
