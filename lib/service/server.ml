module A = Polymath.Affine
module P = Polymath.Polynomial
module Q = Zmath.Rat
module N = Trahrhe.Nest
module R = Trahrhe.Recovery

type exec_opts = {
  threads : int;
  schedule : Ompsim.Schedule.t;
  lanes : int;
  repeat : int;
  retries : int;
  native : bool;
  reduce : N.red_op option;
}

type request =
  | Compile of { label : string; nest : N.t }
  | Exec of { label : string; nest : N.t; param : string -> int; opts : exec_opts }
  | Health
  | Shutdown

(* ---- request-line parsing ---- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_ident s =
  s <> ""
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all is_ident_char s

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let ( let* ) = Result.bind

(* bound grammar: ['-'] term (('+'|'-') term)*, term = INT['*'IDENT] | IDENT *)
let parse_affine s =
  let n = String.length s in
  if n = 0 then Error "empty affine bound"
  else begin
    (* split into (sign, atom) pieces at top-level +/- *)
    let i0, sign0 = if s.[0] = '-' then (1, -1) else (0, 1) in
    let atoms = ref [] in
    let bad = ref None in
    let start = ref i0 in
    let sign = ref sign0 in
    let flush upto =
      if upto = !start then bad := Some (Printf.sprintf "dangling sign in bound %S" s)
      else atoms := (!sign, String.sub s !start (upto - !start)) :: !atoms
    in
    for i = i0 to n - 1 do
      if !bad = None then
        match s.[i] with
        | '+' | '-' ->
          flush i;
          sign := (if s.[i] = '-' then -1 else 1);
          start := i + 1
        | _ -> ()
    done;
    if !bad = None then flush n;
    match !bad with
    | Some e -> Error e
    | None ->
      let coeffs = Hashtbl.create 8 in
      let const = ref Q.zero in
      let add_coeff v c =
        let prev = Option.value ~default:Q.zero (Hashtbl.find_opt coeffs v) in
        Hashtbl.replace coeffs v (Q.add prev c)
      in
      let atom_err = ref None in
      List.iter
        (fun (sg, a) ->
          if !atom_err = None then
            match String.index_opt a '*' with
            | Some k ->
              let c = String.sub a 0 k in
              let v = String.sub a (k + 1) (String.length a - k - 1) in
              if is_digits c && is_ident v then add_coeff v (Q.of_int (sg * int_of_string c))
              else atom_err := Some (Printf.sprintf "bad term %S in bound %S" a s)
            | None ->
              if is_digits a then const := Q.add !const (Q.of_int (sg * int_of_string a))
              else if is_ident a then add_coeff a (Q.of_int sg)
              else atom_err := Some (Printf.sprintf "bad term %S in bound %S" a s))
        (List.rev !atoms);
      match !atom_err with
      | Some e -> Error e
      | None ->
        let terms = Hashtbl.fold (fun v c acc -> (v, c) :: acc) coeffs [] in
        Ok (A.make (List.sort compare terms) !const)
  end

(* one entry of levels=: VAR=LOWER..UPPER *)
let parse_level entry =
  match String.index_opt entry '=' with
  | None -> Error (Printf.sprintf "level %S needs VAR=LOWER..UPPER" entry)
  | Some i ->
    let var = String.sub entry 0 i in
    let rest = String.sub entry (i + 1) (String.length entry - i - 1) in
    if not (is_ident var) then Error (Printf.sprintf "bad iterator name %S" var)
    else begin
      let dots = ref None in
      for j = 0 to String.length rest - 2 do
        if !dots = None && rest.[j] = '.' && rest.[j + 1] = '.' then dots := Some j
      done;
      match !dots with
      | None -> Error (Printf.sprintf "level %S needs LOWER..UPPER bounds" entry)
      | Some j ->
        let* lower = parse_affine (String.sub rest 0 j) in
        let* upper = parse_affine (String.sub rest (j + 2) (String.length rest - j - 2)) in
        Ok { N.var; lower; upper }
    end

(* one entry of params=: NAME or NAME=INT *)
let parse_param entry =
  match String.index_opt entry '=' with
  | None ->
    if is_ident entry then Ok (entry, None)
    else Error (Printf.sprintf "bad parameter name %S" entry)
  | Some i ->
    let name = String.sub entry 0 i in
    let v = String.sub entry (i + 1) (String.length entry - i - 1) in
    if not (is_ident name) then Error (Printf.sprintf "bad parameter name %S" name)
    else (
      match int_of_string_opt v with
      | Some value when is_digits v || (v.[0] = '-' && is_digits (String.sub v 1 (String.length v - 1)))
        -> Ok (name, Some value)
      | _ -> Error (Printf.sprintf "bad parameter value %S for %s" v name))

let split_commas s = if s = "" then [] else String.split_on_char ',' s

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let fields_of_tokens tokens =
  let* fields =
    map_result
      (fun tok ->
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "malformed field %S (expected key=value)" tok)
        | Some i -> Ok (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
      tokens
  in
  let rec dup = function
    | [] -> None
    | (k, _) :: rest -> if List.mem_assoc k rest then Some k else dup rest
  in
  match dup fields with
  | Some k -> Error (Printf.sprintf "duplicate field %s" k)
  | None -> Ok fields

let check_keys ~allowed fields =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields with
  | Some (k, _) -> Error (Printf.sprintf "unknown field %s" k)
  | None -> Ok ()

let int_field fields key ~default ~min_value =
  match List.assoc_opt key fields with
  | None -> Ok default
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n >= min_value -> Ok n
    | _ -> Error (Printf.sprintf "%s needs an integer >= %d, got %S" key min_value v))

let bool_field fields key ~default =
  match List.assoc_opt key fields with
  | None -> Ok default
  | Some ("1" | "true") -> Ok true
  | Some ("0" | "false") -> Ok false
  | Some v -> Error (Printf.sprintf "%s needs 0/1 or true/false, got %S" key v)

(* the nest named by the fields, plus the parameter valuation declared
   alongside it (for kernels: the registry's param_map at size [n]) *)
let nest_of_fields fields ~size =
  match
    (List.assoc_opt "kernel" fields, List.assoc_opt "params" fields, List.assoc_opt "levels" fields)
  with
  | Some name, None, None -> (
    match Kernels.Registry.find name with
    | None ->
      Error
        (Printf.sprintf "unknown kernel %S (try: %s)" name
           (String.concat ", " Kernels.Registry.names))
    | Some k ->
      let n = match size with Some n -> n | None -> k.Kernels.Kernel.default_n in
      Ok (name, k.Kernels.Kernel.nest, List.map (fun p -> (p, Some (Kernels.Kernel.param_of k ~n p))) k.Kernels.Kernel.nest.N.params))
  | None, params, Some levels_v -> (
    if size <> None then Error "n= is only valid with kernel="
    else
      let* bindings = map_result parse_param (split_commas (Option.value ~default:"" params)) in
      let* levels = map_result parse_level (split_commas levels_v) in
      if levels = [] then Error "levels= must declare at least one loop"
      else
        match N.make ~params:(List.map fst bindings) levels with
        | nest -> Ok ("nest", nest, bindings)
        | exception Invalid_argument e -> Error e)
  | Some _, _, _ -> Error "give kernel= or params=/levels=, not both"
  | None, _, None -> Error "a nest needs kernel= or levels="

let param_of_bindings bindings =
  let* () =
    match List.find_opt (fun (_, v) -> v = None) bindings with
    | Some (name, _) -> Error (Printf.sprintf "exec needs a value for parameter %s (params=%s=...)" name name)
    | None -> Ok ()
  in
  Ok (fun name ->
      match List.assoc_opt name bindings with
      | Some (Some v) -> v
      | _ -> invalid_arg ("unbound parameter " ^ name))

let parse_request_uncached line =
  let tokens = List.filter (fun s -> s <> "") (String.split_on_char ' ' line) in
  match tokens with
  | [] -> Ok None
  | op :: _ when op.[0] = '#' -> Ok None
  | "shutdown" :: rest -> if rest = [] then Ok (Some Shutdown) else Error "shutdown takes no fields"
  | "health" :: rest -> if rest = [] then Ok (Some Health) else Error "health takes no fields"
  | "compile" :: rest ->
    let* fields = fields_of_tokens rest in
    let* () = check_keys ~allowed:[ "kernel"; "params"; "levels"; "label" ] fields in
    let* name, nest, _ = nest_of_fields fields ~size:None in
    let label = Option.value ~default:name (List.assoc_opt "label" fields) in
    Ok (Some (Compile { label; nest }))
  | "exec" :: rest ->
    let* fields = fields_of_tokens rest in
    let* () =
      check_keys
        ~allowed:
          [ "kernel"; "params"; "levels"; "label"; "n"; "threads"; "schedule"; "lanes"; "repeat"; "retries"; "native"; "reduce" ]
        fields
    in
    let* size =
      match List.assoc_opt "n" fields with
      | None -> Ok None
      | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> Ok (Some n)
        | _ -> Error (Printf.sprintf "n needs a positive integer, got %S" v))
    in
    let* name, nest, bindings = nest_of_fields fields ~size in
    let* param = param_of_bindings bindings in
    let* threads = int_field fields "threads" ~default:4 ~min_value:1 in
    let* lanes = int_field fields "lanes" ~default:1 ~min_value:1 in
    let* repeat = int_field fields "repeat" ~default:1 ~min_value:1 in
    let* retries = int_field fields "retries" ~default:0 ~min_value:0 in
    let* native = bool_field fields "native" ~default:false in
    let* schedule =
      match List.assoc_opt "schedule" fields with
      | None -> Ok Ompsim.Schedule.Static
      | Some s -> Ompsim.Schedule.of_string s
    in
    let* reduce =
      match List.assoc_opt "reduce" fields with
      | None -> Ok None
      | Some s -> (
        match N.op_of_string s with
        | Some op -> Ok (Some op)
        | None -> Error (Printf.sprintf "reduce needs sum|prod|min|max, got %S" s))
    in
    (* a reduce request rewrites the nest's clause BEFORE the cache
       lookup, so the clause participates in content addressing: the
       value polynomial is the nest's declared clause when it has one,
       the canonical default otherwise *)
    let nest =
      match reduce with
      | None -> nest
      | Some op ->
        let value =
          match nest.N.reduce with
          | Some r -> r.N.value
          | None -> N.default_reduce_value nest
        in
        N.with_reduce nest (Some { N.op; value })
    in
    let label = Option.value ~default:name (List.assoc_opt "label" fields) in
    Ok
      (Some
         (Exec { label; nest; param; opts = { threads; schedule; lanes; repeat; retries; native; reduce } }))
  | op :: _ -> Error (Printf.sprintf "unknown operation %S (compile | exec | health | shutdown)" op)

(* Parsed request lines, memoized by the line itself. Clients of a
   line protocol repeat identical lines constantly (every [kernel=]
   request for the same kernel is the same bytes), and tokenizing plus
   field validation costs several times a warm cache lookup. Parsing
   is pure — a [request] is an immutable value (the [param] closure
   reads only its captured bindings) — so replaying the parsed result
   for the same bytes is indistinguishable from reparsing. Long lines
   are not memoized: they are rare one-offs and would bloat the scan.
   Same atomic-MRU discipline as the fingerprint memo. *)
let parse_memo_cap = 16
let parse_memo_max_len = 256
let parse_memo : (string * (request option, string) result) array Atomic.t = Atomic.make [||]

let parse_request line =
  if String.length line > parse_memo_max_len then parse_request_uncached line
  else begin
    let arr = Atomic.get parse_memo in
    let n = Array.length arr in
    let rec find i =
      if i >= n then None
      else
        let k, v = Array.unsafe_get arr i in
        if String.equal k line then Some v else find (i + 1)
    in
    match find 0 with
    | Some v -> v
    | None ->
      let v = parse_request_uncached line in
      let keep = min n (parse_memo_cap - 1) in
      Atomic.set parse_memo (Array.append [| (line, v) |] (Array.sub arr 0 keep));
      v
  end

(* ---- responses ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let error_json ~op ~label e =
  Printf.sprintf {|{"op":"%s","label":"%s","status":"error","error":"%s"}|} op (json_escape label)
    (json_escape e)

(* order-independent checksum of one iteration tuple (same hash as
   [trahrhe exec], so responses are comparable across front ends) *)
let iter_hash idx =
  let h = ref 0 in
  Array.iter (fun v -> h := (!h * 1000003) + v) idx;
  !h

(* how one parallel execution failed: the deadline is distinguished so
   the serve loop can count [serve.timeout] without string matching *)
type run_failure = Run_timeout | Run_error of string

(* one parallel execution of the collapsed nest; returns the checksum.
   A deadline (the per-request timeout) routes through the PR-4
   supervised region, whose cooperative cancellation token every
   schedule polls at chunk granularity. *)
let run_once ?deadline_ms rc opts =
  let trip = R.trip_count rc in
  let stride = 16 in
  let partial = Array.make (opts.threads * stride) 0 in
  let body ~thread ~start ~len =
    let cell = thread * stride in
    if opts.native then
      (* the whole chunk reduction in one call: native when a backend
         is attached, the equivalent interpreted fold otherwise *)
      partial.(cell) <- partial.(cell) + R.walk_hash rc ~pc:(start + 1) ~len
    else if opts.lanes > 1 then
      R.walk_lanes rc ~pc:(start + 1) ~len ~vlength:opts.lanes (fun ~base:_ ~count buf ->
          let d = Array.length buf in
          for l = 0 to count - 1 do
            let h = ref 0 in
            for k = 0 to d - 1 do
              h := (!h * 1000003) + buf.(k).(l)
            done;
            partial.(cell) <- partial.(cell) + !h
          done)
    else R.walk rc ~pc:(start + 1) ~len (fun idx -> partial.(cell) <- partial.(cell) + iter_hash idx)
  in
  let outcome =
    try
      if opts.retries > 0 || deadline_ms <> None then
        Ompsim.Par.run_resilient ~retries:opts.retries ?deadline_ms ~nthreads:opts.threads
          ~schedule:opts.schedule ~n:trip body
        |> Result.map_error (fun (e : Ompsim.Par.region_error) ->
               match e.Ompsim.Par.reason with
               | Ompsim.Par.Deadline_expired -> Run_timeout
               | Ompsim.Par.Chunk_failed -> Run_error (Ompsim.Par.describe_error e))
      else begin
        Ompsim.Par.parallel_for_chunks ~nthreads:opts.threads ~schedule:opts.schedule ~n:trip body;
        Ok ()
      end
    with e -> Error (Run_error (Printexc.to_string e))
  in
  Result.map
    (fun () ->
      let sum = ref 0 in
      for t = 0 to opts.threads - 1 do
        sum := !sum + partial.(t * stride)
      done;
      !sum)
    outcome

(* ---- parallel reductions over the collapsed range ---- *)

(* a reduction result: int64 path for sum (native-able), exact
   rationals for prod/min/max *)
type reduce_value = Rint of int | Rrat of Q.t

let reduce_value_json = function
  | Rint n -> string_of_int n
  | Rrat q -> Printf.sprintf {|"%s"|} (json_escape (Q.to_string q))

let reduce_value_equal a b =
  match (a, b) with
  | Rint x, Rint y -> x = y
  | Rrat x, Rrat y -> Q.compare x y = 0
  | _ -> false

(* serial reference: the plain left fold over the canonical nest in
   iteration order — the value every parallel combine tree must equal
   bit for bit. [None] only for min/max over an empty space. *)
let serial_reduce rc nest ~cparam ~op =
  match op with
  | N.Sum ->
    let acc = ref 0 in
    N.iterate nest ~param:cparam (fun idx -> acc := !acc + R.reduce_value_int rc idx);
    Some (Rint !acc)
  | _ ->
    let acc = ref None in
    N.iterate nest ~param:cparam (fun idx ->
        let v = R.reduce_value_rat rc idx in
        acc := Some (match !acc with None -> v | Some a -> N.op_apply op a v));
    (match (!acc, N.op_neutral op) with
    | Some q, _ -> Some (Rrat q)
    | None, Some q -> Some (Rrat q)
    | None, None -> None)

(* one parallel reduction over the collapsed range: per-worker
   partials, deterministic combine tree (Par.reduce_chunks), with the
   same resilient/deadline routing as the checksum path *)
let run_reduce ?deadline_ms rc ~op opts =
  let trip = R.trip_count rc in
  let region combine body =
    try
      if opts.retries > 0 || deadline_ms <> None then
        Ompsim.Par.reduce_resilient ~retries:opts.retries ?deadline_ms ~nthreads:opts.threads
          ~schedule:opts.schedule ~n:trip ~combine body
        |> Result.map_error (fun (e : Ompsim.Par.region_error) ->
               match e.Ompsim.Par.reason with
               | Ompsim.Par.Deadline_expired -> Run_timeout
               | Ompsim.Par.Chunk_failed -> Run_error (Ompsim.Par.describe_error e))
      else
        Ok
          (Ompsim.Par.reduce_chunks ~nthreads:opts.threads ~schedule:opts.schedule ~n:trip
             ~combine body)
    with e -> Error (Run_error (Printexc.to_string e))
  in
  match op with
  | N.Sum ->
    region ( + ) (fun ~thread:_ ~start ~len -> R.walk_reduce_sum rc ~pc:(start + 1) ~len)
    |> Result.map (fun o -> Rint (Option.value ~default:0 o))
  | _ ->
    region (N.op_apply op) (fun ~thread:_ ~start ~len -> R.walk_reduce_rat rc ~pc:(start + 1) ~len)
    |> Result.map (fun o ->
           match (o, N.op_neutral op) with
           | Some q, _ -> Rrat q
           | None, Some q -> Rrat q
           | None, None -> Rrat Q.zero (* unreachable: callers reject empty min/max upfront *))

(* the shutdown acknowledgement carries the cache totals so clients
   (and the accounting block) see hit rates without a separate op *)
let shutdown_json cache =
  let s = Cache.stats cache in
  Printf.sprintf {|{"op":"shutdown","status":"ok","cache":{"hits":%d,"misses":%d}}|}
    s.Cache.hits s.Cache.misses

(* the liveness probe: breaker state, cache health, inflight depth.
   Deliberately NOT byte-stable across runs — it reports live state,
   which is its whole job; tooling that diffs responses must exclude
   it like the shutdown acknowledgement *)
let health_json ?native ?(inflight = 0) cache =
  let nt = match native with Some nt -> nt | None -> Native.default () in
  let b = Native.breaker nt in
  let s = Cache.stats cache in
  let ns = Native.stats nt in
  Printf.sprintf
    {|{"op":"health","status":"ok","breaker":{"state":"%s","consecutive_failures":%d,"opens":%d,"rejections":%d,"probes":%d},"cache":{"hits":%d,"disk_hits":%d,"misses":%d,"evictions":%d,"singleflight_waits":%d,"quarantined":%d,"lock_waits":%d,"lock_steals":%d,"janitor_removed":%d},"native":{"served":%d,"fallbacks":%d%s},"inversion":{"numeric":%d,"closed_form":%d},"inflight":%d}|}
    (Jit.Breaker.state_name (Jit.Breaker.state b))
    (Jit.Breaker.failures b) (Jit.Breaker.opens b) (Jit.Breaker.rejections b)
    (Jit.Breaker.probes b) s.Cache.hits s.Cache.disk_hits s.Cache.misses s.Cache.evictions
    s.Cache.singleflight_waits s.Cache.quarantined s.Cache.lock_waits s.Cache.lock_steals
    s.Cache.janitor_removed ns.Native.served ns.Native.fallbacks
    (match Native.last_error nt with
    | None -> ""
    | Some e -> Printf.sprintf {|,"last_error":"%s"|} (json_escape e))
    (R.numeric_recoveries ()) (R.closed_form_recoveries ()) inflight

(* overload rejections answer with the request's own op/label so a
   pipelining client can still correlate responses to requests *)
let op_label = function
  | Compile { label; _ } -> ("compile", label)
  | Exec { label; _ } -> ("exec", label)
  | Health -> ("health", "-")
  | Shutdown -> ("shutdown", "-")

let overload_json req =
  let op, label = op_label req in
  error_json ~op ~label "rejected:overload"

(* Rendered [compile] responses, memoized by the plan's PHYSICAL
   identity plus the request label. The response is a pure function of
   the two (fingerprint, depth, symbolic trip count — all read off the
   immutable plan), and rendering it — polynomial pretty-printing,
   escaping, formatting — dwarfs the warm cache lookup itself. The
   cache path still runs on every request (it owns the LRU order and
   the hit/miss ledger); only the final string is reused. Same MRU
   discipline as {!Fingerprint.canonicalize_cached}: tiny atomic
   array, a lost update costs a recompute, never correctness. *)
let compile_memo_cap = 16
let compile_memo : ((Plan.t * string) * string) array Atomic.t = Atomic.make [||]

let compile_json ~label plan =
  let arr = Atomic.get compile_memo in
  let n = Array.length arr in
  let rec find i =
    if i >= n then None
    else
      let (p, l), resp = Array.unsafe_get arr i in
      if p == plan && String.equal l label then Some resp else find (i + 1)
  in
  match find 0 with
  | Some resp -> resp
  | None ->
    let inv = plan.Plan.inversion in
    let resp =
      Printf.sprintf
        {|{"op":"compile","label":"%s","status":"ok","fingerprint":"%s","depth":%d,"trip_count":"%s"}|}
        (json_escape label) plan.Plan.fingerprint
        (N.depth inv.Trahrhe.Inversion.nest)
        (json_escape (P.to_string inv.Trahrhe.Inversion.trip_count))
    in
    let keep = min n (compile_memo_cap - 1) in
    Atomic.set compile_memo (Array.append [| ((plan, label), resp) |] (Array.sub arr 0 keep));
    resp

(* [handle_full] additionally reports whether the request died on its
   deadline, so the serve loop can count [serve.timeout] exactly *)
let handle_full ?native ?deadline_ms cache req =
  match req with
  | Shutdown -> (shutdown_json cache, true, false)
  | Health -> (health_json ?native cache, true, false)
  | Compile { label; nest } -> (
    match Cache.find_or_compile cache nest with
    | Error e -> (error_json ~op:"compile" ~label e, false, false)
    | Ok (plan, _) -> (compile_json ~label plan, true, false))
  | Exec { label; nest; param; opts } -> (
    let err e = (error_json ~op:"exec" ~label e, false, false) in
    (* the deadline budget covers all [repeat] parallel executions of
       this request: each run gets whatever of it remains. The message
       is deterministic (no elapsed time), keeping responses
       byte-stable across runs that time out. *)
    let t_start = Unix.gettimeofday () in
    let remaining () =
      Option.map
        (fun ms -> max 0 (ms - int_of_float ((Unix.gettimeofday () -. t_start) *. 1e3)))
        deadline_ms
    in
    let timeout () =
      ( error_json ~op:"exec" ~label
          (Printf.sprintf "request deadline expired (timeout %dms)" (Option.get deadline_ms)),
        false,
        true )
    in
    match Cache.find_or_compile cache nest with
    | Error e -> err e
    | Ok (plan, renaming) -> (
      (* the plan was compiled from the canonical nest, so both the
         recovery and the serial reference run under canonical names *)
      match
        let cparam = Fingerprint.canonical_param renaming param in
        let rc, native_why =
          if opts.native then
            let nt = match native with Some nt -> nt | None -> Native.default () in
            Native.recovery_explain nt plan ~param:cparam
          else (Plan.recovery plan ~param:cparam, None)
        in
        (rc, native_why, cparam)
      with
      | exception Invalid_argument e -> err e
      | rc, native_why, cparam -> (
        let trip = R.trip_count rc in
        (* "native" reports whether the backend actually engaged —
           false under fallback, which CI's no-gcc job asserts on —
           and on fallback "native_error" carries the reason,
           including the compiler's stderr excerpt *)
        let native_field =
          if opts.native then
            match native_why with
            | Some reason when not (R.native_enabled rc) ->
              Printf.sprintf {|,"native":false,"native_error":"%s"|} (json_escape reason)
            | _ -> Printf.sprintf {|,"native":%b|} (R.native_enabled rc)
          else ""
        in
        match opts.reduce with
        | Some op -> (
          let cnest = plan.Plan.inversion.Trahrhe.Inversion.nest in
          match serial_reduce rc cnest ~cparam ~op with
          | None -> err "min/max reduction over an empty iteration space"
          | Some reference ->
            let rec runs r =
              if r > opts.repeat then Ok ()
              else
                match remaining () with
                | Some 0 -> Error Run_timeout
                | budget -> (
                  match run_reduce ?deadline_ms:budget rc ~op opts with
                  | Error Run_timeout -> Error Run_timeout
                  | Error (Run_error e) ->
                    Error (Run_error (Printf.sprintf "run %d/%d: %s" r opts.repeat e))
                  | Ok v when not (reduce_value_equal v reference) ->
                    Error
                      (Run_error
                         (Printf.sprintf "reduction mismatch on run %d/%d: parallel %s vs serial %s"
                            r opts.repeat (reduce_value_json v) (reduce_value_json reference)))
                  | Ok _ -> runs (r + 1))
            in
            (match runs 1 with
            | Error Run_timeout -> timeout ()
            | Error (Run_error e) -> err e
            | Ok () ->
              ( Printf.sprintf
                  {|{"op":"exec","label":"%s","status":"ok","fingerprint":"%s","trip":%d,"reduce":"%s","result":%s,"repeat":%d%s}|}
                  (json_escape label) plan.Plan.fingerprint trip (N.op_to_string op)
                  (reduce_value_json reference) opts.repeat native_field,
                true,
                false )))
        | None ->
          let serial = ref 0 in
          N.iterate plan.Plan.inversion.Trahrhe.Inversion.nest ~param:cparam (fun idx ->
              serial := !serial + iter_hash idx);
          let rec runs r =
            if r > opts.repeat then Ok ()
            else
              match remaining () with
              | Some 0 -> Error Run_timeout
              | budget -> (
                match run_once ?deadline_ms:budget rc opts with
                | Error Run_timeout -> Error Run_timeout
                | Error (Run_error e) ->
                  Error (Run_error (Printf.sprintf "run %d/%d: %s" r opts.repeat e))
                | Ok sum when sum <> !serial ->
                  Error
                    (Run_error
                       (Printf.sprintf "checksum mismatch on run %d/%d: parallel %d vs serial %d" r
                          opts.repeat sum !serial))
                | Ok _ -> runs (r + 1))
          in
          (match runs 1 with
          | Error Run_timeout -> timeout ()
          | Error (Run_error e) -> err e
          | Ok () ->
            ( Printf.sprintf
                {|{"op":"exec","label":"%s","status":"ok","fingerprint":"%s","trip":%d,"checksum":%d,"repeat":%d%s}|}
                (json_escape label) plan.Plan.fingerprint trip !serial opts.repeat native_field,
              true,
              false )))))

let handle ?native ?deadline_ms cache req =
  let line, ok, _ = handle_full ?native ?deadline_ms cache req in
  (line, ok)

(* ---- batch front end ---- *)

type item = Blank | Ready of string * bool | Todo of request | Stop

let run_batch ?cache ?native ?(workers = 4) ic oc =
  let cache = match cache with Some c -> c | None -> Cache.default () in
  let native = match native with Some nt -> nt | None -> Native.default () in
  let before = Cache.stats cache in
  let before_native = Native.stats native in
  let lines =
    let rec read acc = match input_line ic with
      | line -> read (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    read []
  in
  (* parse everything up front; input after a shutdown line is dropped *)
  let items =
    let stopped = ref false in
    List.mapi
      (fun i line ->
        if !stopped then Blank
        else
          match parse_request line with
          | Ok None -> Blank
          | Error e -> Ready (error_json ~op:"parse" ~label:(Printf.sprintf "line:%d" (i + 1)) e, false)
          | Ok (Some Shutdown) ->
            stopped := true;
            (* deferred: the totals in the acknowledgement must cover
               the batch's own requests, so format at emission time *)
            Stop
          | Ok (Some req) -> Todo req)
      lines
    |> Array.of_list
  in
  let jobs =
    Array.of_list
      (List.filteri (fun i _ -> match items.(i) with Todo _ -> true | Blank | Ready _ | Stop -> false)
         (List.init (Array.length items) Fun.id))
  in
  let results = Array.make (Array.length items) None in
  let njobs = Array.length jobs in
  if njobs > 0 then begin
    (* [workers] admission slots over the domain pool: the in-flight
       bound; requests beyond it queue on the shared index *)
    let next = Atomic.make 0 in
    let level = Atomic.make 0 in
    Ompsim.Pool.run ~nthreads:(max 1 (min workers njobs)) (fun _slot ->
        let rec pull () =
          let j = Atomic.fetch_and_add next 1 in
          if j < njobs then begin
            let i = jobs.(j) in
            let lvl = 1 + Atomic.fetch_and_add level 1 in
            if Obsv.Control.enabled () then begin
              Obsv.Metrics.incr_here Stats.inflight_admissions;
              Obsv.Trace.counter "service.inflight" lvl
            end;
            (match items.(i) with
            | Todo req -> results.(i) <- Some (handle ~native cache req)
            | Blank | Ready _ | Stop -> ());
            let after = Atomic.fetch_and_add level (-1) - 1 in
            if Obsv.Control.enabled () then Obsv.Trace.counter "service.inflight" after;
            pull ()
          end
        in
        pull ())
  end;
  let ok_count = ref 0 and err_count = ref 0 in
  Array.iteri
    (fun i item ->
      let emit (line, ok) =
        output_string oc line;
        output_char oc '\n';
        if ok then incr ok_count else incr err_count
      in
      match item with
      | Blank -> ()
      | Ready (line, ok) -> emit (line, ok)
      | Stop -> emit (shutdown_json cache, true)
      | Todo _ -> (
        match results.(i) with
        | Some r -> emit r
        | None -> emit (error_json ~op:"batch" ~label:(Printf.sprintf "line:%d" (i + 1)) "request was not served", false)))
    items;
  flush oc;
  let s = Cache.stats cache in
  Printf.eprintf
    "batch: %d requests, %d ok, %d errors; plan cache: %d hits (%d disk), %d misses, %d single-flight waits\n%!"
    (!ok_count + !err_count) !ok_count !err_count
    (s.Cache.hits - before.Cache.hits)
    (s.Cache.disk_hits - before.Cache.disk_hits)
    (s.Cache.misses - before.Cache.misses)
    (s.Cache.singleflight_waits - before.Cache.singleflight_waits);
  let ns = Native.stats native in
  let served = ns.Native.served - before_native.Native.served in
  let fallbacks = ns.Native.fallbacks - before_native.Native.fallbacks in
  if served + fallbacks > 0 then
    Printf.eprintf "batch: native: %d served, %d interpreted fallbacks\n%!" served fallbacks;
  if !err_count = 0 then 0 else 1

(* ---- socket front end ---- *)

let serve_connection ?native cache ic oc =
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line -> (
      match parse_request line with
      | Ok None -> loop ()
      | Error e ->
        respond (error_json ~op:"parse" ~label:"-" e);
        loop ()
      | Ok (Some Shutdown) ->
        respond (shutdown_json cache);
        `Shutdown
      | Ok (Some req) ->
        respond (fst (handle ?native cache req));
        loop ())
  in
  loop ()

(* ---- non-blocking multi-client event loop ---- *)

type serve_config = {
  max_clients : int;
  max_inflight : int;
  max_inflight_per_client : int;
  rate_limit : float option;
  rate_burst : int;
  request_timeout_ms : int option;
  max_line : int;
  max_write_buffer : int;
  drain_timeout_ms : int;
  service_quantum : int;
}

let default_serve_config =
  { max_clients = 64;
    max_inflight = 16;
    max_inflight_per_client = 8;
    rate_limit = None;
    rate_burst = 8;
    request_timeout_ms = None;
    max_line = Framing.default_max_line;
    max_write_buffer = 256 * 1024;
    drain_timeout_ms = 5_000;
    service_quantum = 4 }

type serve_stats = {
  connections : int;
  requests : int;
  responses : int;
  ok_responses : int;
  error_responses : int;
  timeouts : int;
  rejected : int;
  throttled : int;
  health_probes : int;
  dropped : int;
  max_concurrent : int;
  inflight_final : int;
  stopped_by : [ `Shutdown | `Signal ];
}

(* a connection's ordered work: responses that are already decided
   (parse errors, oversized-line rejections) interleave with requests
   awaiting service, so the one-response-per-line order is preserved
   under pipelining *)
type queued = Queued_response of string * bool | Queued_request of request

type conn = {
  fd : Unix.file_descr;
  framer : Framing.t;
  work : queued Queue.t;
  out : Buffer.t;  (* bytes not yet accepted by the peer's socket *)
  mutable sent : int;  (* prefix of [out] already written *)
  mutable closing : bool;  (* read side done; flush work + out, then close *)
  mutable reject_sent : bool;  (* the framer-overflow error was queued *)
  mutable inflight : int;  (* this connection's admitted, unserved requests *)
  mutable rl_tokens : float;  (* token bucket for --rate-limit *)
  mutable rl_last : float;  (* last refill instant *)
}

let serve ?cache ?native ?(config = default_serve_config) ~socket () =
  let cache = match cache with Some c -> c | None -> Cache.default () in
  let nt = match native with Some nt -> nt | None -> Native.default () in
  if config.max_clients < 1 then invalid_arg "Server.serve: max_clients must be positive";
  if config.max_inflight < 1 then invalid_arg "Server.serve: max_inflight must be positive";
  if config.max_inflight_per_client < 1 then
    invalid_arg "Server.serve: max_inflight_per_client must be positive";
  if config.rate_burst < 1 then invalid_arg "Server.serve: rate_burst must be positive";
  (match config.rate_limit with
  | Some r when r <= 0. -> invalid_arg "Server.serve: rate_limit must be positive"
  | _ -> ());
  if config.service_quantum < 1 then invalid_arg "Server.serve: service_quantum must be positive";
  let before = Cache.stats cache in
  let before_native = Native.stats nt in
  (* run accounting *)
  let accepted = ref 0 in
  let requests = ref 0 in
  let ok_responses = ref 0 in
  let error_responses = ref 0 in
  let timeouts = ref 0 in
  let rejected = ref 0 in
  let throttled = ref 0 in
  let health_served = ref 0 in
  let dropped = ref 0 in
  let max_concurrent = ref 0 in
  let inflight = ref 0 in
  let obsv () = Obsv.Control.enabled () in
  let summary how =
    let s = Cache.stats cache in
    Printf.eprintf
      "serve (%s): %d connection(s), %d request(s), %d ok, %d errors (%d timeouts, %d rejected, \
       %d throttled); plan cache: %d hits (%d disk), %d misses, %d single-flight waits\n\
       %!"
      how !accepted !requests !ok_responses !error_responses !timeouts !rejected !throttled
      (s.Cache.hits - before.Cache.hits)
      (s.Cache.disk_hits - before.Cache.disk_hits)
      (s.Cache.misses - before.Cache.misses)
      (s.Cache.singleflight_waits - before.Cache.singleflight_waits);
    let ns = Native.stats nt in
    let served = ns.Native.served - before_native.Native.served in
    let fallbacks = ns.Native.fallbacks - before_native.Native.fallbacks in
    if served + fallbacks > 0 then
      Printf.eprintf "serve (%s): native: %d served, %d interpreted fallbacks\n%!" how served
        fallbacks
  in
  match
    (match Unix.lstat socket with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Ok (Unix.unlink socket)
    | _ -> Error (Printf.sprintf "%s exists and is not a socket" socket)
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ())
  with
  | Error e -> Error e
  | Ok () -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let conns : conn list ref = ref [] in
    let cleanup () =
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
      conns := [];
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ -> ()
    in
    (* SIGINT/SIGTERM turn into a graceful drain: the handler flips
       [stop], select returns (EINTR or timeout), and the loop stops
       accepting/reading, serves every admitted request, flushes every
       response, then exits normally — so the accounting below (and
       any --trace/--stats teardown in the caller) still runs.
       Previous dispositions are restored before returning. *)
    let stop = ref false in
    let install sg =
      match Sys.signal sg (Sys.Signal_handle (fun _ -> stop := true)) with
      | prev -> Some prev
      | exception (Invalid_argument _ | Sys_error _) -> None
    in
    let restore sg = function
      | Some prev -> ( try Sys.set_signal sg prev with Invalid_argument _ | Sys_error _ -> ())
      | None -> ()
    in
    let prev_int = install Sys.sigint in
    let prev_term = install Sys.sigterm in
    (* a peer that resets mid-write must surface as EPIPE on the write,
       not as a process-killing SIGPIPE *)
    let prev_pipe =
      match Sys.signal Sys.sigpipe Sys.Signal_ignore with
      | prev -> Some prev
      | exception (Invalid_argument _ | Sys_error _) -> None
    in
    let finish how =
      cleanup ();
      restore Sys.sigint prev_int;
      restore Sys.sigterm prev_term;
      restore Sys.sigpipe prev_pipe;
      summary how
    in
    try
      Unix.bind fd (Unix.ADDR_UNIX socket);
      (* backlog derived from the admission cap, not a magic constant:
         a connect burst up to the cap must queue while the loop is
         busy in a handler, instead of bouncing with ECONNREFUSED *)
      Unix.listen fd (max 16 (2 * config.max_clients));
      Unix.set_nonblock fd;
      let scratch = Bytes.create 4096 in
      let draining = ref false in
      let drain_deadline = ref infinity in
      let stopped_by = ref `Signal in
      let begin_drain how =
        if not !draining then begin
          draining := true;
          stopped_by := how;
          drain_deadline := Unix.gettimeofday () +. (float_of_int config.drain_timeout_ms /. 1e3)
        end
      in
      let out_pending c = Buffer.length c.out - c.sent in
      let emit c line ok =
        Buffer.add_string c.out line;
        Buffer.add_char c.out '\n';
        if ok then incr ok_responses else incr error_responses
      in
      let note_admitted c =
        incr requests;
        incr inflight;
        c.inflight <- c.inflight + 1;
        if obsv () then Obsv.Metrics.incr_here Stats.inflight_admissions
      in
      let note_settled c =
        decr inflight;
        c.inflight <- c.inflight - 1
      in
      (* the per-connection token bucket: refilled on demand, capped
         at the burst. Control verbs (health, shutdown) are exempt —
         throttling the liveness probe or the stop switch would defeat
         both. *)
      let rate_admit c =
        match config.rate_limit with
        | None -> true
        | Some rps ->
          let now = Unix.gettimeofday () in
          c.rl_tokens <-
            Float.min
              (float_of_int config.rate_burst)
              (c.rl_tokens +. ((now -. c.rl_last) *. rps));
          c.rl_last <- now;
          if c.rl_tokens >= 1. then begin
            c.rl_tokens <- c.rl_tokens -. 1.;
            true
          end
          else false
      in
      (* the trace stream samples the admission level once per batch of
         transitions (post-admit peak, post-service residual), not per
         transition: the [service.inflight] metric above stays exact
         per request, and at hundreds of thousands of requests per
         second a trace record per transition would cost more than the
         work it annotates *)
      let last_traced = ref 0 in
      let trace_inflight () =
        if obsv () && !inflight <> !last_traced then begin
          last_traced := !inflight;
          Obsv.Trace.counter "service.inflight" !inflight
        end
      in
      (* forget a connection's unserved requests (its own pipeline
         after [shutdown], or a force-close at the drain deadline) *)
      let clear_work c =
        Queue.iter
          (function
            | Queued_request _ ->
              note_settled c;
              incr dropped
            | Queued_response _ -> incr dropped)
          c.work;
        Queue.clear c.work
      in
      (* admit framed lines into the work queue. Control lines —
         health, shutdown, and anything unparseable, all answered
         without occupying an execution slot — are consumed
         regardless of the admission caps: the liveness probe must
         work exactly when the server is saturated, so the caps may
         gate only real work. Real requests are peeked first and only
         consumed while the admission counter is under the caps — a
         parked request line is what stops this loop (and, since
         responses are answered in input order, legitimately parks
         everything framed behind it on the same connection), while
         the unread socket (plus at most one framer line burst) is
         the backpressure buffer. *)
      let admit c =
        let under_caps () =
          !inflight < config.max_inflight && c.inflight < config.max_inflight_per_client
        in
        let continue = ref true in
        while !continue do
          match Framing.peek c.framer with
          | `Pending -> continue := false
          | `Overflow ->
            if not c.reject_sent then begin
              c.reject_sent <- true;
              c.closing <- true;
              incr rejected;
              if obsv () then Obsv.Metrics.incr_here Stats.serve_rejected;
              Queue.push
                (Queued_response
                   ( error_json ~op:"parse" ~label:"-"
                       (Printf.sprintf "request line exceeds %d bytes" config.max_line),
                     false ))
                c.work
            end;
            continue := false
          | `Line line -> (
            match parse_request line with
            | Ok None -> Framing.drop c.framer
            | Error e ->
              Framing.drop c.framer;
              Queue.push (Queued_response (error_json ~op:"parse" ~label:"-" e, false)) c.work
            | Ok (Some Health) ->
              (* liveness probe: answered at admit time with the live
                 inflight depth, never admitted, exempt from the
                 admission caps and the rate limiter (it must work
                 exactly when the server is saturated), and not
                 counted in [requests] — the cache-counter
                 reconciliation invariant covers admitted work only *)
              Framing.drop c.framer;
              incr health_served;
              Queue.push
                (Queued_response (health_json ~native:nt ~inflight:!inflight cache, true))
                c.work
            | Ok (Some Shutdown) ->
              (* the stop switch is exempt from rate limiting and the
                 admission caps alike: a saturated server must still
                 be stoppable *)
              Framing.drop c.framer;
              note_admitted c;
              Queue.push (Queued_request Shutdown) c.work
            | Ok (Some req) ->
              if not (under_caps ()) then continue := false
              else begin
                Framing.drop c.framer;
                if rate_admit c then begin
                  note_admitted c;
                  Queue.push (Queued_request req) c.work
                end
                else begin
                  incr throttled;
                  if obsv () then Obsv.Metrics.incr_here Stats.serve_throttled;
                  Queue.push (Queued_response (overload_json req, false)) c.work
                end
              end)
        done
      in
      let read_conn c =
        match Unix.read c.fd scratch 0 (Bytes.length scratch) with
        | 0 -> c.closing <- true (* half-close: serve what was framed, then close *)
        | n -> Framing.feed c.framer scratch 0 n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
        | exception Unix.Unix_error _ ->
          c.closing <- true;
          Buffer.clear c.out;
          c.sent <- 0;
          clear_work c
      in
      let flush_conn c =
        let continue = ref true in
        while !continue && out_pending c > 0 do
          let len = out_pending c in
          match Unix.write_substring c.fd (Buffer.contents c.out) c.sent len with
          | written ->
            c.sent <- c.sent + written;
            if c.sent = Buffer.length c.out then begin
              Buffer.clear c.out;
              c.sent <- 0
            end;
            if written < len then continue := false
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            continue := false
          | exception Unix.Unix_error _ ->
            (* the peer is gone; its pending responses are undeliverable *)
            dropped := !dropped + (if out_pending c > 0 then 1 else 0);
            Buffer.clear c.out;
            c.sent <- 0;
            c.closing <- true;
            clear_work c;
            continue := false
        done
      in
      (* serve up to [service_quantum] admitted requests (and any
         number of ready responses) from this connection — the
         per-connection, per-turn quantum bounds how long a pipelining
         client can monopolize the loop, so it cannot starve everyone
         else, while batching its responses into one write *)
      let rec service_step budget c =
        if budget > 0 then
          match Queue.take_opt c.work with
          | None -> ()
          | Some (Queued_response (line, ok)) ->
            emit c line ok;
            service_step budget c
          | Some (Queued_request Shutdown) ->
            note_settled c;
            emit c (shutdown_json cache) true;
            (* like the batch front end, a connection's own input after
               its [shutdown] is dropped; everyone else drains normally *)
            clear_work c;
            c.closing <- true;
            begin_drain `Shutdown
          | Some (Queued_request req) ->
            let line, ok, timed_out =
              handle_full ~native:nt ?deadline_ms:config.request_timeout_ms cache req
            in
            note_settled c;
            if timed_out then begin
              incr timeouts;
              if obsv () then Obsv.Metrics.incr_here Stats.serve_timeouts
            end;
            emit c line ok;
            service_step (budget - 1) c
      in
      let accept_burst () =
        let continue = ref true in
        while (not !draining) && !continue && List.length !conns < config.max_clients do
          match Unix.accept fd with
          | client, _ ->
            Unix.set_nonblock client;
            incr accepted;
            if obsv () then Obsv.Metrics.incr_here Stats.serve_accepts;
            conns :=
              { fd = client;
                framer = Framing.create ~max_line:config.max_line ();
                work = Queue.create ();
                out = Buffer.create 512;
                sent = 0;
                closing = false;
                reject_sent = false;
                inflight = 0;
                rl_tokens = float_of_int config.rate_burst;
                rl_last = Unix.gettimeofday () }
              :: !conns;
            max_concurrent := max !max_concurrent (List.length !conns)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> continue := false
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> ()
        done
      in
      (* while draining, a connection with nothing left to say is done
         even if the peer never closed its end *)
      let finished c =
        Queue.is_empty c.work && out_pending c = 0
        && (c.closing || (!draining && not (Framing.has_line c.framer)))
      in
      let loop_running = ref true in
      while !loop_running do
        if !stop then begin_drain `Signal;
        (* close connections that are done (their framer may still
           hold an unterminated partial line — by then unanswerable) *)
        let closing, live = List.partition finished !conns in
        List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) closing;
        conns := live;
        if !draining && !conns = [] then loop_running := false
        else if !draining && Unix.gettimeofday () > !drain_deadline then begin
          (* a peer that stopped reading cannot hold shutdown hostage:
             force-close whatever could not be flushed in time *)
          List.iter
            (fun c ->
              clear_work c;
              if out_pending c > 0 then incr dropped;
              try Unix.close c.fd with Unix.Unix_error _ -> ())
            !conns;
          conns := [];
          loop_running := false
        end
        else begin
          (* at the admission caps a connection is still read as long
             as it has no parked line: control verbs (health,
             shutdown) must reach the admission loop even when the
             server is saturated. A framed line that survived [admit]
             is necessarily a real request the caps parked — only
             then does reading stop, so the framer backlog stays
             bounded by one scratch-read burst per connection. *)
          let readable_wanted c =
            (not !draining) && (not c.closing)
            && (not (Framing.overflowed c.framer))
            && out_pending c < config.max_write_buffer
            && ((not (Framing.has_line c.framer))
               || (!inflight < config.max_inflight
                  && c.inflight < config.max_inflight_per_client))
          in
          let read_fds =
            (if (not !draining) && List.length !conns < config.max_clients then [ fd ] else [])
            @ List.filter_map (fun c -> if readable_wanted c then Some c.fd else None) !conns
          in
          let write_fds = List.filter_map (fun c -> if out_pending c > 0 then Some c.fd else None) !conns in
          (* work already in hand (queued items, or framed lines that
             the admission cap will let through) means the select is
             just an I/O poll, not a wait *)
          let work_pending =
            List.exists
              (fun c ->
                (not (Queue.is_empty c.work))
                || (!inflight < config.max_inflight
                   && c.inflight < config.max_inflight_per_client
                   && (not c.reject_sent)
                   && Framing.has_line c.framer))
              !conns
          in
          let timeout = if work_pending then 0.0 else 0.05 in
          (match Unix.select read_fds write_fds [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready_read, ready_write, _ ->
            if List.mem fd ready_read then accept_burst ();
            List.iter
              (fun c -> if List.mem c.fd ready_read then read_conn c)
              !conns;
            List.iter (fun c -> if not c.reject_sent then admit c) !conns;
            trace_inflight ();
            List.iter (service_step config.service_quantum) !conns;
            trace_inflight ();
            (* opportunistic flush for low latency; select-driven flush
               for peers whose buffers were full *)
            List.iter
              (fun c -> if out_pending c > 0 || List.mem c.fd ready_write then flush_conn c)
              !conns)
        end
      done;
      let how = !stopped_by in
      finish (match how with `Signal -> "signal" | `Shutdown -> "shutdown");
      Ok
        { connections = !accepted;
          requests = !requests;
          responses = !ok_responses + !error_responses;
          ok_responses = !ok_responses;
          error_responses = !error_responses;
          timeouts = !timeouts;
          rejected = !rejected;
          dropped = !dropped;
          max_concurrent = !max_concurrent;
          inflight_final = !inflight;
          throttled = !throttled;
          health_probes = !health_served;
          stopped_by = how }
    with Unix.Unix_error (e, fn, _) ->
      finish "error";
      Error (Printf.sprintf "serve: %s: %s" fn (Unix.error_message e)))
