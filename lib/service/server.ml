module A = Polymath.Affine
module P = Polymath.Polynomial
module Q = Zmath.Rat
module N = Trahrhe.Nest
module R = Trahrhe.Recovery

type exec_opts = {
  threads : int;
  schedule : Ompsim.Schedule.t;
  lanes : int;
  repeat : int;
  retries : int;
  native : bool;
}

type request =
  | Compile of { label : string; nest : N.t }
  | Exec of { label : string; nest : N.t; param : string -> int; opts : exec_opts }
  | Shutdown

(* ---- request-line parsing ---- *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_ident s =
  s <> ""
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all is_ident_char s

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let ( let* ) = Result.bind

(* bound grammar: ['-'] term (('+'|'-') term)*, term = INT['*'IDENT] | IDENT *)
let parse_affine s =
  let n = String.length s in
  if n = 0 then Error "empty affine bound"
  else begin
    (* split into (sign, atom) pieces at top-level +/- *)
    let i0, sign0 = if s.[0] = '-' then (1, -1) else (0, 1) in
    let atoms = ref [] in
    let bad = ref None in
    let start = ref i0 in
    let sign = ref sign0 in
    let flush upto =
      if upto = !start then bad := Some (Printf.sprintf "dangling sign in bound %S" s)
      else atoms := (!sign, String.sub s !start (upto - !start)) :: !atoms
    in
    for i = i0 to n - 1 do
      if !bad = None then
        match s.[i] with
        | '+' | '-' ->
          flush i;
          sign := (if s.[i] = '-' then -1 else 1);
          start := i + 1
        | _ -> ()
    done;
    if !bad = None then flush n;
    match !bad with
    | Some e -> Error e
    | None ->
      let coeffs = Hashtbl.create 8 in
      let const = ref Q.zero in
      let add_coeff v c =
        let prev = Option.value ~default:Q.zero (Hashtbl.find_opt coeffs v) in
        Hashtbl.replace coeffs v (Q.add prev c)
      in
      let atom_err = ref None in
      List.iter
        (fun (sg, a) ->
          if !atom_err = None then
            match String.index_opt a '*' with
            | Some k ->
              let c = String.sub a 0 k in
              let v = String.sub a (k + 1) (String.length a - k - 1) in
              if is_digits c && is_ident v then add_coeff v (Q.of_int (sg * int_of_string c))
              else atom_err := Some (Printf.sprintf "bad term %S in bound %S" a s)
            | None ->
              if is_digits a then const := Q.add !const (Q.of_int (sg * int_of_string a))
              else if is_ident a then add_coeff a (Q.of_int sg)
              else atom_err := Some (Printf.sprintf "bad term %S in bound %S" a s))
        (List.rev !atoms);
      match !atom_err with
      | Some e -> Error e
      | None ->
        let terms = Hashtbl.fold (fun v c acc -> (v, c) :: acc) coeffs [] in
        Ok (A.make (List.sort compare terms) !const)
  end

(* one entry of levels=: VAR=LOWER..UPPER *)
let parse_level entry =
  match String.index_opt entry '=' with
  | None -> Error (Printf.sprintf "level %S needs VAR=LOWER..UPPER" entry)
  | Some i ->
    let var = String.sub entry 0 i in
    let rest = String.sub entry (i + 1) (String.length entry - i - 1) in
    if not (is_ident var) then Error (Printf.sprintf "bad iterator name %S" var)
    else begin
      let dots = ref None in
      for j = 0 to String.length rest - 2 do
        if !dots = None && rest.[j] = '.' && rest.[j + 1] = '.' then dots := Some j
      done;
      match !dots with
      | None -> Error (Printf.sprintf "level %S needs LOWER..UPPER bounds" entry)
      | Some j ->
        let* lower = parse_affine (String.sub rest 0 j) in
        let* upper = parse_affine (String.sub rest (j + 2) (String.length rest - j - 2)) in
        Ok { N.var; lower; upper }
    end

(* one entry of params=: NAME or NAME=INT *)
let parse_param entry =
  match String.index_opt entry '=' with
  | None ->
    if is_ident entry then Ok (entry, None)
    else Error (Printf.sprintf "bad parameter name %S" entry)
  | Some i ->
    let name = String.sub entry 0 i in
    let v = String.sub entry (i + 1) (String.length entry - i - 1) in
    if not (is_ident name) then Error (Printf.sprintf "bad parameter name %S" name)
    else (
      match int_of_string_opt v with
      | Some value when is_digits v || (v.[0] = '-' && is_digits (String.sub v 1 (String.length v - 1)))
        -> Ok (name, Some value)
      | _ -> Error (Printf.sprintf "bad parameter value %S for %s" v name))

let split_commas s = if s = "" then [] else String.split_on_char ',' s

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let fields_of_tokens tokens =
  let* fields =
    map_result
      (fun tok ->
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "malformed field %S (expected key=value)" tok)
        | Some i -> Ok (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
      tokens
  in
  let rec dup = function
    | [] -> None
    | (k, _) :: rest -> if List.mem_assoc k rest then Some k else dup rest
  in
  match dup fields with
  | Some k -> Error (Printf.sprintf "duplicate field %s" k)
  | None -> Ok fields

let check_keys ~allowed fields =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields with
  | Some (k, _) -> Error (Printf.sprintf "unknown field %s" k)
  | None -> Ok ()

let int_field fields key ~default ~min_value =
  match List.assoc_opt key fields with
  | None -> Ok default
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n >= min_value -> Ok n
    | _ -> Error (Printf.sprintf "%s needs an integer >= %d, got %S" key min_value v))

let bool_field fields key ~default =
  match List.assoc_opt key fields with
  | None -> Ok default
  | Some ("1" | "true") -> Ok true
  | Some ("0" | "false") -> Ok false
  | Some v -> Error (Printf.sprintf "%s needs 0/1 or true/false, got %S" key v)

(* the nest named by the fields, plus the parameter valuation declared
   alongside it (for kernels: the registry's param_map at size [n]) *)
let nest_of_fields fields ~size =
  match
    (List.assoc_opt "kernel" fields, List.assoc_opt "params" fields, List.assoc_opt "levels" fields)
  with
  | Some name, None, None -> (
    match Kernels.Registry.find name with
    | None ->
      Error
        (Printf.sprintf "unknown kernel %S (try: %s)" name
           (String.concat ", " Kernels.Registry.names))
    | Some k ->
      let n = match size with Some n -> n | None -> k.Kernels.Kernel.default_n in
      Ok (name, k.Kernels.Kernel.nest, List.map (fun p -> (p, Some (Kernels.Kernel.param_of k ~n p))) k.Kernels.Kernel.nest.N.params))
  | None, params, Some levels_v -> (
    if size <> None then Error "n= is only valid with kernel="
    else
      let* bindings = map_result parse_param (split_commas (Option.value ~default:"" params)) in
      let* levels = map_result parse_level (split_commas levels_v) in
      if levels = [] then Error "levels= must declare at least one loop"
      else
        match N.make ~params:(List.map fst bindings) levels with
        | nest -> Ok ("nest", nest, bindings)
        | exception Invalid_argument e -> Error e)
  | Some _, _, _ -> Error "give kernel= or params=/levels=, not both"
  | None, _, None -> Error "a nest needs kernel= or levels="

let param_of_bindings bindings =
  let* () =
    match List.find_opt (fun (_, v) -> v = None) bindings with
    | Some (name, _) -> Error (Printf.sprintf "exec needs a value for parameter %s (params=%s=...)" name name)
    | None -> Ok ()
  in
  Ok (fun name ->
      match List.assoc_opt name bindings with
      | Some (Some v) -> v
      | _ -> invalid_arg ("unbound parameter " ^ name))

let parse_request line =
  let tokens = List.filter (fun s -> s <> "") (String.split_on_char ' ' line) in
  match tokens with
  | [] -> Ok None
  | op :: _ when op.[0] = '#' -> Ok None
  | "shutdown" :: rest -> if rest = [] then Ok (Some Shutdown) else Error "shutdown takes no fields"
  | "compile" :: rest ->
    let* fields = fields_of_tokens rest in
    let* () = check_keys ~allowed:[ "kernel"; "params"; "levels"; "label" ] fields in
    let* name, nest, _ = nest_of_fields fields ~size:None in
    let label = Option.value ~default:name (List.assoc_opt "label" fields) in
    Ok (Some (Compile { label; nest }))
  | "exec" :: rest ->
    let* fields = fields_of_tokens rest in
    let* () =
      check_keys
        ~allowed:
          [ "kernel"; "params"; "levels"; "label"; "n"; "threads"; "schedule"; "lanes"; "repeat"; "retries"; "native" ]
        fields
    in
    let* size =
      match List.assoc_opt "n" fields with
      | None -> Ok None
      | Some v -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> Ok (Some n)
        | _ -> Error (Printf.sprintf "n needs a positive integer, got %S" v))
    in
    let* name, nest, bindings = nest_of_fields fields ~size in
    let* param = param_of_bindings bindings in
    let* threads = int_field fields "threads" ~default:4 ~min_value:1 in
    let* lanes = int_field fields "lanes" ~default:1 ~min_value:1 in
    let* repeat = int_field fields "repeat" ~default:1 ~min_value:1 in
    let* retries = int_field fields "retries" ~default:0 ~min_value:0 in
    let* native = bool_field fields "native" ~default:false in
    let* schedule =
      match List.assoc_opt "schedule" fields with
      | None -> Ok Ompsim.Schedule.Static
      | Some s -> Ompsim.Schedule.of_string s
    in
    let label = Option.value ~default:name (List.assoc_opt "label" fields) in
    Ok (Some (Exec { label; nest; param; opts = { threads; schedule; lanes; repeat; retries; native } }))
  | op :: _ -> Error (Printf.sprintf "unknown operation %S (compile | exec | shutdown)" op)

(* ---- responses ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let error_json ~op ~label e =
  Printf.sprintf {|{"op":"%s","label":"%s","status":"error","error":"%s"}|} op (json_escape label)
    (json_escape e)

(* order-independent checksum of one iteration tuple (same hash as
   [trahrhe exec], so responses are comparable across front ends) *)
let iter_hash idx =
  let h = ref 0 in
  Array.iter (fun v -> h := (!h * 1000003) + v) idx;
  !h

(* one parallel execution of the collapsed nest; returns the checksum *)
let run_once rc opts =
  let trip = R.trip_count rc in
  let stride = 16 in
  let partial = Array.make (opts.threads * stride) 0 in
  let body ~thread ~start ~len =
    let cell = thread * stride in
    if opts.native then
      (* the whole chunk reduction in one call: native when a backend
         is attached, the equivalent interpreted fold otherwise *)
      partial.(cell) <- partial.(cell) + R.walk_hash rc ~pc:(start + 1) ~len
    else if opts.lanes > 1 then
      R.walk_lanes rc ~pc:(start + 1) ~len ~vlength:opts.lanes (fun ~base:_ ~count buf ->
          let d = Array.length buf in
          for l = 0 to count - 1 do
            let h = ref 0 in
            for k = 0 to d - 1 do
              h := (!h * 1000003) + buf.(k).(l)
            done;
            partial.(cell) <- partial.(cell) + !h
          done)
    else R.walk rc ~pc:(start + 1) ~len (fun idx -> partial.(cell) <- partial.(cell) + iter_hash idx)
  in
  let outcome =
    try
      if opts.retries > 0 then
        Ompsim.Par.run_resilient ~retries:opts.retries ~nthreads:opts.threads
          ~schedule:opts.schedule ~n:trip body
        |> Result.map_error Ompsim.Par.describe_error
      else begin
        Ompsim.Par.parallel_for_chunks ~nthreads:opts.threads ~schedule:opts.schedule ~n:trip body;
        Ok ()
      end
    with e -> Error (Printexc.to_string e)
  in
  Result.map
    (fun () ->
      let sum = ref 0 in
      for t = 0 to opts.threads - 1 do
        sum := !sum + partial.(t * stride)
      done;
      !sum)
    outcome

(* the shutdown acknowledgement carries the cache totals so clients
   (and the accounting block) see hit rates without a separate op *)
let shutdown_json cache =
  let s = Cache.stats cache in
  Printf.sprintf {|{"op":"shutdown","status":"ok","cache":{"hits":%d,"misses":%d}}|}
    s.Cache.hits s.Cache.misses

let handle ?native cache req =
  match req with
  | Shutdown -> (shutdown_json cache, true)
  | Compile { label; nest } -> (
    match Cache.find_or_compile cache nest with
    | Error e -> (error_json ~op:"compile" ~label e, false)
    | Ok (plan, _) ->
      let inv = plan.Plan.inversion in
      ( Printf.sprintf
          {|{"op":"compile","label":"%s","status":"ok","fingerprint":"%s","depth":%d,"trip_count":"%s"}|}
          (json_escape label) plan.Plan.fingerprint
          (N.depth inv.Trahrhe.Inversion.nest)
          (json_escape (P.to_string inv.Trahrhe.Inversion.trip_count)),
        true ))
  | Exec { label; nest; param; opts } -> (
    let err e = (error_json ~op:"exec" ~label e, false) in
    match Cache.find_or_compile cache nest with
    | Error e -> err e
    | Ok (plan, renaming) -> (
      (* the plan was compiled from the canonical nest, so both the
         recovery and the serial reference run under canonical names *)
      match
        let cparam = Fingerprint.canonical_param renaming param in
        let rc =
          if opts.native then
            let nt = match native with Some nt -> nt | None -> Native.default () in
            Native.recovery nt plan ~param:cparam
          else Plan.recovery plan ~param:cparam
        in
        (rc, cparam)
      with
      | exception Invalid_argument e -> err e
      | rc, cparam ->
        let trip = R.trip_count rc in
        let serial = ref 0 in
        N.iterate plan.Plan.inversion.Trahrhe.Inversion.nest ~param:cparam (fun idx ->
            serial := !serial + iter_hash idx);
        let rec runs r =
          if r > opts.repeat then Ok ()
          else
            match run_once rc opts with
            | Error e -> Error (Printf.sprintf "run %d/%d: %s" r opts.repeat e)
            | Ok sum when sum <> !serial ->
              Error
                (Printf.sprintf "checksum mismatch on run %d/%d: parallel %d vs serial %d" r
                   opts.repeat sum !serial)
            | Ok _ -> runs (r + 1)
        in
        (match runs 1 with
        | Error e -> err e
        | Ok () ->
          (* "native" reports whether the backend actually engaged —
             false under fallback, which CI's no-gcc job asserts on *)
          let native_field =
            if opts.native then Printf.sprintf {|,"native":%b|} (R.native_enabled rc) else ""
          in
          ( Printf.sprintf
              {|{"op":"exec","label":"%s","status":"ok","fingerprint":"%s","trip":%d,"checksum":%d,"repeat":%d%s}|}
              (json_escape label) plan.Plan.fingerprint trip !serial opts.repeat native_field,
            true ))))

(* ---- batch front end ---- *)

type item = Blank | Ready of string * bool | Todo of request | Stop

let run_batch ?cache ?native ?(workers = 4) ic oc =
  let cache = match cache with Some c -> c | None -> Cache.default () in
  let native = match native with Some nt -> nt | None -> Native.default () in
  let before = Cache.stats cache in
  let before_native = Native.stats native in
  let lines =
    let rec read acc = match input_line ic with
      | line -> read (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    read []
  in
  (* parse everything up front; input after a shutdown line is dropped *)
  let items =
    let stopped = ref false in
    List.mapi
      (fun i line ->
        if !stopped then Blank
        else
          match parse_request line with
          | Ok None -> Blank
          | Error e -> Ready (error_json ~op:"parse" ~label:(Printf.sprintf "line:%d" (i + 1)) e, false)
          | Ok (Some Shutdown) ->
            stopped := true;
            (* deferred: the totals in the acknowledgement must cover
               the batch's own requests, so format at emission time *)
            Stop
          | Ok (Some req) -> Todo req)
      lines
    |> Array.of_list
  in
  let jobs =
    Array.of_list
      (List.filteri (fun i _ -> match items.(i) with Todo _ -> true | Blank | Ready _ | Stop -> false)
         (List.init (Array.length items) Fun.id))
  in
  let results = Array.make (Array.length items) None in
  let njobs = Array.length jobs in
  if njobs > 0 then begin
    (* [workers] admission slots over the domain pool: the in-flight
       bound; requests beyond it queue on the shared index *)
    let next = Atomic.make 0 in
    let level = Atomic.make 0 in
    Ompsim.Pool.run ~nthreads:(max 1 (min workers njobs)) (fun _slot ->
        let rec pull () =
          let j = Atomic.fetch_and_add next 1 in
          if j < njobs then begin
            let i = jobs.(j) in
            let lvl = 1 + Atomic.fetch_and_add level 1 in
            if Obsv.Control.enabled () then begin
              Obsv.Metrics.incr_here Stats.inflight_admissions;
              Obsv.Trace.counter "service.inflight" lvl
            end;
            (match items.(i) with
            | Todo req -> results.(i) <- Some (handle ~native cache req)
            | Blank | Ready _ | Stop -> ());
            let after = Atomic.fetch_and_add level (-1) - 1 in
            if Obsv.Control.enabled () then Obsv.Trace.counter "service.inflight" after;
            pull ()
          end
        in
        pull ())
  end;
  let ok_count = ref 0 and err_count = ref 0 in
  Array.iteri
    (fun i item ->
      let emit (line, ok) =
        output_string oc line;
        output_char oc '\n';
        if ok then incr ok_count else incr err_count
      in
      match item with
      | Blank -> ()
      | Ready (line, ok) -> emit (line, ok)
      | Stop -> emit (shutdown_json cache, true)
      | Todo _ -> (
        match results.(i) with
        | Some r -> emit r
        | None -> emit (error_json ~op:"batch" ~label:(Printf.sprintf "line:%d" (i + 1)) "request was not served", false)))
    items;
  flush oc;
  let s = Cache.stats cache in
  Printf.eprintf
    "batch: %d requests, %d ok, %d errors; plan cache: %d hits (%d disk), %d misses, %d single-flight waits\n%!"
    (!ok_count + !err_count) !ok_count !err_count
    (s.Cache.hits - before.Cache.hits)
    (s.Cache.disk_hits - before.Cache.disk_hits)
    (s.Cache.misses - before.Cache.misses)
    (s.Cache.singleflight_waits - before.Cache.singleflight_waits);
  let ns = Native.stats native in
  let served = ns.Native.served - before_native.Native.served in
  let fallbacks = ns.Native.fallbacks - before_native.Native.fallbacks in
  if served + fallbacks > 0 then
    Printf.eprintf "batch: native: %d served, %d interpreted fallbacks\n%!" served fallbacks;
  if !err_count = 0 then 0 else 1

(* ---- socket front end ---- *)

let serve_connection ?native cache ic oc =
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line -> (
      match parse_request line with
      | Ok None -> loop ()
      | Error e ->
        respond (error_json ~op:"parse" ~label:"-" e);
        loop ()
      | Ok (Some Shutdown) ->
        respond (shutdown_json cache);
        `Shutdown
      | Ok (Some req) ->
        respond (fst (handle ?native cache req));
        loop ())
  in
  loop ()

let serve ?cache ?native ~socket () =
  let cache = match cache with Some c -> c | None -> Cache.default () in
  let nt = match native with Some nt -> nt | None -> Native.default () in
  let before = Cache.stats cache in
  let before_native = Native.stats nt in
  let connections = ref 0 in
  let summary how =
    let s = Cache.stats cache in
    Printf.eprintf
      "serve (%s): %d connection(s); plan cache: %d hits (%d disk), %d misses, %d single-flight waits\n%!"
      how !connections
      (s.Cache.hits - before.Cache.hits)
      (s.Cache.disk_hits - before.Cache.disk_hits)
      (s.Cache.misses - before.Cache.misses)
      (s.Cache.singleflight_waits - before.Cache.singleflight_waits);
    let ns = Native.stats nt in
    let served = ns.Native.served - before_native.Native.served in
    let fallbacks = ns.Native.fallbacks - before_native.Native.fallbacks in
    if served + fallbacks > 0 then
      Printf.eprintf "serve (%s): native: %d served, %d interpreted fallbacks\n%!" how served
        fallbacks
  in
  match
    (match Unix.lstat socket with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Ok (Unix.unlink socket)
    | _ -> Error (Printf.sprintf "%s exists and is not a socket" socket)
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ())
  with
  | Error e -> Error e
  | Ok () -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let cleanup () =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ -> ()
    in
    (* SIGINT/SIGTERM turn into a graceful stop: the handler flips
       [stop], accept returns EINTR, and the loop exits normally — so
       the accounting below (and any --trace/--stats teardown in the
       caller) still runs. Previous dispositions are restored before
       returning. *)
    let stop = ref false in
    let install sg =
      match Sys.signal sg (Sys.Signal_handle (fun _ -> stop := true)) with
      | prev -> Some prev
      | exception (Invalid_argument _ | Sys_error _) -> None
    in
    let restore sg = function
      | Some prev -> ( try Sys.set_signal sg prev with Invalid_argument _ | Sys_error _ -> ())
      | None -> ()
    in
    let prev_int = install Sys.sigint in
    let prev_term = install Sys.sigterm in
    let finish how =
      cleanup ();
      restore Sys.sigint prev_int;
      restore Sys.sigterm prev_term;
      summary how
    in
    try
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.listen fd 8;
      let rec accept_loop () =
        if !stop then `Signal
        else
          match Unix.accept fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | client, _ -> (
            incr connections;
            let ic = Unix.in_channel_of_descr client in
            let oc = Unix.out_channel_of_descr client in
            let outcome = serve_connection ~native:nt cache ic oc in
            (try flush oc with Sys_error _ -> ());
            (try Unix.close client with Unix.Unix_error _ -> ());
            match outcome with `Eof -> accept_loop () | `Shutdown -> `Shutdown)
      in
      let how = accept_loop () in
      finish (match how with `Signal -> "signal" | `Shutdown -> "shutdown");
      Ok ()
    with Unix.Unix_error (e, fn, _) ->
      finish "error";
      Error (Printf.sprintf "serve: %s: %s" fn (Unix.error_message e)))
