(** Incremental line framing for the non-blocking serve loop.

    A framer turns an arbitrary re-chunking of a byte stream back into
    the stream's lines: bytes arrive via {!feed} in whatever slices
    [Unix.read] produced, complete lines come out of {!pop} in input
    order, and a partial trailing line waits (bounded) for its
    terminator. The framer is what makes pipelined clients and
    partial reads safe — the serve loop never assumes a read ends on
    a line boundary.

    Framing rules:
    - a line is terminated by [\n]; a single trailing [\r] before the
      terminator is stripped (CRLF clients work unmodified);
    - empty lines are real lines (the protocol treats them as blanks);
    - a line whose content (after CR stripping) exceeds [max_line]
      bytes overflows the framer: {!pop} returns [`Overflow] after the
      lines framed before it, and every later byte is discarded. The
      check also fires {e before} the terminator arrives, so a client
      streaming an unterminated megabyte holds at most
      [max_line + 2] buffered bytes.

    Overflow is terminal by design: a framer that lost sync cannot
    re-synchronize safely, so the serve loop answers with one error
    response and closes the connection. *)

type t

val create : ?max_line:int -> unit -> t
(** [create ()] is an empty framer. [max_line] bounds the content
    length of a single line (default {!default_max_line}). *)

val default_max_line : int
(** 8192 bytes — generous for the request grammar, small enough that a
    misbehaving client cannot balloon the server. *)

val feed : t -> bytes -> int -> int -> unit
(** [feed t buf off len] appends [len] bytes of [buf] starting at
    [off] — typically the exact slice a [Unix.read] filled. Bytes
    after an overflow are discarded. *)

val feed_string : t -> string -> unit
(** [feed_string t s] is {!feed} over all of [s] (tests, batch glue). *)

val pop : t -> [ `Line of string | `Overflow | `Pending ]
(** [pop t] returns the next complete line, [`Overflow] once the
    stream overflowed and every earlier complete line was popped, or
    [`Pending] when more bytes are needed. After [`Overflow] every
    further pop is [`Overflow]. *)

val peek : t -> [ `Line of string | `Overflow | `Pending ]
(** [peek t] is {!pop} without consuming: the admission loop uses it
    to classify the next line (control verbs are exempt from the
    admission caps) before deciding whether to take it. *)

val drop : t -> unit
(** [drop t] discards the line {!peek} returned, if any — the
    consume half of a peek-then-take. *)

val has_line : t -> bool
(** Whether {!pop} would return something other than [`Pending] right
    now — lets the serve loop poll readiness without consuming. *)

val overflowed : t -> bool
(** Whether the stream has overflowed (complete lines framed before
    the overflow may still be waiting in {!pop}). *)

val buffered : t -> int
(** Bytes of the current partial line held by the framer — the
    framer's whole memory footprint beyond already-framed lines;
    always [<= max_line + 2]. *)
