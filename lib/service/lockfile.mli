(** Advisory cross-process file locks for the disk tier.

    Built on [Unix.lockf] (POSIX record locks): the kernel drops a
    holder's lock when its process dies, so a kill -9'd cache writer
    never wedges other processes — taking over such a stale lock is
    simply a successful acquisition. A holder that is alive but stuck
    is bounded by the acquisition timeout ([OMPSIM_CACHE_LOCK_TIMEOUT_MS],
    default 10000 ms): on expiry the caller proceeds {e without} the
    lock, which the cache counts as a lock steal — safe, because entry
    publication is an atomic rename regardless of who holds the lock.

    These locks arbitrate primarily between {e processes}; POSIX
    record locks do not conflict within one process, where the
    single-flight table already provides exclusion. An in-process
    reservation table backstops the kernel's blind spot anyway: a
    path locked by one thread of this process is treated as
    contended by sibling [acquire]s, and {!try_clean} will never
    mistake it for an orphan (a same-process trylock would succeed
    against a live lock, and closing the probe fd would drop it).
    Locks must be released by the acquiring thread before the
    process forks grandchildren that should not inherit them (fds
    are close-on-exec). *)

type t

val default_timeout_ms : unit -> int

(** [acquire path] polls a try-lock on [path] (creating it if needed)
    every [poll_ms] (default 20 ms) until it wins or [timeout_ms]
    (default {!default_timeout_ms}) expires. On success the holder's
    pid is recorded in the file. [Error `Timeout] means a live holder
    outlasted the deadline; [Error (`Unavailable _)] means the lock
    file cannot be used at all (e.g. read-only directory). *)
val acquire :
  ?timeout_ms:int -> ?poll_ms:int -> string -> (t, [ `Timeout | `Unavailable of string ]) result

(** [contended t] is [true] when at least one try-lock failed before
    this acquisition won — i.e. the caller actually waited. *)
val contended : t -> bool

(** [release t] unlinks the lock file, releases the lock and closes
    the fd. Never raises. *)
val release : t -> unit

(** [try_clean path] removes [path] iff no live holder — in another
    process {e or} a sibling thread of this one — has it locked;
    returns whether it was removed. Used by the startup janitor to
    sweep orphaned [.lock] files. *)
val try_clean : string -> bool
