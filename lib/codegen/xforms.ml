open C_ast
module P = Polymath.Polynomial
module E = Symx.Expr
module Cemit = Symx.Cemit

let disjoint_vars a b =
  List.for_all (fun v -> not (List.mem v b)) a

let reshape ?(config = Schemes.default_config) (r : Trahrhe.Reshape.t) ~body =
  let ty = config.Schemes.counter_ty in
  let source = Trahrhe.Reshape.source r in
  let target = Trahrhe.Reshape.target r in
  let svars = Trahrhe.Nest.level_vars source.Trahrhe.Inversion.nest in
  let tvars = Trahrhe.Nest.level_vars target.Trahrhe.Inversion.nest in
  if not (disjoint_vars svars tvars) then
    invalid_arg "Xforms.reshape: source and target iterator names must be disjoint";
  let pc = source.Trahrhe.Inversion.pc_var in
  let decls =
    List.map (fun v -> Decl { ty; name = v; init = None }) (svars @ tvars)
    @ [ Decl { ty; name = pc; init = None };
        Decl { ty = "int"; name = "first_iteration"; init = Some "1" } ]
  in
  let target_depth = Trahrhe.Nest.depth target.Trahrhe.Inversion.nest in
  let pragma =
    Pragma
      (Printf.sprintf
         "omp parallel for collapse(%d) private(%s, %s) firstprivate(first_iteration) \
          schedule(%s)"
         target_depth
         (String.concat ", " (svars @ config.Schemes.extra_private))
         pc config.Schemes.schedule)
  in
  (* the target nest is rectangular-collapsible by OpenMP itself; its
     rank polynomial gives the fused rank of the current iteration *)
  let recovery =
    If
      { cond = "first_iteration";
        then_ =
          Assign (pc, Cemit.emit_poly_int target.Trahrhe.Inversion.ranking ~ty)
          :: Schemes.recovery_stmts ~config source
          @ [ Assign ("first_iteration", "0") ];
        else_ = [] }
  in
  let inner = (recovery :: body) @ Schemes.increment_stmts ~config source in
  let rec loops = function
    | [] -> inner
    | (l : Trahrhe.Nest.level) :: rest ->
      [ For
          { init = Printf.sprintf "%s = %s" l.var (Cemit.emit_poly_int (Polymath.Affine.to_poly l.lower) ~ty);
            cond =
              Printf.sprintf "%s < %s" l.var
                (Cemit.emit_poly_int (Polymath.Affine.to_poly l.upper) ~ty);
            step = l.var ^ "++";
            body = loops rest } ]
  in
  decls @ [ pragma ] @ loops target.Trahrhe.Inversion.nest.Trahrhe.Nest.levels

let fused ?(config = Schemes.default_config) (f : Trahrhe.Fusion.t) ~bodies =
  let ty = config.Schemes.counter_ty in
  let segs = Trahrhe.Fusion.segments f in
  if List.length segs <> List.length bodies then
    invalid_arg "Xforms.fused: one body per segment required";
  let all_vars =
    List.concat_map
      (fun (s : Trahrhe.Fusion.segment) -> Trahrhe.Nest.level_vars s.inversion.Trahrhe.Inversion.nest)
      segs
  in
  if List.length (List.sort_uniq compare all_vars) <> List.length all_vars then
    invalid_arg "Xforms.fused: iterator names must be distinct across segments";
  let pc = (List.hd segs).Trahrhe.Fusion.inversion.Trahrhe.Inversion.pc_var in
  let offset_plus_trip (s : Trahrhe.Fusion.segment) =
    P.add s.offset s.inversion.Trahrhe.Inversion.trip_count
  in
  let shifted_recovery (s : Trahrhe.Fusion.segment) =
    (* recover from the segment-local rank pc - offset *)
    let inv = s.inversion in
    let local = P.sub (P.var pc) s.offset in
    let shifted =
      { inv with
        Trahrhe.Inversion.recoveries =
          Array.map
            (function
              | Trahrhe.Inversion.Root { var; expr; mode } ->
                Trahrhe.Inversion.Root
                  { var; expr = E.subst pc (E.of_poly local) expr; mode }
              | Trahrhe.Inversion.Last { var; poly } ->
                Trahrhe.Inversion.Last { var; poly = P.subst pc local poly }
              | Trahrhe.Inversion.Numeric _ as r ->
                (* the emitted binary search compares the offset-shifted
                   r_sub below against the global pc directly:
                   r + offset <= pc  <=>  r <= pc - offset *)
                r)
            inv.Trahrhe.Inversion.recoveries;
        Trahrhe.Inversion.r_sub =
          (* guards compare local rank against r_sub: shift them too by
             adding the offset to the substituted rankings *)
          Array.map (fun r -> P.add r s.offset) inv.Trahrhe.Inversion.r_sub }
    in
    Schemes.recovery_stmts ~config shifted
  in
  let first_point_assigns (s : Trahrhe.Fusion.segment) =
    let nest = s.inversion.Trahrhe.Inversion.nest in
    Polyhedral.Lexmin.first_point (Trahrhe.Nest.to_count_levels nest)
    |> List.map (fun (v, m) ->
           Assign (v, Cemit.emit_poly_int (Polymath.Affine.to_poly m) ~ty))
  in
  (* dispatch: if (first_iteration) pick the segment by offset ranges *)
  let rec dispatch = function
    | [] -> []
    | s :: rest ->
      let cond =
        Printf.sprintf "%s <= %s" pc (Cemit.emit_poly_int (offset_plus_trip s) ~ty)
      in
      if rest = [] then shifted_recovery s
      else [ If { cond; then_ = shifted_recovery s; else_ = dispatch rest } ]
  in
  (* per-iteration body: segment selection + body + §V increment, and
     on crossing a boundary, seed the next segment's first point *)
  let rec exec segs bodies =
    match (segs, bodies) with
    | [], [] -> []
    | (s : Trahrhe.Fusion.segment) :: rest, body :: bodies_rest ->
      let boundary = Cemit.emit_poly_int (offset_plus_trip s) ~ty in
      let advance =
        match rest with
        | [] -> Schemes.increment_stmts ~config s.inversion
        | next :: _ ->
          [ If
              { cond = Printf.sprintf "%s == %s" pc boundary;
                then_ = first_point_assigns next;
                else_ = Schemes.increment_stmts ~config s.inversion } ]
      in
      let here = body @ advance in
      if rest = [] then here
      else
        [ If
            { cond = Printf.sprintf "%s <= %s" pc boundary;
              then_ = here;
              else_ = exec rest bodies_rest } ]
    | _ -> assert false
  in
  let decls =
    List.map (fun v -> Decl { ty; name = v; init = None }) all_vars
    @ [ Decl { ty = "int"; name = "first_iteration"; init = Some "1" } ]
  in
  let pragma =
    Pragma
      (Printf.sprintf "omp parallel for private(%s) firstprivate(first_iteration) schedule(%s)"
         (String.concat ", " (all_vars @ config.Schemes.extra_private))
         config.Schemes.schedule)
  in
  let loop =
    For
      { init = Printf.sprintf "%s %s = 1" ty pc;
        cond = Printf.sprintf "%s <= %s" pc (Cemit.emit_poly_int (Trahrhe.Fusion.total_trip f) ~ty);
        step = pc ^ "++";
        body =
          If { cond = "first_iteration"; then_ = dispatch segs @ [ Assign ("first_iteration", "0") ]; else_ = [] }
          :: exec segs bodies }
  in
  decls @ [ pragma; loop ]
