open C_ast
module P = Polymath.Polynomial
module A = Polymath.Affine
module Cemit = Symx.Cemit

type config = {
  counter_ty : string;
  schedule : string;
  extra_private : string list;
  guarded : bool;
  declare_indices : bool;
}

let default_config =
  { counter_ty = "long";
    schedule = "static";
    extra_private = [];
    guarded = false;
    declare_indices = true }

let trip_count_expr (inv : Trahrhe.Inversion.t) ~ty =
  Cemit.emit_poly_int inv.Trahrhe.Inversion.trip_count ~ty

let bound_expr ~ty a = Cemit.emit_poly_int (A.to_poly a) ~ty

let nest_levels (inv : Trahrhe.Inversion.t) =
  Array.of_list inv.Trahrhe.Inversion.nest.Trahrhe.Nest.levels

(* exact adjustment of one floored index (library extension):
   clamp into bounds, then nudge until
   r_sub(prefix, v) <= pc < r_sub(prefix, v+1) *)
let guard_stmts ~ty (inv : Trahrhe.Inversion.t) k =
  let levels = nest_levels inv in
  let l = levels.(k) in
  let v = l.Trahrhe.Nest.var in
  let pc = inv.Trahrhe.Inversion.pc_var in
  let r_sub = inv.Trahrhe.Inversion.r_sub.(k) in
  let r_at_next = P.subst v (P.add (P.var v) P.one) r_sub in
  let lb = Printf.sprintf "lb_%s" v and ub = Printf.sprintf "ub_%s" v in
  [ Comment (Printf.sprintf "exact adjustment of %s against the ranking" v);
    Block
      [ Decl { ty; name = lb; init = Some (bound_expr ~ty l.Trahrhe.Nest.lower) };
        Decl
          { ty;
            name = ub;
            init = Some (Printf.sprintf "(%s) - 1" (bound_expr ~ty l.Trahrhe.Nest.upper)) };
        Raw (Printf.sprintf "if (%s < %s) %s = %s;" v lb v lb);
        Raw (Printf.sprintf "if (%s > %s) %s = %s;" v ub v ub);
        While
          { cond = Printf.sprintf "%s < %s && %s <= %s" v ub (Cemit.emit_poly_int r_at_next ~ty) pc;
            body = [ Raw (v ^ "++;") ] };
        While
          { cond = Printf.sprintf "%s > %s && %s > %s" v lb (Cemit.emit_poly_int r_sub ~ty) pc;
            body = [ Raw (v ^ "--;") ] } ] ]

let recovery_stmts ?(config = default_config) (inv : Trahrhe.Inversion.t) =
  let ty = config.counter_ty in
  Array.to_list inv.Trahrhe.Inversion.recoveries
  |> List.concat_map (fun r ->
         match r with
         | Trahrhe.Inversion.Root { var; expr; mode } ->
           Assign (var, Cemit.emit_floor ~mode expr)
           :: (if config.guarded then
                 let k =
                   let levels = nest_levels inv in
                   let rec find i = if levels.(i).Trahrhe.Nest.var = var then i else find (i + 1) in
                   find 0
                 in
                 guard_stmts ~ty inv k
               else [])
         | Trahrhe.Inversion.Last { var; poly } ->
           [ Assign (var, Cemit.emit_poly_int poly ~ty) ]
         | Trahrhe.Inversion.Numeric { var; r_sub_index } ->
           (* no radical closed form at this degree: emit the bracketed
              binary search over the monotone substituted ranking —
              largest value with r_sub(prefix, v) <= pc. Exact by
              construction, so the guarded config adds nothing. *)
           let levels = nest_levels inv in
           let l = levels.(r_sub_index) in
           let pc = inv.Trahrhe.Inversion.pc_var in
           let r_sub = inv.Trahrhe.Inversion.r_sub.(r_sub_index) in
           let a = Printf.sprintf "nlo_%s" var
           and b = Printf.sprintf "nhi_%s" var
           and mid = Printf.sprintf "nmid_%s" var in
           let r_at_mid = P.subst var (P.var mid) r_sub in
           [ Comment
               (Printf.sprintf "numeric recovery of %s: binary search on the monotone ranking"
                  var);
             Block
               [ Decl { ty; name = a; init = Some (bound_expr ~ty l.Trahrhe.Nest.lower) };
                 Decl
                   { ty;
                     name = b;
                     init =
                       Some (Printf.sprintf "(%s) - 1" (bound_expr ~ty l.Trahrhe.Nest.upper))
                   };
                 While
                   { cond = Printf.sprintf "%s < %s" a b;
                     body =
                       [ Decl
                           { ty;
                             name = mid;
                             init = Some (Printf.sprintf "%s + (%s - %s + 1) / 2" a b a) };
                         Raw
                           (Printf.sprintf "if (%s <= %s) %s = %s; else %s = %s - 1;"
                              (Cemit.emit_poly_int r_at_mid ~ty) pc a mid b mid) ] };
                 Raw (Printf.sprintf "%s = %s;" var a) ] ])

let increment_stmts ?(config = default_config) (inv : Trahrhe.Inversion.t) =
  let ty = config.counter_ty in
  let levels = nest_levels inv in
  let d = Array.length levels in
  (* v_{d-1}++; cascading overflow checks outward, resets inward *)
  let rec cascade k =
    let l = levels.(k) in
    let bump = Raw (l.Trahrhe.Nest.var ^ "++;") in
    if k = 0 then [ bump ]
    else
      [ bump;
        If
          { cond =
              Printf.sprintf "%s >= %s" l.Trahrhe.Nest.var
                (bound_expr ~ty l.Trahrhe.Nest.upper);
            then_ =
              cascade (k - 1)
              @ [ Assign (l.Trahrhe.Nest.var, bound_expr ~ty l.Trahrhe.Nest.lower) ];
            else_ = [] } ]
  in
  cascade (d - 1)

let index_decls ~config (inv : Trahrhe.Inversion.t) =
  if not config.declare_indices then []
  else
    List.map
      (fun v -> Decl { ty = config.counter_ty; name = v; init = None })
      (Trahrhe.Nest.level_vars inv.Trahrhe.Inversion.nest)

let private_clause ~config (inv : Trahrhe.Inversion.t) =
  String.concat ", " (Trahrhe.Nest.level_vars inv.Trahrhe.Inversion.nest @ config.extra_private)

let pc_loop ~config (inv : Trahrhe.Inversion.t) ?(step) body =
  let ty = config.counter_ty in
  let pc = inv.Trahrhe.Inversion.pc_var in
  let step = match step with None -> pc ^ "++" | Some s -> s in
  For
    { init = Printf.sprintf "%s %s = 1" ty pc;
      cond = Printf.sprintf "%s <= %s" pc (trip_count_expr inv ~ty);
      step;
      body }

let naive ?(config = default_config) inv ~body =
  Obsv.Trace.with_span "pipeline.codegen" ~args:[ ("scheme", Obsv.Trace.Str "naive") ]
  @@ fun () ->
  index_decls ~config inv
  @ [ Pragma
        (Printf.sprintf "omp parallel for private(%s) schedule(%s)" (private_clause ~config inv)
           config.schedule);
      pc_loop ~config inv (recovery_stmts ~config inv @ body) ]

let per_thread ?(config = default_config) inv ~body =
  Obsv.Trace.with_span "pipeline.codegen" ~args:[ ("scheme", Obsv.Trace.Str "per-thread") ]
  @@ fun () ->
  index_decls ~config inv
  @ [ Decl { ty = "int"; name = "first_iteration"; init = Some "1" };
      Pragma
        (Printf.sprintf
           "omp parallel for private(%s) firstprivate(first_iteration) schedule(%s)"
           (private_clause ~config inv) config.schedule);
      pc_loop ~config inv
        (If
           { cond = "first_iteration";
             then_ = recovery_stmts ~config inv @ [ Assign ("first_iteration", "0") ];
             else_ = [] }
        :: (body @ increment_stmts ~config inv)) ]

let chunked ?(config = default_config) ~chunk inv ~body =
  Obsv.Trace.with_span "pipeline.codegen" ~args:[ ("scheme", Obsv.Trace.Str "chunked") ]
  @@ fun () ->
  let pc = inv.Trahrhe.Inversion.pc_var in
  index_decls ~config inv
  @ [ Pragma
        (Printf.sprintf "omp parallel for private(%s) schedule(static, %d)"
           (private_clause ~config inv) chunk);
      pc_loop ~config inv
        (If
           { cond = Printf.sprintf "(%s - 1) %% %d == 0" pc chunk;
             then_ = recovery_stmts ~config inv;
             else_ = [] }
        :: (body @ increment_stmts ~config inv)) ]

let simd ?(config = default_config) ~vlength inv ~body_of =
  Obsv.Trace.with_span "pipeline.codegen" ~args:[ ("scheme", Obsv.Trace.Str "simd") ]
  @@ fun () ->
  let ty = config.counter_ty in
  let pc = inv.Trahrhe.Inversion.pc_var in
  let vars = Trahrhe.Nest.level_vars inv.Trahrhe.Inversion.nest in
  let buf v = "T_" ^ v in
  let trip = trip_count_expr inv ~ty in
  let upper = Printf.sprintf "(%s + %d - 1 < %s ? %s + %d - 1 : %s)" pc vlength trip pc vlength trip in
  let buffers =
    List.map (fun v -> Decl { ty; name = Printf.sprintf "%s[%d]" (buf v) vlength; init = None }) vars
  in
  let privates =
    String.concat ", " (vars @ List.map buf vars @ [ "v" ] @ config.extra_private)
  in
  index_decls ~config inv
  @ [ Decl { ty; name = "v"; init = None };
      Decl { ty = "int"; name = "first_iteration"; init = Some "1" } ]
  @ buffers
  @ [ Pragma
        (Printf.sprintf
           "omp parallel for private(%s) firstprivate(first_iteration) schedule(%s)" privates
           config.schedule);
      pc_loop ~config inv ~step:(Printf.sprintf "%s += %d" pc vlength)
        ([ If
             { cond = "first_iteration";
               then_ = recovery_stmts ~config inv @ [ Assign ("first_iteration", "0") ];
               else_ = [] };
           For
             { init = Printf.sprintf "v = %s" pc;
               cond = Printf.sprintf "v <= %s" upper;
               step = "v++";
               body =
                 List.map
                   (fun x -> Assign (Printf.sprintf "%s[v - %s]" (buf x) pc, x))
                   vars
                 @ increment_stmts ~config inv };
           Pragma "omp simd";
           For
             { init = Printf.sprintf "v = %s" pc;
               cond = Printf.sprintf "v <= %s" upper;
               step = "v++";
               body = body_of (fun x -> Printf.sprintf "%s[v - %s]" (buf x) pc) } ]) ]

let gpu_warp ?(config = default_config) ~warp inv ~body =
  Obsv.Trace.with_span "pipeline.codegen" ~args:[ ("scheme", Obsv.Trace.Str "gpu-warp") ]
  @@ fun () ->
  let ty = config.counter_ty in
  let pc = inv.Trahrhe.Inversion.pc_var in
  let trip = trip_count_expr inv ~ty in
  index_decls ~config inv
  @ [ Decl { ty; name = "thread"; init = None };
      Decl { ty; name = "inc"; init = None };
      Comment (Printf.sprintf "emulation of one warp of %d threads, memory-coalesced" warp);
      For
        { init = "thread = 0";
          cond = Printf.sprintf "thread < %d" warp;
          step = "thread++";
          body =
            [ For
                { init = Printf.sprintf "%s %s = thread + 1" ty pc;
                  cond = Printf.sprintf "%s <= %s" pc trip;
                  step = Printf.sprintf "%s += %d" pc warp;
                  body =
                    If
                      { cond = Printf.sprintf "%s == thread + 1" pc;
                        then_ = recovery_stmts ~config inv;
                        else_ = [] }
                    :: body
                    @ [ For
                          { init = "inc = 0";
                            cond = Printf.sprintf "inc < %d" warp;
                            step = "inc++";
                            body = increment_stmts ~config inv } ] } ] } ]

let original ?(config = default_config) (nest : Trahrhe.Nest.t) ~parallel ~schedule ~body =
  let ty = config.counter_ty in
  let rec loops = function
    | [] -> body
    | (l : Trahrhe.Nest.level) :: rest ->
      [ For
          { init = Printf.sprintf "%s = %s" l.var (bound_expr ~ty l.lower);
            cond = Printf.sprintf "%s < %s" l.var (bound_expr ~ty l.upper);
            step = l.var ^ "++";
            body = loops rest } ]
  in
  let decls =
    if config.declare_indices then
      List.map (fun v -> Decl { ty; name = v; init = None }) (Trahrhe.Nest.level_vars nest)
    else []
  in
  let pragma =
    if parallel then begin
      match Trahrhe.Nest.level_vars nest with
      | _outer :: privates when privates <> [] || config.extra_private <> [] ->
        [ Pragma
            (Printf.sprintf "omp parallel for private(%s) schedule(%s)"
               (String.concat ", " (privates @ config.extra_private))
               schedule) ]
      | _ -> [ Pragma (Printf.sprintf "omp parallel for schedule(%s)" schedule) ]
    end
    else []
  in
  decls @ pragma @ loops nest.Trahrhe.Nest.levels
