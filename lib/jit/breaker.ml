type state = Closed | Open | Half_open

type t = {
  threshold : int;
  cooldown_ms : float;
  now_ms : unit -> float;
  mutex : Mutex.t;
  mutable st : state;
  mutable consecutive : int;
  mutable opened_at : float;
  mutable probing : bool;  (* a half-open probe is in flight *)
  mutable opens : int;
  mutable rejections : int;
  mutable probes : int;
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> default)
  | _ -> default

let create ?threshold ?cooldown_ms ?now_ms () =
  let threshold =
    match threshold with
    | Some n -> max 1 n
    | None -> env_int "OMPSIM_JIT_BREAKER_THRESHOLD" 3
  in
  let cooldown_ms =
    match cooldown_ms with
    | Some n -> float_of_int (max 0 n)
    | None -> float_of_int (env_int "OMPSIM_JIT_BREAKER_COOLDOWN_MS" 1000)
  in
  let now_ms =
    match now_ms with Some f -> f | None -> fun () -> Unix.gettimeofday () *. 1000.
  in
  { threshold;
    cooldown_ms;
    now_ms;
    mutex = Mutex.create ();
    st = Closed;
    consecutive = 0;
    opened_at = 0.;
    probing = false;
    opens = 0;
    rejections = 0;
    probes = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let acquire t =
  locked t @@ fun () ->
  match t.st with
  | Closed -> true
  | Half_open ->
    if t.probing then begin
      t.rejections <- t.rejections + 1;
      Stats.incr Stats.breaker_rejects;
      false
    end
    else begin
      t.probing <- true;
      t.probes <- t.probes + 1;
      Stats.incr Stats.breaker_probes;
      true
    end
  | Open ->
    if t.now_ms () -. t.opened_at >= t.cooldown_ms then begin
      (* cooldown over: this caller becomes the half-open probe *)
      t.st <- Half_open;
      t.probing <- true;
      t.probes <- t.probes + 1;
      Stats.incr Stats.breaker_probes;
      true
    end
    else begin
      t.rejections <- t.rejections + 1;
      Stats.incr Stats.breaker_rejects;
      false
    end

let success t =
  locked t @@ fun () ->
  if t.st <> Closed then Stats.incr Stats.breaker_closes;
  t.st <- Closed;
  t.probing <- false;
  t.consecutive <- 0

let open_now t =
  t.st <- Open;
  t.probing <- false;
  t.opened_at <- t.now_ms ();
  t.opens <- t.opens + 1;
  Stats.incr Stats.breaker_opens

let failure t =
  locked t @@ fun () ->
  t.consecutive <- t.consecutive + 1;
  match t.st with
  | Half_open -> open_now t  (* failed probe: straight back to open *)
  | Closed -> if t.consecutive >= t.threshold then open_now t
  | Open -> ()

let state t = locked t @@ fun () -> t.st
let failures t = locked t @@ fun () -> t.consecutive
let opens t = locked t @@ fun () -> t.opens
let rejections t = locked t @@ fun () -> t.rejections
let probes t = locked t @@ fun () -> t.probes

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"
