/* dlopen shim for plan-specialized shared objects.
 *
 * A handle is a malloc'd table of the function pointers resolved from
 * one .so, boxed in an Abstract block. Closing dlcloses and marks the
 * table; the table itself is kept (handles are cached process-wide,
 * so the few bytes are not worth a dangling-pointer risk).
 *
 * ompsim_jit_walk_hash releases the OCaml runtime for the duration of
 * the native walk: the C code touches only its own stack and the
 * parameter copy, and a long chunk must not delay other domains'
 * stop-the-world collections. The block/recover stubs write into
 * OCaml arrays, so they keep the runtime and stay short instead.
 */
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <dlfcn.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/bigarray.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/signals.h>

#define OMPSIM_JIT_MAX_PARAMS 16
#define OMPSIM_JIT_MAX_DEPTH 16

typedef struct {
  void *dl;
  int64_t (*abi)(void);
  const char *(*fingerprint)(void);
  int64_t (*depth)(void);
  int64_t (*nparams)(void);
  int64_t (*trip)(const int64_t *);
  void (*recover)(const int64_t *, int64_t, int64_t *);
  uint64_t (*walk_hash)(const int64_t *, int64_t, int64_t);
  uint64_t (*reduce_sum)(const int64_t *, int64_t, int64_t);
  int64_t (*block)(const int64_t *, int64_t, int64_t, int64_t *);
} jit_handle;

#define Handle_val(v) (*(jit_handle **)Data_abstract_val(v))

static jit_handle *get_handle(value v)
{
  jit_handle *h = Handle_val(v);
  if (h == NULL || h->dl == NULL) caml_failwith("ompsim jit: handle is closed");
  return h;
}

CAMLprim value ompsim_jit_open(value vpath)
{
  CAMLparam1(vpath);
  CAMLlocal1(res);
  jit_handle *h;
  void *dl = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (dl == NULL) {
    const char *e = dlerror();
    caml_failwith(e != NULL ? e : "ompsim jit: dlopen failed");
  }
  h = malloc(sizeof *h);
  if (h == NULL) {
    dlclose(dl);
    caml_failwith("ompsim jit: out of memory");
  }
  h->dl = dl;
  h->abi = (int64_t (*)(void))dlsym(dl, "ompsim_abi");
  h->fingerprint = (const char *(*)(void))dlsym(dl, "ompsim_fingerprint");
  h->depth = (int64_t (*)(void))dlsym(dl, "ompsim_depth");
  h->nparams = (int64_t (*)(void))dlsym(dl, "ompsim_params");
  h->trip = (int64_t (*)(const int64_t *))dlsym(dl, "ompsim_trip");
  h->recover = (void (*)(const int64_t *, int64_t, int64_t *))dlsym(dl, "ompsim_recover");
  h->walk_hash =
    (uint64_t (*)(const int64_t *, int64_t, int64_t))dlsym(dl, "ompsim_walk_hash");
  h->reduce_sum =
    (uint64_t (*)(const int64_t *, int64_t, int64_t))dlsym(dl, "ompsim_reduce_sum");
  h->block =
    (int64_t (*)(const int64_t *, int64_t, int64_t, int64_t *))dlsym(dl, "ompsim_block");
  if (h->abi == NULL || h->fingerprint == NULL || h->depth == NULL || h->nparams == NULL
      || h->trip == NULL || h->recover == NULL || h->walk_hash == NULL
      || h->reduce_sum == NULL || h->block == NULL) {
    dlclose(dl);
    free(h);
    caml_failwith("ompsim jit: missing symbol in shared object");
  }
  res = caml_alloc(1, Abstract_tag);
  Handle_val(res) = h;
  CAMLreturn(res);
}

CAMLprim value ompsim_jit_close(value vh)
{
  jit_handle *h = Handle_val(vh);
  if (h != NULL && h->dl != NULL) {
    dlclose(h->dl);
    h->dl = NULL;
  }
  return Val_unit;
}

static int copy_params(value vp, int64_t *out)
{
  int n = (int)Wosize_val(vp);
  int i;
  if (n > OMPSIM_JIT_MAX_PARAMS)
    caml_invalid_argument("ompsim jit: too many parameters");
  for (i = 0; i < n; i++) out[i] = (int64_t)Long_val(Field(vp, i));
  return n;
}

CAMLprim value ompsim_jit_abi(value vh) { return Val_long((intnat)get_handle(vh)->abi()); }

CAMLprim value ompsim_jit_depth(value vh)
{
  return Val_long((intnat)get_handle(vh)->depth());
}

CAMLprim value ompsim_jit_params(value vh)
{
  return Val_long((intnat)get_handle(vh)->nparams());
}

CAMLprim value ompsim_jit_fingerprint(value vh)
{
  CAMLparam1(vh);
  const char *s = get_handle(vh)->fingerprint();
  CAMLreturn(caml_copy_string(s != NULL ? s : ""));
}

CAMLprim value ompsim_jit_trip(value vh, value vp)
{
  jit_handle *h = get_handle(vh);
  int64_t P[OMPSIM_JIT_MAX_PARAMS];
  copy_params(vp, P);
  return Val_long((intnat)h->trip(P));
}

CAMLprim value ompsim_jit_walk_hash(value vh, value vp, value vpc, value vlen)
{
  jit_handle *h = get_handle(vh);
  int64_t P[OMPSIM_JIT_MAX_PARAMS];
  int64_t pc = (int64_t)Long_val(vpc);
  int64_t len = (int64_t)Long_val(vlen);
  uint64_t acc;
  copy_params(vp, P);
  caml_enter_blocking_section();
  acc = h->walk_hash(P, pc, len);
  caml_leave_blocking_section();
  /* Val_long truncates to the 63-bit OCaml range: exactly the native-
     int wraparound the interpreted walk computes */
  return Val_long((intnat)acc);
}

CAMLprim value ompsim_jit_reduce_sum(value vh, value vp, value vpc, value vlen)
{
  jit_handle *h = get_handle(vh);
  int64_t P[OMPSIM_JIT_MAX_PARAMS];
  int64_t pc = (int64_t)Long_val(vpc);
  int64_t len = (int64_t)Long_val(vlen);
  uint64_t acc;
  copy_params(vp, P);
  caml_enter_blocking_section();
  acc = h->reduce_sum(P, pc, len);
  caml_leave_blocking_section();
  /* same 63-bit truncation as the walk: the interpreted reduction
     accumulates in native ints, so the wrapped values agree exactly */
  return Val_long((intnat)acc);
}

CAMLprim value ompsim_jit_recover(value vh, value vp, value vpc, value vidx)
{
  jit_handle *h = get_handle(vh);
  int64_t P[OMPSIM_JIT_MAX_PARAMS];
  int64_t X[OMPSIM_JIT_MAX_DEPTH];
  int d, k;
  copy_params(vp, P);
  d = (int)h->depth();
  if (d < 1 || d > OMPSIM_JIT_MAX_DEPTH || Wosize_val(vidx) < (uintnat)d)
    caml_invalid_argument("ompsim jit: bad index buffer");
  h->recover(P, (int64_t)Long_val(vpc), X);
  for (k = 0; k < d; k++) Field(vidx, k) = Val_long((intnat)X[k]);
  return Val_unit;
}

CAMLprim value ompsim_jit_block(value vh, value vp, value vpc, value vlanes)
{
  jit_handle *h = get_handle(vh);
  int64_t P[OMPSIM_JIT_MAX_PARAMS];
  int64_t *buf;
  intnat width, n;
  int d, k;
  copy_params(vp, P);
  d = (int)h->depth();
  if (d < 1 || Wosize_val(vlanes) != (uintnat)d)
    caml_invalid_argument("ompsim jit: lanes rows != depth");
  width = (intnat)Wosize_val(Field(vlanes, 0));
  for (k = 1; k < d; k++)
    if ((intnat)Wosize_val(Field(vlanes, k)) != width)
      caml_invalid_argument("ompsim jit: ragged lanes buffer");
  if (width == 0) return Val_long(0);
  buf = malloc(sizeof(int64_t) * (size_t)d * (size_t)width);
  if (buf == NULL) caml_failwith("ompsim jit: out of memory");
  n = (intnat)h->block(P, (int64_t)Long_val(vpc), (int64_t)width, buf);
  if (n < 0 || n > width) n = 0; /* defensive: a broken .so must not corrupt lanes */
  for (k = 0; k < d; k++) {
    value row = Field(vlanes, k);
    intnat l;
    for (l = 0; l < n; l++) Field(row, l) = Val_long((intnat)buf[k * width + l]);
  }
  free(buf);
  return Val_long(n);
}

/* Flat variant for the batched lane walk: the .so's ompsim_block
 * already writes a row-major int64 buffer, and an int-kind Bigarray
 * stores untagged intnat words — on 64-bit those layouts coincide, so
 * the generated code can fill the caller's buffer directly with no
 * staging malloc and no per-element boxing. Bigarray data is
 * off-heap, so handing the pointer to C is safe without pinning. */
CAMLprim value ompsim_jit_block_flat(value vh, value vp, value vpc, value vwidth, value vba)
{
  jit_handle *h = get_handle(vh);
  int64_t P[OMPSIM_JIT_MAX_PARAMS];
  intnat width = Long_val(vwidth);
  intnat n;
  int d;
  copy_params(vp, P);
  d = (int)h->depth();
  if (d < 1 || width <= 0 || Caml_ba_array_val(vba)->num_dims != 1
      || Caml_ba_array_val(vba)->dim[0] < (intnat)d * width)
    caml_invalid_argument("ompsim jit: flat lanes buffer too small");
  n = (intnat)h->block(P, (int64_t)Long_val(vpc), (int64_t)width,
                       (int64_t *)Caml_ba_data_val(vba));
  if (n < 0 || n > width) n = 0; /* defensive, as above */
  return Val_long(n);
}
