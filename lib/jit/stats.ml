let compiles = Obsv.Metrics.create "jit.compile"
let loads = Obsv.Metrics.create "jit.load"
let fallbacks = Obsv.Metrics.create "jit.fallback"
let timeouts = Obsv.Metrics.create "jit.timeout"
let breaker_opens = Obsv.Metrics.create "jit.breaker.open"
let breaker_closes = Obsv.Metrics.create "jit.breaker.close"
let breaker_rejects = Obsv.Metrics.create "jit.breaker.reject"
let breaker_probes = Obsv.Metrics.create "jit.breaker.probe"

let incr metric = if Obsv.Control.enabled () then Obsv.Metrics.incr_here metric
let fallback () = incr fallbacks
