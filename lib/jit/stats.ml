let compiles = Obsv.Metrics.create "jit.compile"
let loads = Obsv.Metrics.create "jit.load"
let fallbacks = Obsv.Metrics.create "jit.fallback"

let incr metric = if Obsv.Control.enabled () then Obsv.Metrics.incr_here metric
let fallback () = incr fallbacks
