(** The gcc driver: emitted C source -> cached shared object.

    Objects live next to the plans, one
    [<fingerprint>.<salt>.so] per plan ({!so_name}; the salt is
    {!Abi.salt}, so a compiler or ABI change never loads a stale
    binary — it just misses and recompiles). Publication is atomic
    (private temp file + rename), mirroring the plan store.

    Compiles run under {!Subproc}: [OMPSIM_JIT_TIMEOUT_MS] (default
    30000) bounds the wall clock — on expiry the compiler's process
    group is SIGKILLed and the failure counts [jit.timeout] — and the
    first ~2KB of the compiler's stderr are carried in the [Error]
    string instead of being discarded. *)

(** [so_name fp] is the cache file name for fingerprint [fp] under the
    current ABI/compiler salt. *)
val so_name : string -> string

(** [is_breaker_rejection e] is [true] when [e] is a circuit-breaker
    rejection rather than a real compile outcome. Callers that cache
    specialize failures per fingerprint (see {!Service.Native}) must
    not cache these: the breaker re-closing would otherwise leave
    fingerprints pinned to the interpreted fallback forever. *)
val is_breaker_rejection : string -> bool

(** [is_plan_error e] is [true] when [e] is a plan-shaped failure
    (the emitter rejected the inversion) rather than a toolchain
    outcome. These are the only failures it is safe to cache per
    fingerprint forever: the same plan will fail the same way on
    every retry, whereas a toolchain failure (missing compiler,
    timeout, crash) may clear up and must stay retryable. *)
val is_plan_error : string -> bool

(** [specialize ?dir ?breaker ~fingerprint inv] returns a validated
    handle to the specialized object for [inv] (a canonical plan
    inversion): loading the warm [.so] from [dir] when present and
    valid ([jit.load]), else emitting + compiling a fresh one
    ([jit.compile], under a [jit.compile] trace span) and publishing
    it in [dir]. [dir] defaults to a process-shared directory under
    the system temp dir. Corrupt or stale cache entries are silent
    misses: they are recompiled and overwritten, never surfaced.

    When [breaker] is given, fresh compiles consult it first: a
    rejected attempt returns an [Error] recognized by
    {!is_breaker_rejection} without forking the compiler, and
    toolchain outcomes (compile success/failure/timeout, unloadable
    object, unavailable compiler) feed {!Breaker.success} /
    {!Breaker.failure}. Warm loads and emit errors bypass the breaker
    entirely — emission runs {e before} the acquire, so a plan the
    emitter rejects (an [Error] recognized by {!is_plan_error}) never
    consumes a half-open probe slot, and can never leak one.

    [Error] means the native tier is unavailable for this plan (no
    compiler, emit or compile failure, breaker open) — the caller
    falls back to the interpreted walk and counts [jit.fallback]. *)
val specialize :
  ?dir:string ->
  ?breaker:Breaker.t ->
  fingerprint:string ->
  Trahrhe.Inversion.t ->
  (Native.handle, string) result
