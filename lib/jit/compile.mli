(** The gcc driver: emitted C source -> cached shared object.

    Objects live next to the plans, one
    [<fingerprint>.<salt>.so] per plan ({!so_name}; the salt is
    {!Abi.salt}, so a compiler or ABI change never loads a stale
    binary — it just misses and recompiles). Publication is atomic
    (private temp file + rename), mirroring the plan store. *)

(** [so_name fp] is the cache file name for fingerprint [fp] under the
    current ABI/compiler salt. *)
val so_name : string -> string

(** [specialize ?dir ~fingerprint inv] returns a validated handle to
    the specialized object for [inv] (a canonical plan inversion):
    loading the warm [.so] from [dir] when present and valid
    ([jit.load]), else emitting + compiling a fresh one ([jit.compile],
    under a [jit.compile] trace span) and publishing it in [dir].
    [dir] defaults to a process-shared directory under the system temp
    dir. Corrupt or stale cache entries are silent misses: they are
    recompiled and overwritten, never surfaced. [Error] means the
    native tier is unavailable for this plan (no compiler, emit or
    compile failure) — the caller falls back to the interpreted walk
    and counts [jit.fallback]. *)
val specialize :
  ?dir:string -> fingerprint:string -> Trahrhe.Inversion.t -> (Native.handle, string) result
