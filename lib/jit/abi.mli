(** The native-plan ABI: version constant and compiler salt.

    A specialized shared object is only loadable by the runtime that
    understands its symbol contract; {!version} is baked into every
    emitted object ([ompsim_abi]) and checked at load. The cache key
    additionally carries {!salt} — a digest of the ABI version and the
    C compiler's identity — so objects built by a different compiler
    (or an older ABI) are silent cache misses, never loaded. *)

(** Current ABI version, exported by every emitted object. *)
val version : int

(** [cc ()] is the C compiler command: [$OMPSIM_JIT_CC] when set and
    non-empty, else [gcc]. *)
val cc : unit -> string

(** [available ()] is [true] when the compiler can be executed. Probed
    once per process; a missing compiler makes every native request
    fall back to the interpreted walk. *)
val available : unit -> bool

(** [salt ()] is the 12-hex-char cache-key salt derived from
    {!version} and the compiler's [--version] line. *)
val salt : unit -> string
