(** The native-plan ABI: version constant and compiler salt.

    A specialized shared object is only loadable by the runtime that
    understands its symbol contract; {!version} is baked into every
    emitted object ([ompsim_abi]) and checked at load. The cache key
    additionally carries {!salt} — a digest of the ABI version and the
    C compiler's identity — so objects built by a different compiler
    (or an older ABI) are silent cache misses, never loaded. *)

(** Current ABI version, exported by every emitted object. *)
val version : int

(** [cc ()] is the C compiler command: [$OMPSIM_JIT_CC] when set and
    non-empty, else [gcc]. *)
val cc : unit -> string

(** [available ()] is [true] when the compiler can be executed. The
    probe runs under the supervised runner (bounded by
    [OMPSIM_JIT_TIMEOUT_MS], capped at 5s), so a wedged compiler
    cannot hang the process, and is memoized per compiler path —
    repointing [OMPSIM_JIT_CC] triggers a fresh probe. A missing
    compiler makes every native request fall back to the interpreted
    walk. *)
val available : unit -> bool

(** [functional ()] is [true] when the compiler actually produced a
    trivial shared object under the supervised deadline — a strictly
    stronger probe than {!available}, which a wedged wrapper script
    can satisfy by answering [--version] and then hanging on real
    work. Memoized per compiler path. Tests that assert successful
    native specialization gate on this; the service tiers do not need
    it (they bound each real compile with the deadline + circuit
    breaker and fall back per fingerprint). *)
val functional : unit -> bool

(** [salt ()] is the 12-hex-char cache-key salt derived from
    {!version} and the compiler's [--version] line. *)
val salt : unit -> string
