type handle

external raw_open : string -> handle = "ompsim_jit_open"
external raw_close : handle -> unit = "ompsim_jit_close"
external raw_abi : handle -> int = "ompsim_jit_abi"
external raw_fingerprint : handle -> string = "ompsim_jit_fingerprint"
external raw_depth : handle -> int = "ompsim_jit_depth"
external raw_params : handle -> int = "ompsim_jit_params"
external raw_trip : handle -> int array -> int = "ompsim_jit_trip"
external raw_recover : handle -> int array -> int -> int array -> unit = "ompsim_jit_recover"
external raw_walk_hash : handle -> int array -> int -> int -> int = "ompsim_jit_walk_hash"
external raw_reduce_sum : handle -> int array -> int -> int -> int = "ompsim_jit_reduce_sum"
external raw_block : handle -> int array -> int -> int array array -> int = "ompsim_jit_block"

type flat = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external raw_block_flat : handle -> int array -> int -> int -> flat -> int
  = "ompsim_jit_block_flat"

let depth = raw_depth
let params = raw_params
let close = raw_close
let trip h ps = raw_trip h ps
let walk_hash h ps ~pc ~len = raw_walk_hash h ps pc len
let reduce_sum h ps ~pc ~len = raw_reduce_sum h ps pc len
let recover h ps ~pc idx = raw_recover h ps pc idx

let fill_block h ps ~pc lanes =
  let d = raw_depth h in
  if Array.length lanes <> d then
    invalid_arg "Jit.Native.fill_block: lanes must have one row per nest level";
  let width = if d = 0 then 0 else Array.length lanes.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> width then invalid_arg "Jit.Native.fill_block: ragged lanes buffer")
    lanes;
  if width = 0 then 0 else raw_block h ps pc lanes

let fill_block_flat h ps ~pc ~width buf =
  if width <= 0 then invalid_arg "Jit.Native.fill_block_flat: width must be positive";
  if Bigarray.Array1.dim buf < raw_depth h * width then
    invalid_arg "Jit.Native.fill_block_flat: buffer shorter than depth * width";
  raw_block_flat h ps pc width buf

(* load-time validation: an object built by another ABI or for another
   plan is an error here — callers treat it as a silent cache miss *)
let load ~path ~fingerprint =
  match raw_open path with
  | exception Failure msg -> Error msg
  | h ->
    let fail msg =
      close h;
      Error msg
    in
    let abi = raw_abi h in
    if abi <> Abi.version then
      fail (Printf.sprintf "stale object: abi %d, expected %d" abi Abi.version)
    else begin
      let fp = raw_fingerprint h in
      if fp <> fingerprint then fail (Printf.sprintf "stale object: fingerprint %s" fp)
      else begin
        let d = raw_depth h and np = raw_params h in
        if d < 1 || d > 16 || np < 0 || np > 16 then fail "stale object: implausible shape"
        else Ok h
      end
    end
