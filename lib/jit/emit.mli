(** C source generation for plan-specialized shared objects.

    [source inv ~fingerprint] emits a self-contained C translation
    unit specializing the inversion's recovery functions, bound
    steppers and collapsed checksum loop, built on the
    {!Codegen.C_ast} / {!Codegen.C_print} machinery and
    {!Symx.Cemit.emit_poly_int}'s exact scaled-integer polynomial
    forms. All arithmetic is [int64] — no floating point anywhere —
    and the recovery is the per-level binary search of
    {!Trahrhe.Recovery.recover_binsearch}, so results are bit-for-bit
    identical to the interpreted pipelines (int64 wraparound truncated
    to OCaml's 63-bit ints agrees with native-int wraparound, and the
    emitter is only used on nests that passed the overflow-headroom
    check).

    Exported symbols (the ABI, version {!Abi.version}):
    - [ompsim_abi], [ompsim_fingerprint], [ompsim_depth],
      [ompsim_params] — identity, checked at load;
    - [ompsim_trip(P)] — trip count under the canonical parameter
      vector [P];
    - [ompsim_recover(P, pc, idx)] — exact index recovery of rank
      [pc];
    - [ompsim_walk_hash(P, pc, len)] — one recovery + incremental
      walk accumulating the collapsed checksum over [len] ranks;
    - [ompsim_block(P, pc, width, buf)] — one-block SoA lane fill
      (row-major, one row per level), returning lanes filled.

    The inversion must be a canonical plan ([x0..], [p0..]): any
    variable that is not an emittable C identifier is rejected with
    [Error]. *)

val source : Trahrhe.Inversion.t -> fingerprint:string -> (string, string) result
