(** Compile circuit breaker.

    A broken toolchain (missing gcc, wedged wrapper script, full disk)
    makes every fresh compile fail the same way; without a breaker
    each new fingerprint pays a full probe — up to a whole
    [OMPSIM_JIT_TIMEOUT_MS] deadline for a hang. The breaker turns
    that into bounded probes: after [threshold] {e consecutive}
    failures it opens and rejects compile attempts instantly; once
    [cooldown_ms] has passed, exactly one caller is let through as a
    half-open probe, and its result closes the breaker (success) or
    re-opens it for another cooldown (failure).

    State machine: [Closed] --threshold failures--> [Open]
    --cooldown elapsed--> [Half_open] (one probe in flight)
    --probe ok--> [Closed] / --probe fails--> [Open].

    Thread-safe; all transitions happen under an internal mutex. The
    clock is injectable so tests and the chaos harness drive
    transitions deterministically. Counters are always-on (the
    [health] verb and BENCH_chaos.json reconcile against them); the
    [jit.breaker.*] observability metrics mirror them when tracing is
    enabled. *)

type t

type state = Closed | Open | Half_open

(** [create ()] uses [threshold] (default [$OMPSIM_JIT_BREAKER_THRESHOLD]
    or 3 consecutive failures), [cooldown_ms] (default
    [$OMPSIM_JIT_BREAKER_COOLDOWN_MS] or 1000), and [now_ms] (default
    the wall clock) for the open-state cooldown. *)
val create : ?threshold:int -> ?cooldown_ms:int -> ?now_ms:(unit -> float) -> unit -> t

(** [acquire t] asks permission to attempt a compile. [true] means go
    (closed, or this caller won the half-open probe slot); [false]
    means rejected — the breaker is open and cooling down, or another
    probe is already in flight. A caller that got [true] must report
    {!success} or {!failure} exactly once. *)
val acquire : t -> bool

(** [success t] closes the breaker and resets the failure streak. *)
val success : t -> unit

(** [failure t] records a failed attempt: bumps the consecutive-failure
    streak, opens the breaker at [threshold], and re-opens it when a
    half-open probe fails. *)
val failure : t -> unit

val state : t -> state

(** current consecutive-failure streak *)
val failures : t -> int

(** times the breaker transitioned to [Open] (including re-opens) *)
val opens : t -> int

(** attempts rejected while open / probe-occupied *)
val rejections : t -> int

(** half-open probes granted *)
val probes : t -> int

(** [state_name s] is ["closed"], ["open"] or ["half-open"]. *)
val state_name : state -> string
