(** Supervised subprocess runner for the JIT tier.

    Every external process the tier forks (the C compiler, the
    [--version] probe) runs under a deadline: the child is spawned as a
    session leader with stdout/stderr captured through pipes, and when
    [OMPSIM_JIT_TIMEOUT_MS] expires the whole process group is
    SIGKILLed, so a wedged or looping toolchain costs one bounded wait
    instead of hanging every single-flight waiter. An optional
    [cpu_s] rusage cap ([ulimit -t] through [/bin/sh]) additionally
    bounds children that keep spinning after the direct child dies. *)

type outcome =
  | Exited of int  (** normal exit with the given code; 127 = exec failed *)
  | Signaled of int  (** killed by a signal (OCaml signal number) *)
  | Timed_out  (** deadline expired; the process group was SIGKILLed *)

type capture = {
  outcome : outcome;
  stdout : string;  (** first [stdout_cap] bytes of the child's stdout *)
  stderr : string;  (** first [stderr_cap] bytes of the child's stderr *)
  elapsed_ms : float;
}

(** [default_timeout_ms ()] is [OMPSIM_JIT_TIMEOUT_MS] when set to a
    positive integer, else 30000. Read per call, so tests and the
    chaos harness can rearm it. *)
val default_timeout_ms : unit -> int

(** [run prog args] spawns [prog] (resolved through [PATH]) with
    [args] (not including the argv[0] convention — it is added),
    stdin from [/dev/null], and returns once the child exits or the
    deadline fires. [timeout_ms] defaults to {!default_timeout_ms};
    [stdout_cap]/[stderr_cap] (default 2048 bytes) bound the captured
    excerpts — the pipes keep draining past the cap so a chatty child
    never blocks. [cpu_s] wraps the command in [/bin/sh -c 'ulimit -t
    n; exec ...'], capping the CPU time of the child and everything it
    execs. Never raises: spawn failures surface as [Exited 127] with
    the reason in [stderr]. *)
val run :
  ?timeout_ms:int ->
  ?cpu_s:int ->
  ?stdout_cap:int ->
  ?stderr_cap:int ->
  string ->
  string list ->
  capture

(** [describe c] renders an outcome for error messages:
    ["exited 1"], ["killed by SIGKILL"], ["timed out after 500ms"]. *)
val describe : capture -> string
