(* The .so contract is keyed by (abi_version, compiler identity): bump
   [version] whenever the exported symbols or their semantics change,
   and let a compiler upgrade invalidate cached objects through the
   salt instead of serving binaries built by a different gcc. *)
let version = 2

let cc () =
  match Sys.getenv_opt "OMPSIM_JIT_CC" with
  | Some c when c <> "" -> c
  | _ -> "gcc"

(* first line of `cc --version`, or None when the compiler cannot be
   run at all (missing binary, OMPSIM_JIT_CC pointing nowhere) *)
let probe_cc_version () =
  let cmd = Printf.sprintf "%s --version 2>/dev/null" (Filename.quote (cc ())) in
  match
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    (line, status)
  with
  | exception _ -> None
  | line, Unix.WEXITED 0 when line <> "" -> Some line
  | _ -> None

(* probed once: the compiler identity cannot change under a running
   process, and re-forking gcc per cache lookup would defeat the tier *)
let cc_version = lazy (probe_cc_version ())

let available () = Lazy.force cc_version <> None

let salt () =
  let id =
    match Lazy.force cc_version with Some v -> v | None -> "no-compiler"
  in
  let digest = Digest.to_hex (Digest.string (Printf.sprintf "abi%d|%s" version id)) in
  String.sub digest 0 12
