(* The .so contract is keyed by (abi_version, compiler identity): bump
   [version] whenever the exported symbols or their semantics change,
   and let a compiler upgrade invalidate cached objects through the
   salt instead of serving binaries built by a different gcc. *)
let version = 2

let cc () =
  match Sys.getenv_opt "OMPSIM_JIT_CC" with
  | Some c when c <> "" -> c
  | _ -> "gcc"

(* first line of `cc --version`, or None when the compiler cannot be
   run at all (missing binary, OMPSIM_JIT_CC pointing nowhere). The
   probe runs supervised: a wedged compiler script must cost one
   bounded deadline here, not an open_process hang *)
let probe_cc_version c =
  let timeout_ms = min (Subproc.default_timeout_ms ()) 5000 in
  let r = Subproc.run ~timeout_ms ~cpu_s:((timeout_ms + 999) / 1000) c [ "--version" ] in
  match r.Subproc.outcome with
  | Subproc.Exited 0 -> (
    match String.index_opt r.Subproc.stdout '\n' with
    | Some i when i > 0 -> Some (String.sub r.Subproc.stdout 0 i)
    | Some _ | None -> if r.Subproc.stdout = "" then None else Some r.Subproc.stdout)
  | _ -> None

(* memoized per compiler path: the identity of one binary cannot
   change under a running process (re-forking gcc per cache lookup
   would defeat the tier), but OMPSIM_JIT_CC itself can be repointed
   mid-process — tests and the chaos harness rely on that *)
let probe_memo : (string, string option) Hashtbl.t = Hashtbl.create 4
let probe_mutex = Mutex.create ()

let cc_version () =
  let c = cc () in
  Mutex.lock probe_mutex;
  match Hashtbl.find_opt probe_memo c with
  | Some v ->
    Mutex.unlock probe_mutex;
    v
  | None ->
    (* probe outside the lock would stampede; inside is fine — the
       probe is bounded and rare (once per distinct cc path) *)
    let v = try probe_cc_version c with _ -> None in
    Hashtbl.replace probe_memo c v;
    Mutex.unlock probe_mutex;
    v

let available () = cc_version () <> None

(* a compiler that answers --version can still be unable to produce a
   shared object (wedged wrapper script, broken install, read-only
   temp): compile one trivial .so under the supervised deadline.
   Memoized per compiler path like the version probe. *)
let probe_functional c =
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf ".ompsim-abi-probe.%d" (Unix.getpid ()))
  in
  let src = base ^ ".c" and out = base ^ ".so" in
  let cleanup () =
    List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ src; out ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let oc = open_out src in
      output_string oc "int ompsim_abi_probe(void) { return 0; }\n";
      close_out oc;
      let timeout_ms = min (Subproc.default_timeout_ms ()) 10000 in
      let r =
        Subproc.run ~timeout_ms
          ~cpu_s:((timeout_ms + 999) / 1000)
          c
          [ "-O0"; "-shared"; "-fPIC"; "-o"; out; src ]
      in
      match r.Subproc.outcome with Subproc.Exited 0 -> Sys.file_exists out | _ -> false)

let functional_memo : (string, bool) Hashtbl.t = Hashtbl.create 4

let functional () =
  available ()
  &&
  let c = cc () in
  Mutex.lock probe_mutex;
  match Hashtbl.find_opt functional_memo c with
  | Some v ->
    Mutex.unlock probe_mutex;
    v
  | None ->
    let v = try probe_functional c with _ -> false in
    Hashtbl.replace functional_memo c v;
    Mutex.unlock probe_mutex;
    v

let salt () =
  let id = match cc_version () with Some v -> v | None -> "no-compiler" in
  let digest = Digest.to_hex (Digest.string (Printf.sprintf "abi%d|%s" version id)) in
  String.sub digest 0 12
