module P = Polymath.Polynomial
module A = Polymath.Affine
module N = Trahrhe.Nest
module C = Codegen.C_ast

exception Error of string

let i64 = "omp_i64"
let u64 = "omp_u64"

(* every internal identifier is omp_-prefixed, so canonical nest names
   (x0.., p0.., pc) can never collide; anything else is rejected *)
let c_keywords =
  [ "auto"; "break"; "case"; "char"; "const"; "continue"; "default"; "do"; "double";
    "else"; "enum"; "extern"; "float"; "for"; "goto"; "if"; "inline"; "int"; "long";
    "register"; "restrict"; "return"; "short"; "signed"; "sizeof"; "static"; "struct";
    "switch"; "typedef"; "union"; "unsigned"; "void"; "volatile"; "while"; "int64_t";
    "uint64_t" ]

let check_ident what s =
  let ok =
    String.length s > 0
    && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
         s
    && not (String.length s >= 4 && String.sub s 0 4 = "omp_")
    && not (List.mem s c_keywords)
  in
  if not ok then raise (Error (Printf.sprintf "%s %S is not an emittable C identifier" what s))

type ctx = { params : string array; lvars : string array; pc_var : string }

let index_of a x =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) = x then Some i else go (i + 1) in
  go 0

(* bind the variables of [p] to C locals: parameters from omp_P,
   level vars 0..avail-1 from omp_x, and (optionally) the probed level
   var from a given expression *)
let bindings ctx ?probe ~avail p =
  P.vars p
  |> List.map (fun v ->
         let init =
           match probe with
           | Some (pv, e) when pv = v -> e
           | _ -> (
             match index_of ctx.params v with
             | Some i -> Printf.sprintf "omp_P[%d]" i
             | None -> (
               match index_of ctx.lvars v with
               | Some j when j < avail -> Printf.sprintf "omp_x[%d]" j
               | Some j ->
                 raise
                   (Error
                      (Printf.sprintf "level variable %s (level %d) used above level %d" v j
                         avail))
               | None ->
                 if v = ctx.pc_var then
                   raise (Error ("collapsed index " ^ v ^ " appears in a bound polynomial"))
                 else raise (Error ("unbound variable " ^ v))))
         in
         C.Decl { ty = "const " ^ i64; name = v; init = Some init })

let ret_poly p = C.Raw (Printf.sprintf "return %s;" (Symx.Cemit.emit_poly_int p ~ty:i64))

(* silence unused-parameter warnings in bound helpers whose polynomial
   happens to not mention omp_P or omp_x *)
let use_args names =
  C.Raw (String.concat " " (List.map (fun a -> Printf.sprintf "(void)%s;" a) names))

let fn buf ~ret ~name ~args body =
  Buffer.add_string buf (Printf.sprintf "%s %s(%s) {\n" ret name args);
  Buffer.add_string buf (Codegen.C_print.to_string ~indent:1 body);
  Buffer.add_string buf "}\n\n"

let poly_fn buf ctx ~name ?probe ~avail ~extra_args p =
  let args = Printf.sprintf "const %s *omp_P, const %s *omp_x%s" i64 i64 extra_args in
  fn buf ~ret:("static " ^ i64) ~name ~args
    ([ use_args [ "omp_P"; "omp_x" ] ] @ bindings ctx ?probe ~avail p @ [ ret_poly p ])

let source (inv : Trahrhe.Inversion.t) ~fingerprint =
  try
    let nest = inv.Trahrhe.Inversion.nest in
    let d = N.depth nest in
    let params = Array.of_list nest.N.params in
    let lvars = Array.of_list (N.level_vars nest) in
    if d < 1 then raise (Error "empty nest");
    if d > 16 then raise (Error "nest too deep for the native ABI");
    if Array.length params > 16 then raise (Error "too many parameters for the native ABI");
    Array.iter (check_ident "parameter") params;
    Array.iter (check_ident "level variable") lvars;
    let ctx = { params; lvars; pc_var = inv.Trahrhe.Inversion.pc_var } in
    let levels = Array.of_list nest.N.levels in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "/* ompsim native plan specialization (generated)\n\
         \   fingerprint: %s\n\
         \   abi: %d */\n\
          #include <stdint.h>\n\n\
          typedef int64_t %s;\n\
          typedef uint64_t %s;\n\n\
          static const char omp_fp[] = \"%s\";\n\n"
         fingerprint Abi.version i64 u64 fingerprint);
    fn buf ~ret:i64 ~name:"ompsim_abi" ~args:"void"
      [ C.Raw (Printf.sprintf "return %d;" Abi.version) ];
    fn buf ~ret:"const char *" ~name:"ompsim_fingerprint" ~args:"void"
      [ C.Raw "return omp_fp;" ];
    fn buf ~ret:i64 ~name:"ompsim_depth" ~args:"void" [ C.Raw (Printf.sprintf "return %d;" d) ];
    fn buf ~ret:i64 ~name:"ompsim_params" ~args:"void"
      [ C.Raw (Printf.sprintf "return %d;" (Array.length params)) ];
    let trip = inv.Trahrhe.Inversion.trip_count in
    fn buf ~ret:i64 ~name:"ompsim_trip" ~args:(Printf.sprintf "const %s *omp_P" i64)
      ([ use_args [ "omp_P" ] ] @ bindings ctx ~avail:0 trip @ [ ret_poly trip ]);
    (* per-level bound and prefix-rank helpers *)
    for k = 0 to d - 1 do
      poly_fn buf ctx ~name:(Printf.sprintf "omp_lo_%d" k) ~avail:k ~extra_args:""
        (A.to_poly levels.(k).N.lower);
      poly_fn buf ctx ~name:(Printf.sprintf "omp_up_%d" k) ~avail:k ~extra_args:""
        (A.to_poly levels.(k).N.upper);
      poly_fn buf ctx
        ~name:(Printf.sprintf "omp_rsub_%d" k)
        ~probe:(lvars.(k), "omp_v") ~avail:k
        ~extra_args:(Printf.sprintf ", %s omp_v" i64)
        inv.Trahrhe.Inversion.r_sub.(k)
    done;
    (* bound refresh for one level, prefix already final *)
    fn buf ~ret:"static void" ~name:"omp_rebound"
      ~args:
        (Printf.sprintf "const %s *omp_P, const %s *omp_x, %s *omp_lo, %s *omp_hi, int omp_q"
           i64 i64 i64 i64)
      (List.init d (fun q ->
           C.If
             { cond = Printf.sprintf "omp_q == %d" q;
               then_ =
                 [ C.Assign
                     (Printf.sprintf "omp_lo[%d]" q, Printf.sprintf "omp_lo_%d(omp_P, omp_x)" q);
                   C.Assign
                     (Printf.sprintf "omp_hi[%d]" q, Printf.sprintf "omp_up_%d(omp_P, omp_x)" q)
                 ];
               else_ = [] }));
    (* exact recovery: per-level binary search on the monotone prefix
       rank, identical to Recovery.recover_binsearch. Deliberately
       independent of the plan's level_recovery kinds: Numeric levels
       (degree > 4 rankings) specialize to exactly this bracketed
       search, so numeric plans keep the native tier engaged with no
       emitter dispatch at all. *)
    fn buf ~ret:"void" ~name:"ompsim_recover"
      ~args:(Printf.sprintf "const %s *omp_P, %s omp_pc, %s *omp_x" i64 i64 i64)
      (List.concat
         (List.init d (fun k ->
              [ C.Block
                  [ C.Decl
                      { ty = i64;
                        name = "omp_a";
                        init = Some (Printf.sprintf "omp_lo_%d(omp_P, omp_x)" k) };
                    C.Decl
                      { ty = i64;
                        name = "omp_b";
                        init = Some (Printf.sprintf "omp_up_%d(omp_P, omp_x) - 1" k) };
                    C.While
                      { cond = "omp_a < omp_b";
                        body =
                          [ C.Decl
                              { ty = i64;
                                name = "omp_m";
                                init = Some "omp_a + (omp_b - omp_a + 1) / 2" };
                            C.If
                              { cond =
                                  Printf.sprintf "omp_rsub_%d(omp_P, omp_x, omp_m) <= omp_pc" k;
                                then_ = [ C.Assign ("omp_a", "omp_m") ];
                                else_ = [ C.Assign ("omp_b", "omp_m - 1") ] } ] };
                    C.Assign (Printf.sprintf "omp_x[%d]" k, "omp_a") ] ])));
    let rebound_all =
      C.For
        { init = "int omp_q = 0";
          cond = Printf.sprintf "omp_q < %d" d;
          step = "omp_q++";
          body = [ C.Raw "omp_rebound(omp_P, omp_x, omp_lo, omp_hi, omp_q);" ] }
    in
    let carry ~after_exhausted =
      [ C.Raw (Printf.sprintf "omp_x[%d] += omp_run;" (d - 1));
        C.Decl { ty = "int"; name = "omp_k"; init = Some (string_of_int (d - 2)) };
        C.While
          { cond = "omp_k >= 0 && omp_x[omp_k] + 1 >= omp_hi[omp_k]";
            body = [ C.Raw "omp_k--;" ] };
        C.If { cond = "omp_k < 0"; then_ = [ C.Raw "break;" ]; else_ = [] };
        C.Raw "omp_x[omp_k] += 1;";
        C.For
          { init = "int omp_q = omp_k + 1";
            cond = Printf.sprintf "omp_q < %d" d;
            step = "omp_q++";
            body =
              [ C.Raw "omp_rebound(omp_P, omp_x, omp_lo, omp_hi, omp_q);";
                C.Raw "omp_x[omp_q] = omp_lo[omp_q];" ] } ]
      @ after_exhausted
    in
    (* one-recovery chunk walk accumulating the collapsed checksum:
       outer-prefix hash is hoisted out of each innermost lockstep run *)
    let ph_unrolled =
      List.init (d - 1) (fun k ->
          C.Raw (Printf.sprintf "omp_ph = omp_ph * 1000003u + (%s)omp_x[%d];" u64 k))
    in
    fn buf ~ret:u64 ~name:"ompsim_walk_hash"
      ~args:(Printf.sprintf "const %s *omp_P, %s omp_pc, %s omp_len" i64 i64 i64)
      ([ C.Decl { ty = i64; name = Printf.sprintf "omp_x[%d]" d; init = None };
         C.Decl { ty = i64; name = Printf.sprintf "omp_lo[%d]" d; init = None };
         C.Decl { ty = i64; name = Printf.sprintf "omp_hi[%d]" d; init = None };
         C.Decl { ty = u64; name = "omp_acc"; init = Some "0" };
         C.Decl { ty = i64; name = "omp_rem"; init = None };
         C.Decl { ty = i64; name = "omp_trip"; init = Some "ompsim_trip(omp_P)" };
         C.If
           { cond = "omp_len <= 0 || omp_pc < 1 || omp_pc > omp_trip";
             then_ = [ C.Raw "return 0;" ];
             else_ = [] };
         C.If
           { cond = "omp_len > omp_trip - omp_pc + 1";
             then_ = [ C.Assign ("omp_len", "omp_trip - omp_pc + 1") ];
             else_ = [] };
         C.Raw "ompsim_recover(omp_P, omp_pc, omp_x);";
         rebound_all;
         C.Assign ("omp_rem", "omp_len");
         C.For
           { init = "";
             cond = "";
             step = "";
             body =
               [ C.Decl { ty = u64; name = "omp_ph"; init = Some "0" } ]
               @ ph_unrolled
               @ [ C.Decl
                     { ty = i64;
                       name = "omp_run";
                       init = Some (Printf.sprintf "omp_hi[%d] - omp_x[%d]" (d - 1) (d - 1)) };
                   C.If
                     { cond = "omp_run > omp_rem";
                       then_ = [ C.Assign ("omp_run", "omp_rem") ];
                       else_ = [] };
                   C.Decl { ty = u64; name = "omp_base"; init = Some "omp_ph * 1000003u" };
                   C.Decl
                     { ty = u64;
                       name = "omp_v";
                       init = Some (Printf.sprintf "(%s)omp_x[%d]" u64 (d - 1)) };
                   C.For
                     { init = Printf.sprintf "%s omp_r = 0" i64;
                       cond = "omp_r < omp_run";
                       step = "omp_r++";
                       body =
                         [ C.Raw
                             (Printf.sprintf "omp_acc += omp_base + omp_v + (%s)omp_r;" u64)
                         ] };
                   C.Raw "omp_rem -= omp_run;";
                   C.If { cond = "omp_rem <= 0"; then_ = [ C.Raw "break;" ]; else_ = [] } ]
               @ carry ~after_exhausted:[] } ]
      @ [ C.Raw "return omp_acc;" ]);
    (* reduction value and the native int64 sum walk: always exported —
       the dlopen shim resolves every symbol — evaluating the clause's
       value polynomial (constant 0 when the plan carries no clause) at
       each recovered iteration, with the same u64 wraparound as the
       checksum walk so the truncated result matches the interpreted
       native-int accumulation bit for bit *)
    let rvalue =
      match nest.N.reduce with
      | Some r -> r.N.value
      | None -> P.const Zmath.Rat.zero
    in
    poly_fn buf ctx ~name:"omp_val"
      ~probe:(lvars.(d - 1), "omp_iv")
      ~avail:(d - 1)
      ~extra_args:(Printf.sprintf ", %s omp_iv" i64)
      rvalue;
    fn buf ~ret:u64 ~name:"ompsim_reduce_sum"
      ~args:(Printf.sprintf "const %s *omp_P, %s omp_pc, %s omp_len" i64 i64 i64)
      ([ C.Decl { ty = i64; name = Printf.sprintf "omp_x[%d]" d; init = None };
         C.Decl { ty = i64; name = Printf.sprintf "omp_lo[%d]" d; init = None };
         C.Decl { ty = i64; name = Printf.sprintf "omp_hi[%d]" d; init = None };
         C.Decl { ty = u64; name = "omp_acc"; init = Some "0" };
         C.Decl { ty = i64; name = "omp_rem"; init = None };
         C.Decl { ty = i64; name = "omp_trip"; init = Some "ompsim_trip(omp_P)" };
         C.If
           { cond = "omp_len <= 0 || omp_pc < 1 || omp_pc > omp_trip";
             then_ = [ C.Raw "return 0;" ];
             else_ = [] };
         C.If
           { cond = "omp_len > omp_trip - omp_pc + 1";
             then_ = [ C.Assign ("omp_len", "omp_trip - omp_pc + 1") ];
             else_ = [] };
         C.Raw "ompsim_recover(omp_P, omp_pc, omp_x);";
         rebound_all;
         C.Assign ("omp_rem", "omp_len");
         C.For
           { init = "";
             cond = "";
             step = "";
             body =
               [ C.Decl
                   { ty = i64;
                     name = "omp_run";
                     init = Some (Printf.sprintf "omp_hi[%d] - omp_x[%d]" (d - 1) (d - 1)) };
                 C.If
                   { cond = "omp_run > omp_rem";
                     then_ = [ C.Assign ("omp_run", "omp_rem") ];
                     else_ = [] };
                 C.Decl
                   { ty = i64;
                     name = "omp_v0";
                     init = Some (Printf.sprintf "omp_x[%d]" (d - 1)) };
                 C.For
                   { init = Printf.sprintf "%s omp_r = 0" i64;
                     cond = "omp_r < omp_run";
                     step = "omp_r++";
                     body =
                       [ C.Raw
                           (Printf.sprintf "omp_acc += (%s)omp_val(omp_P, omp_x, omp_v0 + omp_r);"
                              u64)
                       ] };
                 C.Raw "omp_rem -= omp_run;";
                 C.If { cond = "omp_rem <= 0"; then_ = [ C.Raw "break;" ]; else_ = [] } ]
               @ carry ~after_exhausted:[] } ]
      @ [ C.Raw "return omp_acc;" ]);
    (* one-block SoA lane fill (row-major buffer, one row per level) *)
    fn buf ~ret:i64 ~name:"ompsim_block"
      ~args:
        (Printf.sprintf "const %s *omp_P, %s omp_pc, %s omp_width, %s *omp_buf" i64 i64 i64 i64)
      ([ C.Decl { ty = i64; name = Printf.sprintf "omp_x[%d]" d; init = None };
         C.Decl { ty = i64; name = Printf.sprintf "omp_lo[%d]" d; init = None };
         C.Decl { ty = i64; name = Printf.sprintf "omp_hi[%d]" d; init = None };
         C.Decl { ty = i64; name = "omp_trip"; init = Some "ompsim_trip(omp_P)" };
         C.Decl { ty = i64; name = "omp_len"; init = None };
         C.Decl { ty = i64; name = "omp_n"; init = Some "0" };
         C.If
           { cond = "omp_width <= 0 || omp_pc < 1 || omp_pc > omp_trip";
             then_ = [ C.Raw "return 0;" ];
             else_ = [] };
         C.Assign ("omp_len", "omp_trip - omp_pc + 1");
         C.If
           { cond = "omp_len > omp_width";
             then_ = [ C.Assign ("omp_len", "omp_width") ];
             else_ = [] };
         C.Raw "ompsim_recover(omp_P, omp_pc, omp_x);";
         rebound_all;
         C.For
           { init = "";
             cond = "";
             step = "";
             body =
               [ C.Decl
                   { ty = i64;
                     name = "omp_run";
                     init = Some (Printf.sprintf "omp_hi[%d] - omp_x[%d]" (d - 1) (d - 1)) };
                 C.If
                   { cond = "omp_run > omp_len - omp_n";
                     then_ = [ C.Assign ("omp_run", "omp_len - omp_n") ];
                     else_ = [] } ]
               @ List.init (d - 1) (fun k ->
                     C.For
                       { init = Printf.sprintf "%s omp_r = 0" i64;
                         cond = "omp_r < omp_run";
                         step = "omp_r++";
                         body =
                           [ C.Raw
                               (Printf.sprintf
                                  "omp_buf[%d * omp_width + omp_n + omp_r] = omp_x[%d];" k k)
                           ] })
               @ [ C.For
                     { init = Printf.sprintf "%s omp_r = 0" i64;
                       cond = "omp_r < omp_run";
                       step = "omp_r++";
                       body =
                         [ C.Raw
                             (Printf.sprintf
                                "omp_buf[%d * omp_width + omp_n + omp_r] = omp_x[%d] + omp_r;"
                                (d - 1) (d - 1)) ] };
                   C.Raw "omp_n += omp_run;";
                   C.If { cond = "omp_n >= omp_len"; then_ = [ C.Raw "break;" ]; else_ = [] } ]
               @ carry ~after_exhausted:[] } ]
      @ [ C.Raw "return omp_n;" ]);
    Ok (Buffer.contents buf)
  with Error msg -> Result.Error ("jit emit: " ^ msg)
