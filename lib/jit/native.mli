(** dlopen bindings to a plan-specialized shared object.

    A {!handle} owns one [dlopen]ed object; the resolved entry points
    are pure C over caller-provided buffers, so one handle is safe to
    use concurrently from any number of domains. Handles are never
    finalized implicitly — the JIT cache keeps them for the process
    lifetime; {!close} exists for tests.

    Parameter vectors are the canonical parameter values of the plan,
    in [nest.params] order (at most 16, enforced at load and call). *)

type handle

(** [load ~path ~fingerprint] opens and validates a shared object:
    resolvable symbols, ABI version {!Abi.version}, matching
    fingerprint, plausible depth/parameter counts. Any failure —
    unreadable file, missing symbol, stale ABI, foreign fingerprint —
    returns [Error]; callers treat it as a silent cache miss and
    recompile. *)
val load : path:string -> fingerprint:string -> (handle, string) result

(** [close h] dlcloses the object; subsequent calls through [h] raise
    [Failure]. *)
val close : handle -> unit

val depth : handle -> int
val params : handle -> int

(** [trip h ps] is the collapsed trip count under parameters [ps]. *)
val trip : handle -> int array -> int

(** [walk_hash h ps ~pc ~len] is the native collapsed checksum walk:
    one in-object recovery at rank [pc], then the hash sum over the
    next [len] ranks (clamped to the iteration space; 0 when [pc] is
    outside it). Runs with the OCaml runtime lock released. *)
val walk_hash : handle -> int array -> pc:int -> len:int -> int

(** [reduce_sum h ps ~pc ~len] is the native int64 sum reduction over
    the chunk \[[pc], [pc+len-1]\]: one in-object recovery, then the
    clause's value polynomial accumulated with u64 wraparound (0 when
    [pc] is outside the space, or when the plan carries no reduction
    clause — the symbol is always exported). Runs with the OCaml
    runtime lock released. *)
val reduce_sum : handle -> int array -> pc:int -> len:int -> int

(** [recover h ps ~pc idx] writes the recovered indices of rank [pc]
    into [idx] (length >= depth).
    @raise Invalid_argument on an undersized buffer. *)
val recover : handle -> int array -> pc:int -> int array -> unit

(** [fill_block h ps ~pc lanes] fills the SoA buffer with consecutive
    ranks from [pc]; same contract as
    {!Trahrhe.Recovery.recover_block}.
    @raise Invalid_argument on a misshapen buffer. *)
val fill_block : handle -> int array -> pc:int -> int array array -> int

(** A flat row-major lane buffer: level [k]'s value for the [l]-th rank
    of a fill at stride [width] lives at index [k * width + l]. An
    int-kind Bigarray stores untagged machine words off-heap, so the
    specialized C fills it directly — no staging copy, no boxing. *)
type flat = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [fill_block_flat h ps ~pc ~width buf] fills up to [width]
    consecutive ranks from [pc] into [buf] at stride [width], one row
    per nest level; returns ranks filled (0 when [pc] is outside the
    space).
    @raise Invalid_argument when [width <= 0] or [buf] is shorter than
    [depth * width]. *)
val fill_block_flat : handle -> int array -> pc:int -> width:int -> flat -> int
