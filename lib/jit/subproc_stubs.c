/* Supervised spawn for the JIT compile runner.
 *
 * Unix.fork is unavailable once domains exist, and Unix.create_process
 * offers no session control, so the runner spawns through
 * posix_spawnp: the child is made a session leader (POSIX_SPAWN_SETSID)
 * so an expired deadline can SIGKILL the entire process group — gcc's
 * cc1/as children included — and stdout/stderr are wired to the pipe
 * write ends handed in by the caller. stdin comes from /dev/null: a
 * compiler must never wait on our terminal.
 */
#define _GNU_SOURCE
#include <errno.h>
#include <fcntl.h>
#include <spawn.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

extern char **environ;

/* spawn prog argv with fds 1/2 dup'd from out_fd/err_fd.
   Returns the child pid, or the negated errno on spawn failure. */
CAMLprim value ompsim_subproc_spawn(value v_prog, value v_argv, value v_out_fd,
                                    value v_err_fd)
{
  CAMLparam4(v_prog, v_argv, v_out_fd, v_err_fd);
  int n = Wosize_val(v_argv);
  char **argv = caml_stat_alloc((n + 1) * sizeof *argv);
  for (int i = 0; i < n; i++)
    argv[i] = caml_stat_strdup(String_val(Field(v_argv, i)));
  argv[n] = NULL;
  char *prog = caml_stat_strdup(String_val(v_prog));

  posix_spawn_file_actions_t fa;
  posix_spawnattr_t attr;
  posix_spawn_file_actions_init(&fa);
  posix_spawn_file_actions_addopen(&fa, 0, "/dev/null", O_RDONLY, 0);
  posix_spawn_file_actions_adddup2(&fa, Int_val(v_out_fd), 1);
  posix_spawn_file_actions_adddup2(&fa, Int_val(v_err_fd), 2);
  posix_spawnattr_init(&attr);
  short flags = 0;
#ifdef POSIX_SPAWN_SETSID
  flags |= POSIX_SPAWN_SETSID;
#endif
  posix_spawnattr_setflags(&attr, flags);

  pid_t pid = -1;
  int rc = posix_spawnp(&pid, prog, &fa, &attr, argv, environ);

  posix_spawn_file_actions_destroy(&fa);
  posix_spawnattr_destroy(&attr);
  for (int i = 0; i < n; i++)
    caml_stat_free(argv[i]);
  caml_stat_free(argv);
  caml_stat_free(prog);

  if (rc != 0)
    CAMLreturn(Val_long(-(long)rc));
  CAMLreturn(Val_long((long)pid));
}
