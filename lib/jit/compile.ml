let so_name fingerprint = Printf.sprintf "%s.%s.so" fingerprint (Abi.salt ())

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with _ -> ""

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)

let first_lines ?(n = 4) s =
  String.split_on_char '\n' (String.trim s)
  |> List.filteri (fun i _ -> i < n)
  |> String.concat "; "

(* gcc -O2 -shared -fPIC into a private temp object, then rename into
   place: concurrent readers see the old object or the new one, never
   a torn write — the same atomic-publish discipline as the plan
   store *)
let compile_so ~src_path ~out_path =
  let log = out_path ^ ".log" in
  let cmd =
    Printf.sprintf "%s -O2 -shared -fPIC -o %s %s 2>%s" (Abi.cc ()) (Filename.quote out_path)
      (Filename.quote src_path) (Filename.quote log)
  in
  let status = Sys.command cmd in
  let diagnostics = read_file log in
  (try Sys.remove log with Sys_error _ -> ());
  if status = 0 then Ok ()
  else
    Error
      (Printf.sprintf "%s exited %d%s" (Abi.cc ()) status
         (if diagnostics = "" then "" else ": " ^ first_lines diagnostics))

let fresh_compile ~dir ~fingerprint inv =
  Obsv.Trace.with_span "jit.compile" @@ fun () ->
  match Emit.source inv ~fingerprint with
  | Error _ as e -> e
  | Ok src -> (
    try
      mkdir_p dir;
      let pid = Unix.getpid () in
      let src_path = Filename.concat dir (Printf.sprintf ".%s.%d.c" fingerprint pid) in
      let tmp_so = Filename.concat dir (Printf.sprintf ".%s.%d.so" fingerprint pid) in
      write_file src_path src;
      let result = compile_so ~src_path ~out_path:tmp_so in
      (try Sys.remove src_path with Sys_error _ -> ());
      match result with
      | Error _ as e ->
        (try Sys.remove tmp_so with Sys_error _ -> ());
        e
      | Ok () ->
        let path = Filename.concat dir (so_name fingerprint) in
        Unix.rename tmp_so path;
        Stats.incr Stats.compiles;
        Ok path
    with Sys_error e | Unix.Unix_error (_, _, e) -> Error ("jit compile: " ^ e))

let specialize ?dir ~fingerprint inv =
  let dir =
    match dir with
    | Some d -> d
    | None -> Filename.concat (Filename.get_temp_dir_name ()) "ompsim-jit"
  in
  let path = Filename.concat dir (so_name fingerprint) in
  let warm =
    if Sys.file_exists path then begin
      (* corrupt, stale or foreign objects are silent misses: fall
         through to a fresh compile that overwrites the bad entry *)
      match Native.load ~path ~fingerprint with
      | Ok h ->
        Stats.incr Stats.loads;
        Some h
      | Error _ -> None
    end
    else None
  in
  match warm with
  | Some h -> Ok h
  | None -> (
    if not (Abi.available ()) then Error (Printf.sprintf "C compiler %S unavailable" (Abi.cc ()))
    else begin
      match fresh_compile ~dir ~fingerprint inv with
      | Error _ as e -> e
      | Ok path -> Native.load ~path ~fingerprint
    end)
