let so_name fingerprint = Printf.sprintf "%s.%s.so" fingerprint (Abi.salt ())

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)

(* stderr excerpt carried in structured failures: capped by the runner
   at ~2KB, trimmed, newlines folded so the excerpt stays one logical
   token in error strings and JSON error responses *)
let stderr_excerpt s =
  let s = String.trim s in
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let has_prefix prefix e =
  String.length e >= String.length prefix && String.sub e 0 (String.length prefix) = prefix

let breaker_prefix = "breaker:"
let is_breaker_rejection e = has_prefix breaker_prefix e

let plan_prefix = "plan:"
let is_plan_error e = has_prefix plan_prefix e

(* gcc -O2 -shared -fPIC into a private temp object, then rename into
   place: concurrent readers see the old object or the new one, never
   a torn write — the same atomic-publish discipline as the plan
   store. The compile runs supervised: OMPSIM_JIT_TIMEOUT_MS bounds
   the wall clock (SIGKILL of the whole compiler process group on
   expiry), a doubled rusage cap bounds CPU spinning, and the first
   ~2KB of stderr ride along in the failure instead of a discarded
   log file. *)
let compile_so ~src_path ~out_path =
  let cc = Abi.cc () in
  let timeout_ms = Subproc.default_timeout_ms () in
  let r =
    Subproc.run ~timeout_ms
      ~cpu_s:(2 * ((timeout_ms + 999) / 1000))
      cc
      [ "-O2"; "-shared"; "-fPIC"; "-o"; out_path; src_path ]
  in
  match r.Subproc.outcome with
  | Subproc.Exited 0 -> Ok ()
  | Subproc.Timed_out ->
    Stats.incr Stats.timeouts;
    Error (Printf.sprintf "%s %s (OMPSIM_JIT_TIMEOUT_MS=%d)" cc (Subproc.describe r) timeout_ms)
  | _ ->
    let diagnostics = stderr_excerpt r.Subproc.stderr in
    Error
      (Printf.sprintf "%s %s%s" cc (Subproc.describe r)
         (if diagnostics = "" then "" else ": " ^ diagnostics))

let fresh_compile ~dir ~fingerprint ~src =
  Obsv.Trace.with_span "jit.compile" @@ fun () ->
  try
    mkdir_p dir;
    let pid = Unix.getpid () in
    let src_path = Filename.concat dir (Printf.sprintf ".%s.%d.c" fingerprint pid) in
    let tmp_so = Filename.concat dir (Printf.sprintf ".%s.%d.so" fingerprint pid) in
    write_file src_path src;
    let result = compile_so ~src_path ~out_path:tmp_so in
    (try Sys.remove src_path with Sys_error _ -> ());
    match result with
    | Error _ as e ->
      (try Sys.remove tmp_so with Sys_error _ -> ());
      e
    | Ok () ->
      let path = Filename.concat dir (so_name fingerprint) in
      Unix.rename tmp_so path;
      Stats.incr Stats.compiles;
      Ok path
  with Sys_error e | Unix.Unix_error (_, _, e) -> Error ("jit compile: " ^ e)

(* toolchain outcomes feed the breaker; emit errors do not — they are
   plan-shaped, and tripping the breaker on one odd nest would reject
   compiles of healthy plans. [specialize] runs emission BEFORE the
   breaker is consulted, so by the time this runs the source is in
   hand and every outcome below is a toolchain verdict: a plan error
   can neither trip the breaker nor consume (and leak) the half-open
   probe slot the acquire handed out. *)
let run_gated ?breaker ~dir ~fingerprint ~src () =
  let note ok =
    match breaker with
    | None -> ()
    | Some b -> if ok then Breaker.success b else Breaker.failure b
  in
  if not (Abi.available ()) then begin
    note false;
    Error (Printf.sprintf "C compiler %S unavailable" (Abi.cc ()))
  end
  else begin
    match fresh_compile ~dir ~fingerprint ~src with
    | Error _ as e ->
      note false;
      e
    | Ok path -> (
      match Native.load ~path ~fingerprint with
      | Ok _ as ok ->
        note true;
        ok
      | Error _ as e ->
        (* the toolchain produced an unloadable object: that is a
           toolchain failure, not a plan failure *)
        note false;
        e)
  end

let specialize ?dir ?breaker ~fingerprint inv =
  let dir =
    match dir with
    | Some d -> d
    | None -> Filename.concat (Filename.get_temp_dir_name ()) "ompsim-jit"
  in
  let path = Filename.concat dir (so_name fingerprint) in
  let warm =
    if Sys.file_exists path then begin
      (* corrupt, stale or foreign objects are silent misses: fall
         through to a fresh compile that overwrites the bad entry *)
      match Native.load ~path ~fingerprint with
      | Ok h ->
        Stats.incr Stats.loads;
        Some h
      | Error _ -> None
    end
    else None
  in
  match warm with
  | Some h -> Ok h
  | None -> (
    (* emission is pure plan work: it runs before the breaker so a
       plan-shaped failure never consumes an acquire — in particular
       it can never take the single half-open probe slot and return
       without settling it, which would wedge the breaker half-open
       (and the native tier off) for the rest of the process *)
    match Emit.source inv ~fingerprint with
    | Error e -> Error (Printf.sprintf "%s %s" plan_prefix e)
    | Ok src -> (
      match breaker with
      | Some b when not (Breaker.acquire b) ->
        Error
          (Printf.sprintf "%s compile circuit %s after %d consecutive failures" breaker_prefix
             (Breaker.state_name (Breaker.state b))
             (Breaker.failures b))
      | _ -> run_gated ?breaker ~dir ~fingerprint ~src ()))
