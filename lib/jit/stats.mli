(** Observability counters of the JIT tier ([jit.hit] lives in
    {!Trahrhe.Recovery}, next to the walks it counts):
    - [jit.compile] — fresh gcc compiles of a specialized object;
    - [jit.load] — warm [.so] loads served from the cache directory;
    - [jit.fallback] — native requests that fell back to the
      interpreted walk (no compiler, compile/load failure, or an
      overflow-guarded nest). *)

val compiles : Obsv.Metrics.t
val loads : Obsv.Metrics.t
val fallbacks : Obsv.Metrics.t

(** [incr m] bumps [m] when the observability layer is enabled. *)
val incr : Obsv.Metrics.t -> unit

(** [fallback ()] is [incr fallbacks]. *)
val fallback : unit -> unit
