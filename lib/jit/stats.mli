(** Observability counters of the JIT tier ([jit.hit] lives in
    {!Trahrhe.Recovery}, next to the walks it counts):
    - [jit.compile] — fresh gcc compiles of a specialized object;
    - [jit.load] — warm [.so] loads served from the cache directory;
    - [jit.fallback] — native requests that fell back to the
      interpreted walk (no compiler, compile/load failure, or an
      overflow-guarded nest);
    - [jit.timeout] — supervised compiles killed by the
      [OMPSIM_JIT_TIMEOUT_MS] deadline;
    - [jit.breaker.open]/[close] — circuit-breaker transitions;
    - [jit.breaker.reject] — compile attempts refused while open;
    - [jit.breaker.probe] — half-open probes granted. *)

val compiles : Obsv.Metrics.t
val loads : Obsv.Metrics.t
val fallbacks : Obsv.Metrics.t
val timeouts : Obsv.Metrics.t
val breaker_opens : Obsv.Metrics.t
val breaker_closes : Obsv.Metrics.t
val breaker_rejects : Obsv.Metrics.t
val breaker_probes : Obsv.Metrics.t

(** [incr m] bumps [m] when the observability layer is enabled. *)
val incr : Obsv.Metrics.t -> unit

(** [fallback ()] is [incr fallbacks]. *)
val fallback : unit -> unit
