type outcome = Exited of int | Signaled of int | Timed_out

type capture = {
  outcome : outcome;
  stdout : string;
  stderr : string;
  elapsed_ms : float;
}

(* the C stub posix_spawns the child as a session leader with fds 1/2
   dup'd from the two pipe write ends; returns the pid, or a negated
   errno when the spawn itself failed *)
external spawn :
  string -> string array -> Unix.file_descr -> Unix.file_descr -> int
  = "ompsim_subproc_spawn"

let now_ms () = Unix.gettimeofday () *. 1000.

let default_timeout_ms () =
  match Sys.getenv_opt "OMPSIM_JIT_TIMEOUT_MS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> 30000)
  | None -> 30000

(* one captured stream: bytes kept up to [cap], drained forever (a
   child blocked on a full pipe would dodge its own deadline) *)
type stream = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  cap : int;
  mutable eof : bool;
}

let read_stream chunk s =
  match Unix.read s.fd chunk 0 (Bytes.length chunk) with
  | 0 ->
    s.eof <- true;
    Unix.close s.fd
  | n ->
    let keep = min n (max 0 (s.cap - Buffer.length s.buf)) in
    if keep > 0 then Buffer.add_subbytes s.buf chunk 0 keep
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) ->
    s.eof <- true;
    (try Unix.close s.fd with Unix.Unix_error _ -> ())

let run ?timeout_ms ?cpu_s ?(stdout_cap = 2048) ?(stderr_cap = 2048) prog args =
  let timeout_ms =
    match timeout_ms with Some t -> max 1 t | None -> default_timeout_ms ()
  in
  let prog, args =
    match cpu_s with
    | None -> (prog, args)
    | Some n ->
      (* ulimit -t is inherited across exec, so the cap also covers
         compiler children that outlive a killed driver *)
      ( "/bin/sh",
        [ "-c"; Printf.sprintf "ulimit -t %d 2>/dev/null; exec \"$@\"" (max 1 n); "sh"; prog ]
        @ args )
  in
  let argv = Array.of_list (prog :: args) in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let err_r, err_w = Unix.pipe ~cloexec:true () in
  let start = now_ms () in
  let finish outcome stdout stderr =
    { outcome; stdout; stderr; elapsed_ms = now_ms () -. start }
  in
  let pid = spawn prog argv out_w err_w in
  Unix.close out_w;
  Unix.close err_w;
  if pid <= 0 then begin
    Unix.close out_r;
    Unix.close err_r;
    finish (Exited 127) "" (Printf.sprintf "spawn %s failed (errno %d)" prog (-pid))
  end
  else begin
    let streams =
      [ { fd = out_r; buf = Buffer.create 256; cap = stdout_cap; eof = false };
        { fd = err_r; buf = Buffer.create 256; cap = stderr_cap; eof = false } ]
    in
    let chunk = Bytes.create 4096 in
    let deadline = start +. float_of_int timeout_ms in
    let status = ref None in
    let timed_out = ref false in
    let live () = List.filter (fun s -> not s.eof) streams in
    let pump_ready fds ready =
      List.iter (fun s -> if List.mem s.fd ready then read_stream chunk s) fds
    in
    let reap_kill () =
      (* the child is a session leader: -pid reaches the whole group
         (cc1, as, ...); the direct kill is the fallback when setsid
         was unavailable at spawn *)
      (try Unix.kill (-pid) Sys.sigkill with Unix.Unix_error _ -> ());
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      match Unix.waitpid [] pid with
      | _, st -> status := Some st
      | exception Unix.Unix_error _ -> ()
    in
    let rec pump () =
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _, st -> status := Some st
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> status := Some (Unix.WEXITED 127));
      if !status = None then begin
        let remaining = deadline -. now_ms () in
        if remaining <= 0. then begin
          timed_out := true;
          reap_kill ()
        end
        else begin
          let fds = live () in
          let wait_s = Float.min (remaining /. 1000.) 0.05 in
          (match Unix.select (List.map (fun s -> s.fd) fds) [] [] wait_s with
          | ready, _, _ -> pump_ready fds ready
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          pump ()
        end
      end
    in
    pump ();
    (* the child is gone; pick up whatever the pipes still buffer.
       Zero-timeout selects so grandchildren holding the write ends
       (possible after a group kill) cannot wedge us here *)
    let rec drain () =
      match live () with
      | [] -> ()
      | fds -> (
        match Unix.select (List.map (fun s -> s.fd) fds) [] [] 0. with
        | [], _, _ -> ()
        | ready, _, _ ->
          pump_ready fds ready;
          drain ()
        | exception Unix.Unix_error _ -> ())
    in
    drain ();
    List.iter
      (fun s -> if not s.eof then try Unix.close s.fd with Unix.Unix_error _ -> ())
      streams;
    let outcome =
      if !timed_out then Timed_out
      else
        match !status with
        | Some (Unix.WEXITED n) -> Exited n
        | Some (Unix.WSIGNALED n) | Some (Unix.WSTOPPED n) -> Signaled n
        | None -> Exited 127
    in
    match streams with
    | [ out; err ] -> finish outcome (Buffer.contents out.buf) (Buffer.contents err.buf)
    | _ -> assert false
  end

let signal_name n =
  if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigint then "SIGINT"
  else if n = Sys.sigxcpu then "SIGXCPU"
  else if n = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" n

let describe c =
  match c.outcome with
  | Exited n -> Printf.sprintf "exited %d" n
  | Signaled n -> Printf.sprintf "killed by %s" (signal_name n)
  | Timed_out -> Printf.sprintf "timed out after %.0fms" c.elapsed_ms
