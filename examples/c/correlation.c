/* The paper's motivating example (Fig. 1): a correlation computation
   whose i/j loops are parallel but non-rectangular. OpenMP rejects the
   collapse clause on this nest; run the tool to rewrite it:

     dune exec bin/trahrhe.exe -- collapse examples/c/correlation.c

   (add --scheme naive | per-thread | chunked:N | simd:N, --guarded) */
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
#include <complex.h>

#define N 1500
static double a[N][N], b[N][N], c[N][N];

int main(void) {
  long i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      b[i][j] = (double)((i * 7 + j) % 13) / 3.0;
      c[i][j] = (double)((i - 2 * j) % 11) / 5.0;
    }

  #pragma omp parallel for private(j, k) schedule(static) collapse(2)
  for (i = 0; i < N - 1; i++)
    for (j = i + 1; j < N; j++) {
      for (k = 0; k < N; k++)
        a[i][j] += b[k][i] * c[k][j];
      a[j][i] = a[i][j];
    }

  double h = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      h += a[i][j] * (double)(i + 2 * j + 1);
  printf("%.12e\n", h);
  return 0;
}
