/* The paper's 3-depth example (Fig. 6): collapsing all three loops
   needs a cubic root evaluated through complex arithmetic (Fig. 7).

     dune exec bin/trahrhe.exe -- collapse examples/c/tetrahedral.c --guarded */
#include <stdio.h>
#include <math.h>
#include <complex.h>

#define N 400
static double s[N];

int main(void) {
  long i, j, k;

  #pragma omp parallel for private(j, k) schedule(static) collapse(3)
  for (i = 0; i < N - 1; i++)
    for (j = 0; j < i + 1; j++)
      for (k = j; k < i + 1; k++)
        s[i] += (double)(j - k) * 0.25;

  double h = 0.0;
  for (i = 0; i < N; i++) h += s[i] * (double)(i + 1);
  printf("%.12e\n", h);
  return 0;
}
