/* Non-unit strides (extension over the paper): the front-end rewrites
   the stride-4 loop onto a unit-stride surrogate iterator.

     dune exec bin/trahrhe.exe -- collapse examples/c/strided.c --scheme chunked:256 */
#include <stdio.h>

#define N 512
static double a[4 * N];

int main(void) {
  long i, j;

  #pragma omp parallel for private(j) schedule(static) collapse(2)
  for (i = 0; i < 4 * N; i += 4)
    for (j = i; j < 4 * N; j++)
      a[j % (4 * N)] += (double)(i + j) * 0.5;

  double h = 0.0;
  for (i = 0; i < 4 * N; i++) h += a[i] * (double)(i % 7 + 1);
  printf("%.12e\n", h);
  return 0;
}
