(* Execute a collapsed nest for real on OCaml 5 domains.

   The collapsed single loop is handed to an OpenMP-like parallel_for;
   each chunk performs one costly index recovery and then walks the
   iteration space by cheap incrementation (§V) — here via
   Recovery.walk, whose bound updates use compiled finite-difference
   tables. Regions are dispatched to the warm persistent domain pool
   (Ompsim.Pool); the pre-pool spawn-per-region path is kept for
   comparison. All schedules and both backends must produce the exact
   same matrix as the sequential nest.

   Run with: dune exec examples/parallel_domains.exe *)

module A = Polymath.Affine
module Q = Zmath.Rat

let n = 500

let () =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = A.const Q.zero; upper = A.make [ ("N", Q.one) ] Q.minus_one };
        { var = "j"; lower = A.make [ ("i", Q.one) ] Q.one; upper = A.var "N" } ]
  in
  let inv = Trahrhe.Inversion.invert_exn nest in
  let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> n) in
  let trip = Trahrhe.Recovery.trip_count rc in
  Printf.printf "correlation N=%d: %d collapsed iterations\n" n trip;

  let reference = Array.make (n * n) 0.0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      reference.((i * n) + j) <- float_of_int ((i * j) mod 101) /. 7.0
    done
  done;

  let run backend schedule =
    let a = Array.make (n * n) 0.0 in
    let t0 = Unix.gettimeofday () in
    Ompsim.Par.with_backend backend (fun () ->
        Ompsim.Par.parallel_for_chunks ~nthreads:8 ~schedule ~n:trip
          (fun ~thread:_ ~start ~len ->
            (* pc ranges are 1-based; one costly recovery per chunk,
               then finite-difference-stepped incrementation *)
            Trahrhe.Recovery.walk rc ~pc:(start + 1) ~len (fun idx ->
                let i = idx.(0) and j = idx.(1) in
                a.((i * n) + j) <- float_of_int ((i * j) mod 101) /. 7.0)));
    let dt = Unix.gettimeofday () -. t0 in
    (a, dt)
  in
  List.iter
    (fun (backend, bname) ->
      List.iter
        (fun schedule ->
          let a, dt = run backend schedule in
          Printf.printf "  %-5s schedule(%-11s): %s in %.1f ms\n" bname
            (Ompsim.Schedule.to_string schedule)
            (if a = reference then "exact match with sequential nest" else "MISMATCH")
            (1000.0 *. dt))
        [ Ompsim.Schedule.Static;
          Ompsim.Schedule.Static_chunk 1024;
          Ompsim.Schedule.Dynamic 512;
          Ompsim.Schedule.Guided 256 ])
    [ (Ompsim.Par.Pool, "pool"); (Ompsim.Par.Spawn, "spawn") ];
  Printf.printf "persistent pool workers alive: %d\n" (Ompsim.Pool.size ())
