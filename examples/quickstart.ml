(* Quickstart: collapse the paper's motivating correlation nest
   (Figure 1) through the public API, inspect the mathematics, and emit
   the OpenMP C of Figures 3 and 4.

   Run with: dune exec examples/quickstart.exe *)

module A = Polymath.Affine
module Q = Zmath.Rat

let () =
  (* the nest of Fig. 1:
       for (i = 0; i < N-1; i++)
         for (j = i+1; j < N; j++)  ...                                *)
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = A.const Q.zero; upper = A.make [ ("N", Q.one) ] Q.minus_one };
        { var = "j"; lower = A.make [ ("i", Q.one) ] Q.one; upper = A.var "N" } ]
  in

  (* 1. the ranking Ehrhart polynomial and the collapsed trip count *)
  Printf.printf "ranking polynomial  r(i,j) = %s\n"
    (Polymath.Polynomial.to_string (Trahrhe.Ranking.ranking nest));
  Printf.printf "trip count          = %s\n\n"
    (Polymath.Polynomial.to_string (Trahrhe.Ranking.trip_count nest));

  (* 2. invert it: closed forms for each index *)
  let inv = Trahrhe.Inversion.invert_exn nest in
  Array.iter
    (function
      | Trahrhe.Inversion.Root { var; expr; _ } ->
        Printf.printf "%s = floor( %s )\n" var (Symx.Expr.to_string expr)
      | Trahrhe.Inversion.Last { var; poly } ->
        Printf.printf "%s = %s\n" var (Polymath.Polynomial.to_string poly)
      | Trahrhe.Inversion.Numeric { var; r_sub_index } ->
        Printf.printf "%s = numeric(r_sub_%d)\n" var r_sub_index)
    inv.Trahrhe.Inversion.recoveries;

  (* 3. check the whole pipeline exhaustively at a small size *)
  let report = Trahrhe.Validate.check inv ~param:(fun _ -> 40) in
  Printf.printf "\nvalidation at N=40: %s\n\n"
    (if Trahrhe.Validate.all_ok report then "all recoveries exact on all 780 iterations"
     else "FAILED");

  (* 4. generate the OpenMP C of the paper's Figure 3 (naive) and
        Figure 4 (once-per-thread recovery + incrementation) *)
  let body =
    [ Codegen.C_ast.Raw "for (k = 0; k < N; k++) a[i][j] += b[k][i] * c[k][j];";
      Codegen.C_ast.Raw "a[j][i] = a[i][j];" ]
  in
  let config = { Codegen.Schemes.default_config with extra_private = [ "k" ] } in
  print_endline "---- Figure 3: naive collapsed loop ----";
  print_string (Codegen.C_print.to_string (Codegen.Schemes.naive ~config inv ~body));
  print_endline "\n---- Figure 4: per-thread recovery ----";
  print_string (Codegen.C_print.to_string (Codegen.Schemes.per_thread ~config inv ~body))
