(* The paper's 3-depth example (Figures 6-8): a tetrahedral nest whose
   outermost index needs a *cubic* root that transits through complex
   arithmetic — pc = 1 makes the discriminant negative even though the
   final value is the real number 0 (paper §IV-C).

   Run with: dune exec examples/triangular_3d.exe *)

module A = Polymath.Affine
module Q = Zmath.Rat
module P = Polymath.Polynomial

let () =
  (* for (i = 0; i < N-1; i++)
       for (j = 0; j < i+1; j++)
         for (k = j; k < i+1; k++) S(i,j,k);                           *)
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = A.const Q.zero; upper = A.make [ ("N", Q.one) ] Q.minus_one };
        { var = "j"; lower = A.const Q.zero; upper = A.make [ ("i", Q.one) ] Q.one };
        { var = "k"; lower = A.var "j"; upper = A.make [ ("i", Q.one) ] Q.one } ]
  in
  let ranking = Trahrhe.Ranking.ranking nest in
  Printf.printf "ranking r(i,j,k) = %s\n" (P.to_string ranking);
  Printf.printf "trip count       = %s   (the paper's (N^3 - N)/6)\n\n"
    (P.to_string (Trahrhe.Ranking.trip_count nest));

  let inv = Trahrhe.Inversion.invert_exn nest in
  Array.iter
    (function
      | Trahrhe.Inversion.Root { var; mode; expr } ->
        Printf.printf "%s recovered by a degree-%s closed form [%s evaluation]\n" var
          (if var = "i" then "3 (Cardano)" else "2")
          (match mode with Symx.Cemit.Real -> "real" | Complex -> "complex");
        Printf.printf "   %s = floor(%s)\n" var (Symx.Expr.to_string expr)
      | Trahrhe.Inversion.Last { var; poly } ->
        Printf.printf "%s = %s   [exact]\n" var (P.to_string poly)
      | Trahrhe.Inversion.Numeric { var; r_sub_index } ->
        Printf.printf "%s = numeric(r_sub_%d)   [certified root isolation]\n" var r_sub_index)
    inv.Trahrhe.Inversion.recoveries;

  (* Figure 8: the curves r(i,0,0) - pc — all parallel, so the number
     and order of symbolic roots is the same for every pc (§IV-D) *)
  print_endline "\nFigure 8 series: r(i,0,0) - pc  (N = 10)";
  let r_i00 = inv.Trahrhe.Inversion.r_sub.(0) in
  print_string "      i:";
  let steps = List.init 12 (fun s -> -2.5 +. (0.5 *. float_of_int s)) in
  List.iter (fun x -> Printf.printf "%7.1f" x) steps;
  print_newline ();
  for pc = 1 to 10 do
    Printf.printf "pc = %2d:" pc;
    List.iter
      (fun x ->
        let v =
          P.eval_float (function "i" -> x | "N" -> 10.0 | v -> failwith v) r_i00
          -. float_of_int pc
        in
        Printf.printf "%7.2f" v)
      steps;
    print_newline ()
  done;

  (* Figure 7: the generated collapsed code uses cpow/csqrt/creal *)
  print_endline "\n---- Figure 7: collapsed 3-depth loop (complex recovery) ----";
  let body = [ Codegen.C_ast.Raw "S(i, j, k);" ] in
  print_string (Codegen.C_print.to_string (Codegen.Schemes.naive inv ~body));

  (* and the recovery really is exact once guarded *)
  let report = Trahrhe.Validate.check inv ~param:(fun _ -> 30) in
  Printf.printf
    "\nvalidation at N=30: raw floor %d/%d exact; guarded %d/%d; binary search %d/%d\n"
    report.Trahrhe.Validate.closed_form_ok report.Trahrhe.Validate.iterations
    report.Trahrhe.Validate.guarded_ok report.Trahrhe.Validate.iterations
    report.Trahrhe.Validate.binsearch_ok report.Trahrhe.Validate.iterations
