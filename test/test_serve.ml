(* The non-blocking serve loop (ISSUE 7): framing-layer properties
   (re-chunking invariance, CRLF/empty/overflow cases), then e2e
   concurrency over a real Unix domain socket — multiplexed clients
   get byte-identical responses to the serial [Server.handle], a
   pipelining client is answered in order under a tiny admission cap,
   a slow reader cannot stall the loop, graceful drain flushes every
   in-flight response before the socket disappears, a connect burst
   beyond the old hardcoded backlog is served, and the serve_stats
   record reconciles against the obsv counters. *)

module Cache = Service.Cache
module Server = Service.Server
module Framing = Service.Framing

let rand = Random.State.make [| 0x5e47e100 |]
let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~rand) tests

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------------------------------------------------------------- *)
(* Framing: properties                                               *)
(* ---------------------------------------------------------------- *)

(* drain the framer, stopping at the first [`Overflow] (it is sticky) *)
let pops framer =
  let rec go acc =
    match Framing.pop framer with
    | `Pending -> List.rev acc
    | `Overflow -> List.rev (`O :: acc)
    | `Line l -> go (`L l :: acc)
  in
  go []

let show_pops ps =
  String.concat ";"
    (List.map (function `O -> "<overflow>" | `L l -> Printf.sprintf "%S" l) ps)

let feed_chunks framer stream sizes =
  let n = String.length stream in
  let rec go off sizes =
    if off < n then
      match sizes with
      | [] -> Framing.feed_string framer (String.sub stream off (n - off))
      | s :: rest ->
        let len = min s (n - off) in
        Framing.feed_string framer (String.sub stream off len);
        go (off + len) rest
  in
  go 0 sizes

let gen_line_content =
  (* printable bytes: no '\n' and no '\r', so "split on terminators"
     is unambiguous as the reference model *)
  QCheck.Gen.(
    map
      (fun l -> String.concat "" (List.map (String.make 1) l))
      (list_size (int_range 0 40) (map Char.chr (int_range 32 126))))

let gen_chunk_sizes = QCheck.Gen.(list_size (int_range 0 60) (int_range 1 7))

let prop_frame_rechunk_equals_split =
  (* random re-chunking at arbitrary byte boundaries = the line list
     the stream was built from, CRLF or LF per line *)
  let arb =
    QCheck.make
      ~print:(fun (lines, sizes) ->
        Printf.sprintf "lines=[%s] sizes=[%s]"
          (String.concat ";" (List.map (Printf.sprintf "%S") (List.map fst lines)))
          (String.concat ";" (List.map string_of_int sizes)))
      QCheck.Gen.(pair (list_size (int_range 0 12) (pair gen_line_content bool)) gen_chunk_sizes)
  in
  QCheck.Test.make ~name:"framing: any re-chunking yields the stream's lines" ~count:500 arb
    (fun (lines, sizes) ->
      let stream =
        String.concat "" (List.map (fun (l, crlf) -> l ^ if crlf then "\r\n" else "\n") lines)
      in
      let framer = Framing.create () in
      feed_chunks framer stream sizes;
      let got = pops framer in
      let want = List.map (fun (l, _) -> `L l) lines in
      if got <> want then
        QCheck.Test.fail_reportf "got %s, want %s" (show_pops got) (show_pops want)
      else true)

let prop_frame_chunking_invariant =
  (* metamorphic: over arbitrary bytes (terminators and CRs anywhere,
     overflows included via a small max_line), every chunking of the
     same stream pops the same sequence as feeding it whole *)
  let gen_byte =
    QCheck.Gen.(
      frequency [ (6, map Char.chr (int_range 32 126)); (2, return '\n'); (1, return '\r') ])
  in
  let arb =
    QCheck.make
      ~print:(fun (s, sizes) ->
        Printf.sprintf "stream=%S sizes=[%s]" s
          (String.concat ";" (List.map string_of_int sizes)))
      QCheck.Gen.(
        pair
          (map
             (fun l -> String.concat "" (List.map (String.make 1) l))
             (list_size (int_range 0 80) gen_byte))
          gen_chunk_sizes)
  in
  QCheck.Test.make ~name:"framing: chunking never changes the pop sequence" ~count:500 arb
    (fun (stream, sizes) ->
      let whole = Framing.create ~max_line:10 () in
      Framing.feed_string whole stream;
      let chunked = Framing.create ~max_line:10 () in
      feed_chunks chunked stream sizes;
      let a = pops whole and b = pops chunked in
      if a <> b then QCheck.Test.fail_reportf "whole %s, chunked %s" (show_pops a) (show_pops b)
      else true)

(* ---------------------------------------------------------------- *)
(* Framing: pinned cases                                             *)
(* ---------------------------------------------------------------- *)

let test_frame_crlf_and_empty () =
  let f = Framing.create () in
  Framing.feed_string f "a\r\n\n\r\nb\r\rc\n";
  Alcotest.(check (list string))
    "CRLF strips one CR, empty lines are real, inner CRs survive"
    [ "a"; ""; ""; "b\r\rc" ]
    (List.map (function `L l -> l | `O -> "<overflow>") (pops f))

let test_frame_partial_then_rest () =
  let f = Framing.create () in
  Framing.feed_string f "hel";
  Alcotest.(check int) "partial line buffered" 3 (Framing.buffered f);
  (match Framing.pop f with
  | `Pending -> ()
  | _ -> Alcotest.fail "partial line must not pop");
  Framing.feed_string f "lo\nwo";
  (match Framing.pop f with
  | `Line l -> Alcotest.(check string) "joined across feeds" "hello" l
  | _ -> Alcotest.fail "expected a line");
  Alcotest.(check int) "next partial buffered" 2 (Framing.buffered f)

let test_frame_overflow_terminal () =
  let f = Framing.create ~max_line:4 () in
  Framing.feed_string f "ok\nabcdef\nignored\nrest";
  (match pops f with
  | [ `L "ok"; `O ] -> ()
  | ps -> Alcotest.failf "expected ok then overflow, got %s" (show_pops ps));
  (* sticky: later feeds are discarded and pop stays Overflow *)
  Framing.feed_string f "more\n";
  (match Framing.pop f with
  | `Overflow -> ()
  | _ -> Alcotest.fail "overflow must be terminal");
  Alcotest.(check bool) "overflowed" true (Framing.overflowed f);
  Alcotest.(check int) "no bytes retained" 0 (Framing.buffered f)

let test_frame_overflow_without_terminator () =
  (* an unterminated line one byte past max_line+CR overflows without
     waiting for '\n', so memory stays bounded *)
  let f = Framing.create ~max_line:4 () in
  Framing.feed_string f "abcd\r";
  Alcotest.(check bool) "max_line + CR still pending" false (Framing.overflowed f);
  Framing.feed_string f "x";
  Alcotest.(check bool) "one more byte overflows" true (Framing.overflowed f);
  (* boundary: content of exactly max_line with CRLF is a legal line *)
  let g = Framing.create ~max_line:4 () in
  Framing.feed_string g "abcd\r\n";
  match Framing.pop g with
  | `Line l -> Alcotest.(check string) "max_line content survives CRLF" "abcd" l
  | _ -> Alcotest.fail "expected a line"

(* ---------------------------------------------------------------- *)
(* e2e helpers                                                       *)
(* ---------------------------------------------------------------- *)

let connect ?(tries = 250) socket =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
      Unix.close fd;
      Unix.sleepf 0.02;
      go (tries - 1)
    | exception e ->
      Unix.close fd;
      raise e
  in
  go tries

let send_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

(* read exactly [n] response lines (the protocol says one per request,
   so anything beyond them would be a framing bug on the server side) *)
let recv_lines fd n =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let newlines = ref 0 in
  while !newlines < n do
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> failwith (Printf.sprintf "eof after %d of %d lines: %s" !newlines n (Buffer.contents buf))
    | r ->
      for i = 0 to r - 1 do
        if Bytes.get chunk i = '\n' then incr newlines
      done;
      Buffer.add_subbytes buf chunk 0 r
  done;
  let parts = String.split_on_char '\n' (Buffer.contents buf) in
  List.filteri (fun i _ -> i < n) parts

let recv_eof fd =
  let chunk = Bytes.create 64 in
  let rec go () =
    match Unix.read fd chunk 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ()

let sock_counter = ref 0

(* run [f socket] against a live server and return its value together
   with the serve_stats the loop reported; [f] must make the server
   exit (shutdown request or signal) before returning its last word *)
let with_server ?(config = Server.default_serve_config) ?cache f =
  incr sock_counter;
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ompsim-serve-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let cache = match cache with Some c -> c | None -> Cache.create ~capacity:64 ~dir:None () in
  let server = Domain.spawn (fun () -> Server.serve ~cache ~config ~socket ()) in
  let rec wait_ready tries =
    if not (Sys.file_exists socket) then
      if tries = 0 then Alcotest.fail "server socket never appeared"
      else begin
        Unix.sleepf 0.01;
        wait_ready (tries - 1)
      end
  in
  wait_ready 500;
  let value =
    try f socket
    with e ->
      (* don't leave the loop running on a failing test *)
      (try
         let fd = connect ~tries:1 socket in
         send_all fd "shutdown\n";
         Unix.close fd
       with _ -> ());
      ignore (Domain.join server);
      raise e
  in
  match Domain.join server with
  | Ok stats -> (value, stats)
  | Error e -> Alcotest.failf "serve failed: %s" e

(* expected responses come from the serial [handle] on a private cache:
   responses are deterministic and cache-state-independent, so the
   multiplexed server must reproduce them byte for byte *)
let expected_line line =
  match Server.parse_request line with
  | Ok (Some req) ->
    let cache = Cache.create ~capacity:16 ~dir:None () in
    fst (Server.handle cache req)
  | Ok None -> Alcotest.failf "no response for blank line %S" line
  | Error e -> Alcotest.failf "unparseable request %S: %s" line e

let client_requests c =
  [ Printf.sprintf "compile params=N levels=i=0..N,j=i..N+%d label=c%d" c c;
    Printf.sprintf "exec params=N=8 levels=i=0..N,j=i..N+%d label=x%d threads=2 repeat=2" c c;
    Printf.sprintf "exec kernel=utma n=10 threads=2 label=k%d" c ]

let check_responses what reqs got =
  List.iter2
    (fun req line -> Alcotest.(check string) (what ^ ": " ^ req) (expected_line req) line)
    reqs got

(* ---------------------------------------------------------------- *)
(* e2e: multiplexed clients vs the serial server                     *)
(* ---------------------------------------------------------------- *)

let test_serve_multi_client_byte_identical () =
  let nclients = 4 in
  let (results, _), stats =
    with_server @@ fun socket ->
    let run c () =
      let fd = connect socket in
      let got =
        List.map
          (fun req ->
            send_all fd (req ^ "\n");
            List.hd (recv_lines fd 1))
          (client_requests c)
      in
      Unix.close fd;
      got
    in
    let domains = List.init nclients (fun c -> Domain.spawn (run c)) in
    let results = List.map Domain.join domains in
    let fd = connect socket in
    send_all fd "shutdown\n";
    let ack = List.hd (recv_lines fd 1) in
    Unix.close fd;
    (results, ack)
  in
  List.iteri (fun c got -> check_responses (Printf.sprintf "client %d" c) (client_requests c) got) results;
  Alcotest.(check int) "connections" (nclients + 1) stats.Server.connections;
  Alcotest.(check int) "requests" ((nclients * 3) + 1) stats.Server.requests;
  Alcotest.(check int) "error responses" 0 stats.Server.error_responses;
  Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped;
  (match stats.Server.stopped_by with
  | `Shutdown -> ()
  | `Signal -> Alcotest.fail "expected shutdown stop")

let test_serve_pipelined_in_order () =
  (* all requests in one write, under an admission cap smaller than
     the batch: the loop must park framed lines at the cap and still
     answer strictly in order *)
  let reqs =
    List.concat_map client_requests [ 0; 1 ] @ [ "exec params=N=5 levels=i=0..N,j=i..N label=z" ]
  in
  let config = { Server.default_serve_config with max_inflight = 2 } in
  let got, stats =
    with_server ~config @@ fun socket ->
    let fd = connect socket in
    send_all fd (String.concat "\n" reqs ^ "\nshutdown\n");
    let lines = recv_lines fd (List.length reqs + 1) in
    Unix.close fd;
    lines
  in
  let ack = List.nth got (List.length reqs) in
  check_responses "pipelined" reqs (List.filteri (fun i _ -> i < List.length reqs) got);
  if not (contains ~needle:"\"op\":\"shutdown\",\"status\":\"ok\"" ack) then
    Alcotest.failf "bad shutdown ack: %s" ack;
  Alcotest.(check int) "requests admitted" (List.length reqs + 1) stats.Server.requests

let test_serve_slow_reader_no_stall () =
  let slow_reqs = List.init 12 (fun i -> Printf.sprintf "exec kernel=utma n=%d threads=2 label=s%d" (6 + i) i) in
  let (slow_got, fast_got), stats =
    with_server @@ fun socket ->
    (* the slow reader floods requests and reads nothing... *)
    let slow = connect socket in
    send_all slow (String.concat "\n" slow_reqs ^ "\n");
    (* ...while a well-behaved client does sequential round trips;
       SO_RCVTIMEO turns a stalled loop into a test failure *)
    let fast = connect socket in
    let fast_got =
      List.map
        (fun req ->
          send_all fast (req ^ "\n");
          List.hd (recv_lines fast 1))
        (client_requests 3)
    in
    Unix.close fast;
    (* the slow reader's responses were never lost, only buffered *)
    let slow_got = recv_lines slow (List.length slow_reqs) in
    Unix.close slow;
    let fd = connect socket in
    send_all fd "shutdown\n";
    ignore (recv_lines fd 1);
    Unix.close fd;
    (slow_got, fast_got)
  in
  check_responses "fast client" (client_requests 3) fast_got;
  check_responses "slow client" slow_reqs slow_got;
  Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped

(* ---------------------------------------------------------------- *)
(* e2e: drain                                                        *)
(* ---------------------------------------------------------------- *)

let test_serve_drain_under_load () =
  (* [shutdown] arrives pipelined behind five requests, with another
     client sitting idle: every earlier response must be flushed
     before the socket disappears, and the idle peer gets EOF *)
  let reqs = List.init 5 (fun i -> Printf.sprintf "exec kernel=utma n=%d threads=2 label=d%d" (5 + i) i) in
  let (got, ack, idle_eof), stats =
    with_server @@ fun socket ->
    let idle = connect socket in
    let fd = connect socket in
    send_all fd (String.concat "\n" reqs ^ "\nshutdown\n");
    let lines = recv_lines fd (List.length reqs + 1) in
    let ack = List.nth lines (List.length reqs) in
    Unix.close fd;
    recv_eof idle;
    Unix.close idle;
    (List.filteri (fun i _ -> i < List.length reqs) lines, ack, true)
  in
  check_responses "drained" reqs got;
  if not (contains ~needle:"\"op\":\"shutdown\",\"status\":\"ok\"" ack) then
    Alcotest.failf "bad shutdown ack: %s" ack;
  Alcotest.(check bool) "idle peer saw EOF" true idle_eof;
  Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped;
  Alcotest.(check int) "admission counter back to zero" 0 stats.Server.inflight_final

let test_serve_sigterm_drains () =
  let (resp, eof), stats =
    with_server @@ fun socket ->
    let fd = connect socket in
    send_all fd "exec kernel=utma n=9 threads=2 label=sig\n";
    let resp = List.hd (recv_lines fd 1) in
    Unix.kill (Unix.getpid ()) Sys.sigterm;
    recv_eof fd;
    Unix.close fd;
    (resp, true)
  in
  Alcotest.(check string) "response before signal" (expected_line "exec kernel=utma n=9 threads=2 label=sig") resp;
  Alcotest.(check bool) "EOF after drain" true eof;
  (match stats.Server.stopped_by with
  | `Signal -> ()
  | `Shutdown -> Alcotest.fail "expected signal stop");
  Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped

let test_serve_socket_unlinked () =
  let socket_path, _ =
    with_server @@ fun socket ->
    let fd = connect socket in
    send_all fd "shutdown\n";
    ignore (recv_lines fd 1);
    Unix.close fd;
    socket
  in
  Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists socket_path)

(* ---------------------------------------------------------------- *)
(* e2e: protocol edges                                               *)
(* ---------------------------------------------------------------- *)

let test_serve_oversized_line_rejected () =
  let (reject, eof), stats =
    with_server @@ fun socket ->
    let fd = connect socket in
    send_all fd (String.make 9000 'x' ^ "\n");
    let reject = List.hd (recv_lines fd 1) in
    recv_eof fd;
    Unix.close fd;
    let fd = connect socket in
    send_all fd "shutdown\n";
    ignore (recv_lines fd 1);
    Unix.close fd;
    (reject, true)
  in
  Alcotest.(check string)
    "one deterministic rejection, then close"
    "{\"op\":\"parse\",\"label\":\"-\",\"status\":\"error\",\"error\":\"request line exceeds 8192 bytes\"}"
    reject;
  Alcotest.(check bool) "connection closed after reject" true eof;
  Alcotest.(check int) "rejected counted" 1 stats.Server.rejected

let test_serve_request_timeout () =
  (* timeout 0 expires before the first run deterministically, so the
     multiplexed response must equal the serial deadline response *)
  let req = "exec params=N=8 levels=i=0..N,j=i..N label=slow repeat=3" in
  let config = { Server.default_serve_config with request_timeout_ms = Some 0 } in
  let line, stats =
    with_server ~config @@ fun socket ->
    let fd = connect socket in
    send_all fd (req ^ "\n");
    let line = List.hd (recv_lines fd 1) in
    send_all fd "shutdown\n";
    ignore (recv_lines fd 1);
    Unix.close fd;
    line
  in
  let serial =
    match Server.parse_request req with
    | Ok (Some r) -> fst (Server.handle ~deadline_ms:0 (Cache.create ~capacity:4 ~dir:None ()) r)
    | _ -> Alcotest.fail "bad request"
  in
  Alcotest.(check string) "timeout response matches serial" serial line;
  if not (contains ~needle:"request deadline expired (timeout 0ms)" line) then
    Alcotest.failf "unexpected timeout line: %s" line;
  Alcotest.(check int) "timeout counted" 1 stats.Server.timeouts

let test_handle_deadline () =
  let cache = Cache.create ~capacity:8 ~dir:None () in
  let req line =
    match Server.parse_request line with
    | Ok (Some r) -> r
    | _ -> Alcotest.failf "bad request %S" line
  in
  let r = "exec params=N=6 levels=i=0..N,j=i..N label=t repeat=2" in
  let line0, ok0 = Server.handle ~deadline_ms:0 cache (req r) in
  Alcotest.(check bool) "timeout 0 fails" false ok0;
  if not (contains ~needle:"request deadline expired (timeout 0ms)" line0) then
    Alcotest.failf "unexpected timeout line: %s" line0;
  (* a generous deadline routes through the supervised runner yet
     answers byte-identically to the plain path *)
  let line1, ok1 = Server.handle ~deadline_ms:60_000 cache (req r) in
  let line2, ok2 = Server.handle cache (req r) in
  Alcotest.(check bool) "deadlined run ok" true ok1;
  Alcotest.(check bool) "plain run ok" true ok2;
  Alcotest.(check string) "deadline does not change the response" line2 line1;
  (* compile requests are never deadlined *)
  let linec, okc = Server.handle ~deadline_ms:0 cache (req "compile kernel=utma") in
  Alcotest.(check bool) "compile unaffected by deadline" true okc;
  if not (contains ~needle:"\"status\":\"ok\"" linec) then Alcotest.failf "bad compile: %s" linec

(* ---------------------------------------------------------------- *)
(* e2e: backlog burst (regression for the hardcoded listen backlog)  *)
(* ---------------------------------------------------------------- *)

let test_serve_backlog_burst () =
  (* the old loop listened with a hardcoded backlog of 8: while the
     server was busy executing, the 9th simultaneous connect bounced
     with ECONNREFUSED. The backlog now derives from max_clients, so
     a burst of 12 queued connects must all get served. *)
  let config = { Server.default_serve_config with max_clients = 24 } in
  let burst = 12 in
  let (heavy_resp, burst_got), stats =
    with_server ~config @@ fun socket ->
    let heavy = connect socket in
    (* cold compile + a fat repeated walk keeps the loop busy in the
       handler while the burst arrives *)
    let heavy_req = "exec params=N=300 levels=i=0..N,j=i..N+9 label=heavy threads=2 repeat=6" in
    send_all heavy (heavy_req ^ "\n");
    Unix.sleepf 0.05;
    (* no-retry connects: with the old backlog these would ECONNREFUSED *)
    let fds = List.init burst (fun _ -> connect ~tries:0 socket) in
    let burst_got =
      List.mapi
        (fun i fd ->
          let req = Printf.sprintf "exec kernel=utma n=%d threads=2 label=b%d" (5 + i) i in
          send_all fd (req ^ "\n");
          let line = List.hd (recv_lines fd 1) in
          Unix.close fd;
          (req, line))
        fds
    in
    let heavy_resp = List.hd (recv_lines heavy 1) in
    Unix.close heavy;
    let fd = connect socket in
    send_all fd "shutdown\n";
    ignore (recv_lines fd 1);
    Unix.close fd;
    (heavy_resp, burst_got)
  in
  if not (contains ~needle:"\"status\":\"ok\"" heavy_resp) then
    Alcotest.failf "heavy request failed: %s" heavy_resp;
  List.iter
    (fun (req, line) -> Alcotest.(check string) ("burst " ^ req) (expected_line req) line)
    burst_got;
  Alcotest.(check int) "all burst connections accepted" (burst + 2) stats.Server.connections

(* ---------------------------------------------------------------- *)
(* e2e: counter reconciliation                                       *)
(* ---------------------------------------------------------------- *)

let test_serve_counters_reconcile () =
  let total name =
    match Obsv.Metrics.find name with
    | Some m -> Obsv.Metrics.total m
    | None -> Alcotest.failf "no %s counter" name
  in
  Obsv.Control.with_enabled true @@ fun () ->
  let accept0 = total "serve.accept" in
  let timeout0 = total "serve.timeout" in
  let rejected0 = total "serve.rejected" in
  let inflight0 = total "service.inflight" in
  let cache = Cache.create ~capacity:64 ~dir:None () in
  let reqs c = client_requests c in
  let (), stats =
    with_server ~cache @@ fun socket ->
    List.iter
      (fun c ->
        let fd = connect socket in
        List.iter
          (fun req ->
            send_all fd (req ^ "\n");
            ignore (recv_lines fd 1))
          (reqs c);
        Unix.close fd)
      [ 0; 1 ];
    (* one protocol rejection in the mix *)
    let fd = connect socket in
    send_all fd (String.make 9000 'y' ^ "\n");
    ignore (recv_lines fd 1);
    recv_eof fd;
    Unix.close fd;
    let fd = connect socket in
    send_all fd "shutdown\n";
    ignore (recv_lines fd 1);
    Unix.close fd
  in
  (* serve_stats vs obsv counters: the loop's own accounting and the
     metrics layer must tell the same story *)
  Alcotest.(check int) "accepts" stats.Server.connections (total "serve.accept" - accept0);
  Alcotest.(check int) "timeouts" stats.Server.timeouts (total "serve.timeout" - timeout0);
  Alcotest.(check int) "rejections" stats.Server.rejected (total "serve.rejected" - rejected0);
  Alcotest.(check int) "admissions" stats.Server.requests (total "service.inflight" - inflight0);
  Alcotest.(check int) "admission counter at rest" 0 stats.Server.inflight_final;
  (* and the mix itself is fully accounted for *)
  Alcotest.(check int) "connections" 4 stats.Server.connections;
  Alcotest.(check int) "admitted requests" 7 stats.Server.requests;
  Alcotest.(check int) "responses = ok + error" stats.Server.responses
    (stats.Server.ok_responses + stats.Server.error_responses);
  Alcotest.(check int) "responses" 8 stats.Server.responses;
  Alcotest.(check int) "rejected" 1 stats.Server.rejected;
  Alcotest.(check int) "dropped" 0 stats.Server.dropped;
  (* every compile/exec touched the private cache exactly once *)
  let s = Cache.stats cache in
  Alcotest.(check int) "cache lookups = cache-touching requests" 6
    (s.Cache.hits + s.Cache.misses + s.Cache.singleflight_waits)

(* ---------------------------------------------------------------- *)
(* Robustness: health verb, quotas, rate limiting, protocol fuzz     *)
(* ---------------------------------------------------------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains what needle hay =
  if not (contains ~needle hay) then Alcotest.failf "%s: %S not in %s" what needle hay

let test_serve_health_verb () =
  (match Server.parse_request "health" with
  | Ok (Some Server.Health) -> ()
  | _ -> Alcotest.fail "bare health should parse");
  (match Server.parse_request "health x=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "health with fields should be rejected");
  let cache = Cache.create ~capacity:16 ~dir:None () in
  let (h1, h2), stats =
    with_server ~cache @@ fun socket ->
    let fd = connect socket in
    send_all fd "health\n";
    let h1 = List.hd (recv_lines fd 1) in
    send_all fd "compile kernel=utma\n";
    ignore (recv_lines fd 1);
    send_all fd "health\n";
    let h2 = List.hd (recv_lines fd 1) in
    send_all fd "shutdown\n";
    ignore (recv_lines fd 1);
    Unix.close fd;
    (h1, h2)
  in
  check_contains "health response" {|"op":"health","status":"ok"|} h1;
  check_contains "breaker state reported" {|"breaker":{"state":"|} h1;
  check_contains "robustness counters reported" {|"quarantined":0|} h1;
  check_contains "inflight reported" {|"inflight":|} h1;
  check_contains "fresh cache" {|"misses":0|} h1;
  check_contains "the compile between probes is visible" {|"misses":1|} h2;
  Alcotest.(check int) "health probes counted apart" 2 stats.Server.health_probes;
  (* the reconciliation invariant: health rides outside [requests] *)
  Alcotest.(check int) "admitted = compile + shutdown" 2 stats.Server.requests

let test_serve_rate_limited_flood () =
  (* a refill rate of ~0 makes the outcome deterministic: exactly
     [rate_burst] requests are admitted, the rest are overload-rejected
     in order, and the connection stays open *)
  let config =
    { Server.default_serve_config with rate_limit = Some 0.001; rate_burst = 2 }
  in
  let reqs = List.init 5 (fun i -> Printf.sprintf "compile kernel=utma label=f%d" i) in
  let lines, stats =
    with_server ~config @@ fun socket ->
    let fd = connect socket in
    send_all fd (String.concat "\n" reqs ^ "\nhealth\nshutdown\n");
    let lines = recv_lines fd 7 in
    Unix.close fd;
    lines
  in
  check_responses "under the burst" (List.filteri (fun i _ -> i < 2) reqs)
    (List.filteri (fun i _ -> i < 2) lines);
  List.iteri
    (fun i line ->
      if i >= 2 && i < 5 then begin
        check_contains "over-rate rejection" {|"error":"rejected:overload"|} line;
        check_contains "rejection keeps the request's op" {|"op":"compile"|} line;
        check_contains "rejection keeps the request's label"
          (Printf.sprintf {|"label":"f%d"|} i)
          line
      end)
    lines;
  check_contains "health is exempt from the limiter" {|"op":"health","status":"ok"|}
    (List.nth lines 5);
  check_contains "shutdown is exempt from the limiter" {|"op":"shutdown"|} (List.nth lines 6);
  Alcotest.(check int) "throttled counted" 3 stats.Server.throttled;
  Alcotest.(check int) "admitted = burst + shutdown" 3 stats.Server.requests;
  Alcotest.(check int) "rejections are error responses" 3 stats.Server.error_responses;
  Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped

(* regression: the liveness probe must be answered from another
   connection while a flood holds the admission cap. The flooder
   pipelines slow requests (deadline-killed at 100ms each) well past
   [max_inflight]; before the fix, both the admit loop and the
   readable set gated health behind the same caps, so the probe
   waited for the whole backlog to drain (~1s+ here, minutes with a
   wedged toolchain). Now control lines are consumed regardless of
   the caps, so the probe answers within roughly one loop turn. *)
let test_serve_health_exempt_at_saturation () =
  (* requests sized to a couple hundred ms each (the serial reference
     dominates and is not deadlined), so a pipelined flood holds the
     admission counter at the cap for ~2s of short loop turns. The
     loop is single-threaded and requests execute inline, so even an
     exempt probe waits out the request in flight when it arrives —
     the discriminator is relative, not absolute: exempt health
     answers within a couple of request-times, capped health waits
     for nearly the whole backlog. *)
  let slow = "exec params=N=2000 levels=i=0..N,j=i..N threads=2 label=slow" in
  let nslow = 10 in
  let config =
    { Server.default_serve_config with
      max_inflight = 4;
      max_inflight_per_client = 4;
      service_quantum = 1 }
  in
  let (health_at_ms, drain_ms, health_line), stats =
    with_server ~config @@ fun socket ->
    (* probe connects first: the serve loop prepends new connections,
       so the flooder's admission runs first each turn and keeps the
       counter at the cap when the probe's line is considered *)
    let probe = connect socket in
    let flood = connect socket in
    (* warm the plan cache through the probe so no request in the
       timed window pays the one-off symbolic compile *)
    send_all probe (slow ^ "\n");
    ignore (recv_lines probe 1);
    let t0 = Unix.gettimeofday () in
    send_all flood (String.concat "\n" (List.init nslow (fun _ -> slow)) ^ "\n");
    (* let the server frame the flood before probing *)
    Unix.sleepf 0.05;
    send_all probe "health\n";
    let h = List.hd (recv_lines probe 1) in
    let health_at_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    ignore (recv_lines flood nslow);
    let drain_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    Unix.close flood;
    send_all probe "shutdown\n";
    ignore (recv_lines probe 1);
    Unix.close probe;
    (health_at_ms, drain_ms, h)
  in
  check_contains "health answered" {|"op":"health","status":"ok"|} health_line;
  (* both times share the flood's t0, so the ratio self-calibrates to
     machine speed: exempt ~2/10 of the backlog, capped ~9/10 *)
  Alcotest.(check bool)
    (Printf.sprintf
       "probe answered while saturated, not after the backlog (health %.0fms, drain %.0fms)"
       health_at_ms drain_ms)
    true (health_at_ms < drain_ms /. 2.);
  Alcotest.(check int) "health probes counted" 1 stats.Server.health_probes;
  Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped

let test_serve_per_client_cap_backpressure () =
  (* a cap of 1 forces the loop to stop reading the flooding client
     between requests: everything is still answered, in order, byte
     for byte — backpressure, not errors *)
  let config =
    { Server.default_serve_config with max_inflight_per_client = 1; service_quantum = 1 }
  in
  let reqs = client_requests 0 @ client_requests 1 in
  let lines, stats =
    with_server ~config @@ fun socket ->
    let fd = connect socket in
    send_all fd (String.concat "\n" reqs ^ "\nshutdown\n");
    let lines = recv_lines fd (List.length reqs + 1) in
    Unix.close fd;
    lines
  in
  check_responses "capped pipeline" reqs (List.filteri (fun i _ -> i < List.length reqs) lines);
  Alcotest.(check int) "all admitted eventually" (List.length reqs + 1) stats.Server.requests;
  Alcotest.(check int) "no errors" 0 stats.Server.error_responses;
  Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped

(* protocol fuzz, unit level: the parser is total and the framer never
   desyncs, whatever bytes arrive in whatever chunking *)

let prop_parse_request_total =
  QCheck.Test.make ~name:"protocol fuzz: parse_request is total" ~count:1000
    QCheck.(string_gen QCheck.Gen.char)
    (fun s -> match Server.parse_request s with Ok _ | Error _ -> true)

let prop_framing_fuzz =
  QCheck.Test.make ~name:"protocol fuzz: framer never raises or desyncs" ~count:500
    QCheck.(pair (list (string_gen QCheck.Gen.char)) small_nat)
    (fun (chunks, max_extra) ->
      let max_line = 16 + max_extra in
      let f = Framing.create ~max_line () in
      let overflowed_once = ref false in
      List.iter
        (fun chunk ->
          Framing.feed_string f chunk;
          let rec drain () =
            match Framing.pop f with
            | `Line l ->
              (* a popped line respects the bound and never contains a
                 terminator *)
              (* CRLF stripping may shed one byte past the bound; a
                 lone CR is ordinary line content *)
              if String.length l > max_line then failwith "line exceeds max_line";
              if String.contains l '\n' then failwith "terminator inside a line";
              drain ()
            | `Overflow ->
              overflowed_once := true;
              ()
            | `Pending -> ()
          in
          drain ();
          if !overflowed_once && not (Framing.overflowed f) then
            failwith "overflow is not terminal")
        chunks;
      true)

(* protocol fuzz, e2e: nasty lines get exactly one structured error
   each and the connection keeps working; an abrupt binary close
   leaves the loop serving everyone else *)
let test_serve_garbage_bytes () =
  let (), stats =
    with_server @@ fun socket ->
    List.iter
      (fun junk ->
        let fd = connect socket in
        send_all fd junk;
        let line = List.hd (recv_lines fd 1) in
        check_contains "structured error for junk" {|"status":"error"|} line;
        (* the same connection still serves valid requests *)
        send_all fd "compile kernel=utma label=after\n";
        check_contains "connection survives the junk" {|"status":"ok"|}
          (List.hd (recv_lines fd 1));
        Unix.close fd)
      [ "\x00\x01\x02garbage\n";
        "exec kernel=\x7fnope\n";
        "compile\n";
        "health extra=1\n";
        "exec kernel=utma n=\x00\n" ];
    (* binary junk with no terminator, then an abrupt close *)
    let fd = connect socket in
    send_all fd "\xff\xfe\xfd";
    Unix.close fd;
    (* NUL/CRLF splices: CRLF frames like LF, lone CR stays in-line *)
    let fd = connect socket in
    send_all fd "compile kernel=utma label=crlf\r\ncompile\rkernel=x\n";
    (match recv_lines fd 2 with
    | [ ok_line; err_line ] ->
      check_contains "CRLF framed as one request" {|"status":"ok"|} ok_line;
      check_contains "lone CR stays in-line and fails parse" {|"status":"error"|} err_line
    | _ -> Alcotest.fail "expected two responses to the CR/CRLF splice");
    Unix.close fd;
    let fd = connect socket in
    send_all fd "shutdown\n";
    ignore (recv_lines fd 1);
    Unix.close fd
  in
  Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped

let suites =
  [ ( "serve.framing",
      qsuite [ prop_frame_rechunk_equals_split; prop_frame_chunking_invariant ]
      @ [ Alcotest.test_case "CRLF and empty lines" `Quick test_frame_crlf_and_empty;
          Alcotest.test_case "partial lines join across feeds" `Quick test_frame_partial_then_rest;
          Alcotest.test_case "overflow is terminal" `Quick test_frame_overflow_terminal;
          Alcotest.test_case "overflow without terminator" `Quick
            test_frame_overflow_without_terminator
        ] );
    ( "serve.loop",
      [ Alcotest.test_case "multi-client responses byte-identical to serial" `Quick
          test_serve_multi_client_byte_identical;
        Alcotest.test_case "pipelined requests answered in order" `Quick
          test_serve_pipelined_in_order;
        Alcotest.test_case "slow reader cannot stall the loop" `Quick
          test_serve_slow_reader_no_stall;
        Alcotest.test_case "graceful drain under load" `Quick test_serve_drain_under_load;
        Alcotest.test_case "SIGTERM drains and exits cleanly" `Quick test_serve_sigterm_drains;
        Alcotest.test_case "socket unlinked on exit" `Quick test_serve_socket_unlinked;
        Alcotest.test_case "oversized line rejected deterministically" `Quick
          test_serve_oversized_line_rejected;
        Alcotest.test_case "per-request timeout is deterministic" `Quick
          test_serve_request_timeout;
        Alcotest.test_case "handle honors deadline_ms" `Quick test_handle_deadline;
        Alcotest.test_case "connect burst beyond old backlog is served" `Quick
          test_serve_backlog_burst;
        Alcotest.test_case "serve_stats reconcile with obsv counters" `Quick
          test_serve_counters_reconcile
      ] );
    ( "serve.robustness",
      [ Alcotest.test_case "health verb reports breaker + cache state" `Quick
          test_serve_health_verb;
        Alcotest.test_case "rate limiter rejects floods deterministically" `Quick
          test_serve_rate_limited_flood;
        Alcotest.test_case "health is exempt from the admission caps" `Quick
          test_serve_health_exempt_at_saturation;
        Alcotest.test_case "per-client cap is backpressure, not errors" `Quick
          test_serve_per_client_cap_backpressure;
        Alcotest.test_case "garbage bytes get structured errors" `Quick test_serve_garbage_bytes
      ]
      @ qsuite [ prop_parse_request_total; prop_framing_fuzz ] )
  ]
