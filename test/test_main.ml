let () =
  Alcotest.run "nonrect-collapse"
    (Test_zmath.suites @ Test_polymath.suites @ Test_polyhedral.suites @ Test_symx.suites
   @ Test_rootsolve.suites @ Test_trahrhe.suites @ Test_codegen.suites @ Test_cprint.suites
   @ Test_cfront.suites
   @ Test_ompsim.suites @ Test_fault.suites @ Test_kernels.suites @ Test_xforms.suites @ Test_figures.suites
   @ Test_looptrans.suites
   @ Test_obsv.suites @ Test_jit.suites @ Test_oracle.suites @ Test_service.suites
   @ Test_serve.suites
   @ Test_integration.suites)
