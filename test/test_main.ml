(* re-exec dispatch for the multi-process cache tests: OCaml 5 cannot
   fork once domains exist, so Test_service spawns this binary with a
   sentinel argv instead of forking workers *)
let () =
  if Array.length Sys.argv >= 3 && Sys.argv.(1) = "--cache-child" then
    Test_service.cache_child_main (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))

let () =
  Alcotest.run "nonrect-collapse"
    (Test_zmath.suites @ Test_polymath.suites @ Test_polyhedral.suites @ Test_symx.suites
   @ Test_rootsolve.suites @ Test_trahrhe.suites @ Test_codegen.suites @ Test_cprint.suites
   @ Test_cfront.suites
   @ Test_ompsim.suites @ Test_fault.suites @ Test_kernels.suites @ Test_xforms.suites @ Test_figures.suites
   @ Test_looptrans.suites
   @ Test_obsv.suites @ Test_jit.suites @ Test_oracle.suites @ Test_service.suites
   @ Test_serve.suites
   @ Test_integration.suites)
