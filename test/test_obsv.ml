(* Observability layer tests: per-slot metrics, trace recording with
   Chrome trace_event export (golden + adversarial format checks),
   runtime toggling, and a pool soak that reconciles the obsv counters
   against ground truth across hundreds of randomized regions. *)

module M = Obsv.Metrics
module T = Obsv.Trace
module TC = Obsv.Trace_check

(* Run [f] with the layer on and clean counter/trace state, restoring
   a clean disabled state afterwards so obsv tests cannot leak into
   the rest of the suite. *)
let with_obsv f =
  Obsv.Control.with_enabled true (fun () ->
      T.clear ();
      Ompsim.Stats.reset ();
      Fun.protect
        ~finally:(fun () ->
          T.clear ();
          Ompsim.Stats.reset ())
        f)

let aff terms c =
  Polymath.Affine.make
    (List.map (fun (x, k) -> (x, Zmath.Rat.of_int k)) terms)
    (Zmath.Rat.of_int c)

let correlation_nest () =
  Trahrhe.Nest.make ~params:[ "N" ]
    [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
      { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 } ]

(* -------- Metrics -------- *)

let test_metrics_basics () =
  let c = M.create "test.basics" in
  M.add c ~slot:0 5;
  M.incr c ~slot:3;
  M.incr c ~slot:3;
  (* slots reduce modulo max_slots: this lands on slot 3 again *)
  M.add c ~slot:(M.max_slots + 3) 2;
  Alcotest.(check int) "slot 0" 5 (M.get c ~slot:0);
  Alcotest.(check int) "slot 3 (wrapped)" 4 (M.get c ~slot:3);
  Alcotest.(check int) "total" 9 (M.total c);
  Alcotest.(check (list (pair int int))) "per_slot" [ (0, 5); (3, 4) ] (M.per_slot c);
  (match M.find "test.basics" with
  | Some c' -> Alcotest.(check string) "registered" "test.basics" (M.name c')
  | None -> Alcotest.fail "counter not registered");
  M.reset c;
  Alcotest.(check int) "reset" 0 (M.total c);
  Alcotest.(check (list (pair int int))) "per_slot after reset" [] (M.per_slot c)

let test_metrics_imbalance () =
  let c = M.create "test.imbalance" in
  Alcotest.(check (float 1e-9)) "empty" 1.0 (M.imbalance c);
  M.add c ~slot:0 10;
  Alcotest.(check (float 1e-9)) "single slot" 1.0 (M.imbalance c);
  M.add c ~slot:1 10;
  M.add c ~slot:2 10;
  M.add c ~slot:3 10;
  Alcotest.(check (float 1e-9)) "balanced" 1.0 (M.imbalance c);
  M.add c ~slot:3 20;
  (* slots 10,10,10,30: mean 15, max 30 *)
  Alcotest.(check (float 1e-9)) "imbalanced" 2.0 (M.imbalance c);
  M.reset c

let test_metrics_here () =
  let c = M.create "test.here" in
  M.incr_here c;
  M.add_here c 4;
  Alcotest.(check int) "total via domain slot" 5 (M.total c);
  Alcotest.(check int) "one active slot" 1 (List.length (M.per_slot c));
  M.reset c

let test_metrics_summary () =
  let c = M.create "test.summary" in
  M.add c ~slot:0 7;
  let s = M.summary () in
  let mem sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary names counter" true (mem "test.summary");
  M.reset c

(* -------- Trace recording -------- *)

let test_trace_disabled_noop () =
  Obsv.Control.with_enabled false (fun () ->
      T.clear ();
      T.with_span "nope" (fun () ->
          T.instant "still nope";
          T.counter "n" 1);
      Alcotest.(check int) "no events recorded" 0 (T.event_count ()))

let test_trace_toggle () =
  with_obsv (fun () ->
      (* whether a span records is decided at entry: toggling inside
         cannot unbalance the trace *)
      T.with_span "outer" (fun () ->
          Obsv.Control.set_enabled false;
          T.instant "lost";
          Obsv.Control.set_enabled true);
      (match TC.validate_string (T.to_json ()) with
      | Ok s ->
        Alcotest.(check int) "one balanced span" 1 s.TC.spans;
        Alcotest.(check int) "instant was dropped" 2 s.TC.events
      | Error e -> Alcotest.failf "trace invalid: %s" e))

let test_trace_exception_safety () =
  with_obsv (fun () ->
      (try T.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
      match TC.validate_string (T.to_json ()) with
      | Ok s -> Alcotest.(check int) "span closed on raise" 1 s.TC.spans
      | Error e -> Alcotest.failf "trace invalid after raise: %s" e)

let test_trace_escaping () =
  with_obsv (fun () ->
      T.with_span "quote\" back\\slash \ntab\t"
        ~args:[ ("s", T.Str "a\"b\\c\nd") ]
        (fun () -> ());
      match TC.validate_string (T.to_json ()) with
      | Ok s -> Alcotest.(check int) "escaped names parse" 1 s.TC.spans
      | Error e -> Alcotest.failf "escaping broke the JSON: %s" e)

let test_trace_nesting_depth () =
  with_obsv (fun () ->
      T.with_span "a" (fun () -> T.with_span "b" (fun () -> T.with_span "c" (fun () -> ())));
      match TC.validate_string (T.to_json ()) with
      | Ok s ->
        Alcotest.(check int) "three spans" 3 s.TC.spans;
        Alcotest.(check int) "nesting depth" 3 s.TC.max_depth
      | Error e -> Alcotest.failf "trace invalid: %s" e)

let test_span_totals () =
  with_obsv (fun () ->
      T.with_span "work" (fun () -> ());
      T.with_span "work" (fun () -> ());
      match List.find_opt (fun (n, _, _) -> n = "work") (T.span_totals ()) with
      | Some (_, count, total_ns) ->
        Alcotest.(check int) "span count" 2 count;
        Alcotest.(check bool) "non-negative time" true (total_ns >= 0)
      | None -> Alcotest.fail "span_totals missed the spans")

(* -------- Golden trace: a real instrumented parallel walk -------- *)

let test_trace_golden () =
  with_obsv (fun () ->
      let nest = correlation_nest () in
      let inv = Trahrhe.Inversion.invert_exn nest in
      let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> 40) in
      let trip = Trahrhe.Recovery.trip_count rc in
      let sum = Atomic.make 0 in
      Ompsim.Par.parallel_for_chunks ~nthreads:4 ~schedule:(Ompsim.Schedule.Dynamic 64) ~n:trip
        (fun ~thread:_ ~start ~len ->
          let acc = ref 0 in
          Trahrhe.Recovery.walk rc ~pc:(start + 1) ~len (fun idx ->
              acc := !acc + idx.(0) + idx.(1));
          ignore (Atomic.fetch_and_add sum !acc));
      Ompsim.Stats.emit_trace_counters ();
      (match TC.validate_string (T.to_json ()) with
      | Error e -> Alcotest.failf "golden trace invalid: %s" e
      | Ok s ->
        Alcotest.(check bool) "has events" true (s.TC.events > 0);
        Alcotest.(check bool) "has spans" true (s.TC.spans > 0);
        Alcotest.(check bool) "has counter samples" true (s.TC.counters > 0);
        Alcotest.(check bool) "has threads" true (s.TC.tids >= 1));
      let names = List.map (fun (n, _, _) -> n) (T.span_totals ()) in
      List.iter
        (fun n -> Alcotest.(check bool) n true (List.mem n names))
        [ "par.region"; "par.chunk"; "recovery.walk" ];
      (* the walk counters must reconcile exactly with the trip count *)
      (match M.find "recovery.iterations" with
      | Some c -> Alcotest.(check int) "recovery.iterations = trip" trip (M.total c)
      | None -> Alcotest.fail "recovery.iterations not registered");
      Alcotest.(check int) "par.iterations = trip" trip (M.total Ompsim.Stats.par_iterations);
      Alcotest.(check int) "no events dropped" 0 (T.dropped ()))

let test_pipeline_spans () =
  with_obsv (fun () ->
      ignore (Trahrhe.Inversion.invert_exn (correlation_nest ()));
      let names = List.map (fun (n, _, _) -> n) (T.span_totals ()) in
      List.iter
        (fun n -> Alcotest.(check bool) n true (List.mem n names))
        [ "pipeline.ranking"; "pipeline.inversion" ])

(* -------- Validator rejects malformed traces -------- *)

let doc evs = Printf.sprintf {|{"traceEvents":[%s]}|} (String.concat "," evs)

let accepts s =
  match TC.validate_string s with Ok _ -> true | Error _ -> false

let test_validator_negative () =
  let reject name s = Alcotest.(check bool) name false (accepts s) in
  let accept name s = Alcotest.(check bool) name true (accepts s) in
  reject "not JSON" "this is not json";
  reject "truncated" {|{"traceEvents":[|};
  reject "trailing garbage" ({|{"traceEvents":[]}|} ^ "xx");
  reject "no traceEvents key" {|{"otherEvents":[]}|};
  reject "traceEvents not an array" {|{"traceEvents":{}}|};
  accept "empty trace" {|{"traceEvents":[]}|};
  accept "balanced pair"
    (doc
       [ {|{"name":"a","ph":"B","pid":1,"tid":1,"ts":1.0}|};
         {|{"name":"a","ph":"E","pid":1,"tid":1,"ts":2.0}|} ]);
  reject "E without B" (doc [ {|{"name":"a","ph":"E","pid":1,"tid":1,"ts":1.0}|} ]);
  reject "B without E" (doc [ {|{"name":"a","ph":"B","pid":1,"tid":1,"ts":1.0}|} ]);
  reject "mismatched E name"
    (doc
       [ {|{"name":"a","ph":"B","pid":1,"tid":1,"ts":1.0}|};
         {|{"name":"b","ph":"E","pid":1,"tid":1,"ts":2.0}|} ]);
  reject "backwards timestamps"
    (doc
       [ {|{"name":"x","ph":"i","pid":1,"tid":1,"ts":10.0}|};
         {|{"name":"y","ph":"i","pid":1,"tid":1,"ts":5.0}|} ]);
  accept "backwards across threads is fine"
    (doc
       [ {|{"name":"x","ph":"i","pid":1,"tid":1,"ts":10.0}|};
         {|{"name":"y","ph":"i","pid":1,"tid":2,"ts":5.0}|} ]);
  reject "missing ts" (doc [ {|{"name":"x","ph":"i","pid":1,"tid":1}|} ]);
  accept "metadata needs no ts"
    (doc [ {|{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"w"}}|} ]);
  reject "missing name" (doc [ {|{"ph":"i","pid":1,"tid":1,"ts":1.0}|} ]);
  reject "missing tid" (doc [ {|{"name":"x","ph":"i","pid":1,"ts":1.0}|} ])

let test_json_parser () =
  let ok s = match TC.parse_json s with Ok v -> Some v | Error _ -> None in
  (match ok {| {"a": [1, -2.5e1, "xA\n", true, false, null]} |} with
  | Some
      (TC.Obj
        [ ("a", TC.Arr [ TC.Num 1.0; TC.Num (-25.0); TC.Str s; TC.Bool true; TC.Bool false; TC.Null ]) ])
    -> Alcotest.(check string) "string escapes" "xA\n" s
  | _ -> Alcotest.fail "parse shape mismatch");
  Alcotest.(check bool) "rejects bare comma" true (ok {|[1,]|} = None);
  Alcotest.(check bool) "rejects lone minus" true (ok {|-|} = None)

(* -------- Pool soak: counters reconcile over many regions -------- *)

let test_pool_soak () =
  with_obsv (fun () ->
      let rng = Random.State.make [| 0x50a7 |] in
      let schedules =
        [| Ompsim.Schedule.Static; Ompsim.Schedule.Static_chunk 7; Ompsim.Schedule.Dynamic 5;
           Ompsim.Schedule.Guided 3 |]
      in
      let regions = 300 in
      let total = ref 0 in
      let executed = Atomic.make 0 in
      for _ = 1 to regions do
        let n = 1 + Random.State.int rng 400 in
        let nthreads = 1 + Random.State.int rng 6 in
        let schedule = schedules.(Random.State.int rng (Array.length schedules)) in
        total := !total + n;
        Ompsim.Par.parallel_for_chunks ~nthreads ~schedule ~n (fun ~thread:_ ~start:_ ~len ->
            ignore (Atomic.fetch_and_add executed len))
      done;
      Alcotest.(check int) "ground truth" !total (Atomic.get executed);
      Alcotest.(check int) "obsv iterations reconcile" !total
        (M.total Ompsim.Stats.par_iterations);
      Alcotest.(check int) "every region counted" regions (M.total Ompsim.Stats.par_regions);
      Alcotest.(check bool) "at least one chunk per region" true
        (M.total Ompsim.Stats.par_chunks >= regions);
      Alcotest.(check int) "latch drained" 0 (Ompsim.Pool.pending ());
      Alcotest.(check int) "no leaked jobs" 0 (Ompsim.Pool.queued_jobs ());
      (* the trace built by the soak must itself be well-formed *)
      match TC.validate_string (T.to_json ()) with
      | Ok s -> Alcotest.(check bool) "soak trace has spans" true (s.TC.spans >= regions)
      | Error e -> Alcotest.failf "soak trace invalid: %s" e)

let suites =
  [ ( "obsv.metrics",
      [ Alcotest.test_case "slots, totals, registry" `Quick test_metrics_basics;
        Alcotest.test_case "imbalance" `Quick test_metrics_imbalance;
        Alcotest.test_case "domain-keyed slots" `Quick test_metrics_here;
        Alcotest.test_case "summary" `Quick test_metrics_summary ] );
    ( "obsv.trace",
      [ Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled_noop;
        Alcotest.test_case "mid-span toggle stays balanced" `Quick test_trace_toggle;
        Alcotest.test_case "span closes on exception" `Quick test_trace_exception_safety;
        Alcotest.test_case "JSON string escaping" `Quick test_trace_escaping;
        Alcotest.test_case "span nesting depth" `Quick test_trace_nesting_depth;
        Alcotest.test_case "span totals" `Quick test_span_totals;
        Alcotest.test_case "golden trace from a parallel walk" `Quick test_trace_golden;
        Alcotest.test_case "pipeline stage spans" `Quick test_pipeline_spans ] );
    ( "obsv.trace_check",
      [ Alcotest.test_case "malformed traces rejected" `Quick test_validator_negative;
        Alcotest.test_case "JSON reader" `Quick test_json_parser ] );
    ( "obsv.soak",
      [ Alcotest.test_case "300 regions reconcile" `Slow test_pool_soak ] ) ]
