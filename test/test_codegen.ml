(* Tests for the C generator: printer behaviour and the structure of
   each collapsing scheme. *)

module A = Polymath.Affine
module Q = Zmath.Rat
open Codegen

let aff terms c = A.make (List.map (fun (x, k) -> (x, Q.of_int k)) terms) (Q.of_int c)

let correlation_inv =
  (* the scheme tests assert closed-form recovery statements, so pin
     past the forced-numeric shard *)
  lazy
    (Trahrhe.Inversion.invert_exn ~force_numeric:false
       (Trahrhe.Nest.make ~params:[ "N" ]
          [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
            { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 } ]))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains msg needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "%s: %S not found in:\n%s" msg needle haystack

let check_absent msg needle haystack =
  if contains ~needle haystack then Alcotest.failf "%s: %S unexpectedly present" msg needle

(* -------- printer -------- *)

let test_print_structure () =
  let s =
    C_print.to_string
      [ C_ast.If
          { cond = "x > 0";
            then_ = [ C_ast.Assign ("y", "1") ];
            else_ = [ C_ast.Assign ("y", "2") ] };
        C_ast.For
          { init = "i = 0"; cond = "i < n"; step = "i++"; body = [ C_ast.Raw "f(i);" ] };
        C_ast.While { cond = "z"; body = [ C_ast.Raw "g();" ] };
        C_ast.Pragma "omp simd";
        C_ast.Comment "note";
        C_ast.Block [ C_ast.Decl { ty = "long"; name = "t"; init = Some "0" } ] ]
  in
  List.iter
    (fun needle -> check_contains "structure" needle s)
    [ "if (x > 0) {"; "} else {"; "for (i = 0; i < n; i++) {"; "while (z) {"; "#pragma omp simd";
      "/* note */"; "long t = 0;" ]

let test_print_indent () =
  let s = C_print.to_string ~indent:2 [ C_ast.Raw "x = 1;" ] in
  Alcotest.(check string) "4-space lead" "    x = 1;\n" s

let test_print_multiline_raw () =
  let s = C_print.to_string [ C_ast.Block [ C_ast.Raw "a();\nb();" ] ] in
  check_contains "first line" "  a();" s;
  check_contains "second line" "  b();" s

(* -------- schemes -------- *)

let body = [ C_ast.Raw "use(i, j);" ]

let test_trip_count_expr () =
  Alcotest.(check string) "correlation trip" "((long)N*N - (long)N)/2"
    (Schemes.trip_count_expr (Lazy.force correlation_inv) ~ty:"long")

let test_naive_scheme () =
  let s = C_print.to_string (Schemes.naive (Lazy.force correlation_inv) ~body) in
  check_contains "pragma" "#pragma omp parallel for private(i, j) schedule(static)" s;
  check_contains "loop header" "for (long pc = 1; pc <= ((long)N*N - (long)N)/2; pc++) {" s;
  check_contains "floor recovery" "i = floor(" s;
  check_contains "exact last level" "j = (" s;
  check_contains "body" "use(i, j);" s;
  check_absent "no incrementation in naive" "first_iteration" s

let test_per_thread_scheme () =
  let s = C_print.to_string (Schemes.per_thread (Lazy.force correlation_inv) ~body) in
  check_contains "firstprivate" "firstprivate(first_iteration)" s;
  check_contains "flag test" "if (first_iteration) {" s;
  check_contains "flag clear" "first_iteration = 0;" s;
  check_contains "increment" "j++;" s;
  check_contains "cascade" "if (j >= (long)N) {" s;
  check_contains "reset to lower bound" "j = (long)i + (long)1;" s

let test_chunked_scheme () =
  let s = C_print.to_string (Schemes.chunked ~chunk:128 (Lazy.force correlation_inv) ~body) in
  check_contains "chunked schedule" "schedule(static, 128)" s;
  check_contains "chunk-start recovery" "if ((pc - 1) % 128 == 0) {" s

let test_simd_scheme () =
  let s =
    C_print.to_string
      (Schemes.simd ~vlength:8 (Lazy.force correlation_inv) ~body_of:(fun subst ->
           [ C_ast.Raw (Printf.sprintf "use(%s, %s);" (subst "i") (subst "j")) ]))
  in
  check_contains "strided loop" "pc += 8" s;
  check_contains "buffer fill" "T_i[v - pc] = i;" s;
  check_contains "simd pragma" "#pragma omp simd" s;
  check_contains "substituted body" "use(T_i[v - pc], T_j[v - pc]);" s

let test_gpu_scheme () =
  let s = C_print.to_string (Schemes.gpu_warp ~warp:32 (Lazy.force correlation_inv) ~body) in
  check_contains "warp loop" "for (thread = 0; thread < 32; thread++) {" s;
  check_contains "strided pc" "pc += 32" s;
  check_contains "first-of-thread recovery" "if (pc == thread + 1) {" s;
  check_contains "W incrementations" "for (inc = 0; inc < 32; inc++) {" s

let test_guarded_config () =
  let config = { Schemes.default_config with guarded = true } in
  let s = C_print.to_string (Schemes.naive ~config (Lazy.force correlation_inv) ~body) in
  check_contains "clamp lower" "if (i < lb_i) i = lb_i;" s;
  check_contains "adjustment loops" "while (i < ub_i &&" s;
  check_contains "rank comparison" "<= pc" s

let test_original_emission () =
  let inv = Lazy.force correlation_inv in
  let s =
    C_print.to_string
      (Schemes.original inv.Trahrhe.Inversion.nest ~parallel:true ~schedule:"dynamic" ~body)
  in
  check_contains "outer pragma" "#pragma omp parallel for private(j) schedule(dynamic)" s;
  check_contains "outer loop" "for (i = 0; i < (long)N - (long)1; i++) {" s;
  check_contains "inner loop" "for (j = (long)i + (long)1; j < (long)N; j++) {" s;
  let serial =
    C_print.to_string
      (Schemes.original inv.Trahrhe.Inversion.nest ~parallel:false ~schedule:"static" ~body)
  in
  check_absent "no pragma when serial" "#pragma" serial

let test_counter_type_config () =
  let config = { Schemes.default_config with counter_ty = "int64_t" } in
  let s = C_print.to_string (Schemes.naive ~config (Lazy.force correlation_inv) ~body) in
  check_contains "typed counter" "for (int64_t pc = 1" s;
  check_contains "typed decls" "int64_t i;" s

let test_increment_stmts_depth3 () =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 };
        { var = "k"; lower = aff [ ("j", 1) ] 0; upper = aff [ ("i", 1) ] 1 } ]
  in
  let inv = Trahrhe.Inversion.invert_exn nest in
  let s = C_print.to_string (Schemes.increment_stmts inv) in
  check_contains "innermost bump first" "k++;" s;
  check_contains "middle cascade" "j++;" s;
  check_contains "outer bump" "i++;" s;
  (* resets happen after the outward cascade, with the new outer values *)
  check_contains "k reset to j" "k = (long)j;" s

let test_imperfect_sink () =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 };
        { var = "k"; lower = aff [] 0; upper = aff [ ("j", 1) ] 0 } ]
  in
  let s =
    C_print.to_string
      (Imperfect.sink nest
         ~levels:
           [ { Imperfect.pre = [ C_ast.Raw "pre1(i);" ]; post = [ C_ast.Raw "post1(i);" ] };
             { Imperfect.pre = [ C_ast.Raw "pre2(i, j);" ]; post = [] } ]
         ~innermost:[ C_ast.Raw "body(i, j, k);" ])
  in
  (* pre1 runs when j and k sit at their first positions *)
  check_contains "pre1 guard" "if (j == (long)i + (long)1 && k == 0) {" s;
  check_contains "pre2 guard" "if (k == 0) {" s;
  (* post1 runs at the last (j, k) of the row *)
  check_contains "post1 guard" "if (j == ((long)N) - 1 && k == ((long)j) - 1) {" s;
  (* statement order: pres, body, posts *)
  let pos needle =
    let rec go i = if i + String.length needle > String.length s then -1
      else if String.sub s i (String.length needle) = needle then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "pre1 before body" true (pos "pre1" < pos "body(");
  Alcotest.(check bool) "body before post1" true (pos "body(" < pos "post1")

let test_imperfect_sink_arity () =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 } ]
  in
  Alcotest.check_raises "arity check"
    (Invalid_argument "Imperfect.sink: need pre/post statements for every non-innermost level")
    (fun () -> ignore (Imperfect.sink nest ~levels:[] ~innermost:[]))

let test_imperfect_collapse_shape () =
  let inv = Lazy.force correlation_inv in
  let s =
    C_print.to_string
      (Imperfect.collapse inv
         ~levels:[ { Imperfect.pre = [ C_ast.Raw "row_init(i);" ]; post = [] } ]
         ~innermost:[ C_ast.Raw "cell(i, j);" ])
  in
  check_contains "guarded pre inside collapsed loop" "if (j == (long)i + (long)1) {" s;
  check_contains "per-thread recovery" "first_iteration" s

let suites =
  [ ( "codegen.printer",
      [ Alcotest.test_case "statement structure" `Quick test_print_structure;
        Alcotest.test_case "indent" `Quick test_print_indent;
        Alcotest.test_case "multiline raw" `Quick test_print_multiline_raw ] );
    ( "codegen.schemes",
      [ Alcotest.test_case "trip count expression" `Quick test_trip_count_expr;
        Alcotest.test_case "naive (Fig. 3)" `Quick test_naive_scheme;
        Alcotest.test_case "per-thread (Fig. 4)" `Quick test_per_thread_scheme;
        Alcotest.test_case "chunked (§V)" `Quick test_chunked_scheme;
        Alcotest.test_case "simd (§VI-A)" `Quick test_simd_scheme;
        Alcotest.test_case "gpu warp (§VI-B)" `Quick test_gpu_scheme;
        Alcotest.test_case "guarded adjustment" `Quick test_guarded_config;
        Alcotest.test_case "original nest emission" `Quick test_original_emission;
        Alcotest.test_case "counter type override" `Quick test_counter_type_config;
        Alcotest.test_case "depth-3 incrementation" `Quick test_increment_stmts_depth3 ] );
    ( "codegen.imperfect",
      [ Alcotest.test_case "statement sinking guards" `Quick test_imperfect_sink;
        Alcotest.test_case "arity validation" `Quick test_imperfect_sink_arity;
        Alcotest.test_case "collapse composition" `Quick test_imperfect_collapse_shape ] ) ]
