(* Tests for the benchmark kernels: cost models must agree with the
   nest geometry, and the collapsed serial implementations must compute
   exactly what the original nests compute. *)

module K = Kernels.Kernel

let test_registry () =
  Alcotest.(check int) "15 kernels (9 + utma + ltmp + 2 reduction + 2 deep kernels)" 15
    (List.length Kernels.Registry.kernels);
  Alcotest.(check bool) "names unique" true
    (let names = Kernels.Registry.names in
     List.length (List.sort_uniq compare names) = List.length names);
  Alcotest.(check bool) "find works" true (Kernels.Registry.find "ltmp" <> None);
  Alcotest.(check bool) "find missing" true (Kernels.Registry.find "nope" = None)

let test_families_covered () =
  let families =
    List.map (fun (k : K.t) -> k.family) Kernels.Registry.kernels |> List.sort_uniq compare
  in
  (* §I: triangular, tetrahedral, trapezoidal, rhomboidal (+ tiled) *)
  List.iter
    (fun f -> Alcotest.(check bool) (f ^ " present") true (List.mem f families))
    [ "triangular"; "tetrahedral"; "trapezoidal"; "rhomboidal"; "tiled-triangular" ]

let test_cost_arrays_consistent () =
  (* for every kernel: the collapsed cost array has exactly trip_count
     entries, and total work matches the outer-loop view *)
  List.iter
    (fun (k : K.t) ->
      let n = 8 in
      let rc = K.recovery k ~n in
      let coll = k.collapsed_costs ~n in
      Alcotest.(check int)
        (k.name ^ ": collapsed length = trip count")
        (Trahrhe.Recovery.trip_count rc)
        (Array.length coll);
      let outer = k.outer_costs ~n in
      let total_outer = Array.fold_left ( +. ) 0.0 outer in
      let total_coll = Array.fold_left ( +. ) 0.0 coll in
      Alcotest.(check bool)
        (Printf.sprintf "%s: totals agree (%g vs %g)" k.name total_outer total_coll)
        true
        (Float.abs (total_outer -. total_coll) <= 1e-6 *. Float.max 1.0 total_outer))
    Kernels.Registry.kernels

let test_outer_costs_length () =
  List.iter
    (fun (k : K.t) ->
      let n = 8 in
      let param = K.param_of k ~n in
      (* outer array must have one entry per outermost iteration *)
      let outer_var_count = ref 0 in
      let seen = Hashtbl.create 16 in
      Trahrhe.Nest.iterate k.nest ~param (fun idx ->
          if not (Hashtbl.mem seen idx.(0)) then begin
            Hashtbl.add seen idx.(0) ();
            incr outer_var_count
          end);
      Alcotest.(check int)
        (k.name ^ ": outer rows")
        !outer_var_count
        (Array.length (k.outer_costs ~n)))
    Kernels.Registry.kernels

let test_checksums_match () =
  List.iter
    (fun (k : K.t) ->
      let n = max 6 (k.fig10_n / 16) in
      let o = k.serial_original ~n in
      List.iter
        (fun recoveries ->
          let c = k.serial_collapsed ~n ~recoveries in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d recoveries=%d (%g vs %g)" k.name n recoveries o c)
            true
            (Float.abs (o -. c) <= 1e-9 *. Float.max 1.0 (Float.abs o)))
        [ 1; 5; 12 ])
    Kernels.Registry.kernels

let test_chunk_starts () =
  Alcotest.(check (list (pair int int)))
    "10 over 3"
    [ (1, 4); (5, 3); (8, 3) ]
    (K.chunk_starts ~trip:10 ~recoveries:3);
  Alcotest.(check (list (pair int int))) "trip smaller than recoveries"
    [ (1, 1); (2, 1) ]
    (K.chunk_starts ~trip:2 ~recoveries:5);
  Alcotest.(check (list (pair int int))) "empty" [] (K.chunk_starts ~trip:0 ~recoveries:4);
  (* chunks must exactly tile 1..trip *)
  let chunks = K.chunk_starts ~trip:101 ~recoveries:7 in
  let covered = List.fold_left (fun acc (_, len) -> acc + len) 0 chunks in
  Alcotest.(check int) "covers trip" 101 covered;
  let rec contiguous = function
    | (s1, l1) :: ((s2, _) :: _ as rest) -> s1 + l1 = s2 && contiguous rest
    | _ -> true
  in
  Alcotest.(check bool) "contiguous" true (contiguous chunks);
  Alcotest.(check int) "starts at 1" 1 (fst (List.hd chunks))

let test_param_of () =
  let k = Option.get (Kernels.Registry.find "fdtd_skewed") in
  Alcotest.(check int) "T fixed" 28 (K.param_of k ~n:5000 "T");
  Alcotest.(check int) "N is n" 5000 (K.param_of k ~n:5000 "N");
  Alcotest.(check bool) "unknown param raises" true
    (try
       ignore (K.param_of k ~n:10 "Z");
       false
     with Invalid_argument _ -> true)

let test_inversion_cached () =
  let k = Option.get (Kernels.Registry.find "correlation") in
  let a = K.inversion k and b = K.inversion k in
  Alcotest.(check bool) "same inversion object" true (a == b)

let test_ltmp_stays_imbalanced () =
  (* the paper's ltmp observation: even collapsed, the (i-j+1) work
     profile leaves static chunks imbalanced, so dynamic wins *)
  let k = Option.get (Kernels.Registry.find "ltmp") in
  let coll = k.collapsed_costs ~n:600 in
  let r =
    Ompsim.Sim.run ~costs:coll ~schedule:Ompsim.Schedule.Static ~nthreads:12
      ~overheads:Ompsim.Sim.no_overheads
  in
  Alcotest.(check bool) "collapsed static still imbalanced" true (r.Ompsim.Sim.imbalance > 1.2)

let test_correlation_collapsed_balanced () =
  let k = Option.get (Kernels.Registry.find "correlation") in
  let coll = k.collapsed_costs ~n:600 in
  let r =
    Ompsim.Sim.run ~costs:coll ~schedule:Ompsim.Schedule.Static ~nthreads:12
      ~overheads:Ompsim.Sim.no_overheads
  in
  Alcotest.(check bool) "collapsed static balanced" true (r.Ompsim.Sim.imbalance < 1.01);
  let outer = k.outer_costs ~n:600 in
  let r0 =
    Ompsim.Sim.run ~costs:outer ~schedule:Ompsim.Schedule.Static ~nthreads:12
      ~overheads:Ompsim.Sim.no_overheads
  in
  Alcotest.(check bool) "original static imbalanced" true (r0.Ompsim.Sim.imbalance > 1.5)

let test_parallel_execution_matches_serial () =
  (* drive a real kernel through Ompsim.Par with per-chunk recovery:
     the §V scheme end-to-end on OCaml domains *)
  let k = Option.get (Kernels.Registry.find "utma") in
  let n = 120 in
  let serial = k.K.serial_original ~n in
  let rc = K.recovery k ~n in
  let trip = Trahrhe.Recovery.trip_count rc in
  (* rebuild the same arrays as the kernel's setup and run in parallel *)
  let b =
    Array.init (n * n) (fun q ->
        let r = q / n and c = q mod n in
        if c >= r then float_of_int ((r + c) mod 23) else 0.0)
  in
  let cmat =
    Array.init (n * n) (fun q ->
        let r = q / n and c = q mod n in
        if c >= r then float_of_int ((r * c) mod 29) else 0.0)
  in
  List.iter
    (fun schedule ->
      let a = Array.make (n * n) 0.0 in
      Ompsim.Par.parallel_for_chunks ~nthreads:4 ~schedule ~n:trip
        (fun ~thread:_ ~start ~len ->
          let idx = Trahrhe.Recovery.recover_guarded rc (start + 1) in
          let i = ref idx.(0) and j = ref idx.(1) in
          for _ = 1 to len do
            a.((!i * n) + !j) <- b.((!i * n) + !j) +. cmat.((!i * n) + !j);
            incr j;
            if !j >= n then begin
              incr i;
              j := !i
            end
          done);
      let sum = ref 0.0 in
      Array.iteri (fun q v -> sum := !sum +. (v *. float_of_int ((q mod 97) + 1))) a;
      Alcotest.(check (float 1e-9))
        (Ompsim.Schedule.to_string schedule ^ " parallel = serial")
        serial !sum)
    [ Ompsim.Schedule.Static; Ompsim.Schedule.Dynamic 256; Ompsim.Schedule.Guided 128 ]

let test_reduction_kernels () =
  (* the reduction kernels carry a declared clause whose serial fold
     must agree with (a) the hand-written reference loops, (b) the
     recovery's per-chunk walk_reduce_sum, and (c) the parallel
     reduce_chunks combine tree under every schedule *)
  List.iter
    (fun name ->
      let k = Option.get (Kernels.Registry.find name) in
      Alcotest.(check bool) (name ^ " declares a clause") true (k.K.nest.Trahrhe.Nest.reduce <> None);
      let n = 12 in
      let param = K.param_of k ~n in
      let rc = K.recovery k ~n in
      let trip = Trahrhe.Recovery.trip_count rc in
      (* serial fold of the clause over the whole space *)
      let serial = ref 0 in
      Trahrhe.Nest.iterate k.K.nest ~param (fun idx ->
          serial := !serial + Trahrhe.Recovery.reduce_value_int rc idx);
      Alcotest.(check (float 0.0))
        (name ^ ": hand-written reference = clause fold")
        (k.K.serial_original ~n)
        (float_of_int !serial);
      Alcotest.(check int)
        (name ^ ": one-shot walk_reduce_sum = serial")
        !serial
        (Trahrhe.Recovery.walk_reduce_sum rc ~pc:1 ~len:trip);
      List.iter
        (fun schedule ->
          let r =
            Ompsim.Par.reduce_chunks ~nthreads:4 ~schedule ~n:trip ~combine:( + )
              (fun ~thread:_ ~start ~len ->
                Trahrhe.Recovery.walk_reduce_sum rc ~pc:(start + 1) ~len)
          in
          Alcotest.(check (option int))
            (Printf.sprintf "%s: %s parallel reduction = serial" name
               (Ompsim.Schedule.to_string schedule))
            (Some !serial) r)
        [ Ompsim.Schedule.Static;
          Ompsim.Schedule.Dynamic 7;
          Ompsim.Schedule.Guided 5;
          Ompsim.Schedule.Work_stealing 16;
          Ompsim.Schedule.Dnc 3 ])
    [ "correlation_reduce"; "covariance_reduce" ]

let suites =
  [ ( "kernels",
      [ Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "iteration-space families" `Quick test_families_covered;
        Alcotest.test_case "cost arrays consistent with geometry" `Quick test_cost_arrays_consistent;
        Alcotest.test_case "outer cost rows" `Quick test_outer_costs_length;
        Alcotest.test_case "chunk starts" `Quick test_chunk_starts;
        Alcotest.test_case "param_of" `Quick test_param_of;
        Alcotest.test_case "inversion cache" `Quick test_inversion_cached;
        Alcotest.test_case "ltmp stays imbalanced (paper)" `Quick test_ltmp_stays_imbalanced;
        Alcotest.test_case "correlation balance flip" `Quick test_correlation_collapsed_balanced;
        Alcotest.test_case "reduction kernels (clause = reference = parallel)" `Quick
          test_reduction_kernels;
        Alcotest.test_case "collapsed checksums match originals" `Slow test_checksums_match;
        Alcotest.test_case "parallel domains execution (§V end-to-end)" `Slow
          test_parallel_execution_matches_serial ] ) ]
