(* The service layer (ISSUE 5): exact codec round-trips over random
   values, fingerprint alpha-invariance, the two-tier plan cache
   (LRU, single-flight, disk store with corrupt/stale recovery), and
   the line-protocol front end. *)

module A = Polymath.Affine
module P = Polymath.Polynomial
module Q = Zmath.Rat
module N = Trahrhe.Nest
module E = Symx.Expr
module Fp = Service.Fingerprint
module Plan = Service.Plan
module Cache = Service.Cache
module Server = Service.Server

let rand = Random.State.make [| 0x5e2f1ce5 |]
let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~rand) tests

(* ---------------------------------------------------------------- *)
(* Codec round trips                                                *)
(* ---------------------------------------------------------------- *)

(* through the text form, not just the sexp tree: the disk tier
   stores rendered strings, so the parser is part of the round trip *)
let reparse sexp =
  match Service.Sexp.of_string (Service.Sexp.to_string sexp) with
  | Ok s -> s
  | Error e -> failwith ("sexp did not reparse: " ^ e)

let gen_rat =
  QCheck.Gen.(
    map2
      (fun n d -> Q.of_ints n (1 + abs d))
      (int_range (-1000000) 1000000)
      (int_range 0 9999))

let arb_rat = QCheck.make ~print:Q.to_string gen_rat

let prop_rat_roundtrip =
  QCheck.Test.make ~name:"codec: rational round-trips exactly" ~count:500 arb_rat (fun q ->
      Q.equal q (Service.Codec.to_rat (reparse (Service.Codec.of_rat q))))

let gen_poly =
  (* rational coefficients force the decimal-text path for both
     numerators and denominators *)
  QCheck.Gen.(
    map
      (fun coeffs ->
        List.fold_left
          (fun acc (c, d, ei, ej) ->
            P.add acc
              (P.scale
                 (Q.of_ints c (1 + d))
                 (P.mul (P.pow (P.var "i") ei) (P.pow (P.var "j") ej))))
          P.zero coeffs)
      (list_size (int_range 0 6)
         (quad (int_range (-50) 50) (int_range 0 6) (int_range 0 4) (int_range 0 4))))

let arb_poly = QCheck.make ~print:P.to_string gen_poly

let prop_poly_roundtrip =
  QCheck.Test.make ~name:"codec: polynomial round-trips exactly" ~count:300 arb_poly (fun p ->
      P.equal p (Service.Codec.to_poly (reparse (Service.Codec.of_poly p))))

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    frequency
      [ (3, map (fun q -> E.Const q) gen_rat);
        (3, oneofl [ E.Var "pc"; E.Var "p0"; E.Var "x1" ]);
        (1, return E.I) ]
  in
  (* raw constructors on purpose: the codec must carry any tree the
     inversion pipeline might build, normalized or not *)
  fix
    (fun self n ->
      if n = 0 then leaf
      else
        frequency
          [ (2, leaf);
            (2, map (fun xs -> E.Sum xs) (list_size (int_range 2 3) (self (n / 2))));
            (2, map (fun xs -> E.Prod xs) (list_size (int_range 2 3) (self (n / 2))));
            ( 2,
              map2
                (fun e q -> E.Pow (e, q))
                (self (n / 2))
                (oneofl [ Q.of_ints 1 2; Q.of_ints 1 3; Q.of_int (-1); Q.of_int 2 ]) ) ])
    4

let arb_expr = QCheck.make ~print:E.to_string gen_expr

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"codec: expression tree round-trips exactly" ~count:300 arb_expr
    (fun e -> E.equal e (Service.Codec.to_expr (reparse (Service.Codec.of_expr e))))

(* the oracle's nest family: valid, non-empty, degree within the
   closed-form range — reused here so the plan codec sees real
   inversion output (radicals and all), not toy values *)
let var_names = [| "i"; "j"; "k" |]

let gen_nest : N.t QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 3 >>= fun depth ->
  let gen_level k =
    int_range 0 2 >>= fun c ->
    (if k = 0 then return []
     else
       int_range (-1) (k - 1) >>= fun pick ->
       return (if pick < 0 then [] else [ (var_names.(pick), Q.one) ]))
    >>= fun lower_terms ->
    let lower = A.make lower_terms (Q.of_int c) in
    let extent_gens =
      [ (3, int_range 1 4 >>= fun e -> return (A.const (Q.of_int e)));
        (3, int_range 0 2 >>= fun e -> return (A.make [ ("N", Q.one) ] (Q.of_int e))) ]
      @
      if k = 0 then []
      else
        [ ( 2,
            int_range 0 (k - 1) >>= fun p ->
            int_range 1 3 >>= fun e ->
            return (A.make [ (var_names.(p), Q.one) ] (Q.of_int e)) ) ]
    in
    frequency extent_gens >>= fun extent ->
    return { N.var = var_names.(k); lower; upper = A.add lower extent }
  in
  let rec build k acc =
    if k = depth then return (List.rev acc)
    else gen_level k >>= fun l -> build (k + 1) (l :: acc)
  in
  build 0 [] >>= fun levels -> return (N.make ~params:[ "N" ] levels)

let arb_nest = QCheck.make ~print:(Format.asprintf "%a" N.pp) gen_nest

let compile_exn nest =
  let canonical, _ = Fp.canonicalize nest in
  match Plan.compile canonical with
  | Ok p -> p
  | Error e -> QCheck.Test.fail_reportf "plan compile failed on a valid nest: %s" e

let prop_plan_roundtrip =
  QCheck.Test.make ~name:"codec: compiled plan round-trips exactly" ~count:100 arb_nest
    (fun nest ->
      let p = compile_exn nest in
      match Plan.decode (Plan.encode p) with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok p' -> Plan.equal p p')

(* ---------------------------------------------------------------- *)
(* Fingerprint                                                       *)
(* ---------------------------------------------------------------- *)

let tri ~iv ~jv ~pv =
  N.make ~params:[ pv ]
    [ { N.var = iv; lower = A.const Q.zero; upper = A.make [ (pv, Q.one) ] Q.zero };
      { N.var = jv;
        lower = A.make [ (iv, Q.one) ] Q.zero;
        upper = A.make [ (pv, Q.one) ] Q.one
      }
    ]

let test_fp_alpha_invariant () =
  Alcotest.(check string)
    "renamed nest has the same fingerprint"
    (Fp.hash (tri ~iv:"i" ~jv:"j" ~pv:"N"))
    (Fp.hash (tri ~iv:"a" ~jv:"b" ~pv:"M"))

let test_fp_term_order_invariant () =
  (* Affine.make canonicalizes term order, so the textual order the
     nest was built with must not leak into the hash *)
  let upper1 = A.make [ ("N", Q.one); ("i", Q.one) ] Q.zero in
  let upper2 = A.make [ ("i", Q.one); ("N", Q.one) ] Q.zero in
  let nest u =
    N.make ~params:[ "N" ]
      [ { N.var = "i"; lower = A.const Q.zero; upper = A.make [ ("N", Q.one) ] Q.zero };
        { N.var = "j"; lower = A.const Q.zero; upper = u }
      ]
  in
  Alcotest.(check string) "term order" (Fp.hash (nest upper1)) (Fp.hash (nest upper2))

let test_fp_distinguishes () =
  let a = tri ~iv:"i" ~jv:"j" ~pv:"N" in
  let b =
    N.make ~params:[ "N" ]
      [ { N.var = "i"; lower = A.const Q.zero; upper = A.make [ ("N", Q.one) ] Q.zero };
        { N.var = "j";
          lower = A.make [ ("i", Q.one) ] Q.zero;
          upper = A.make [ ("N", Q.one) ] (Q.of_int 2)
        }
      ]
  in
  if Fp.hash a = Fp.hash b then Alcotest.fail "different nests collided"

let test_fp_idempotent () =
  let nest = tri ~iv:"row" ~jv:"col" ~pv:"SIZE" in
  let canonical, _ = Fp.canonicalize nest in
  let canonical2, renaming2 = Fp.canonicalize canonical in
  Alcotest.(check string) "digest stable" (Fp.digest canonical) (Fp.digest canonical2);
  List.iter
    (fun (orig, canon) -> Alcotest.(check string) "identity renaming" orig canon)
    (renaming2.Fp.iterators @ renaming2.Fp.params)

let test_fp_canonical_param () =
  let _, renaming = Fp.canonicalize (tri ~iv:"i" ~jv:"j" ~pv:"N") in
  let param = function "N" -> 42 | s -> Alcotest.failf "asked for %s" s in
  let cparam = Fp.canonical_param renaming param in
  Alcotest.(check int) "p0 reads N" 42 (cparam "p0");
  Alcotest.check_raises "unknown canonical name"
    (Invalid_argument "Fingerprint.canonical_param: unknown parameter q9") (fun () ->
      ignore (cparam "q9"))

let rename_nest (nest : N.t) =
  let table =
    [ ("i", "outer"); ("j", "mid"); ("k", "inner"); ("N", "SZ") ]
  in
  let rn s = match List.assoc_opt s table with Some s' -> s' | None -> s in
  let rn_affine a =
    A.make (List.map (fun (v, c) -> (rn v, c)) (A.terms a)) (A.const_part a)
  in
  N.make
    ~params:(List.map rn nest.N.params)
    (List.map
       (fun (l : N.level) ->
         { N.var = rn l.var; lower = rn_affine l.lower; upper = rn_affine l.upper })
       nest.N.levels)

let prop_fp_alpha_invariant =
  QCheck.Test.make ~name:"fingerprint: alpha-renaming never changes the hash" ~count:200
    arb_nest (fun nest -> Fp.hash nest = Fp.hash (rename_nest nest))

(* ---------------------------------------------------------------- *)
(* Cache: in-memory tier                                             *)
(* ---------------------------------------------------------------- *)

(* distinct fingerprints by construction: the extent constant differs *)
let nest_of_seed s =
  N.make ~params:[ "N" ]
    [ { N.var = "i"; lower = A.const Q.zero; upper = A.make [ ("N", Q.one) ] Q.zero };
      { N.var = "j";
        lower = A.make [ ("i", Q.one) ] Q.zero;
        upper = A.make [ ("N", Q.one) ] (Q.of_int (1 + s))
      }
    ]

let counting_compile calls =
  fun nest ->
   incr calls;
   Plan.compile nest

let get_plan = function
  | Ok (plan, _) -> plan
  | Error e -> Alcotest.failf "cache lookup failed: %s" e

let check_stats what ~hits ~disk_hits ~misses ~evictions ~waits (s : Cache.stats) =
  Alcotest.(check int) (what ^ ": hits") hits s.Cache.hits;
  Alcotest.(check int) (what ^ ": disk hits") disk_hits s.Cache.disk_hits;
  Alcotest.(check int) (what ^ ": misses") misses s.Cache.misses;
  Alcotest.(check int) (what ^ ": evictions") evictions s.Cache.evictions;
  Alcotest.(check int) (what ^ ": single-flight waits") waits s.Cache.singleflight_waits

let test_cache_hit_miss () =
  let cache = Cache.create ~capacity:4 ~dir:None () in
  let calls = ref 0 in
  let compile = counting_compile calls in
  let p1 = get_plan (Cache.find_or_compile ~compile cache (nest_of_seed 0)) in
  let p2 = get_plan (Cache.find_or_compile ~compile cache (nest_of_seed 0)) in
  Alcotest.(check int) "compiled once" 1 !calls;
  Alcotest.(check bool) "same plan" true (Plan.equal p1 p2);
  check_stats "after hit" ~hits:1 ~disk_hits:0 ~misses:1 ~evictions:0 ~waits:0
    (Cache.stats cache);
  Alcotest.(check int) "one entry" 1 (Cache.size cache)

let test_cache_alpha_hit () =
  (* alpha-equivalent nests share the entry: second lookup is a hit *)
  let cache = Cache.create ~capacity:4 ~dir:None () in
  let calls = ref 0 in
  let compile = counting_compile calls in
  ignore (get_plan (Cache.find_or_compile ~compile cache (tri ~iv:"i" ~jv:"j" ~pv:"N")));
  ignore (get_plan (Cache.find_or_compile ~compile cache (tri ~iv:"a" ~jv:"b" ~pv:"M")));
  Alcotest.(check int) "compiled once for both spellings" 1 !calls;
  check_stats "alpha" ~hits:1 ~disk_hits:0 ~misses:1 ~evictions:0 ~waits:0 (Cache.stats cache)

let test_cache_lru_eviction () =
  let cache = Cache.create ~capacity:2 ~dir:None () in
  let calls = ref 0 in
  let compile = counting_compile calls in
  let req s = ignore (get_plan (Cache.find_or_compile ~compile cache (nest_of_seed s))) in
  req 0;
  (* order: A *)
  req 1;
  (* B A *)
  req 0;
  (* A B   <- the hit refreshes A, so B is now least-recent *)
  req 2;
  (* C A, B evicted *)
  check_stats "after eviction" ~hits:1 ~disk_hits:0 ~misses:3 ~evictions:1 ~waits:0
    (Cache.stats cache);
  Alcotest.(check int) "bounded" 2 (Cache.size cache);
  req 0;
  Alcotest.(check int) "A survived (refreshed by its hit)" 3 !calls;
  req 1;
  Alcotest.(check int) "B was the LRU victim" 4 !calls

let test_cache_failure_not_cached () =
  let cache = Cache.create ~capacity:4 ~dir:None () in
  let attempts = ref 0 in
  let flaky nest =
    incr attempts;
    if !attempts = 1 then Error "boom" else Plan.compile nest
  in
  (match Cache.find_or_compile ~compile:flaky cache (nest_of_seed 0) with
  | Error e -> Alcotest.(check string) "failure surfaces" "boom" e
  | Ok _ -> Alcotest.fail "first compile should fail");
  Alcotest.(check int) "nothing cached after failure" 0 (Cache.size cache);
  ignore (get_plan (Cache.find_or_compile ~compile:flaky cache (nest_of_seed 0)));
  Alcotest.(check int) "retried, not poisoned" 2 !attempts;
  check_stats "flaky" ~hits:0 ~disk_hits:0 ~misses:2 ~evictions:0 ~waits:0 (Cache.stats cache)

(* Deterministic single-flight: the injected compile parks on a gate
   that the test only opens after the cache reports every follower
   arrived, so followers never race past the in-flight window. *)
let singleflight ~nrequests ~compile_of_gate cache nest =
  let gate = Mutex.create () in
  let open_flag = ref false in
  let opened = Condition.create () in
  let gated nest =
    Mutex.lock gate;
    while not !open_flag do
      Condition.wait opened gate
    done;
    Mutex.unlock gate;
    compile_of_gate nest
  in
  let results = Array.make nrequests (Error "unset") in
  let domains =
    Array.init nrequests (fun r ->
        Domain.spawn (fun () ->
            results.(r) <- Cache.find_or_compile ~compile:gated cache nest))
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (Cache.stats cache).Cache.singleflight_waits < nrequests - 1
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.001
  done;
  Mutex.lock gate;
  open_flag := true;
  Condition.broadcast opened;
  Mutex.unlock gate;
  Array.iter Domain.join domains;
  results

let test_cache_singleflight () =
  let cache = Cache.create ~capacity:4 ~dir:None () in
  let calls = ref 0 in
  let results =
    singleflight ~nrequests:4 ~compile_of_gate:(counting_compile calls) cache
      (nest_of_seed 0)
  in
  Alcotest.(check int) "one compile for four concurrent requests" 1 !calls;
  let fresh = compile_exn (nest_of_seed 0) in
  Array.iter
    (fun r -> Alcotest.(check bool) "every caller got the plan" true (Plan.equal fresh (get_plan r)))
    results;
  check_stats "single-flight" ~hits:0 ~disk_hits:0 ~misses:1 ~evictions:0 ~waits:3
    (Cache.stats cache)

let test_cache_singleflight_failure () =
  let cache = Cache.create ~capacity:4 ~dir:None () in
  let results =
    singleflight ~nrequests:3 ~compile_of_gate:(fun _ -> Error "boom") cache (nest_of_seed 0)
  in
  Array.iter
    (fun r ->
      match r with
      | Error e -> Alcotest.(check string) "waiters see the winner's error" "boom" e
      | Ok _ -> Alcotest.fail "compile failure must reach every caller")
    results;
  Alcotest.(check int) "failure cached nothing" 0 (Cache.size cache);
  check_stats "single-flight failure" ~hits:0 ~disk_hits:0 ~misses:1 ~evictions:0 ~waits:2
    (Cache.stats cache);
  (* the flight is gone: a later request compiles afresh and succeeds *)
  let calls = ref 0 in
  ignore (get_plan (Cache.find_or_compile ~compile:(counting_compile calls) cache (nest_of_seed 0)));
  Alcotest.(check int) "recovered after failed flight" 1 !calls

(* ---------------------------------------------------------------- *)
(* Cache: disk tier                                                  *)
(* ---------------------------------------------------------------- *)

let tmp_counter = ref 0

let with_temp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ompsim-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let plan_file dir nest = Filename.concat dir (Fp.hash nest ^ ".plan")

let test_disk_roundtrip () =
  with_temp_dir @@ fun dir ->
  let nest = nest_of_seed 0 in
  let writer = Cache.create ~capacity:4 ~dir:(Some dir) () in
  let p = get_plan (Cache.find_or_compile writer nest) in
  Alcotest.(check bool) "entry on disk" true (Sys.file_exists (plan_file dir nest));
  (* a fresh cache (cold memory) restores the identical plan from disk *)
  let reader = Cache.create ~capacity:4 ~dir:(Some dir) () in
  let calls = ref 0 in
  let p' = get_plan (Cache.find_or_compile ~compile:(counting_compile calls) reader nest) in
  Alcotest.(check int) "no recompile" 0 !calls;
  Alcotest.(check bool) "identical plan" true (Plan.equal p p');
  check_stats "disk hit" ~hits:1 ~disk_hits:1 ~misses:0 ~evictions:0 ~waits:0
    (Cache.stats reader);
  (* and the disk hit landed in memory: next lookup skips the disk *)
  Sys.remove (plan_file dir nest);
  ignore (get_plan (Cache.find_or_compile ~compile:(counting_compile calls) reader nest));
  Alcotest.(check int) "promoted to memory" 0 !calls

let read_entry path =
  match Service.Envelope.unwrap (In_channel.with_open_bin path In_channel.input_all) with
  | Ok payload -> Plan.decode payload
  | Error `Corrupt -> Error "envelope failed to verify"

let test_disk_corrupt_entry () =
  with_temp_dir @@ fun dir ->
  let nest = nest_of_seed 0 in
  let path = plan_file dir nest in
  let oc = open_out path in
  output_string oc "total garbage, not a plan\n";
  close_out oc;
  let cache = Cache.create ~capacity:4 ~dir:(Some dir) () in
  let calls = ref 0 in
  let p = get_plan (Cache.find_or_compile ~compile:(counting_compile calls) cache nest) in
  Alcotest.(check int) "corrupt entry recompiled" 1 !calls;
  check_stats "corrupt" ~hits:0 ~disk_hits:0 ~misses:1 ~evictions:0 ~waits:0
    (Cache.stats cache);
  (* the corrupt bytes were quarantined, not silently overwritten *)
  Alcotest.(check int) "quarantine counted" 1 (Cache.stats cache).Cache.quarantined;
  let bad = Filename.concat dir (Fp.hash nest ^ ".bad") in
  Alcotest.(check bool) "corrupt bytes preserved in .bad" true (Sys.file_exists bad);
  Alcotest.(check string)
    "quarantined bytes are the planted ones" "total garbage, not a plan\n"
    (In_channel.with_open_bin bad In_channel.input_all);
  (* the recompile overwrote the bad entry with a loadable one *)
  (match read_entry path with
  | Ok p' -> Alcotest.(check bool) "overwritten with a valid plan" true (Plan.equal p p')
  | Error e -> Alcotest.failf "entry still corrupt after recompile: %s" e)

let test_disk_stale_version () =
  with_temp_dir @@ fun dir ->
  let nest = nest_of_seed 0 in
  let p = compile_exn nest in
  let encoded = Plan.encode p in
  let current = Printf.sprintf "(version %d)" Plan.format_version in
  let at =
    (* find the header's version clause; the codec never emits this
       exact atom pair anywhere else *)
    let rec find i =
      if i + String.length current > String.length encoded then
        Alcotest.failf "encoded plan lacks %s" current
      else if String.sub encoded i (String.length current) = current then i
      else find (i + 1)
    in
    find 0
  in
  let stale =
    String.sub encoded 0 at ^ "(version 9999)"
    ^ String.sub encoded
        (at + String.length current)
        (String.length encoded - at - String.length current)
  in
  let oc = open_out (plan_file dir nest) in
  (* a well-formed envelope around a stale payload: this is the
     old-format path (ordinary miss), not the corruption path *)
  output_string oc (Service.Envelope.wrap stale);
  close_out oc;
  let cache = Cache.create ~capacity:4 ~dir:(Some dir) () in
  let calls = ref 0 in
  ignore (get_plan (Cache.find_or_compile ~compile:(counting_compile calls) cache nest));
  Alcotest.(check int) "stale version treated as a miss" 1 !calls;
  Alcotest.(check int) "stale version is not corruption" 0 (Cache.stats cache).Cache.quarantined

let test_disk_wrong_fingerprint () =
  with_temp_dir @@ fun dir ->
  (* a valid plan parked under another nest's name must not be served *)
  let nest_a = nest_of_seed 0 and nest_b = nest_of_seed 1 in
  let pa = compile_exn nest_a in
  let oc = open_out (plan_file dir nest_b) in
  output_string oc (Service.Envelope.wrap (Plan.encode pa));
  close_out oc;
  let cache = Cache.create ~capacity:4 ~dir:(Some dir) () in
  let calls = ref 0 in
  let pb = get_plan (Cache.find_or_compile ~compile:(counting_compile calls) cache nest_b) in
  Alcotest.(check int) "mismatched entry recompiled" 1 !calls;
  Alcotest.(check bool) "got b's plan, not a's" false (Plan.equal pa pb)

(* ---------------------------------------------------------------- *)
(* Envelope: CRC-checksummed disk entries                            *)
(* ---------------------------------------------------------------- *)

module Env = Service.Envelope

let prop_envelope_roundtrip =
  QCheck.Test.make ~name:"envelope: wrap/unwrap round-trips any payload" ~count:500
    QCheck.(string_gen QCheck.Gen.char)
    (fun payload -> Env.unwrap (Env.wrap payload) = Ok payload)

let prop_envelope_detects_flip =
  (* flipping any single byte of the wrapped form must be caught:
     header damage fails the parse, payload damage fails the CRC *)
  QCheck.Test.make ~name:"envelope: any single-byte flip is corrupt" ~count:200
    QCheck.(pair (string_gen QCheck.Gen.char) small_nat)
    (fun (payload, at) ->
      let wrapped = Env.wrap payload in
      let at = at mod String.length wrapped in
      let flipped =
        String.mapi
          (fun i c -> if i = at then Char.chr (Char.code c lxor 0x01) else c)
          wrapped
      in
      flipped = wrapped || Env.unwrap flipped = Error `Corrupt)

let test_envelope_truncation () =
  let wrapped = Env.wrap "a plan-sized payload" in
  for keep = 0 to String.length wrapped - 1 do
    match Env.unwrap (String.sub wrapped 0 keep) with
    | Error `Corrupt -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes unwrapped" keep
  done;
  (* trailing garbage (a torn second write) is also not a clean entry *)
  match Env.unwrap (wrapped ^ "x") with
  | Error `Corrupt -> ()
  | Ok _ -> Alcotest.fail "trailing garbage unwrapped"

let test_envelope_foreign_bytes () =
  List.iter
    (fun s ->
      match Env.unwrap s with
      | Error `Corrupt -> ()
      | Ok _ -> Alcotest.failf "foreign bytes unwrapped: %S" s)
    [ ""; "\n"; "total garbage, not a plan\n"; "ompsim-entry\n"; "ompsim-entry 1 zzzzzzzz 0\n" ]

(* ---------------------------------------------------------------- *)
(* Startup janitor                                                  *)
(* ---------------------------------------------------------------- *)

(* a pid guaranteed dead: a reaped child's *)
let dead_pid () =
  let pid = Unix.create_process "/bin/sh" [| "/bin/sh"; "-c"; "exit 0" |] Unix.stdin Unix.stdout Unix.stderr in
  ignore (Unix.waitpid [] pid);
  pid

let touch path =
  let oc = open_out path in
  close_out oc

let test_janitor_sweep () =
  with_temp_dir @@ fun dir ->
  let dead = dead_pid () and live = Unix.getpid () in
  let dead_tmp = Filename.concat dir (Printf.sprintf ".aaaa1111.%d.tmp" dead) in
  let dead_src = Filename.concat dir (Printf.sprintf ".bbbb2222.%d.c" dead) in
  let live_tmp = Filename.concat dir (Printf.sprintf ".aaaa1111.%d.tmp" live) in
  let bad = Filename.concat dir "cccc3333.bad" in
  let stale_lock = Filename.concat dir "dddd4444.lock" in
  let published = Filename.concat dir "eeee5555.plan" in
  List.iter touch [ dead_tmp; dead_src; live_tmp; bad; stale_lock ];
  let oc = open_out published in
  output_string oc (Env.wrap "payload");
  close_out oc;
  let cache = Cache.create ~capacity:4 ~dir:(Some dir) () in
  Alcotest.(check int)
    "dead temps + .bad + stale lock swept" 4 (Cache.stats cache).Cache.janitor_removed;
  Alcotest.(check bool) "dead writer's .tmp gone" false (Sys.file_exists dead_tmp);
  Alcotest.(check bool) "dead writer's .c gone" false (Sys.file_exists dead_src);
  Alcotest.(check bool) ".bad reclaimed" false (Sys.file_exists bad);
  Alcotest.(check bool) "stale .lock reclaimed" false (Sys.file_exists stale_lock);
  Alcotest.(check bool) "live writer's temp kept" true (Sys.file_exists live_tmp);
  Alcotest.(check bool) "published entry kept" true (Sys.file_exists published);
  (* a second sweep finds nothing new *)
  Alcotest.(check int) "sweep is idempotent" 0 (Cache.sweep cache)

(* regression: POSIX record locks never conflict within one process,
   so without the in-process reservation the janitor's trylock would
   "win" against our own live lock, unlink it, and — because closing
   any fd onto a locked file drops the process's lock — destroy the
   holder's cross-process exclusion mid-compile *)
let test_lockfile_same_process_live_lock () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "aaaa1111.lock" in
  match Service.Lockfile.acquire ~timeout_ms:500 path with
  | Error _ -> Alcotest.fail "first acquire failed"
  | Ok lock ->
    Alcotest.(check bool) "live lock not cleaned" false (Service.Lockfile.try_clean path);
    Alcotest.(check bool) "lock file survives the sweep" true (Sys.file_exists path);
    (* a sibling acquire in this process queues and times out instead
       of silently sharing (and later destroying) the kernel lock *)
    (match Service.Lockfile.acquire ~timeout_ms:80 ~poll_ms:10 path with
    | Error `Timeout -> ()
    | Error (`Unavailable e) -> Alcotest.failf "unexpected failure: %s" e
    | Ok _ -> Alcotest.fail "second same-process acquire won a held lock");
    Service.Lockfile.release lock;
    Alcotest.(check bool) "release removes the file" false (Sys.file_exists path);
    (* a genuinely orphaned file (no kernel holder anywhere) is still
       reclaimable once the reservation is gone *)
    touch path;
    Alcotest.(check bool) "orphan reclaimed" true (Service.Lockfile.try_clean path);
    Alcotest.(check bool) "orphan removed" false (Sys.file_exists path)

(* ---------------------------------------------------------------- *)
(* Native tier: failure caching policy                               *)
(* ---------------------------------------------------------------- *)

let with_env kvs f =
  let saved = List.map (fun (k, _) -> (k, Option.value ~default:"" (Sys.getenv_opt k))) kvs in
  List.iter (fun (k, v) -> Unix.putenv k v) kvs;
  Fun.protect ~finally:(fun () -> List.iter (fun (k, v) -> Unix.putenv k v) saved) f

(* regression: a specialize failure caused by the toolchain (here a
   missing compiler) must not be pinned to the fingerprint forever —
   once the toolchain recovers, the same plan must re-engage the
   native tier. Only plan-shaped (emit) failures are cached; the
   circuit breaker bounds the retry cost of transient ones. *)
let test_native_transient_failure_not_pinned () =
  if not (Jit.Abi.functional ()) then Alcotest.skip ();
  with_temp_dir @@ fun dir ->
  match Plan.compile (nest_of_seed 0) with
  | Error e -> Alcotest.failf "plan compile failed: %s" e
  | Ok plan ->
    let tier = Service.Native.create ~dir:(Some dir) () in
    let param _ = 8 in
    with_env [ ("OMPSIM_JIT_CC", Filename.concat dir "no-such-cc") ] (fun () ->
      match Service.Native.recovery_explain tier plan ~param with
      | _, None -> Alcotest.fail "missing compiler still served native"
      | _, Some _ -> ());
    (* the toolchain "recovers" (env restored): same tier, same plan *)
    (match Service.Native.recovery_explain tier plan ~param with
    | _, Some e -> Alcotest.failf "recovered toolchain left pinned to fallback: %s" e
    | _, None -> ());
    let s = Service.Native.stats tier in
    Alcotest.(check int) "served natively after recovery" 1 s.Service.Native.served;
    Alcotest.(check int) "one fallback during the outage" 1 s.Service.Native.fallbacks;
    Service.Native.clear tier

(* ---------------------------------------------------------------- *)
(* Multi-process writers over one shared store                      *)
(* ---------------------------------------------------------------- *)

(* Child-process entry point, dispatched from Test_main before
   Alcotest.run when argv.(1) = "--cache-child" (OCaml 5 cannot fork
   once domains exist, so the test execs itself instead). Opens the
   shared store, requests the one nest, prints the digest of the
   encoded plan, exits 0. The compile override leaves a marker file so
   the parent can count compiles across processes, and sleeps to
   widen the race window the file lock must close. *)
let cache_child_main argv =
  let dir = argv.(0) in
  let compile n =
    touch (Filename.concat dir (Printf.sprintf "compiled.%d" (Unix.getpid ())));
    Unix.sleepf 0.2;
    Plan.compile n
  in
  let cache = Cache.create ~capacity:4 ~dir:(Some dir) () in
  match Cache.find_or_compile ~compile cache (nest_of_seed 0) with
  | Ok (plan, _) ->
    (* own line with a marker: linked test modules may print to
       stdout during init (qcheck's seed line) before we get here *)
    Printf.printf "\ndigest=%s\n" (Digest.to_hex (Digest.string (Plan.encode plan)));
    exit 0
  | Error e ->
    prerr_endline e;
    exit 1

let test_multiprocess_single_writer () =
  with_temp_dir @@ fun dir ->
  let exe = Sys.executable_name in
  let spawn () =
    let r, w = Unix.pipe () in
    let pid = Unix.create_process exe [| exe; "--cache-child"; dir |] Unix.stdin w Unix.stderr in
    Unix.close w;
    (pid, r)
  in
  let a = spawn () in
  let b = spawn () in
  let harvest (pid, fd) =
    let buf = Buffer.create 64 in
    let bytes = Bytes.create 256 in
    let rec go () =
      match Unix.read fd bytes 0 256 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf bytes 0 n;
        go ()
    in
    go ();
    Unix.close fd;
    let _, status = Unix.waitpid [] pid in
    let digest =
      List.find_map
        (fun line ->
          if String.length line > 7 && String.sub line 0 7 = "digest=" then
            Some (String.sub line 7 (String.length line - 7))
          else None)
        (String.split_on_char '\n' (Buffer.contents buf))
    in
    (status, Option.value ~default:"" digest)
  in
  let st_a, dig_a = harvest a in
  let st_b, dig_b = harvest b in
  (match (st_a, st_b) with
  | Unix.WEXITED 0, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "a cache child did not exit cleanly");
  Alcotest.(check bool) "children got real digests" true (String.length dig_a = 32);
  Alcotest.(check string) "byte-identical plans across processes" dig_a dig_b;
  let markers, residue =
    Array.fold_left
      (fun (m, r) name ->
        let is_prefix p = String.length name >= String.length p && String.sub name 0 (String.length p) = p in
        if is_prefix "compiled." then (m + 1, r)
        else if
          name.[0] = '.'
          || Filename.check_suffix name ".lock"
          || Filename.check_suffix name ".bad"
        then (m, name :: r)
        else (m, r))
      (0, []) (Sys.readdir dir)
  in
  Alcotest.(check int) "exactly one compile across both processes" 1 markers;
  (match residue with
  | [] -> ()
  | files -> Alcotest.failf "store residue left behind: %s" (String.concat ", " files));
  (* and the published entry is a clean envelope *)
  let nest = nest_of_seed 0 in
  match read_entry (plan_file dir nest) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "published entry unreadable: %s" e

(* ---------------------------------------------------------------- *)
(* Server: request parsing and handling                              *)
(* ---------------------------------------------------------------- *)

let parse_ok line =
  match Server.parse_request line with
  | Ok (Some r) -> r
  | Ok None -> Alcotest.failf "parsed %S as blank" line
  | Error e -> Alcotest.failf "parse of %S failed: %s" line e

let parse_err line =
  match Server.parse_request line with
  | Error e -> e
  | Ok _ -> Alcotest.failf "parse of %S should have failed" line

let test_parse_blank () =
  List.iter
    (fun line ->
      match Server.parse_request line with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.failf "%S is not a request" line
      | Error e -> Alcotest.failf "%S should be ignored, got: %s" line e)
    [ ""; "   "; "# a comment"; "  # indented comment" ]

let test_parse_compile_kernel () =
  match parse_ok "compile kernel=utma label=tri" with
  | Server.Compile { label; nest } ->
    Alcotest.(check string) "label" "tri" label;
    Alcotest.(check int) "depth" 2 (N.depth nest)
  | _ -> Alcotest.fail "expected Compile"

let test_parse_inline_affine () =
  (* exercises the affine grammar: INT*IDENT, bare IDENT, leading
     minus, +/- chains *)
  match parse_ok "compile params=N levels=i=0..2*N+1,j=-1+i..N+i" with
  | Server.Compile { nest; _ } ->
    let lv = List.nth nest.N.levels 1 in
    Alcotest.(check bool) "lower j = i - 1" true
      (A.equal lv.N.lower (A.make [ ("i", Q.one) ] (Q.of_int (-1))));
    Alcotest.(check bool) "upper j = N + i" true
      (A.equal lv.N.upper (A.make [ ("N", Q.one); ("i", Q.one) ] Q.zero))
  | _ -> Alcotest.fail "expected Compile"

let test_parse_exec_opts () =
  match parse_ok "exec params=N=25 levels=i=0..N,j=i..N threads=2 schedule=dynamic:2 lanes=8 repeat=3 retries=1" with
  | Server.Exec { param; opts; _ } ->
    Alcotest.(check int) "param value" 25 (param "N");
    Alcotest.(check int) "threads" 2 opts.Server.threads;
    Alcotest.(check int) "lanes" 8 opts.Server.lanes;
    Alcotest.(check int) "repeat" 3 opts.Server.repeat;
    Alcotest.(check int) "retries" 1 opts.Server.retries;
    Alcotest.(check bool) "schedule" true (opts.Server.schedule = Ompsim.Schedule.Dynamic 2)
  | _ -> Alcotest.fail "expected Exec"

let test_parse_shutdown () =
  match parse_ok "shutdown" with
  | Server.Shutdown -> ()
  | _ -> Alcotest.fail "expected Shutdown"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_parse_rejects () =
  List.iter
    (fun (line, fragment) ->
      let e = parse_err line in
      if not (contains ~needle:fragment e) then
        Alcotest.failf "error for %S was %S, expected it to mention %S" line e fragment)
    [ ("frobnicate kernel=utma", "unknown operation");
      ("compile kernel=utma kernel=utma", "duplicate field");
      ("compile kernel=utma bogus=1", "unknown field");
      ("compile kernel=no_such_kernel", "unknown kernel");
      ("compile params=N", "levels");
      ("compile params=N levels=i=0..N n=4", "n");
      ("compile params=N levels=i=0*..N", "bad term");
      ("compile params=N levels=i=0..N+", "dangling sign");
      ("compile params=N levels=i=0toN", "LOWER..UPPER");
      ("exec params=N levels=i=0..N", "value for parameter");
      ("exec kernel=utma threads=0", "threads");
      ("compile", "kernel")
    ]

let test_handle_compile () =
  let cache = Cache.create ~capacity:4 ~dir:None () in
  let nest = tri ~iv:"i" ~jv:"j" ~pv:"N" in
  let response, ok = Server.handle cache (Server.Compile { label = "t"; nest }) in
  Alcotest.(check bool) "ok" true ok;
  if not (contains ~needle:(Printf.sprintf {|"fingerprint":"%s"|} (Fp.hash nest)) response)
  then Alcotest.failf "response lacks the nest fingerprint: %s" response

let default_opts =
  { Server.threads = 2;
    schedule = Ompsim.Schedule.Static;
    lanes = 1;
    repeat = 2;
    retries = 0;
    native = false;
    reduce = None }

let test_handle_exec () =
  let cache = Cache.create ~capacity:4 ~dir:None () in
  let nest = tri ~iv:"i" ~jv:"j" ~pv:"N" in
  (* exclusive upper bounds: i in [0, 6), j in [i, 7), so the trip
     count is sum_{i=0..5} (7 - i) = 27 *)
  let request =
    Server.Exec { label = "t"; nest; param = (fun _ -> 6); opts = default_opts }
  in
  let response, ok = Server.handle cache request in
  Alcotest.(check bool) "ok" true ok;
  if not (contains ~needle:{|"trip":27|} response) then
    Alcotest.failf "wrong trip count in %s" response;
  (* deterministic responses: a second identical request (now a cache
     hit) must produce the identical line *)
  let response2, _ = Server.handle cache request in
  Alcotest.(check string) "cache hit response identical" response response2;
  check_stats "handle" ~hits:1 ~disk_hits:0 ~misses:1 ~evictions:0 ~waits:0 (Cache.stats cache)

let test_run_batch () =
  let input =
    String.concat "\n"
      [ "# batch smoke";
        "compile kernel=utma label=one";
        "exec params=N=6 levels=i=0..N,j=i..N+1 label=two threads=2";
        "not-a-request";
        "compile kernel=utma label=three";
        "shutdown";
        "compile kernel=utma label=ignored-after-shutdown"
      ]
  in
  let cache = Cache.create ~capacity:8 ~dir:None () in
  let in_path = Filename.temp_file "ompsim-batch" ".in" in
  let out_path = Filename.temp_file "ompsim-batch" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove in_path;
      Sys.remove out_path)
    (fun () ->
      Out_channel.with_open_text in_path (fun oc -> output_string oc (input ^ "\n"));
      let rc =
        In_channel.with_open_text in_path (fun ic ->
            Out_channel.with_open_text out_path (fun oc ->
                Server.run_batch ~cache ~workers:3 ic oc))
      in
      Alcotest.(check int) "exit 1: one request failed to parse" 1 rc;
      let lines = In_channel.with_open_text out_path In_channel.input_lines in
      Alcotest.(check int) "one response per request, input order" 5 (List.length lines);
      let expect_label i label ok =
        let line = List.nth lines i in
        if not (contains ~needle:(Printf.sprintf {|"label":"%s"|} label) line) then
          Alcotest.failf "response %d is %s, wanted label %s" i line label;
        if ok <> contains ~needle:{|"status":"ok"|} line then
          Alcotest.failf "response %d has the wrong status: %s" i line
      in
      expect_label 0 "one" true;
      expect_label 1 "two" true;
      expect_label 2 "line:4" false;
      expect_label 3 "three" true;
      if not (contains ~needle:{|"op":"shutdown"|} (List.nth lines 4)) then
        Alcotest.failf "last response should acknowledge shutdown: %s" (List.nth lines 4);
      (* labels one and three are the same kernel: one miss, one hit *)
      let s = Cache.stats cache in
      Alcotest.(check int) "two distinct plans compiled" 2 s.Cache.misses;
      Alcotest.(check int) "repeat request hit" 1 (s.Cache.hits + s.Cache.singleflight_waits))

let suites =
  [ ( "service.codec",
      qsuite
        [ prop_rat_roundtrip; prop_poly_roundtrip; prop_expr_roundtrip; prop_plan_roundtrip ]
    );
    ( "service.envelope",
      [ Alcotest.test_case "every truncation is corrupt" `Quick test_envelope_truncation;
        Alcotest.test_case "foreign bytes are corrupt" `Quick test_envelope_foreign_bytes ]
      @ qsuite [ prop_envelope_roundtrip; prop_envelope_detects_flip ] );
    ( "service.fingerprint",
      [ Alcotest.test_case "alpha-renaming invariance" `Quick test_fp_alpha_invariant;
        Alcotest.test_case "bound term order invariance" `Quick test_fp_term_order_invariant;
        Alcotest.test_case "distinct nests get distinct hashes" `Quick test_fp_distinguishes;
        Alcotest.test_case "canonicalize is idempotent" `Quick test_fp_idempotent;
        Alcotest.test_case "canonical_param lifts valuations" `Quick test_fp_canonical_param
      ]
      @ qsuite [ prop_fp_alpha_invariant ] );
    ( "service.cache",
      [ Alcotest.test_case "hit/miss accounting, compile once" `Quick test_cache_hit_miss;
        Alcotest.test_case "alpha-equivalent nests share an entry" `Quick test_cache_alpha_hit;
        Alcotest.test_case "LRU evicts the least-recent entry" `Quick test_cache_lru_eviction;
        Alcotest.test_case "failed compile is not cached" `Quick test_cache_failure_not_cached;
        Alcotest.test_case "single-flight dedups concurrent misses" `Quick test_cache_singleflight;
        Alcotest.test_case "single-flight failure reaches all waiters" `Quick
          test_cache_singleflight_failure
      ] );
    ( "service.disk",
      [ Alcotest.test_case "store/load round trip across caches" `Quick test_disk_roundtrip;
        Alcotest.test_case "corrupt entry = miss, recompile, overwrite" `Quick
          test_disk_corrupt_entry;
        Alcotest.test_case "stale format version = miss" `Quick test_disk_stale_version;
        Alcotest.test_case "janitor sweeps orphans, keeps live state" `Quick test_janitor_sweep;
        Alcotest.test_case "janitor never breaks a same-process live lock" `Quick
          test_lockfile_same_process_live_lock;
        Alcotest.test_case "transient specialize failure is not pinned" `Quick
          test_native_transient_failure_not_pinned;
        Alcotest.test_case "two processes, one compile, no residue" `Quick
          test_multiprocess_single_writer;
        Alcotest.test_case "foreign plan under our name = miss" `Quick
          test_disk_wrong_fingerprint
      ] );
    ( "service.server",
      [ Alcotest.test_case "blank and comment lines ignored" `Quick test_parse_blank;
        Alcotest.test_case "compile by kernel name" `Quick test_parse_compile_kernel;
        Alcotest.test_case "inline nest affine grammar" `Quick test_parse_inline_affine;
        Alcotest.test_case "exec options" `Quick test_parse_exec_opts;
        Alcotest.test_case "shutdown" `Quick test_parse_shutdown;
        Alcotest.test_case "malformed requests rejected with context" `Quick test_parse_rejects;
        Alcotest.test_case "handle compile response" `Quick test_handle_compile;
        Alcotest.test_case "handle exec: trip, checksum, determinism" `Quick test_handle_exec;
        Alcotest.test_case "run_batch: order, errors, shutdown" `Quick test_run_batch
      ] )
  ]
