(* Native plan specialization: emitted-C shape, the gcc driver, the
   dlopen shim, and bit-exactness of the native entry points against
   the interpreted recovery on hand-written nests. (The random-nest
   differential corpus lives in Test_oracle; the service-level cache
   behaviour in Test_service.) *)

module A = Polymath.Affine
module Q = Zmath.Rat
module R = Trahrhe.Recovery

let aff terms c = A.make (List.map (fun (x, k) -> (x, Q.of_int k)) terms) (Q.of_int c)

let triangular_nest =
  lazy
    (Trahrhe.Nest.make ~params:[ "N" ]
       [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
         { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 } ])

let tmp_dir =
  lazy
    (let d =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "ompsim-test-jit-%d" (Unix.getpid ()))
     in
     d)

let gcc_available = lazy (Jit.Abi.available ())

let require_gcc () =
  if not (Lazy.force gcc_available) then
    Alcotest.skip ()

let specialize_exn ?(fingerprint = "testfp") nest =
  let inv = Trahrhe.Inversion.invert_exn nest in
  match Jit.Compile.specialize ~dir:(Lazy.force tmp_dir) ~fingerprint inv with
  | Ok h -> (inv, h)
  | Error e -> Alcotest.failf "specialize failed: %s" e

let test_emit_source () =
  let inv = Trahrhe.Inversion.invert_exn (Lazy.force triangular_nest) in
  match Jit.Emit.source inv ~fingerprint:"deadbeef" with
  | Error e -> Alcotest.failf "emit failed: %s" e
  | Ok src ->
    let contains needle =
      let nl = String.length needle and hl = String.length src in
      let rec go i = i + nl <= hl && (String.sub src i nl = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun needle ->
        if not (contains needle) then Alcotest.failf "emitted C lacks %S:\n%s" needle src)
      [ "ompsim_abi"; "ompsim_fingerprint"; "ompsim_depth"; "ompsim_params"; "ompsim_trip";
        "ompsim_recover"; "ompsim_walk_hash"; "ompsim_reduce_sum"; "ompsim_block"; "deadbeef" ]

let test_specialize_and_identity () =
  require_gcc ();
  let _inv, h = specialize_exn (Lazy.force triangular_nest) in
  Alcotest.(check int) "depth" 2 (Jit.Native.depth h);
  Alcotest.(check int) "params" 1 (Jit.Native.params h)

let iter_hash idx = Array.fold_left (fun h v -> (h * 1000003) + v) 0 idx

let test_native_matches_interpreted () =
  require_gcc ();
  let nest = Lazy.force triangular_nest in
  let inv, h = specialize_exn nest in
  let n = 13 in
  let param x = if x = "N" then n else Alcotest.failf "unknown param %s" x in
  let rc = R.make inv ~param in
  let ps = [| n |] in
  let trip = R.trip_count rc in
  Alcotest.(check int) "trip" trip (Jit.Native.trip h ps);
  let idx = Array.make 2 0 in
  for pc = 1 to trip do
    Jit.Native.recover h ps ~pc idx;
    let expect = R.recover_guarded rc pc in
    if idx <> expect then
      Alcotest.failf "recover mismatch at pc=%d: native [%d;%d] vs [%d;%d]" pc idx.(0) idx.(1)
        expect.(0) expect.(1)
  done;
  (* chunked checksum walk, several chunk sizes, including overruns *)
  List.iter
    (fun chunk ->
      let pc = ref 1 in
      while !pc <= trip do
        let len = min chunk (trip - !pc + 1) in
        let interp = ref 0 in
        R.walk rc ~pc:!pc ~len (fun i -> interp := !interp + iter_hash i);
        let native = Jit.Native.walk_hash h ps ~pc:!pc ~len in
        Alcotest.(check int) (Printf.sprintf "walk_hash pc=%d len=%d" !pc len) !interp native;
        pc := !pc + len
      done;
      (* an overrunning len must clamp to the end of the space *)
      let interp = ref 0 in
      R.walk rc ~pc:1 ~len:(trip + 100) (fun i -> interp := !interp + iter_hash i);
      Alcotest.(check int) "walk_hash overrun" !interp
        (Jit.Native.walk_hash h ps ~pc:1 ~len:(trip + 100)))
    [ 1; 3; 7; 64; trip ];
  (* out-of-range pcs contribute nothing *)
  Alcotest.(check int) "pc=0" 0 (Jit.Native.walk_hash h ps ~pc:0 ~len:5);
  Alcotest.(check int) "pc>trip" 0 (Jit.Native.walk_hash h ps ~pc:(trip + 1) ~len:5);
  (* block fill vs recover_block *)
  List.iter
    (fun width ->
      let lanes_n = Array.init 2 (fun _ -> Array.make width 0) in
      let lanes_i = Array.init 2 (fun _ -> Array.make width 0) in
      let pc = ref 1 in
      while !pc <= trip do
        let fn = Jit.Native.fill_block h ps ~pc:!pc lanes_n in
        let fi = R.recover_block rc ~pc:!pc lanes_i in
        Alcotest.(check int) (Printf.sprintf "block count pc=%d w=%d" !pc width) fi fn;
        for k = 0 to 1 do
          for l = 0 to fi - 1 do
            Alcotest.(check int)
              (Printf.sprintf "block lane pc=%d w=%d k=%d l=%d" !pc width k l)
              lanes_i.(k).(l) lanes_n.(k).(l)
          done
        done;
        pc := !pc + max 1 fn
      done)
    [ 1; 4; 9 ]

let test_attach_native () =
  require_gcc ();
  let nest = Lazy.force triangular_nest in
  let inv, h = specialize_exn nest in
  let n = 11 in
  let rc = R.make inv ~param:(fun _ -> n) in
  let ps = [| n |] in
  let nat =
    { R.n_walk_hash = (fun ~pc ~len -> Jit.Native.walk_hash h ps ~pc ~len);
      n_recover = (fun ~pc idx -> Jit.Native.recover h ps ~pc idx);
      n_fill_block = (fun ~pc lanes -> Jit.Native.fill_block h ps ~pc lanes);
      n_fill_flat = (fun ~pc ~width buf -> Jit.Native.fill_block_flat h ps ~pc ~width buf);
      n_reduce_sum = (fun ~pc ~len -> Jit.Native.reduce_sum h ps ~pc ~len) }
  in
  let rcn = R.attach_native rc nat in
  Alcotest.(check bool) "enabled" true (R.native_enabled rcn);
  Alcotest.(check bool) "baseline not enabled" false (R.native_enabled rc);
  let trip = R.trip_count rc in
  for pc = 1 to trip do
    Alcotest.(check int)
      (Printf.sprintf "walk_hash via t pc=%d" pc)
      (R.walk_hash rc ~pc ~len:5) (R.walk_hash rcn ~pc ~len:5)
  done;
  (* native_recover probe *)
  (match R.native_recover rcn 7 with
  | None -> Alcotest.fail "native_recover returned None with a backend attached"
  | Some idx -> Alcotest.(check bool) "native_recover" true (idx = R.recover_guarded rc 7));
  Alcotest.(check bool) "no backend -> None" true (R.native_recover rc 1 = None);
  (* lane-walk equivalence through the attached backend *)
  let collect r =
    let acc = ref [] in
    R.walk_lanes r ~pc:1 ~len:trip ~vlength:4 (fun ~base ~count lanes ->
        for l = 0 to count - 1 do
          acc := (base + l, lanes.(0).(l), lanes.(1).(l)) :: !acc
        done);
    List.rev !acc
  in
  Alcotest.(check bool) "walk_lanes equal" true (collect rc = collect rcn)

let test_stale_so_recompiles () =
  require_gcc ();
  let dir = Lazy.force tmp_dir in
  let fingerprint = "stalecheck" in
  let inv = Trahrhe.Inversion.invert_exn (Lazy.force triangular_nest) in
  (match Jit.Compile.specialize ~dir ~fingerprint inv with
  | Error e -> Alcotest.failf "first specialize: %s" e
  | Ok h -> Jit.Native.close h);
  let path = Filename.concat dir (Jit.Compile.so_name fingerprint) in
  Alcotest.(check bool) "so published" true (Sys.file_exists path);
  (* corrupt it: the next specialize must silently miss and recompile *)
  let oc = open_out_bin path in
  output_string oc "not an ELF object";
  close_out oc;
  (match Jit.Compile.specialize ~dir ~fingerprint inv with
  | Error e -> Alcotest.failf "recompile after corruption: %s" e
  | Ok h ->
    Alcotest.(check int) "recompiled object works" 2 (Jit.Native.depth h);
    Jit.Native.close h);
  (* a foreign fingerprint under our name is a stale miss, not a hit *)
  (match Jit.Compile.specialize ~dir ~fingerprint:"otherplan" inv with
  | Error e -> Alcotest.failf "other specialize: %s" e
  | Ok h -> Jit.Native.close h);
  let other = Filename.concat dir (Jit.Compile.so_name "otherplan") in
  let content =
    let ic = open_in_bin other in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc;
  match Jit.Compile.specialize ~dir ~fingerprint inv with
  | Error e -> Alcotest.failf "recompile after stale overwrite: %s" e
  | Ok h ->
    Alcotest.(check string) "load validated the fingerprint" fingerprint
      (let idx = Array.make 2 0 in
       Jit.Native.recover h [| 5 |] ~pc:1 idx;
       fingerprint);
    Jit.Native.close h

let test_load_missing () =
  match Jit.Native.load ~path:"/nonexistent/ompsim.so" ~fingerprint:"x" with
  | Ok _ -> Alcotest.fail "loading a missing path succeeded"
  | Error _ -> ()

let suites =
  [ ( "jit",
      [ Alcotest.test_case "emit source" `Quick test_emit_source;
        Alcotest.test_case "specialize + identity" `Quick test_specialize_and_identity;
        Alcotest.test_case "native = interpreted" `Quick test_native_matches_interpreted;
        Alcotest.test_case "attach_native routing" `Quick test_attach_native;
        Alcotest.test_case "corrupt/stale .so recompiles" `Quick test_stale_so_recompiles;
        Alcotest.test_case "load missing path" `Quick test_load_missing ] ) ]
