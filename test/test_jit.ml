(* Native plan specialization: emitted-C shape, the gcc driver, the
   dlopen shim, and bit-exactness of the native entry points against
   the interpreted recovery on hand-written nests. (The random-nest
   differential corpus lives in Test_oracle; the service-level cache
   behaviour in Test_service.) *)

module A = Polymath.Affine
module Q = Zmath.Rat
module R = Trahrhe.Recovery

let aff terms c = A.make (List.map (fun (x, k) -> (x, Q.of_int k)) terms) (Q.of_int c)

let triangular_nest =
  lazy
    (Trahrhe.Nest.make ~params:[ "N" ]
       [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
         { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 } ])

let tmp_dir =
  lazy
    (let d =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "ompsim-test-jit-%d" (Unix.getpid ()))
     in
     d)

(* the functional probe, not just --version: a wedged wrapper (see the
   CI wedged-cc job) answers the version probe and then hangs, and
   these tests assert successful specialization *)
let gcc_available = lazy (Jit.Abi.functional ())

let require_gcc () =
  if not (Lazy.force gcc_available) then
    Alcotest.skip ()

let specialize_exn ?(fingerprint = "testfp") nest =
  let inv = Trahrhe.Inversion.invert_exn nest in
  match Jit.Compile.specialize ~dir:(Lazy.force tmp_dir) ~fingerprint inv with
  | Ok h -> (inv, h)
  | Error e -> Alcotest.failf "specialize failed: %s" e

let test_emit_source () =
  let inv = Trahrhe.Inversion.invert_exn (Lazy.force triangular_nest) in
  match Jit.Emit.source inv ~fingerprint:"deadbeef" with
  | Error e -> Alcotest.failf "emit failed: %s" e
  | Ok src ->
    let contains needle =
      let nl = String.length needle and hl = String.length src in
      let rec go i = i + nl <= hl && (String.sub src i nl = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun needle ->
        if not (contains needle) then Alcotest.failf "emitted C lacks %S:\n%s" needle src)
      [ "ompsim_abi"; "ompsim_fingerprint"; "ompsim_depth"; "ompsim_params"; "ompsim_trip";
        "ompsim_recover"; "ompsim_walk_hash"; "ompsim_reduce_sum"; "ompsim_block"; "deadbeef" ]

let test_specialize_and_identity () =
  require_gcc ();
  let _inv, h = specialize_exn (Lazy.force triangular_nest) in
  Alcotest.(check int) "depth" 2 (Jit.Native.depth h);
  Alcotest.(check int) "params" 1 (Jit.Native.params h)

let iter_hash idx = Array.fold_left (fun h v -> (h * 1000003) + v) 0 idx

let test_native_matches_interpreted () =
  require_gcc ();
  let nest = Lazy.force triangular_nest in
  let inv, h = specialize_exn nest in
  let n = 13 in
  let param x = if x = "N" then n else Alcotest.failf "unknown param %s" x in
  let rc = R.make inv ~param in
  let ps = [| n |] in
  let trip = R.trip_count rc in
  Alcotest.(check int) "trip" trip (Jit.Native.trip h ps);
  let idx = Array.make 2 0 in
  for pc = 1 to trip do
    Jit.Native.recover h ps ~pc idx;
    let expect = R.recover_guarded rc pc in
    if idx <> expect then
      Alcotest.failf "recover mismatch at pc=%d: native [%d;%d] vs [%d;%d]" pc idx.(0) idx.(1)
        expect.(0) expect.(1)
  done;
  (* chunked checksum walk, several chunk sizes, including overruns *)
  List.iter
    (fun chunk ->
      let pc = ref 1 in
      while !pc <= trip do
        let len = min chunk (trip - !pc + 1) in
        let interp = ref 0 in
        R.walk rc ~pc:!pc ~len (fun i -> interp := !interp + iter_hash i);
        let native = Jit.Native.walk_hash h ps ~pc:!pc ~len in
        Alcotest.(check int) (Printf.sprintf "walk_hash pc=%d len=%d" !pc len) !interp native;
        pc := !pc + len
      done;
      (* an overrunning len must clamp to the end of the space *)
      let interp = ref 0 in
      R.walk rc ~pc:1 ~len:(trip + 100) (fun i -> interp := !interp + iter_hash i);
      Alcotest.(check int) "walk_hash overrun" !interp
        (Jit.Native.walk_hash h ps ~pc:1 ~len:(trip + 100)))
    [ 1; 3; 7; 64; trip ];
  (* out-of-range pcs contribute nothing *)
  Alcotest.(check int) "pc=0" 0 (Jit.Native.walk_hash h ps ~pc:0 ~len:5);
  Alcotest.(check int) "pc>trip" 0 (Jit.Native.walk_hash h ps ~pc:(trip + 1) ~len:5);
  (* block fill vs recover_block *)
  List.iter
    (fun width ->
      let lanes_n = Array.init 2 (fun _ -> Array.make width 0) in
      let lanes_i = Array.init 2 (fun _ -> Array.make width 0) in
      let pc = ref 1 in
      while !pc <= trip do
        let fn = Jit.Native.fill_block h ps ~pc:!pc lanes_n in
        let fi = R.recover_block rc ~pc:!pc lanes_i in
        Alcotest.(check int) (Printf.sprintf "block count pc=%d w=%d" !pc width) fi fn;
        for k = 0 to 1 do
          for l = 0 to fi - 1 do
            Alcotest.(check int)
              (Printf.sprintf "block lane pc=%d w=%d k=%d l=%d" !pc width k l)
              lanes_i.(k).(l) lanes_n.(k).(l)
          done
        done;
        pc := !pc + max 1 fn
      done)
    [ 1; 4; 9 ]

let test_attach_native () =
  require_gcc ();
  let nest = Lazy.force triangular_nest in
  let inv, h = specialize_exn nest in
  let n = 11 in
  let rc = R.make inv ~param:(fun _ -> n) in
  let ps = [| n |] in
  let nat =
    { R.n_walk_hash = (fun ~pc ~len -> Jit.Native.walk_hash h ps ~pc ~len);
      n_recover = (fun ~pc idx -> Jit.Native.recover h ps ~pc idx);
      n_fill_block = (fun ~pc lanes -> Jit.Native.fill_block h ps ~pc lanes);
      n_fill_flat = (fun ~pc ~width buf -> Jit.Native.fill_block_flat h ps ~pc ~width buf);
      n_reduce_sum = (fun ~pc ~len -> Jit.Native.reduce_sum h ps ~pc ~len) }
  in
  let rcn = R.attach_native rc nat in
  Alcotest.(check bool) "enabled" true (R.native_enabled rcn);
  Alcotest.(check bool) "baseline not enabled" false (R.native_enabled rc);
  let trip = R.trip_count rc in
  for pc = 1 to trip do
    Alcotest.(check int)
      (Printf.sprintf "walk_hash via t pc=%d" pc)
      (R.walk_hash rc ~pc ~len:5) (R.walk_hash rcn ~pc ~len:5)
  done;
  (* native_recover probe *)
  (match R.native_recover rcn 7 with
  | None -> Alcotest.fail "native_recover returned None with a backend attached"
  | Some idx -> Alcotest.(check bool) "native_recover" true (idx = R.recover_guarded rc 7));
  Alcotest.(check bool) "no backend -> None" true (R.native_recover rc 1 = None);
  (* lane-walk equivalence through the attached backend *)
  let collect r =
    let acc = ref [] in
    R.walk_lanes r ~pc:1 ~len:trip ~vlength:4 (fun ~base ~count lanes ->
        for l = 0 to count - 1 do
          acc := (base + l, lanes.(0).(l), lanes.(1).(l)) :: !acc
        done);
    List.rev !acc
  in
  Alcotest.(check bool) "walk_lanes equal" true (collect rc = collect rcn)

let test_stale_so_recompiles () =
  require_gcc ();
  let dir = Lazy.force tmp_dir in
  let fingerprint = "stalecheck" in
  let inv = Trahrhe.Inversion.invert_exn (Lazy.force triangular_nest) in
  (match Jit.Compile.specialize ~dir ~fingerprint inv with
  | Error e -> Alcotest.failf "first specialize: %s" e
  | Ok h -> Jit.Native.close h);
  let path = Filename.concat dir (Jit.Compile.so_name fingerprint) in
  Alcotest.(check bool) "so published" true (Sys.file_exists path);
  (* corrupt it: the next specialize must silently miss and recompile *)
  let oc = open_out_bin path in
  output_string oc "not an ELF object";
  close_out oc;
  (match Jit.Compile.specialize ~dir ~fingerprint inv with
  | Error e -> Alcotest.failf "recompile after corruption: %s" e
  | Ok h ->
    Alcotest.(check int) "recompiled object works" 2 (Jit.Native.depth h);
    Jit.Native.close h);
  (* a foreign fingerprint under our name is a stale miss, not a hit *)
  (match Jit.Compile.specialize ~dir ~fingerprint:"otherplan" inv with
  | Error e -> Alcotest.failf "other specialize: %s" e
  | Ok h -> Jit.Native.close h);
  let other = Filename.concat dir (Jit.Compile.so_name "otherplan") in
  let content =
    let ic = open_in_bin other in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc;
  match Jit.Compile.specialize ~dir ~fingerprint inv with
  | Error e -> Alcotest.failf "recompile after stale overwrite: %s" e
  | Ok h ->
    Alcotest.(check string) "load validated the fingerprint" fingerprint
      (let idx = Array.make 2 0 in
       Jit.Native.recover h [| 5 |] ~pc:1 idx;
       fingerprint);
    Jit.Native.close h

let test_load_missing () =
  match Jit.Native.load ~path:"/nonexistent/ompsim.so" ~fingerprint:"x" with
  | Ok _ -> Alcotest.fail "loading a missing path succeeded"
  | Error _ -> ()

(* ---------------------------------------------------------------- *)
(* Supervised subprocess runner                                      *)
(* ---------------------------------------------------------------- *)

let sh script = Jit.Subproc.run "/bin/sh" [ "-c"; script ]

let test_subproc_exit_and_capture () =
  let c = sh "echo out-line; echo err-line >&2; exit 3" in
  (match c.Jit.Subproc.outcome with
  | Jit.Subproc.Exited 3 -> ()
  | _ -> Alcotest.failf "expected exit 3, got %s" (Jit.Subproc.describe c));
  Alcotest.(check string) "stdout captured" "out-line\n" c.Jit.Subproc.stdout;
  Alcotest.(check string) "stderr captured" "err-line\n" c.Jit.Subproc.stderr

let test_subproc_timeout () =
  let t0 = Unix.gettimeofday () in
  let c = Jit.Subproc.run ~timeout_ms:200 "/bin/sh" [ "-c"; "sleep 600" ] in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (match c.Jit.Subproc.outcome with
  | Jit.Subproc.Timed_out -> ()
  | _ -> Alcotest.failf "expected a timeout, got %s" (Jit.Subproc.describe c));
  (* the wedged child must cost one bounded wait, not its sleep *)
  Alcotest.(check bool)
    (Printf.sprintf "killed promptly (%.0fms)" wall_ms)
    true (wall_ms < 5000.);
  Alcotest.(check bool)
    "describe names the deadline" true
    (String.length (Jit.Subproc.describe c) > 0
    && String.sub (Jit.Subproc.describe c) 0 9 = "timed out")

let test_subproc_spawn_failure () =
  let c = Jit.Subproc.run "/nonexistent-ompsim-prog" [] in
  (match c.Jit.Subproc.outcome with
  | Jit.Subproc.Exited 127 -> ()
  | _ -> Alcotest.failf "expected exit 127, got %s" (Jit.Subproc.describe c));
  Alcotest.(check bool) "stderr explains" true (c.Jit.Subproc.stderr <> "")

let test_subproc_caps_never_block () =
  (* a child far chattier than the cap must still run to completion:
     the pipes keep draining past the kept excerpt *)
  let c =
    Jit.Subproc.run ~stdout_cap:64 "/bin/sh"
      [ "-c"; "i=0; while [ $i -lt 20000 ]; do echo 0123456789abcdef; i=$((i+1)); done" ]
  in
  (match c.Jit.Subproc.outcome with
  | Jit.Subproc.Exited 0 -> ()
  | _ -> Alcotest.failf "chatty child should exit 0, got %s" (Jit.Subproc.describe c));
  Alcotest.(check bool) "excerpt bounded" true (String.length c.Jit.Subproc.stdout <= 64);
  Alcotest.(check bool) "excerpt non-empty" true (String.length c.Jit.Subproc.stdout > 0)

let test_subproc_signaled () =
  let c = sh "kill -TERM $$" in
  match c.Jit.Subproc.outcome with
  | Jit.Subproc.Signaled s -> Alcotest.(check int) "SIGTERM" Sys.sigterm s
  | _ -> Alcotest.failf "expected a signal death, got %s" (Jit.Subproc.describe c)

(* ---------------------------------------------------------------- *)
(* Compile circuit breaker (fake clock)                              *)
(* ---------------------------------------------------------------- *)

let fake_clock start =
  let now = ref start in
  ((fun () -> !now), fun ms -> now := !now +. ms)

let must_acquire b msg =
  if not (Jit.Breaker.acquire b) then Alcotest.failf "%s: acquire refused" msg

let must_reject b msg =
  if Jit.Breaker.acquire b then Alcotest.failf "%s: acquire allowed" msg

let test_breaker_opens_at_threshold () =
  let now, _advance = fake_clock 0. in
  let b = Jit.Breaker.create ~threshold:3 ~cooldown_ms:1000 ~now_ms:now () in
  Alcotest.(check bool) "starts closed" true (Jit.Breaker.state b = Jit.Breaker.Closed);
  for _ = 1 to 2 do
    must_acquire b "under threshold";
    Jit.Breaker.failure b
  done;
  Alcotest.(check bool) "still closed at 2/3" true (Jit.Breaker.state b = Jit.Breaker.Closed);
  must_acquire b "third attempt";
  Jit.Breaker.failure b;
  Alcotest.(check bool) "open at threshold" true (Jit.Breaker.state b = Jit.Breaker.Open);
  Alcotest.(check int) "one open transition" 1 (Jit.Breaker.opens b);
  must_reject b "open rejects";
  must_reject b "open keeps rejecting";
  Alcotest.(check int) "rejections counted" 2 (Jit.Breaker.rejections b)

let test_breaker_success_resets_streak () =
  let now, _advance = fake_clock 0. in
  let b = Jit.Breaker.create ~threshold:3 ~cooldown_ms:1000 ~now_ms:now () in
  must_acquire b "a";
  Jit.Breaker.failure b;
  must_acquire b "b";
  Jit.Breaker.failure b;
  must_acquire b "c";
  Jit.Breaker.success b;
  Alcotest.(check int) "streak reset" 0 (Jit.Breaker.failures b);
  must_acquire b "d";
  Jit.Breaker.failure b;
  Alcotest.(check bool) "still closed: failures not consecutive" true
    (Jit.Breaker.state b = Jit.Breaker.Closed)

let test_breaker_half_open_probe () =
  let now, advance = fake_clock 0. in
  let b = Jit.Breaker.create ~threshold:1 ~cooldown_ms:1000 ~now_ms:now () in
  must_acquire b "first";
  Jit.Breaker.failure b;
  must_reject b "open before cooldown";
  advance 999.;
  must_reject b "still cooling down";
  advance 2.;
  must_acquire b "cooldown elapsed: probe slot";
  Alcotest.(check bool) "half-open" true (Jit.Breaker.state b = Jit.Breaker.Half_open);
  must_reject b "probe slot is exclusive";
  Alcotest.(check int) "one probe granted" 1 (Jit.Breaker.probes b);
  Jit.Breaker.success b;
  Alcotest.(check bool) "probe success closes" true (Jit.Breaker.state b = Jit.Breaker.Closed);
  must_acquire b "closed again"

let test_breaker_probe_failure_reopens () =
  let now, advance = fake_clock 0. in
  let b = Jit.Breaker.create ~threshold:1 ~cooldown_ms:1000 ~now_ms:now () in
  must_acquire b "first";
  Jit.Breaker.failure b;
  advance 1001.;
  must_acquire b "probe";
  Jit.Breaker.failure b;
  Alcotest.(check bool) "probe failure reopens" true (Jit.Breaker.state b = Jit.Breaker.Open);
  Alcotest.(check int) "two open transitions" 2 (Jit.Breaker.opens b);
  must_reject b "cooling down again";
  advance 1001.;
  must_acquire b "second probe";
  Jit.Breaker.success b;
  Alcotest.(check bool) "recovers eventually" true (Jit.Breaker.state b = Jit.Breaker.Closed)

(* regression: an unemittable plan arriving while the breaker is
   cooling down must not consume the half-open probe slot. Emission is
   plan work and runs before the breaker acquire; if it instead took
   the probe and returned without settling it, [probing] would stay
   set forever and every later acquire would be rejected — the native
   tier silently wedged off for the rest of the process. *)
let test_breaker_emit_error_keeps_probe_slot () =
  let now = ref 0. in
  let b = Jit.Breaker.create ~threshold:1 ~cooldown_ms:1000 ~now_ms:(fun () -> !now) () in
  Jit.Breaker.failure b;
  Alcotest.(check bool) "open after failure" true (Jit.Breaker.state b = Jit.Breaker.Open);
  now := !now +. 1001.;
  (* "int" is a fine symbolic parameter but not an emittable C
     identifier, so Emit.source rejects the plan before any compile *)
  let nest =
    Trahrhe.Nest.make ~params:[ "int" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("int", 1) ] 0 } ]
  in
  let inv = Trahrhe.Inversion.invert_exn nest in
  (match Jit.Compile.specialize ~dir:(Lazy.force tmp_dir) ~breaker:b ~fingerprint:"emitfail" inv with
  | Ok _ -> Alcotest.fail "unemittable plan specialized"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "plan-shaped error: %s" e)
      true (Jit.Compile.is_plan_error e);
    Alcotest.(check bool) "not a breaker rejection" false (Jit.Compile.is_breaker_rejection e));
  Alcotest.(check bool)
    "probe slot still available to a real compile" true (Jit.Breaker.acquire b)

(* the supervised path end to end: a cc that answers --version but
   wedges on compile must fail within the deadline, not hang.
   OMPSIM_JIT_CC and OMPSIM_JIT_TIMEOUT_MS are re-read per call by
   design, so the test drives the real env knobs and restores them. *)
let with_env kvs f =
  let saved = List.map (fun (k, _) -> (k, Option.value ~default:"" (Sys.getenv_opt k))) kvs in
  List.iter (fun (k, v) -> Unix.putenv k v) kvs;
  Fun.protect ~finally:(fun () -> List.iter (fun (k, v) -> Unix.putenv k v) saved) f

let test_compile_wedged_cc () =
  let dir = Filename.temp_file "ompsim-wedge" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let cc = Filename.concat dir "wedged-cc" in
      let oc = open_out cc in
      output_string oc
        "#!/bin/sh\ncase \"$1\" in --version) echo wedged-cc 1.0; exit 0;; esac\nsleep 600\n";
      close_out oc;
      Unix.chmod cc 0o755;
      with_env [ ("OMPSIM_JIT_CC", cc); ("OMPSIM_JIT_TIMEOUT_MS", "300") ] @@ fun () ->
      let inv = Trahrhe.Inversion.invert_exn (Lazy.force triangular_nest) in
      let t0 = Unix.gettimeofday () in
      let r = Jit.Compile.specialize ~dir ~fingerprint:"wedgefp" inv in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      (match r with
      | Ok _ -> Alcotest.fail "wedged cc reported success"
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error names the deadline knob: %s" e)
          true
          (let needle = "OMPSIM_JIT_TIMEOUT_MS" in
           let nl = String.length needle and hl = String.length e in
           let rec go i = i + nl <= hl && (String.sub e i nl = needle || go (i + 1)) in
           go 0));
      (* deadline 300ms + --version probe + spawn overhead, with slack
         for loaded CI — nowhere near the 600s the script would hang *)
      Alcotest.(check bool)
        (Printf.sprintf "bounded by the deadline, not the hang (%.0fms)" wall_ms)
        true (wall_ms < 5000.))

let suites =
  [ ( "jit",
      [ Alcotest.test_case "emit source" `Quick test_emit_source;
        Alcotest.test_case "specialize + identity" `Quick test_specialize_and_identity;
        Alcotest.test_case "native = interpreted" `Quick test_native_matches_interpreted;
        Alcotest.test_case "attach_native routing" `Quick test_attach_native;
        Alcotest.test_case "corrupt/stale .so recompiles" `Quick test_stale_so_recompiles;
        Alcotest.test_case "load missing path" `Quick test_load_missing ] );
    ( "jit.subproc",
      [ Alcotest.test_case "exit code + stream capture" `Quick test_subproc_exit_and_capture;
        Alcotest.test_case "deadline kills a wedged child" `Quick test_subproc_timeout;
        Alcotest.test_case "spawn failure = exit 127" `Quick test_subproc_spawn_failure;
        Alcotest.test_case "capture caps never block the child" `Quick
          test_subproc_caps_never_block;
        Alcotest.test_case "signal death reported" `Quick test_subproc_signaled;
        Alcotest.test_case "wedged cc fails within the deadline" `Quick test_compile_wedged_cc ]
    );
    ( "jit.breaker",
      [ Alcotest.test_case "opens at threshold, rejects while open" `Quick
          test_breaker_opens_at_threshold;
        Alcotest.test_case "success resets the streak" `Quick test_breaker_success_resets_streak;
        Alcotest.test_case "half-open grants one probe" `Quick test_breaker_half_open_probe;
        Alcotest.test_case "probe failure re-opens" `Quick test_breaker_probe_failure_reopens;
        Alcotest.test_case "emit error cannot leak the probe slot" `Quick
          test_breaker_emit_error_keeps_probe_slot ]
    ) ]
