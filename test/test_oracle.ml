(* Property-based differential oracle over the collapse pipeline
   (ISSUE 2): for random valid non-rectangular nests, walking the
   collapsed range chunk-by-chunk must reproduce the nest's
   lexicographic enumeration exactly — same multiset, same order, each
   iteration exactly once — on every execution backend and schedule. *)

module A = Polymath.Affine
module Q = Zmath.Rat
module N = Trahrhe.Nest

let var_names = [| "i"; "j"; "k" |]

(* The generated family is valid and non-empty by construction:
   constants are >= 0 and every outer-iterator coefficient is +1, so
   each index value is >= 0 inductively; each level's extent
   (upper - lower) is >= 1 on every reachable prefix — a constant in
   1..4, [N + e] with N >= 4, or [outer + e] with e >= 1 and
   outer >= 0. Dependence degree is bounded by the depth (<= 3), well
   inside the method's degree-4 closed-form range. *)
let gen_case : (N.t * int) QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 3 >>= fun depth ->
  int_range 4 8 >>= fun nval ->
  let gen_level k =
    int_range 0 2 >>= fun c ->
    (if k = 0 then return []
     else
       int_range (-1) (k - 1) >>= fun pick ->
       return (if pick < 0 then [] else [ (var_names.(pick), Q.one) ]))
    >>= fun lower_terms ->
    let lower = A.make lower_terms (Q.of_int c) in
    let extent_gens =
      [ (3, int_range 1 4 >>= fun e -> return (A.const (Q.of_int e)));
        (3, int_range 0 2 >>= fun e -> return (A.make [ ("N", Q.one) ] (Q.of_int e))) ]
      @
      if k = 0 then []
      else
        [ ( 2,
            int_range 0 (k - 1) >>= fun p ->
            int_range 1 3 >>= fun e ->
            return (A.make [ (var_names.(p), Q.one) ] (Q.of_int e)) ) ]
    in
    frequency extent_gens >>= fun extent ->
    return { N.var = var_names.(k); lower; upper = A.add lower extent }
  in
  let rec build k acc =
    if k = depth then return (List.rev acc)
    else gen_level k >>= fun l -> build (k + 1) (l :: acc)
  in
  build 0 [] >>= fun levels -> return (N.make ~params:[ "N" ] levels, nval)

let print_case (nest, nval) = Format.asprintf "N = %d,@ %a" nval N.pp nest
let arb_case = QCheck.make ~print:print_case gen_case

let backends = [ (Ompsim.Par.Pool, "pool"); (Ompsim.Par.Spawn, "spawn") ]

let schedules =
  [ Ompsim.Schedule.Static; Ompsim.Schedule.Static_chunk 3; Ompsim.Schedule.Dynamic 2;
    Ompsim.Schedule.Guided 2; Ompsim.Schedule.Work_stealing 2 ]

(* widths for the batched lane-walk check: degenerate (1), partial
   blocks likely (4, 8) and wider than most generated nests (32) *)
let vlengths = [ 1; 4; 8; 32 ]

let idx_to_string idx =
  "(" ^ String.concat "," (List.map string_of_int (Array.to_list idx)) ^ ")"

(* One backend x schedule run: collapse, hand out chunks of the flat
   range, recover + walk each chunk, and record what rank saw which
   index. Any deviation from [reference] is reported with enough
   context to replay. *)
let run_one ~bname ~schedule rc reference trip =
  let visited = Array.make trip None in
  let calls = Atomic.make 0 in
  let dupes = Atomic.make 0 in
  Ompsim.Par.parallel_for_chunks ~nthreads:3 ~schedule ~n:trip
    (fun ~thread:_ ~start ~len ->
      let j = ref start in
      Trahrhe.Recovery.walk rc ~pc:(start + 1) ~len (fun idx ->
          (if !j < start + len && !j < trip then
             match visited.(!j) with
             | None -> visited.(!j) <- Some (Array.copy idx)
             | Some _ -> Atomic.incr dupes);
          incr j;
          Atomic.incr calls));
  let where = Printf.sprintf "%s / %s" bname (Ompsim.Schedule.to_string schedule) in
  if Atomic.get calls <> trip then
    QCheck.Test.fail_reportf "%s: %d callbacks for trip count %d" where (Atomic.get calls) trip;
  if Atomic.get dupes <> 0 then
    QCheck.Test.fail_reportf "%s: %d ranks visited more than once" where (Atomic.get dupes);
  Array.iteri
    (fun r v ->
      match v with
      | None -> QCheck.Test.fail_reportf "%s: rank %d never visited" where (r + 1)
      | Some idx ->
        if idx <> reference.(r) then
          QCheck.Test.fail_reportf "%s: rank %d visited %s, nest enumerates %s" where (r + 1)
            (idx_to_string idx) (idx_to_string reference.(r)))
    visited

(* Serial lane-walk check: the §VI-A batched walk must deliver the
   same ranks in the same order as the per-iteration walk, for every
   block width — lane [l] of a block based at [base] holds the index
   of rank [base + l], blocks tile [1..trip] without gap or overlap. *)
let run_lanes ~vlength rc reference trip =
  let depth = Array.length reference.(0) in
  let next = ref 1 in
  Trahrhe.Recovery.walk_lanes rc ~pc:1 ~len:trip ~vlength (fun ~base ~count lanes ->
      if base <> !next then
        QCheck.Test.fail_reportf "vlength %d: block based at %d, expected %d" vlength base !next;
      if count <= 0 || count > vlength then
        QCheck.Test.fail_reportf "vlength %d: block count %d out of 1..%d" vlength count vlength;
      if Array.length lanes <> depth then
        QCheck.Test.fail_reportf "vlength %d: %d lane rows for depth %d" vlength
          (Array.length lanes) depth;
      for l = 0 to count - 1 do
        let want = reference.(base + l - 1) in
        for k = 0 to depth - 1 do
          if lanes.(k).(l) <> want.(k) then
            QCheck.Test.fail_reportf "vlength %d: rank %d lane %d level %d is %d, nest has %d"
              vlength (base + l) l k
              lanes.(k).(l)
              want.(k)
        done
      done;
      next := base + count);
  if !next <> trip + 1 then
    QCheck.Test.fail_reportf "vlength %d: blocks covered 1..%d of trip %d" vlength (!next - 1) trip

(* Fault-injected variant (ISSUE 4): the same walk driven by
   [Par.run_resilient] under a seeded 30% chunk-failure rate with two
   retries must still visit every rank exactly once with the right
   index — retry re-runs whole chunks (injection fires before the
   body, so no partial work repeats) and the serial fallback covers
   whatever the cancelled region dropped. [lanes] switches the chunk
   body to the batched §VI-A walk. *)
let run_one_resilient ~schedule ?lanes rc reference trip =
  let visited = Array.make trip None in
  let dupes = Atomic.make 0 in
  let faults = Some { Ompsim.Fault.default with p = 0.3; seed = 0x5eed } in
  let record j idx =
    if j >= 0 && j < trip then
      match visited.(j) with
      | None -> visited.(j) <- Some (Array.copy idx)
      | Some _ -> Atomic.incr dupes
  in
  let body ~thread:_ ~start ~len =
    match lanes with
    | None ->
      let j = ref start in
      Trahrhe.Recovery.walk rc ~pc:(start + 1) ~len (fun idx ->
          record !j idx;
          incr j)
    | Some vlength ->
      let depth = Array.length reference.(0) in
      let idx = Array.make depth 0 in
      Trahrhe.Recovery.walk_lanes rc ~pc:(start + 1) ~len ~vlength
        (fun ~base ~count lanes ->
          for l = 0 to count - 1 do
            for k = 0 to depth - 1 do
              idx.(k) <- lanes.(k).(l)
            done;
            record (base + l - 1) idx
          done)
  in
  let where =
    Printf.sprintf "resilient %s%s"
      (Ompsim.Schedule.to_string schedule)
      (match lanes with None -> "" | Some v -> Printf.sprintf " / vlength %d" v)
  in
  (match Ompsim.Par.run_resilient ~retries:2 ~faults ~nthreads:3 ~schedule ~n:trip body with
  | Ok () -> ()
  | Error e -> QCheck.Test.fail_reportf "%s: %s" where (Ompsim.Par.describe_error e));
  if Atomic.get dupes <> 0 then
    QCheck.Test.fail_reportf "%s: %d ranks visited more than once" where (Atomic.get dupes);
  Array.iteri
    (fun r v ->
      match v with
      | None -> QCheck.Test.fail_reportf "%s: rank %d never visited" where (r + 1)
      | Some idx ->
        if idx <> reference.(r) then
          QCheck.Test.fail_reportf "%s: rank %d visited %s, nest enumerates %s" where (r + 1)
            (idx_to_string idx) (idx_to_string reference.(r)))
    visited

let check_case (nest, nval) =
  let param _ = nval in
  match Trahrhe.Inversion.invert nest with
  | Error e ->
    QCheck.Test.fail_reportf "inversion failed on a valid nest: %s"
      (Trahrhe.Inversion.error_to_string e)
  | Ok inv ->
    let rc = Trahrhe.Recovery.make inv ~param in
    let trip = Trahrhe.Recovery.trip_count rc in
    let buf = ref [] in
    N.iterate nest ~param (fun idx -> buf := Array.copy idx :: !buf);
    let reference = Array.of_list (List.rev !buf) in
    if Array.length reference <> trip then
      QCheck.Test.fail_reportf "trip count %d but the nest enumerates %d iterations" trip
        (Array.length reference);
    if trip = 0 then QCheck.Test.fail_reportf "generator produced an empty nest";
    List.iter
      (fun (backend, bname) ->
        Ompsim.Par.with_backend backend (fun () ->
            List.iter (fun schedule -> run_one ~bname ~schedule rc reference trip) schedules))
      backends;
    List.iter (fun vlength -> run_lanes ~vlength rc reference trip) vlengths;
    true

let check_case_resilient (nest, nval) =
  let param _ = nval in
  match Trahrhe.Inversion.invert nest with
  | Error e ->
    QCheck.Test.fail_reportf "inversion failed on a valid nest: %s"
      (Trahrhe.Inversion.error_to_string e)
  | Ok inv ->
    let rc = Trahrhe.Recovery.make inv ~param in
    let trip = Trahrhe.Recovery.trip_count rc in
    let buf = ref [] in
    N.iterate nest ~param (fun idx -> buf := Array.copy idx :: !buf);
    let reference = Array.of_list (List.rev !buf) in
    List.iter (fun schedule -> run_one_resilient ~schedule rc reference trip) schedules;
    List.iter
      (fun vlength ->
        run_one_resilient ~schedule:(Ompsim.Schedule.Dynamic 2) ~lanes:vlength rc reference trip)
      vlengths;
    true

(* Reduction differential: attach a reduction clause to the same
   random nests and check the parallel combine tree against the serial
   fold — exactly, for every operator, every schedule (D&C included),
   both backends, the batched lane-walk feeding the fold, and with
   fault injection armed. Sum folds in wrapped native ints (the JIT's
   contract); prod/min/max fold in exact rationals. *)

let red_ops = [ N.Sum; N.Prod; N.Min; N.Max ]
let red_schedules = schedules @ [ Ompsim.Schedule.Dnc 2 ]

type red_value = Rint of int | Rrat of Q.t

let red_to_string = function Rint v -> string_of_int v | Rrat q -> Q.to_string q

let red_equal a b =
  match (a, b) with
  | Rint x, Rint y -> x = y
  | Rrat x, Rrat y -> Q.compare x y = 0
  | _ -> false

let serial_reduce nest rc ~param ~op =
  match op with
  | N.Sum ->
    let acc = ref 0 in
    N.iterate nest ~param (fun idx -> acc := !acc + Trahrhe.Recovery.reduce_value_int rc idx);
    Rint !acc
  | _ ->
    let acc = ref None in
    N.iterate nest ~param (fun idx ->
        let v = Trahrhe.Recovery.reduce_value_rat rc idx in
        acc := Some (match !acc with None -> v | Some a -> N.op_apply op a v));
    (match !acc with
    | Some v -> Rrat v
    | None -> QCheck.Test.fail_reportf "generator produced an empty nest")

let run_reduce ~where ?faults ?lanes ~schedule ~op ~depth rc trip expect =
  let module R = Trahrhe.Recovery in
  let combine a b =
    match (a, b) with
    | Rint x, Rint y -> Rint (x + y)
    | Rrat x, Rrat y -> Rrat (N.op_apply op x y)
    | _ -> QCheck.Test.fail_reportf "%s: mixed partial representations" where
  in
  let body ~thread:_ ~start ~len =
    match (op, lanes) with
    | N.Sum, None -> Rint (R.walk_reduce_sum rc ~pc:(start + 1) ~len)
    | _, None -> Rrat (R.walk_reduce_rat rc ~pc:(start + 1) ~len)
    | _, Some vlength ->
      (* the §VI-A batched walk feeding the fold: evaluate the clause
         lane by lane and fold locally, one partial per chunk *)
      let idx = Array.make depth 0 in
      let acc = ref None in
      R.walk_lanes rc ~pc:(start + 1) ~len ~vlength (fun ~base:_ ~count lanes ->
          for l = 0 to count - 1 do
            for k = 0 to depth - 1 do
              idx.(k) <- lanes.(k).(l)
            done;
            let v =
              match op with
              | N.Sum -> Rint (R.reduce_value_int rc idx)
              | _ -> Rrat (R.reduce_value_rat rc idx)
            in
            acc := Some (match !acc with None -> v | Some a -> combine a v)
          done);
      (match !acc with
      | Some v -> v
      | None -> QCheck.Test.fail_reportf "%s: chunk of %d delivered no lanes" where len)
  in
  let result =
    match faults with
    | None -> Ompsim.Par.reduce_chunks ~nthreads:3 ~schedule ~n:trip ~combine body
    | Some f -> (
      match
        Ompsim.Par.reduce_resilient ~retries:2 ~faults:(Some f) ~nthreads:3 ~schedule ~n:trip
          ~combine body
      with
      | Ok r -> r
      | Error e -> QCheck.Test.fail_reportf "%s: %s" where (Ompsim.Par.describe_error e))
  in
  match result with
  | None -> QCheck.Test.fail_reportf "%s: empty reduction over trip count %d" where trip
  | Some v ->
    if not (red_equal v expect) then
      QCheck.Test.fail_reportf "%s: reduced to %s, serial fold is %s" where (red_to_string v)
        (red_to_string expect)

let check_case_reduce (nest, nval) =
  let param _ = nval in
  List.iter
    (fun op ->
      let nest_r = N.with_reduce nest (Some { N.op; value = N.default_reduce_value nest }) in
      match Trahrhe.Inversion.invert nest_r with
      | Error e ->
        QCheck.Test.fail_reportf "inversion failed on a valid nest: %s"
          (Trahrhe.Inversion.error_to_string e)
      | Ok inv ->
        let rc = Trahrhe.Recovery.make inv ~param in
        let trip = Trahrhe.Recovery.trip_count rc in
        let depth = N.depth nest_r in
        let expect = serial_reduce nest_r rc ~param ~op in
        let faults = { Ompsim.Fault.default with p = 0.3; seed = 0x5eed } in
        let opname = N.op_to_string op in
        List.iter
          (fun schedule ->
            let sname = Ompsim.Schedule.to_string schedule in
            run_reduce
              ~where:(Printf.sprintf "reduce %s / %s" opname sname)
              ~schedule ~op ~depth rc trip expect;
            run_reduce
              ~where:(Printf.sprintf "reduce %s / %s / faults" opname sname)
              ~faults ~schedule ~op ~depth rc trip expect)
          red_schedules;
        (* spawn backend: the combine tree is keyed by chunk position,
           so a different worker topology must not change a bit *)
        Ompsim.Par.with_backend Ompsim.Par.Spawn (fun () ->
            run_reduce
              ~where:(Printf.sprintf "reduce %s / spawn / dnc" opname)
              ~schedule:(Ompsim.Schedule.Dnc 1) ~op ~depth rc trip expect);
        List.iter
          (fun vlength ->
            run_reduce
              ~where:(Printf.sprintf "reduce %s / lanes %d" opname vlength)
              ~lanes:vlength
              ~schedule:(Ompsim.Schedule.Dynamic 2)
              ~op ~depth rc trip expect)
          vlengths)
    red_ops;
  true

let prop_reduce_matches_serial =
  QCheck.Test.make
    ~name:"parallel reduction = serial fold (40 nests x 4 ops x schedules x faults)" ~count:40
    arb_case check_case_reduce

(* D&C soak: the divide-and-conquer splitter's observability counters
   must reconcile exactly against [Schedule.dnc_leaves] ground truth —
   grain_chunks = leaves, splits = leaves - 1, and the reduction
   accounting (partials = leaves, combines = leaves - 1) — while every
   rank is still visited exactly once. *)
let test_dnc_counter_soak () =
  Obsv.Control.with_enabled true @@ fun () ->
  let total = Obsv.Metrics.total in
  List.iter
    (fun (n, grain, nthreads) ->
      let where = Printf.sprintf "n=%d grain=%d threads=%d" n grain nthreads in
      let leaves = Ompsim.Schedule.dnc_leaves ~grain ~n in
      (* ground truth tiles [0, n) contiguously in ascending order *)
      let covered = List.fold_left (fun acc (_, len) -> acc + len) 0 leaves in
      Alcotest.(check int) (where ^ ": leaves tile the range") n covered;
      let rec contiguous = function
        | (s1, l1) :: ((s2, _) :: _ as rest) -> s1 + l1 = s2 && contiguous rest
        | _ -> true
      in
      Alcotest.(check bool) (where ^ ": leaves contiguous") true (contiguous leaves);
      let splits0 = total Ompsim.Stats.dnc_splits in
      let chunks0 = total Ompsim.Stats.dnc_grain_chunks in
      let partials0 = total Ompsim.Stats.reduce_partials in
      let combines0 = total Ompsim.Stats.reduce_combines in
      let seen = Array.make n (Atomic.make 0) in
      Array.iteri (fun q _ -> seen.(q) <- Atomic.make 0) seen;
      let r =
        Ompsim.Par.reduce_chunks ~nthreads ~schedule:(Ompsim.Schedule.Dnc grain) ~n ~combine:( + )
          (fun ~thread:_ ~start ~len ->
            for q = start to start + len - 1 do
              Atomic.incr seen.(q)
            done;
            len)
      in
      Alcotest.(check (option int)) (where ^ ": lengths sum to n") (Some n) r;
      let bad = ref 0 in
      Array.iter (fun c -> if Atomic.get c <> 1 then incr bad) seen;
      Alcotest.(check int) (where ^ ": every rank exactly once") 0 !bad;
      let m = List.length leaves in
      Alcotest.(check int)
        (where ^ ": dnc.grain_chunks = leaves")
        m
        (total Ompsim.Stats.dnc_grain_chunks - chunks0);
      Alcotest.(check int)
        (where ^ ": dnc.splits = leaves - 1")
        (m - 1)
        (total Ompsim.Stats.dnc_splits - splits0);
      Alcotest.(check int)
        (where ^ ": reduce.partials = leaves")
        m
        (total Ompsim.Stats.reduce_partials - partials0);
      Alcotest.(check int)
        (where ^ ": reduce.combines = leaves - 1")
        (m - 1)
        (total Ompsim.Stats.reduce_combines - combines0))
    [ (1, 1, 3); (7, 2, 3); (64, 1, 4); (100, 3, 4); (1000, 16, 4); (37, 37, 2) ]

(* Cached-plan differential (ISSUE 5): a plan served by the service
   cache — whether from the in-memory LRU, from a disk round-trip, or
   received as a single-flight follower — must drive the collapsed
   walk to exactly the nest's enumeration, same as a fresh compile.
   The follower is made deterministic by gating the injected compile
   until the cache has counted the waiter. *)

let walk_all rc trip =
  let out = Array.make trip [||] in
  let j = ref 0 in
  Trahrhe.Recovery.walk rc ~pc:1 ~len:trip (fun idx ->
      if !j < trip then out.(!j) <- Array.copy idx;
      incr j);
  if !j <> trip then QCheck.Test.fail_reportf "walk delivered %d of %d ranks" !j trip;
  out

let check_against ~what reference walked =
  Array.iteri
    (fun r idx ->
      if idx <> reference.(r) then
        QCheck.Test.fail_reportf "%s: rank %d walked %s, nest enumerates %s" what (r + 1)
          (idx_to_string idx) (idx_to_string reference.(r)))
    walked

let cached_tmp_dir =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "ompsim-oracle-cache-%d" (Unix.getpid ()))
     in
     (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     dir)

let follower_plan cache nest =
  (* two concurrent requests; the compile parks until the cache
     reports the second one waiting, so exactly one is a follower *)
  let gate = Mutex.create () in
  let open_flag = ref false in
  let opened = Condition.create () in
  let gated n =
    Mutex.lock gate;
    while not !open_flag do
      Condition.wait opened gate
    done;
    Mutex.unlock gate;
    Service.Plan.compile n
  in
  let results = Array.make 2 (Error "unset") in
  let domains =
    Array.init 2 (fun r ->
        Domain.spawn (fun () ->
            results.(r) <- Service.Cache.find_or_compile ~compile:gated cache nest))
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (Service.Cache.stats cache).Service.Cache.singleflight_waits < 1
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.0005
  done;
  Mutex.lock gate;
  open_flag := true;
  Condition.broadcast opened;
  Mutex.unlock gate;
  Array.iter Domain.join domains;
  if (Service.Cache.stats cache).Service.Cache.singleflight_waits <> 1 then
    QCheck.Test.fail_reportf "single-flight: expected exactly one follower";
  results

let check_case_cached (nest, nval) =
  let param _ = nval in
  let reference =
    let buf = ref [] in
    N.iterate nest ~param (fun idx -> buf := Array.copy idx :: !buf);
    Array.of_list (List.rev !buf)
  in
  let canonical, renaming = Service.Fingerprint.canonicalize nest in
  let fresh =
    match Service.Plan.compile canonical with
    | Ok p -> p
    | Error e -> QCheck.Test.fail_reportf "plan compile failed on a valid nest: %s" e
  in
  let run_plan ~what plan renaming =
    if not (Service.Plan.equal fresh plan) then
      QCheck.Test.fail_reportf "%s: served plan differs from a fresh compile" what;
    let cparam = Service.Fingerprint.canonical_param renaming param in
    let rc = Service.Plan.recovery plan ~param:cparam in
    let trip = Trahrhe.Recovery.trip_count rc in
    if trip <> Array.length reference then
      QCheck.Test.fail_reportf "%s: trip count %d, nest enumerates %d" what trip
        (Array.length reference);
    check_against ~what reference (walk_all rc trip)
  in
  run_plan ~what:"fresh compile" fresh renaming;
  (* memory hit: second lookup in the same cache *)
  let mem = Service.Cache.create ~capacity:4 ~dir:None () in
  (match Service.Cache.find_or_compile mem nest with
  | Error e -> QCheck.Test.fail_reportf "memory miss path failed: %s" e
  | Ok _ -> ());
  (match Service.Cache.find_or_compile mem nest with
  | Error e -> QCheck.Test.fail_reportf "memory hit path failed: %s" e
  | Ok (plan, rn) ->
    if (Service.Cache.stats mem).Service.Cache.hits <> 1 then
      QCheck.Test.fail_reportf "second lookup was not a memory hit";
    run_plan ~what:"memory hit" plan rn);
  (* disk hit: a fresh cache (cold memory) over a populated store *)
  let dir = Lazy.force cached_tmp_dir in
  (match Service.Cache.find_or_compile (Service.Cache.create ~dir:(Some dir) ()) nest with
  | Error e -> QCheck.Test.fail_reportf "disk populate failed: %s" e
  | Ok _ -> ());
  (match Service.Cache.find_or_compile (Service.Cache.create ~dir:(Some dir) ()) nest with
  | Error e -> QCheck.Test.fail_reportf "disk hit path failed: %s" e
  | Ok (plan, rn) -> run_plan ~what:"disk hit" plan rn);
  (* single-flight follower: both racers' plans must drive the walk *)
  let sf = Service.Cache.create ~capacity:4 ~dir:None () in
  Array.iter
    (fun r ->
      match r with
      | Error e -> QCheck.Test.fail_reportf "single-flight request failed: %s" e
      | Ok (plan, rn) -> run_plan ~what:"single-flight" plan rn)
    (follower_plan sf nest);
  true

let prop_cached_plan_matches =
  QCheck.Test.make ~name:"cached plan walk = fresh compile walk (100 nests)" ~count:100
    arb_case check_case_cached

(* Native-specialization differential (ISSUE 6): a recovery served by
   the native tier — plan specialized to a shared object, recovery /
   stepping / hashing running as compiled C — must reproduce the
   interpreted walk and the nest's exact enumeration bit for bit:
   same indices per rank, same chunked checksums for every chunking,
   same lane blocks. Without a C compiler the tier must fall back to
   the interpreted walk and still be exact. *)

let native_tier =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "ompsim-oracle-jit-%d" (Unix.getpid ()))
     in
     (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     ( Service.Cache.create ~capacity:512 ~dir:(Some dir) (),
       Service.Native.create ~dir:(Some dir) () ))

let check_case_native (nest, nval) =
  let param _ = nval in
  let cache, tier = Lazy.force native_tier in
  let reference =
    let buf = ref [] in
    N.iterate nest ~param (fun idx -> buf := Array.copy idx :: !buf);
    Array.of_list (List.rev !buf)
  in
  match Service.Cache.find_or_compile cache nest with
  | Error e -> QCheck.Test.fail_reportf "plan compile failed on a valid nest: %s" e
  | Ok (plan, renaming) ->
    let module R = Trahrhe.Recovery in
    let cparam = Service.Fingerprint.canonical_param renaming param in
    let rc_i = Service.Plan.recovery plan ~param:cparam in
    let rc_n = Service.Native.recovery tier plan ~param:cparam in
    let trip = R.trip_count rc_n in
    if trip <> Array.length reference then
      QCheck.Test.fail_reportf "native trip count %d, nest enumerates %d" trip
        (Array.length reference);
    let compiled = Jit.Abi.functional () in
    if compiled <> R.native_enabled rc_n then
      QCheck.Test.fail_reportf "native backend %s with compiler %savailable"
        (if R.native_enabled rc_n then "attached" else "missing")
        (if compiled then "" else "un");
    (* walk: same ranks, same indices, same order as the enumeration *)
    check_against ~what:"native walk" reference (walk_all rc_n trip);
    (* per-rank recovery straight through the object *)
    if compiled then
      for pc = 1 to trip do
        match R.native_recover rc_n pc with
        | None -> QCheck.Test.fail_reportf "native_recover lost the backend at rank %d" pc
        | Some idx ->
          if idx <> reference.(pc - 1) then
            QCheck.Test.fail_reportf "native recover: rank %d is %s, nest enumerates %s" pc
              (idx_to_string idx)
              (idx_to_string reference.(pc - 1))
      done;
    (* chunked checksums: native reduction = interpreted fold, for
       chunk sizes that stress intra-run, run-crossing and whole-space
       calls *)
    List.iter
      (fun chunk ->
        let pc = ref 1 in
        while !pc <= trip do
          let len = min chunk (trip - !pc + 1) in
          let hn = R.walk_hash rc_n ~pc:!pc ~len in
          let hi = R.walk_hash rc_i ~pc:!pc ~len in
          if hn <> hi then
            QCheck.Test.fail_reportf "walk_hash(pc=%d, len=%d): native %d, interpreted %d" !pc
              len hn hi;
          pc := !pc + len
        done)
      [ 1; 3; 7; max 1 (trip / 2); trip ];
    (* lane blocks through the object's block filler *)
    List.iter (fun vlength -> run_lanes ~vlength rc_n reference trip) vlengths;
    true

let prop_native_matches_interpreted =
  QCheck.Test.make ~name:"native specialized walk = interpreted walk (100 nests)" ~count:100
    arb_case check_case_native

(* Store-recovery differential (ISSUE 6): corrupting the published
   [.so] must read as a silent miss — a cold tier recompiles and
   serves an exact native walk, mirroring the plan store's
   corrupt-entry behavior — while a bigint-headroom parameter refuses
   the backend; both reconcile against jit.compile / jit.fallback and
   the tier's own served/fallback counts. *)
let test_native_store_recovery () =
  if not (Jit.Abi.functional ()) then Alcotest.skip ();
  let module R = Trahrhe.Recovery in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ompsim-oracle-jit-store-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let nest =
    N.make ~params:[ "N" ]
      [ { N.var = "i"; lower = A.const Q.zero; upper = A.var "N" };
        { N.var = "j"; lower = A.var "i"; upper = A.make [ ("N", Q.one) ] Q.one } ]
  in
  let cache = Service.Cache.create ~capacity:4 ~dir:(Some dir) () in
  let plan, renaming =
    match Service.Cache.find_or_compile cache nest with
    | Ok x -> x
    | Error e -> Alcotest.failf "plan compile failed: %s" e
  in
  let cparam = Service.Fingerprint.canonical_param renaming (fun _ -> 9) in
  Obsv.Control.with_enabled true @@ fun () ->
  let metric name =
    match Obsv.Metrics.find name with Some m -> Obsv.Metrics.total m | None -> 0
  in
  let compiles0 = metric "jit.compile" in
  let fallbacks0 = metric "jit.fallback" in
  (* populate the store *)
  let t1 = Service.Native.create ~dir:(Some dir) () in
  let rc1 = Service.Native.recovery t1 plan ~param:cparam in
  Alcotest.(check bool) "first attach engages" true (R.native_enabled rc1);
  let t1_stats = Service.Native.stats t1 in
  (* unmap before clobbering: overwriting a dlopen'd object in place
     scribbles on live text pages *)
  Service.Native.clear t1;
  (* clobber the object; a cold tier must recompile, not fail *)
  let so = Filename.concat dir (Jit.Compile.so_name plan.Service.Plan.fingerprint) in
  Alcotest.(check bool) "object published" true (Sys.file_exists so);
  let oc = open_out_bin so in
  output_string oc "this is not a shared object\n";
  close_out oc;
  let t2 = Service.Native.create ~dir:(Some dir) () in
  let rc2 = Service.Native.recovery t2 plan ~param:cparam in
  Alcotest.(check bool) "recompiled after corruption" true (R.native_enabled rc2);
  let rc_i = Service.Plan.recovery plan ~param:cparam in
  let trip = R.trip_count rc_i in
  Alcotest.(check int) "hash parity after recompile"
    (R.walk_hash rc_i ~pc:1 ~len:trip)
    (R.walk_hash rc2 ~pc:1 ~len:trip);
  (* bigint headroom refuses the backend and counts the fallback *)
  let rc_big = Service.Native.recovery t2 plan ~param:(fun _ -> 3_000_000_000) in
  Alcotest.(check bool) "overflow-guarded stays interpreted" false (R.native_enabled rc_big);
  Alcotest.(check bool) "overflow guard engaged" true (R.overflow_guarded rc_big);
  (* reconciliation: populate + recompile, exactly one fallback, and
     the tier's own accounting agrees *)
  Alcotest.(check int) "jit.compile counts both compiles" (compiles0 + 2) (metric "jit.compile");
  Alcotest.(check int) "jit.fallback counts the refusal" (fallbacks0 + 1) (metric "jit.fallback");
  Alcotest.(check int) "first tier served" 1 t1_stats.Service.Native.served;
  let s = Service.Native.stats t2 in
  Alcotest.(check int) "tier served" 1 s.Service.Native.served;
  Alcotest.(check int) "tier fallbacks" 1 s.Service.Native.fallbacks;
  Service.Native.clear t2

(* -------- Numeric inversion differentials (ISSUE 10) -------- *)

(* Depth 5-7 simplicial nests and the deep registry kernels: the
   outermost level equation has degree >= 5, past the radical cap, so
   level 0 recovers through certified root isolation
   (Inversion.Numeric). The collapsed walk must still reproduce the
   exact lexicographic enumeration on every backend, schedule and lane
   width — the same bar the closed-form nests clear. *)

let simplex_nest depth =
  let levels =
    List.init depth (fun k ->
        let lower =
          if k = 0 then A.const Q.zero else A.var (Printf.sprintf "x%d" (k - 1))
        in
        { N.var = Printf.sprintf "x%d" k; lower; upper = A.var "N" })
  in
  N.make ~params:[ "N" ] levels

(* degree-5 through products of dependent extents rather than depth *)
let mixed5_nest () =
  let dep v = { N.var = v; lower = A.const Q.zero; upper = A.make [ ("i", Q.one) ] Q.one } in
  N.make ~params:[ "N" ]
    [ { N.var = "i"; lower = A.const Q.zero; upper = A.var "N" };
      dep "j"; dep "k"; dep "l"; dep "m" ]

let registry_nest name =
  match Kernels.Registry.find name with
  | Some k -> k.Kernels.Kernel.nest
  | None -> Alcotest.failf "kernel %s not registered" name

let deep_cases () =
  [ ("simplex depth 5", simplex_nest 5, 5);
    ("simplex depth 6", simplex_nest 6, 4);
    ("simplex depth 7", simplex_nest 7, 4);
    ("mixed dependent depth 5", mixed5_nest (), 4);
    ("simplex5 kernel", registry_nest "simplex5", 4);
    ("simplex5_tiled kernel", registry_nest "simplex5_tiled", 3) ]

let test_deep_numeric_walks () =
  List.iter
    (fun (name, nest, nval) ->
      (match Trahrhe.Inversion.invert nest with
      | Error e ->
        Alcotest.failf "%s: inversion failed: %s" name (Trahrhe.Inversion.error_to_string e)
      | Ok inv -> (
        match inv.Trahrhe.Inversion.recoveries.(0) with
        | Trahrhe.Inversion.Numeric _ -> ()
        | _ -> Alcotest.failf "%s: expected numeric recovery at level 0" name));
      ignore (check_case (nest, nval)))
    (deep_cases ())

(* OMPSIM_FORCE_NUMERIC parity: on nests the closed forms handle, a
   forced-numeric inversion must recover bit-for-bit the same indices
   — every rank, every strategy, and the chunked walk hash. *)
let test_forced_numeric_matches_closed_form () =
  List.iter
    (fun (name, n) ->
      let k = Option.get (Kernels.Registry.find name) in
      let nest = k.Kernels.Kernel.nest in
      let param = Kernels.Kernel.param_of k ~n in
      let inv_c = Trahrhe.Inversion.invert_exn nest in
      let inv_n = Trahrhe.Inversion.invert_exn ~force_numeric:true nest in
      let depth = Array.length inv_n.Trahrhe.Inversion.recoveries in
      Array.iteri
        (fun lev r ->
          match r with
          | Trahrhe.Inversion.Root _ ->
            Alcotest.failf "%s: closed form survived force_numeric at level %d" name lev
          | Trahrhe.Inversion.Numeric _ ->
            if lev = depth - 1 then Alcotest.failf "%s: last level went numeric" name
          | Trahrhe.Inversion.Last _ ->
            if lev <> depth - 1 then Alcotest.failf "%s: Last at level %d" name lev)
        inv_n.Trahrhe.Inversion.recoveries;
      let rc_c = Trahrhe.Recovery.make inv_c ~param in
      let rc_n = Trahrhe.Recovery.make inv_n ~param in
      let trip = Trahrhe.Recovery.trip_count rc_c in
      Alcotest.(check int) (name ^ ": trip") trip (Trahrhe.Recovery.trip_count rc_n);
      for pc = 1 to trip do
        let a = Trahrhe.Recovery.recover_guarded rc_c pc in
        let b = Trahrhe.Recovery.recover_guarded rc_n pc in
        if a <> b then
          Alcotest.failf "%s: pc=%d closed %s, forced numeric %s" name pc (idx_to_string a)
            (idx_to_string b);
        let bb = Trahrhe.Recovery.recover_binsearch rc_n pc in
        if a <> bb then
          Alcotest.failf "%s: pc=%d closed %s, numeric binsearch %s" name pc (idx_to_string a)
            (idx_to_string bb)
      done;
      Alcotest.(check int)
        (name ^ ": chunked walk hash")
        (Trahrhe.Recovery.walk_hash rc_c ~pc:1 ~len:trip)
        (Trahrhe.Recovery.walk_hash rc_n ~pc:1 ~len:trip))
    [ ("correlation", 8); ("covariance", 6); ("symm", 6); ("dynprog", 6) ]

(* Counter reconciliation: every recovery of a depth-5 plan with one
   numeric level must bump inversion.numeric exactly once and
   inversion.closed_form once per remaining level, on both recovery
   strategies, and the per-level isolate_level diagnostic must return
   a certificate enclosing the recovered index. *)
let test_numeric_counter_soak () =
  Obsv.Control.with_enabled true @@ fun () ->
  let module R = Trahrhe.Recovery in
  let k = Option.get (Kernels.Registry.find "simplex5") in
  let rc = Kernels.Kernel.recovery k ~n:5 in
  let trip = R.trip_count rc in
  Alcotest.(check int) "simplex5 trip at n=5" 126 trip;
  (* expected per-kind deltas follow the plan's actual level kinds, so
     the reconciliation also holds under OMPSIM_FORCE_NUMERIC=1 *)
  let levels = Array.length (Kernels.Kernel.inversion k).Trahrhe.Inversion.recoveries in
  let numeric_levels =
    Array.fold_left
      (fun acc r -> match r with Trahrhe.Inversion.Numeric _ -> acc + 1 | _ -> acc)
      0
      (Kernels.Kernel.inversion k).Trahrhe.Inversion.recoveries
  in
  Alcotest.(check bool) "level 0 is numeric" true (numeric_levels >= 1);
  let n0 = R.numeric_recoveries () and c0 = R.closed_form_recoveries () in
  for pc = 1 to trip do
    ignore (R.recover_guarded rc pc)
  done;
  Alcotest.(check int) "numeric = recoveries x numeric levels" (numeric_levels * trip)
    (R.numeric_recoveries () - n0);
  Alcotest.(check int)
    "closed_form = recoveries x other levels"
    ((levels - numeric_levels) * trip)
    (R.closed_form_recoveries () - c0);
  let n1 = R.numeric_recoveries () and c1 = R.closed_form_recoveries () in
  for pc = 1 to trip do
    ignore (R.recover_binsearch rc pc)
  done;
  Alcotest.(check int) "binsearch numeric accounting" (numeric_levels * trip)
    (R.numeric_recoveries () - n1);
  Alcotest.(check int) "binsearch closed-form accounting"
    ((levels - numeric_levels) * trip)
    (R.closed_form_recoveries () - c1);
  (* the runtime certificate: enclosure brackets the recovered index *)
  List.iter
    (fun pc ->
      let idx = R.recover_guarded rc pc in
      (match R.isolate_level rc idx ~pc ~level:0 with
      | Some (Ok e) ->
        let lo = Q.to_float e.Rootsolve.Isolate.enc_lo
        and hi = Q.to_float e.Rootsolve.Isolate.enc_hi in
        if lo > float_of_int (idx.(0) + 1) || hi < float_of_int idx.(0) then
          Alcotest.failf "pc=%d: enclosure [%f, %f] misses index %d" pc lo hi idx.(0)
      | Some (Error e) ->
        Alcotest.failf "pc=%d: isolation failed: %s" pc (Rootsolve.Isolate.error_to_string e)
      | None -> Alcotest.failf "pc=%d: level 0 is not numeric?" pc);
      (* closed-form levels carry no isolation diagnostic (level 1 is
         only numeric under the forced shard) *)
      match (Kernels.Kernel.inversion k).Trahrhe.Inversion.recoveries.(1) with
      | Trahrhe.Inversion.Numeric _ ->
        Alcotest.(check bool) "forced level 1 has a diagnostic" true
          (R.isolate_level rc idx ~pc ~level:1 <> None)
      | _ ->
        Alcotest.(check bool) "level 1 has no isolation diagnostic" true
          (R.isolate_level rc idx ~pc ~level:1 = None))
    [ 1; 2; 63; 125; 126 ]

(* A depth-5 nest the seed rejected: compiles to a plan, round-trips
   the disk cache through the codec unchanged, drives the walk to the
   exact enumeration, and engages the native JIT tier (the emitted
   per-level bracketed search is recovery-kind agnostic). *)
let test_deep_plan_roundtrip_native () =
  let module R = Trahrhe.Recovery in
  let nest = registry_nest "simplex5" in
  let param _ = 4 in
  let reference =
    let buf = ref [] in
    N.iterate nest ~param (fun idx -> buf := Array.copy idx :: !buf);
    Array.of_list (List.rev !buf)
  in
  let canonical, _ = Service.Fingerprint.canonicalize nest in
  let fresh =
    match Service.Plan.compile canonical with
    | Ok p -> p
    | Error e -> Alcotest.failf "deep plan compile failed: %s" e
  in
  (match fresh.Service.Plan.inversion.Trahrhe.Inversion.recoveries.(0) with
  | Trahrhe.Inversion.Numeric _ -> ()
  | _ -> Alcotest.fail "plan lost the numeric recovery");
  (* the generated C recovers the numeric level by bracketed search *)
  let c =
    Codegen.C_print.to_string
      (Codegen.Schemes.naive fresh.Service.Plan.inversion ~body:[ Codegen.C_ast.Raw "S();" ])
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "C emits the bracketed search" true (contains c "nlo_");
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ompsim-oracle-deep-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (match Service.Cache.find_or_compile (Service.Cache.create ~dir:(Some dir) ()) nest with
  | Error e -> Alcotest.failf "disk populate failed: %s" e
  | Ok _ -> ());
  let cache2 = Service.Cache.create ~dir:(Some dir) () in
  match Service.Cache.find_or_compile cache2 nest with
  | Error e -> Alcotest.failf "disk reload failed: %s" e
  | Ok (plan, rn) ->
    Alcotest.(check int) "served from disk" 1 (Service.Cache.stats cache2).Service.Cache.disk_hits;
    Alcotest.(check bool) "codec round-trip preserved the plan" true
      (Service.Plan.equal fresh plan);
    let cparam = Service.Fingerprint.canonical_param rn param in
    let rc = Service.Plan.recovery plan ~param:cparam in
    let trip = R.trip_count rc in
    Alcotest.(check int) "trip = enumeration" (Array.length reference) trip;
    check_against ~what:"deep disk-served walk" reference (walk_all rc trip);
    (* native tier: numeric plans keep the compiled fast path *)
    let tier = Service.Native.create ~dir:(Some dir) () in
    let rc_n = Service.Native.recovery tier plan ~param:cparam in
    Alcotest.(check bool) "native engages iff compiler present" (Jit.Abi.functional ())
      (R.native_enabled rc_n);
    check_against ~what:"deep native walk" reference (walk_all rc_n trip);
    if Jit.Abi.functional () then begin
      Alcotest.(check int) "hash parity native vs interpreted"
        (R.walk_hash rc ~pc:1 ~len:trip)
        (R.walk_hash rc_n ~pc:1 ~len:trip);
      for pc = 1 to trip do
        match R.native_recover rc_n pc with
        | None -> Alcotest.failf "native_recover lost the backend at rank %d" pc
        | Some idx ->
          if idx <> reference.(pc - 1) then
            Alcotest.failf "native recover: rank %d is %s, nest enumerates %s" pc
              (idx_to_string idx)
              (idx_to_string reference.(pc - 1))
      done
    end;
    Service.Native.clear tier

(* 200 random nests; each runs on both backends and all five
   schedules, plus the serial lane-walk at every width, so >= 200
   nests per backend as the issue requires. The seed is pinned:
   identical nests every run, no flaking. *)
let prop_walk_matches_enumeration =
  QCheck.Test.make ~name:"collapsed walk = lexicographic enumeration (200 nests)" ~count:200
    arb_case check_case

let prop_resilient_walk_matches =
  QCheck.Test.make
    ~name:"fault-injected resilient walk = lexicographic enumeration (60 nests)" ~count:60
    arb_case check_case_resilient

let rand = Random.State.make [| 0x7ca1e5ce |]

let suites =
  [ ( "oracle",
      [ QCheck_alcotest.to_alcotest ~rand prop_walk_matches_enumeration;
        QCheck_alcotest.to_alcotest ~rand prop_resilient_walk_matches;
        QCheck_alcotest.to_alcotest ~rand prop_reduce_matches_serial;
        Alcotest.test_case "d&c counters reconcile with dnc_leaves ground truth" `Quick
          test_dnc_counter_soak;
        QCheck_alcotest.to_alcotest ~rand prop_cached_plan_matches;
        QCheck_alcotest.to_alcotest ~rand prop_native_matches_interpreted;
        Alcotest.test_case "corrupt .so is a silent miss (recompile + fallback counters)" `Quick
          test_native_store_recovery;
        Alcotest.test_case "depth 5-7 numeric walks = enumeration (backends x schedules x lanes)"
          `Quick test_deep_numeric_walks;
        Alcotest.test_case "forced numeric = closed form bit-for-bit" `Quick
          test_forced_numeric_matches_closed_form;
        Alcotest.test_case "inversion counters reconcile + runtime certificates" `Quick
          test_numeric_counter_soak;
        Alcotest.test_case "deep plan: disk round-trip, exact walk, native JIT" `Quick
          test_deep_plan_roundtrip_native ] ) ]
