(* Fault-tolerance tests: spec parsing, deterministic injection
   decisions, supervised regions (retry / cancellation / serial
   fallback), exception propagation with preserved backtraces, and the
   analytic fault model of Sim. *)

module F = Ompsim.Fault
module Par = Ompsim.Par
module Sched = Ompsim.Schedule
module Sim = Ompsim.Sim

(* -------- spec parsing -------- *)

let spec_testable =
  Alcotest.testable
    (fun fmt t -> Format.pp_print_string fmt (F.to_spec t))
    (fun a b -> a = b)

let test_spec_valid () =
  List.iter
    (fun s ->
      Alcotest.(check (result spec_testable string)) (s ^ " arms default") (Ok F.default)
        (F.of_spec s))
    [ "1"; "on"; "true"; "yes"; "ON"; "True" ];
  List.iter
    (fun (s, want) ->
      Alcotest.(check (result spec_testable string)) s (Ok want) (F.of_spec s))
    [ ("p=0.3", { F.default with p = 0.3 });
      ("p=0.3,seed=7", { F.default with p = 0.3; seed = 7 });
      ( "p=0,seed=1,stall=0.25,stall_us=200,max=50",
        { F.p = 0.0; seed = 1; stall_p = 0.25; stall_us = 200; max_injections = 50 } );
      (" p = 0.5 , max = -1 ", { F.default with p = 0.5; max_injections = -1 }) ];
  (* to_spec prints something of_spec parses back *)
  List.iter
    (fun t ->
      Alcotest.(check (result spec_testable string)) (F.to_spec t ^ " round-trips") (Ok t)
        (F.of_spec (F.to_spec t)))
    [ F.default; { F.p = 1.0; seed = 0; stall_p = 0.5; stall_us = 10; max_injections = 3 } ]

let test_spec_reject () =
  List.iter
    (fun s ->
      match F.of_spec s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "0"; "off"; "bogus"; "p"; "p="; "=0.3"; "p=1.5"; "p=-0.1"; "p=x"; "seed=1.5";
      "seed="; "stall=2"; "stall_us=-5"; "max=x"; "frequency=0.5"; "p=0.1,,"; "p=0.1,q=2";
      "p=0.1;seed=2" ]

(* -------- decision determinism -------- *)

let test_decide_deterministic () =
  let cfg = { F.default with p = 0.5; seed = 9 } in
  for start = 0 to 199 do
    let first = F.decide cfg ~start ~attempt:0 in
    for _ = 1 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "start=%d stable" start)
        first
        (F.decide cfg ~start ~attempt:0)
    done
  done;
  (* extremes *)
  for start = 0 to 99 do
    Alcotest.(check bool) "p=0 never" false
      (F.decide { cfg with p = 0.0 } ~start ~attempt:0);
    Alcotest.(check bool) "p=1 always" true (F.decide { cfg with p = 1.0 } ~start ~attempt:0)
  done;
  (* the hash actually uses seed, start and attempt *)
  let count cfg =
    let c = ref 0 in
    for start = 0 to 999 do
      if F.decide cfg ~start ~attempt:0 then incr c
    done;
    !c
  in
  let c1 = count cfg and c2 = count { cfg with seed = 10 } in
  Alcotest.(check bool) "p=0.5 hits are roughly half" true (c1 > 300 && c1 < 700);
  let differs = ref false in
  for start = 0 to 99 do
    if F.decide cfg ~start ~attempt:0 <> F.decide { cfg with seed = 10 } ~start ~attempt:0 then
      differs := true
  done;
  Alcotest.(check bool) "seed changes the failure set" true (!differs && c1 <> c2 || !differs);
  let attempt_differs = ref false in
  for start = 0 to 99 do
    if F.decide cfg ~start ~attempt:0 <> F.decide cfg ~start ~attempt:1 then
      attempt_differs := true
  done;
  Alcotest.(check bool) "retried attempts hash differently" true !attempt_differs

let test_global_config () =
  let saved = F.get () in
  F.set None;
  Alcotest.(check bool) "disarmed" false (F.armed ());
  let inside = F.with_faults (Some F.default) (fun () -> F.armed ()) in
  Alcotest.(check bool) "armed inside with_faults" true inside;
  Alcotest.(check bool) "restored after" false (F.armed ());
  (try F.with_faults (Some F.default) (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after exception" false (F.armed ());
  F.set saved

(* -------- supervised regions -------- *)

let all_schedules =
  [ Sched.Static; Sched.Static_chunk 7; Sched.Dynamic 16; Sched.Guided 8;
    Sched.Work_stealing 8 ]

(* Each index must execute exactly once whatever faults are injected:
   injected faults fire before the body (failed attempts do no work),
   and chunks skipped by cancellation surface as coverage gaps the
   serial fallback re-runs. *)
let check_exactly_once ~label ~schedule ~nthreads ~n ~faults ~retries () =
  let hits = Array.make (max n 1) 0 in
  let result =
    Par.run_resilient ~retries ~faults ~nthreads ~schedule ~n (fun ~thread:_ ~start ~len ->
        for q = start to start + len - 1 do
          hits.(q) <- hits.(q) + 1
        done)
  in
  (match result with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" label (Par.describe_error e));
  for q = 0 to n - 1 do
    if hits.(q) <> 1 then Alcotest.failf "%s: index %d ran %d times" label q hits.(q)
  done

let test_resilient_all_schedules () =
  let faults = Some { F.default with p = 0.3; seed = 5 } in
  List.iter
    (fun schedule ->
      check_exactly_once
        ~label:(Sched.to_string schedule)
        ~schedule ~nthreads:4 ~n:997 ~faults ~retries:3 ())
    all_schedules;
  (* n = 0 and n = 1 corners, and the spawn backend *)
  check_exactly_once ~label:"empty" ~schedule:(Sched.Dynamic 4) ~nthreads:2 ~n:0 ~faults
    ~retries:1 ();
  check_exactly_once ~label:"single" ~schedule:Sched.Static ~nthreads:3 ~n:1 ~faults ~retries:3
    ();
  Par.with_backend Par.Spawn (fun () ->
      check_exactly_once ~label:"spawn backend" ~schedule:(Sched.Dynamic 16) ~nthreads:3 ~n:500
        ~faults ~retries:3 ())

exception Poison of int

(* a kernel that is genuinely broken for one chunk: retries cannot save
   it, the serial fallback fails on it too, and the region must report
   a structured error naming the range — everything else still runs. *)
let test_poisoned_chunk schedule () =
  let n = 400 and nthreads = 4 and poisoned = 137 in
  let visited = Array.make n false in
  let lost = ref [] in
  let kernel ~thread:_ ~start ~len =
    for q = start to start + len - 1 do
      if q = poisoned then begin
        Printexc.record_backtrace true;
        raise (Poison q)
      end;
      visited.(q) <- true
    done
  in
  Obsv.Control.with_enabled true (fun () ->
      Ompsim.Stats.reset ();
      match Par.run_resilient ~retries:2 ~faults:None ~nthreads ~schedule ~n kernel with
      | Ok () -> Alcotest.fail "poisoned region reported success"
      | Error { reason; failures; unrecovered } ->
        Alcotest.(check bool) "reason" true (reason = Par.Chunk_failed);
        Alcotest.(check bool) "some failure recorded" true (failures <> []);
        let covers (s, l) = poisoned >= s && poisoned < s + l in
        Alcotest.(check bool) "a failure names the poisoned range" true
          (List.exists (fun (cf : Par.chunk_failure) -> covers (cf.start, cf.len)) failures);
        Alcotest.(check bool) "poison exception surfaced" true
          (List.exists
             (fun (cf : Par.chunk_failure) ->
               match cf.error with Poison q -> q = poisoned | _ -> false)
             failures);
        let parallel_failure =
          List.find (fun (cf : Par.chunk_failure) -> covers (cf.start, cf.len)) failures
        in
        Alcotest.(check int) "retries exhausted" 3 parallel_failure.attempts;
        Alcotest.(check bool) "backtrace captured" true
          (Printexc.raw_backtrace_length parallel_failure.backtrace > 0);
        Alcotest.(check bool) "unrecovered range reported" true (List.exists covers unrecovered);
        lost := unrecovered;
        (* counters: the poisoned chunk retried twice in the region and
           the region cancelled exactly once *)
        Alcotest.(check bool) "chunk.retries >= 2" true
          (Obsv.Metrics.total Ompsim.Stats.chunk_retries >= 2);
        Alcotest.(check int) "region.cancelled" 1
          (Obsv.Metrics.total Ompsim.Stats.regions_cancelled));
  (* every index outside the unrecovered ranges ran (parallel or via
     serial fallback — the poisoned chunk's tail stays lost because the
     kernel aborts it on every attempt), and the pool survives *)
  let in_lost q = List.exists (fun (s, l) -> q >= s && q < s + l) !lost in
  Alcotest.(check bool) "all indices outside the unrecovered ranges executed" true
    (let ok = ref true in
     for q = 0 to n - 1 do
       if (not (in_lost q)) && not visited.(q) then ok := false
     done;
     !ok);
  let stride = 16 in
  let partial = Array.make (nthreads * stride) 0 in
  Par.parallel_for_chunks ~nthreads ~schedule:(Sched.Dynamic 8) ~n:100
    (fun ~thread ~start ~len ->
      let acc = ref 0 in
      for q = start to start + len - 1 do
        acc := !acc + q
      done;
      partial.(thread * stride) <- partial.(thread * stride) + !acc);
  let sum = ref 0 in
  for t = 0 to nthreads - 1 do
    sum := !sum + partial.(t * stride)
  done;
  Alcotest.(check int) "pool still works after the failed region" 4950 !sum

let test_hard_poison_serial_recovery () =
  (* p = 1 with no retries: every parallel attempt dies, the region
     cancels, and the injection-free serial fallback recovers the whole
     range — Ok, with the fallback observable in the counters *)
  let n = 300 and nthreads = 3 in
  let hits = Array.make n 0 in
  Obsv.Control.with_enabled true (fun () ->
      Ompsim.Stats.reset ();
      (match
         Par.run_resilient ~retries:0
           ~faults:(Some { F.default with p = 1.0; seed = 3 })
           ~nthreads ~schedule:(Sched.Dynamic 16) ~n
           (fun ~thread:_ ~start ~len ->
             for q = start to start + len - 1 do
               hits.(q) <- hits.(q) + 1
             done)
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "hard poison not recovered: %s" (Par.describe_error e));
      Alcotest.(check bool) "faults.injected > 0" true
        (Obsv.Metrics.total Ompsim.Stats.faults_injected > 0);
      Alcotest.(check bool) "fallback.serial > 0" true
        (Obsv.Metrics.total Ompsim.Stats.serial_fallbacks > 0);
      Alcotest.(check int) "region.cancelled" 1
        (Obsv.Metrics.total Ompsim.Stats.regions_cancelled);
      Alcotest.(check int) "par.iterations reconciles to n" n
        (Obsv.Metrics.total Ompsim.Stats.par_iterations));
  Array.iteri
    (fun q c -> if c <> 1 then Alcotest.failf "index %d ran %d times" q c)
    hits

let test_injection_budget () =
  (* max=3 bounds the injections: a p=1 chunk is injected on attempts
     1..3, then the budget is spent and attempt 4 succeeds in place *)
  F.reset_budget ();
  Obsv.Control.with_enabled true (fun () ->
      Ompsim.Stats.reset ();
      let ran = ref 0 in
      (match
         Par.run_resilient ~retries:5
           ~faults:(Some { F.default with p = 1.0; max_injections = 3 })
           ~nthreads:1 ~schedule:Sched.Static ~n:10
           (fun ~thread:_ ~start:_ ~len -> ran := !ran + len)
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "budgeted region failed: %s" (Par.describe_error e));
      Alcotest.(check int) "iterations ran" 10 !ran;
      Alcotest.(check int) "exactly 3 injections" 3
        (Obsv.Metrics.total Ompsim.Stats.faults_injected);
      Alcotest.(check int) "3 retries consumed" 3
        (Obsv.Metrics.total Ompsim.Stats.chunk_retries));
  F.reset_budget ()

let test_deadline_expiry () =
  (* a deadline of 0 ms expires before any chunk runs: structured
     Deadline_expired, nothing executed, no serial fallback *)
  let n = 1000 in
  Obsv.Control.with_enabled true (fun () ->
      Ompsim.Stats.reset ();
      match
        Par.run_resilient ~deadline_ms:0 ~faults:None ~nthreads:2
          ~schedule:(Sched.Dynamic 32) ~n (fun ~thread:_ ~start:_ ~len:_ -> ())
      with
      | Ok () -> Alcotest.fail "expired deadline reported success"
      | Error { reason; unrecovered; _ } ->
        Alcotest.(check bool) "reason" true (reason = Par.Deadline_expired);
        Alcotest.(check bool) "uncovered work reported" true (unrecovered <> []);
        Alcotest.(check int) "region.cancelled" 1
          (Obsv.Metrics.total Ompsim.Stats.regions_cancelled);
        Alcotest.(check int) "no serial fallback after deadline" 0
          (Obsv.Metrics.total Ompsim.Stats.serial_fallbacks))

let test_invalid_args () =
  let f ~thread:_ ~start:_ ~len:_ = () in
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Par.run_resilient: negative retries") (fun () ->
      ignore (Par.run_resilient ~retries:(-1) ~nthreads:1 ~schedule:Sched.Static ~n:4 f));
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Par.run_resilient: negative deadline") (fun () ->
      ignore (Par.run_resilient ~deadline_ms:(-1) ~nthreads:1 ~schedule:Sched.Static ~n:4 f))

(* -------- backtrace preservation (satellite: Pool/Par re-raise) -------- *)

exception Kernel_bug

let test_backtrace_preserved backend () =
  (* a kernel exception crossing the pool join must keep its original
     backtrace (Printexc.raise_with_backtrace in Pool) *)
  Par.with_backend backend (fun () ->
      match
        Par.parallel_for_chunks ~nthreads:4 ~schedule:(Sched.Dynamic 8) ~n:200
          (fun ~thread:_ ~start ~len:_ ->
            if start >= 100 then begin
              (* enable recording on the raising domain itself *)
              Printexc.record_backtrace true;
              raise Kernel_bug
            end)
      with
      | () -> Alcotest.fail "kernel exception swallowed"
      | exception Kernel_bug ->
        Alcotest.(check bool) "backtrace survived the join" true
          (Printexc.raw_backtrace_length (Printexc.get_raw_backtrace ()) > 0)
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e))

(* -------- analytic fault model -------- *)

let test_sim_fault_model () =
  let feq msg want got = Alcotest.(check (float 1e-9)) msg want got in
  feq "no faults: one attempt" 1.0 (Sim.expected_attempts ~p:0.0 ~retries:5);
  feq "certain faults: retries+1 attempts" 3.0 (Sim.expected_attempts ~p:1.0 ~retries:2);
  feq "geometric sum" 1.75 (Sim.expected_attempts ~p:0.5 ~retries:2);
  feq "certain completion at p=0" 1.0 (Sim.completion_probability ~p:0.0 ~retries:0);
  feq "p=0.5 one retry" 0.75 (Sim.completion_probability ~p:0.5 ~retries:1);
  feq "p=1 never completes" 0.0 (Sim.completion_probability ~p:1.0 ~retries:7);
  let ov = { Sim.fork_join = 4.0; dispatch = 2.0; chunk_start = 1.0; per_iter = 0.5 } in
  let r = Sim.resilient_overheads ov ~p:0.5 ~retries:2 in
  feq "dispatch inflated" 3.5 r.Sim.dispatch;
  feq "chunk_start inflated" 1.75 r.Sim.chunk_start;
  feq "fork_join paid once" 4.0 r.Sim.fork_join;
  feq "per_iter paid once" 0.5 r.Sim.per_iter;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Sim.expected_attempts: p outside [0,1]") (fun () ->
      ignore (Sim.expected_attempts ~p:1.5 ~retries:0));
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Sim.completion_probability: negative retries") (fun () ->
      ignore (Sim.completion_probability ~p:0.5 ~retries:(-1)))

let suites =
  [ ( "fault",
      [ Alcotest.test_case "spec parses" `Quick test_spec_valid;
        Alcotest.test_case "spec rejects" `Quick test_spec_reject;
        Alcotest.test_case "decisions deterministic" `Quick test_decide_deterministic;
        Alcotest.test_case "global config" `Quick test_global_config;
        Alcotest.test_case "sim fault model" `Quick test_sim_fault_model ] );
    ( "resilient",
      [ Alcotest.test_case "exactly-once across schedules" `Quick test_resilient_all_schedules;
        Alcotest.test_case "poisoned chunk, dynamic" `Quick
          (test_poisoned_chunk (Sched.Dynamic 16));
        Alcotest.test_case "poisoned chunk, work-stealing" `Quick
          (test_poisoned_chunk (Sched.Work_stealing 8));
        Alcotest.test_case "hard poison recovered serially" `Quick
          test_hard_poison_serial_recovery;
        Alcotest.test_case "injection budget" `Quick test_injection_budget;
        Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
        Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        Alcotest.test_case "backtrace preserved (pool)" `Quick
          (test_backtrace_preserved Par.Pool);
        Alcotest.test_case "backtrace preserved (spawn)" `Quick
          (test_backtrace_preserved Par.Spawn) ] ) ]
