(* Core tests: nest model, ranking Ehrhart polynomials, inversion,
   runtime recovery, exhaustive validation — including the paper's own
   examples and property tests over random nests. *)

module A = Polymath.Affine
module P = Polymath.Polynomial
module Q = Zmath.Rat

let poly = Alcotest.testable P.pp P.equal
let aff terms c = A.make (List.map (fun (x, k) -> (x, Q.of_int k)) terms) (Q.of_int c)

let correlation_nest () =
  Trahrhe.Nest.make ~params:[ "N" ]
    [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
      { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 } ]

let fig6_nest () =
  Trahrhe.Nest.make ~params:[ "N" ]
    [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
      { var = "j"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 };
      { var = "k"; lower = aff [ ("j", 1) ] 0; upper = aff [ ("i", 1) ] 1 } ]

(* -------- Nest -------- *)

let test_nest_validation () =
  Alcotest.check_raises "duplicate iterator"
    (Invalid_argument "Nest.make: duplicate iterator i") (fun () ->
      ignore
        (Trahrhe.Nest.make ~params:[]
           [ { Trahrhe.Nest.var = "i"; lower = aff [] 0; upper = aff [] 5 };
             { Trahrhe.Nest.var = "i"; lower = aff [] 0; upper = aff [] 5 } ]));
  Alcotest.check_raises "inner var in outer bound"
    (Invalid_argument
       "Nest.make: bound of i mentions j which is not an outer iterator or parameter") (fun () ->
      ignore
        (Trahrhe.Nest.make ~params:[]
           [ { Trahrhe.Nest.var = "i"; lower = aff [ ("j", 1) ] 0; upper = aff [] 5 };
             { Trahrhe.Nest.var = "j"; lower = aff [] 0; upper = aff [] 5 } ]));
  Alcotest.check_raises "iterator shadows parameter"
    (Invalid_argument "Nest.make: iterator shadows parameter N") (fun () ->
      ignore
        (Trahrhe.Nest.make ~params:[ "N" ]
           [ { Trahrhe.Nest.var = "N"; lower = aff [] 0; upper = aff [] 5 } ]))

let test_nest_accessors () =
  let n = fig6_nest () in
  Alcotest.(check int) "depth" 3 (Trahrhe.Nest.depth n);
  Alcotest.(check (list string)) "vars" [ "i"; "j"; "k" ] (Trahrhe.Nest.level_vars n);
  Alcotest.(check int) "prefix depth" 2 (Trahrhe.Nest.depth (Trahrhe.Nest.prefix n 2));
  Alcotest.(check bool) "non-rectangular" false (Trahrhe.Nest.is_rectangular n);
  let rect =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { Trahrhe.Nest.var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { Trahrhe.Nest.var = "j"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  Alcotest.(check bool) "rectangular" true (Trahrhe.Nest.is_rectangular rect)

let test_dependence_degree () =
  (* correlation: i used by j's bound -> degree 2; fig6: all three
     loops depend on i (transitively for k) -> degree 3 *)
  Alcotest.(check int) "correlation" 2 (Trahrhe.Nest.max_dependence_degree (correlation_nest ()));
  Alcotest.(check int) "fig6" 3 (Trahrhe.Nest.max_dependence_degree (fig6_nest ()));
  let rect =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { Trahrhe.Nest.var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  Alcotest.(check int) "rectangular 1" 1 (Trahrhe.Nest.max_dependence_degree rect)

let test_nest_iterate () =
  let pts = ref [] in
  Trahrhe.Nest.iterate (correlation_nest ()) ~param:(fun _ -> 4) (fun idx ->
      pts := Array.to_list idx :: !pts);
  Alcotest.(check (list (list int)))
    "lex order"
    [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ]
    (List.rev !pts)

(* -------- Ranking -------- *)

let eval_at p bindings =
  P.eval (fun x -> Q.of_int (List.assoc x bindings)) p

let test_ranking_correlation_formula () =
  (* the paper's §III closed form: r(i,j) = (2iN + 2j - i^2 - 3i)/2 *)
  let r = Trahrhe.Ranking.ranking (correlation_nest ()) in
  let paper i j n = ((2 * i * n) + (2 * j) - (i * i) - (3 * i)) / 2 in
  List.iter
    (fun (i, j, n) ->
      Alcotest.(check string)
        (Printf.sprintf "r(%d,%d) N=%d" i j n)
        (string_of_int (paper i j n))
        (Q.to_string (eval_at r [ ("i", i); ("j", j); ("N", n) ])))
    [ (0, 1, 10); (0, 2, 10); (0, 9, 10); (1, 2, 10); (8, 9, 10); (3, 7, 12) ]

let test_ranking_paper_anchors () =
  (* §III: r(0,1)=1, r(0,N-1)=N-1, r(1,2)=N, r(N-2,N-1)=(N-1)N/2 *)
  let r = Trahrhe.Ranking.ranking (correlation_nest ()) in
  let n = 20 in
  let at i j = Q.to_bigint_exn (eval_at r [ ("i", i); ("j", j); ("N", n) ]) in
  Alcotest.(check string) "r(0,1)=1" "1" (Zmath.Bigint.to_string (at 0 1));
  Alcotest.(check string) "r(0,N-1)=N-1" (string_of_int (n - 1))
    (Zmath.Bigint.to_string (at 0 (n - 1)));
  Alcotest.(check string) "r(1,2)=N" (string_of_int n) (Zmath.Bigint.to_string (at 1 2));
  Alcotest.(check string) "r(N-2,N-1)=(N-1)N/2"
    (string_of_int ((n - 1) * n / 2))
    (Zmath.Bigint.to_string (at (n - 2) (n - 1)))

let test_ranking_fig6_formula () =
  (* §IV-C: r(i,j,k) = (6k - 3j^2 + 6ij + 3j + i^3 + 3i^2 + 2i + 6)/6 *)
  let r = Trahrhe.Ranking.ranking (fig6_nest ()) in
  let paper i j k =
    ((6 * k) - (3 * j * j) + (6 * i * j) + (3 * j) + (i * i * i) + (3 * i * i) + (2 * i) + 6) / 6
  in
  List.iter
    (fun (i, j, k) ->
      Alcotest.(check string)
        (Printf.sprintf "r(%d,%d,%d)" i j k)
        (string_of_int (paper i j k))
        (Q.to_string (eval_at r [ ("i", i); ("j", j); ("k", k); ("N", 99) ])))
    [ (0, 0, 0); (1, 0, 0); (1, 0, 1); (1, 1, 1); (4, 2, 3); (7, 0, 6) ]

let test_trip_counts () =
  let tc2 = Trahrhe.Ranking.trip_count (correlation_nest ()) in
  Alcotest.(check string) "correlation (N-1)N/2 at N=100" "4950"
    (Q.to_string (eval_at tc2 [ ("N", 100) ]));
  let tc3 = Trahrhe.Ranking.trip_count (fig6_nest ()) in
  (* paper: (N^3 - N)/6 *)
  Alcotest.(check string) "fig6 (N^3-N)/6 at N=10" "165" (Q.to_string (eval_at tc3 [ ("N", 10) ]))

let test_rank_at () =
  let nest = correlation_nest () in
  Alcotest.(check string) "rank_at first" "1"
    (Zmath.Bigint.to_string (Trahrhe.Ranking.rank_at nest ~param:(fun _ -> 10) [| 0; 1 |]))

(* -------- Inversion -------- *)

let test_invert_correlation_modes () =
  (* asserts closed-form structure: pin past the forced-numeric shard *)
  let inv = Trahrhe.Inversion.invert_exn ~force_numeric:false (correlation_nest ()) in
  (match inv.Trahrhe.Inversion.recoveries.(0) with
  | Trahrhe.Inversion.Root { var; mode; _ } ->
    Alcotest.(check string) "outer var" "i" var;
    Alcotest.(check bool) "sqrt stays real" true (mode = Symx.Cemit.Real)
  | _ -> Alcotest.fail "expected closed-form root for i");
  match inv.Trahrhe.Inversion.recoveries.(1) with
  | Trahrhe.Inversion.Last { var; _ } -> Alcotest.(check string) "last var" "j" var
  | _ -> Alcotest.fail "expected exact last level"

let test_invert_fig6_complex () =
  let inv = Trahrhe.Inversion.invert_exn ~force_numeric:false (fig6_nest ()) in
  match inv.Trahrhe.Inversion.recoveries.(0) with
  | Trahrhe.Inversion.Root { mode; _ } ->
    Alcotest.(check bool) "cubic needs complex evaluation (paper §IV-C)" true
      (mode = Symx.Cemit.Complex)
  | _ -> Alcotest.fail "expected closed-form root for i"

let test_invert_depth1 () =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { Trahrhe.Nest.var = "i"; lower = aff [] 3; upper = aff [ ("N", 1) ] 0 } ]
  in
  let inv = Trahrhe.Inversion.invert_exn nest in
  let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> 10) in
  Alcotest.(check int) "trip" 7 (Trahrhe.Recovery.trip_count rc);
  Alcotest.(check (array int)) "pc=1 -> i=3" [| 3 |] (Trahrhe.Recovery.recover_binsearch rc 1);
  Alcotest.(check (array int)) "pc=7 -> i=9" [| 9 |] (Trahrhe.Recovery.recover_binsearch rc 7)

let test_invert_degree5_numeric () =
  (* 5 nested loops all depending on i: the level-0 prefix is a quintic,
     past the radical cap — the seed rejected this with Degree_too_high;
     it now inverts through certified numeric root isolation *)
  let dep v = { Trahrhe.Nest.var = v; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 } in
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { Trahrhe.Nest.var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        dep "j"; dep "k"; dep "l"; dep "m" ]
  in
  Alcotest.(check int) "dependence degree 5" 5 (Trahrhe.Nest.max_dependence_degree nest);
  let inv = Trahrhe.Inversion.invert_exn nest in
  (match inv.Trahrhe.Inversion.recoveries.(0) with
  | Trahrhe.Inversion.Numeric { var; r_sub_index } ->
    Alcotest.(check string) "numeric var" "i" var;
    Alcotest.(check int) "r_sub index" 0 r_sub_index
  | _ -> Alcotest.fail "expected numeric recovery for i");
  (* inner levels still get closed forms / the exact last level *)
  (match inv.Trahrhe.Inversion.recoveries.(4) with
  | Trahrhe.Inversion.Last { var; _ } -> Alcotest.(check string) "last var" "m" var
  | _ -> Alcotest.fail "expected exact last level for m");
  (* exhaustive differential against lexicographic enumeration *)
  let report = Trahrhe.Validate.check inv ~param:(fun _ -> 5) in
  Alcotest.(check int) "trip at N=5" 979 report.Trahrhe.Validate.iterations;
  if not (Trahrhe.Validate.all_ok report) then
    Alcotest.failf "degree-5 numeric recovery:@\n%a" Trahrhe.Validate.pp report

let test_invert_pc_collision () =
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { Trahrhe.Nest.var = "pc"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { Trahrhe.Nest.var = "j"; lower = aff [] 0; upper = aff [ ("pc", 1) ] 1 } ]
  in
  Alcotest.check_raises "pc collision"
    (Invalid_argument "Inversion.invert: pc variable pc collides with the nest") (fun () ->
      ignore (Trahrhe.Inversion.invert nest));
  (* renaming the collapsed index works *)
  match Trahrhe.Inversion.invert ~pc_var:"flat" nest with
  | Ok inv -> Alcotest.(check string) "custom pc var" "flat" inv.Trahrhe.Inversion.pc_var
  | Error e -> Alcotest.failf "unexpected: %s" (Trahrhe.Inversion.error_to_string e)

(* -------- Recovery -------- *)

let test_recovery_paper_formulas () =
  (* at N=10: pc=1 -> (0,1); pc=9 -> first iteration of i=1 (paper:
     r(1,2) = N means pc=N -> (1,2)) *)
  let inv = Trahrhe.Inversion.invert_exn (correlation_nest ()) in
  let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> 10) in
  Alcotest.(check (array int)) "pc=1" [| 0; 1 |] (Trahrhe.Recovery.recover rc 1);
  Alcotest.(check (array int)) "pc=N=10" [| 1; 2 |] (Trahrhe.Recovery.recover rc 10);
  Alcotest.(check (array int)) "pc=last" [| 8; 9 |]
    (Trahrhe.Recovery.recover rc (Trahrhe.Recovery.trip_count rc))

let test_recovery_strategies_agree () =
  let inv = Trahrhe.Inversion.invert_exn (fig6_nest ()) in
  let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> 12) in
  for pc = 1 to Trahrhe.Recovery.trip_count rc do
    let g = Trahrhe.Recovery.recover_guarded rc pc in
    let b = Trahrhe.Recovery.recover_binsearch rc pc in
    if g <> b then
      Alcotest.failf "pc=%d: guarded=(%d,%d,%d) binsearch=(%d,%d,%d)" pc g.(0) g.(1) g.(2) b.(0)
        b.(1) b.(2)
  done

let test_recovery_bounds_functions () =
  let inv = Trahrhe.Inversion.invert_exn (correlation_nest ()) in
  let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> 10) in
  Alcotest.(check int) "lower j at i=3" 4 (Trahrhe.Recovery.lower_bound rc ~level:1 [| 3; 0 |]);
  Alcotest.(check int) "upper j" 10 (Trahrhe.Recovery.upper_bound rc ~level:1 [| 3; 0 |]);
  Alcotest.(check int) "rank_prefix: first with i=1" 10
    (Trahrhe.Recovery.rank_prefix rc ~level:0 1 [| 0; 0 |])

let test_recovery_bigint_fallback () =
  (* ISSUE 4 acceptance: an oversized parameter flips the recovery
     into overflow-safe bigint mode (observable on the counter) and
     still recovers exact indices. For fig6 at N = 2,000,000 the rank
     values reach ~N^3/6 > 1.3e18 and the precomputed headroom
     threshold rejects native-int evaluation. *)
  let inv = Trahrhe.Inversion.invert_exn (fig6_nest ()) in
  let small = Trahrhe.Recovery.make inv ~param:(fun _ -> 12) in
  Alcotest.(check bool) "N=12 stays on the native path" false
    (Trahrhe.Recovery.overflow_guarded small);
  let nval = 2_000_000 in
  let counter =
    match Obsv.Metrics.find "recovery.bigint_fallback" with
    | Some c -> c
    | None -> Alcotest.fail "recovery.bigint_fallback counter not registered"
  in
  let rc =
    Obsv.Control.with_enabled true (fun () ->
        Obsv.Metrics.reset counter;
        let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> nval) in
        Alcotest.(check bool) "bigint fallback observed" true
          (Obsv.Metrics.total counter > 0);
        rc)
  in
  Alcotest.(check bool) "N=2e6 is overflow-guarded" true
    (Trahrhe.Recovery.overflow_guarded rc);
  (* exact trip count (exclusive uppers): i in [0,N-1), j in [0,i+1),
     k in [j,i+1) gives sum_{i=0}^{N-2} (i+1)(i+2)/2 =
     (N-1)N(N+1)/6 ~ 1.33e18 *)
  let expected_trip = ref 0 in
  for i = 0 to nval - 2 do
    expected_trip := !expected_trip + ((i + 1) * (i + 2) / 2)
  done;
  Alcotest.(check int) "exact trip count" !expected_trip (Trahrhe.Recovery.trip_count rc);
  (* rank round-trips at the extremes and deep in the range, where a
     native evaluation would have overflowed long ago *)
  let trip = Trahrhe.Recovery.trip_count rc in
  List.iter
    (fun pc ->
      let idx = Trahrhe.Recovery.recover_binsearch rc pc in
      Alcotest.(check int) (Printf.sprintf "rank(recover(%d))" pc) pc
        (Trahrhe.Recovery.rank rc idx);
      Alcotest.(check (array int))
        (Printf.sprintf "guarded = binsearch at %d" pc)
        idx
        (Trahrhe.Recovery.recover_guarded rc pc);
      (* the recovered point lies inside its level bounds *)
      for k = 0 to Trahrhe.Recovery.depth rc - 1 do
        let lo = Trahrhe.Recovery.lower_bound rc ~level:k idx
        and up = Trahrhe.Recovery.upper_bound rc ~level:k idx in
        if idx.(k) < lo || idx.(k) > up then
          Alcotest.failf "pc=%d level %d: %d outside [%d,%d]" pc k idx.(k) lo up
      done)
    [ 1; 2; trip / 3; trip / 2; trip - 1; trip ];
  (* the safe walk takes the increment path and matches binsearch *)
  let base = trip / 2 in
  let j = ref 0 in
  Trahrhe.Recovery.walk rc ~pc:base ~len:4 (fun idx ->
      Alcotest.(check (array int))
        (Printf.sprintf "walk rank %d" (base + !j))
        (Trahrhe.Recovery.recover_binsearch rc (base + !j))
        idx;
      incr j);
  Alcotest.(check int) "walk delivered 4 ranks" 4 !j

let test_recovery_increment_walks_domain () =
  let inv = Trahrhe.Inversion.invert_exn (correlation_nest ()) in
  let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> 6) in
  let idx = Trahrhe.Recovery.first rc in
  let seen = ref [ Array.to_list idx ] in
  while Trahrhe.Recovery.increment rc idx do
    seen := Array.to_list idx :: !seen
  done;
  Alcotest.(check int) "visited all" (Trahrhe.Recovery.trip_count rc) (List.length !seen);
  Alcotest.(check (list int)) "ends at last" [ 4; 5 ] (List.hd !seen)

let test_recovery_empty_domain () =
  let inv = Trahrhe.Inversion.invert_exn (correlation_nest ()) in
  let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> 1) in
  Alcotest.(check int) "empty trip" 0 (Trahrhe.Recovery.trip_count rc);
  Alcotest.check_raises "first on empty" (Failure "Recovery.first: empty iteration domain")
    (fun () -> ignore (Trahrhe.Recovery.first rc))

let test_recovery_missing_param () =
  let inv = Trahrhe.Inversion.invert_exn (correlation_nest ()) in
  Alcotest.(check bool) "missing parameter raises" true
    (try
       ignore (Trahrhe.Recovery.make inv ~param:(fun _ -> failwith "no such param"));
       false
     with Failure _ -> true)

let test_recovery_compiled_matches_flat () =
  (* the Horner pipeline (default) and the flat-term fallback must give
     identical recoveries, bounds and ranks everywhere *)
  List.iter
    (fun (name, nest, n) ->
      let inv = Trahrhe.Inversion.invert_exn nest in
      let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> n) in
      let rf = Trahrhe.Recovery.make ~compiled:false inv ~param:(fun _ -> n) in
      Alcotest.(check bool) (name ^ ": pipeline flags") true
        (Trahrhe.Recovery.compiled rc && not (Trahrhe.Recovery.compiled rf));
      Alcotest.(check int) (name ^ ": trips") (Trahrhe.Recovery.trip_count rc)
        (Trahrhe.Recovery.trip_count rf);
      for pc = 1 to Trahrhe.Recovery.trip_count rc do
        let g = Trahrhe.Recovery.recover_guarded rc pc in
        let gf = Trahrhe.Recovery.recover_guarded rf pc in
        if g <> gf then Alcotest.failf "%s pc=%d: guarded horner <> flat" name pc;
        let b = Trahrhe.Recovery.recover_binsearch rc pc in
        if g <> b then Alcotest.failf "%s pc=%d: guarded <> binsearch on horner" name pc;
        if Trahrhe.Recovery.rank rc g <> Trahrhe.Recovery.rank rf g then
          Alcotest.failf "%s pc=%d: rank horner <> flat" name pc
      done)
    [ ("correlation", correlation_nest (), 12); ("fig6", fig6_nest (), 9) ]

let test_recovery_walk_matches_increment () =
  (* the finite-difference chunk walk must visit exactly the sequence
     first/increment produces, from any starting pc *)
  List.iter
    (fun (name, nest, n) ->
      let inv = Trahrhe.Inversion.invert_exn nest in
      let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> n) in
      let trip = Trahrhe.Recovery.trip_count rc in
      let reference = Array.make trip [||] in
      let idx = Trahrhe.Recovery.first rc in
      reference.(0) <- Array.copy idx;
      for q = 1 to trip - 1 do
        ignore (Trahrhe.Recovery.increment rc idx);
        reference.(q) <- Array.copy idx
      done;
      let q = ref 0 in
      Trahrhe.Recovery.walk rc ~pc:1 ~len:trip (fun idx ->
          if idx <> reference.(!q) then Alcotest.failf "%s: full walk diverges at rank %d" name !q;
          incr q);
      Alcotest.(check int) (name ^ ": full walk length") trip !q;
      List.iter
        (fun pc ->
          if pc >= 1 && pc <= trip then begin
            let q = ref (pc - 1) in
            Trahrhe.Recovery.walk rc ~pc ~len:(min 7 (trip - pc + 1)) (fun idx ->
                if idx <> reference.(!q) then
                  Alcotest.failf "%s: chunk walk from pc=%d diverges at rank %d" name pc !q;
                incr q)
          end)
        [ 1; 2; 3; trip / 2; trip - 1; trip ];
      (* a walk reaching the end of the space stops early *)
      let count = ref 0 in
      Trahrhe.Recovery.walk rc ~pc:trip ~len:10 (fun _ -> incr count);
      Alcotest.(check int) (name ^ ": clipped walk") 1 !count;
      Trahrhe.Recovery.walk rc ~pc:1 ~len:0 (fun _ -> Alcotest.fail "len=0 must not call f"))
    [ ("correlation", correlation_nest (), 10); ("fig6", fig6_nest (), 8) ]

let test_recovery_walk_lanes_matches_walk () =
  (* the §VI-A batched lane-walk must deliver exactly the per-iteration
     walk's sequence, for every block width, from any starting pc —
     lane [l] of a block based at [base] holds the index of rank
     [base + l] *)
  List.iter
    (fun (name, nest, n) ->
      let inv = Trahrhe.Inversion.invert_exn nest in
      let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> n) in
      let trip = Trahrhe.Recovery.trip_count rc in
      let depth = Trahrhe.Nest.depth nest in
      let reference = Array.make (trip + 1) [||] in
      let pos = ref 1 in
      Trahrhe.Recovery.walk rc ~pc:1 ~len:trip (fun idx ->
          reference.(!pos) <- Array.copy idx;
          incr pos);
      let check ~vlength ~pc ~len =
        let where = Printf.sprintf "%s vlength=%d pc=%d len=%d" name vlength pc len in
        let next = ref pc in
        let last = min trip (pc + len - 1) in
        Trahrhe.Recovery.walk_lanes rc ~pc ~len ~vlength (fun ~base ~count lanes ->
            if base <> !next then Alcotest.failf "%s: block base %d, expected %d" where base !next;
            if count <= 0 || count > vlength then
              Alcotest.failf "%s: block count %d" where count;
            if Array.length lanes <> depth then Alcotest.failf "%s: lane rows" where;
            for l = 0 to count - 1 do
              for k = 0 to depth - 1 do
                if lanes.(k).(l) <> reference.(base + l).(k) then
                  Alcotest.failf "%s: rank %d level %d is %d, walk has %d" where (base + l) k
                    lanes.(k).(l)
                    reference.(base + l).(k)
              done
            done;
            next := base + count);
        Alcotest.(check int) (where ^ ": covered") (last + 1) !next
      in
      (* full walks at several widths, including 1 (degenerate: every
         block is a single lane) and a width wider than the space *)
      List.iter (fun v -> check ~vlength:v ~pc:1 ~len:trip) [ 1; 4; 8; trip + 5 ];
      (* chunked walks with partial final blocks, from interior pcs *)
      List.iter
        (fun pc -> if pc >= 1 && pc <= trip then check ~vlength:4 ~pc ~len:(min 7 (trip - pc + 1)))
        [ 1; 2; trip / 2; trip - 1; trip ];
      (* len clipped by the end of the space *)
      check ~vlength:8 ~pc:trip ~len:10;
      (* len=0 must not call f *)
      Trahrhe.Recovery.walk_lanes rc ~pc:1 ~len:0 ~vlength:4 (fun ~base:_ ~count:_ _ ->
          Alcotest.fail "len=0 must not call f");
      Alcotest.check_raises "vlength 0 rejected"
        (Invalid_argument "Recovery.walk_lanes: vlength must be positive") (fun () ->
          Trahrhe.Recovery.walk_lanes rc ~pc:1 ~len:trip ~vlength:0 (fun ~base:_ ~count:_ _ -> ())))
    [ ("correlation", correlation_nest (), 10); ("fig6", fig6_nest (), 8) ]

let test_recover_block () =
  let inv = Trahrhe.Inversion.invert_exn (correlation_nest ()) in
  let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> 10) in
  let trip = Trahrhe.Recovery.trip_count rc in
  let lanes = Array.init 2 (fun _ -> Array.make 8 (-1)) in
  (* interior block: all 8 lanes filled with ranks pc..pc+7 *)
  Alcotest.(check int) "full block" 8 (Trahrhe.Recovery.recover_block rc ~pc:3 lanes);
  for l = 0 to 7 do
    let want = Trahrhe.Recovery.recover rc (3 + l) in
    Alcotest.(check int) (Printf.sprintf "lane %d level 0" l) want.(0) lanes.(0).(l);
    Alcotest.(check int) (Printf.sprintf "lane %d level 1" l) want.(1) lanes.(1).(l)
  done;
  (* block cut short by the end of the iteration space *)
  Alcotest.(check int) "clipped block" 2 (Trahrhe.Recovery.recover_block rc ~pc:(trip - 1) lanes);
  (* out-of-range pc fills nothing *)
  Alcotest.(check int) "pc past the end" 0 (Trahrhe.Recovery.recover_block rc ~pc:(trip + 1) lanes);
  Alcotest.(check int) "pc 0" 0 (Trahrhe.Recovery.recover_block rc ~pc:0 lanes);
  (* misshapen buffers are rejected *)
  Alcotest.check_raises "wrong row count"
    (Invalid_argument "Recovery.recover_block: lanes must have one row per nest level")
    (fun () -> ignore (Trahrhe.Recovery.recover_block rc ~pc:1 [| Array.make 4 0 |]));
  Alcotest.check_raises "ragged rows" (Invalid_argument "Recovery.recover_block: ragged lanes buffer")
    (fun () ->
      ignore (Trahrhe.Recovery.recover_block rc ~pc:1 [| Array.make 4 0; Array.make 3 0 |]))

(* -------- Validation: paper nests, kernels, random nests -------- *)

let check_nest ?(sizes = [ 2; 3; 5; 13 ]) name nest =
  match Trahrhe.Inversion.invert nest with
  | Error e -> Alcotest.failf "%s: inversion failed: %s" name (Trahrhe.Inversion.error_to_string e)
  | Ok inv ->
    List.iter
      (fun n ->
        let report = Trahrhe.Validate.check inv ~param:(fun _ -> n) in
        if not (Trahrhe.Validate.raw_floor_ok report) then
          Alcotest.failf "%s at n=%d:@\n%a" name n Trahrhe.Validate.pp report)
      sizes

let test_validate_paper_nests () =
  check_nest "correlation" (correlation_nest ());
  check_nest "fig6" (fig6_nest ())

let test_validate_shifted_lower_bounds () =
  (* non-zero constant lower bounds exercise the lbk handling of §IV *)
  check_nest "shifted"
    (Trahrhe.Nest.make ~params:[ "N" ]
       [ { Trahrhe.Nest.var = "i"; lower = aff [] 2; upper = aff [ ("N", 1) ] 2 };
         { Trahrhe.Nest.var = "j"; lower = aff [ ("i", 1) ] (-1); upper = aff [ ("N", 1); ("i", 1) ] 0 } ])

let test_validate_rhomboid () =
  check_nest "rhomboid"
    (Trahrhe.Nest.make ~params:[ "N" ]
       [ { Trahrhe.Nest.var = "t"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
         { Trahrhe.Nest.var = "i"; lower = aff [ ("t", 1) ] 0; upper = aff [ ("t", 1); ("N", 1) ] 0 } ])

let test_validate_trapezoid () =
  check_nest "trapezoid"
    (Trahrhe.Nest.make ~params:[ "N" ]
       [ { Trahrhe.Nest.var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
         { Trahrhe.Nest.var = "j"; lower = aff [] 0; upper = aff [ ("i", 1); ("N", 1) ] 1 } ])

let test_validate_multi_dependence () =
  (* inner bound mixing two outer iterators: k < i + j + 2 *)
  check_nest "mixed" ~sizes:[ 2; 3; 6 ]
    (Trahrhe.Nest.make ~params:[ "N" ]
       [ { Trahrhe.Nest.var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
         { Trahrhe.Nest.var = "j"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
         { Trahrhe.Nest.var = "k"; lower = aff [] 0; upper = aff [ ("i", 1); ("j", 1) ] 2 } ])

let test_validate_quartic_nest () =
  (* four loops depending on i: the outermost equation has degree 4,
     exercising the Ferrari solver end to end *)
  check_nest "quartic" ~sizes:[ 2; 3; 5 ]
    (Trahrhe.Nest.make ~params:[ "N" ]
       [ { Trahrhe.Nest.var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
         { Trahrhe.Nest.var = "j"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 };
         { Trahrhe.Nest.var = "k"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 };
         { Trahrhe.Nest.var = "l"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 } ])

let test_validate_all_kernels () =
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      let inv = Kernels.Kernel.inversion k in
      List.iter
        (fun n ->
          let report = Trahrhe.Validate.check inv ~param:(Kernels.Kernel.param_of k ~n) in
          if not (Trahrhe.Validate.raw_floor_ok report) then
            Alcotest.failf "%s at n=%d:@\n%a" k.Kernels.Kernel.name n Trahrhe.Validate.pp report)
        [ 3; 8 ])
    Kernels.Registry.kernels

let test_paper_formula_equivalence () =
  (* our selected correlation root must compute the same index as the
     paper's literal Figure 3 formula for every pc *)
  let inv = Trahrhe.Inversion.invert_exn (correlation_nest ()) in
  let n = 200 in
  let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> n) in
  let nf = float_of_int n in
  let paper_i pc =
    (* i = floor(-(sqrt(4N^2 - 4N - 8pc + 9) - 2N + 1) / 2) *)
    int_of_float
      (Float.floor
         (-.(Float.sqrt ((4. *. nf *. nf) -. (4. *. nf) -. (8. *. float_of_int pc) +. 9.)
             -. (2. *. nf) +. 1.)
         /. 2.))
  in
  for pc = 1 to n * (n - 1) / 2 do
    let got = (Trahrhe.Recovery.recover rc pc).(0) in
    if got <> paper_i pc then
      Alcotest.failf "pc=%d: ours %d, paper %d" pc got (paper_i pc)
  done

let prop_compiled_rank_matches_exact =
  (* the native-int compiled ranking must agree with exact bigint
     evaluation on every point *)
  QCheck.Test.make ~name:"compiled rank = exact bigint rank" ~count:300
    (QCheck.triple (QCheck.int_range 2 60) (QCheck.int_range 0 58) (QCheck.int_range 0 59))
    (fun (n, i, j) ->
      QCheck.assume (i < n - 1 && j > i && j < n);
      let nest = correlation_nest () in
      let inv = Trahrhe.Inversion.invert_exn nest in
      let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> n) in
      let fast = Trahrhe.Recovery.rank rc [| i; j |] in
      let exact = Trahrhe.Ranking.rank_at nest ~param:(fun _ -> n) [| i; j |] in
      Zmath.Bigint.to_int exact = Some fast)

let test_recovery_extralarge_sampled () =
  (* paper-scale sizes (utma 5000, ltmp 4000): closed forms + guards
     must stay exact at sparse sampled ranks *)
  List.iter
    (fun (nest, n) ->
      let inv = Trahrhe.Inversion.invert_exn nest in
      let rc = Trahrhe.Recovery.make inv ~param:(fun _ -> n) in
      let trip = Trahrhe.Recovery.trip_count rc in
      let step = max 1 (trip / 997) in
      let pc = ref 1 in
      while !pc <= trip do
        let g = Trahrhe.Recovery.recover_guarded rc !pc in
        let b = Trahrhe.Recovery.recover_binsearch rc !pc in
        if g <> b then Alcotest.failf "pc=%d disagreement" !pc;
        if Trahrhe.Recovery.rank rc g <> !pc then Alcotest.failf "pc=%d rank mismatch" !pc;
        pc := !pc + step
      done)
    [ (correlation_nest (), 5000); (fig6_nest (), 800) ]

(* random 2- and 3-level nests: the central soundness property *)
let random_nest =
  let gen =
    QCheck.Gen.(
      let coeff = int_range (-2) 2 in
      let* depth = int_range 2 3 in
      let* a = int_range 1 6 in
      let* c1 = coeff and* d1 = int_range (-2) 2 and* w1 = int_range 0 5 in
      let* c2a = coeff and* c2b = coeff and* d2 = int_range (-2) 2 and* w2 = int_range 0 4 in
      let levels2 =
        [ { Trahrhe.Nest.var = "i"; lower = aff [] 0; upper = aff [] a };
          { Trahrhe.Nest.var = "j"; lower = aff [ ("i", c1) ] d1; upper = aff [ ("i", c1) ] (d1 + w1 + 1) } ]
      in
      let levels3 =
        levels2
        @ [ { Trahrhe.Nest.var = "k";
              lower = aff [ ("i", c2a); ("j", c2b) ] d2;
              upper = aff [ ("i", c2a); ("j", c2b) ] (d2 + w2 + 1) } ]
      in
      return (Trahrhe.Nest.make ~params:[] (if depth = 2 then levels2 else levels3)))
  in
  QCheck.make ~print:(Format.asprintf "%a" Trahrhe.Nest.pp) gen

let prop_random_nests_validate =
  QCheck.Test.make ~name:"random nests: ranking bijective, recoveries exact" ~count:60
    random_nest (fun nest ->
      match Trahrhe.Inversion.invert ~sample_sizes:[ 1 ] nest with
      | Error (Trahrhe.Inversion.No_valid_root _) | Error Trahrhe.Inversion.No_samples ->
        QCheck.assume_fail ()
      | Error (Trahrhe.Inversion.Degree_too_high _) -> QCheck.assume_fail ()
      | Ok inv ->
        let report = Trahrhe.Validate.check inv ~param:(fun _ -> 0) in
        Trahrhe.Validate.raw_floor_ok report)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [ ( "trahrhe.nest",
      [ Alcotest.test_case "validation errors" `Quick test_nest_validation;
        Alcotest.test_case "accessors" `Quick test_nest_accessors;
        Alcotest.test_case "dependence degree" `Quick test_dependence_degree;
        Alcotest.test_case "iterate order" `Quick test_nest_iterate ] );
    ( "trahrhe.ranking",
      [ Alcotest.test_case "correlation paper formula" `Quick test_ranking_correlation_formula;
        Alcotest.test_case "correlation paper anchors" `Quick test_ranking_paper_anchors;
        Alcotest.test_case "fig6 paper formula" `Quick test_ranking_fig6_formula;
        Alcotest.test_case "trip counts" `Quick test_trip_counts;
        Alcotest.test_case "rank_at" `Quick test_rank_at ] );
    ( "trahrhe.inversion",
      [ Alcotest.test_case "correlation root modes" `Quick test_invert_correlation_modes;
        Alcotest.test_case "fig6 needs complex" `Quick test_invert_fig6_complex;
        Alcotest.test_case "depth-1 nest" `Quick test_invert_depth1;
        Alcotest.test_case "degree > 4 goes numeric" `Quick test_invert_degree5_numeric;
        Alcotest.test_case "pc variable collision" `Quick test_invert_pc_collision ] );
    ( "trahrhe.recovery",
      [ Alcotest.test_case "paper anchor recoveries" `Quick test_recovery_paper_formulas;
        Alcotest.test_case "strategies agree everywhere" `Quick test_recovery_strategies_agree;
        Alcotest.test_case "bounds and rank_prefix" `Quick test_recovery_bounds_functions;
        Alcotest.test_case "bigint overflow fallback" `Quick test_recovery_bigint_fallback;
        Alcotest.test_case "increment walks domain" `Quick test_recovery_increment_walks_domain;
        Alcotest.test_case "empty domain" `Quick test_recovery_empty_domain;
        Alcotest.test_case "missing parameter" `Quick test_recovery_missing_param;
        Alcotest.test_case "horner matches flat fallback" `Quick test_recovery_compiled_matches_flat;
        Alcotest.test_case "fdiff walk matches increment" `Quick test_recovery_walk_matches_increment;
        Alcotest.test_case "lane-walk matches walk (\xc2\xa7VI-A)" `Quick
          test_recovery_walk_lanes_matches_walk;
        Alcotest.test_case "recover_block edges" `Quick test_recover_block ] );
    ( "trahrhe.validate",
      [ Alcotest.test_case "paper nests exhaustively" `Quick test_validate_paper_nests;
        Alcotest.test_case "shifted lower bounds" `Quick test_validate_shifted_lower_bounds;
        Alcotest.test_case "rhomboid" `Quick test_validate_rhomboid;
        Alcotest.test_case "trapezoid" `Quick test_validate_trapezoid;
        Alcotest.test_case "mixed multi-outer dependence" `Quick test_validate_multi_dependence;
        Alcotest.test_case "quartic inversion end-to-end" `Slow test_validate_quartic_nest;
        Alcotest.test_case "all benchmark kernels" `Slow test_validate_all_kernels;
        Alcotest.test_case "paper Figure 3 formula equivalence" `Slow test_paper_formula_equivalence;
        Alcotest.test_case "paper-scale sampled recovery" `Slow test_recovery_extralarge_sampled ]
      @ qsuite [ prop_random_nests_validate; prop_compiled_rank_matches_exact ] ) ]
