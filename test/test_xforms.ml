(* Tests for the extension modules: expression simplification, reshape,
   fusion, and the GPU/SIMD execution models. *)

module A = Polymath.Affine
module P = Polymath.Polynomial
module Q = Zmath.Rat
module E = Symx.Expr

let aff terms c = A.make (List.map (fun (x, k) -> (x, Q.of_int k)) terms) (Q.of_int c)
let expr = Alcotest.testable E.pp E.equal

(* -------- Simplify -------- *)

let test_to_polynomial () =
  let e = E.mul (E.add (E.var "N") (E.of_int (-1))) (E.var "N") in
  (match Symx.Simplify.to_polynomial e with
  | Some p ->
    Alcotest.(check string) "expanded" "N^2 - N" (P.to_string p)
  | None -> Alcotest.fail "should be polynomial");
  Alcotest.(check bool) "sqrt not polynomial" true
    (Symx.Simplify.to_polynomial (E.sqrt (E.var "x")) = None);
  Alcotest.(check bool) "I not polynomial" true (Symx.Simplify.to_polynomial E.I = None);
  Alcotest.(check bool) "negative power not polynomial" true
    (Symx.Simplify.to_polynomial (E.inv (E.var "x")) = None)

let test_normalize_expands () =
  (* (N - 1/2)^2 + 2(1 - pc) under a sqrt: the radicand must expand *)
  let nm = E.add (E.var "N") (E.of_rat (Q.of_ints (-1) 2)) in
  let e = E.sqrt (E.add (E.mul nm nm) (E.mul (E.of_int 2) (E.sub E.one (E.var "pc")))) in
  let n = Symx.Simplify.normalize e in
  (match n with
  | E.Pow (base, half) when Q.equal half Q.half -> (
    match Symx.Simplify.to_polynomial base with
    | Some p ->
      Alcotest.(check string) "flat radicand" "N^2 - N - 2*pc + 9/4" (P.to_string p)
    | None -> Alcotest.fail "radicand should be polynomial")
  | _ -> Alcotest.failf "unexpected shape %s" (E.to_string n));
  Alcotest.(check bool) "no growth" true (Symx.Simplify.size n <= Symx.Simplify.size e)

let test_normalize_keeps_radicals () =
  let e = E.add (E.cbrt (E.var "x")) (E.mul (E.var "y") (E.var "y")) in
  let n = Symx.Simplify.normalize e in
  (* the cbrt must survive, the polynomial part must canonicalize *)
  Alcotest.(check bool) "still mentions cbrt" true
    (match n with E.Sum es -> List.exists (function E.Pow (_, k) -> Q.equal k (Q.of_ints 1 3) | _ -> false) es | _ -> false)

let prop_normalize_preserves_eval =
  (* random radical expressions: normalize must not change the value *)
  let gen =
    QCheck.Gen.(
      let rec expr depth =
        if depth = 0 then
          oneof [ map (fun n -> E.of_int n) (int_range (-5) 5); return (E.var "x"); return (E.var "y") ]
        else begin
          let sub = expr (depth - 1) in
          oneof
            [ map2 E.add sub sub;
              map2 E.mul sub sub;
              map E.sqrt (map (fun e -> E.add (E.mul e e) E.one) sub);
              sub ]
        end
      in
      expr 3)
  in
  QCheck.Test.make ~name:"normalize preserves complex evaluation" ~count:300
    (QCheck.make ~print:E.to_string gen)
    (fun e ->
      let env = function
        | "x" -> { Complex.re = 1.75; im = 0.0 }
        | _ -> { Complex.re = -2.5; im = 0.0 }
      in
      let a = E.eval_complex env e in
      let b = E.eval_complex env (Symx.Simplify.normalize e) in
      let scale = Float.max 1.0 (Complex.norm a) in
      Float.abs (a.re -. b.re) <= 1e-9 *. scale && Float.abs (a.im -. b.im) <= 1e-9 *. scale)

(* -------- Reshape -------- *)

let triangle_inv () =
  Trahrhe.Inversion.invert_exn
    (Trahrhe.Nest.make ~params:[ "N" ]
       [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
         { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 } ])

let rect_inv () =
  Trahrhe.Inversion.invert_exn
    (Trahrhe.Nest.make ~params:[ "A"; "B" ]
       [ { var = "x"; lower = aff [] 0; upper = aff [ ("A", 1) ] 0 };
         { var = "y"; lower = aff [] 0; upper = aff [ ("B", 1) ] 0 } ])

let param8 = function "N" -> 8 | "A" -> 4 | "B" -> 7 | p -> failwith p

let test_reshape_compat () =
  let r = Trahrhe.Reshape.make ~source:(triangle_inv ()) ~target:(rect_inv ()) in
  Alcotest.(check bool) "28 = 4*7" true (Trahrhe.Reshape.compatible_at r ~param:param8);
  let bad = function "N" -> 8 | "A" -> 5 | "B" -> 7 | p -> failwith p in
  Alcotest.(check bool) "28 <> 35" false (Trahrhe.Reshape.compatible_at r ~param:bad);
  Alcotest.(check bool) "map_point rejects incompatible" true
    (try
       ignore (Trahrhe.Reshape.map_point r ~param:bad [| 0; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_reshape_bijection () =
  let r = Trahrhe.Reshape.make ~source:(triangle_inv ()) ~target:(rect_inv ()) in
  (* every target point maps to a distinct source point, in rank order *)
  let seen = Hashtbl.create 32 in
  for x = 0 to 3 do
    for y = 0 to 6 do
      let src = Trahrhe.Reshape.map_point r ~param:param8 [| x; y |] in
      Alcotest.(check bool) "fresh" false (Hashtbl.mem seen (src.(0), src.(1)));
      Hashtbl.add seen (src.(0), src.(1)) ();
      Alcotest.(check bool) "inside triangle" true (src.(0) < src.(1) && src.(1) < 8)
    done
  done;
  Alcotest.(check int) "covers the triangle" 28 (Hashtbl.length seen)

let test_reshape_iter_lockstep () =
  let r = Trahrhe.Reshape.make ~source:(triangle_inv ()) ~target:(rect_inv ()) in
  let count = ref 0 in
  let last_rank = ref 0 in
  let rt = Trahrhe.Recovery.make (rect_inv ()) ~param:param8 in
  Trahrhe.Reshape.iter r ~param:param8 (fun tgt src ->
      incr count;
      (* the target walk is in rank order *)
      let rank = Trahrhe.Recovery.rank rt tgt in
      Alcotest.(check int) "rank order" (!last_rank + 1) rank;
      last_rank := rank;
      (* and agrees with the per-point mapping *)
      let mapped = Trahrhe.Reshape.map_point r ~param:param8 tgt in
      Alcotest.(check bool) "lockstep = map_point" true (mapped = src));
  Alcotest.(check int) "all 28" 28 !count

let test_reshape_pc_name_mismatch () =
  let a = triangle_inv () in
  let b =
    Trahrhe.Inversion.invert_exn ~pc_var:"flat"
      (Trahrhe.Nest.make ~params:[ "A" ]
         [ { var = "x"; lower = aff [] 0; upper = aff [ ("A", 1) ] 0 } ])
  in
  Alcotest.check_raises "pc mismatch"
    (Invalid_argument "Reshape.make: the two inversions must share the pc variable name")
    (fun () -> ignore (Trahrhe.Reshape.make ~source:a ~target:b))

(* -------- Fusion -------- *)

let test_fusion_structure () =
  let tri = triangle_inv () in
  let rect = rect_inv () in
  let f = Trahrhe.Fusion.fuse [ tri; rect ] in
  let segs = Trahrhe.Fusion.segments f in
  Alcotest.(check int) "two segments" 2 (List.length segs);
  Alcotest.(check (list int)) "indices" [ 0; 1 ]
    (List.map (fun s -> s.Trahrhe.Fusion.index) segs);
  (* total trip at the sample sizes: 28 + 28 = 56 *)
  let total =
    P.eval (fun x -> Q.of_int (param8 x)) (Trahrhe.Fusion.total_trip f)
  in
  Alcotest.(check string) "total" "56" (Q.to_string total)

let test_fusion_locate_and_recover () =
  let f = Trahrhe.Fusion.fuse [ triangle_inv (); rect_inv () ] in
  let seg, local = Trahrhe.Fusion.locate f ~param:param8 1 in
  Alcotest.(check int) "first in segment 0" 0 seg.Trahrhe.Fusion.index;
  Alcotest.(check int) "local 1" 1 local;
  let seg, local = Trahrhe.Fusion.locate f ~param:param8 28 in
  Alcotest.(check int) "boundary in segment 0" 0 seg.Trahrhe.Fusion.index;
  Alcotest.(check int) "local 28" 28 local;
  let seg, local = Trahrhe.Fusion.locate f ~param:param8 29 in
  Alcotest.(check int) "next in segment 1" 1 seg.Trahrhe.Fusion.index;
  Alcotest.(check int) "local restarts" 1 local;
  let s, idx = Trahrhe.Fusion.recover f ~param:param8 29 in
  Alcotest.(check int) "segment" 1 s;
  Alcotest.(check (array int)) "first rect point" [| 0; 0 |] idx;
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Trahrhe.Fusion.locate f ~param:param8 57);
       false
     with Invalid_argument _ -> true)

let test_fusion_iter_counts () =
  let f = Trahrhe.Fusion.fuse [ triangle_inv (); rect_inv () ] in
  let per_seg = [| 0; 0 |] in
  Trahrhe.Fusion.iter f ~param:param8 (fun s _ -> per_seg.(s) <- per_seg.(s) + 1);
  Alcotest.(check (array int)) "28 each" [| 28; 28 |] per_seg

let test_fusion_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Fusion.fuse: empty") (fun () ->
      ignore (Trahrhe.Fusion.fuse []))

let test_fusion_three_segments () =
  let seg v =
    Trahrhe.Inversion.invert_exn
      (Trahrhe.Nest.make ~params:[ "N" ]
         [ { Trahrhe.Nest.var = v; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 } ])
  in
  let f = Trahrhe.Fusion.fuse [ seg "a"; seg "b"; seg "c" ] in
  let param _ = 5 in
  (* 15 fused iterations: 1-5 -> a, 6-10 -> b, 11-15 -> c *)
  let expect = [ (1, 0); (5, 0); (6, 1); (10, 1); (11, 2); (15, 2) ] in
  List.iter
    (fun (pc, seg_idx) ->
      let s, idx = Trahrhe.Fusion.recover f ~param pc in
      Alcotest.(check int) (Printf.sprintf "pc=%d segment" pc) seg_idx s;
      Alcotest.(check int)
        (Printf.sprintf "pc=%d local index" pc)
        ((pc - 1) mod 5)
        idx.(0))
    expect;
  let total =
    Polymath.Polynomial.eval (fun _ -> Q.of_int 5) (Trahrhe.Fusion.total_trip f)
  in
  Alcotest.(check string) "total 15" "15" (Q.to_string total)

(* -------- GPU model -------- *)

let test_gpu_coalescing () =
  (* row-major consecutive addresses: coalesced mapping needs ~W/line
     times fewer transactions than blocked *)
  let n = 1024 and warp = 32 and line = 8 in
  let cost _ = 1.0 in
  let address q = q in
  let co =
    Ompsim.Gpu.run ~n ~warp ~mapping:Ompsim.Gpu.Coalesced ~cost ~address ~line
      ~transaction_cost:10.0
  in
  let bl =
    Ompsim.Gpu.run ~n ~warp ~mapping:Ompsim.Gpu.Blocked ~cost ~address ~line
      ~transaction_cost:10.0
  in
  Alcotest.(check int) "same batches" co.Ompsim.Gpu.batches bl.Ompsim.Gpu.batches;
  (* coalesced: each 32-lane batch touches 4 lines -> 32*4 = 128 *)
  Alcotest.(check int) "coalesced transactions" 128 co.Ompsim.Gpu.transactions;
  (* blocked: each batch touches 32 distinct lines -> 32*32 = 1024 *)
  Alcotest.(check int) "blocked transactions" 1024 bl.Ompsim.Gpu.transactions;
  Alcotest.(check bool) "coalesced faster" true (co.Ompsim.Gpu.time < bl.Ompsim.Gpu.time)

let test_gpu_ragged_tail () =
  let r =
    Ompsim.Gpu.run ~n:33 ~warp:32 ~mapping:Ompsim.Gpu.Coalesced ~cost:(fun _ -> 1.0)
      ~address:(fun q -> q) ~line:32 ~transaction_cost:0.0
  in
  Alcotest.(check int) "two batches" 2 r.Ompsim.Gpu.batches;
  Alcotest.(check (float 1e-9)) "compute = 2 lockstep steps" 2.0 r.Ompsim.Gpu.compute

let test_gpu_divergence_cost () =
  (* one slow lane per batch dominates the whole warp (lockstep) *)
  let r =
    Ompsim.Gpu.run ~n:64 ~warp:32 ~mapping:Ompsim.Gpu.Coalesced
      ~cost:(fun q -> if q mod 32 = 0 then 10.0 else 1.0)
      ~address:(fun q -> q) ~line:64 ~transaction_cost:0.0
  in
  Alcotest.(check (float 1e-9)) "slowest lane rules" 20.0 r.Ompsim.Gpu.compute

let test_gpu_transaction_regression () =
  (* regression for the reusable line-set: transactions must be counted
     per batch against an independently computed reference — a leak of
     one batch's lines into the next (e.g. a missing clear) or a stale
     entry surviving a resize would break the equality. The address
     patterns are chosen so every batch touches a DIFFERENT line set. *)
  let reference ~n ~warp ~mapping ~address ~line =
    let per_lane = (n + warp - 1) / warp in
    let total = ref 0 in
    for batch = 0 to per_lane - 1 do
      let lines = ref [] in
      for lane = 0 to warp - 1 do
        let q =
          match mapping with
          | Ompsim.Gpu.Coalesced -> (batch * warp) + lane
          | Ompsim.Gpu.Blocked -> (lane * per_lane) + batch
        in
        if q < n && (mapping = Ompsim.Gpu.Coalesced || batch < per_lane) then
          lines := (address q / line) :: !lines
      done;
      total := !total + List.length (List.sort_uniq compare !lines)
    done;
    !total
  in
  List.iter
    (fun (name, n, warp, line, address) ->
      List.iter
        (fun mapping ->
          let r =
            Ompsim.Gpu.run ~n ~warp ~mapping ~cost:(fun _ -> 1.0) ~address ~line
              ~transaction_cost:1.0
          in
          Alcotest.(check int)
            (Printf.sprintf "%s %s" name
               (match mapping with Ompsim.Gpu.Coalesced -> "coalesced" | _ -> "blocked"))
            (reference ~n ~warp ~mapping ~address ~line)
            r.Ompsim.Gpu.transactions)
        [ Ompsim.Gpu.Coalesced; Ompsim.Gpu.Blocked ])
    [ ("unit stride", 1000, 32, 8, Fun.id);
      ("strided", 1000, 32, 8, fun q -> 3 * q);
      ("ragged tail", 77, 16, 4, fun q -> (7 * q) + 1);
      ("scattered", 513, 32, 16, fun q -> q * q mod 4096) ]

let test_gpu_execute_matches_run () =
  (* §VI-B: [Gpu.execute] driven by a lane-walk that delivers warp-wide
     blocks of consecutive ranks is exactly the [Coalesced] mapping of
     [Gpu.run] — same batches, compute, transactions, time *)
  let trip = 1000 and warp = 32 and line = 8 in
  (* a fake collapsed depth-2 space: rank q maps to (q / 50, q mod 50) *)
  let walk_lanes ~pc ~len f =
    let last = min trip (pc + len - 1) in
    let lanes = [| Array.make warp 0; Array.make warp 0 |] in
    let base = ref pc in
    while !base <= last do
      let count = min warp (last - !base + 1) in
      for l = 0 to count - 1 do
        let q = !base + l - 1 in
        lanes.(0).(l) <- q / 50;
        lanes.(1).(l) <- q mod 50
      done;
      f ~base:!base ~count lanes;
      base := !base + count
    done
  in
  let cost2 idx = float_of_int (1 + ((idx.(0) + idx.(1)) mod 5)) in
  let addr2 idx = (idx.(0) * 50) + idx.(1) in
  let ex =
    Ompsim.Gpu.execute ~trip ~warp ~walk_lanes ~cost:cost2 ~address:addr2 ~line
      ~transaction_cost:10.0
  in
  let run =
    Ompsim.Gpu.run ~n:trip ~warp ~mapping:Ompsim.Gpu.Coalesced
      ~cost:(fun q -> cost2 [| q / 50; q mod 50 |])
      ~address:(fun q -> addr2 [| q / 50; q mod 50 |])
      ~line ~transaction_cost:10.0
  in
  Alcotest.(check int) "batches" run.Ompsim.Gpu.batches ex.Ompsim.Gpu.batches;
  Alcotest.(check (float 1e-9)) "compute" run.Ompsim.Gpu.compute ex.Ompsim.Gpu.compute;
  Alcotest.(check int) "transactions" run.Ompsim.Gpu.transactions ex.Ompsim.Gpu.transactions;
  Alcotest.(check (float 1e-9)) "time" run.Ompsim.Gpu.time ex.Ompsim.Gpu.time

let test_simd_execute_accounting () =
  (* §VI-A real execution: trip 100 in chunks of 30, vector width 8 —
     chunks of 30 batch as 8+8+8+6 (3 full blocks + 1 partial), the
     final chunk of 10 as 8+2; every rank delivered exactly once, in
     order *)
  let trip = 100 and vlength = 8 and chunk = 30 in
  let lanes_buf = [| Array.make vlength 0 |] in
  let walk_lanes ~pc ~len f =
    let last = min trip (pc + len - 1) in
    let base = ref pc in
    while !base <= last do
      let count = min vlength (last - !base + 1) in
      for l = 0 to count - 1 do
        lanes_buf.(0).(l) <- !base + l
      done;
      f ~base:!base ~count lanes_buf;
      base := !base + count
    done
  in
  let seen = ref [] in
  let r =
    Ompsim.Simd.execute ~trip ~vlength ~chunk ~walk_lanes
      ~body:(fun ~base:_ ~count lanes ->
        for l = 0 to count - 1 do
          seen := lanes.(0).(l) :: !seen
        done)
  in
  Alcotest.(check int) "iterations" trip r.Ompsim.Simd.iterations;
  Alcotest.(check int) "blocks" 14 r.Ompsim.Simd.blocks;
  Alcotest.(check int) "full blocks" 10 r.Ompsim.Simd.full_blocks;
  Alcotest.(check (float 1e-9)) "utilization" (100.0 /. (14.0 *. 8.0)) r.Ompsim.Simd.utilization;
  Alcotest.(check (list int)) "ranks in order" (List.init trip (fun q -> q + 1)) (List.rev !seen)

(* -------- SIMD model -------- *)

let test_simd_uniform_speedup () =
  let costs = Array.make 256 4.0 in
  let r = Ompsim.Simd.run ~costs ~vlength:8 ~fill:0.0 in
  Alcotest.(check (float 1e-6)) "8x on uniform work" 8.0 r.Ompsim.Simd.speedup

let test_simd_fill_overhead () =
  let costs = Array.make 256 4.0 in
  let r = Ompsim.Simd.run ~costs ~vlength:8 ~fill:0.5 in
  (* group: max 4.0 + 8*0.5 = 8.0 vs scalar 32.0 -> 4x *)
  Alcotest.(check (float 1e-6)) "fill halves the win" 4.0 r.Ompsim.Simd.speedup

let test_simd_tail () =
  let costs = Array.make 10 1.0 in
  let r = Ompsim.Simd.run ~costs ~vlength:4 ~fill:0.0 in
  (* groups of 4,4,2 -> 3 vector steps vs 10 scalar *)
  Alcotest.(check (float 1e-6)) "vector time 3" 3.0 r.Ompsim.Simd.vector_time

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [ ( "symx.simplify",
      [ Alcotest.test_case "to_polynomial" `Quick test_to_polynomial;
        Alcotest.test_case "expands radicands" `Quick test_normalize_expands;
        Alcotest.test_case "keeps radicals" `Quick test_normalize_keeps_radicals ]
      @ qsuite [ prop_normalize_preserves_eval ] );
    ( "trahrhe.reshape",
      [ Alcotest.test_case "compatibility check" `Quick test_reshape_compat;
        Alcotest.test_case "rank-preserving bijection" `Quick test_reshape_bijection;
        Alcotest.test_case "lockstep iteration" `Quick test_reshape_iter_lockstep;
        Alcotest.test_case "pc name mismatch" `Quick test_reshape_pc_name_mismatch ] );
    ( "trahrhe.fusion",
      [ Alcotest.test_case "structure" `Quick test_fusion_structure;
        Alcotest.test_case "locate and recover" `Quick test_fusion_locate_and_recover;
        Alcotest.test_case "iter counts" `Quick test_fusion_iter_counts;
        Alcotest.test_case "errors" `Quick test_fusion_errors;
        Alcotest.test_case "three segments" `Quick test_fusion_three_segments ] );
    ( "ompsim.gpu",
      [ Alcotest.test_case "coalescing advantage (§VI-B)" `Quick test_gpu_coalescing;
        Alcotest.test_case "ragged tail" `Quick test_gpu_ragged_tail;
        Alcotest.test_case "lockstep divergence" `Quick test_gpu_divergence_cost;
        Alcotest.test_case "transaction counts vs reference" `Quick test_gpu_transaction_regression;
        Alcotest.test_case "execute = coalesced run" `Quick test_gpu_execute_matches_run ] );
    ( "ompsim.simd",
      [ Alcotest.test_case "uniform speedup (§VI-A)" `Quick test_simd_uniform_speedup;
        Alcotest.test_case "fill overhead" `Quick test_simd_fill_overhead;
        Alcotest.test_case "tail groups" `Quick test_simd_tail;
        Alcotest.test_case "execute accounting" `Quick test_simd_execute_accounting ] ) ]
