long i;
long j;
int first_iteration = 1;
#pragma omp parallel for private(i, j) firstprivate(first_iteration) schedule(static)
for (long pc = 1; pc <= ((long)N*N + (long)N)/2; pc++) {
  if (first_iteration) {
    i = floor((-1.0)*((-1.0)*(double)N + sqrt(pow((double)N, 2.0) + (double)N + (-2.0)*(double)pc + (9.0/4.0)) + (-1.0/2.0)));
    /* exact adjustment of i against the ranking */
    {
      long lb_i = 0;
      long ub_i = ((long)N) - 1;
      if (i < lb_i) i = lb_i;
      if (i > ub_i) i = ub_i;
      while (i < ub_i && ((long)2*N*i - (long)i*i + (long)2*N - (long)i + (long)2)/2 <= pc) {
        i++;
      }
      while (i > lb_i && ((long)2*N*i - (long)i*i + (long)i + (long)2)/2 > pc) {
        i--;
      }
    }
    j = (-(long)2*N*i + (long)i*i + (long)i + (long)2*pc - (long)2)/2;
    first_iteration = 0;
  }
  /* statements(indices) */;
  j++;
  if (j >= (long)N) {
    i++;
    j = (long)i;
  }
}
