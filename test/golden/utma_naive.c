long i;
long j;
#pragma omp parallel for private(i, j) schedule(static)
for (long pc = 1; pc <= ((long)N*N + (long)N)/2; pc++) {
  i = floor((-1.0)*((-1.0)*(double)N + sqrt(pow((double)N, 2.0) + (double)N + (-2.0)*(double)pc + (9.0/4.0)) + (-1.0/2.0)));
  j = (-(long)2*N*i + (long)i*i + (long)i + (long)2*pc - (long)2)/2;
  /* statements(indices) */;
}
