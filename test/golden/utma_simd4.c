long i;
long j;
long v;
int first_iteration = 1;
long T_i[4];
long T_j[4];
#pragma omp parallel for private(i, j, T_i, T_j, v) firstprivate(first_iteration) schedule(static)
for (long pc = 1; pc <= ((long)N*N + (long)N)/2; pc += 4) {
  if (first_iteration) {
    i = floor((-1.0)*((-1.0)*(double)N + sqrt(pow((double)N, 2.0) + (double)N + (-2.0)*(double)pc + (9.0/4.0)) + (-1.0/2.0)));
    j = (-(long)2*N*i + (long)i*i + (long)i + (long)2*pc - (long)2)/2;
    first_iteration = 0;
  }
  for (v = pc; v <= (pc + 4 - 1 < ((long)N*N + (long)N)/2 ? pc + 4 - 1 : ((long)N*N + (long)N)/2); v++) {
    T_i[v - pc] = i;
    T_j[v - pc] = j;
    j++;
    if (j >= (long)N) {
      i++;
      j = (long)i;
    }
  }
#pragma omp simd
  for (v = pc; v <= (pc + 4 - 1 < ((long)N*N + (long)N)/2 ? pc + 4 - 1 : ((long)N*N + (long)N)/2); v++) {
    /* statements(T_i[v - pc], T_j[v - pc]) */;
  }
}
