(* C printer coverage (ISSUE 6): golden files pin the exact text the
   printer emits for each representative collapse scheme — any drift
   in indentation, parenthesization or statement layout shows up as a
   readable diff — and a gcc -fsyntax-only pass over schemes emitted
   for the oracle's random nests checks that everything the printer
   can produce is syntactically valid C, not just the shapes the
   goldens happen to cover. *)

module C = Codegen.C_ast
module S = Codegen.Schemes

let utma_inv =
  lazy
    (let k = Option.get (Kernels.Registry.find "utma") in
     (* goldens record closed-form C: pin past the forced-numeric shard *)
     match Trahrhe.Inversion.invert ~force_numeric:false k.Kernels.Kernel.nest with
     | Ok inv -> inv
     | Error e -> Alcotest.failf "utma inversion failed: %s" (Trahrhe.Inversion.error_to_string e))

let body = [ C.Raw "/* statements(indices) */;" ]

(* the same construction as [trahrhe emit], so a stale golden can be
   regenerated with the CLI:
     trahrhe emit -k utma --scheme SCHEME [--guarded] > test/golden/NAME.c *)
let emit_scheme ?(guarded = false) scheme =
  let inv = Lazy.force utma_inv in
  let config = { S.default_config with guarded } in
  let stmts =
    match scheme with
    | `Naive -> S.naive ~config inv ~body
    | `Per_thread -> S.per_thread ~config inv ~body
    | `Chunked chunk -> S.chunked ~config ~chunk inv ~body
    | `Simd vlength ->
      S.simd ~config ~vlength inv ~body_of:(fun subst ->
          [ C.Raw
              (Printf.sprintf "/* statements(%s) */;"
                 (String.concat ", "
                    (List.map subst
                       (Trahrhe.Nest.level_vars inv.Trahrhe.Inversion.nest))))
          ])
  in
  Codegen.C_print.to_string stmts

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name actual () =
  let path = Filename.concat "golden" (name ^ ".c") in
  let expected =
    try read_file path with Sys_error e -> Alcotest.failf "missing golden file: %s" e
  in
  if actual <> expected then begin
    (* park the actual output where a maintainer can diff and adopt it *)
    let dump = Filename.concat (Filename.get_temp_dir_name ()) (name ^ ".actual.c") in
    let oc = open_out_bin dump in
    output_string oc actual;
    close_out oc;
    Alcotest.failf "emitted C for %s drifted from %s (actual parked at %s)" name path dump
  end

(* ---- gcc -fsyntax-only over the oracle's random nests ---- *)

let gcc_available = lazy (Sys.command "gcc --version > /dev/null 2>&1" = 0)

(* every scheme for one nest, wrapped as its own function: iterators
   and pc are declared by the emitted code, only the parameter comes
   from outside *)
let functions_for buf idx inv =
  List.iteri
    (fun v (name, code) ->
      Buffer.add_string buf (Printf.sprintf "void nest_%d_%d(long N) {\n" idx v);
      Buffer.add_string buf code;
      Buffer.add_string buf "}\n\n";
      ignore name)
    [ ("naive", Codegen.C_print.to_string (S.naive inv ~body));
      ("per_thread", Codegen.C_print.to_string (S.per_thread inv ~body));
      ( "per_thread_guarded",
        Codegen.C_print.to_string
          (S.per_thread ~config:{ S.default_config with guarded = true } inv ~body) );
      ("chunked", Codegen.C_print.to_string (S.chunked ~chunk:4 inv ~body));
      ( "simd",
        Codegen.C_print.to_string
          (S.simd ~vlength:4 inv ~body_of:(fun subst ->
               [ C.Raw
                   (Printf.sprintf "/* statements(%s) */;"
                      (String.concat ", "
                         (List.map subst
                            (Trahrhe.Nest.level_vars inv.Trahrhe.Inversion.nest))))
               ])) )
    ]

let test_syntax_random_nests () =
  if not (Lazy.force gcc_available) then Alcotest.skip ();
  let rand = Random.State.make [| 0xc9012de7 |] in
  let cases = QCheck.Gen.generate ~n:15 ~rand Test_oracle.gen_case in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "#include <math.h>\n#include <complex.h>\n\n";
  List.iteri
    (fun idx (nest, _) ->
      match Trahrhe.Inversion.invert nest with
      | Error e ->
        Alcotest.failf "inversion failed on an oracle nest: %s"
          (Trahrhe.Inversion.error_to_string e)
      | Ok inv -> functions_for buf idx inv)
    cases;
  let dir = Filename.temp_file "cprint" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () ->
      let cfile = Filename.concat dir "schemes.c" in
      let oc = open_out cfile in
      output_string oc (Buffer.contents buf);
      close_out oc;
      let log = Filename.concat dir "gcc.log" in
      let status =
        Sys.command
          (Printf.sprintf "gcc -fopenmp -fsyntax-only -Werror=implicit-function-declaration %s 2>%s"
             (Filename.quote cfile) (Filename.quote log))
      in
      if status <> 0 then begin
        let err = try read_file log with Sys_error _ -> "" in
        Alcotest.failf "gcc -fsyntax-only rejected emitted schemes (%d nests):\n%s"
          (List.length cases)
          (String.sub err 0 (min 2000 (String.length err)))
      end)

let suites =
  [ ( "codegen.c_print",
      [ Alcotest.test_case "golden: naive scheme" `Quick
          (fun () -> check_golden "utma_naive" (emit_scheme `Naive) ());
        Alcotest.test_case "golden: per-thread scheme" `Quick
          (fun () -> check_golden "utma_per_thread" (emit_scheme `Per_thread) ());
        Alcotest.test_case "golden: per-thread guarded" `Quick
          (fun () -> check_golden "utma_per_thread_guarded" (emit_scheme ~guarded:true `Per_thread) ());
        Alcotest.test_case "golden: chunked:4 scheme" `Quick
          (fun () -> check_golden "utma_chunked4" (emit_scheme (`Chunked 4)) ());
        Alcotest.test_case "golden: simd:4 scheme" `Quick
          (fun () -> check_golden "utma_simd4" (emit_scheme (`Simd 4)) ());
        Alcotest.test_case "gcc -fsyntax-only over oracle nests" `Quick
          test_syntax_random_nests ] ) ]
