(* Tests for the closed-form solvers: for polynomials constructed from
   known roots, the symbolic candidate set must contain every root
   (under principal-branch complex evaluation). *)

module P = Polymath.Polynomial
module Q = Zmath.Rat
module E = Symx.Expr
module S = Rootsolve.Solver

let no_env _ = Complex.zero

(* (x - r1)(x - r2)... as a univariate with constant coefficients *)
let poly_of_roots leading roots =
  let x = P.var "x" in
  let p =
    List.fold_left (fun acc r -> P.mul acc (P.sub x (P.of_int r))) (P.of_int leading) roots
  in
  S.of_poly ~unknown:"x" p

let candidates_contain u roots =
  let cands = S.candidates u in
  let values = List.map (fun e -> E.eval_complex no_env e) cands in
  List.for_all
    (fun r ->
      List.exists
        (fun (z : Complex.t) ->
          Float.abs (z.re -. float_of_int r) < 1e-6 && Float.abs z.im < 1e-6)
        values)
    roots

let test_of_poly_rejects_nonlinear_unknown () =
  (* a coefficient mentioning the unknown is a misuse *)
  Alcotest.(check bool) "degree extraction" true
    (S.degree (S.of_poly ~unknown:"x" (P.mul (P.var "x") (P.var "y"))) = 1)

let test_degree () =
  Alcotest.(check int) "deg 3" 3 (S.degree (poly_of_roots 2 [ 1; 2; 3 ]));
  Alcotest.(check int) "deg 0" 0 (S.degree (S.of_poly ~unknown:"x" P.one));
  Alcotest.(check int) "deg -1 for zero" (-1) (S.degree (S.of_poly ~unknown:"x" P.zero))

let test_linear () =
  Alcotest.(check bool) "root 7" true (candidates_contain (poly_of_roots 3 [ 7 ]) [ 7 ]);
  Alcotest.(check bool) "root -4" true (candidates_contain (poly_of_roots 1 [ -4 ]) [ -4 ])

let test_quadratic () =
  Alcotest.(check bool) "roots 2,5" true (candidates_contain (poly_of_roots 1 [ 2; 5 ]) [ 2; 5 ]);
  Alcotest.(check bool) "roots -3,-3" true (candidates_contain (poly_of_roots 2 [ -3; -3 ]) [ -3 ]);
  Alcotest.(check bool) "roots 0,9" true (candidates_contain (poly_of_roots (-1) [ 0; 9 ]) [ 0; 9 ])

let test_cubic () =
  Alcotest.(check bool) "roots 1,2,3" true
    (candidates_contain (poly_of_roots 1 [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  Alcotest.(check bool) "roots -1,0,4" true
    (candidates_contain (poly_of_roots 2 [ -1; 0; 4 ]) [ -1; 0; 4 ]);
  Alcotest.(check bool) "triple root 2" true (candidates_contain (poly_of_roots 1 [ 2; 2; 2 ]) [ 2 ])

let test_quartic () =
  Alcotest.(check bool) "roots 1,2,3,4" true
    (candidates_contain (poly_of_roots 1 [ 1; 2; 3; 4 ]) [ 1; 2; 3; 4 ]);
  Alcotest.(check bool) "roots -2,-1,1,2 (biquadratic)" true
    (candidates_contain (poly_of_roots 1 [ -2; -1; 1; 2 ]) [ -2; -1; 1; 2 ]);
  Alcotest.(check bool) "roots 0,0,3,5" true
    (candidates_contain (poly_of_roots 3 [ 0; 0; 3; 5 ]) [ 0; 3; 5 ])

let test_unsupported_degree () =
  Alcotest.(check bool) "degree 5 raises structured" true
    (try
       ignore (S.candidates (poly_of_roots 1 [ 1; 2; 3; 4; 5 ]));
       false
     with S.Unsupported_degree 5 -> true);
  Alcotest.(check bool) "degree 0 raises structured" true
    (try
       ignore (S.candidates (S.of_poly ~unknown:"x" P.one));
       false
     with S.Unsupported_degree 0 -> true)

(* symbolic coefficients: solve r(x, lexmin) - pc = 0 for the
   correlation ranking and check the root matches at sample points *)
let test_symbolic_coefficients () =
  (* r(i, i+1) - pc where r = (2iN - i^2 - 3i + 2j)/2 *)
  let i = P.var "x" and n = P.var "N" and pc = P.var "pc" in
  let r =
    P.scale Q.half
      (P.add
         (P.sub (P.scale (Q.of_int 2) (P.mul i n)) (P.mul i i))
         (P.sub (P.scale (Q.of_int 2) (P.add i P.one)) (P.scale (Q.of_int 3) i)))
  in
  let u = S.of_poly ~unknown:"x" (P.sub r pc) in
  Alcotest.(check int) "quadratic in x" 2 (S.degree u);
  let cands = S.candidates u in
  Alcotest.(check int) "two candidates" 2 (List.length cands);
  (* at N=10, pc=1 one candidate must evaluate to x=0 *)
  let env = function
    | "N" -> { Complex.re = 10.0; im = 0.0 }
    | "pc" -> { Complex.re = 1.0; im = 0.0 }
    | _ -> Complex.zero
  in
  Alcotest.(check bool) "x=0 candidate exists" true
    (List.exists
       (fun e ->
         let z = E.eval_complex env e in
         Float.abs z.Complex.re < 1e-9 && Float.abs z.Complex.im < 1e-9)
       cands)

(* -------- certified isolation (Isolate) -------- *)

module I = Rootsolve.Isolate
module B = Zmath.Bigint

let qp l = Array.of_list (List.map Q.of_int l)

(* the certificate every success must carry: an exact rational root or
   a sign-change bracket narrower than [max_width] *)
let check_certificate ?(max_width = Q.one) p (e : I.enclosure) =
  Alcotest.(check bool) "lo <= hi" true (Q.compare e.I.enc_lo e.I.enc_hi <= 0);
  if e.I.exact then begin
    Alcotest.(check bool) "exact: lo = hi" true (Q.equal e.I.enc_lo e.I.enc_hi);
    Alcotest.(check bool) "exact: p(root) = 0" true (Q.is_zero (I.eval p e.I.enc_lo))
  end
  else begin
    let sl = Q.sign (I.eval p e.I.enc_lo) and sh = Q.sign (I.eval p e.I.enc_hi) in
    Alcotest.(check bool) "endpoint signs differ" true (sl <> 0 && sh <> 0 && sl <> sh);
    Alcotest.(check bool) "width < max_width" true
      (Q.compare (Q.sub e.I.enc_hi e.I.enc_lo) max_width < 0)
  end

let test_isolate_exact_endpoint () =
  (* (x - 3)(x - 7): lo landing on a root short-circuits to exact *)
  let p = qp [ 21; -10; 1 ] in
  match I.isolate p ~lo:(Q.of_int 3) ~hi:(Q.of_int 5) with
  | Ok e ->
    Alcotest.(check bool) "exact" true e.I.exact;
    Alcotest.(check (option string)) "integer root 3" (Some "3")
      (Option.map B.to_string (I.integer_root p e))
  | Error err -> Alcotest.failf "isolate failed: %s" (I.error_to_string err)

let test_isolate_quintic () =
  (* x^5 - 33 on [0, 3]: root 33^(1/5) ~ 2.01, past the radical cap *)
  let p = qp [ -33; 0; 0; 0; 0; 1 ] in
  match I.isolate p ~lo:Q.zero ~hi:(Q.of_int 3) with
  | Ok e ->
    check_certificate p e;
    Alcotest.(check (option string)) "integer below root" (Some "2")
      (Option.map B.to_string (I.integer_root p e))
  | Error err -> Alcotest.failf "isolate failed: %s" (I.error_to_string err)

let test_isolate_max_width () =
  let p = qp [ -2; 0; 1 ] in
  let w = Q.of_ints 1 1024 in
  match I.isolate ~max_width:w p ~lo:Q.zero ~hi:(Q.of_int 2) with
  | Ok e ->
    check_certificate ~max_width:w p e;
    let mid = Q.mul Q.half (Q.add e.I.enc_lo e.I.enc_hi) in
    Alcotest.(check bool) "sqrt(2) to 2^-10" true
      (Float.abs (Q.to_float mid -. Float.sqrt 2.0) < 1.0 /. 1024.0)
  | Error err -> Alcotest.failf "isolate failed: %s" (I.error_to_string err)

let test_isolate_no_root () =
  (* x^2 + 1 has no real roots: certified by a zero Descartes count *)
  (match I.isolate (qp [ 1; 0; 1 ]) ~lo:Q.zero ~hi:(Q.of_int 5) with
  | Error (I.No_root { variations = 0 }) -> ()
  | Error err -> Alcotest.failf "wrong error: %s" (I.error_to_string err)
  | Ok _ -> Alcotest.fail "expected No_root");
  match I.isolate (qp []) ~lo:Q.zero ~hi:Q.one with
  | Error I.Zero_polynomial -> ()
  | Error err -> Alcotest.failf "wrong error: %s" (I.error_to_string err)
  | Ok _ -> Alcotest.fail "expected Zero_polynomial"

let test_variations_on () =
  (* (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6 *)
  let p = qp [ -6; 11; -6; 1 ] in
  Alcotest.(check int) "three roots in (0,4)" 3
    (I.variations_on p ~lo:Q.zero ~hi:(Q.of_int 4));
  Alcotest.(check int) "one root in (0,3/2)" 1
    (I.variations_on p ~lo:Q.zero ~hi:(Q.of_ints 3 2));
  Alcotest.(check int) "no roots in (5,9)" 0
    (I.variations_on p ~lo:(Q.of_int 5) ~hi:(Q.of_int 9));
  Alcotest.(check int) "descartes on x^2 - 3x + 2" 2 (I.sign_variations (qp [ 2; -3; 1 ]))

let test_float_root () =
  let r = I.float_root [| -2.0; 0.0; 1.0 |] ~lo:0.0 ~hi:2.0 in
  Alcotest.(check bool) "sqrt 2" true (Float.abs (r -. Float.sqrt 2.0) < 1e-9);
  let r5 = I.float_root [| -33.0; 0.0; 0.0; 0.0; 0.0; 1.0 |] ~lo:0.0 ~hi:3.0 in
  Alcotest.(check bool) "quintic root finite and bracketed" true
    (Float.is_finite r5 && r5 >= 0.0 && r5 <= 3.0);
  Alcotest.(check bool) "quintic root value" true (Float.abs ((r5 ** 5.0) -. 33.0) < 1e-6)

(* random monotone polynomials of degree 2..7 (the shape the collapser
   feeds us): isolate must certify, and integer_root must agree with a
   direct integer scan for the largest v with p(v) <= 0 *)
let prop_isolate_monotone =
  QCheck.Test.make ~name:"isolate certifies monotone polynomials (deg 2-7)" ~count:200
    (QCheck.triple (QCheck.int_range 2 7) (QCheck.int_range 1 5) (QCheck.int_range 0 400))
    (fun (deg, slope, target) ->
      (* p(x) = x^deg + slope*x - target: strictly increasing on x >= 0 *)
      let p = Array.make (deg + 1) Q.zero in
      p.(deg) <- Q.one;
      p.(1) <- Q.add p.(1) (Q.of_int slope);
      p.(0) <- Q.of_int (-target);
      let hi = 20 in
      let pv v = Q.sign (I.eval p (Q.of_int v)) in
      QCheck.assume (pv 0 <= 0 && pv hi >= 0);
      match I.isolate p ~lo:Q.zero ~hi:(Q.of_int hi) with
      | Error _ -> false
      | Ok e ->
        let cert =
          if e.I.exact then Q.is_zero (I.eval p e.I.enc_lo)
          else
            Q.sign (I.eval p e.I.enc_lo) <> Q.sign (I.eval p e.I.enc_hi)
            && Q.compare (Q.sub e.I.enc_hi e.I.enc_lo) Q.one < 0
        in
        (* ground truth: largest integer v with p(v) <= 0 *)
        let truth = ref 0 in
        for v = 0 to hi do
          if pv v <= 0 then truth := v
        done;
        cert
        && (match I.integer_root p e with
           | Some b -> B.to_string b = string_of_int !truth
           | None -> false))

let prop_random_roots =
  QCheck.Test.make ~name:"candidates contain all constructed roots (deg 1-4)" ~count:300
    (QCheck.pair
       (QCheck.int_range 1 4)
       (QCheck.pair
          (QCheck.int_range 1 3)
          (QCheck.list_of_size (QCheck.Gen.int_range 1 4) (QCheck.int_range (-6) 6))))
    (fun (deg, (lead, roots)) ->
      let roots = List.filteri (fun i _ -> i < deg) roots in
      QCheck.assume (List.length roots = deg);
      candidates_contain (poly_of_roots lead roots) roots)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [ ( "rootsolve",
      [ Alcotest.test_case "of_poly and degree" `Quick test_degree;
        Alcotest.test_case "nonlinear coeff view" `Quick test_of_poly_rejects_nonlinear_unknown;
        Alcotest.test_case "linear" `Quick test_linear;
        Alcotest.test_case "quadratic" `Quick test_quadratic;
        Alcotest.test_case "cubic (Cardano)" `Quick test_cubic;
        Alcotest.test_case "quartic (Descartes/Ferrari)" `Quick test_quartic;
        Alcotest.test_case "unsupported degrees" `Quick test_unsupported_degree;
        Alcotest.test_case "symbolic parametric coefficients" `Quick test_symbolic_coefficients ]
      @ qsuite [ prop_random_roots ] );
    ( "rootsolve.isolate",
      [ Alcotest.test_case "exact endpoint root" `Quick test_isolate_exact_endpoint;
        Alcotest.test_case "quintic enclosure" `Quick test_isolate_quintic;
        Alcotest.test_case "max_width refinement" `Quick test_isolate_max_width;
        Alcotest.test_case "certified root-free" `Quick test_isolate_no_root;
        Alcotest.test_case "Descartes interval counts" `Quick test_variations_on;
        Alcotest.test_case "float seed" `Quick test_float_root ]
      @ qsuite [ prop_isolate_monotone ] ) ]
