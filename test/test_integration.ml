(* End-to-end integration: transform real C sources with the front-end,
   compile original and collapsed programs with gcc -fopenmp, run both,
   and compare outputs. Skipped when no C compiler is available. *)

let gcc_available =
  lazy (Sys.command "gcc --version > /dev/null 2>&1" = 0)

let require_gcc () =
  if not (Lazy.force gcc_available) then Alcotest.skip ()

let find_cli () =
  let base = Filename.dirname Sys.executable_name in
  List.find_opt Sys.file_exists
    [ Filename.concat base "../bin/trahrhe.exe";
      Filename.concat base "../../default/bin/trahrhe.exe";
      "_build/default/bin/trahrhe.exe" ]

let with_temp_dir f =
  let dir = Filename.temp_file "nonrect" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir))) (fun () -> f dir)

let compile_and_run dir name src =
  let cfile = Filename.concat dir (name ^ ".c") in
  let exe = Filename.concat dir name in
  let oc = open_out cfile in
  output_string oc src;
  close_out oc;
  let log = Filename.concat dir (name ^ ".log") in
  if
    Sys.command
      (Printf.sprintf "gcc -O2 -fopenmp %s -o %s -lm > %s 2>&1" (Filename.quote cfile)
         (Filename.quote exe) (Filename.quote log))
    <> 0
  then begin
    let ic = open_in log in
    let err = really_input_string ic (min 2000 (in_channel_length ic)) in
    close_in ic;
    Alcotest.failf "gcc failed on %s:\n%s" name err
  end;
  let ic = Unix.open_process_in (Filename.quote exe) in
  let out = input_line ic in
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "%s exited abnormally" name);
  out

(* program template: checksum of a triangular update printed on stdout;
   LOOP is replaced by the parallel construct under test *)
let template ~n ~loop =
  Printf.sprintf
    {|#include <stdio.h>
#include <math.h>
#include <complex.h>
#define N %d
static double a[N][N], b[N][N], c[N][N];
int main(void) {
  long i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) { b[i][j] = (double)((i*7 + j) %% 13) / 3.0; c[i][j] = (double)((i - 2*j) %% 11) / 5.0; }
%s
  double h = 0.0;
  for (i = 0; i < N; i++) for (j = 0; j < N; j++) h += a[i][j] * (double)(i + 2*j + 1);
  printf("%%.12e\n", h);
  return 0;
}
|}
    n loop

let correlation_loop ~with_collapse =
  Printf.sprintf
    {|  #pragma omp parallel for private(j, k) schedule(static)%s
  for (i = 0; i < N - 1; i++)
    for (j = i + 1; j < N; j++) {
      for (k = 0; k < N; k++)
        a[i][j] += b[k][i] * c[k][j];
      a[j][i] = a[i][j];
    }
|}
    (if with_collapse then " collapse(2)" else "")

let transform options =
  let src = template ~n:67 ~loop:(correlation_loop ~with_collapse:true) in
  let out, count = Cfront.Transform.transform_source ~options src in
  Alcotest.(check int) "one region" 1 count;
  out

let test_scheme options name () =
  require_gcc ();
  with_temp_dir (fun dir ->
      let reference =
        compile_and_run dir "reference" (template ~n:67 ~loop:(correlation_loop ~with_collapse:false))
      in
      let collapsed = compile_and_run dir name (transform options) in
      Alcotest.(check string) (name ^ " output matches") reference collapsed)

let test_fig6_complex_roots () =
  require_gcc ();
  (* depth-3 nest whose recovery uses cpow/csqrt/creal in the C *)
  let loop_orig =
    {|  for (i = 0; i < N - 1; i++)
    for (j = 0; j < i + 1; j++)
      for (k = j; k < i + 1; k++)
        a[i][j] += b[j][k] + c[k][j];
|}
  in
  let loop_collapse =
    {|  #pragma omp parallel for schedule(static) collapse(3)
  for (i = 0; i < N - 1; i++)
    for (j = 0; j < i + 1; j++)
      for (k = j; k < i + 1; k++)
        a[i][j] += b[j][k] + c[k][j];
|}
  in
  with_temp_dir (fun dir ->
      let reference = compile_and_run dir "fig6_ref" (template ~n:41 ~loop:loop_orig) in
      let options = { Cfront.Transform.default_options with guarded = true } in
      let out, count =
        Cfront.Transform.transform_source ~options (template ~n:41 ~loop:loop_collapse)
      in
      Alcotest.(check int) "one region" 1 count;
      (* under the forced-numeric shard the recovery has no radicals at
         all; the output-match below still holds either way *)
      if not (Trahrhe.Inversion.force_numeric_default ()) then
        Alcotest.(check bool) "uses complex recovery" true
          (let rec contains i =
             i + 4 <= String.length out && (String.sub out i 4 = "cpow" || contains (i + 1))
           in
           contains 0);
      let collapsed = compile_and_run dir "fig6_coll" out in
      Alcotest.(check string) "fig6 output matches" reference collapsed)

let test_cli_collapse () =
  require_gcc ();
  (* exercise the CLI binary end to end *)
  let cli = match find_cli () with Some c -> c | None -> Alcotest.skip () in
  with_temp_dir (fun dir ->
      let input = Filename.concat dir "in.c" in
      let output = Filename.concat dir "out.c" in
      let oc = open_out input in
      output_string oc (template ~n:31 ~loop:(correlation_loop ~with_collapse:true));
      close_out oc;
      let rc =
        Sys.command
          (Printf.sprintf "%s collapse %s -o %s --scheme chunked:64 2> /dev/null" cli
             (Filename.quote input) (Filename.quote output))
      in
      Alcotest.(check int) "cli exit 0" 0 rc;
      let reference =
        compile_and_run dir "cli_ref" (template ~n:31 ~loop:(correlation_loop ~with_collapse:false))
      in
      let ic = open_in output in
      let transformed = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let got = compile_and_run dir "cli_out" transformed in
      Alcotest.(check string) "cli output matches" reference got)

let test_strided_nest () =
  require_gcc ();
  (* stride-4 outer loop: normalized onto a surrogate iterator *)
  let loop_orig =
    {|  for (i = 0; i < 4 * N; i += 4)
    for (j = i; j < 4 * N; j++)
      a[i % N][j % N] += b[j % N][i % N] + 1.0;
|}
  in
  let loop_collapse =
    {|  #pragma omp parallel for schedule(static) collapse(2)
  for (i = 0; i < 4 * N; i += 4)
    for (j = i; j < 4 * N; j++)
      a[i % N][j % N] += b[j % N][i % N] + 1.0;
|}
  in
  with_temp_dir (fun dir ->
      let reference = compile_and_run dir "strided_ref" (template ~n:45 ~loop:loop_orig) in
      let out, count = Cfront.Transform.transform_source (template ~n:45 ~loop:loop_collapse) in
      Alcotest.(check int) "one region" 1 count;
      let got = compile_and_run dir "strided_coll" out in
      Alcotest.(check string) "strided output matches" reference got)

let test_reshape_c () =
  require_gcc ();
  (* execute a triangular source through a rectangular target nest *)
  let module A = Polymath.Affine in
  let module Q = Zmath.Rat in
  let aff terms c = A.make (List.map (fun (v, k) -> (v, Q.of_int k)) terms) (Q.of_int c) in
  let source =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
        { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 } ]
  in
  let target =
    Trahrhe.Nest.make ~params:[ "A"; "B" ]
      [ { var = "x"; lower = aff [] 0; upper = aff [ ("A", 1) ] 0 };
        { var = "y"; lower = aff [] 0; upper = aff [ ("B", 1) ] 0 } ]
  in
  let r =
    Trahrhe.Reshape.make
      ~source:(Trahrhe.Inversion.invert_exn source)
      ~target:(Trahrhe.Inversion.invert_exn target)
  in
  (* N=65 -> 2080 = 32 x 65 *)
  let loop_reshaped =
    Codegen.C_print.to_string ~indent:1
      (Codegen.Xforms.reshape r
         ~body:[ Codegen.C_ast.Raw "a[i][j] += b[j][i] + 1.0; a[j][i] = a[i][j];" ])
  in
  let loop_orig =
    {|  for (i = 0; i < N - 1; i++)
    for (j = i + 1; j < N; j++) {
      a[i][j] += b[j][i] + 1.0; a[j][i] = a[i][j];
    }
|}
  in
  with_temp_dir (fun dir ->
      let reference = compile_and_run dir "reshape_ref" (template ~n:65 ~loop:loop_orig) in
      let prog =
        template ~n:65
          ~loop:("#define A 32\n#define B 65\n  {\n" ^ loop_reshaped ^ "  }\n#undef A\n#undef B\n")
      in
      let got = compile_and_run dir "reshape_tgt" prog in
      Alcotest.(check string) "reshaped output matches" reference got)

let test_fused_c () =
  require_gcc ();
  (* fuse a triangular and a rhomboidal nest into one parallel loop *)
  let module A = Polymath.Affine in
  let module Q = Zmath.Rat in
  let aff terms c = A.make (List.map (fun (v, k) -> (v, Q.of_int k)) terms) (Q.of_int c) in
  let tri =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  let rhomb =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "u"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "v"; lower = aff [ ("u", 1) ] 0; upper = aff [ ("u", 1); ("N", 1) ] 0 } ]
  in
  let fu =
    Trahrhe.Fusion.fuse [ Trahrhe.Inversion.invert_exn tri; Trahrhe.Inversion.invert_exn rhomb ]
  in
  let loop_fused =
    Codegen.C_print.to_string ~indent:1
      (Codegen.Xforms.fused fu
         ~bodies:
           [ [ Codegen.C_ast.Raw "a[i][j] += 1.0;" ];
             [ Codegen.C_ast.Raw "a[u % N][v % N] += 2.0;" ] ])
  in
  let loop_orig =
    {|  for (i = 0; i < N; i++)
    for (j = i; j < N; j++)
      a[i][j] += 1.0;
  for (i = 0; i < N; i++)
    for (j = i; j < i + N; j++)
      a[i % N][j % N] += 2.0;
|}
  in
  with_temp_dir (fun dir ->
      let reference = compile_and_run dir "fused_ref" (template ~n:57 ~loop:loop_orig) in
      let got = compile_and_run dir "fused_got" (template ~n:57 ~loop:("  {\n" ^ loop_fused ^ "  }\n")) in
      Alcotest.(check string) "fused output matches" reference got)

let test_imperfect_c () =
  require_gcc ();
  (* imperfect nest: per-row init and finalize statements sunk into a
     guarded perfect body, then collapsed *)
  let module A = Polymath.Affine in
  let module Q = Zmath.Rat in
  let aff terms c = A.make (List.map (fun (v, k) -> (v, Q.of_int k)) terms) (Q.of_int c) in
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
        { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 } ]
  in
  let inv = Trahrhe.Inversion.invert_exn nest in
  let loop_orig =
    {|  for (i = 0; i < N - 1; i++) {
    a[i][i] = 7.0;
    for (j = i + 1; j < N; j++)
      a[i][j] += b[j][i] + 1.0;
    a[i][0] += a[i][N - 1];
  }
|}
  in
  let collapsed =
    Codegen.C_print.to_string ~indent:1
      (Codegen.Imperfect.collapse inv
         ~levels:
           [ { Codegen.Imperfect.pre = [ Codegen.C_ast.Raw "a[i][i] = 7.0;" ];
               post = [ Codegen.C_ast.Raw "a[i][0] += a[i][N - 1];" ] } ]
         ~innermost:[ Codegen.C_ast.Raw "a[i][j] += b[j][i] + 1.0;" ])
  in
  with_temp_dir (fun dir ->
      let reference = compile_and_run dir "imperf_ref" (template ~n:63 ~loop:loop_orig) in
      let got =
        compile_and_run dir "imperf_got" (template ~n:63 ~loop:("  {\n" ^ collapsed ^ "  }\n"))
      in
      Alcotest.(check string) "imperfect output matches" reference got)

let test_cli_smoke () =
  (* every subcommand must run cleanly on a built-in kernel *)
  let cli = match find_cli () with Some c -> c | None -> Alcotest.skip () in
  List.iter
    (fun args ->
      let rc = Sys.command (Printf.sprintf "%s %s > /dev/null 2>&1" cli args) in
      Alcotest.(check int) ("trahrhe " ^ args) 0 rc)
    [ "kernels";
      "info --kernel correlation";
      "info --kernel symm";
      "validate --kernel ltmp --size 12";
      "simulate --kernel utma -n 200 --threads 8";
      "emit --kernel correlation --scheme naive";
      "emit --kernel dynprog --scheme simd:8 --guarded" ];
  (* failures must exit nonzero *)
  List.iter
    (fun args ->
      let rc = Sys.command (Printf.sprintf "%s %s > /dev/null 2>&1" cli args) in
      Alcotest.(check bool) ("trahrhe " ^ args ^ " fails") true (rc <> 0))
    [ "info --kernel no_such_kernel"; "emit"; "simulate" ]

let test_tiled_collapse_c () =
  require_gcc ();
  (* Pluto-lite: tile the triangle, collapse the tile loops, keep
     min/max intra-tile loops — the paper's "tiled" kernels *)
  let module A = Polymath.Affine in
  let module Q = Zmath.Rat in
  let aff terms c = A.make (List.map (fun (v, k) -> (v, Q.of_int k)) terms) (Q.of_int c) in
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  let tl = Looptrans.Tile.tile nest ~size:16 in
  let collapsed =
    Codegen.C_print.to_string ~indent:1
      (Looptrans.Tile.collapse_tiles tl
         ~body:[ Codegen.C_ast.Raw "a[i][j] += b[j][i] + 1.0;" ])
  in
  let loop_orig =
    {|  for (i = 0; i < N; i++)
    for (j = i; j < N; j++)
      a[i][j] += b[j][i] + 1.0;
|}
  in
  (* N = 64: a multiple of the tile size, as the model assumes *)
  with_temp_dir (fun dir ->
      let reference = compile_and_run dir "tiled_ref" (template ~n:64 ~loop:loop_orig) in
      let got =
        compile_and_run dir "tiled_got" (template ~n:64 ~loop:("  {\n" ^ collapsed ^ "  }\n"))
      in
      Alcotest.(check string) "tiled output matches" reference got)

let suites =
  [ ( "integration.gcc",
      [ Alcotest.test_case "naive scheme vs reference" `Slow
          (test_scheme
             { Cfront.Transform.default_options with scheme = Cfront.Transform.Naive }
             "naive");
        Alcotest.test_case "per-thread scheme vs reference" `Slow
          (test_scheme Cfront.Transform.default_options "per_thread");
        Alcotest.test_case "chunked scheme vs reference" `Slow
          (test_scheme
             { Cfront.Transform.default_options with scheme = Cfront.Transform.Chunked 32 }
             "chunked");
        Alcotest.test_case "simd scheme vs reference" `Slow
          (test_scheme
             { Cfront.Transform.default_options with scheme = Cfront.Transform.Simd 4 }
             "simd");
        Alcotest.test_case "guarded scheme vs reference" `Slow
          (test_scheme { Cfront.Transform.default_options with guarded = true } "guarded");
        Alcotest.test_case "3-depth complex roots vs reference" `Slow test_fig6_complex_roots;
        Alcotest.test_case "strided nest vs reference" `Slow test_strided_nest;
        Alcotest.test_case "reshaped nest vs reference" `Slow test_reshape_c;
        Alcotest.test_case "fused nests vs reference" `Slow test_fused_c;
        Alcotest.test_case "imperfect nest vs reference" `Slow test_imperfect_c;
        Alcotest.test_case "tiled collapse vs reference" `Slow test_tiled_collapse_c;
        Alcotest.test_case "CLI subcommand smoke" `Slow test_cli_smoke;
        Alcotest.test_case "CLI collapse round trip" `Slow test_cli_collapse ] ) ]
