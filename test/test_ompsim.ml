(* Tests for the OpenMP substrate: schedule assignment, the makespan
   simulator, and the domain-based parallel executor. *)

module Sched = Ompsim.Schedule
module Sim = Ompsim.Sim

(* -------- schedules -------- *)

let test_static_blocks () =
  Alcotest.(check (array (pair int int)))
    "10 over 3"
    [| (0, 4); (4, 3); (7, 3) |]
    (Sched.static_blocks ~nthreads:3 ~n:10);
  Alcotest.(check (array (pair int int)))
    "fewer iterations than threads"
    [| (0, 1); (1, 1); (2, 0) |]
    (Sched.static_blocks ~nthreads:3 ~n:2);
  Alcotest.(check (array (pair int int))) "empty" [| (0, 0); (0, 0) |]
    (Sched.static_blocks ~nthreads:2 ~n:0)

let test_round_robin () =
  let lists = Sched.round_robin_chunks ~chunk:3 ~nthreads:2 ~n:10 in
  Alcotest.(check (list (pair int int))) "thread 0" [ (0, 3); (6, 3) ] lists.(0);
  Alcotest.(check (list (pair int int))) "thread 1" [ (3, 3); (9, 1) ] lists.(1)

let test_round_robin_edges () =
  let empty = Sched.round_robin_chunks ~chunk:4 ~nthreads:3 ~n:0 in
  Array.iteri
    (fun t l -> Alcotest.(check (list (pair int int))) (Printf.sprintf "n=0 thread %d" t) [] l)
    empty;
  (* a chunk larger than the range: one truncated chunk on thread 0 *)
  let one = Sched.round_robin_chunks ~chunk:100 ~nthreads:3 ~n:5 in
  Alcotest.(check (list (pair int int))) "oversized chunk" [ (0, 5) ] one.(0);
  Alcotest.(check (list (pair int int))) "thread 1 idle" [] one.(1);
  Alcotest.(check (list (pair int int))) "thread 2 idle" [] one.(2);
  Alcotest.check_raises "chunk 0 rejected" (Invalid_argument "Schedule.round_robin_chunks")
    (fun () -> ignore (Sched.round_robin_chunks ~chunk:0 ~nthreads:2 ~n:10))

let test_guided_sizes () =
  (* guided halves remaining over 2T, floored at chunk *)
  Alcotest.(check int) "large remaining" 25 (Sched.next_guided ~chunk:4 ~nthreads:2 ~remaining:100);
  Alcotest.(check int) "floor at chunk" 4 (Sched.next_guided ~chunk:4 ~nthreads:2 ~remaining:10);
  Alcotest.(check int) "tail below chunk" 2 (Sched.next_guided ~chunk:4 ~nthreads:2 ~remaining:2)

let test_schedule_strings () =
  Alcotest.(check string) "static" "static" (Sched.to_string Sched.Static);
  Alcotest.(check string) "static chunk" "static, 8" (Sched.to_string (Sched.Static_chunk 8));
  Alcotest.(check string) "dynamic" "dynamic" (Sched.to_string (Sched.Dynamic 1));
  Alcotest.(check string) "guided n" "guided, 4" (Sched.to_string (Sched.Guided 4));
  Alcotest.(check string) "ws" "ws" (Sched.to_string (Sched.Work_stealing 1));
  Alcotest.(check string) "ws n" "ws, 4" (Sched.to_string (Sched.Work_stealing 4))

let sched_testable =
  Alcotest.testable (fun fmt s -> Format.pp_print_string fmt (Sched.to_string s)) ( = )

let test_schedule_of_string () =
  (* the clause text [to_string] prints parses back to the same value *)
  List.iter
    (fun s ->
      Alcotest.(check (result sched_testable string))
        (Sched.to_string s ^ " round-trips")
        (Ok s)
        (Sched.of_string (Sched.to_string s)))
    [ Sched.Static; Sched.Static_chunk 8; Sched.Dynamic 1; Sched.Dynamic 13; Sched.Guided 4;
      Sched.Work_stealing 1; Sched.Work_stealing 6 ];
  (* the CLI's colon spellings and chunk defaults *)
  List.iter
    (fun (s, want) ->
      Alcotest.(check (result sched_testable string)) s (Ok want) (Sched.of_string s))
    [ ("static:16", Sched.Static_chunk 16); ("dynamic:4", Sched.Dynamic 4);
      ("guided:2", Sched.Guided 2); ("ws:8", Sched.Work_stealing 8);
      ("dynamic", Sched.Dynamic 1); ("ws", Sched.Work_stealing 1);
      ("work-stealing", Sched.Work_stealing 1); ("work_stealing:3", Sched.Work_stealing 3);
      ("WS:2", Sched.Work_stealing 2); (" guided , 7 ", Sched.Guided 7) ];
  List.iter
    (fun s ->
      match Sched.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "bogus"; "dynamic:0"; "ws:-3"; "static:x"; "guided:";
      (* hardened grammar: strict decimal chunks, no junk tolerated *)
      "dynamic:0x10"; "static:1_000"; "guided:+4"; "ws: 4 8"; "dynamic:4:x";
      "dynamic:4x"; "static:-1"; "ws:"; "dynamic:99999999999999999999"; "dynamic,";
      "static:16,"; ""; "  "; "dynamic:1.5" ]

(* -------- Chase-Lev deque -------- *)

module Dq = Ompsim.Deque

let test_deque_orders () =
  (* owner end is LIFO, thief end is FIFO *)
  let d = Dq.create ~capacity:8 ~dummy:0 in
  List.iter (Dq.push d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "size" 4 (Dq.size d);
  Alcotest.(check (option int)) "pop newest" (Some 4) (Dq.pop d);
  Alcotest.(check (option int)) "pop next" (Some 3) (Dq.pop d);
  (match Dq.steal d with
  | Dq.Stolen x -> Alcotest.(check int) "steal oldest" 1 x
  | _ -> Alcotest.fail "steal should succeed");
  Alcotest.(check (option int)) "last element" (Some 2) (Dq.pop d);
  Alcotest.(check (option int)) "empty pop" None (Dq.pop d);
  (match Dq.steal d with
  | Dq.Empty -> ()
  | _ -> Alcotest.fail "steal on empty must report Empty");
  (* emptied deque is reusable by its owner *)
  Dq.push d 9;
  Alcotest.(check (option int)) "reuse after drain" (Some 9) (Dq.pop d)

let test_deque_of_init () =
  let d = Dq.of_init ~dummy:0 5 (fun i -> 10 * i) in
  Alcotest.(check int) "size" 5 (Dq.size d);
  Alcotest.(check (option int)) "pop gets f 0" (Some 0) (Dq.pop d);
  (match Dq.steal d with
  | Dq.Stolen x -> Alcotest.(check int) "steal gets f (n-1)" 40 x
  | _ -> Alcotest.fail "steal should succeed");
  Alcotest.(check (option int)) "pop continues ascending" (Some 10) (Dq.pop d);
  let empty = Dq.of_init ~dummy:0 0 (fun _ -> assert false) in
  Alcotest.(check (option int)) "empty of_init" None (Dq.pop empty)

let test_deque_pop_batch () =
  let d = Dq.of_init ~dummy:0 10 Fun.id in
  let buf = Array.make 4 (-1) in
  Alcotest.(check int) "first batch count" 4 (Dq.pop_batch d buf);
  Alcotest.(check (array int)) "first batch order" [| 0; 1; 2; 3 |] buf;
  Alcotest.(check int) "second batch" 4 (Dq.pop_batch d buf);
  Alcotest.(check (array int)) "second batch order" [| 4; 5; 6; 7 |] buf;
  (* the final element is contestable by thieves, so the tail falls
     back to the one-element pop protocol: one element per call *)
  Alcotest.(check int) "tail call 1" 1 (Dq.pop_batch d buf);
  Alcotest.(check int) "tail element 0" 8 buf.(0);
  Alcotest.(check int) "tail call 2" 1 (Dq.pop_batch d buf);
  Alcotest.(check int) "tail element 1" 9 buf.(0);
  Alcotest.(check int) "drained" 0 (Dq.pop_batch d buf);
  Alcotest.(check int) "empty buf is a no-op" 0 (Dq.pop_batch (Dq.of_init ~dummy:0 3 Fun.id) [||])

let test_deque_capacity_refill () =
  let d = Dq.create ~capacity:5 ~dummy:0 in
  Alcotest.(check int) "rounded to power of two" 8 (Dq.capacity d);
  Alcotest.check_raises "negative capacity" (Invalid_argument "Deque.create") (fun () ->
      ignore (Dq.create ~capacity:(-1) ~dummy:0));
  for i = 1 to 8 do
    Dq.push d i
  done;
  Alcotest.check_raises "push over capacity" (Failure "Deque.push: full") (fun () ->
      Dq.push d 9);
  while Dq.pop d <> None do
    ()
  done;
  (* quiescent refill continues the index window; contents come out in
     pop order f 0, f 1, ... like of_init *)
  Dq.refill d 6 (fun i -> 100 + i);
  Alcotest.(check int) "refilled size" 6 (Dq.size d);
  Alcotest.(check (option int)) "refill pop order" (Some 100) (Dq.pop d);
  (match Dq.steal d with
  | Dq.Stolen x -> Alcotest.(check int) "refill steal order" 105 x
  | _ -> Alcotest.fail "steal should succeed");
  Alcotest.check_raises "refill past capacity" (Invalid_argument "Deque.refill") (fun () ->
      Dq.refill d 9 Fun.id)

let test_deque_owner_vs_thieves () =
  (* one owner draining by batches, two thieves stealing: every element
     claimed exactly once, none lost — including the one-element races *)
  let n = 20_000 in
  let d = Dq.of_init ~dummy:(-1) n Fun.id in
  let hits = Array.make n 0 in
  let thief () =
    Domain.spawn (fun () ->
        let live = ref true in
        let got = ref 0 in
        while !live do
          match Dq.steal d with
          | Dq.Stolen x ->
            hits.(x) <- hits.(x) + 1;
            incr got
          | Dq.Retry -> Domain.cpu_relax ()
          | Dq.Empty -> live := false
        done;
        !got)
  in
  let t1 = thief () and t2 = thief () in
  let buf = Array.make 7 (-1) in
  let popped = ref 0 in
  let rec drain () =
    let k = Dq.pop_batch d buf in
    if k > 0 then begin
      for i = 0 to k - 1 do
        hits.(buf.(i)) <- hits.(buf.(i)) + 1
      done;
      popped := !popped + k;
      drain ()
    end
  in
  drain ();
  let stolen = Domain.join t1 + Domain.join t2 in
  Alcotest.(check int) "pops + steals = n" n (!popped + stolen);
  Alcotest.(check bool) "each element exactly once" true (Array.for_all (fun h -> h = 1) hits)

(* -------- simulator -------- *)

let uniform n c = Array.make n c

let test_static_balanced () =
  let r =
    Sim.run ~costs:(uniform 120 1.0) ~schedule:Sched.Static ~nthreads:12
      ~overheads:Sim.no_overheads
  in
  Alcotest.(check (float 1e-9)) "perfect balance" 10.0 r.Sim.makespan;
  Alcotest.(check (float 1e-9)) "imbalance 1" 1.0 r.Sim.imbalance;
  Alcotest.(check (float 1e-9)) "total work" 120.0 r.Sim.total_work

let test_static_triangular_imbalance () =
  (* costs 1..n ascending: the last static block dominates *)
  let n = 120 in
  let costs = Array.init n (fun q -> float_of_int (q + 1)) in
  let r = Sim.run ~costs ~schedule:Sched.Static ~nthreads:12 ~overheads:Sim.no_overheads in
  (* last thread holds rows 111..120: sum = 1155; mean = 605 *)
  Alcotest.(check (float 1e-9)) "makespan is heaviest block" 1155.0 r.Sim.makespan;
  Alcotest.(check bool) "imbalance ~1.9" true (r.Sim.imbalance > 1.8 && r.Sim.imbalance < 2.0)

let test_static_chunk_balances_triangle () =
  let n = 120 in
  let costs = Array.init n (fun q -> float_of_int (q + 1)) in
  let r =
    Sim.run ~costs ~schedule:(Sched.Static_chunk 1) ~nthreads:12 ~overheads:Sim.no_overheads
  in
  (* cyclic distribution of an arithmetic ramp: thread sums differ by at
     most n_chunks_per_thread, far better than contiguous static *)
  Alcotest.(check bool) "imbalance < 1.15" true (r.Sim.imbalance < 1.15);
  let static =
    Sim.run ~costs ~schedule:Sched.Static ~nthreads:12 ~overheads:Sim.no_overheads
  in
  Alcotest.(check bool) "beats static" true (r.Sim.makespan < static.Sim.makespan)

let test_dynamic_balances () =
  let n = 120 in
  let costs = Array.init n (fun q -> float_of_int (q + 1)) in
  let r = Sim.run ~costs ~schedule:(Sched.Dynamic 1) ~nthreads:12 ~overheads:Sim.no_overheads in
  Alcotest.(check bool) "near balance" true (r.Sim.imbalance < 1.1);
  Alcotest.(check int) "n dispatches" n r.Sim.chunks_dispatched

let test_dynamic_dispatch_contention () =
  (* tiny chunks + large dispatch cost: the serialized queue becomes
     the bottleneck (paper §II: dynamic is not scalable) *)
  let costs = uniform 1000 1.0 in
  let ov = { Sim.no_overheads with dispatch = 10.0 } in
  let r = Sim.run ~costs ~schedule:(Sched.Dynamic 1) ~nthreads:12 ~overheads:ov in
  (* the lock alone takes 1000 * 10 time units *)
  Alcotest.(check bool) "lock-bound" true (r.Sim.makespan >= 10_000.0)

let test_ws_balances () =
  let n = 120 in
  let costs = Array.init n (fun q -> float_of_int (q + 1)) in
  let r =
    Sim.run ~costs ~schedule:(Sched.Work_stealing 1) ~nthreads:12 ~overheads:Sim.no_overheads
  in
  Alcotest.(check bool) "near balance" true (r.Sim.imbalance < 1.1);
  Alcotest.(check int) "n dispatches" n r.Sim.chunks_dispatched

let test_ws_no_dispatch_serialization () =
  (* same workload as the dynamic contention test: a steal still costs
     [dispatch] on the acquiring thread, but acquisitions are not
     serialized through a lock, so the makespan stays near
     (per-chunk cost + dispatch) * chunks / T instead of
     dispatch * chunks *)
  let costs = uniform 1000 1.0 in
  let ov = { Sim.no_overheads with dispatch = 10.0 } in
  let dyn = Sim.run ~costs ~schedule:(Sched.Dynamic 1) ~nthreads:12 ~overheads:ov in
  let ws = Sim.run ~costs ~schedule:(Sched.Work_stealing 1) ~nthreads:12 ~overheads:ov in
  Alcotest.(check bool) "ws well under the lock-bound makespan" true
    (ws.Sim.makespan < dyn.Sim.makespan /. 2.0);
  Alcotest.(check bool) "ws near the parallel bound" true
    (ws.Sim.makespan < 11.0 *. 1000.0 /. 12.0 *. 1.5)

let test_makespan_lower_bound () =
  let costs = Array.init 50 (fun q -> float_of_int ((q * 7 mod 13) + 1)) in
  let total = Array.fold_left ( +. ) 0.0 costs in
  List.iter
    (fun schedule ->
      let r = Sim.run ~costs ~schedule ~nthreads:4 ~overheads:Sim.no_overheads in
      Alcotest.(check bool) "makespan >= total/T" true
        (r.Sim.makespan >= (total /. 4.0) -. 1e-9);
      Alcotest.(check bool) "makespan <= total" true (r.Sim.makespan <= total +. 1e-9))
    [ Sched.Static; Sched.Static_chunk 3; Sched.Dynamic 2; Sched.Guided 2;
      Sched.Work_stealing 2 ]

let test_chunk_start_overhead () =
  (* 12 threads, static: exactly one chunk-start (recovery) per thread *)
  let costs = uniform 24 1.0 in
  let ov = { Sim.no_overheads with chunk_start = 100.0 } in
  let r = Sim.run ~costs ~schedule:Sched.Static ~nthreads:12 ~overheads:ov in
  Alcotest.(check (float 1e-9)) "2 iters + 1 recovery" 102.0 r.Sim.makespan

let test_per_iter_overhead () =
  let costs = uniform 10 1.0 in
  let ov = { Sim.no_overheads with per_iter = 0.5 } in
  Alcotest.(check (float 1e-9)) "serial with per-iter" 15.0 (Sim.serial ~costs ~overheads:ov)

let test_fork_join () =
  let r =
    Sim.run ~costs:(uniform 10 1.0) ~schedule:Sched.Static ~nthreads:10
      ~overheads:{ Sim.no_overheads with fork_join = 7.0 }
  in
  Alcotest.(check (float 1e-9)) "fork_join added" 8.0 r.Sim.makespan

let test_empty_loop () =
  let r =
    Sim.run ~costs:[||] ~schedule:(Sched.Dynamic 1) ~nthreads:4 ~overheads:Sim.no_overheads
  in
  Alcotest.(check (float 1e-9)) "empty" 0.0 r.Sim.makespan;
  Alcotest.(check int) "no dispatch" 0 r.Sim.chunks_dispatched

let test_chunk_larger_than_n () =
  (* one oversized chunk: a single thread gets everything *)
  let costs = uniform 5 2.0 in
  let r =
    Sim.run ~costs ~schedule:(Sched.Static_chunk 100) ~nthreads:4 ~overheads:Sim.no_overheads
  in
  Alcotest.(check (float 1e-9)) "single chunk" 10.0 r.Sim.makespan;
  Alcotest.(check int) "one dispatch" 1 r.Sim.chunks_dispatched;
  let d = Sim.run ~costs ~schedule:(Sched.Dynamic 100) ~nthreads:4 ~overheads:Sim.no_overheads in
  Alcotest.(check (float 1e-9)) "dynamic single chunk" 10.0 d.Sim.makespan

let test_more_threads_than_work () =
  let costs = uniform 3 1.0 in
  List.iter
    (fun schedule ->
      let r = Sim.run ~costs ~schedule ~nthreads:8 ~overheads:Sim.no_overheads in
      Alcotest.(check (float 1e-9))
        (Ompsim.Schedule.to_string schedule ^ ": one iteration each")
        1.0 r.Sim.makespan)
    [ Sched.Static; Sched.Static_chunk 1; Sched.Dynamic 1; Sched.Work_stealing 1 ]

let test_gain () =
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Sim.gain ~baseline:2.0 ~improved:1.0);
  Alcotest.(check (float 1e-9)) "negative" (-1.0) (Sim.gain ~baseline:1.0 ~improved:2.0)

let prop_static_equals_manual =
  QCheck.Test.make ~name:"static makespan = max block sum" ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 60) (QCheck.float_range 0.0 10.0))
       (QCheck.int_range 1 8))
    (fun (costs, t) ->
      let costs = Array.of_list costs in
      let r = Sim.run ~costs ~schedule:Sched.Static ~nthreads:t ~overheads:Sim.no_overheads in
      let blocks = Sched.static_blocks ~nthreads:t ~n:(Array.length costs) in
      let manual =
        Array.fold_left
          (fun acc (start, len) ->
            let s = ref 0.0 in
            for q = start to start + len - 1 do
              s := !s +. costs.(q)
            done;
            Float.max acc !s)
          0.0 blocks
      in
      Float.abs (r.Sim.makespan -. manual) < 1e-9)

let prop_all_work_executed =
  QCheck.Test.make ~name:"every schedule executes all the work" ~count:100
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 80) (QCheck.float_range 0.1 5.0))
       (QCheck.int_range 1 6))
    (fun (costs, t) ->
      let costs = Array.of_list costs in
      let total = Array.fold_left ( +. ) 0.0 costs in
      List.for_all
        (fun schedule ->
          let r = Sim.run ~costs ~schedule ~nthreads:t ~overheads:Sim.no_overheads in
          Float.abs (r.Sim.total_work -. total) < 1e-6)
        [ Sched.Static; Sched.Static_chunk 2; Sched.Dynamic 3; Sched.Guided 1;
          Sched.Work_stealing 2 ])

(* -------- Par (real domains) -------- *)

let test_par_covers_exactly_once () =
  List.iter
    (fun schedule ->
      let n = 1000 in
      let hits = Array.make n 0 in
      (* single mutator per cell: each index is touched exactly once *)
      Ompsim.Par.parallel_for ~nthreads:4 ~schedule ~n (fun q -> hits.(q) <- hits.(q) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "%s covers exactly once" (Sched.to_string schedule))
        true
        (Array.for_all (fun h -> h = 1) hits))
    [ Sched.Static; Sched.Static_chunk 7; Sched.Dynamic 13; Sched.Guided 5;
      Sched.Work_stealing 11 ]

let test_par_chunks_partition () =
  let n = 500 in
  let seen = Array.make n false in
  Ompsim.Par.parallel_for_chunks ~nthreads:3 ~schedule:(Sched.Static_chunk 64) ~n
    (fun ~thread:_ ~start ~len ->
      for q = start to start + len - 1 do
        seen.(q) <- true
      done);
  Alcotest.(check bool) "partition covers range" true (Array.for_all Fun.id seen)

let test_par_single_thread () =
  let n = 100 in
  let sum = ref 0 in
  Ompsim.Par.parallel_for ~nthreads:1 ~schedule:Sched.Static ~n (fun q -> sum := !sum + q);
  Alcotest.(check int) "sequential sum" (n * (n - 1) / 2) !sum

(* -------- Par backends: persistent pool vs spawn-per-region -------- *)

let backend_name = function Ompsim.Par.Pool -> "pool" | Ompsim.Par.Spawn -> "spawn"

let test_par_coverage_adversarial backend () =
  (* every schedule must execute each index exactly once, including
     empty loops, single iterations and more threads than work *)
  List.iter
    (fun (n, nthreads) ->
      List.iter
        (fun schedule ->
          let hits = Array.make (max 1 n) 0 in
          Ompsim.Par.with_backend backend (fun () ->
              Ompsim.Par.parallel_for ~nthreads ~schedule ~n (fun q -> hits.(q) <- hits.(q) + 1));
          let ok = ref true in
          for q = 0 to n - 1 do
            if hits.(q) <> 1 then ok := false
          done;
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d t=%d %s: exactly once" (backend_name backend) n nthreads
               (Sched.to_string schedule))
            true !ok)
        [ Sched.Static;
          Sched.Static_chunk 1;
          Sched.Static_chunk 7;
          Sched.Dynamic 1;
          Sched.Dynamic 13;
          Sched.Guided 1;
          Sched.Guided 5;
          Sched.Work_stealing 1;
          Sched.Work_stealing 7 ])
    [ (0, 4); (1, 4); (3, 8); (5, 2); (97, 3); (1000, 5) ]

let test_par_chunks_disjoint backend () =
  (* chunks handed out by dynamic/guided must partition 0..n-1 *)
  List.iter
    (fun schedule ->
      let n = 613 in
      let hits = Array.make n 0 in
      Ompsim.Par.with_backend backend (fun () ->
          Ompsim.Par.parallel_for_chunks ~nthreads:5 ~schedule ~n
            (fun ~thread:_ ~start ~len ->
              for q = start to start + len - 1 do
                hits.(q) <- hits.(q) + 1
              done));
      Alcotest.(check bool)
        (Printf.sprintf "%s %s: chunk partition" (backend_name backend) (Sched.to_string schedule))
        true
        (Array.for_all (fun h -> h = 1) hits))
    [ Sched.Dynamic 17; Sched.Guided 3; Sched.Static_chunk 11; Sched.Work_stealing 9 ]

let test_backends_identical_results () =
  (* both backends assign the same chunks to the same slots, so a pure
     per-index computation gives bit-identical outputs *)
  let n = 2000 in
  let run backend schedule =
    let a = Array.make n 0 in
    Ompsim.Par.with_backend backend (fun () ->
        Ompsim.Par.parallel_for_chunks ~nthreads:4 ~schedule ~n
          (fun ~thread:_ ~start ~len ->
            for q = start to start + len - 1 do
              a.(q) <- q * q mod 7919
            done));
    a
  in
  List.iter
    (fun schedule ->
      Alcotest.(check bool)
        (Sched.to_string schedule ^ ": pool = spawn")
        true
        (run Ompsim.Par.Pool schedule = run Ompsim.Par.Spawn schedule))
    [ Sched.Static; Sched.Static_chunk 64; Sched.Dynamic 32; Sched.Guided 16;
      Sched.Work_stealing 32 ]

let test_pool_reuse_and_growth () =
  Ompsim.Par.with_backend Ompsim.Par.Pool (fun () ->
      (* repeated dispatches with varying widths: workers are reused and
         the pool grows monotonically on demand *)
      for round = 1 to 40 do
        let nthreads = 1 + (round mod 8) in
        let n = 100 + round in
        let sum = Atomic.make 0 in
        Ompsim.Par.parallel_for ~nthreads ~schedule:(Sched.Dynamic 9) ~n (fun q ->
            ignore (Atomic.fetch_and_add sum q));
        Alcotest.(check int)
          (Printf.sprintf "round %d sum" round)
          (n * (n - 1) / 2)
          (Atomic.get sum)
      done;
      Alcotest.(check bool) "pool kept at most 7 workers alive" true (Ompsim.Pool.size () <= 7))

let test_pool_exception_propagates () =
  Ompsim.Par.with_backend Ompsim.Par.Pool (fun () ->
      Alcotest.check_raises "body failure reaches the caller" (Failure "boom") (fun () ->
          Ompsim.Par.parallel_for ~nthreads:4 ~schedule:(Sched.Dynamic 1) ~n:16 (fun q ->
              if q = 7 then failwith "boom"));
      (* the pool survives a failed region *)
      let hits = Array.make 16 0 in
      Ompsim.Par.parallel_for ~nthreads:4 ~schedule:Sched.Static ~n:16 (fun q ->
          hits.(q) <- hits.(q) + 1);
      Alcotest.(check bool) "usable after failure" true (Array.for_all (fun h -> h = 1) hits))

let test_ws_counter_soak () =
  (* many work-stealing regions of varying shape with observability on:
     every dealt chunk is popped locally or stolen, exactly once — the
     pop/steal totals reconcile with the arithmetic chunk count and
     with the executor's own per-chunk counter *)
  Obsv.Control.with_enabled true (fun () ->
      Ompsim.Stats.reset ();
      let truth = ref 0 in
      for round = 1 to 60 do
        let nthreads = 1 + (round mod 5) in
        let chunk = 1 + (round mod 7) in
        let n = 37 * round mod 1900 in
        truth := !truth + ((n + chunk - 1) / chunk);
        let sum = Atomic.make 0 in
        Ompsim.Par.parallel_for ~nthreads ~schedule:(Sched.Work_stealing chunk) ~n (fun q ->
            ignore (Atomic.fetch_and_add sum q));
        Alcotest.(check int)
          (Printf.sprintf "round %d sum" round)
          (n * (n - 1) / 2)
          (Atomic.get sum)
      done;
      let pops = Obsv.Metrics.total Ompsim.Stats.ws_local_pops in
      let steals = Obsv.Metrics.total Ompsim.Stats.ws_steals in
      let chunks = Obsv.Metrics.total Ompsim.Stats.par_chunks in
      Alcotest.(check int) "pops + steals = ground truth" !truth (pops + steals);
      Alcotest.(check int) "executor chunk counter agrees" !truth chunks;
      Ompsim.Stats.reset ());
  Obsv.Trace.clear ()

let test_pool_nested_region () =
  (* a parallel region opened from inside a pool worker must not
     deadlock: the inner dispatch falls back to spawned domains *)
  Ompsim.Par.with_backend Ompsim.Par.Pool (fun () ->
      let total = Atomic.make 0 in
      Ompsim.Par.parallel_for ~nthreads:2 ~schedule:Sched.Static ~n:2 (fun _ ->
          Ompsim.Par.parallel_for ~nthreads:2 ~schedule:Sched.Static ~n:8 (fun _ ->
              ignore (Atomic.fetch_and_add total 1)));
      Alcotest.(check int) "all inner iterations ran" 16 (Atomic.get total))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [ ( "ompsim.schedule",
      [ Alcotest.test_case "static blocks" `Quick test_static_blocks;
        Alcotest.test_case "round robin" `Quick test_round_robin;
        Alcotest.test_case "round robin edges" `Quick test_round_robin_edges;
        Alcotest.test_case "guided sizes" `Quick test_guided_sizes;
        Alcotest.test_case "clause strings" `Quick test_schedule_strings;
        Alcotest.test_case "of_string round-trip" `Quick test_schedule_of_string ] );
    ( "ompsim.deque",
      [ Alcotest.test_case "owner LIFO, thief FIFO" `Quick test_deque_orders;
        Alcotest.test_case "of_init orders" `Quick test_deque_of_init;
        Alcotest.test_case "pop_batch" `Quick test_deque_pop_batch;
        Alcotest.test_case "capacity and refill" `Quick test_deque_capacity_refill;
        Alcotest.test_case "owner vs thieves" `Quick test_deque_owner_vs_thieves ] );
    ( "ompsim.sim",
      [ Alcotest.test_case "static balanced" `Quick test_static_balanced;
        Alcotest.test_case "static triangular imbalance" `Quick test_static_triangular_imbalance;
        Alcotest.test_case "cyclic chunks balance a ramp" `Quick test_static_chunk_balances_triangle;
        Alcotest.test_case "dynamic balances" `Quick test_dynamic_balances;
        Alcotest.test_case "dispatch contention" `Quick test_dynamic_dispatch_contention;
        Alcotest.test_case "work stealing balances" `Quick test_ws_balances;
        Alcotest.test_case "work stealing avoids the lock bound" `Quick
          test_ws_no_dispatch_serialization;
        Alcotest.test_case "makespan bounds" `Quick test_makespan_lower_bound;
        Alcotest.test_case "chunk-start overhead" `Quick test_chunk_start_overhead;
        Alcotest.test_case "per-iteration overhead" `Quick test_per_iter_overhead;
        Alcotest.test_case "fork/join" `Quick test_fork_join;
        Alcotest.test_case "empty loop" `Quick test_empty_loop;
        Alcotest.test_case "chunk larger than n" `Quick test_chunk_larger_than_n;
        Alcotest.test_case "more threads than work" `Quick test_more_threads_than_work;
        Alcotest.test_case "gain metric" `Quick test_gain ]
      @ qsuite [ prop_static_equals_manual; prop_all_work_executed ] );
    ( "ompsim.par",
      [ Alcotest.test_case "all schedules cover exactly once" `Quick test_par_covers_exactly_once;
        Alcotest.test_case "chunk partition" `Quick test_par_chunks_partition;
        Alcotest.test_case "single thread" `Quick test_par_single_thread;
        Alcotest.test_case "adversarial coverage, pool" `Quick
          (test_par_coverage_adversarial Ompsim.Par.Pool);
        Alcotest.test_case "adversarial coverage, spawn" `Quick
          (test_par_coverage_adversarial Ompsim.Par.Spawn);
        Alcotest.test_case "chunk disjointness, pool" `Quick
          (test_par_chunks_disjoint Ompsim.Par.Pool);
        Alcotest.test_case "chunk disjointness, spawn" `Quick
          (test_par_chunks_disjoint Ompsim.Par.Spawn);
        Alcotest.test_case "pool = spawn results" `Quick test_backends_identical_results;
        Alcotest.test_case "pool reuse and growth" `Quick test_pool_reuse_and_growth;
        Alcotest.test_case "pool exception propagation" `Quick test_pool_exception_propagates;
        Alcotest.test_case "ws counters reconcile (soak)" `Quick test_ws_counter_soak;
        Alcotest.test_case "nested region does not deadlock" `Quick test_pool_nested_region ] ) ]
