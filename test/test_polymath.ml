(* Tests for polymath: monomials, multivariate polynomials, affine
   forms, and exact symbolic summation. *)

module M = Polymath.Monomial
module P = Polymath.Polynomial
module A = Polymath.Affine
module Q = Zmath.Rat

let poly = Alcotest.testable P.pp P.equal
let affine = Alcotest.testable A.pp A.equal
let rat = Alcotest.testable Q.pp Q.equal

(* convenient constructors *)
let v = P.var
let ( *: ) c p = P.scale (Q.of_int c) p
let ( +: ) = P.add
let ( -: ) = P.sub
let ( *.: ) = P.mul

(* -------- Monomial -------- *)

let test_monomial_canonical () =
  Alcotest.(check (list (pair string int)))
    "merge and sort"
    [ ("i", 3); ("j", 1) ]
    (M.to_list (M.of_list [ ("j", 1); ("i", 2); ("i", 1) ]));
  Alcotest.(check (list (pair string int))) "drop zero" [] (M.to_list (M.of_list [ ("i", 0) ]));
  Alcotest.(check bool) "unit" true (M.is_one M.one)

let test_monomial_ops () =
  let m = M.mul (M.var "i") (M.pow (M.var "j") 2) in
  Alcotest.(check int) "degree" 3 (M.degree m);
  Alcotest.(check int) "degree_in j" 2 (M.degree_in "j" m);
  Alcotest.(check int) "degree_in k" 0 (M.degree_in "k" m);
  Alcotest.(check (list string)) "vars" [ "i"; "j" ] (M.vars m);
  Alcotest.(check (list (pair string int))) "remove" [ ("j", 2) ] (M.to_list (M.remove "i" m));
  Alcotest.(check string) "pp" "i*j^2" (Format.asprintf "%a" M.pp m)

let test_monomial_pow_invalid () =
  Alcotest.check_raises "negative exponent" (Invalid_argument "Monomial.pow") (fun () ->
      ignore (M.pow (M.var "i") (-1)))

(* -------- Polynomial -------- *)

let test_poly_basic () =
  let p = (2 *: (v "i" *.: v "i")) +: (3 *: v "j") +: P.one in
  Alcotest.(check string) "to_string" "2*i^2 + 3*j + 1" (P.to_string p);
  Alcotest.(check int) "degree" 2 (P.degree p);
  Alcotest.(check int) "degree_in i" 2 (P.degree_in "i" p);
  Alcotest.(check (list string)) "vars" [ "i"; "j" ] (P.vars p);
  Alcotest.check rat "coeff i^2" (Q.of_int 2) (P.coeff p (M.of_list [ ("i", 2) ]))

let test_poly_cancellation () =
  let p = v "i" -: v "i" in
  Alcotest.(check bool) "zero" true (P.is_zero p);
  Alcotest.check poly "x + -x" P.zero p

let test_poly_is_const () =
  Alcotest.(check (option string))
    "const 5" (Some "5")
    (Option.map Q.to_string (P.is_const (P.of_int 5)));
  Alcotest.(check (option string))
    "zero" (Some "0")
    (Option.map Q.to_string (P.is_const P.zero));
  Alcotest.(check (option string)) "non-const" None (Option.map Q.to_string (P.is_const (v "i")))

let test_poly_subst () =
  (* substitute j := i+1 into i*j: expect i^2 + i *)
  let p = v "i" *.: v "j" in
  let q = P.subst "j" (v "i" +: P.one) p in
  Alcotest.check poly "i*(i+1)" ((v "i" *.: v "i") +: v "i") q

let test_poly_subst_all_simultaneous () =
  (* swap i and j simultaneously in i - j: expect j - i *)
  let p = v "i" -: v "j" in
  let q = P.subst_all [ ("i", v "j"); ("j", v "i") ] p in
  Alcotest.check poly "swap" (v "j" -: v "i") q

let test_poly_as_univariate () =
  let p = ((v "i" *.: v "i") *.: v "j") +: (2 *: v "i") +: (3 *: v "j") +: P.one in
  let u = P.as_univariate "i" p in
  Alcotest.(check int) "3 coefficient groups" 3 (List.length u);
  (match u with
  | (2, c2) :: (1, c1) :: (0, c0) :: [] ->
    Alcotest.check poly "coeff of i^2" (v "j") c2;
    Alcotest.check poly "coeff of i^1" (P.of_int 2) c1;
    Alcotest.check poly "coeff of i^0" ((3 *: v "j") +: P.one) c0
  | _ -> Alcotest.fail "unexpected exponent structure");
  (* reconstruct: sum c_e * i^e = p *)
  let back =
    List.fold_left (fun acc (e, c) -> acc +: (c *.: P.pow (v "i") e)) P.zero u
  in
  Alcotest.check poly "reconstruct" p back

let test_poly_eval () =
  let p = ((v "i" *.: v "i") -: (2 *: v "j")) +: P.one in
  let env = function "i" -> Q.of_int 5 | "j" -> Q.of_int 3 | _ -> Q.zero in
  Alcotest.check rat "eval" (Q.of_int 20) (P.eval env p);
  Alcotest.(check (float 1e-9)) "eval_float" 20.0
    (P.eval_float (function "i" -> 5.0 | "j" -> 3.0 | _ -> 0.0) p)

let test_poly_derivative () =
  let p = (v "i" *.: v "i" *.: v "i") +: (4 *: (v "i" *.: v "j")) in
  Alcotest.check poly "d/di" ((3 *: (v "i" *.: v "i")) +: (4 *: v "j")) (P.derivative "i" p);
  Alcotest.check poly "d/dk" P.zero (P.derivative "k" p)

let test_denominator_lcm () =
  let p = P.scale (Q.of_ints 1 2) (v "i") +: P.scale (Q.of_ints 1 3) (v "j") in
  Alcotest.(check string) "lcm 6" "6" (Zmath.Bigint.to_string (P.denominator_lcm p));
  Alcotest.(check string) "lcm of int poly" "1" (Zmath.Bigint.to_string (P.denominator_lcm (v "i")))

let small_poly =
  (* random polynomial over i, j with small integer coefficients *)
  let gen =
    QCheck.Gen.(
      map
        (fun coeffs ->
          List.fold_left
            (fun acc (c, ei, ej) ->
              P.add acc
                (P.scale (Q.of_int c)
                   (P.mul (P.pow (v "i") ei) (P.pow (v "j") ej))))
            P.zero coeffs)
        (list_size (int_range 0 6) (triple (int_range (-5) 5) (int_range 0 3) (int_range 0 3))))
  in
  QCheck.make ~print:P.to_string gen

let prop_poly_ring =
  QCheck.Test.make ~name:"polynomial ring laws" ~count:200
    (QCheck.triple small_poly small_poly small_poly)
    (fun (p, q, r) ->
      P.equal (P.mul p (P.add q r)) (P.add (P.mul p q) (P.mul p r))
      && P.equal (P.mul p q) (P.mul q p)
      && P.equal (P.sub (P.add p q) q) p)

let prop_eval_hom =
  QCheck.Test.make ~name:"evaluation is a ring homomorphism" ~count:200
    (QCheck.pair small_poly small_poly)
    (fun (p, q) ->
      let env = function "i" -> Q.of_int 7 | _ -> Q.of_int (-3) in
      Q.equal (P.eval env (P.mul p q)) (Q.mul (P.eval env p) (P.eval env q))
      && Q.equal (P.eval env (P.add p q)) (Q.add (P.eval env p) (P.eval env q)))

let prop_subst_then_eval =
  QCheck.Test.make ~name:"subst commutes with eval" ~count:200 small_poly (fun p ->
      (* p[j := i+2] evaluated at i=4 equals p at i=4, j=6 *)
      let substituted = P.subst "j" (v "i" +: P.of_int 2) p in
      let env1 = function "i" -> Q.of_int 4 | _ -> Q.zero in
      let env2 = function "i" -> Q.of_int 4 | "j" -> Q.of_int 6 | _ -> Q.zero in
      Q.equal (P.eval env1 substituted) (P.eval env2 p))

(* -------- Affine -------- *)

let test_affine_basic () =
  let a = A.make [ ("i", Q.of_int 2); ("N", Q.minus_one) ] (Q.of_int 3) in
  Alcotest.check rat "coeff i" (Q.of_int 2) (A.coeff "i" a);
  Alcotest.check rat "coeff missing" Q.zero (A.coeff "j" a);
  Alcotest.check rat "const" (Q.of_int 3) (A.const_part a);
  Alcotest.(check (list string)) "vars" [ "N"; "i" ] (A.vars a);
  Alcotest.check rat "eval"
    (Q.of_int 1)
    (A.eval (function "i" -> Q.of_int 4 | _ -> Q.of_int 10) a)

let test_affine_subst () =
  (* substitute i := t + 1 into 2i + 3: expect 2t + 5 *)
  let a = A.make [ ("i", Q.of_int 2) ] (Q.of_int 3) in
  let b = A.subst "i" (A.make [ ("t", Q.one) ] Q.one) a in
  Alcotest.check affine "2t+5" (A.make [ ("t", Q.of_int 2) ] (Q.of_int 5)) b

let test_affine_poly_roundtrip () =
  let a = A.make [ ("i", Q.of_int 2); ("j", Q.of_ints (-1) 2) ] (Q.of_int 7) in
  match A.of_poly (A.to_poly a) with
  | Some b -> Alcotest.check affine "roundtrip" a b
  | None -> Alcotest.fail "roundtrip lost affinity"

let test_affine_of_poly_rejects () =
  Alcotest.(check bool) "degree 2 rejected" true (A.of_poly (v "i" *.: v "i") = None)

(* -------- Summation -------- *)

let test_sum_constant () =
  (* sum_{t=0}^{n} 1 = n + 1 *)
  let s = Polymath.Summation.count ~var:"t" ~lo:P.zero ~hi:(v "n") in
  Alcotest.check poly "n+1" (v "n" +: P.one) s

let test_sum_linear () =
  (* sum_{t=1}^{n} t = n(n+1)/2 *)
  let s = Polymath.Summation.sum ~var:"t" (v "t") ~lo:P.one ~hi:(v "n") in
  Alcotest.check poly "n(n+1)/2"
    (P.scale Q.half ((v "n" *.: v "n") +: v "n"))
    s

let test_sum_triangular_bound () =
  (* sum_{j=i+1}^{N-1} 1 = N - 1 - i *)
  let s =
    Polymath.Summation.count ~var:"j" ~lo:(v "i" +: P.one) ~hi:(v "N" -: P.one)
  in
  Alcotest.check poly "N-1-i" ((v "N" -: P.one) -: v "i") s

let test_sum_rejects_var_in_bounds () =
  Alcotest.check_raises "bound mentions var"
    (Invalid_argument "Summation.sum: bound mentions the summation variable") (fun () ->
      ignore (Polymath.Summation.sum ~var:"t" (v "t") ~lo:P.zero ~hi:(v "t")))

let prop_sum_matches_bruteforce =
  QCheck.Test.make ~name:"symbolic sum = brute-force sum" ~count:150
    (QCheck.triple small_poly (QCheck.int_range (-4) 4) (QCheck.int_range (-5) 8))
    (fun (p, lo, hi) ->
      QCheck.assume (hi >= lo - 1);
      (* sum p(i, j:=2) over i in [lo, hi] *)
      let p = P.subst "j" (P.of_int 2) p in
      let s = Polymath.Summation.sum ~var:"i" p ~lo:(P.of_int lo) ~hi:(P.of_int hi) in
      let expected = ref Q.zero in
      for x = lo to hi do
        expected := Q.add !expected (P.eval (fun _ -> Q.of_int x) p)
      done;
      Q.equal !expected (P.eval (fun _ -> Q.zero) s))

let prop_sum_parametric =
  QCheck.Test.make ~name:"parametric sum over triangular range" ~count:100
    (QCheck.pair (QCheck.int_range 0 8) (QCheck.int_range 0 12))
    (fun (i0, n0) ->
      QCheck.assume (i0 + 1 <= n0);
      (* sum_{j=i+1}^{N-1} j, then evaluate at i=i0, N=n0 *)
      let s =
        Polymath.Summation.sum ~var:"j" (v "j") ~lo:(v "i" +: P.one) ~hi:(v "N" -: P.one)
      in
      let expected = ref Q.zero in
      for x = i0 + 1 to n0 - 1 do
        expected := Q.add !expected (Q.of_int x)
      done;
      Q.equal !expected
        (P.eval (function "i" -> Q.of_int i0 | _ -> Q.of_int n0) s))

(* -------- Horner compilation and finite-difference stepping -------- *)

module H = Polymath.Horner

let slot3 = function "x" -> 0 | "y" -> 1 | "z" -> 2 | v -> invalid_arg v
let lookup3 x y z s = [| x; y; z |].(s)

let exact_at p x y z =
  let env = function "x" -> Q.of_int x | "y" -> Q.of_int y | "z" -> Q.of_int z | _ -> Q.zero in
  Zmath.Bigint.to_int_exn (Q.to_bigint_exn (P.eval env p))

let test_horner_matches_exact () =
  (* a rational-coefficient, integer-valued polynomial: the shape of a
     real ranking Ehrhart polynomial *)
  let half = Q.of_ints 1 2 in
  let p =
    (* x(x-1)/2 + x*y + 3z + 7 *)
    P.scale half ((v "x" *.: v "x") -: v "x") +: (v "x" *.: v "y") +: (3 *: v "z") +: P.of_int 7
  in
  let h = H.compile ~slot:slot3 p in
  Alcotest.(check int) "degree" 2 (H.degree h);
  Alcotest.(check int) "degree in x" 2 (H.degree_in_slot h 0);
  Alcotest.(check int) "degree in z" 1 (H.degree_in_slot h 2);
  for x = -4 to 4 do
    for y = -3 to 3 do
      for z = -2 to 2 do
        Alcotest.(check int)
          (Printf.sprintf "p(%d,%d,%d)" x y z)
          (exact_at p x y z)
          (H.eval h (lookup3 x y z))
      done
    done
  done

let test_stepper_binomials () =
  (* C(x,4) is integer-valued with denominator 24: the worst case the
     degree <= 4 restriction allows *)
  let p =
    P.scale (Q.of_ints 1 24)
      (v "x" *.: (v "x" -: P.one) *.: (v "x" -: P.of_int 2) *.: (v "x" -: P.of_int 3))
  in
  let h = H.compile ~slot:slot3 p in
  let st = H.Stepper.make h ~slot:0 ~start:(-5) ~lookup:(fun _ -> 0) in
  for x = -5 to 15 do
    Alcotest.(check int) (Printf.sprintf "C(%d,4)" x) (exact_at p x 0 0) (H.Stepper.value st);
    Alcotest.(check int) "arg" x (H.Stepper.arg st);
    H.Stepper.step st
  done;
  for _ = 1 to 21 do
    H.Stepper.step_back st
  done;
  Alcotest.(check int) "back to start" (exact_at p (-5) 0 0) (H.Stepper.value st);
  Alcotest.(check int) "back to start arg" (-5) (H.Stepper.arg st)

let gen_int_poly =
  QCheck.Gen.(
    let term =
      int_range (-9) 9 >>= fun c ->
      int_range 0 4 >>= fun e0 ->
      int_range 0 (4 - e0) >>= fun e1 ->
      int_range 0 (4 - e0 - e1) >>= fun e2 -> return (c, e0, e1, e2)
    in
    list_size (int_range 0 6) term)

let poly_of_terms terms =
  P.of_terms
    (List.map
       (fun (c, e0, e1, e2) ->
         (Q.of_int c, M.of_list [ ("x", e0); ("y", e1); ("z", e2) ]))
       terms)

let arb_int_poly =
  QCheck.make gen_int_poly ~print:(fun terms -> P.to_string (poly_of_terms terms))

let prop_horner_matches_eval =
  QCheck.Test.make ~name:"compiled Horner = exact eval (deg <= 4)" ~count:200 arb_int_poly
    (fun terms ->
      let p = poly_of_terms terms in
      let h = H.compile ~slot:slot3 p in
      List.for_all
        (fun (x, y, z) -> H.eval h (lookup3 x y z) = exact_at p x y z)
        [ (0, 0, 0); (1, 2, 3); (-2, 5, -7); (11, -13, 4); (100, 3, -50) ])

let prop_stepper_matches_eval =
  QCheck.Test.make ~name:"fdiff stepper = exact eval along each slot" ~count:200
    (QCheck.pair arb_int_poly (QCheck.int_range (-10) 10))
    (fun (terms, start) ->
      let p = poly_of_terms terms in
      let h = H.compile ~slot:slot3 p in
      List.for_all
        (fun slot ->
          let fixed = [| 2; -3; 5 |] in
          let lookup s = fixed.(s) in
          let at w s = if s = slot then w else fixed.(s) in
          let st = H.Stepper.make h ~slot ~start ~lookup in
          let ok = ref true in
          for w = start to start + 12 do
            if H.Stepper.value st <> H.eval h (at w) then ok := false;
            H.Stepper.step st
          done;
          (* and walk back down past the start *)
          for _ = 1 to 20 do
            H.Stepper.step_back st
          done;
          !ok && H.Stepper.value st = H.eval h (at (start - 7)))
        [ 0; 1; 2 ])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [ ( "polymath.monomial",
      [ Alcotest.test_case "canonical form" `Quick test_monomial_canonical;
        Alcotest.test_case "operations" `Quick test_monomial_ops;
        Alcotest.test_case "invalid pow" `Quick test_monomial_pow_invalid ] );
    ( "polymath.polynomial",
      [ Alcotest.test_case "construction and printing" `Quick test_poly_basic;
        Alcotest.test_case "cancellation" `Quick test_poly_cancellation;
        Alcotest.test_case "is_const" `Quick test_poly_is_const;
        Alcotest.test_case "substitution" `Quick test_poly_subst;
        Alcotest.test_case "simultaneous substitution" `Quick test_poly_subst_all_simultaneous;
        Alcotest.test_case "univariate view" `Quick test_poly_as_univariate;
        Alcotest.test_case "evaluation" `Quick test_poly_eval;
        Alcotest.test_case "derivative" `Quick test_poly_derivative;
        Alcotest.test_case "denominator lcm" `Quick test_denominator_lcm ]
      @ qsuite [ prop_poly_ring; prop_eval_hom; prop_subst_then_eval ] );
    ( "polymath.horner",
      [ Alcotest.test_case "matches exact eval" `Quick test_horner_matches_exact;
        Alcotest.test_case "stepper on binomials" `Quick test_stepper_binomials ]
      @ qsuite [ prop_horner_matches_eval; prop_stepper_matches_eval ] );
    ( "polymath.affine",
      [ Alcotest.test_case "basics" `Quick test_affine_basic;
        Alcotest.test_case "substitution" `Quick test_affine_subst;
        Alcotest.test_case "poly roundtrip" `Quick test_affine_poly_roundtrip;
        Alcotest.test_case "of_poly rejects degree 2" `Quick test_affine_of_poly_rejects ] );
    ( "polymath.summation",
      [ Alcotest.test_case "sum of 1" `Quick test_sum_constant;
        Alcotest.test_case "sum of t" `Quick test_sum_linear;
        Alcotest.test_case "triangular bounds" `Quick test_sum_triangular_bound;
        Alcotest.test_case "rejects var in bounds" `Quick test_sum_rejects_var_in_bounds ]
      @ qsuite [ prop_sum_matches_bruteforce; prop_sum_parametric ] ) ]
