(* Tests for the Pluto-lite transformations: tiling and skewing. *)

module A = Polymath.Affine
module Q = Zmath.Rat

let aff terms c = A.make (List.map (fun (x, k) -> (x, Q.of_int k)) terms) (Q.of_int c)
let affine = Alcotest.testable A.pp A.equal

let triangle () =
  Trahrhe.Nest.make ~params:[ "N" ]
    [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
      { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 } ]

let rectangle () =
  Trahrhe.Nest.make ~params:[ "T"; "N" ]
    [ { var = "t"; lower = aff [] 0; upper = aff [ ("T", 1) ] 0 };
      { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 } ]

(* -------- Tile -------- *)

let test_tile_space_bounds () =
  let tl = Looptrans.Tile.tile (triangle ()) ~size:8 in
  let levels = tl.Looptrans.Tile.tile_nest.Trahrhe.Nest.levels in
  (match levels with
  | [ li; lj ] ->
    Alcotest.(check string) "tile vars" "it" li.Trahrhe.Nest.var;
    Alcotest.(check string) "tile vars" "jt" lj.Trahrhe.Nest.var;
    Alcotest.check affine "it lower" (aff [] 0) li.Trahrhe.Nest.lower;
    (* upper exclusive over the derived parameter Nt = N / 8 *)
    Alcotest.check affine "it upper = Nt" (aff [ ("Nt", 1) ] 0) li.Trahrhe.Nest.upper;
    Alcotest.check affine "jt lower tracks it" (aff [ ("it", 1) ] 0) lj.Trahrhe.Nest.lower
  | _ -> Alcotest.fail "expected two tile levels");
  Alcotest.(check (list (pair string string))) "derived params" [ ("N", "Nt") ]
    tl.Looptrans.Tile.derived_params

let test_tile_validation () =
  Alcotest.(check bool) "positive size" true
    (try
       ignore (Looptrans.Tile.tile (triangle ()) ~size:0);
       false
     with Invalid_argument _ -> true);
  (* parameters must divide the size at iteration time *)
  let tl = Looptrans.Tile.tile (triangle ()) ~size:8 in
  Alcotest.(check bool) "indivisible parameter at runtime" true
    (try
       Looptrans.Tile.iterate tl ~param:(fun _ -> 13) (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_tile_iterate_covers_domain () =
  (* tile-major iteration must visit exactly the original points *)
  List.iter
    (fun (nest, size, n) ->
      let tl = Looptrans.Tile.tile nest ~size in
      let expected = ref [] in
      Trahrhe.Nest.iterate nest ~param:(fun _ -> n) (fun idx ->
          expected := Array.to_list idx :: !expected);
      let seen = Hashtbl.create 64 in
      let count = ref 0 in
      Looptrans.Tile.iterate tl ~param:(fun _ -> n) (fun idx ->
          incr count;
          Hashtbl.replace seen (Array.to_list idx) ());
      Alcotest.(check int) "same cardinality" (List.length !expected) !count;
      List.iter
        (fun p -> Alcotest.(check bool) "covered" true (Hashtbl.mem seen p))
        !expected)
    [ (triangle (), 4, 12); (triangle (), 8, 16); (rectangle (), 4, 8) ]

let test_tile_nest_collapsible () =
  (* the tile-coordinate nest must invert like any Fig. 5 nest *)
  let tl = Looptrans.Tile.tile (triangle ()) ~size:16 in
  match Trahrhe.Inversion.invert tl.Looptrans.Tile.tile_nest with
  | Error e -> Alcotest.fail (Trahrhe.Inversion.error_to_string e)
  | Ok inv ->
    (* parameter of the tile nest is Nt = N / 16 *)
    let report = Trahrhe.Validate.check inv ~param:(fun _ -> 7) in
    Alcotest.(check bool) "tile nest validates" true (Trahrhe.Validate.raw_floor_ok report)

let test_tile_emit_shapes () =
  let tl = Looptrans.Tile.tile (triangle ()) ~size:16 in
  let s =
    Codegen.C_print.to_string
      (Looptrans.Tile.collapse_tiles tl ~body:[ Codegen.C_ast.Raw "use(i, j);" ])
  in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "collapsed tile loop" true (contains "pc");
  Alcotest.(check bool) "intra max bound" true (contains "(it)*16");
  Alcotest.(check bool) "derived parameter decl" true (contains "long Nt = N / 16;");
  Alcotest.(check bool) "intra loop on i" true (contains "for (long i =");
  Alcotest.(check bool) "body present" true (contains "use(i, j);")

(* -------- Skew -------- *)

let test_skew_bounds () =
  let skewed = Looptrans.Skew.skew (rectangle ()) ~level:1 ~wrt:0 ~factor:1 in
  let levels = skewed.Trahrhe.Nest.levels in
  match levels with
  | [ _; li ] ->
    Alcotest.check affine "lower t" (aff [ ("t", 1) ] 0) li.Trahrhe.Nest.lower;
    Alcotest.check affine "upper t+N" (aff [ ("t", 1); ("N", 1) ] 0) li.Trahrhe.Nest.upper
  | _ -> Alcotest.fail "depth"

let test_skew_preserves_count () =
  List.iter
    (fun factor ->
      let nest = rectangle () in
      let skewed = Looptrans.Skew.skew nest ~level:1 ~wrt:0 ~factor in
      let count n =
        let c = ref 0 in
        Trahrhe.Nest.iterate n ~param:(fun _ -> 9) (fun _ -> incr c);
        !c
      in
      Alcotest.(check int)
        (Printf.sprintf "factor %d" factor)
        (count nest) (count skewed))
    [ 1; 2; -1 ]

let test_skew_inner_substitution () =
  (* 3-deep: skewing j shifts k's bounds that referenced j *)
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "t"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "k"; lower = aff [ ("j", 1) ] 0; upper = aff [ ("j", 1) ] 4 } ]
  in
  let skewed = Looptrans.Skew.skew nest ~level:1 ~wrt:0 ~factor:3 in
  (match skewed.Trahrhe.Nest.levels with
  | [ _; _; lk ] ->
    Alcotest.check affine "k lower = j - 3t" (aff [ ("j", 1); ("t", -3) ] 0) lk.Trahrhe.Nest.lower
  | _ -> Alcotest.fail "depth");
  (* iteration count invariant *)
  let count n =
    let c = ref 0 in
    Trahrhe.Nest.iterate n ~param:(fun _ -> 6) (fun _ -> incr c);
    !c
  in
  Alcotest.(check int) "count preserved" (count nest) (count skewed)

let test_skew_collapsible_rhomboid () =
  (* the skewed rectangle is the paper's rhomboid: it must collapse *)
  let skewed = Looptrans.Skew.skew (rectangle ()) ~level:1 ~wrt:0 ~factor:1 in
  let inv = Trahrhe.Inversion.invert_exn skewed in
  let report =
    Trahrhe.Validate.check inv ~param:(function "T" -> 7 | _ -> 11)
  in
  Alcotest.(check bool) "rhomboid validates" true (Trahrhe.Validate.raw_floor_ok report)

let test_skew_validation () =
  Alcotest.(check bool) "wrt >= level" true
    (try
       ignore (Looptrans.Skew.skew (rectangle ()) ~level:0 ~wrt:1 ~factor:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero factor" true
    (try
       ignore (Looptrans.Skew.skew (rectangle ()) ~level:1 ~wrt:0 ~factor:0);
       false
     with Invalid_argument _ -> true)

let test_unskew_expr () =
  Alcotest.(check string) "positive" "(i - 2*t)"
    (Looptrans.Skew.unskew_expr (rectangle ()) ~level:1 ~wrt:0 ~factor:2);
  Alcotest.(check string) "negative" "(i + 2*t)"
    (Looptrans.Skew.unskew_expr (rectangle ()) ~level:1 ~wrt:0 ~factor:(-2))

let suites =
  [ ( "looptrans.tile",
      [ Alcotest.test_case "tile-space bounds" `Quick test_tile_space_bounds;
        Alcotest.test_case "validation" `Quick test_tile_validation;
        Alcotest.test_case "tile-major coverage" `Quick test_tile_iterate_covers_domain;
        Alcotest.test_case "tile nest collapsible" `Quick test_tile_nest_collapsible;
        Alcotest.test_case "generated code shapes" `Quick test_tile_emit_shapes ] );
    ( "looptrans.skew",
      [ Alcotest.test_case "skewed bounds" `Quick test_skew_bounds;
        Alcotest.test_case "count preserved" `Quick test_skew_preserves_count;
        Alcotest.test_case "inner substitution" `Quick test_skew_inner_substitution;
        Alcotest.test_case "rhomboid collapsible" `Quick test_skew_collapsible_rhomboid;
        Alcotest.test_case "validation" `Quick test_skew_validation;
        Alcotest.test_case "unskew expression" `Quick test_unskew_expr ] ) ]
