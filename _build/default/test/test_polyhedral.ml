(* Tests for the polyhedral substrate: constraints, Fourier-Motzkin
   elimination, nest-form counting, parametric lexmin. *)

module A = Polymath.Affine
module P = Polymath.Polynomial
module Q = Zmath.Rat
module C = Polyhedral.Constraint
module FM = Polyhedral.Fourier_motzkin

let poly = Alcotest.testable P.pp P.equal
let aff terms c = A.make (List.map (fun (x, k) -> (x, Q.of_int k)) terms) (Q.of_int c)

(* -------- constraints -------- *)

let test_constraint_holds () =
  let env5 = function "i" -> Q.of_int 5 | _ -> Q.of_int 10 in
  Alcotest.(check bool) "5 >= 3" true (C.holds env5 (C.ge (A.var "i") (aff [] 3)));
  Alcotest.(check bool) "5 >= 7 fails" false (C.holds env5 (C.ge (A.var "i") (aff [] 7)));
  Alcotest.(check bool) "5 < 6 int" true (C.holds env5 (C.lt_int (A.var "i") (aff [] 6)));
  Alcotest.(check bool) "5 < 5 fails" false (C.holds env5 (C.lt_int (A.var "i") (aff [] 5)));
  Alcotest.(check bool) "eq" true (C.holds env5 (C.eq (A.var "i") (aff [] 5)))

let test_lt_int_semantics () =
  (* lt_int is the integer strict inequality: i < j iff i <= j - 1 *)
  let c = C.lt_int (A.var "i") (A.var "j") in
  let env i j = function "i" -> Q.of_int i | _ -> Q.of_int j in
  Alcotest.(check bool) "3 < 4" true (C.holds (env 3 4) c);
  Alcotest.(check bool) "4 < 4 fails" false (C.holds (env 4 4) c)

(* -------- Fourier-Motzkin -------- *)

let test_bounds_for () =
  (* 0 <= i, i <= N-1, j free: bounds for i *)
  let p =
    Polyhedral.Polyhedron.make
      [ C.ge (A.var "i") (aff [] 0); C.le (A.var "i") (aff [ ("N", 1) ] (-1)); C.ge (A.var "j") (aff [] 0) ]
  in
  let lowers, uppers, rest = FM.bounds_for "i" p in
  Alcotest.(check int) "one lower" 1 (List.length lowers);
  Alcotest.(check int) "one upper" 1 (List.length uppers);
  Alcotest.(check int) "one rest" 1 (List.length rest);
  Alcotest.(check bool) "lower is 0" true (A.equal (List.hd lowers) (aff [] 0));
  Alcotest.(check bool) "upper is N-1" true (A.equal (List.hd uppers) (aff [ ("N", 1) ] (-1)))

let test_eliminate_shadow () =
  (* triangle 0 <= i <= j <= 10: eliminating i leaves 0 <= j <= 10 *)
  let p =
    Polyhedral.Polyhedron.make
      [ C.ge (A.var "i") (aff [] 0); C.le (A.var "i") (A.var "j"); C.le (A.var "j") (aff [] 10) ]
  in
  let q = FM.eliminate "i" p in
  Alcotest.(check bool) "i gone" true (not (List.mem "i" (Polyhedral.Polyhedron.vars q)));
  (* j = 5 inside, j = -1 outside *)
  Alcotest.(check bool) "j=5 in" true (Polyhedral.Polyhedron.mem (fun _ -> Q.of_int 5) q);
  Alcotest.(check bool) "j=-1 out" false (Polyhedral.Polyhedron.mem (fun _ -> Q.of_int (-1)) q)

let test_empty_detection () =
  let p = Polyhedral.Polyhedron.make [ C.ge (A.var "i") (aff [] 5); C.le (A.var "i") (aff [] 3) ] in
  Alcotest.(check bool) "5 <= i <= 3 empty" true (FM.is_rationally_empty p);
  let ok = Polyhedral.Polyhedron.make [ C.ge (A.var "i") (aff [] 3); C.le (A.var "i") (aff [] 5) ] in
  Alcotest.(check bool) "3 <= i <= 5 nonempty" false (FM.is_rationally_empty ok)

let test_eliminate_transitive () =
  (* x <= y, y <= z, z <= x - 1 is empty only through transitivity *)
  let p =
    Polyhedral.Polyhedron.make
      [ C.le (A.var "x") (A.var "y");
        C.le (A.var "y") (A.var "z");
        C.le (A.var "z") (aff [ ("x", 1) ] (-1)) ]
  in
  Alcotest.(check bool) "cyclic chain empty" true (FM.is_rationally_empty p)

let prop_projection_sound =
  (* any rational point of the polyhedron projects into the shadow *)
  QCheck.Test.make ~name:"FM projection contains every projected point" ~count:200
    (QCheck.triple (QCheck.int_range (-10) 10) (QCheck.int_range (-10) 10)
       (QCheck.int_range (-10) 10))
    (fun (x, y, z) ->
      let p =
        Polyhedral.Polyhedron.make
          [ C.ge (A.var "x") (aff [] (-5));
            C.le (A.var "x") (A.var "y");
            C.le (A.var "y") (aff [ ("z", 2) ] 1) ]
      in
      let env v = Q.of_int (match v with "x" -> x | "y" -> y | _ -> z) in
      QCheck.assume (Polyhedral.Polyhedron.mem env p);
      Polyhedral.Polyhedron.mem env (FM.eliminate "x" p))

(* -------- Count -------- *)

let corr_levels () =
  [ { Polyhedral.Count.var = "i"; lo = aff [] 0; hi = aff [ ("N", 1) ] (-2) };
    { Polyhedral.Count.var = "j"; lo = aff [ ("i", 1) ] 1; hi = aff [ ("N", 1) ] (-1) } ]

let test_count_triangle () =
  let c = Polyhedral.Count.count (corr_levels ()) in
  (* (N-1)N/2 *)
  let expected =
    P.scale Q.half (P.sub (P.mul (P.var "N") (P.var "N")) (P.var "N"))
  in
  Alcotest.check poly "(N^2-N)/2" expected c

let test_count_inner_structure () =
  let inner = Polyhedral.Count.count_inner (corr_levels ()) in
  Alcotest.(check int) "one entry per level" 2 (List.length inner);
  Alcotest.check poly "innermost is 1" P.one (List.nth inner 1)

let test_enumerate_matches_count () =
  let levels = corr_levels () in
  List.iter
    (fun n ->
      let pts = Polyhedral.Count.enumerate levels ~param:(fun _ -> n) in
      let c = Polyhedral.Count.count levels in
      let expected = Q.to_bigint_exn (P.eval (fun _ -> Q.of_int n) c) in
      Alcotest.(check int)
        (Printf.sprintf "N=%d" n)
        (Zmath.Bigint.to_int_exn expected)
        (List.length pts))
    [ 1; 2; 3; 7; 15 ]

let test_enumerate_lex_order () =
  let pts = Polyhedral.Count.enumerate (corr_levels ()) ~param:(fun _ -> 4) in
  Alcotest.(check (list (list (pair string int))))
    "lex order"
    [ [ ("i", 0); ("j", 1) ];
      [ ("i", 0); ("j", 2) ];
      [ ("i", 0); ("j", 3) ];
      [ ("i", 1); ("j", 2) ];
      [ ("i", 1); ("j", 3) ];
      [ ("i", 2); ("j", 3) ] ]
    pts

let random_nest_levels =
  (* 2-level nest with random affine bounds giving nonempty rows:
     i in [0, a], j in [c*i + d, c*i + d + w] for random small values *)
  QCheck.make
    ~print:(fun (a, c, d, w) -> Printf.sprintf "a=%d c=%d d=%d w=%d" a c d w)
    QCheck.Gen.(quad (int_range 0 8) (int_range (-2) 2) (int_range (-3) 3) (int_range 0 6))

let prop_count_matches_enumerate =
  QCheck.Test.make ~name:"symbolic count = enumeration size (random 2-level nests)" ~count:200
    random_nest_levels (fun (a, c, d, w) ->
      let levels =
        [ { Polyhedral.Count.var = "i"; lo = aff [] 0; hi = aff [] a };
          { Polyhedral.Count.var = "j"; lo = aff [ ("i", c) ] d; hi = aff [ ("i", c) ] (d + w) } ]
      in
      let pts = Polyhedral.Count.enumerate levels ~param:(fun _ -> 0) in
      let counted = P.eval (fun _ -> Q.zero) (Polyhedral.Count.count levels) in
      Q.equal (Q.of_int (List.length pts)) counted)

let test_of_polyhedron_roundtrip () =
  (* constraint form of the correlation triangle converts back to nest
     form with the same count *)
  let p = Polyhedral.Count.to_polyhedron (corr_levels ()) in
  match Polyhedral.Count.of_polyhedron p ~order:[ "i"; "j" ] ~params:[ "N" ] with
  | Error e -> Alcotest.fail e
  | Ok levels ->
    Alcotest.(check int) "two levels" 2 (List.length levels);
    Alcotest.(check (list string)) "order kept" [ "i"; "j" ]
      (List.map (fun (l : Polyhedral.Count.level) -> l.var) levels);
    Alcotest.check poly "same count"
      (Polyhedral.Count.count (corr_levels ()))
      (Polyhedral.Count.count levels)

let test_of_polyhedron_redundant_bounds () =
  (* a redundant upper bound with the same variable terms is pruned *)
  let p =
    Polyhedral.Polyhedron.add
      (C.le (A.var "j") (aff [ ("N", 1) ] 5))
      (Polyhedral.Count.to_polyhedron (corr_levels ()))
  in
  match Polyhedral.Count.of_polyhedron p ~order:[ "i"; "j" ] ~params:[ "N" ] with
  | Error e -> Alcotest.fail e
  | Ok levels ->
    Alcotest.check poly "count unchanged"
      (Polyhedral.Count.count (corr_levels ()))
      (Polyhedral.Count.count levels)

let test_of_polyhedron_rejects_min_max () =
  (* j <= N and j <= M genuinely needs a min: not in the Fig. 5 model *)
  let p =
    Polyhedral.Polyhedron.make
      [ C.ge (A.var "i") (aff [] 0);
        C.le (A.var "i") (aff [ ("N", 1) ] 0);
        C.ge (A.var "j") (aff [] 0);
        C.le (A.var "j") (aff [ ("N", 1) ] 0);
        C.le (A.var "j") (aff [ ("M", 1) ] 0) ]
  in
  match Polyhedral.Count.of_polyhedron p ~order:[ "i"; "j" ] ~params:[ "N"; "M" ] with
  | Error msg ->
    Alcotest.(check bool) "mentions max/min" true
      (String.length msg > 0 &&
       let rec has i = i + 7 <= String.length msg && (String.sub msg i 7 = "max/min" || has (i + 1)) in
       has 0)
  | Ok _ -> Alcotest.fail "expected rejection"

let test_of_polyhedron_unbounded () =
  let p = Polyhedral.Polyhedron.make [ C.ge (A.var "i") (aff [] 0) ] in
  match Polyhedral.Count.of_polyhedron p ~order:[ "i" ] ~params:[] with
  | Error msg -> Alcotest.(check string) "no upper" "variable i has no upper bound" msg
  | Ok _ -> Alcotest.fail "expected rejection"

(* -------- Lexmin -------- *)

let test_lexmin_transitive () =
  (* i in [0, ...], j in [i+1, ...], k in [j+2, ...]:
     minima: i = 0, j = 1, k = 3; tail after prefix 1: j = i+1, k = i+3 *)
  let levels =
    [ { Polyhedral.Count.var = "i"; lo = aff [] 0; hi = aff [ ("N", 1) ] 0 };
      { Polyhedral.Count.var = "j"; lo = aff [ ("i", 1) ] 1; hi = aff [ ("N", 1) ] 0 };
      { Polyhedral.Count.var = "k"; lo = aff [ ("j", 1) ] 2; hi = aff [ ("N", 1) ] 0 } ]
  in
  let first = Polyhedral.Lexmin.first_point levels in
  Alcotest.(check int) "three minima" 3 (List.length first);
  List.iter2
    (fun (x, expected) (y, m) ->
      Alcotest.(check string) "var" x y;
      Alcotest.(check bool) ("min of " ^ x) true (A.equal expected m))
    [ ("i", aff [] 0); ("j", aff [] 1); ("k", aff [] 3) ]
    first;
  let tail = Polyhedral.Lexmin.tail_minima levels ~prefix:1 in
  List.iter2
    (fun (x, expected) (y, m) ->
      Alcotest.(check string) "var" x y;
      Alcotest.(check bool) ("tail min of " ^ x) true (A.equal expected m))
    [ ("j", aff [ ("i", 1) ] 1); ("k", aff [ ("i", 1) ] 3) ]
    tail

let test_lexmin_prefix_bounds () =
  let levels = corr_levels () in
  Alcotest.(check int) "prefix = depth gives empty" 0
    (List.length (Polyhedral.Lexmin.tail_minima levels ~prefix:2));
  Alcotest.check_raises "prefix too large" (Invalid_argument "Lexmin.tail_minima") (fun () ->
      ignore (Polyhedral.Lexmin.tail_minima levels ~prefix:3))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [ ( "polyhedral.constraint",
      [ Alcotest.test_case "holds" `Quick test_constraint_holds;
        Alcotest.test_case "integer strict inequality" `Quick test_lt_int_semantics ] );
    ( "polyhedral.fourier_motzkin",
      [ Alcotest.test_case "bounds_for split" `Quick test_bounds_for;
        Alcotest.test_case "projection shadow" `Quick test_eliminate_shadow;
        Alcotest.test_case "emptiness" `Quick test_empty_detection;
        Alcotest.test_case "transitive emptiness" `Quick test_eliminate_transitive ]
      @ qsuite [ prop_projection_sound ] );
    ( "polyhedral.count",
      [ Alcotest.test_case "triangle count" `Quick test_count_triangle;
        Alcotest.test_case "count_inner structure" `Quick test_count_inner_structure;
        Alcotest.test_case "enumerate matches count" `Quick test_enumerate_matches_count;
        Alcotest.test_case "enumerate lex order" `Quick test_enumerate_lex_order;
        Alcotest.test_case "of_polyhedron roundtrip" `Quick test_of_polyhedron_roundtrip;
        Alcotest.test_case "of_polyhedron prunes redundancy" `Quick
          test_of_polyhedron_redundant_bounds;
        Alcotest.test_case "of_polyhedron rejects max/min" `Quick test_of_polyhedron_rejects_min_max;
        Alcotest.test_case "of_polyhedron rejects unbounded" `Quick test_of_polyhedron_unbounded ]
      @ qsuite [ prop_count_matches_enumerate ] );
    ( "polyhedral.lexmin",
      [ Alcotest.test_case "transitive minima" `Quick test_lexmin_transitive;
        Alcotest.test_case "prefix bounds" `Quick test_lexmin_prefix_bounds ] ) ]
