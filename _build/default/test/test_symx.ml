(* Tests for symx: symbolic expressions, complex evaluation, C emission. *)

module E = Symx.Expr
module Q = Zmath.Rat
module P = Polymath.Polynomial

let expr = Alcotest.testable E.pp E.equal

let approx ?(eps = 1e-9) msg expected (z : Complex.t) =
  if Float.abs (z.re -. expected) > eps || Float.abs z.im > eps then
    Alcotest.failf "%s: expected %g, got %g + %gi" msg expected z.re z.im

let no_env _ = Complex.zero

(* -------- smart constructors -------- *)

let test_constant_folding () =
  Alcotest.check expr "2+3 = 5" (E.of_int 5) (E.add (E.of_int 2) (E.of_int 3));
  Alcotest.check expr "2*3 = 6" (E.of_int 6) (E.mul (E.of_int 2) (E.of_int 3));
  Alcotest.check expr "0*x = 0" E.zero (E.mul E.zero (E.var "x"));
  Alcotest.check expr "1*x = x" (E.var "x") (E.mul E.one (E.var "x"));
  Alcotest.check expr "x+0 = x" (E.var "x") (E.add (E.var "x") E.zero);
  Alcotest.check expr "x^0 = 1" E.one (E.pow (E.var "x") Q.zero);
  Alcotest.check expr "x^1 = x" (E.var "x") (E.pow (E.var "x") Q.one)

let test_flattening () =
  let e = E.sum [ E.sum [ E.var "a"; E.var "b" ]; E.var "c" ] in
  (match e with
  | E.Sum [ E.Var "a"; E.Var "b"; E.Var "c" ] -> ()
  | _ -> Alcotest.failf "sum not flattened: %s" (E.to_string e));
  let p = E.prod [ E.prod [ E.var "a"; E.var "b" ]; E.var "c" ] in
  match p with
  | E.Prod [ E.Var "a"; E.Var "b"; E.Var "c" ] -> ()
  | _ -> Alcotest.failf "prod not flattened: %s" (E.to_string p)

let test_pow_collapse_integer_only () =
  (* (x^{1/3})^3 collapses (outer exponent integral)... *)
  Alcotest.check expr "(x^1/3)^3 = x"
    (E.var "x")
    (E.pow (E.cbrt (E.var "x")) (Q.of_int 3));
  (* ...but (x^2)^{1/2} must NOT collapse to x (branch cut) *)
  match E.pow (E.pow (E.var "x") (Q.of_int 2)) Q.half with
  | E.Pow (E.Pow (E.Var "x", two), h) when Q.equal two (Q.of_int 2) && Q.equal h Q.half -> ()
  | e -> Alcotest.failf "branch-unsafe collapse: %s" (E.to_string e)

(* -------- evaluation -------- *)

let test_eval_arith () =
  let env = function "x" -> { Complex.re = 3.0; im = 0.0 } | _ -> { Complex.re = 2.0; im = 0.0 } in
  approx "3*x + y" 11.0 (E.eval_complex env (E.add (E.mul (E.of_int 3) (E.var "x")) (E.var "y")));
  approx "x^2" 9.0 (E.eval_complex env (E.pow (E.var "x") (Q.of_int 2)));
  approx "1/x" (1.0 /. 3.0) (E.eval_complex env (E.inv (E.var "x")));
  approx "sqrt 9" 3.0 (E.eval_complex env (E.sqrt (E.pow (E.var "x") (Q.of_int 2))))

let test_eval_sqrt_exact () =
  (* sqrt of a perfect square of a float integer must be exact *)
  let z = E.eval_complex no_env (E.sqrt (E.of_int 1048576)) in
  Alcotest.(check (float 0.0)) "exact sqrt" 1024.0 z.Complex.re

let test_eval_complex_transit () =
  (* sqrt(-4) = 2i; i * i = -1 *)
  let z = E.eval_complex no_env (E.sqrt (E.of_int (-4))) in
  approx ~eps:1e-12 "re 0" 0.0 { z with im = 0.0 };
  Alcotest.(check (float 1e-12)) "im 2" 2.0 z.Complex.im;
  let z2 = E.eval_complex no_env (E.mul E.I E.I) in
  approx "i*i" (-1.0) z2

let test_eval_cbrt_principal () =
  (* principal cube root of -8 is 1 + i*sqrt(3), NOT -2 (C cpow behavior) *)
  let z = E.eval_complex no_env (E.cbrt (E.of_int (-8))) in
  Alcotest.(check (float 1e-9)) "re" 1.0 z.Complex.re;
  Alcotest.(check (float 1e-9)) "im" (Float.sqrt 3.0) z.Complex.im

let test_eval_zero_pow () =
  approx "0^2" 0.0 (E.eval_complex no_env (E.pow E.zero (Q.of_int 2)));
  approx "0^(1/2)" 0.0 (E.eval_complex no_env (E.sqrt E.zero));
  let z = E.eval_complex no_env (E.inv E.zero) in
  Alcotest.(check bool) "0^-1 infinite" true (Float.is_integer z.Complex.re = false || z.Complex.re = infinity)

let test_of_poly () =
  let p = P.add (P.scale Q.half (P.mul (P.var "i") (P.var "i"))) (P.of_int 3) in
  let e = E.of_poly p in
  let env = function "i" -> { Complex.re = 4.0; im = 0.0 } | _ -> Complex.zero in
  approx "1/2 i^2 + 3 at i=4" 11.0 (E.eval_complex env e)

let test_subst () =
  let e = E.add (E.sqrt (E.var "x")) (E.var "y") in
  let e' = E.subst "x" (E.of_int 16) e in
  let env = function "y" -> { Complex.re = 1.0; im = 0.0 } | _ -> Complex.zero in
  approx "sqrt 16 + 1" 5.0 (E.eval_complex env e');
  Alcotest.(check (list string)) "free vars" [ "y" ] (E.free_vars e')

let test_free_vars () =
  let e = E.mul (E.var "b") (E.add (E.var "a") (E.pow (E.var "c") Q.half)) in
  Alcotest.(check (list string)) "sorted vars" [ "a"; "b"; "c" ] (E.free_vars e)

(* -------- classification and C emission -------- *)

let test_classify () =
  Alcotest.(check bool) "poly is real" true (Symx.Cemit.classify (E.var "x") = Symx.Cemit.Real);
  Alcotest.(check bool) "sqrt is real" true
    (Symx.Cemit.classify (E.sqrt (E.var "x")) = Symx.Cemit.Real);
  Alcotest.(check bool) "cbrt is complex" true
    (Symx.Cemit.classify (E.cbrt (E.var "x")) = Symx.Cemit.Complex);
  Alcotest.(check bool) "I is complex" true (Symx.Cemit.classify E.I = Symx.Cemit.Complex)

let test_rat_literal () =
  Alcotest.(check string) "int" "3.0" (Symx.Cemit.rat_literal (Q.of_int 3));
  Alcotest.(check string) "frac" "(3.0/2.0)" (Symx.Cemit.rat_literal (Q.of_ints 3 2));
  Alcotest.(check string) "neg" "-1.0" (Symx.Cemit.rat_literal Q.minus_one)

let test_emit_real () =
  let e = E.sqrt (E.add (E.var "N") (E.of_int 1)) in
  Alcotest.(check string) "sqrt emission" "sqrt((double)N + 1.0)"
    (Symx.Cemit.emit ~mode:Symx.Cemit.Real e);
  Alcotest.(check string) "floor wrap" "floor(sqrt((double)N + 1.0))"
    (Symx.Cemit.emit_floor ~mode:Symx.Cemit.Real e)

let test_emit_complex () =
  let e = E.cbrt (E.var "x") in
  Alcotest.(check string) "cpow emission" "cpow((double)x, (1.0/3.0))"
    (Symx.Cemit.emit ~mode:Symx.Cemit.Complex e);
  Alcotest.(check string) "creal+floor" "floor(creal(cpow((double)x, (1.0/3.0))))"
    (Symx.Cemit.emit_floor ~mode:Symx.Cemit.Complex e)

let test_emit_precedence () =
  (* (a + b) * c needs parentheses around the sum *)
  let e = E.mul (E.add (E.var "a") (E.var "b")) (E.var "c") in
  Alcotest.(check string) "parens" "((double)a + (double)b)*(double)c"
    (Symx.Cemit.emit ~mode:Symx.Cemit.Real e)

let test_emit_poly_int () =
  let p =
    P.add
      (P.scale Q.half (P.mul (P.var "i") (P.var "i")))
      (P.sub (P.var "pc") (P.scale (Q.of_ints 3 2) (P.var "i")))
  in
  let s = Symx.Cemit.emit_poly_int p ~ty:"long" in
  Alcotest.(check string) "exact division form" "((long)i*i - (long)3*i + (long)2*pc)/2" s

let test_emit_poly_int_integer_coeffs () =
  let p = P.sub (P.mul (P.var "N") (P.var "N")) (P.var "N") in
  Alcotest.(check string) "no division" "(long)N*N - (long)N"
    (Symx.Cemit.emit_poly_int p ~ty:"long")

(* emitted integer polynomials must agree with exact evaluation *)
let prop_emit_poly_eval =
  QCheck.Test.make ~name:"emit_poly_int denominators divide exactly" ~count:100
    (QCheck.pair (QCheck.int_range 0 30) (QCheck.int_range 0 30))
    (fun (i, j) ->
      (* ranking-like polynomial: always integer on integer points *)
      let p =
        P.add
          (P.scale Q.half
             (P.add (P.mul (P.var "i") (P.var "i")) (P.var "i")))
          (P.var "j")
      in
      let v = P.eval (function "i" -> Q.of_int i | _ -> Q.of_int j) p in
      Q.is_integer v)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [ ( "symx.expr",
      [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
        Alcotest.test_case "flattening" `Quick test_flattening;
        Alcotest.test_case "pow collapse branch safety" `Quick test_pow_collapse_integer_only;
        Alcotest.test_case "arithmetic evaluation" `Quick test_eval_arith;
        Alcotest.test_case "sqrt exactness" `Quick test_eval_sqrt_exact;
        Alcotest.test_case "complex transit" `Quick test_eval_complex_transit;
        Alcotest.test_case "principal cube root" `Quick test_eval_cbrt_principal;
        Alcotest.test_case "zero powers" `Quick test_eval_zero_pow;
        Alcotest.test_case "of_poly" `Quick test_of_poly;
        Alcotest.test_case "substitution" `Quick test_subst;
        Alcotest.test_case "free variables" `Quick test_free_vars ] );
    ( "symx.cemit",
      [ Alcotest.test_case "classification" `Quick test_classify;
        Alcotest.test_case "rational literals" `Quick test_rat_literal;
        Alcotest.test_case "real emission" `Quick test_emit_real;
        Alcotest.test_case "complex emission" `Quick test_emit_complex;
        Alcotest.test_case "precedence" `Quick test_emit_precedence;
        Alcotest.test_case "integer polynomial emission" `Quick test_emit_poly_int;
        Alcotest.test_case "integer coefficients unscaled" `Quick test_emit_poly_int_integer_coeffs ]
      @ qsuite [ prop_emit_poly_eval ] ) ]
