(* Tests for the closed-form solvers: for polynomials constructed from
   known roots, the symbolic candidate set must contain every root
   (under principal-branch complex evaluation). *)

module P = Polymath.Polynomial
module Q = Zmath.Rat
module E = Symx.Expr
module S = Rootsolve.Solver

let no_env _ = Complex.zero

(* (x - r1)(x - r2)... as a univariate with constant coefficients *)
let poly_of_roots leading roots =
  let x = P.var "x" in
  let p =
    List.fold_left (fun acc r -> P.mul acc (P.sub x (P.of_int r))) (P.of_int leading) roots
  in
  S.of_poly ~unknown:"x" p

let candidates_contain u roots =
  let cands = S.candidates u in
  let values = List.map (fun e -> E.eval_complex no_env e) cands in
  List.for_all
    (fun r ->
      List.exists
        (fun (z : Complex.t) ->
          Float.abs (z.re -. float_of_int r) < 1e-6 && Float.abs z.im < 1e-6)
        values)
    roots

let test_of_poly_rejects_nonlinear_unknown () =
  (* a coefficient mentioning the unknown is a misuse *)
  Alcotest.(check bool) "degree extraction" true
    (S.degree (S.of_poly ~unknown:"x" (P.mul (P.var "x") (P.var "y"))) = 1)

let test_degree () =
  Alcotest.(check int) "deg 3" 3 (S.degree (poly_of_roots 2 [ 1; 2; 3 ]));
  Alcotest.(check int) "deg 0" 0 (S.degree (S.of_poly ~unknown:"x" P.one));
  Alcotest.(check int) "deg -1 for zero" (-1) (S.degree (S.of_poly ~unknown:"x" P.zero))

let test_linear () =
  Alcotest.(check bool) "root 7" true (candidates_contain (poly_of_roots 3 [ 7 ]) [ 7 ]);
  Alcotest.(check bool) "root -4" true (candidates_contain (poly_of_roots 1 [ -4 ]) [ -4 ])

let test_quadratic () =
  Alcotest.(check bool) "roots 2,5" true (candidates_contain (poly_of_roots 1 [ 2; 5 ]) [ 2; 5 ]);
  Alcotest.(check bool) "roots -3,-3" true (candidates_contain (poly_of_roots 2 [ -3; -3 ]) [ -3 ]);
  Alcotest.(check bool) "roots 0,9" true (candidates_contain (poly_of_roots (-1) [ 0; 9 ]) [ 0; 9 ])

let test_cubic () =
  Alcotest.(check bool) "roots 1,2,3" true
    (candidates_contain (poly_of_roots 1 [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  Alcotest.(check bool) "roots -1,0,4" true
    (candidates_contain (poly_of_roots 2 [ -1; 0; 4 ]) [ -1; 0; 4 ]);
  Alcotest.(check bool) "triple root 2" true (candidates_contain (poly_of_roots 1 [ 2; 2; 2 ]) [ 2 ])

let test_quartic () =
  Alcotest.(check bool) "roots 1,2,3,4" true
    (candidates_contain (poly_of_roots 1 [ 1; 2; 3; 4 ]) [ 1; 2; 3; 4 ]);
  Alcotest.(check bool) "roots -2,-1,1,2 (biquadratic)" true
    (candidates_contain (poly_of_roots 1 [ -2; -1; 1; 2 ]) [ -2; -1; 1; 2 ]);
  Alcotest.(check bool) "roots 0,0,3,5" true
    (candidates_contain (poly_of_roots 3 [ 0; 0; 3; 5 ]) [ 0; 3; 5 ])

let test_unsupported_degree () =
  Alcotest.(check bool) "degree 5 raises" true
    (try
       ignore (S.candidates (poly_of_roots 1 [ 1; 2; 3; 4; 5 ]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "degree 0 raises" true
    (try
       ignore (S.candidates (S.of_poly ~unknown:"x" P.one));
       false
     with Invalid_argument _ -> true)

(* symbolic coefficients: solve r(x, lexmin) - pc = 0 for the
   correlation ranking and check the root matches at sample points *)
let test_symbolic_coefficients () =
  (* r(i, i+1) - pc where r = (2iN - i^2 - 3i + 2j)/2 *)
  let i = P.var "x" and n = P.var "N" and pc = P.var "pc" in
  let r =
    P.scale Q.half
      (P.add
         (P.sub (P.scale (Q.of_int 2) (P.mul i n)) (P.mul i i))
         (P.sub (P.scale (Q.of_int 2) (P.add i P.one)) (P.scale (Q.of_int 3) i)))
  in
  let u = S.of_poly ~unknown:"x" (P.sub r pc) in
  Alcotest.(check int) "quadratic in x" 2 (S.degree u);
  let cands = S.candidates u in
  Alcotest.(check int) "two candidates" 2 (List.length cands);
  (* at N=10, pc=1 one candidate must evaluate to x=0 *)
  let env = function
    | "N" -> { Complex.re = 10.0; im = 0.0 }
    | "pc" -> { Complex.re = 1.0; im = 0.0 }
    | _ -> Complex.zero
  in
  Alcotest.(check bool) "x=0 candidate exists" true
    (List.exists
       (fun e ->
         let z = E.eval_complex env e in
         Float.abs z.Complex.re < 1e-9 && Float.abs z.Complex.im < 1e-9)
       cands)

let prop_random_roots =
  QCheck.Test.make ~name:"candidates contain all constructed roots (deg 1-4)" ~count:300
    (QCheck.pair
       (QCheck.int_range 1 4)
       (QCheck.pair
          (QCheck.int_range 1 3)
          (QCheck.list_of_size (QCheck.Gen.int_range 1 4) (QCheck.int_range (-6) 6))))
    (fun (deg, (lead, roots)) ->
      let roots = List.filteri (fun i _ -> i < deg) roots in
      QCheck.assume (List.length roots = deg);
      candidates_contain (poly_of_roots lead roots) roots)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [ ( "rootsolve",
      [ Alcotest.test_case "of_poly and degree" `Quick test_degree;
        Alcotest.test_case "nonlinear coeff view" `Quick test_of_poly_rejects_nonlinear_unknown;
        Alcotest.test_case "linear" `Quick test_linear;
        Alcotest.test_case "quadratic" `Quick test_quadratic;
        Alcotest.test_case "cubic (Cardano)" `Quick test_cubic;
        Alcotest.test_case "quartic (Descartes/Ferrari)" `Quick test_quartic;
        Alcotest.test_case "unsupported degrees" `Quick test_unsupported_degree;
        Alcotest.test_case "symbolic parametric coefficients" `Quick test_symbolic_coefficients ]
      @ qsuite [ prop_random_roots ] ) ]
