(* Tests for the C front-end: lexer, loop-header parser, region finding
   and source rewriting. *)

module A = Polymath.Affine
module Q = Zmath.Rat

let aff terms c = A.make (List.map (fun (x, k) -> (x, Q.of_int k)) terms) (Q.of_int c)
let affine = Alcotest.testable A.pp A.equal

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* -------- lexer -------- *)

let test_lexer_tokens () =
  let l = Cfront.Lexer.create "for (i = 0; i <= N_1 - 2; i += 1)" ~pos:0 in
  let toks = ref [] in
  let rec drain () =
    match Cfront.Lexer.next l with
    | Cfront.Token.Eof -> ()
    | t ->
      toks := t :: !toks;
      drain ()
  in
  drain ();
  Alcotest.(check (list string))
    "token stream"
    [ "for"; "("; "i"; "="; "0"; ";"; "i"; "<="; "N_1"; "-"; "2"; ";"; "i"; "+="; "1"; ")" ]
    (List.rev_map Cfront.Token.to_string !toks |> List.rev |> List.rev)

let test_lexer_comments () =
  let l = Cfront.Lexer.create "a /* skip */ + // line\n b" ~pos:0 in
  Alcotest.(check string) "a" "a" (Cfront.Token.to_string (Cfront.Lexer.next l));
  Alcotest.(check string) "+" "+" (Cfront.Token.to_string (Cfront.Lexer.next l));
  Alcotest.(check string) "b" "b" (Cfront.Token.to_string (Cfront.Lexer.next l))

let test_lexer_peek_pos () =
  let l = Cfront.Lexer.create "  foo bar" ~pos:0 in
  Alcotest.(check string) "peek" "foo" (Cfront.Token.to_string (Cfront.Lexer.peek l));
  Alcotest.(check int) "pos at token start" 2 (Cfront.Lexer.pos l);
  ignore (Cfront.Lexer.next l);
  ignore (Cfront.Lexer.peek l);
  Alcotest.(check int) "pos at next token" 6 (Cfront.Lexer.pos l)

(* -------- affine parsing -------- *)

let parse_affine s =
  let l = Cfront.Lexer.create s ~pos:0 in
  Cfront.Parser.affine l

let test_parse_affine () =
  Alcotest.check affine "i + 1" (aff [ ("i", 1) ] 1) (parse_affine "i + 1");
  Alcotest.check affine "N - 2*i" (aff [ ("N", 1); ("i", -2) ] 0) (parse_affine "N - 2*i");
  Alcotest.check affine "2*(i + 3) - i" (aff [ ("i", 1) ] 6) (parse_affine "2*(i + 3) - i");
  Alcotest.check affine "-i + -2" (aff [ ("i", -1) ] (-2)) (parse_affine "-i + -2");
  Alcotest.check affine "i*3" (aff [ ("i", 3) ] 0) (parse_affine "i*3")

let test_parse_affine_rejects () =
  Alcotest.(check bool) "i*j rejected" true
    (try
       ignore (parse_affine "i*j");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "division rejected" true
    (try
       ignore (parse_affine "i/2");
       false
     with Failure _ -> true)

(* -------- for headers -------- *)

let parse_header s =
  let l = Cfront.Lexer.create s ~pos:0 in
  Cfront.Parser.for_header l

let test_parse_header_forms () =
  let h = parse_header "for (i = 0; i < N; i++)" in
  Alcotest.(check string) "var" "i" h.Cfront.Parser.var;
  Alcotest.check affine "lower" (aff [] 0) h.Cfront.Parser.lower;
  Alcotest.check affine "upper" (aff [ ("N", 1) ] 0) h.Cfront.Parser.upper;
  (* <= normalizes to exclusive upper + 1 *)
  let le = parse_header "for (j = i + 1; j <= N - 1; j++)" in
  Alcotest.check affine "<= upper" (aff [ ("N", 1) ] 0) le.Cfront.Parser.upper;
  (* declaration, pre-increment, += 1 *)
  let decl = parse_header "for (long k = j; k < i + 1; ++k)" in
  Alcotest.(check string) "declared var" "k" decl.Cfront.Parser.var;
  let pluseq = parse_header "for (t = 0; t < T; t += 1)" in
  Alcotest.(check string) "plus-eq var" "t" pluseq.Cfront.Parser.var;
  Alcotest.(check int) "unit stride" 1 pluseq.Cfront.Parser.stride;
  let strided = parse_header "for (t = 0; t < T; t += 4)" in
  Alcotest.(check int) "stride 4" 4 strided.Cfront.Parser.stride

let test_parse_header_rejects () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (src ^ " rejected") true
        (try
           ignore (parse_header src);
           false
         with Failure _ -> true))
    [ "for (i = 0; i < N; i -= 1)" (* negative direction *);
      "for (i = 0; i > N; i++)" (* > condition *);
      "for (i = 0; j < N; i++)" (* condition on wrong var *);
      "while (1)" ]

let test_normalize_strides () =
  (* for (i = 0; i < 4*N; i += 4) -> i__u in [0, N), i = 4*i__u *)
  let headers = [ parse_header "for (i = 0; i < 4*N; i += 4)" ] in
  let normalized, recon = Cfront.Parser.normalize_strides headers in
  (match normalized with
  | [ h ] ->
    Alcotest.(check string) "surrogate name" "i__u" h.Cfront.Parser.var;
    Alcotest.(check int) "stride gone" 1 h.Cfront.Parser.stride;
    Alcotest.check affine "unit lower" (aff [] 0) h.Cfront.Parser.lower;
    Alcotest.check affine "trip upper" (aff [ ("N", 1) ] 0) h.Cfront.Parser.upper
  | _ -> Alcotest.fail "expected one header");
  (match recon with
  | [ (v, a) ] ->
    Alcotest.(check string) "reconstructed var" "i" v;
    Alcotest.check affine "i = 4*i__u" (aff [ ("i__u", 4) ] 0) a
  | _ -> Alcotest.fail "expected one reconstruction");
  (* constant remainder: for (i = 1; i < 10; i += 4) covers 1,5,9 -> 3 trips *)
  let h2, _ = Cfront.Parser.normalize_strides [ parse_header "for (i = 1; i < 10; i += 4)" ] in
  Alcotest.check affine "ceil(9/4) = 3" (aff [] 3) (List.hd h2).Cfront.Parser.upper;
  (* inner bound referencing the strided outer gets substituted *)
  let hs =
    [ parse_header "for (i = 0; i < 2*N; i += 2)"; parse_header "for (j = i; j < 2*N; j++)" ]
  in
  let normalized, _ = Cfront.Parser.normalize_strides hs in
  (match normalized with
  | [ _; hj ] -> Alcotest.check affine "j lower = 2*i__u" (aff [ ("i__u", 2) ] 0) hj.Cfront.Parser.lower
  | _ -> Alcotest.fail "expected two headers");
  (* indivisible coefficient rejected *)
  Alcotest.(check bool) "N not divisible by 3" true
    (try
       ignore (Cfront.Parser.normalize_strides [ parse_header "for (i = 0; i < N; i += 3)" ]);
       false
     with Failure _ -> true)

let test_nest_of_headers () =
  let headers =
    [ parse_header "for (i = 0; i < N - 1; i++)"; parse_header "for (j = i + 1; j < N; j++)" ]
  in
  let nest = Cfront.Parser.nest_of_headers headers in
  Alcotest.(check (list string)) "params inferred" [ "N" ] nest.Trahrhe.Nest.params;
  Alcotest.(check (list string)) "iterators" [ "i"; "j" ] (Trahrhe.Nest.level_vars nest)

(* -------- regions -------- *)

let sample_source =
  {|
int main(void) {
  long i, j;
  /* rectangular: must be left to OpenMP itself */
  #pragma omp parallel for collapse(2)
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++)
      a[i][j] = 0;

  #pragma omp parallel for schedule(static) collapse(2)
  for (i = 0; i < N - 1; i++)
    for (j = i + 1; j < N; j++) {
      a[i][j] += 1;
    }

  #pragma omp parallel for
  for (i = 0; i < N; i++)
    b[i] = 0;
  return 0;
}
|}

let test_find_regions () =
  let regions = Cfront.Transform.find_regions sample_source in
  Alcotest.(check int) "only the non-rectangular collapse" 1 (List.length regions);
  let r = List.hd regions in
  Alcotest.(check int) "collapse arg" 2 r.Cfront.Transform.collapse;
  Alcotest.(check (list string)) "params" [ "N" ] r.Cfront.Transform.nest.Trahrhe.Nest.params;
  Alcotest.(check string) "body extracted" "a[i][j] += 1;" r.Cfront.Transform.body

let test_transform_source () =
  let out, count = Cfront.Transform.transform_source sample_source in
  Alcotest.(check int) "one construct" 1 count;
  Alcotest.(check bool) "marker" true (contains ~needle:"collapsed by nonrect-collapse" out);
  Alcotest.(check bool) "pc loop" true (contains ~needle:"pc <= ((long)N*N - (long)N)/2" out);
  Alcotest.(check bool) "rectangular untouched" true
    (contains ~needle:"for (j = 0; j < M; j++)" out);
  Alcotest.(check bool) "plain loop untouched" true (contains ~needle:"b[i] = 0;" out);
  Alcotest.(check bool) "original construct replaced" true
    (not (contains ~needle:"for (j = i + 1; j < N; j++)" out))

let test_transform_idempotent_on_plain () =
  let src = "int f(void) { return 1; }\n" in
  let out, count = Cfront.Transform.transform_source src in
  Alcotest.(check int) "no regions" 0 count;
  Alcotest.(check string) "unchanged" src out

let test_transform_single_statement_body () =
  let src =
    "#pragma omp for collapse(2)\nfor (i = 0; i < N; i++)\n  for (j = i; j < N; j++)\n    a[i] += j;\n"
  in
  let regions = Cfront.Transform.find_regions src in
  Alcotest.(check int) "found" 1 (List.length regions);
  Alcotest.(check string) "unbraced body" "a[i] += j;"
    (List.hd regions).Cfront.Transform.body

let test_transform_schemes_differ () =
  let naive, _ =
    Cfront.Transform.transform_source
      ~options:{ Cfront.Transform.default_options with scheme = Cfront.Transform.Naive }
      sample_source
  in
  let pt, _ = Cfront.Transform.transform_source sample_source in
  Alcotest.(check bool) "naive has no flag" true (not (contains ~needle:"first_iteration" naive));
  Alcotest.(check bool) "per-thread has flag" true (contains ~needle:"first_iteration" pt)

let test_multiple_regions () =
  let src =
    {|
#pragma omp parallel for collapse(2)
for (i = 0; i < N; i++)
  for (j = i; j < N; j++)
    a[i] += j;

#pragma omp parallel for collapse(3)
for (x = 0; x < P; x++)
  for (y = 0; y < x + 1; y++)
    for (z = y; z < x + 1; z++)
      b[x] += z;
|}
  in
  let regions = Cfront.Transform.find_regions src in
  Alcotest.(check int) "two regions" 2 (List.length regions);
  Alcotest.(check (list int)) "collapse args" [ 2; 3 ]
    (List.map (fun r -> r.Cfront.Transform.collapse) regions);
  let out, count = Cfront.Transform.transform_source src in
  Alcotest.(check int) "both transformed" 2 count;
  (* both constructs replaced: no residual inner loop headers *)
  Alcotest.(check bool) "no residual loops" true
    (not (contains ~needle:"for (z = y" out))

let test_transform_file_roundtrip () =
  let dir = Filename.temp_file "cfront_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () ->
      let input = Filename.concat dir "in.c" in
      let output = Filename.concat dir "out.c" in
      let oc = open_out input in
      output_string oc sample_source;
      close_out oc;
      let count = Cfront.Transform.transform_file ~input ~output () in
      Alcotest.(check int) "one construct" 1 count;
      let ic = open_in output in
      let transformed = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "output written" true
        (contains ~needle:"collapsed by nonrect-collapse" transformed))

let test_imperfect_nesting_rejected () =
  (* a statement between the collapse(2) loops is not a perfect nest:
     the parser must fail loudly, not mis-transform *)
  let src =
    "#pragma omp for collapse(2)\nfor (i = 0; i < N; i++) {\n  s += 1;\n  for (j = i; j < N; j++)\n    a[i] += j;\n}\n"
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Cfront.Transform.find_regions src);
       false
     with Failure _ -> true)

let test_transform_fixpoint () =
  (* the rewritten source contains no further collapsible regions:
     transforming twice is the identity after the first pass *)
  let once, n1 = Cfront.Transform.transform_source sample_source in
  Alcotest.(check int) "first pass transforms" 1 n1;
  let twice, n2 = Cfront.Transform.transform_source once in
  Alcotest.(check int) "second pass finds nothing" 0 n2;
  Alcotest.(check string) "fixpoint" once twice

let test_example_fixtures_transform () =
  (* the shipped examples/c fixtures must keep transforming cleanly *)
  let root =
    let rec search dir depth =
      if depth > 6 then None
      else if Sys.file_exists (Filename.concat dir "examples/c/correlation.c") then Some dir
      else search (Filename.concat dir "..") (depth + 1)
    in
    search (Sys.getcwd ()) 0
  in
  match root with
  | None -> Alcotest.skip ()
  | Some root ->
    List.iter
      (fun f ->
        let path = Filename.concat root ("examples/c/" ^ f) in
        let ic = open_in_bin path in
        let src = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let _, count = Cfront.Transform.transform_source src in
        Alcotest.(check int) (f ^ " transforms") 1 count)
      [ "correlation.c"; "tetrahedral.c"; "strided.c" ]

let test_transform_pragma_continuation () =
  (* backslash-continued pragma lines must be scanned to their real end *)
  let src =
    "#pragma omp parallel for private(j) \\\n  schedule(static) collapse(2)\nfor (i = 0; i < N; i++)\n  for (j = i; j < N; j++)\n    a[i][j] = 1;\n"
  in
  let regions = Cfront.Transform.find_regions src in
  Alcotest.(check int) "continued pragma found" 1 (List.length regions)

let suites =
  [ ( "cfront.lexer",
      [ Alcotest.test_case "token stream" `Quick test_lexer_tokens;
        Alcotest.test_case "comments skipped" `Quick test_lexer_comments;
        Alcotest.test_case "peek and positions" `Quick test_lexer_peek_pos ] );
    ( "cfront.parser",
      [ Alcotest.test_case "affine expressions" `Quick test_parse_affine;
        Alcotest.test_case "non-affine rejected" `Quick test_parse_affine_rejects;
        Alcotest.test_case "for header forms" `Quick test_parse_header_forms;
        Alcotest.test_case "unsupported headers rejected" `Quick test_parse_header_rejects;
        Alcotest.test_case "stride normalization" `Quick test_normalize_strides;
        Alcotest.test_case "nest construction" `Quick test_nest_of_headers ] );
    ( "cfront.transform",
      [ Alcotest.test_case "region discovery" `Quick test_find_regions;
        Alcotest.test_case "source rewriting" `Quick test_transform_source;
        Alcotest.test_case "no-op without regions" `Quick test_transform_idempotent_on_plain;
        Alcotest.test_case "single-statement body" `Quick test_transform_single_statement_body;
        Alcotest.test_case "schemes differ" `Quick test_transform_schemes_differ;
        Alcotest.test_case "multiple regions" `Quick test_multiple_regions;
        Alcotest.test_case "transform_file roundtrip" `Quick test_transform_file_roundtrip;
        Alcotest.test_case "imperfect nesting rejected" `Quick test_imperfect_nesting_rejected;
        Alcotest.test_case "transform is a fixpoint" `Quick test_transform_fixpoint;
        Alcotest.test_case "shipped C fixtures transform" `Quick test_example_fixtures_transform;
        Alcotest.test_case "pragma line continuation" `Quick test_transform_pragma_continuation ] ) ]
