(* Regression tests pinning the *shape* of the paper's evaluation
   results: these are the claims EXPERIMENTS.md makes, kept true by CI
   rather than by hand. *)

module K = Kernels.Kernel
module Sim = Ompsim.Sim
module Sched = Ompsim.Schedule

let threads = 12

let base_ov =
  { Sim.fork_join = Ompsim.Calibrate.default_fork_join;
    dispatch = Ompsim.Calibrate.default_dispatch;
    chunk_start = 0.0;
    per_iter = 0.0 }

let coll_ov =
  { base_ov with
    chunk_start = Ompsim.Calibrate.default_recovery;
    per_iter = Ompsim.Calibrate.default_increment }

(* smaller-than-default sizes keep the suite fast; shapes are size
   invariant for these kernels *)
let sim_n (k : K.t) = max 12 (k.K.default_n / 4)

let gains (k : K.t) =
  let n = sim_n k in
  let outer = k.K.outer_costs ~n and coll = k.K.collapsed_costs ~n in
  let m costs sched ov = (Sim.run ~costs ~schedule:sched ~nthreads:threads ~overheads:ov).Sim.makespan in
  let ts = m outer Sched.Static base_ov in
  let td = m outer (Sched.Dynamic 1) base_ov in
  let tc = m coll Sched.Static coll_ov in
  (Sim.gain ~baseline:ts ~improved:tc, Sim.gain ~baseline:td ~improved:tc)

let test_fig9_all_gain_vs_static () =
  (* paper: every program gains significantly over schedule(static) *)
  List.iter
    (fun (k : K.t) ->
      let g_static, _ = gains k in
      Alcotest.(check bool)
        (Printf.sprintf "%s gains vs static (%.1f%%)" k.K.name (100. *. g_static))
        true (g_static > 0.10))
    Kernels.Registry.kernels

let test_fig9_ltmp_anomaly () =
  (* paper: "For ltmp, option dynamic performs significantly better" *)
  let k = Option.get (Kernels.Registry.find "ltmp") in
  let _, g_dyn = gains k in
  Alcotest.(check bool)
    (Printf.sprintf "dynamic beats collapsed ltmp (%.1f%%)" (100. *. g_dyn))
    true (g_dyn < -0.20)

let test_fig9_others_hold_against_dynamic () =
  (* paper: collapsed loops outperform dynamic or come very close *)
  List.iter
    (fun (k : K.t) ->
      if k.K.name <> "ltmp" then begin
        let _, g_dyn = gains k in
        Alcotest.(check bool)
          (Printf.sprintf "%s vs dynamic (%.1f%%)" k.K.name (100. *. g_dyn))
          true (g_dyn > -0.05)
      end)
    Kernels.Registry.kernels

let test_fig9_triangles_near_half () =
  (* 2:1 triangle imbalance bounds the static gain near 50% at 12
     threads for the heavy triangular kernels *)
  List.iter
    (fun name ->
      let k = Option.get (Kernels.Registry.find name) in
      let g_static, _ = gains k in
      Alcotest.(check bool)
        (Printf.sprintf "%s around 45-50%% (%.1f%%)" name (100. *. g_static))
        true
        (g_static > 0.40 && g_static < 0.55))
    [ "correlation"; "syrk"; "syr2k" ]

let test_fig2_shares () =
  let k = Option.get (Kernels.Registry.find "correlation") in
  let rows = k.K.outer_costs ~n:1000 in
  let blocks = Sched.static_blocks ~nthreads:5 ~n:(Array.length rows) in
  let total = Array.fold_left ( +. ) 0.0 rows in
  let share t =
    let start, len = blocks.(t) in
    let w = ref 0.0 in
    for q = start to start + len - 1 do
      w := !w +. rows.(q)
    done;
    !w /. total
  in
  (* triangle slices follow the 9:7:5:3:1 progression *)
  Alcotest.(check (float 0.01)) "thread 0 share" 0.36 (share 0);
  Alcotest.(check (float 0.01)) "thread 4 share" 0.04 (share 4);
  Alcotest.(check bool) "monotone decreasing" true
    (share 0 > share 1 && share 1 > share 2 && share 2 > share 3 && share 3 > share 4)

let test_fig8_parallel_curves () =
  (* §IV-D: the curves r(i,0,0) - pc are parallel: same shape for every
     pc, so root count/order never changes *)
  let module A = Polymath.Affine in
  let module Q = Zmath.Rat in
  let aff terms c = A.make (List.map (fun (v, k) -> (v, Q.of_int k)) terms) (Q.of_int c) in
  let nest =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
        { var = "j"; lower = aff [] 0; upper = aff [ ("i", 1) ] 1 };
        { var = "k"; lower = aff [ ("j", 1) ] 0; upper = aff [ ("i", 1) ] 1 } ]
  in
  let inv = Trahrhe.Inversion.invert_exn nest in
  let r = inv.Trahrhe.Inversion.r_sub.(0) in
  let eval i = Polymath.Polynomial.eval_float (function "i" -> i | _ -> 10.0) r in
  (* difference between pc-curves is exactly the pc shift, for any i *)
  List.iter
    (fun i ->
      let v = eval i in
      Alcotest.(check (float 1e-9)) "parallel shift" 1.0 ((v -. 1.0) -. (v -. 2.0)))
    [ -2.5; 0.0; 1.5; 3.0 ];
  (* r(0,0,0) = 1: the first iteration has rank one *)
  Alcotest.(check (float 1e-9)) "r(0,0,0)=1" 1.0 (eval 0.0)

let test_fig10_checksums_and_sign () =
  (* serial collapsed runs must compute the same values; overhead must
     stay far below the parallel gains (paper's conclusion) *)
  List.iter
    (fun name ->
      let k = Option.get (Kernels.Registry.find name) in
      let n = max 8 (k.K.fig10_n / 4) in
      let o = k.K.serial_original ~n in
      let c = k.K.serial_collapsed ~n ~recoveries:12 in
      Alcotest.(check bool) (name ^ " checksum") true
        (Float.abs (o -. c) <= 1e-9 *. Float.max 1.0 (Float.abs o)))
    [ "correlation"; "covariance"; "symm"; "utma"; "ltmp" ]

let test_a2_fdtd_crossover () =
  (* collapsing a 28-wavefront rhomboid pays off only once threads no
     longer divide the wavefront count *)
  let k = Option.get (Kernels.Registry.find "fdtd_skewed") in
  let n = 4000 in
  let outer = k.K.outer_costs ~n and coll = k.K.collapsed_costs ~n in
  let gain t =
    let ts = (Sim.run ~costs:outer ~schedule:Sched.Static ~nthreads:t ~overheads:base_ov).Sim.makespan in
    let tc = (Sim.run ~costs:coll ~schedule:Sched.Static ~nthreads:t ~overheads:coll_ov).Sim.makespan in
    Sim.gain ~baseline:ts ~improved:tc
  in
  Alcotest.(check bool) "4 threads: no benefit (28 divides evenly)" true
    (Float.abs (gain 4) < 0.05);
  Alcotest.(check bool) "12 threads: benefit" true (gain 12 > 0.15);
  Alcotest.(check bool) "96 threads: large benefit" true (gain 96 > 0.5)

let test_a1_chunk_sweep_monotone () =
  (* growing chunks cannot beat once-per-thread static recovery *)
  let k = Option.get (Kernels.Registry.find "correlation") in
  let coll = k.K.collapsed_costs ~n:500 in
  let m sched =
    (Sim.run ~costs:coll ~schedule:sched ~nthreads:threads ~overheads:coll_ov).Sim.makespan
  in
  let static = m Sched.Static in
  List.iter
    (fun chunk ->
      Alcotest.(check bool)
        (Printf.sprintf "chunk %d >= static" chunk)
        true
        (m (Sched.Static_chunk chunk) >= static *. 0.999))
    [ 16; 256; 4096; 65536 ]

let suites =
  [ ( "figures",
      [ Alcotest.test_case "fig9: every kernel gains vs static" `Quick test_fig9_all_gain_vs_static;
        Alcotest.test_case "fig9: ltmp loses to dynamic (paper anomaly)" `Quick test_fig9_ltmp_anomaly;
        Alcotest.test_case "fig9: others hold vs dynamic" `Quick test_fig9_others_hold_against_dynamic;
        Alcotest.test_case "fig9: triangular gains near 50%" `Quick test_fig9_triangles_near_half;
        Alcotest.test_case "fig2: 9:7:5:3:1 static shares" `Quick test_fig2_shares;
        Alcotest.test_case "fig8: parallel curves (§IV-D)" `Quick test_fig8_parallel_curves;
        Alcotest.test_case "fig10: checksums hold serially" `Slow test_fig10_checksums_and_sign;
        Alcotest.test_case "a2: fdtd thread crossover" `Quick test_a2_fdtd_crossover;
        Alcotest.test_case "a1: static dominates chunking" `Quick test_a1_chunk_sweep_monotone ] ) ]
