test/test_looptrans.ml: Alcotest Array Codegen Hashtbl List Looptrans Polymath Printf String Trahrhe Zmath
