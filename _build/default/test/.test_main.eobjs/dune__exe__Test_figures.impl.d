test/test_figures.ml: Alcotest Array Float Kernels List Ompsim Option Polymath Printf Trahrhe Zmath
