test/test_zmath.ml: Alcotest List Printf QCheck QCheck_alcotest Zmath
