test/test_symx.ml: Alcotest Complex Float List Polymath QCheck QCheck_alcotest Symx Zmath
