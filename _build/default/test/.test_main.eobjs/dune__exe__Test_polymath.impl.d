test/test_polymath.ml: Alcotest Format List Option Polymath QCheck QCheck_alcotest Zmath
