test/test_integration.ml: Alcotest Cfront Codegen Filename Fun Lazy List Looptrans Polymath Printf String Sys Trahrhe Unix Zmath
