test/test_cfront.ml: Alcotest Cfront Filename Fun List Polymath String Sys Trahrhe Zmath
