test/test_xforms.ml: Alcotest Array Complex Float Hashtbl List Ompsim Polymath Printf QCheck QCheck_alcotest Symx Trahrhe Zmath
