test/test_polyhedral.ml: Alcotest List Polyhedral Polymath Printf QCheck QCheck_alcotest String Zmath
