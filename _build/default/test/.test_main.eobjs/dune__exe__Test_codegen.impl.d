test/test_codegen.ml: Alcotest C_ast C_print Codegen Imperfect Lazy List Polymath Printf Schemes String Trahrhe Zmath
