test/test_kernels.ml: Alcotest Array Float Hashtbl Kernels List Ompsim Option Printf Trahrhe
