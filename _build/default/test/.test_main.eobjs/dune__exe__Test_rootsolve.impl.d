test/test_rootsolve.ml: Alcotest Complex Float List Polymath QCheck QCheck_alcotest Rootsolve Symx Zmath
