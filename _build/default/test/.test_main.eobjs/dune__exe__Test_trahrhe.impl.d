test/test_trahrhe.ml: Alcotest Array Float Format Kernels List Polymath Printf QCheck QCheck_alcotest Symx Trahrhe Zmath
