test/test_ompsim.ml: Alcotest Array Float Fun List Ompsim Printf QCheck QCheck_alcotest
