(* Tests for the zmath substrate: Bigint, Rat, Binomial, Bernoulli,
   Faulhaber. Properties compare against native int arithmetic on ranges
   where it cannot overflow. *)

module B = Zmath.Bigint
module Q = Zmath.Rat

let bigint = Alcotest.testable B.pp B.equal
let rat = Alcotest.testable Q.pp Q.equal

(* -------- Bigint unit tests -------- *)

let test_of_to_int () =
  List.iter
    (fun n -> Alcotest.(check (option int)) (string_of_int n) (Some n) (B.to_int (B.of_int n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; 1 lsl 40; -(1 lsl 40); 999999937 ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890"; "-98765432109876543210987654321" ]

let test_add_carry () =
  let big = B.of_string "1073741823" in
  (* base-1: addition must carry across the limb boundary *)
  Alcotest.check bigint "carry" (B.of_string "1073741824") (B.add big B.one)

let test_mul_large () =
  let a = B.of_string "123456789123456789" in
  let b = B.of_string "987654321987654321" in
  Alcotest.check bigint "product"
    (B.of_string "121932631356500531347203169112635269")
    (B.mul a b)

let test_divmod_exact () =
  let a = B.of_string "121932631356500531347203169112635269" in
  let b = B.of_string "987654321987654321" in
  let q, r = B.divmod a b in
  Alcotest.check bigint "q" (B.of_string "123456789123456789") q;
  Alcotest.check bigint "r" B.zero r

let test_divmod_signs () =
  (* truncated division: sign of remainder follows the dividend *)
  let check a b eq er =
    let q, r = B.divmod (B.of_int a) (B.of_int b) in
    Alcotest.check bigint (Printf.sprintf "%d/%d q" a b) (B.of_int eq) q;
    Alcotest.check bigint (Printf.sprintf "%d%%%d r" a b) (B.of_int er) r
  in
  check 7 2 3 1;
  check (-7) 2 (-3) (-1);
  check 7 (-2) (-3) 1;
  check (-7) (-2) 3 (-1)

let test_ediv_rem () =
  let check a b eq er =
    let q, r = B.ediv_rem (B.of_int a) (B.of_int b) in
    Alcotest.check bigint (Printf.sprintf "%d ediv %d" a b) (B.of_int eq) q;
    Alcotest.check bigint (Printf.sprintf "%d emod %d" a b) (B.of_int er) r
  in
  check 7 2 3 1;
  check (-7) 2 (-4) 1;
  check 7 (-2) (-3) 1;
  check (-7) (-2) 4 1

let test_gcd () =
  Alcotest.check bigint "gcd 12 18" (B.of_int 6) (B.gcd (B.of_int 12) (B.of_int 18));
  Alcotest.check bigint "gcd 0 5" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  Alcotest.check bigint "gcd -12 18" (B.of_int 6) (B.gcd (B.of_int (-12)) (B.of_int 18))

let test_pow () =
  Alcotest.check bigint "2^100"
    (B.of_string "1267650600228229401496703205376")
    (B.pow B.two 100);
  Alcotest.check bigint "x^0" B.one (B.pow (B.of_int 123) 0)

let test_compare () =
  Alcotest.(check bool) "neg < pos" true (B.compare (B.of_int (-5)) (B.of_int 3) < 0);
  Alcotest.(check bool) "mag order neg" true (B.compare (B.of_int (-5)) (B.of_int (-3)) < 0);
  Alcotest.(check bool) "big > small" true
    (B.compare (B.of_string "10000000000000000000000") (B.of_int max_int) > 0)

let test_to_float () =
  Alcotest.(check (float 1e-6)) "to_float" 1.5e20 (B.to_float (B.of_string "150000000000000000000"))

let test_of_string_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true
        (try
           ignore (B.of_string s);
           false
         with Invalid_argument _ -> true))
    [ ""; "-"; "+"; "12a"; "1.5"; "0x10" ]

let test_division_by_zero () =
  Alcotest.check_raises "divmod" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero));
  Alcotest.check_raises "rat make" Division_by_zero (fun () -> ignore (Q.make B.one B.zero));
  Alcotest.check_raises "rat inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

(* -------- Bigint properties -------- *)

let small_int = QCheck.int_range (-1_000_000) 1_000_000

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add matches int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (a, b) -> B.to_int (B.add (B.of_int a) (B.of_int b)) = Some (a + b))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul matches int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (a, b) -> B.to_int (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))

let prop_divmod_matches_int =
  QCheck.Test.make ~name:"bigint divmod matches int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.to_int q = Some (a / b) && B.to_int r = Some (a mod b))

let chunks_to_bigint digits =
  List.fold_left
    (fun acc d -> B.add (B.mul acc (B.of_int 1_000_000)) (B.of_int d))
    B.zero digits

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint string roundtrip" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 0 12) (QCheck.int_range 0 999_999))
    (fun digits ->
      let x = chunks_to_bigint digits in
      B.equal x (B.of_string (B.to_string x)))

let prop_divmod_reconstruct =
  QCheck.Test.make ~name:"bigint a = q*b + r with |r|<|b|" ~count:300
    (QCheck.pair (QCheck.list_of_size (QCheck.Gen.int_range 0 12) (QCheck.int_range 0 999_999)) small_int)
    (fun (digits, b) ->
      QCheck.assume (b <> 0);
      let a = chunks_to_bigint digits in
      let bb = B.of_int b in
      let q, r = B.divmod a bb in
      B.equal a (B.add (B.mul q bb) r) && B.compare (B.abs r) (B.abs bb) < 0)

(* -------- Rat tests -------- *)

let test_rat_normalize () =
  Alcotest.check rat "6/4 = 3/2" (Q.of_ints 3 2) (Q.of_ints 6 4);
  Alcotest.check rat "-6/-4 = 3/2" (Q.of_ints 3 2) (Q.of_ints (-6) (-4));
  Alcotest.check rat "6/-4 = -3/2" (Q.of_ints (-3) 2) (Q.of_ints 6 (-4));
  Alcotest.check rat "0/7 = 0" Q.zero (Q.of_ints 0 7)

let test_rat_arith () =
  Alcotest.check rat "1/2 + 1/3" (Q.of_ints 5 6) (Q.add Q.half (Q.of_ints 1 3));
  Alcotest.check rat "1/2 * 2/3" (Q.of_ints 1 3) (Q.mul Q.half (Q.of_ints 2 3));
  Alcotest.check rat "(1/2) / (3/4)" (Q.of_ints 2 3) (Q.div Q.half (Q.of_ints 3 4));
  Alcotest.check rat "pow" (Q.of_ints 8 27) (Q.pow (Q.of_ints 2 3) 3);
  Alcotest.check rat "pow neg" (Q.of_ints 9 4) (Q.pow (Q.of_ints 2 3) (-2))

let test_rat_floor_ceil () =
  let check s ef ec =
    let x = Q.of_string s in
    Alcotest.check bigint ("floor " ^ s) (B.of_int ef) (Q.floor x);
    Alcotest.check bigint ("ceil " ^ s) (B.of_int ec) (Q.ceil x)
  in
  check "7/2" 3 4;
  check "-7/2" (-4) (-3);
  check "4" 4 4;
  check "-4" (-4) (-4);
  check "1/3" 0 1;
  check "-1/3" (-1) 0

let test_rat_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.compare (Q.of_ints 1 3) Q.half < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.compare (Q.of_ints (-1) 2) (Q.of_ints 1 3) < 0);
  Alcotest.check rat "min" (Q.of_ints 1 3) (Q.min (Q.of_ints 1 3) Q.half);
  Alcotest.check rat "max" Q.half (Q.max (Q.of_ints 1 3) Q.half)

let test_rat_string () =
  Alcotest.(check string) "int form" "5" (Q.to_string (Q.of_int 5));
  Alcotest.(check string) "frac form" "-3/2" (Q.to_string (Q.of_ints 3 (-2)));
  Alcotest.check rat "parse frac" (Q.of_ints (-3) 2) (Q.of_string "-3/2")

let small_rat =
  QCheck.map
    (fun (n, d) -> Q.of_ints n d)
    (QCheck.pair (QCheck.int_range (-1000) 1000) (QCheck.int_range 1 1000))

let prop_rat_field =
  QCheck.Test.make ~name:"rat field laws" ~count:300
    (QCheck.triple small_rat small_rat small_rat)
    (fun (a, b, c) ->
      Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c)
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.sub (Q.add a b) b) a
      && (Q.is_zero b || Q.equal (Q.mul (Q.div a b) b) a))

let prop_rat_floor_bound =
  QCheck.Test.make ~name:"floor x <= x < floor x + 1" ~count:300 small_rat (fun x ->
      let f = Q.of_bigint (Q.floor x) in
      Q.compare f x <= 0 && Q.compare x (Q.add f Q.one) < 0)

(* -------- Binomial / Bernoulli / Faulhaber -------- *)

let test_factorial () =
  Alcotest.check bigint "10!" (B.of_int 3628800) (Zmath.Binomial.factorial 10);
  Alcotest.check bigint "0!" B.one (Zmath.Binomial.factorial 0);
  Alcotest.check bigint "20!" (B.of_string "2432902008176640000") (Zmath.Binomial.factorial 20)

let test_binomial () =
  Alcotest.check bigint "C(10,3)" (B.of_int 120) (Zmath.Binomial.binomial 10 3);
  Alcotest.check bigint "C(10,0)" B.one (Zmath.Binomial.binomial 10 0);
  Alcotest.check bigint "C(10,10)" B.one (Zmath.Binomial.binomial 10 10);
  Alcotest.check bigint "C(10,11)" B.zero (Zmath.Binomial.binomial 10 11);
  Alcotest.check bigint "C(10,-1)" B.zero (Zmath.Binomial.binomial 10 (-1));
  Alcotest.check bigint "C(52,5)" (B.of_int 2598960) (Zmath.Binomial.binomial 52 5)

let prop_pascal =
  QCheck.Test.make ~name:"Pascal triangle identity" ~count:200
    (QCheck.pair (QCheck.int_range 1 40) (QCheck.int_range 0 40))
    (fun (n, k) ->
      QCheck.assume (k <= n);
      B.equal
        (Zmath.Binomial.binomial (n + 1) k)
        (B.add (Zmath.Binomial.binomial n k) (Zmath.Binomial.binomial n (k - 1))))

let test_bernoulli () =
  let check j s =
    Alcotest.check rat (Printf.sprintf "B_%d" j) (Q.of_string s) (Zmath.Bernoulli.number j)
  in
  check 0 "1";
  check 1 "1/2";
  check 2 "1/6";
  check 3 "0";
  check 4 "-1/30";
  check 5 "0";
  check 6 "1/42";
  check 8 "-1/30";
  check 10 "5/66";
  check 12 "-691/2730"

let test_faulhaber_known () =
  (* S_1(n) = n(n+1)/2; S_2(n) = n(n+1)(2n+1)/6; S_3(n) = (n(n+1)/2)^2 *)
  let eval k n = Zmath.Faulhaber.eval_power_sum k (B.of_int n) in
  Alcotest.check rat "S_1(10)" (Q.of_int 55) (eval 1 10);
  Alcotest.check rat "S_2(10)" (Q.of_int 385) (eval 2 10);
  Alcotest.check rat "S_3(10)" (Q.of_int 3025) (eval 3 10);
  Alcotest.check rat "S_4(10)" (Q.of_int 25333) (eval 4 10);
  Alcotest.check rat "S_0(10)" (Q.of_int 11) (eval 0 10);
  Alcotest.check rat "S_3(-1) = 0" Q.zero (eval 3 (-1))

let prop_faulhaber_matches_bruteforce =
  QCheck.Test.make ~name:"Faulhaber S_k(n) = brute force" ~count:200
    (QCheck.pair (QCheck.int_range 0 6) (QCheck.int_range (-1) 50))
    (fun (k, n) ->
      let expected = ref Q.zero in
      for i = 0 to n do
        expected := Q.add !expected (Q.of_bigint (B.pow (B.of_int i) k))
      done;
      Q.equal !expected (Zmath.Faulhaber.eval_power_sum k (B.of_int n)))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [ ( "zmath.bigint",
      [ Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_to_int;
        Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
        Alcotest.test_case "add carry across limbs" `Quick test_add_carry;
        Alcotest.test_case "large multiplication" `Quick test_mul_large;
        Alcotest.test_case "exact division" `Quick test_divmod_exact;
        Alcotest.test_case "divmod sign convention" `Quick test_divmod_signs;
        Alcotest.test_case "euclidean division" `Quick test_ediv_rem;
        Alcotest.test_case "gcd" `Quick test_gcd;
        Alcotest.test_case "pow" `Quick test_pow;
        Alcotest.test_case "compare" `Quick test_compare;
        Alcotest.test_case "to_float" `Quick test_to_float;
        Alcotest.test_case "of_string rejects" `Quick test_of_string_invalid;
        Alcotest.test_case "division by zero" `Quick test_division_by_zero ]
      @ qsuite
          [ prop_add_matches_int; prop_mul_matches_int; prop_divmod_matches_int;
            prop_string_roundtrip; prop_divmod_reconstruct ] );
    ( "zmath.rat",
      [ Alcotest.test_case "normalization" `Quick test_rat_normalize;
        Alcotest.test_case "arithmetic" `Quick test_rat_arith;
        Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
        Alcotest.test_case "compare/min/max" `Quick test_rat_compare;
        Alcotest.test_case "string forms" `Quick test_rat_string ]
      @ qsuite [ prop_rat_field; prop_rat_floor_bound ] );
    ( "zmath.combinatorics",
      [ Alcotest.test_case "factorial" `Quick test_factorial;
        Alcotest.test_case "binomial" `Quick test_binomial;
        Alcotest.test_case "bernoulli numbers" `Quick test_bernoulli;
        Alcotest.test_case "faulhaber closed forms" `Quick test_faulhaber_known ]
      @ qsuite [ prop_pascal; prop_faulhaber_matches_bruteforce ] ) ]
