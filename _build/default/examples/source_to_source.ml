(* Source-to-source use of the tool: feed it a C fragment in which a
   non-rectangular nest carries an OpenMP collapse clause (which gcc
   rejects!), and print the legally collapsed rewrite.

   Run with: dune exec examples/source_to_source.exe *)

let source =
  {|#include <math.h>
#define N 1000
double a[N][N];

void kernel(void) {
  long i, j;
  /* gcc: error: 'schedule' clause may not appear on non-rectangular 'for' */
  #pragma omp parallel for schedule(static) collapse(2)
  for (i = 0; i < N; i++)
    for (j = i; j < N; j++)
      a[i][j] = a[i][j] * 0.5 + 1.0;
}
|}

let () =
  print_endline "================ input ================";
  print_string source;
  List.iter
    (fun (label, options) ->
      Printf.printf "\n================ %s ================\n" label;
      let out, count = Cfront.Transform.transform_source ~options source in
      assert (count = 1);
      print_string out)
    [ ( "per-thread recovery (default)",
        Cfront.Transform.default_options );
      ( "chunked recovery, guarded",
        { Cfront.Transform.default_options with
          scheme = Cfront.Transform.Chunked 256;
          guarded = true } );
      ( "SIMD scheme (vlength 8)",
        { Cfront.Transform.default_options with scheme = Cfront.Transform.Simd 8 } ) ]
