examples/quickstart.mli:
