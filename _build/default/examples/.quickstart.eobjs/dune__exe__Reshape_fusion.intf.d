examples/reshape_fusion.mli:
