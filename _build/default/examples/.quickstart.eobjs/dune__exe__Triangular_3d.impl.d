examples/triangular_3d.ml: Array Codegen List Polymath Printf Symx Trahrhe Zmath
