examples/triangular_3d.mli:
