examples/pluto_lite.ml: Codegen Format List Looptrans Polymath Printf Trahrhe Zmath
