examples/source_to_source.ml: Cfront List Printf
