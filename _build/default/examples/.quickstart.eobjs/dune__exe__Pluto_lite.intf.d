examples/pluto_lite.mli:
