examples/parallel_domains.ml: Array List Ompsim Polymath Printf Trahrhe Unix Zmath
