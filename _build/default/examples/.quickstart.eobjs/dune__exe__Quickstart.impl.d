examples/quickstart.ml: Array Codegen Polymath Printf Symx Trahrhe Zmath
