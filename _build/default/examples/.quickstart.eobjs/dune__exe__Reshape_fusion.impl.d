examples/reshape_fusion.ml: Array Codegen List Polymath Printf Trahrhe Zmath
