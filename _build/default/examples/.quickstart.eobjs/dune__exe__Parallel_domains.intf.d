examples/parallel_domains.mli:
