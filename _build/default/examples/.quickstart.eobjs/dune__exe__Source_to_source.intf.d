examples/source_to_source.mli:
