(* The paper's §IX outlook, implemented: executing a loop nest through
   the shape of another nest, and fusing nests of different shapes into
   one balanced parallel loop.

   Run with: dune exec examples/reshape_fusion.exe *)

module A = Polymath.Affine
module Q = Zmath.Rat

let aff terms c = A.make (List.map (fun (v, k) -> (v, Q.of_int k)) terms) (Q.of_int c)

let () =
  (* a triangular computation ... *)
  let triangle =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] (-1) };
        { var = "j"; lower = aff [ ("i", 1) ] 1; upper = aff [ ("N", 1) ] 0 } ]
  in
  (* ... executed through a rectangular A x B grid (the shape GPUs and
     plain OpenMP collapse handle natively) *)
  let rectangle =
    Trahrhe.Nest.make ~params:[ "A"; "B" ]
      [ { var = "x"; lower = aff [] 0; upper = aff [ ("A", 1) ] 0 };
        { var = "y"; lower = aff [] 0; upper = aff [ ("B", 1) ] 0 } ]
  in
  let r =
    Trahrhe.Reshape.make
      ~source:(Trahrhe.Inversion.invert_exn triangle)
      ~target:(Trahrhe.Inversion.invert_exn rectangle)
  in
  (* triangle over N=9 has 36 iterations = 4 x 9 rectangle *)
  let param = function "N" -> 9 | "A" -> 4 | "B" -> 9 | p -> failwith p in
  Printf.printf "trip counts compatible at N=9, 4x9: %b\n"
    (Trahrhe.Reshape.compatible_at r ~param);
  print_endline "rectangle (x,y)  ->  triangle (i,j):";
  Trahrhe.Reshape.iter r ~param (fun tgt src ->
      if tgt.(1) = 0 then Printf.printf "\n  row x=%d: " tgt.(0);
      Printf.printf "(%d,%d) " src.(0) src.(1));
  print_newline ();

  print_endline "\ngenerated C: a rectangular nest OpenMP can collapse natively,";
  print_endline "running the triangular statement instances in rank order:\n";
  print_string
    (Codegen.C_print.to_string
       (Codegen.Xforms.reshape r ~body:[ Codegen.C_ast.Raw "use(i, j);" ]));

  (* fusion: a triangle and a rhomboid concatenated into one pc-range *)
  let rhomboid =
    Trahrhe.Nest.make ~params:[ "M" ]
      [ { var = "u"; lower = aff [] 0; upper = aff [ ("M", 1) ] 0 };
        { var = "v"; lower = aff [ ("u", 1) ] 0; upper = aff [ ("u", 1); ("M", 1) ] 0 } ]
  in
  let f =
    Trahrhe.Fusion.fuse
      [ Trahrhe.Inversion.invert_exn triangle; Trahrhe.Inversion.invert_exn rhomboid ]
  in
  Printf.printf "\nfused trip count = %s\n"
    (Polymath.Polynomial.to_string (Trahrhe.Fusion.total_trip f));
  let param = function "N" -> 6 | "M" -> 4 | p -> failwith p in
  let counts = [| 0; 0 |] in
  Trahrhe.Fusion.iter f ~param (fun seg _ -> counts.(seg) <- counts.(seg) + 1);
  Printf.printf "one fused loop executes %d triangle + %d rhomboid iterations\n" counts.(0)
    counts.(1);
  print_endline "\ngenerated C for the fused parallel loop:\n";
  print_string
    (Codegen.C_print.to_string
       (Codegen.Xforms.fused f
          ~bodies:[ [ Codegen.C_ast.Raw "f(i, j);" ]; [ Codegen.C_ast.Raw "g(u, v);" ] ]))
