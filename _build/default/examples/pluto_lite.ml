(* The paper feeds its collapser with nests produced by Pluto (tiling,
   skewing). This example reproduces that pipeline with the built-in
   Pluto-lite transformations: tile a triangular nest and collapse the
   (still triangular!) tile loops; skew a rectangular stencil into the
   rhomboid of §I and collapse it.

   Run with: dune exec examples/pluto_lite.exe *)

module A = Polymath.Affine
module Q = Zmath.Rat

let aff terms c = A.make (List.map (fun (v, k) -> (v, Q.of_int k)) terms) (Q.of_int c)

let () =
  (* --- tiling --- *)
  let triangle =
    Trahrhe.Nest.make ~params:[ "N" ]
      [ { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 };
        { var = "j"; lower = aff [ ("i", 1) ] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  let tl = Looptrans.Tile.tile triangle ~size:32 in
  Format.printf "tile-coordinate nest (still a Fig. 5 triangle):@\n%a@\n" Trahrhe.Nest.pp
    tl.Looptrans.Tile.tile_nest;
  Printf.printf "tile trip count: %s (over Nt = N/32)\n\n"
    (Polymath.Polynomial.to_string (Trahrhe.Ranking.trip_count tl.Looptrans.Tile.tile_nest));
  print_endline "collapsed tile loops with min/max intra-tile loops:";
  print_string
    (Codegen.C_print.to_string
       (Looptrans.Tile.collapse_tiles tl ~body:[ Codegen.C_ast.Raw "a[i][j] += b[j][i];" ]));

  (* tile-major execution visits exactly the original domain *)
  let count = ref 0 in
  Looptrans.Tile.iterate tl ~param:(fun _ -> 96) (fun _ -> incr count);
  Printf.printf "\ntile-major walk of N=96 visits %d points (expected %d)\n\n" !count
    (96 * 97 / 2);

  (* --- skewing --- *)
  let stencil =
    Trahrhe.Nest.make ~params:[ "T"; "N" ]
      [ { var = "t"; lower = aff [] 0; upper = aff [ ("T", 1) ] 0 };
        { var = "i"; lower = aff [] 0; upper = aff [ ("N", 1) ] 0 } ]
  in
  let rhomboid = Looptrans.Skew.skew stencil ~level:1 ~wrt:0 ~factor:1 in
  Format.printf "skewed stencil (the paper's rhomboidal domain):@\n%a@\n" Trahrhe.Nest.pp rhomboid;
  let inv = Trahrhe.Inversion.invert_exn rhomboid in
  Printf.printf "rhomboid trip count: %s\n"
    (Polymath.Polynomial.to_string inv.Trahrhe.Inversion.trip_count);
  print_endline "collapsed rhomboid (original index rebuilt in the body):";
  print_string
    (Codegen.C_print.to_string
       (Codegen.Schemes.per_thread inv
          ~body:
            [ Codegen.C_ast.Raw
                (Printf.sprintf "s[%s] = 0.33 * (e[%s - 1] + e[%s] + e[%s + 1]);"
                   (Looptrans.Skew.unskew_expr stencil ~level:1 ~wrt:0 ~factor:1)
                   (Looptrans.Skew.unskew_expr stencil ~level:1 ~wrt:0 ~factor:1)
                   (Looptrans.Skew.unskew_expr stencil ~level:1 ~wrt:0 ~factor:1)
                   (Looptrans.Skew.unskew_expr stencil ~level:1 ~wrt:0 ~factor:1)) ]))
