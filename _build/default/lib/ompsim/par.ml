let parallel_for_chunks ~nthreads ~schedule ~n f =
  if nthreads <= 0 then invalid_arg "Par.parallel_for_chunks";
  let worker t =
    match schedule with
    | Schedule.Static ->
      let start, len = (Schedule.static_blocks ~nthreads ~n).(t) in
      if len > 0 then f ~thread:t ~start ~len
    | Schedule.Static_chunk c ->
      List.iter
        (fun (start, len) -> f ~thread:t ~start ~len)
        (Schedule.round_robin_chunks ~chunk:c ~nthreads ~n).(t)
    | Schedule.Dynamic _ | Schedule.Guided _ -> assert false
  in
  match schedule with
  | Schedule.Static | Schedule.Static_chunk _ ->
    let domains = Array.init (nthreads - 1) (fun t -> Domain.spawn (fun () -> worker (t + 1))) in
    worker 0;
    Array.iter Domain.join domains
  | Schedule.Dynamic c ->
    if c <= 0 then invalid_arg "Par: dynamic chunk";
    let next = Atomic.make 0 in
    let worker t =
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next c in
        if start >= n then continue := false
        else f ~thread:t ~start ~len:(min c (n - start))
      done
    in
    let domains = Array.init (nthreads - 1) (fun t -> Domain.spawn (fun () -> worker (t + 1))) in
    worker 0;
    Array.iter Domain.join domains
  | Schedule.Guided c ->
    if c <= 0 then invalid_arg "Par: guided chunk";
    let next = Atomic.make 0 in
    let worker t =
      let continue = ref true in
      while !continue do
        (* optimistic guided sizing: read remaining, CAS the claim *)
        let start = Atomic.get next in
        if start >= n then continue := false
        else begin
          let len = Schedule.next_guided ~chunk:c ~nthreads ~remaining:(n - start) in
          if Atomic.compare_and_set next start (start + len) then
            f ~thread:t ~start ~len:(min len (n - start))
        end
      done
    in
    let domains = Array.init (nthreads - 1) (fun t -> Domain.spawn (fun () -> worker (t + 1))) in
    worker 0;
    Array.iter Domain.join domains

let parallel_for ~nthreads ~schedule ~n f =
  parallel_for_chunks ~nthreads ~schedule ~n (fun ~thread:_ ~start ~len ->
      for q = start to start + len - 1 do
        f q
      done)
