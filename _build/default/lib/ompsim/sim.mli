(** Discrete simulation of OpenMP parallel-for execution.

    The container running this reproduction has a single CPU, so the
    paper's 12-thread wall-clock measurements (Figure 9) cannot be
    taken natively. This simulator replaces them: given the cost of
    every scheduled iteration (which for non-rectangular nests is where
    all the load imbalance lives) and a schedule, it computes each
    thread's busy time and the loop's makespan exactly — static
    schedules by direct partitioning, dynamic/guided by event-driven
    simulation with a per-dispatch overhead, mirroring the runtime
    costs the paper attributes to [schedule(dynamic)].

    Cost units are arbitrary (call them "work units"); overheads are
    expressed in the same units. *)

type overheads = {
  fork_join : float;  (** one-time parallel region cost *)
  dispatch : float;  (** cost charged per dynamically acquired chunk *)
  chunk_start : float;
      (** cost charged at each chunk start — the collapsed schemes'
          costly index recovery (§V) *)
  per_iter : float;
      (** cost added to every iteration — incrementation overhead of
          the §V scheme, or full recovery cost for the naive scheme *)
}

val no_overheads : overheads

type result = {
  makespan : float;  (** parallel execution time *)
  busy : float array;  (** per-thread busy time *)
  total_work : float;  (** sum of iteration costs without overheads *)
  chunks_dispatched : int;
  imbalance : float;
      (** makespan / (ideal distribution of the executed work),
          >= 1.0; 1.0 means perfectly balanced *)
}

(** [run ~costs ~schedule ~nthreads ~overheads] simulates one parallel
    loop whose iteration [q] costs [costs.(q)]. *)
val run :
  costs:float array -> schedule:Schedule.t -> nthreads:int -> overheads:overheads -> result

(** [serial ~costs ~overheads] is the 1-thread reference time (no
    fork/join, single chunk). *)
val serial : costs:float array -> overheads:overheads -> float

(** [gain ~baseline ~improved] is the paper's Figure 9 metric
    [(t_baseline - t_improved) / t_baseline]. *)
val gain : baseline:float -> improved:float -> float
