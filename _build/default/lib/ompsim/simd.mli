(** Vectorization model for the §VI-A scheme.

    The collapsed loop is executed in groups of [vlength] consecutive
    iterations: a scalar prologue materializes the [vlength] index
    tuples by incrementation (cost [fill] each), then the group's
    statements run vectorized — one vector operation per [vlength]
    lanes, i.e. [group_cost = max lane cost + vlength * fill]. The
    scalar baseline pays each iteration in full. Recovery is charged
    once per thread as usual. *)

type result = {
  scalar_time : float;
  vector_time : float;
  speedup : float;
}

(** [run ~costs ~vlength ~fill] models one thread executing the whole
    cost array. [fill] is the per-iteration cost of materializing one
    index tuple in the §VI-A buffer (incrementation + store). *)
val run : costs:float array -> vlength:int -> fill:float -> result
