(** OpenMP loop schedules.

    Chunk assignment reproduces libgomp's behaviour: [Static] deals one
    contiguous block per thread (first [n mod t] threads get one extra
    iteration); [Static_chunk c] deals [c]-sized chunks round-robin;
    [Dynamic c] is first-come-first-served; [Guided c] halves the
    remaining work over the thread count with a floor of [c]. *)

type t =
  | Static
  | Static_chunk of int
  | Dynamic of int
  | Guided of int

(** [to_string s] is the OpenMP clause text, e.g. ["static, 64"]. *)
val to_string : t -> string

(** [static_blocks ~nthreads ~n] is the per-thread contiguous
    [(start, len)] assignment of [Static] (len 0 for idle threads). *)
val static_blocks : nthreads:int -> n:int -> (int * int) array

(** [round_robin_chunks ~chunk ~nthreads ~n] lists each thread's
    [(start, len)] chunks under [Static_chunk chunk]. *)
val round_robin_chunks : chunk:int -> nthreads:int -> n:int -> (int * int) list array

(** [next_guided ~chunk ~nthreads ~remaining] is the size of the next
    guided chunk. *)
val next_guided : chunk:int -> nthreads:int -> remaining:int -> int
