type mapping = Coalesced | Blocked

type result = { batches : int; compute : float; transactions : int; time : float }

let run ~n ~warp ~mapping ~cost ~address ~line ~transaction_cost =
  if warp <= 0 || line <= 0 then invalid_arg "Gpu.run";
  let per_lane = (n + warp - 1) / warp in
  let iteration ~batch ~lane =
    match mapping with
    | Coalesced ->
      let q = (batch * warp) + lane in
      if q < n then Some q else None
    | Blocked ->
      let q = (lane * per_lane) + batch in
      if q < n && batch < per_lane then Some q else None
  in
  let batches = per_lane in
  let compute = ref 0.0 in
  let transactions = ref 0 in
  let lines = Hashtbl.create 64 in
  for batch = 0 to batches - 1 do
    Hashtbl.reset lines;
    let slowest = ref 0.0 in
    for lane = 0 to warp - 1 do
      match iteration ~batch ~lane with
      | None -> ()
      | Some q ->
        slowest := Float.max !slowest (cost q);
        Hashtbl.replace lines (address q / line) ()
    done;
    compute := !compute +. !slowest;
    transactions := !transactions + Hashtbl.length lines
  done;
  { batches;
    compute = !compute;
    transactions = !transactions;
    time = !compute +. (transaction_cost *. float_of_int !transactions) }
