(** GPU warp-execution model (paper §VI-B).

    The container has no GPU, so the §VI-B claim — distributing
    consecutive collapsed iterations across the threads of a warp
    achieves memory coalescing while recovery stays once-per-thread —
    is evaluated on a warp-level cost model: iterations execute in
    lockstep batches of [warp] lanes; a batch costs its slowest lane
    plus one memory transaction per distinct cache line touched. Two
    iteration-to-lane mappings are compared:

    - [Coalesced]: lane [l] of batch [b] runs collapsed iteration
      [b*W + l] (the paper's scheme — consecutive ranks in a warp);
    - [Blocked]: lane [l] runs iterations [l*ceil(n/W) + b] (contiguous
      per-lane blocks, the natural but uncoalesced mapping).

    With a row-major access function, coalesced mapping touches W
    consecutive addresses per batch (few transactions); blocked mapping
    touches W scattered rows (up to W transactions). *)

type mapping = Coalesced | Blocked

type result = {
  batches : int;  (** lockstep steps executed *)
  compute : float;  (** sum over batches of the slowest lane's cost *)
  transactions : int;  (** memory transactions issued *)
  time : float;  (** compute + transaction_cost * transactions *)
}

(** [run ~n ~warp ~mapping ~cost ~address ~line ~transaction_cost]
    simulates one warp executing [n] collapsed iterations.
    [cost q] is the compute cost of iteration [q] (0-based);
    [address q] its memory address; [line] the cache-line size in
    address units. *)
val run :
  n:int ->
  warp:int ->
  mapping:mapping ->
  cost:(int -> float) ->
  address:(int -> int) ->
  line:int ->
  transaction_cost:float ->
  result
