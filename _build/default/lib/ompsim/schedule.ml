type t =
  | Static
  | Static_chunk of int
  | Dynamic of int
  | Guided of int

let to_string = function
  | Static -> "static"
  | Static_chunk c -> Printf.sprintf "static, %d" c
  | Dynamic 1 -> "dynamic"
  | Dynamic c -> Printf.sprintf "dynamic, %d" c
  | Guided 1 -> "guided"
  | Guided c -> Printf.sprintf "guided, %d" c

let static_blocks ~nthreads ~n =
  let q = n / nthreads and r = n mod nthreads in
  let blocks = Array.make nthreads (0, 0) in
  let start = ref 0 in
  for t = 0 to nthreads - 1 do
    let len = if t < r then q + 1 else q in
    blocks.(t) <- (!start, len);
    start := !start + len
  done;
  blocks

let round_robin_chunks ~chunk ~nthreads ~n =
  if chunk <= 0 then invalid_arg "Schedule.round_robin_chunks";
  let lists = Array.make nthreads [] in
  let start = ref 0 in
  let t = ref 0 in
  while !start < n do
    let len = min chunk (n - !start) in
    lists.(!t) <- (!start, len) :: lists.(!t);
    start := !start + len;
    t := (!t + 1) mod nthreads
  done;
  Array.map List.rev lists

let next_guided ~chunk ~nthreads ~remaining =
  max (min chunk remaining) (min remaining ((remaining + (2 * nthreads) - 1) / (2 * nthreads)))
