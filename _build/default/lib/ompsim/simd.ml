type result = { scalar_time : float; vector_time : float; speedup : float }

let run ~costs ~vlength ~fill =
  if vlength <= 0 then invalid_arg "Simd.run";
  let n = Array.length costs in
  let scalar = Array.fold_left ( +. ) 0.0 costs in
  let vector = ref 0.0 in
  let q = ref 0 in
  while !q < n do
    let len = min vlength (n - !q) in
    let widest = ref 0.0 in
    for l = 0 to len - 1 do
      widest := Float.max !widest costs.(!q + l)
    done;
    vector := !vector +. !widest +. (fill *. float_of_int len);
    q := !q + len
  done;
  { scalar_time = scalar;
    vector_time = !vector;
    speedup = (if !vector = 0.0 then 1.0 else scalar /. !vector) }
