lib/ompsim/schedule.mli:
