lib/ompsim/schedule.ml: Array List Printf
