lib/ompsim/gpu.ml: Float Hashtbl
