lib/ompsim/par.mli: Schedule
