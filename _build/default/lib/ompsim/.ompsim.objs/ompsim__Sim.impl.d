lib/ompsim/sim.ml: Array Float List Schedule
