lib/ompsim/par.ml: Array Atomic Domain List Schedule
