lib/ompsim/gpu.mli:
