lib/ompsim/calibrate.ml: Float Unix
