lib/ompsim/sim.mli: Schedule
