lib/ompsim/simd.mli:
