lib/ompsim/calibrate.mli:
