lib/ompsim/simd.ml: Array Float
