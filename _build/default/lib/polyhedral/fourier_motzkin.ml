module A = Polymath.Affine
module Q = Zmath.Rat
module C = Constraint

let bounds_for x p =
  let lowers = ref [] and uppers = ref [] and rest = ref [] in
  List.iter
    (fun (c : C.t) ->
      let coef = A.coeff x c.expr in
      if Q.is_zero coef then rest := c :: !rest
      else begin
        (* c.expr = coef*x + r; the bound on x is -r/coef *)
        let r = A.subst x A.zero c.expr in
        let bound = A.scale (Q.neg (Q.inv coef)) r in
        match c.kind with
        | C.Eq ->
          lowers := bound :: !lowers;
          uppers := bound :: !uppers
        | C.Ge ->
          (* coef*x + r >= 0  <=>  x >= -r/coef (coef>0) or x <= -r/coef *)
          if Q.sign coef > 0 then lowers := bound :: !lowers
          else uppers := bound :: !uppers
      end)
    (Polyhedron.constraints p);
  (!lowers, !uppers, List.rev !rest)

let eliminate x p =
  let lowers, uppers, rest = bounds_for x p in
  let pairs =
    List.concat_map (fun lo -> List.map (fun hi -> C.ge hi lo) uppers) lowers
  in
  Polyhedron.make (pairs @ rest)

let eliminate_all xs p = List.fold_left (fun p x -> eliminate x p) p xs

let is_rationally_empty p =
  let residual = eliminate_all (Polyhedron.vars p) p in
  not (Polyhedron.mem (fun _ -> Q.zero) residual)
