(** Affine constraints over named variables.

    A constraint is either [e >= 0] or [e = 0] for an affine expression
    [e]. Integer-order comparisons of the loop world ([i < u], [i <= u],
    ...) are provided as constructors that normalize to this form. *)

module A = Polymath.Affine

type kind = Ge  (** [e >= 0] *) | Eq  (** [e = 0] *)

type t = { expr : A.t; kind : kind }

(** [ge a b] is the constraint [a >= b]. *)
val ge : A.t -> A.t -> t

(** [le a b] is the constraint [a <= b]. *)
val le : A.t -> A.t -> t

(** [lt_int a b] is the integer constraint [a < b], i.e.
    [b - a - 1 >= 0]. *)
val lt_int : A.t -> A.t -> t

(** [eq a b] is the constraint [a = b]. *)
val eq : A.t -> A.t -> t

(** [holds env c] checks [c] at a rational point. *)
val holds : (string -> Zmath.Rat.t) -> t -> bool

(** [subst x b c] substitutes affine [b] for variable [x]. *)
val subst : string -> A.t -> t -> t

val vars : t -> string list
val pp : Format.formatter -> t -> unit
