(** Ehrhart counting for nest-form iteration domains.

    A nest-form domain is a chain of levels, each with one affine lower
    and one affine upper bound (both inclusive here) that may mention
    outer level variables and free parameters — exactly the loop model
    of the paper's Fig. 5 after normalizing strict bounds. For such
    domains the number of integer points is an honest polynomial in the
    parameters (no quasi-periodic part), obtained by summing 1 through
    the levels innermost-first with {!Polymath.Summation}. This replaces
    the ISL/barvinok dependency of the original tool. *)

type level = {
  var : string;
  lo : Polymath.Affine.t;  (** inclusive lower bound *)
  hi : Polymath.Affine.t;  (** inclusive upper bound *)
}

(** [count levels] is the polynomial in the free parameters equal to
    the number of integer points, assuming every level's range is
    nonempty or exactly empty at the boundary ([hi = lo - 1]); see
    {!Polymath.Summation.sum} for the validity caveat. *)
val count : level list -> Polymath.Polynomial.t

(** [count_inner levels] gives, for each level k (outermost first), the
    polynomial counting the points of levels k+1.. below one fixed
    iteration of level k — i.e. the trip count of the sub-nest rooted
    just inside level k. The last element is the constant 1. *)
val count_inner : level list -> Polymath.Polynomial.t list

(** [to_polyhedron levels] is the constraint form of the domain. *)
val to_polyhedron : level list -> Polyhedron.t

(** [of_polyhedron p ~order ~params] converts a constraint-form domain
    (the shape ISL consumes) into nest form, eliminating variables
    innermost-first with Fourier–Motzkin and keeping, at each level,
    the single lower and single upper bound on that variable. This
    succeeds exactly for domains in the paper's Fig. 5 model; a
    variable with several independent lower (or upper) bounds — a
    domain needing [max]/[min] bounds — is reported as an error, as are
    unbounded variables. *)
val of_polyhedron :
  Polyhedron.t -> order:string list -> params:string list -> (level list, string) result

(** [enumerate levels ~param] lists all integer points (as
    [(var, value)] association lists, lexicographic order) for concrete
    parameter values; intended for validation at small sizes.
    @raise Invalid_argument if a bound evaluates to a non-integer. *)
val enumerate : level list -> param:(string -> int) -> (string * int) list list
