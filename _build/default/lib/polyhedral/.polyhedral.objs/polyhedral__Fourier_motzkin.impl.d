lib/polyhedral/fourier_motzkin.ml: Constraint List Polyhedron Polymath Zmath
