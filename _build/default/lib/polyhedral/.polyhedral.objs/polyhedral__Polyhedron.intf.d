lib/polyhedral/polyhedron.mli: Constraint Format Polymath Zmath
