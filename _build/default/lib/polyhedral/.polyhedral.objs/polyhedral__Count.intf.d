lib/polyhedral/count.mli: Polyhedron Polymath
