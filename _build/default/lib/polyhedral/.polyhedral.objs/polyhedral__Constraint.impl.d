lib/polyhedral/constraint.ml: Format Polymath Zmath
