lib/polyhedral/constraint.mli: Format Polymath Zmath
