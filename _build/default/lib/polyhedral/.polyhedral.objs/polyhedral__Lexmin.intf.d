lib/polyhedral/lexmin.mli: Count Polymath
