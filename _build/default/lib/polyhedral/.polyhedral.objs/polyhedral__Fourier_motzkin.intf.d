lib/polyhedral/fourier_motzkin.mli: Constraint Polyhedron Polymath
