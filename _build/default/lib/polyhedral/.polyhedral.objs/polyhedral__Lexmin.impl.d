lib/polyhedral/lexmin.ml: Count List Polymath
