lib/polyhedral/polyhedron.ml: Constraint Format List String
