lib/polyhedral/count.ml: Constraint Fourier_motzkin Hashtbl List Polyhedron Polymath Printf Zmath
