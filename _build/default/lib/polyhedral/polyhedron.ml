type t = Constraint.t list

let make cs = cs
let constraints p = p
let add c p = c :: p
let inter p q = p @ q
let universe = []
let vars p = List.concat_map Constraint.vars p |> List.sort_uniq String.compare
let mem env p = List.for_all (Constraint.holds env) p
let subst x b p = List.map (Constraint.subst x b) p

let pp fmt p =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " && ")
    Constraint.pp fmt p
