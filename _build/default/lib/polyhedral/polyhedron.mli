(** Convex polyhedra as conjunctions of affine constraints. *)

type t

(** [make cs] is the polyhedron defined by the conjunction of [cs]. *)
val make : Constraint.t list -> t

val constraints : t -> Constraint.t list

(** [add c p] conjoins one more constraint. *)
val add : Constraint.t -> t -> t

(** [inter p q] is the intersection. *)
val inter : t -> t -> t

val universe : t

(** [vars p] is the sorted list of variables constrained by [p]. *)
val vars : t -> string list

(** [mem env p] checks membership of a rational point. *)
val mem : (string -> Zmath.Rat.t) -> t -> bool

(** [subst x b p] substitutes affine [b] for variable [x] everywhere. *)
val subst : string -> Polymath.Affine.t -> t -> t

val pp : Format.formatter -> t -> unit
