module A = Polymath.Affine
module Q = Zmath.Rat

type kind = Ge | Eq

type t = { expr : A.t; kind : kind }

let ge a b = { expr = A.sub a b; kind = Ge }
let le a b = ge b a
let lt_int a b = { expr = A.add_const Q.minus_one (A.sub b a); kind = Ge }
let eq a b = { expr = A.sub a b; kind = Eq }

let holds env c =
  let v = A.eval env c.expr in
  match c.kind with Ge -> Q.sign v >= 0 | Eq -> Q.is_zero v

let subst x b c = { c with expr = A.subst x b c.expr }
let vars c = A.vars c.expr

let pp fmt c =
  Format.fprintf fmt "%a %s 0" A.pp c.expr (match c.kind with Ge -> ">=" | Eq -> "=")
