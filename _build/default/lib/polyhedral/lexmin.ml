let tail_minima (levels : Count.level list) ~prefix =
  if prefix < 0 || prefix > List.length levels then invalid_arg "Lexmin.tail_minima";
  let tail = List.filteri (fun i _ -> i >= prefix) levels in
  let _, acc =
    List.fold_left
      (fun (subs, acc) (l : Count.level) ->
        let m = List.fold_left (fun a (x, b) -> Polymath.Affine.subst x b a) l.lo subs in
        ((l.var, m) :: subs, (l.var, m) :: acc))
      ([], []) tail
  in
  List.rev acc

let first_point levels = tail_minima levels ~prefix:0
