(** Parametric lexicographic minima of nest-form domains.

    For a nest whose level lower bounds are affine in the outer
    iterators, the lexicographically smallest point with a fixed prefix
    [i_0..i_{n-1}] is obtained by transitively substituting lower
    bounds: level n sits at its lower bound, level n+1 at its lower
    bound evaluated there, and so on. This is the parametric-lexmin
    computation the paper delegates to ISL (Section IV-A), specialized
    to the Fig. 5 loop model. *)

(** [tail_minima levels ~prefix:n] is, for each level [n, n+1, ...]
    (0-indexed, outermost first), its variable paired with its
    lexicographic minimum as an affine expression over the variables of
    levels [0..n-1] and the free parameters.
    @raise Invalid_argument when [n] exceeds the nest depth. *)
val tail_minima : Count.level list -> prefix:int -> (string * Polymath.Affine.t) list

(** [first_point levels] is the lexicographic minimum of the whole
    domain ([tail_minima ~prefix:0]): the first iteration of the nest,
    parametrized by the size parameters only. *)
val first_point : Count.level list -> (string * Polymath.Affine.t) list
