module A = Polymath.Affine
module P = Polymath.Polynomial
module Q = Zmath.Rat

type level = { var : string; lo : A.t; hi : A.t }

let count_inner levels =
  (* innermost-first accumulation: inner_k = sum over level k+1 of inner_{k+1} *)
  let rec go = function
    | [] -> [ P.one ]
    | l :: rest ->
      let inner = go rest in
      let below = List.hd inner in
      let here =
        Polymath.Summation.sum ~var:l.var below ~lo:(A.to_poly l.lo) ~hi:(A.to_poly l.hi)
      in
      here :: inner
  in
  match levels with
  | [] -> [ P.one ]
  | _ :: rest -> go rest

let count levels =
  match levels with
  | [] -> P.one
  | l :: _ ->
    let inner = List.hd (count_inner levels) in
    Polymath.Summation.sum ~var:l.var inner ~lo:(A.to_poly l.lo) ~hi:(A.to_poly l.hi)

let to_polyhedron levels =
  Polyhedron.make
    (List.concat_map
       (fun l ->
         [ Constraint.ge (A.var l.var) l.lo; Constraint.le (A.var l.var) l.hi ])
       levels)

let of_polyhedron p ~order ~params =
  ignore params;
  (* innermost-first: extract this variable's bounds, then eliminate it
     and recurse on the outer variables *)
  let rec go p = function
    | [] -> Ok []
    | inner :: outer_rev -> (
      let lowers, uppers, _rest = Fourier_motzkin.bounds_for inner p in
      (* prune trivially redundant bounds: among bounds with identical
         variable terms, only the largest lower / smallest upper binds *)
      let prune keep bounds =
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun a ->
            let key = A.terms a in
            match Hashtbl.find_opt tbl key with
            | Some best when not (keep (A.const_part a) (A.const_part best)) -> ()
            | _ -> Hashtbl.replace tbl key a)
          bounds;
        Hashtbl.fold (fun _ a acc -> a :: acc) tbl []
      in
      let gt a b = Zmath.Rat.compare a b > 0 and lt a b = Zmath.Rat.compare a b < 0 in
      match (prune gt lowers, prune lt uppers) with
      | [], _ -> Error (Printf.sprintf "variable %s has no lower bound" inner)
      | _, [] -> Error (Printf.sprintf "variable %s has no upper bound" inner)
      | [ lo ], [ hi ] -> (
        match go (Fourier_motzkin.eliminate inner p) outer_rev with
        | Error _ as e -> e
        | Ok outer_levels -> Ok (outer_levels @ [ { var = inner; lo; hi } ]))
      | ls, us ->
        Error
          (Printf.sprintf
             "variable %s needs max/min bounds (%d lower, %d upper): outside the Fig. 5 model"
             inner (List.length ls) (List.length us)))
  in
  go p (List.rev order)

let enumerate levels ~param =
  let eval_bound env a =
    let v = A.eval (fun x -> match List.assoc_opt x env with Some n -> Q.of_int n | None -> Q.of_int (param x)) a in
    if not (Q.is_integer v) then invalid_arg "Count.enumerate: non-integer bound";
    Zmath.Bigint.to_int_exn (Q.num v)
  in
  let rec go env = function
    | [] -> [ List.rev env ]
    | l :: rest ->
      let lo = eval_bound env l.lo and hi = eval_bound env l.hi in
      let points = ref [] in
      for i = lo to hi do
        points := go ((l.var, i) :: env) rest :: !points
      done;
      List.concat (List.rev !points)
  in
  go [] levels
