(** Fourier–Motzkin variable elimination.

    Rational projection of a polyhedron: eliminating [x] yields the
    exact shadow of the rational polyhedron on the remaining variables.
    Used for emptiness checks and for extracting per-variable bounds
    from a constraint-form iteration domain. (Integer emptiness is
    over-approximated: a rationally-nonempty polyhedron may contain no
    integer point; the nest model used by the collapser never needs the
    integer-exact test.) *)

(** [eliminate x p] projects [x] away. *)
val eliminate : string -> Polyhedron.t -> Polyhedron.t

(** [eliminate_all xs p] projects all of [xs] away, in order. *)
val eliminate_all : string list -> Polyhedron.t -> Polyhedron.t

(** [is_rationally_empty p] decides emptiness over the rationals by
    eliminating every variable and checking the residual constant
    constraints. *)
val is_rationally_empty : Polyhedron.t -> bool

(** [bounds_for x p] splits the constraints of [p] that mention [x]
    into lower and upper bounds on [x]: returns [(lowers, uppers,
    rest)] where each element of [lowers] (resp. [uppers]) is an affine
    expression [e] free of [x] such that the constraint says [x >= e]
    (resp. [x <= e]), and [rest] are the constraints not mentioning
    [x]. Equalities contribute to both sides.
    @raise Invalid_argument if a constraint mentions [x] nonlinearly
    (cannot happen for affine constraints). *)
val bounds_for :
  string -> Polyhedron.t -> Polymath.Affine.t list * Polymath.Affine.t list * Constraint.t list
