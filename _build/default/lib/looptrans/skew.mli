(** Loop skewing (the Pluto time-skew substitute).

    Skewing replaces an iterator [i_k] by [i_k' = i_k + s * i_w] for
    some outer iterator [i_w] — the unimodular transformation Pluto
    applies to stencils before parallelizing; on a rectangular nest it
    produces exactly the rhomboidal domains of the paper's §I list.
    The transformed nest stays in the Fig. 5 model: the level's bounds
    gain a [+ s*i_w] term and every inner bound mentioning [i_k]
    substitutes [i_k := i_k' - s*i_w]. *)

(** [skew nest ~level ~wrt ~factor] skews iterator [level] (0-based,
    outermost first) by [factor] times iterator [wrt].
    The iterator keeps its name; bodies must rewrite uses of the old
    iterator as [i_k - factor * i_w] (see {!unskew_expr}).
    @raise Invalid_argument unless [wrt < level] are valid indices and
    [factor <> 0]. *)
val skew : Trahrhe.Nest.t -> level:int -> wrt:int -> factor:int -> Trahrhe.Nest.t

(** [unskew_expr nest ~level ~wrt ~factor] is the C expression of the
    original iterator value in terms of the skewed one, e.g.
    ["(i - 2*t)"]. *)
val unskew_expr : Trahrhe.Nest.t -> level:int -> wrt:int -> factor:int -> string
