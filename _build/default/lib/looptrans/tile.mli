(** Loop tiling (the Pluto `--tile` substitute).

    The paper evaluates nests "transformed by tiling the loops (using
    flag --tile of Pluto), since tiling often yields incomplete tiles
    that affect load balancing". This module reproduces that setup: it
    splits each level of a Fig. 5 nest into a tile loop and an
    intra-tile loop, with one uniform tile size.

    The tile-coordinate nest is itself a Fig. 5 nest — iterator terms
    divide exactly by the uniform size, and each size parameter [P] is
    replaced by a derived parameter [Pt = P / size] ([P] is assumed to
    be a multiple of the tile size, the usual benchmark convention;
    {!iterate} checks it at run time). The tile loops can therefore be
    collapsed by the ordinary machinery. Intra-tile loops need
    [max]/[min] bounds (incomplete tiles!) and stay ordinary loops
    inside the body; {!emit_intra} writes them with ternary operators.

    Boundary tiles whose intersection with the original domain is empty
    simply execute zero intra-tile iterations. *)

type t = private {
  original : Trahrhe.Nest.t;
  tile_nest : Trahrhe.Nest.t;  (** tile coordinates, iterator [v] ↦ [v ^ "t"] *)
  size : int;
  derived_params : (string * string) list;  (** [(P, Pt)] with [Pt = P / size] *)
}

(** [tile nest ~size] tiles every level with edge [size].
    @raise Invalid_argument if [size <= 0] or some bound has a
    non-integer coefficient. *)
val tile : Trahrhe.Nest.t -> size:int -> t

(** [intra_bounds t ~ty] lists, for each level, [(var, lower, upper)]
    C expressions of the intra-tile loop on the original iterator:
    [max(lo_k, vt*size)] and [min(up_k, vt*size + size)] (upper
    exclusive), written with ternary operators. *)
val intra_bounds : t -> ty:string -> (string * string * string) list

(** [emit_intra t ~ty ~body] wraps [body] in the intra-tile loops
    (outermost original level first), declaring the original
    iterators. *)
val emit_intra : t -> ty:string -> body:Codegen.C_ast.stmt list -> Codegen.C_ast.stmt list

(** [collapse_tiles ?config t ~body] is the whole §VII "tiled" setup in
    one call: declarations of the derived parameters, then the
    collapsed tile-coordinate loop (per-thread recovery scheme) whose
    body is the intra-tile nest around [body]. *)
val collapse_tiles :
  ?config:Codegen.Schemes.config -> t -> body:Codegen.C_ast.stmt list -> Codegen.C_ast.stmt list

(** [iterate t ~param f] runs [f idx] over every original iteration in
    tile-major order (tiles lexicographically, row-major inside each
    tile) — the execution order of the tiled code; for testing.
    @raise Invalid_argument when a parameter is not a multiple of the
    tile size. *)
val iterate : t -> param:(string -> int) -> (int array -> unit) -> unit
