lib/looptrans/tile.mli: Codegen Trahrhe
