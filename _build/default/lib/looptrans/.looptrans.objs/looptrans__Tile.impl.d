lib/looptrans/tile.ml: Array Codegen List Polymath Printf Symx Trahrhe Zmath
