lib/looptrans/skew.mli: Trahrhe
