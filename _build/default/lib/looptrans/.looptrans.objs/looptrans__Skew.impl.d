lib/looptrans/skew.ml: Array Polymath Printf Trahrhe Zmath
