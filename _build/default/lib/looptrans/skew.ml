module A = Polymath.Affine
module Q = Zmath.Rat

let check nest ~level ~wrt ~factor =
  let d = Trahrhe.Nest.depth nest in
  if level <= 0 || level >= d || wrt < 0 || wrt >= level then
    invalid_arg "Skew.skew: need 0 <= wrt < level < depth";
  if factor = 0 then invalid_arg "Skew.skew: zero factor"

let skew (nest : Trahrhe.Nest.t) ~level ~wrt ~factor =
  check nest ~level ~wrt ~factor;
  let levels = Array.of_list nest.Trahrhe.Nest.levels in
  let v = levels.(level).Trahrhe.Nest.var in
  let w = levels.(wrt).Trahrhe.Nest.var in
  let shift = A.make [ (w, Q.of_int factor) ] Q.zero in
  (* new bounds of the skewed level: old bounds + s*w *)
  let skewed =
    { levels.(level) with
      Trahrhe.Nest.lower = A.add levels.(level).Trahrhe.Nest.lower shift;
      upper = A.add levels.(level).Trahrhe.Nest.upper shift }
  in
  levels.(level) <- skewed;
  (* inner bounds referencing the old iterator: i_old = i_new - s*w *)
  let old_of_new = A.sub (A.var v) shift in
  for k = level + 1 to Array.length levels - 1 do
    levels.(k) <-
      { (levels.(k)) with
        Trahrhe.Nest.lower = A.subst v old_of_new levels.(k).Trahrhe.Nest.lower;
        upper = A.subst v old_of_new levels.(k).Trahrhe.Nest.upper }
  done;
  Trahrhe.Nest.make ~params:nest.Trahrhe.Nest.params (Array.to_list levels)

let unskew_expr (nest : Trahrhe.Nest.t) ~level ~wrt ~factor =
  check nest ~level ~wrt ~factor;
  let levels = Array.of_list nest.Trahrhe.Nest.levels in
  let v = levels.(level).Trahrhe.Nest.var in
  let w = levels.(wrt).Trahrhe.Nest.var in
  if factor > 0 then Printf.sprintf "(%s - %d*%s)" v factor w
  else Printf.sprintf "(%s + %d*%s)" v (-factor) w
